#include "attack/frequency_attack.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "codec/chunker.h"
#include "crypto/ecb.h"
#include "util/bytes.h"
#include "util/random.h"
#include "workload/phonebook.h"

namespace essdds::attack {
namespace {

using Streams = std::vector<std::vector<uint64_t>>;

TEST(FrequencyAttackTest, PerfectWhenRanksAlign) {
  // Plain substitution cipher over a skewed source with distinct counts:
  // rank matching must fully decode.
  Streams truth = {{1, 1, 1, 1, 2, 2, 2, 3, 3, 4}};
  auto enc = [](uint64_t v) { return v * 1000 + 7; };
  Streams observed(1);
  for (uint64_t v : truth[0]) observed[0].push_back(enc(v));
  // Model from an identical distribution.
  Streams model = truth;
  auto r = RunFrequencyAttack(observed, model, truth);
  EXPECT_EQ(r.occurrence_accuracy, 1.0);
  EXPECT_EQ(r.mapping_accuracy, 1.0);
  EXPECT_EQ(r.distinct_ciphertexts, 4u);
  EXPECT_NEAR(r.guess_baseline, 0.4, 1e-9);  // value 1 is 40% of the stream
}

TEST(FrequencyAttackTest, ChanceLevelOnFlatSource) {
  // Uniform source: ranks carry no information; accuracy ~ 1/alphabet.
  Rng rng(5);
  Streams truth(1), observed(1), model(1);
  // A keyed permutation of 64 values.
  std::vector<uint64_t> perm(64);
  for (uint64_t i = 0; i < 64; ++i) perm[i] = i;
  rng.Shuffle(perm);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t v = rng.Uniform(64);
    truth[0].push_back(v);
    observed[0].push_back(perm[v]);
    model[0].push_back(rng.Uniform(64));
  }
  auto r = RunFrequencyAttack(observed, model, truth);
  EXPECT_LT(r.occurrence_accuracy, 0.08);  // ~1/64 plus noise
}

TEST(FrequencyAttackTest, ResultToStringMentionsFields) {
  auto r = RunFrequencyAttack({}, {}, {});
  const std::string s = r.ToString();
  EXPECT_NE(s.find("occurrence_accuracy"), std::string::npos);
  EXPECT_NE(s.find("guess_baseline"), std::string::npos);
}

TEST(FrequencyAttackTest, BreaksSmallChunkEcbOnRealNames) {
  // The §2.1 warning made concrete: single-character ECB chunks over a
  // directory fall to frequency analysis.
  workload::PhonebookGenerator victim_gen(1);
  workload::PhonebookGenerator public_gen(2);  // attacker's reference book
  auto victim = victim_gen.Generate(2000);
  auto reference = public_gen.Generate(2000);

  codec::IdentityEncoder enc;
  auto chunker = codec::Chunker::Create(&enc, 1);  // chunk = 1 symbol
  auto codebook = crypto::EcbCodebook::Create(Bytes(16, 0x77), 8);
  ASSERT_TRUE(chunker.ok() && codebook.ok());

  Streams observed, truth, model;
  for (const auto& rec : victim) {
    std::vector<uint64_t> plain = chunker->BuildChunks(rec.name, 0);
    std::vector<uint64_t> cipher = plain;
    for (uint64_t& c : cipher) c = codebook->Encrypt(c);
    truth.push_back(std::move(plain));
    observed.push_back(std::move(cipher));
  }
  for (const auto& rec : reference) {
    model.push_back(chunker->BuildChunks(rec.name, 0));
  }

  auto r = RunFrequencyAttack(observed, model, truth);
  // Single-letter frequencies of two same-distribution corpora align well:
  // the attack should decode a large majority of positions.
  EXPECT_GT(r.occurrence_accuracy, 0.5) << r.ToString();
  EXPECT_GT(r.occurrence_accuracy, 3 * r.guess_baseline);
}

TEST(FrequencyAttackTest, LargerChunksResistBetter) {
  workload::PhonebookGenerator victim_gen(1);
  workload::PhonebookGenerator public_gen(2);
  auto victim = victim_gen.Generate(1500);
  auto reference = public_gen.Generate(1500);
  codec::IdentityEncoder enc;

  double prev_accuracy = 1.1;
  for (int s : {1, 2, 4}) {
    auto chunker = codec::Chunker::Create(&enc, s);
    auto codebook =
        crypto::EcbCodebook::Create(Bytes(16, 0x77), 8 * s, /*tweak=*/s);
    Streams observed, truth, model;
    for (const auto& rec : victim) {
      std::vector<uint64_t> plain = chunker->BuildChunks(rec.name, 0);
      std::vector<uint64_t> cipher = plain;
      for (uint64_t& c : cipher) c = codebook->Encrypt(c);
      truth.push_back(std::move(plain));
      observed.push_back(std::move(cipher));
    }
    for (const auto& rec : reference) {
      model.push_back(chunker->BuildChunks(rec.name, 0));
    }
    auto r = RunFrequencyAttack(observed, model, truth);
    EXPECT_LT(r.occurrence_accuracy, prev_accuracy)
        << "chunk size " << s << " did not reduce attack accuracy";
    prev_accuracy = r.occurrence_accuracy;
  }
  // 4-character chunks already push the attack well under 30%.
  EXPECT_LT(prev_accuracy, 0.3);
}

}  // namespace
}  // namespace essdds::attack
