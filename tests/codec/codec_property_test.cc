// Cross-module codec properties exercised as parameterized sweeps.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "codec/chunker.h"
#include "codec/dispersal.h"
#include "codec/symbol_encoder.h"
#include "util/random.h"
#include "workload/phonebook.h"

namespace essdds::codec {
namespace {

class ChunkerSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(UnitAndChunk, ChunkerSweep,
                         ::testing::Combine(::testing::Values(1, 2),
                                            ::testing::Values(1, 2, 4, 6,
                                                              8)));

TEST_P(ChunkerSweep, ChunkCountMatchesArithmetic) {
  auto [unit, s] = GetParam();
  if (unit * s * 8 > 64) GTEST_SKIP() << "chunk too wide for uint64";
  std::vector<std::string> corpus = {"SCHWARZ THOMAS & WITOLD LITWIN JR"};
  auto enc = FrequencyEncoder::Train(
      corpus, {.unit_symbols = unit, .num_codes = 16});
  ASSERT_TRUE(enc.ok());
  auto chunker = Chunker::Create(&*enc, s);
  ASSERT_TRUE(chunker.ok());
  const std::string& text = corpus[0];
  for (size_t offset = 0; offset < static_cast<size_t>(unit * s); ++offset) {
    const auto chunks = chunker->BuildChunks(text, offset);
    const size_t units =
        text.size() >= offset ? (text.size() - offset) / unit : 0;
    EXPECT_EQ(chunks.size(), units / static_cast<size_t>(s))
        << "unit " << unit << " s " << s << " offset " << offset;
  }
}

TEST_P(ChunkerSweep, ChunkValuesStayInRange) {
  auto [unit, s] = GetParam();
  if (unit * s * 8 > 64) GTEST_SKIP();
  std::vector<std::string> corpus = {"ABOGADO ALEJANDRO & CATHERINE"};
  auto enc = FrequencyEncoder::Train(
      corpus, {.unit_symbols = unit, .num_codes = 16});
  auto chunker = Chunker::Create(&*enc, s);
  const uint64_t bound = uint64_t{1} << chunker->chunk_bits();
  for (const uint64_t c : chunker->BuildChunks(corpus[0], 0)) {
    EXPECT_LT(c, bound);
  }
}

TEST(CodecPropertyTest, EncodeStreamConsistentWithEncodeUnit) {
  std::vector<std::string> corpus = {"SCHWARZ THOMAS"};
  auto enc =
      FrequencyEncoder::Train(corpus, {.unit_symbols = 2, .num_codes = 8});
  ASSERT_TRUE(enc.ok());
  const std::string text = "SCHWARZ";
  auto stream = enc->EncodeStream(text, 1);
  ASSERT_EQ(stream.size(), 3u);  // CH WA RZ
  for (size_t i = 0; i < stream.size(); ++i) {
    const uint8_t* p =
        reinterpret_cast<const uint8_t*>(text.data()) + 1 + 2 * i;
    EXPECT_EQ(stream[i], enc->EncodeUnit(ByteSpan(p, 2)));
  }
}

TEST(CodecPropertyTest, DispersalPreservesEqualityExactly) {
  // The searchability invariant: chunks are equal iff all pieces are equal.
  auto d = Disperser::Create(32, 4, 99);
  ASSERT_TRUE(d.ok());
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const uint64_t a = rng.Next() & 0xFFFFFFFF;
    const uint64_t b = rng.Bernoulli(0.5) ? a : (rng.Next() & 0xFFFFFFFF);
    const bool equal_chunks = (a == b);
    const bool equal_pieces = d->DisperseChunk(a) == d->DisperseChunk(b);
    EXPECT_EQ(equal_chunks, equal_pieces);
  }
}

TEST(CodecPropertyTest, TrainedEncoderCoversRealCorpusWithoutFallback) {
  // Training at all alignments must cover every unit the chunker later
  // encounters at any offset (no hash-fallback surprises on training data).
  workload::PhonebookGenerator gen(12);
  auto records = gen.Generate(300);
  std::vector<std::string> corpus;
  for (const auto& r : records) corpus.push_back(r.name);
  auto enc =
      FrequencyEncoder::Train(corpus, {.unit_symbols = 2, .num_codes = 32});
  ASSERT_TRUE(enc.ok());
  const auto& assignment = enc->assignment();
  for (const auto& r : records) {
    for (size_t pos = 0; pos + 2 <= r.name.size(); ++pos) {
      EXPECT_TRUE(assignment.contains(r.name.substr(pos, 2)))
          << "unit '" << r.name.substr(pos, 2) << "' untrained";
    }
  }
}

TEST(CodecPropertyTest, BucketLoadsSumToTrainedOccurrences) {
  std::map<std::string, uint64_t> counts = {
      {"A", 10}, {"B", 20}, {"C", 30}, {"D", 40}};
  auto enc =
      FrequencyEncoder::FromCounts(counts, {.unit_symbols = 1, .num_codes = 4});
  ASSERT_TRUE(enc.ok());
  uint64_t total = 0;
  for (uint64_t l : enc->bucket_loads()) total += l;
  EXPECT_EQ(total, 100u);
}

}  // namespace
}  // namespace essdds::codec
