#include "codec/dispersal.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "util/random.h"

namespace essdds::codec {
namespace {

class DisperserParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

// (chunk_bits, k) including the paper's configurations: 8-bit symbols into
// 4 pieces of 2 bits (Table 2), 32-bit chunks into 4, 48-bit into 3.
INSTANTIATE_TEST_SUITE_P(Configs, DisperserParamTest,
                         ::testing::Values(std::tuple{8, 4}, std::tuple{32, 4},
                                           std::tuple{48, 3}, std::tuple{16, 2},
                                           std::tuple{64, 4}, std::tuple{12, 3},
                                           std::tuple{16, 1}));

TEST_P(DisperserParamTest, RoundTripRecombination) {
  auto [bits, k] = GetParam();
  auto d = Disperser::Create(bits, k, 7);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_sites(), k);
  EXPECT_EQ(d->piece_bits(), bits / k);
  Rng rng(5);
  const uint64_t mask =
      bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  for (int i = 0; i < 500; ++i) {
    const uint64_t chunk = rng.Next() & mask;
    auto pieces = d->DisperseChunk(chunk);
    ASSERT_EQ(pieces.size(), static_cast<size_t>(k));
    for (uint32_t p : pieces) {
      EXPECT_LT(p, uint32_t{1} << d->piece_bits());
    }
    EXPECT_EQ(d->RecombineChunk(pieces), chunk);
  }
}

TEST_P(DisperserParamTest, EqualChunksGiveEqualPieces) {
  auto [bits, k] = GetParam();
  auto d = Disperser::Create(bits, k, 9);
  ASSERT_TRUE(d.ok());
  const uint64_t chunk = 0x2A;
  EXPECT_EQ(d->DisperseChunk(chunk), d->DisperseChunk(chunk));
}

TEST(DisperserTest, DistinctChunksDifferInSomePiece) {
  auto d = Disperser::Create(32, 4, 11);
  ASSERT_TRUE(d.ok());
  Rng rng(13);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng.Next() & 0xFFFFFFFF;
    uint64_t b = rng.Next() & 0xFFFFFFFF;
    if (a == b) continue;
    EXPECT_NE(d->DisperseChunk(a), d->DisperseChunk(b));
  }
}

TEST(DisperserTest, PieceDependsOnWholeChunk) {
  // The paper's rationale for matrix dispersal over plain slicing: with all
  // E coefficients nonzero, flipping any input symbol changes every piece.
  auto d = Disperser::Create(32, 4, 17);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(d->matrix().AllEntriesNonzero());
  const uint64_t base = 0x01020304;
  auto base_pieces = d->DisperseChunk(base);
  for (int sym = 0; sym < 4; ++sym) {
    // Change one 8-bit input symbol.
    const uint64_t changed = base ^ (uint64_t{0xFF} << (8 * sym));
    auto pieces = d->DisperseChunk(changed);
    for (int i = 0; i < 4; ++i) {
      EXPECT_NE(pieces[static_cast<size_t>(i)],
                base_pieces[static_cast<size_t>(i)])
          << "piece " << i << " unchanged when symbol " << sym << " flipped";
    }
  }
}

TEST(DisperserTest, SequenceStreamsLineUp) {
  auto d = Disperser::Create(16, 2, 19);
  ASSERT_TRUE(d.ok());
  std::vector<uint64_t> chunks = {1, 2, 3, 0xFFFF, 42};
  auto streams = d->DisperseSequence(chunks);
  ASSERT_EQ(streams.size(), 2u);
  ASSERT_EQ(streams[0].size(), chunks.size());
  for (size_t c = 0; c < chunks.size(); ++c) {
    EXPECT_EQ(d->RecombineChunk({streams[0][c], streams[1][c]}), chunks[c]);
  }
}

TEST(DisperserTest, DeterministicInSeed) {
  auto a = Disperser::Create(32, 4, 123);
  auto b = Disperser::Create(32, 4, 123);
  auto c = Disperser::Create(32, 4, 124);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(a->DisperseChunk(99), b->DisperseChunk(99));
  EXPECT_NE(a->DisperseChunk(99), c->DisperseChunk(99));
}

TEST(DisperserTest, RejectsBadConfigs) {
  EXPECT_FALSE(Disperser::Create(33, 4, 1).ok());   // not divisible
  EXPECT_FALSE(Disperser::Create(0, 4, 1).ok());    // empty chunk
  EXPECT_FALSE(Disperser::Create(32, 0, 1).ok());   // no sites
  EXPECT_FALSE(Disperser::Create(4, 4, 1).ok());    // g=1 with k>=2
  EXPECT_FALSE(Disperser::Create(80, 4, 1).ok());   // > 64 bits
  EXPECT_FALSE(Disperser::Create(64, 2, 1).ok());   // g=32 > 16
}

TEST(DisperserTest, Paper1To4ByteDispersalShape) {
  // Table 2 setup: 8-bit symbols dispersed into four 2-bit pieces.
  auto d = Disperser::Create(8, 4, 42);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->piece_bits(), 2);
  std::set<uint64_t> images;
  for (uint64_t sym = 0; sym < 256; ++sym) {
    auto pieces = d->DisperseChunk(sym);
    uint64_t packed = 0;
    for (uint32_t p : pieces) packed = (packed << 2) | p;
    images.insert(packed);
  }
  // The dispersal map is a bijection on the symbol space.
  EXPECT_EQ(images.size(), 256u);
}

}  // namespace
}  // namespace essdds::codec
