#include "codec/symbol_encoder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace essdds::codec {
namespace {

TEST(IdentityEncoderTest, PassesBytesThrough) {
  IdentityEncoder enc;
  EXPECT_EQ(enc.unit_symbols(), 1);
  EXPECT_EQ(enc.num_codes(), 256u);
  EXPECT_EQ(enc.code_bits(), 8);
  uint8_t b = 'Q';
  EXPECT_EQ(enc.EncodeUnit(ByteSpan(&b, 1)), uint32_t{'Q'});
}

TEST(IdentityEncoderTest, EncodeStreamCoversWholeText) {
  IdentityEncoder enc;
  auto codes = enc.EncodeStream("ABC", 0);
  EXPECT_EQ(codes, (std::vector<uint32_t>{'A', 'B', 'C'}));
  codes = enc.EncodeStream("ABC", 1);
  EXPECT_EQ(codes, (std::vector<uint32_t>{'B', 'C'}));
  EXPECT_TRUE(enc.EncodeStream("ABC", 3).empty());
  EXPECT_TRUE(enc.EncodeStream("ABC", 99).empty());
}

TEST(FrequencyEncoderTest, CodeBitsIsCeilLog2) {
  std::map<std::string, uint64_t> counts = {{"A", 10}, {"B", 5}};
  for (auto [codes, bits] : std::vector<std::pair<uint32_t, int>>{
           {2, 1}, {3, 2}, {4, 2}, {8, 3}, {16, 4}, {32, 5}, {128, 7}}) {
    auto enc = FrequencyEncoder::FromCounts(
        counts, {.unit_symbols = 1, .num_codes = codes});
    ASSERT_TRUE(enc.ok());
    EXPECT_EQ(enc->code_bits(), bits) << codes;
  }
}

TEST(FrequencyEncoderTest, MostFrequentUnitsSpreadAcrossBuckets) {
  // Mirrors the paper's Figure 5 construction: the heaviest units must land
  // in distinct buckets.
  std::map<std::string, uint64_t> counts = {
      {" ", 503}, {"A", 495}, {"E", 407}, {"N", 383},
      {"R", 350}, {"I", 300}, {"O", 287}, {"L", 258},
      {"S", 258}, {"T", 200}, {"H", 186}, {"M", 178}};
  auto enc =
      FrequencyEncoder::FromCounts(counts, {.unit_symbols = 1, .num_codes = 8});
  ASSERT_TRUE(enc.ok());
  const auto& assign = enc->assignment();
  std::set<uint32_t> top8_codes;
  for (const char* u : {" ", "A", "E", "N", "R", "I", "O", "L"}) {
    top8_codes.insert(assign.at(u));
  }
  EXPECT_EQ(top8_codes.size(), 8u);  // 8 heaviest units -> 8 distinct codes
}

TEST(FrequencyEncoderTest, BucketLoadsAreBalanced) {
  std::vector<std::string> corpus;
  // Synthetic skewed corpus: heavy 'E', light 'Z'.
  corpus.push_back(std::string(500, 'E') + std::string(300, 'A') +
                   std::string(200, 'N') + std::string(100, 'R') +
                   std::string(50, 'I') + std::string(20, 'O') +
                   std::string(10, 'Q') + std::string(5, 'Z'));
  auto enc = FrequencyEncoder::Train(corpus, {.unit_symbols = 1, .num_codes = 4});
  ASSERT_TRUE(enc.ok());
  const auto& loads = enc->bucket_loads();
  const uint64_t max_load = *std::max_element(loads.begin(), loads.end());
  const uint64_t min_load = *std::min_element(loads.begin(), loads.end());
  // LPT greedy keeps the spread tight relative to the dominant unit.
  EXPECT_LE(max_load - min_load, 500u);
  EXPECT_GT(min_load, 0u);
}

TEST(FrequencyEncoderTest, EncodingIsDeterministic) {
  std::vector<std::string> corpus = {"SCHWARZ THOMAS", "LITWIN WITOLD",
                                     "TSUI PETER"};
  auto a = FrequencyEncoder::Train(corpus, {.unit_symbols = 1, .num_codes = 8});
  auto b = FrequencyEncoder::Train(corpus, {.unit_symbols = 1, .num_codes = 8});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->assignment(), b->assignment());
}

TEST(FrequencyEncoderTest, LossyCollisionsExist) {
  // With more units than codes, distinct units must share codes — the
  // source of Stage-2 false positives.
  std::vector<std::string> corpus = {"ABCDEFGHIJKLMNOPQRSTUVWXYZ"};
  auto enc = FrequencyEncoder::Train(corpus, {.unit_symbols = 1, .num_codes = 8});
  ASSERT_TRUE(enc.ok());
  std::map<uint32_t, int> per_code;
  for (const auto& [unit, code] : enc->assignment()) per_code[code]++;
  int collisions = 0;
  for (const auto& [code, n] : per_code) collisions += (n > 1);
  EXPECT_GT(collisions, 0);
}

TEST(FrequencyEncoderTest, TwoSymbolUnits) {
  std::vector<std::string> corpus = {"ABOGADO ALEJANDRO & CATHERINE"};
  auto enc =
      FrequencyEncoder::Train(corpus, {.unit_symbols = 2, .num_codes = 16});
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->unit_symbols(), 2);
  // Stream at offset 0: "AB","OG","AD",... offset 1: "BO","GA",...
  auto s0 = enc->EncodeStream("ABOGADO", 0);
  auto s1 = enc->EncodeStream("ABOGADO", 1);
  EXPECT_EQ(s0.size(), 3u);  // AB OG AD (O dropped)
  EXPECT_EQ(s1.size(), 3u);  // BO GA DO
}

TEST(FrequencyEncoderTest, UnknownUnitsHashDeterministically) {
  std::map<std::string, uint64_t> counts = {{"A", 1}};
  auto enc =
      FrequencyEncoder::FromCounts(counts, {.unit_symbols = 1, .num_codes = 8});
  ASSERT_TRUE(enc.ok());
  uint8_t z = 'Z';
  const uint32_t c1 = enc->EncodeUnit(ByteSpan(&z, 1));
  const uint32_t c2 = enc->EncodeUnit(ByteSpan(&z, 1));
  EXPECT_EQ(c1, c2);
  EXPECT_LT(c1, 8u);
}

TEST(FrequencyEncoderTest, RejectsBadOptions) {
  std::map<std::string, uint64_t> counts = {{"A", 1}};
  EXPECT_FALSE(
      FrequencyEncoder::FromCounts(counts, {.unit_symbols = 1, .num_codes = 1})
          .ok());
  EXPECT_FALSE(
      FrequencyEncoder::FromCounts(counts, {.unit_symbols = 0, .num_codes = 8})
          .ok());
  EXPECT_FALSE(
      FrequencyEncoder::FromCounts(counts, {.unit_symbols = 9, .num_codes = 8})
          .ok());
}

TEST(FrequencyEncoderTest, EqualCodesNeverExceedUnitCount) {
  // If there are fewer distinct units than codes, some buckets stay empty
  // (the paper: "we did not succeed in equal distribution").
  std::map<std::string, uint64_t> counts = {{"A", 5}, {"B", 3}};
  auto enc = FrequencyEncoder::FromCounts(
      counts, {.unit_symbols = 1, .num_codes = 16});
  ASSERT_TRUE(enc.ok());
  int used = 0;
  for (uint64_t load : enc->bucket_loads()) used += (load > 0);
  EXPECT_EQ(used, 2);
}

}  // namespace
}  // namespace essdds::codec
