#include "codec/chunker.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace essdds::codec {
namespace {

uint64_t Pack(std::string_view s) {
  uint64_t v = 0;
  for (char c : s) v = (v << 8) | static_cast<uint8_t>(c);
  return v;
}

class ChunkerTest : public ::testing::Test {
 protected:
  IdentityEncoder enc_;
};

TEST_F(ChunkerTest, PaperExampleOffsets) {
  // §2.2: s = 4 over "ABCDEFGHIJKLMNOPQRSTUVWXYZ" (partial chunks dropped in
  // this implementation, per the paper's own experimental choice in §7).
  auto chunker = Chunker::Create(&enc_, 4);
  ASSERT_TRUE(chunker.ok());
  const std::string rc = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";

  auto c0 = chunker->BuildChunks(rc, 0);
  ASSERT_EQ(c0.size(), 6u);  // ABCD EFGH IJKL MNOP QRST UVWX (YZ dropped)
  EXPECT_EQ(c0[0], Pack("ABCD"));
  EXPECT_EQ(c0[5], Pack("UVWX"));

  auto c1 = chunker->BuildChunks(rc, 1);
  ASSERT_EQ(c1.size(), 6u);  // BCDE FGHI JKLM NOPQ RSTU VWXY (Z dropped)
  EXPECT_EQ(c1[0], Pack("BCDE"));
  EXPECT_EQ(c1[5], Pack("VWXY"));

  auto c2 = chunker->BuildChunks(rc, 2);
  ASSERT_EQ(c2.size(), 6u);  // CDEF ... WXYZ
  EXPECT_EQ(c2[5], Pack("WXYZ"));

  auto c3 = chunker->BuildChunks(rc, 3);
  ASSERT_EQ(c3.size(), 5u);  // DEFG HIJK LMNO PQRS TUVW (XYZ dropped)
  EXPECT_EQ(c3[0], Pack("DEFG"));
  EXPECT_EQ(c3[4], Pack("TUVW"));
}

TEST_F(ChunkerTest, ShortTextYieldsNoChunks) {
  auto chunker = Chunker::Create(&enc_, 4);
  EXPECT_TRUE(chunker->BuildChunks("ABC", 0).empty());
  EXPECT_TRUE(chunker->BuildChunks("ABCD", 1).empty());
  EXPECT_TRUE(chunker->BuildChunks("", 0).empty());
}

TEST_F(ChunkerTest, ExactMultiple) {
  auto chunker = Chunker::Create(&enc_, 2);
  auto chunks = chunker->BuildChunks("ABCD", 0);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], Pack("AB"));
  EXPECT_EQ(chunks[1], Pack("CD"));
}

TEST_F(ChunkerTest, ChunkBitsAndSymbols) {
  auto chunker = Chunker::Create(&enc_, 4);
  EXPECT_EQ(chunker->chunk_bits(), 32);
  EXPECT_EQ(chunker->symbols_per_chunk(), 4);
  EXPECT_EQ(chunker->codes_per_chunk(), 4);
}

TEST_F(ChunkerTest, RejectsOversizedChunks) {
  EXPECT_FALSE(Chunker::Create(&enc_, 9).ok());  // 72 bits
  EXPECT_TRUE(Chunker::Create(&enc_, 8).ok());   // 64 bits
  EXPECT_FALSE(Chunker::Create(&enc_, 0).ok());
  EXPECT_FALSE(Chunker::Create(nullptr, 4).ok());
}

TEST_F(ChunkerTest, EqualSubstringsProduceEqualChunks) {
  // The property search relies on: the same symbols at chunk-aligned
  // positions produce the same chunk value.
  auto chunker = Chunker::Create(&enc_, 4);
  auto a = chunker->BuildChunks("XXXXSCHWARZX", 4);  // SCHW ARZX
  auto b = chunker->BuildChunks("SCHWARZX", 0);      // SCHW ARZX
  EXPECT_EQ(a, b);
}

TEST(ChunkerStage2Test, PaperSymbolEncodingExample) {
  // §7: "ABOGADO ALEJANDRO & CATHERINE" with 8 single-symbol encodings,
  // chunk size 2 -> first chunking [c0 c1][c2 c3]...
  std::map<std::string, uint64_t> counts;
  // Any counts work for structure checks; give every char of the record
  // some weight.
  const std::string rec = "ABOGADO ALEJANDRO & CATHERINE";
  for (char c : rec) counts[std::string(1, c)] += 1;
  auto enc =
      FrequencyEncoder::FromCounts(counts, {.unit_symbols = 1, .num_codes = 8});
  ASSERT_TRUE(enc.ok());
  auto chunker = Chunker::Create(&*enc, 2);
  ASSERT_TRUE(chunker.ok());

  auto codes = enc->EncodeStream(rec, 0);
  ASSERT_EQ(codes.size(), rec.size());
  auto chunks0 = chunker->BuildChunks(rec, 0);
  auto chunks1 = chunker->BuildChunks(rec, 1);
  // 29 symbols: offset 0 -> 14 chunks (last symbol dropped); offset 1 -> 14.
  EXPECT_EQ(chunks0.size(), 14u);
  EXPECT_EQ(chunks1.size(), 14u);
  // Chunk 0 of chunking 0 packs codes[0],codes[1] in 3 bits each.
  EXPECT_EQ(chunks0[0], (uint64_t{codes[0]} << 3) | codes[1]);
}

TEST(ChunkerStage2Test, TwoSymbolUnitChunking) {
  // Units of 2 symbols, 2 codes per chunk -> a chunk spans 4 symbols.
  std::vector<std::string> corpus = {"ABOGADO ALEJANDRO & CATHERINE"};
  auto enc =
      FrequencyEncoder::Train(corpus, {.unit_symbols = 2, .num_codes = 16});
  ASSERT_TRUE(enc.ok());
  auto chunker = Chunker::Create(&*enc, 2);
  ASSERT_TRUE(chunker.ok());
  EXPECT_EQ(chunker->symbols_per_chunk(), 4);
  auto chunks = chunker->BuildChunks("ABCDEFGH", 0);
  EXPECT_EQ(chunks.size(), 2u);  // [AB CD] [EF GH]
}

}  // namespace
}  // namespace essdds::codec
