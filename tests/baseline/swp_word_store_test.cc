#include "baseline/swp_word_store.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "workload/phonebook.h"

namespace essdds::baseline {
namespace {

std::unique_ptr<SwpWordStore> MakeStore() {
  auto store = SwpWordStore::Create(ToBytes("swp test key"));
  EXPECT_TRUE(store.ok());
  return *std::move(store);
}

TEST(SwpTokenizeTest, SplitsOnNonAlpha) {
  EXPECT_EQ(SwpWordStore::Tokenize("SCHWARZ THOMAS J"),
            (std::vector<std::string>{"SCHWARZ", "THOMAS", "J"}));
  EXPECT_EQ(SwpWordStore::Tokenize("a-b&c"),
            (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_TRUE(SwpWordStore::Tokenize("123 456").empty());
  EXPECT_TRUE(SwpWordStore::Tokenize("").empty());
}

TEST(SwpWordStoreTest, FindsExactWords) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Insert(2, "TSUI PETER").ok());
  ASSERT_TRUE(store->Insert(3, "LITWIN WITOLD").ok());
  auto rids = store->SearchWord("THOMAS");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1}));
  rids = store->SearchWord("tsui");  // case-insensitive tokenization
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{2}));
}

TEST(SwpWordStoreTest, DoesNotFindSubstrings) {
  // The limitation the paper's scheme lifts: word fragments are invisible.
  auto store = MakeStore();
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  auto rids = store->SearchWord("SCHWA");
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty());
  rids = store->SearchWord("HOMAS");
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty());
}

TEST(SwpWordStoreTest, MultipleRecordsSameWord) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Insert(1, "LEE WEI").ok());
  ASSERT_TRUE(store->Insert(2, "LEE MING").ok());
  ASSERT_TRUE(store->Insert(3, "WONG LEE").ok());
  auto rids = store->SearchWord("LEE");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(SwpWordStoreTest, RepeatedWordInOneRecordReportedOnce) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Insert(1, "LEE LEE LEE").ok());
  auto rids = store->SearchWord("LEE");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1}));
}

TEST(SwpWordStoreTest, DeleteRemovesAllPositions) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Delete(1).ok());
  auto rids = store->SearchWord("SCHWARZ");
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty());
  EXPECT_EQ(store->stored_words(), 0u);
  EXPECT_TRUE(store->Delete(1).IsNotFound());
}

TEST(SwpWordStoreTest, ReinsertReplaces) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Insert(1, "WONG MING").ok());
  EXPECT_TRUE(store->SearchWord("SCHWARZ")->empty());
  EXPECT_EQ(*store->SearchWord("WONG"), (std::vector<uint64_t>{1}));
}

TEST(SwpWordStoreTest, StoredValuesLookRandom) {
  auto store = MakeStore();
  ASSERT_TRUE(store->Insert(1, "AAAA AAAA AAAA AAAA").ok());
  // Same word at different positions must produce different ciphertexts
  // (position-dependent salt) — unlike our chunked ECB index.
  std::vector<Bytes> values;
  for (uint64_t b = 0; b < store->file().bucket_count(); ++b) {
    for (const auto& [key, value] : store->file().bucket(b).records()) {
      values.push_back(value);
    }
  }
  ASSERT_EQ(values.size(), 4u);
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      EXPECT_NE(values[i], values[j]);
    }
  }
}

TEST(SwpWordStoreTest, WrongKeyFindsNothing) {
  auto a = SwpWordStore::Create(ToBytes("key-a"));
  auto b = SwpWordStore::Create(ToBytes("key-b"));
  ASSERT_TRUE((*a)->Insert(1, "SCHWARZ").ok());
  // A store under a different key issues unrelated trapdoors; searching b
  // (empty) or a-with-b-trapdoor is modeled by b's own search on its empty
  // file.
  EXPECT_TRUE((*b)->SearchWord("SCHWARZ")->empty());
}

TEST(SwpWordStoreTest, NoFalseNegativesOverCorpus) {
  auto store = MakeStore();
  workload::PhonebookGenerator gen(5);
  auto corpus = gen.Generate(150);
  for (const auto& r : corpus) ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  for (const auto& r : corpus) {
    const std::string surname(workload::SurnameOf(r));
    auto rids = store->SearchWord(surname);
    ASSERT_TRUE(rids.ok());
    EXPECT_TRUE(std::binary_search(rids->begin(), rids->end(), r.rid))
        << surname;
  }
}

TEST(SwpWordStoreTest, RejectsMultiWordQueries) {
  auto store = MakeStore();
  EXPECT_FALSE(store->SearchWord("TWO WORDS").ok());
  EXPECT_FALSE(store->SearchWord("").ok());
}

TEST(SwpWordStoreTest, RejectsEmptyMaster) {
  EXPECT_FALSE(SwpWordStore::Create(Bytes{}).ok());
}

}  // namespace
}  // namespace essdds::baseline
