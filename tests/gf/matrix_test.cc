#include "gf/matrix.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace essdds::gf {
namespace {

TEST(GfMatrixTest, IdentityMultiplication) {
  const GfField& f = GfField::Of(8);
  GfMatrix id = GfMatrix::Identity(f, 4);
  GfMatrix m = GfMatrix::RandomInvertible(f, 4, 1);
  EXPECT_EQ(m.Multiply(id), m);
  EXPECT_EQ(id.Multiply(m), m);
}

TEST(GfMatrixTest, InverseRoundTrip) {
  const GfField& f = GfField::Of(8);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    GfMatrix m = GfMatrix::RandomInvertible(f, 4, seed);
    auto inv = m.Inverse();
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(m.Multiply(*inv), GfMatrix::Identity(f, 4)) << "seed " << seed;
    EXPECT_EQ(inv->Multiply(m), GfMatrix::Identity(f, 4)) << "seed " << seed;
  }
}

TEST(GfMatrixTest, SingularMatrixHasNoInverse) {
  const GfField& f = GfField::Of(8);
  GfMatrix m(f, 2, 2);  // all zeros
  EXPECT_FALSE(m.IsInvertible());
  EXPECT_FALSE(m.Inverse().ok());
  // Two identical rows.
  GfMatrix d(f, 2, 2);
  d.Set(0, 0, 3);
  d.Set(0, 1, 5);
  d.Set(1, 0, 3);
  d.Set(1, 1, 5);
  EXPECT_FALSE(d.IsInvertible());
  EXPECT_FALSE(d.Inverse().ok());
}

TEST(GfMatrixTest, NonSquareNotInvertible) {
  const GfField& f = GfField::Of(4);
  GfMatrix m(f, 2, 3);
  EXPECT_FALSE(m.IsInvertible());
  EXPECT_FALSE(m.Inverse().ok());
}

TEST(GfMatrixTest, RandomInvertibleIsInvertibleAndNonzero) {
  for (int g : {4, 8, 16}) {
    const GfField& f = GfField::Of(g);
    for (uint64_t seed = 0; seed < 10; ++seed) {
      GfMatrix m = GfMatrix::RandomInvertible(f, 4, seed);
      EXPECT_TRUE(m.IsInvertible());
      EXPECT_TRUE(m.AllEntriesNonzero());
    }
  }
}

TEST(GfMatrixTest, RandomInvertibleIsDeterministicInSeed) {
  const GfField& f = GfField::Of(8);
  EXPECT_EQ(GfMatrix::RandomInvertible(f, 3, 99),
            GfMatrix::RandomInvertible(f, 3, 99));
}

TEST(GfMatrixTest, CauchyIsInvertibleWithAllNonzeroEntries) {
  const GfField& f = GfField::Of(8);
  std::vector<uint32_t> x = {1, 2, 3, 4};
  std::vector<uint32_t> y = {5, 6, 7, 8};
  auto c = GfMatrix::Cauchy(f, x, y);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(c->IsInvertible());
  EXPECT_TRUE(c->AllEntriesNonzero());
  auto inv = c->Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(c->Multiply(*inv), GfMatrix::Identity(f, 4));
}

TEST(GfMatrixTest, CauchyRejectsOverlappingPoints) {
  const GfField& f = GfField::Of(8);
  EXPECT_FALSE(GfMatrix::Cauchy(f, {1, 2}, {2, 3}).ok());
  EXPECT_FALSE(GfMatrix::Cauchy(f, {1, 1}, {2, 3}).ok());
}

TEST(GfMatrixTest, CauchyRejectsOutOfFieldPoints) {
  const GfField& f = GfField::Of(4);
  EXPECT_FALSE(GfMatrix::Cauchy(f, {1, 2}, {3, 100}).ok());
}

TEST(GfMatrixTest, VandermondeInvertibleForDistinctPoints) {
  const GfField& f = GfField::Of(8);
  auto v = GfMatrix::Vandermonde(f, {1, 2, 3, 4}, 4);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->IsInvertible());
  // First column is all ones (x^0).
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(v->At(i, 0), 1u);
}

TEST(GfMatrixTest, VandermondeRejectsDuplicatePoints) {
  const GfField& f = GfField::Of(8);
  EXPECT_FALSE(GfMatrix::Vandermonde(f, {1, 2, 2}, 3).ok());
}

TEST(GfMatrixTest, RowVectorApplicationMatchesMatrixProduct) {
  const GfField& f = GfField::Of(8);
  Rng rng(7);
  GfMatrix m = GfMatrix::RandomInvertible(f, 4, 3);
  std::vector<uint32_t> v(4);
  for (auto& e : v) e = static_cast<uint32_t>(rng.Uniform(f.order()));
  auto out = m.ApplyToRowVector(v);

  GfMatrix row(f, 1, 4);
  for (size_t j = 0; j < 4; ++j) row.Set(0, j, v[j]);
  GfMatrix prod = row.Multiply(m);
  for (size_t j = 0; j < 4; ++j) EXPECT_EQ(out[j], prod.At(0, j));
}

TEST(GfMatrixTest, DispersalRoundTripThroughInverse) {
  // The property Stage 3 relies on: c -> c*E -> (c*E)*E^-1 == c.
  const GfField& f = GfField::Of(4);
  GfMatrix e = GfMatrix::RandomInvertible(f, 4, 42);
  auto inv = e.Inverse();
  ASSERT_TRUE(inv.ok());
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    std::vector<uint32_t> c(4);
    for (auto& x : c) x = static_cast<uint32_t>(rng.Uniform(f.order()));
    auto d = e.ApplyToRowVector(c);
    auto back = inv->ApplyToRowVector(d);
    EXPECT_EQ(back, c);
  }
}

class MatrixSizeTest : public ::testing::TestWithParam<size_t> {};

INSTANTIATE_TEST_SUITE_P(Sizes, MatrixSizeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST_P(MatrixSizeTest, InverseWorksAcrossSizes) {
  const size_t n = GetParam();
  const GfField& f = GfField::Of(8);
  GfMatrix m = GfMatrix::RandomInvertible(f, n, 1234 + n);
  auto inv = m.Inverse();
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(m.Multiply(*inv), GfMatrix::Identity(f, n));
}

}  // namespace
}  // namespace essdds::gf
