#include "gf/gf2n.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace essdds::gf {
namespace {

class GfFieldTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(AllOrders, GfFieldTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12, 13, 14, 15, 16));

TEST_P(GfFieldTest, OrderAndBounds) {
  const GfField& f = GfField::Of(GetParam());
  EXPECT_EQ(f.g(), GetParam());
  EXPECT_EQ(f.order(), uint32_t{1} << GetParam());
  EXPECT_EQ(f.max_element(), f.order() - 1);
}

TEST_P(GfFieldTest, MultiplicativeIdentityAndZero) {
  const GfField& f = GfField::Of(GetParam());
  const uint32_t n = std::min<uint32_t>(f.order(), 512);
  for (uint32_t a = 0; a < n; ++a) {
    EXPECT_EQ(f.Mul(a, 1), a);
    EXPECT_EQ(f.Mul(1, a), a);
    EXPECT_EQ(f.Mul(a, 0), 0u);
    EXPECT_EQ(f.Add(a, 0), a);
    EXPECT_EQ(f.Add(a, a), 0u);  // characteristic 2
  }
}

TEST_P(GfFieldTest, EveryNonzeroElementHasInverse) {
  const GfField& f = GfField::Of(GetParam());
  // Exhaustive for small fields, sampled for big ones.
  if (f.order() <= 4096) {
    for (uint32_t a = 1; a < f.order(); ++a) {
      EXPECT_EQ(f.Mul(a, f.Inv(a)), 1u) << "a=" << a;
    }
  } else {
    Rng rng(17);
    for (int i = 0; i < 4096; ++i) {
      uint32_t a = 1 + static_cast<uint32_t>(rng.Uniform(f.max_element()));
      EXPECT_EQ(f.Mul(a, f.Inv(a)), 1u) << "a=" << a;
    }
  }
}

TEST_P(GfFieldTest, MulIsCommutativeAndAssociative) {
  const GfField& f = GfField::Of(GetParam());
  Rng rng(23);
  for (int i = 0; i < 2000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(f.order()));
    uint32_t b = static_cast<uint32_t>(rng.Uniform(f.order()));
    uint32_t c = static_cast<uint32_t>(rng.Uniform(f.order()));
    EXPECT_EQ(f.Mul(a, b), f.Mul(b, a));
    EXPECT_EQ(f.Mul(f.Mul(a, b), c), f.Mul(a, f.Mul(b, c)));
  }
}

TEST_P(GfFieldTest, DistributivityOverAddition) {
  const GfField& f = GfField::Of(GetParam());
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(f.order()));
    uint32_t b = static_cast<uint32_t>(rng.Uniform(f.order()));
    uint32_t c = static_cast<uint32_t>(rng.Uniform(f.order()));
    EXPECT_EQ(f.Mul(a, f.Add(b, c)), f.Add(f.Mul(a, b), f.Mul(a, c)));
  }
}

TEST_P(GfFieldTest, DivisionInvertsMultiplication) {
  const GfField& f = GfField::Of(GetParam());
  Rng rng(37);
  for (int i = 0; i < 2000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(f.order()));
    uint32_t b = 1 + static_cast<uint32_t>(rng.Uniform(f.max_element()));
    EXPECT_EQ(f.Div(f.Mul(a, b), b), a);
  }
}

TEST_P(GfFieldTest, GeneratorHasFullOrder) {
  const GfField& f = GfField::Of(GetParam());
  // g^k for k = 0..order-2 must enumerate all nonzero elements.
  const uint32_t group = f.max_element();
  std::vector<bool> seen(f.order(), false);
  uint32_t v = 1;
  for (uint32_t k = 0; k < group; ++k) {
    EXPECT_FALSE(seen[v]) << "generator order < group order at k=" << k;
    seen[v] = true;
    v = f.Mul(v, f.generator());
  }
  EXPECT_EQ(v, 1u);  // cycles back
}

TEST_P(GfFieldTest, PowMatchesRepeatedMultiplication) {
  const GfField& f = GfField::Of(GetParam());
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(f.order()));
    uint64_t e = rng.Uniform(20);
    uint32_t expect = 1;
    for (uint64_t k = 0; k < e; ++k) expect = f.Mul(expect, a);
    EXPECT_EQ(f.Pow(a, e), expect) << "a=" << a << " e=" << e;
  }
  EXPECT_EQ(f.Pow(0, 0), 1u);
  EXPECT_EQ(f.Pow(0, 5), 0u);
}

TEST_P(GfFieldTest, PowHandlesLargeExponents) {
  const GfField& f = GfField::Of(GetParam());
  const uint32_t group = f.max_element();
  // Fermat: a^(order-1) == 1 for nonzero a; exponents reduce mod group.
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    uint32_t a = 1 + static_cast<uint32_t>(rng.Uniform(group));
    EXPECT_EQ(f.Pow(a, group), 1u);
    EXPECT_EQ(f.Pow(a, static_cast<uint64_t>(group) * 1000 + 3),
              f.Pow(a, 3));
  }
}

TEST(GfFieldTest, CreateRejectsBadOrders) {
  EXPECT_FALSE(GfField::Create(0).ok());
  EXPECT_FALSE(GfField::Create(17).ok());
  EXPECT_FALSE(GfField::Create(-1).ok());
}

TEST(GfFieldTest, OfReturnsSameInstance) {
  const GfField& a = GfField::Of(8);
  const GfField& b = GfField::Of(8);
  EXPECT_EQ(&a, &b);
}

TEST(GfFieldTest, Gf256KnownProducts) {
  // Spot values against the AES-standard GF(2^8) with poly 0x11D (note:
  // this library uses 0x11D, the Reed-Solomon convention, not AES's 0x11B).
  const GfField& f = GfField::Of(8);
  EXPECT_EQ(f.Mul(2, 128), 29u);  // x * (x^7) = x^8 = 0x11D & 0xFF = 0x1D
  EXPECT_EQ(f.Mul(0x53, 1), 0x53u);
}

}  // namespace
}  // namespace essdds::gf
