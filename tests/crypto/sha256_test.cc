#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

#include "crypto/hmac.h"
#include "util/bytes.h"

namespace essdds::crypto {
namespace {

std::string HashHex(std::string_view input) {
  auto d = Sha256::Hash(ToBytes(input));
  return HexEncode(ByteSpan(d.data(), d.size()));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(HashHex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(HashHex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(HashHex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  auto d = h.Finish();
  EXPECT_EQ(HexEncode(ByteSpan(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross "
      "block boundaries in interesting ways. 0123456789.";
  auto one_shot = Sha256::Hash(ToBytes(msg));
  for (size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.Update(ToBytes(msg.substr(0, split)));
    h.Update(ToBytes(msg.substr(split)));
    EXPECT_EQ(h.Finish(), one_shot) << "split=" << split;
  }
}

TEST(Sha256Test, ResetRestoresInitialState) {
  Sha256 h;
  h.Update(ToBytes("garbage"));
  h.Reset();
  h.Update(ToBytes("abc"));
  auto d = h.Finish();
  EXPECT_EQ(HexEncode(ByteSpan(d.data(), d.size())),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 HMAC-SHA-256 vectors.
TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  auto mac =
      HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  auto mac = HmacSha256(key, data);
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  Bytes key(131, 0xaa);
  auto mac = HmacSha256(
      key, ToBytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DeriveKeyTest, DeterministicAndLabelSeparated) {
  Bytes master = ToBytes("master secret");
  Bytes a1 = DeriveKey(master, "label-a", 32);
  Bytes a2 = DeriveKey(master, "label-a", 32);
  Bytes b = DeriveKey(master, "label-b", 32);
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST(DeriveKeyTest, ArbitraryOutputLengths) {
  Bytes master = ToBytes("m");
  for (size_t len : {1u, 16u, 31u, 32u, 33u, 64u, 100u}) {
    Bytes k = DeriveKey(master, "x", len);
    EXPECT_EQ(k.size(), len);
  }
  // Prefix property: longer outputs extend shorter ones.
  Bytes k16 = DeriveKey(master, "x", 16);
  Bytes k32 = DeriveKey(master, "x", 32);
  EXPECT_TRUE(std::equal(k16.begin(), k16.end(), k32.begin()));
}

TEST(DeriveKeyTest, DifferentMastersDiffer) {
  EXPECT_NE(DeriveKey(ToBytes("m1"), "x", 32),
            DeriveKey(ToBytes("m2"), "x", 32));
}

}  // namespace
}  // namespace essdds::crypto
