#include "crypto/aes.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/bytes.h"
#include "util/random.h"

namespace essdds::crypto {
namespace {

Bytes Hex(const std::string& s) {
  auto r = HexDecode(s);
  EXPECT_TRUE(r.ok()) << s;
  return *r;
}

struct AesVector {
  std::string key;
  std::string plaintext;
  std::string ciphertext;
};

class AesKnownAnswerTest : public ::testing::TestWithParam<AesVector> {};

// FIPS-197 Appendix B and C known-answer vectors.
INSTANTIATE_TEST_SUITE_P(
    Fips197, AesKnownAnswerTest,
    ::testing::Values(
        AesVector{"2b7e151628aed2a6abf7158809cf4f3c",
                  "3243f6a8885a308d313198a2e0370734",
                  "3925841d02dc09fbdc118597196a0b32"},
        AesVector{"000102030405060708090a0b0c0d0e0f",
                  "00112233445566778899aabbccddeeff",
                  "69c4e0d86a7b0430d8cdb78070b4c55a"},
        AesVector{"000102030405060708090a0b0c0d0e0f1011121314151617",
                  "00112233445566778899aabbccddeeff",
                  "dda97ca4864cdfe06eaf70a0ec0d7191"},
        AesVector{
            "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
            "00112233445566778899aabbccddeeff",
            "8ea2b7ca516745bfeafc49904b496089"}));

TEST_P(AesKnownAnswerTest, EncryptMatchesVector) {
  const AesVector& v = GetParam();
  auto aes = Aes::Create(Hex(v.key));
  ASSERT_TRUE(aes.ok());
  Bytes pt = Hex(v.plaintext);
  uint8_t ct[Aes::kBlockSize];
  aes->EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)), v.ciphertext);
}

TEST_P(AesKnownAnswerTest, DecryptInvertsVector) {
  const AesVector& v = GetParam();
  auto aes = Aes::Create(Hex(v.key));
  ASSERT_TRUE(aes.ok());
  Bytes ct = Hex(v.ciphertext);
  uint8_t pt[Aes::kBlockSize];
  aes->DecryptBlock(ct.data(), pt);
  EXPECT_EQ(HexEncode(ByteSpan(pt, 16)), v.plaintext);
}

TEST(AesTest, RejectsBadKeySizes) {
  Bytes short_key(15, 0);
  EXPECT_FALSE(Aes::Create(short_key).ok());
  Bytes long_key(33, 0);
  EXPECT_FALSE(Aes::Create(long_key).ok());
  Bytes empty;
  EXPECT_FALSE(Aes::Create(empty).ok());
}

TEST(AesTest, RoundsPerKeySize) {
  EXPECT_EQ(Aes::Create(Bytes(16, 1))->rounds(), 10);
  EXPECT_EQ(Aes::Create(Bytes(24, 1))->rounds(), 12);
  EXPECT_EQ(Aes::Create(Bytes(32, 1))->rounds(), 14);
}

TEST(AesTest, RandomizedEncryptDecryptRoundTrip) {
  Rng rng(1234);
  for (size_t key_len : {16u, 24u, 32u}) {
    Bytes key(key_len);
    for (auto& b : key) b = static_cast<uint8_t>(rng.Next());
    auto aes = Aes::Create(key);
    ASSERT_TRUE(aes.ok());
    for (int i = 0; i < 200; ++i) {
      uint8_t pt[16], ct[16], back[16];
      for (auto& b : pt) b = static_cast<uint8_t>(rng.Next());
      aes->EncryptBlock(pt, ct);
      aes->DecryptBlock(ct, back);
      EXPECT_EQ(ByteSpan(pt, 16).size(), ByteSpan(back, 16).size());
      EXPECT_TRUE(std::equal(pt, pt + 16, back));
    }
  }
}

TEST(AesTest, EncryptionIsNotIdentity) {
  auto aes = Aes::Create(Bytes(16, 0x42));
  uint8_t pt[16] = {0};
  uint8_t ct[16];
  aes->EncryptBlock(pt, ct);
  EXPECT_FALSE(std::equal(pt, pt + 16, ct));
}

TEST(AesTest, DifferentKeysGiveDifferentCiphertexts) {
  auto a = Aes::Create(Bytes(16, 1));
  auto b = Aes::Create(Bytes(16, 2));
  uint8_t pt[16] = {9};
  uint8_t ca[16], cb[16];
  a->EncryptBlock(pt, ca);
  b->EncryptBlock(pt, cb);
  EXPECT_FALSE(std::equal(ca, ca + 16, cb));
}

TEST(AesTest, InPlaceAliasingWorks) {
  auto aes = Aes::Create(Bytes(16, 7));
  uint8_t buf[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  uint8_t expected[16];
  aes->EncryptBlock(buf, expected);
  aes->EncryptBlock(buf, buf);  // alias in == out
  EXPECT_TRUE(std::equal(buf, buf + 16, expected));
  aes->DecryptBlock(buf, buf);
  uint8_t original[16] = {1, 2,  3,  4,  5,  6,  7,  8,
                          9, 10, 11, 12, 13, 14, 15, 16};
  EXPECT_TRUE(std::equal(buf, buf + 16, original));
}

}  // namespace
}  // namespace essdds::crypto
