#include "crypto/record_cipher.h"

#include <gtest/gtest.h>

#include <string>

#include "crypto/key_chain.h"
#include "util/bytes.h"

namespace essdds::crypto {
namespace {

RecordCipher MakeCipher() {
  auto c = RecordCipher::Create(ToBytes("test master key"));
  EXPECT_TRUE(c.ok());
  return *std::move(c);
}

TEST(RecordCipherTest, SealOpenRoundTrip) {
  RecordCipher c = MakeCipher();
  Bytes pt = ToBytes("SCHWARZ THOMAS%%%%%415-409-0001$$");
  Bytes sealed = c.Seal(7, 0, pt);
  auto opened = c.Open(7, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(RecordCipherTest, EmptyPlaintext) {
  RecordCipher c = MakeCipher();
  Bytes sealed = c.Seal(1, 0, Bytes{});
  EXPECT_EQ(sealed.size(), RecordCipher::kNonceSize + RecordCipher::kTagSize);
  auto opened = c.Open(1, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_TRUE(opened->empty());
}

TEST(RecordCipherTest, CiphertextHidesPlaintext) {
  RecordCipher c = MakeCipher();
  Bytes pt(64, 'A');
  Bytes sealed = c.Seal(2, 0, pt);
  // The body must not contain a long run of any single byte.
  int max_run = 0, run = 0;
  for (size_t i = RecordCipher::kNonceSize; i + 1 < sealed.size(); ++i) {
    run = (sealed[i] == sealed[i + 1]) ? run + 1 : 0;
    max_run = std::max(max_run, run);
  }
  EXPECT_LT(max_run, 4);
}

TEST(RecordCipherTest, TamperedCiphertextRejected) {
  RecordCipher c = MakeCipher();
  Bytes sealed = c.Seal(3, 0, ToBytes("payload"));
  for (size_t i = 0; i < sealed.size(); i += 5) {
    Bytes tampered = sealed;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(c.Open(3, tampered).ok()) << "byte " << i;
  }
}

TEST(RecordCipherTest, WrongRidRejected) {
  RecordCipher c = MakeCipher();
  Bytes sealed = c.Seal(4, 0, ToBytes("payload"));
  EXPECT_FALSE(c.Open(5, sealed).ok());
}

TEST(RecordCipherTest, TruncatedInputRejected) {
  RecordCipher c = MakeCipher();
  Bytes sealed = c.Seal(6, 0, ToBytes("payload"));
  Bytes truncated(sealed.begin(), sealed.begin() + 10);
  EXPECT_FALSE(c.Open(6, truncated).ok());
}

TEST(RecordCipherTest, DifferentSequencesUseDifferentNonces) {
  RecordCipher c = MakeCipher();
  Bytes pt = ToBytes("same content");
  Bytes s0 = c.Seal(7, 0, pt);
  Bytes s1 = c.Seal(7, 1, pt);
  EXPECT_NE(s0, s1);
  // Both decrypt.
  EXPECT_TRUE(c.Open(7, s0).ok());
  EXPECT_TRUE(c.Open(7, s1).ok());
}

TEST(RecordCipherTest, DifferentRidsProduceUnrelatedCiphertext) {
  RecordCipher c = MakeCipher();
  Bytes pt = ToBytes("identical plaintext across rids");
  Bytes a = c.Seal(100, 0, pt);
  Bytes b = c.Seal(101, 0, pt);
  EXPECT_NE(a, b);
}

TEST(RecordCipherTest, DifferentMastersCannotOpen) {
  auto c1 = RecordCipher::Create(ToBytes("master-1"));
  auto c2 = RecordCipher::Create(ToBytes("master-2"));
  Bytes sealed = c1->Seal(8, 0, ToBytes("secret"));
  EXPECT_FALSE(c2->Open(8, sealed).ok());
}

TEST(RecordCipherTest, RejectsEmptyMaster) {
  EXPECT_FALSE(RecordCipher::Create(Bytes{}).ok());
}

TEST(RecordCipherTest, LargeRecordRoundTrip) {
  RecordCipher c = MakeCipher();
  Bytes pt(100000);
  for (size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<uint8_t>(i * 31);
  Bytes sealed = c.Seal(9, 0, pt);
  auto opened = c.Open(9, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

TEST(KeyChainTest, SubkeysAreDistinctAndStable) {
  KeyChain kc(ToBytes("deployment master"));
  EXPECT_EQ(kc.RecordKey(), kc.RecordKey());
  EXPECT_NE(kc.ChunkKey(0), kc.ChunkKey(1));
  EXPECT_NE(kc.RecordKey(), Bytes{});
  EXPECT_EQ(kc.ChunkKey(3), kc.ChunkKey(3));
  EXPECT_NE(kc.AuxSeed("a"), kc.AuxSeed("b"));
  EXPECT_EQ(kc.DispersalMatrixSeed(), kc.DispersalMatrixSeed());
}

TEST(KeyChainTest, DifferentMastersGiveDifferentChains) {
  KeyChain a(ToBytes("m1"));
  KeyChain b(ToBytes("m2"));
  EXPECT_NE(a.RecordKey(), b.RecordKey());
  EXPECT_NE(a.DispersalMatrixSeed(), b.DispersalMatrixSeed());
}

}  // namespace
}  // namespace essdds::crypto
