// Cross-cutting key-separation and determinism properties: every secret in
// the system derives from one master key, derivations must be independent,
// and two stores built from the same (key, params, corpus) must be
// bit-identical — the property that lets a client rebuild its view from the
// secret alone.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "crypto/key_chain.h"
#include "util/bytes.h"

namespace essdds::crypto {
namespace {

TEST(KeySeparationTest, ChunkKeysPairwiseDistinct) {
  KeyChain kc(ToBytes("master"));
  std::set<Bytes> keys;
  for (uint32_t f = 0; f < 64; ++f) {
    EXPECT_TRUE(keys.insert(kc.ChunkKey(f)).second) << f;
  }
  EXPECT_FALSE(keys.contains(kc.RecordKey()));
}

TEST(KeySeparationTest, RecordKeyIndependentOfChunkKeys) {
  // Flipping the purpose label must change everything about the output.
  Bytes master = ToBytes("master");
  Bytes a = DeriveKey(master, "essdds/record", 32);
  Bytes b = DeriveKey(master, "essdds/chunk/0", 32);
  int equal_bytes = 0;
  for (size_t i = 0; i < a.size(); ++i) equal_bytes += (a[i] == b[i]);
  EXPECT_LT(equal_bytes, 8);  // ~1/256 per byte expected
}

TEST(KeySeparationTest, PipelinesFromSameSecretAreIdentical) {
  core::SchemeParams p{.num_codes = 16,
                       .codes_per_chunk = 4,
                       .dispersal_sites = 2};
  std::vector<std::string> corpus = {"SCHWARZ THOMAS", "WONG MING",
                                     "LITWIN WITOLD", "GARCIA MARIA"};
  auto a = core::IndexPipeline::Create(p, ToBytes("one secret"), corpus);
  auto b = core::IndexPipeline::Create(p, ToBytes("one secret"), corpus);
  ASSERT_TRUE(a.ok() && b.ok());
  for (const auto& name : corpus) {
    auto ra = a->BuildIndexRecords(1, name);
    auto rb = b->BuildIndexRecords(1, name);
    ASSERT_EQ(ra.size(), rb.size());
    for (size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].stream, rb[i].stream) << name << " rec " << i;
    }
    auto qa = a->BuildQuery(name);
    auto qb = b->BuildQuery(name);
    ASSERT_TRUE(qa.ok() && qb.ok());
    EXPECT_EQ(qa->Serialize(), qb->Serialize());
  }
}

TEST(KeySeparationTest, DifferentSecretsShareNothingVisible) {
  core::SchemeParams p{.codes_per_chunk = 4};
  auto a = core::IndexPipeline::Create(p, ToBytes("secret-a"), {});
  auto b = core::IndexPipeline::Create(p, ToBytes("secret-b"), {});
  auto ra = a->BuildIndexRecords(1, "ABCDEFGHIJKLMNOP");
  auto rb = b->BuildIndexRecords(1, "ABCDEFGHIJKLMNOP");
  size_t coincidences = 0, total = 0;
  for (size_t i = 0; i < ra.size(); ++i) {
    for (size_t c = 0; c < ra[i].stream.size(); ++c) {
      ++total;
      coincidences += (ra[i].stream[c] == rb[i].stream[c]);
    }
  }
  EXPECT_GT(total, 10u);
  EXPECT_EQ(coincidences, 0u);  // 2^-32 per chunk; 0 expected here
}

TEST(KeySeparationTest, QueriesUnderWrongKeyFindNothing) {
  // A trapdoor built under the wrong master key matches essentially no
  // index record of the right store: search capability is key-bound.
  core::SchemeParams p{.codes_per_chunk = 4};
  auto right = core::IndexPipeline::Create(p, ToBytes("right"), {});
  auto wrong = core::IndexPipeline::Create(p, ToBytes("wrong"), {});
  auto recs = right->BuildIndexRecords(1, "SCHWARZ THOMAS");
  auto bad_query = wrong->BuildQuery("SCHWARZ");
  ASSERT_TRUE(bad_query.ok());
  // Compare the wrong query's chunks against the right store's streams.
  size_t matches = 0;
  for (const auto& rec : recs) {
    for (const auto& series : bad_query->series) {
      for (uint64_t qc : series.chunks) {
        for (uint64_t sc : rec.stream) matches += (qc == sc);
      }
    }
  }
  EXPECT_EQ(matches, 0u);
}

}  // namespace
}  // namespace essdds::crypto
