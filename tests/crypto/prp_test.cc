#include "crypto/prp.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "crypto/ecb.h"
#include "util/random.h"

namespace essdds::crypto {
namespace {

Bytes TestKey() { return Bytes(16, 0x5A); }

class PrpWidthTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(AllSmallWidths, PrpWidthTest,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 10, 12, 16));

// For small domains, exhaustively verify the PRP is a permutation.
TEST_P(PrpWidthTest, IsExhaustivelyAPermutation) {
  const int bits = GetParam();
  auto prp = FeistelPrp::Create(TestKey(), bits);
  ASSERT_TRUE(prp.ok());
  const uint64_t domain = uint64_t{1} << bits;
  std::set<uint64_t> images;
  for (uint64_t x = 0; x < domain; ++x) {
    uint64_t y = prp->Encrypt(x);
    EXPECT_LT(y, domain);
    images.insert(y);
    EXPECT_EQ(prp->Decrypt(y), x);
  }
  EXPECT_EQ(images.size(), domain);  // bijective
}

class PrpLargeWidthTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(LargeWidths, PrpLargeWidthTest,
                         ::testing::Values(24, 32, 40, 48, 56, 63, 64));

TEST_P(PrpLargeWidthTest, RandomizedRoundTrip) {
  const int bits = GetParam();
  auto prp = FeistelPrp::Create(TestKey(), bits);
  ASSERT_TRUE(prp.ok());
  Rng rng(99);
  const uint64_t mask =
      bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  for (int i = 0; i < 500; ++i) {
    uint64_t x = rng.Next() & mask;
    uint64_t y = prp->Encrypt(x);
    EXPECT_EQ(y & mask, y);
    EXPECT_EQ(prp->Decrypt(y), x);
  }
}

TEST(PrpTest, RejectsOutOfRangeWidths) {
  EXPECT_FALSE(FeistelPrp::Create(TestKey(), 1).ok());
  EXPECT_FALSE(FeistelPrp::Create(TestKey(), 0).ok());
  EXPECT_FALSE(FeistelPrp::Create(TestKey(), 65).ok());
  EXPECT_FALSE(FeistelPrp::Create(TestKey(), -3).ok());
}

TEST(PrpTest, RejectsBadKey) {
  EXPECT_FALSE(FeistelPrp::Create(Bytes(5, 1), 32).ok());
}

TEST(PrpTest, TweaksSelectIndependentPermutations) {
  auto p0 = FeistelPrp::Create(TestKey(), 16, 0);
  auto p1 = FeistelPrp::Create(TestKey(), 16, 1);
  ASSERT_TRUE(p0.ok() && p1.ok());
  int differing = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    if (p0->Encrypt(x) != p1->Encrypt(x)) ++differing;
  }
  // A pair of independent random permutations agrees on ~1000/65536 points.
  EXPECT_GT(differing, 950);
}

TEST(PrpTest, KeysSelectIndependentPermutations) {
  auto p0 = FeistelPrp::Create(Bytes(16, 1), 32);
  auto p1 = FeistelPrp::Create(Bytes(16, 2), 32);
  int differing = 0;
  for (uint64_t x = 0; x < 1000; ++x) {
    if (p0->Encrypt(x) != p1->Encrypt(x)) ++differing;
  }
  EXPECT_GT(differing, 990);
}

TEST(PrpTest, DeterministicAcrossInstances) {
  auto a = FeistelPrp::Create(TestKey(), 32, 7);
  auto b = FeistelPrp::Create(TestKey(), 32, 7);
  for (uint64_t x : {0ull, 1ull, 12345ull, 0xFFFFFFFFull}) {
    EXPECT_EQ(a->Encrypt(x), b->Encrypt(x));
  }
}

TEST(PrpTest, AvalancheOnSingleBitFlip) {
  auto prp = FeistelPrp::Create(TestKey(), 64);
  uint64_t base = prp->Encrypt(0x0123456789ABCDEFull);
  int total_flipped = 0;
  for (int bit = 0; bit < 64; ++bit) {
    uint64_t y = prp->Encrypt(0x0123456789ABCDEFull ^ (uint64_t{1} << bit));
    total_flipped += __builtin_popcountll(base ^ y);
  }
  // Expect ~32 bits flipped per input-bit change: allow a generous band.
  double avg = static_cast<double>(total_flipped) / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(EcbCodebookTest, MatchesUnderlyingPrpAndCaches) {
  auto cb = EcbCodebook::Create(TestKey(), 32, 3);
  ASSERT_TRUE(cb.ok());
  auto prp = FeistelPrp::Create(TestKey(), 32, 3);
  ASSERT_TRUE(prp.ok());
  EXPECT_EQ(cb->cache_size(), 0u);
  for (uint64_t x : {5ull, 5ull, 5ull, 6ull}) {
    EXPECT_EQ(cb->Encrypt(x), prp->Encrypt(x));
  }
  EXPECT_EQ(cb->cache_size(), 2u);  // 5 and 6
  EXPECT_EQ(cb->Decrypt(cb->Encrypt(42)), 42u);
}

TEST(EcbCodebookTest, DeterministicCodebookProperty) {
  // ECB's defining property (and weakness): equal plaintext chunks yield
  // equal ciphertext chunks.
  auto cb = EcbCodebook::Create(TestKey(), 16);
  ASSERT_TRUE(cb.ok());
  EXPECT_EQ(cb->Encrypt(0xABCD), cb->Encrypt(0xABCD));
  EXPECT_NE(cb->Encrypt(0xABCD), cb->Encrypt(0xABCE));
}

}  // namespace
}  // namespace essdds::crypto
