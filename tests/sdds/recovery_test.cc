// Fault/recovery scenario suite for the LH*RS-style parity subsystem
// (DESIGN.md §16): parity rows stay synchronized with the data buckets
// through splits, merges, and record churn; killing up to m sites —
// including mid-split — ends with every lost bucket reconstructed
// byte-identically (records AND ColumnStore mirrors) on a fresh site;
// degraded reads and scans serve from the decoded shadow while the rebuild
// hold lasts; and every scenario replays bit-for-bit from its printed
// seed, because all scheduling is virtual-time and seeded.

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "gf/gf2n.h"
#include "persist/persist_manager.h"
#include "sdds/event_network.h"
#include "sdds/lh_system.h"
#include "sdds/parity_server.h"
#include "sdds/rs_code.h"
#include "tests/util/fuzz_util.h"
#include "util/bytes.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

/// `prefix` + decimal key, built by append rather than operator+ (GCC 12's
/// -Wrestrict false-positives on the temporary-chaining form under -O2,
/// and CI compiles with -Werror).
Bytes TaggedValue(const char* prefix, uint64_t key) {
  std::string s(prefix);
  s += std::to_string(key);
  return ToBytes(s);
}

LhOptions RecoveryOptions(uint64_t seed, size_t k = 4, size_t m = 1) {
  LhOptions o;
  o.bucket_capacity = 8;
  o.merge_threshold = 0.0;  // recovery scenarios run without shrinking
  o.parity_group_size = k;
  o.parity_count = m;
  o.network_mode = NetworkMode::kEvent;
  o.event_net.seed = seed;
  // Tight timings so one client retry burst walks the whole detect ->
  // probe -> declare -> reconstruct pipeline inside the test's patience.
  // The probe window must exceed a full ping+pong round trip (2 x
  // max_latency_us = 4ms) or a live-but-distant bucket gets falsely
  // declared dead — and a false declaration beyond m is unrecoverable.
  o.request_timeout_us = 3'000;
  o.report_dead_after_retries = 2;
  o.ping_timeout_us = 6'000;
  return o;
}

/// Re-encodes parity row `j` of `group` from the live data buckets — the
/// ground truth every ParityServer row is checked against.
std::map<uint64_t, Bytes> ExpectedRow(const LhSystem& sys, uint64_t group,
                                      int j) {
  const int k = static_cast<int>(sys.options().parity_group_size);
  const int m = static_cast<int>(sys.options().parity_count);
  const gf::GfField& field = gf::GfField::Of(8);
  RsCode code = RsCode::Create(k, m).value();
  std::map<uint64_t, Bytes> row;
  for (int i = 0; i < k; ++i) {
    const uint64_t b = group * static_cast<uint64_t>(k) + i;
    if (b >= sys.bucket_count()) break;
    const LhBucketServer& s = sys.bucket(b);
    const uint8_t coeff = code.ParityCoeff(j, i);
    for (const auto& [key, rank] : s.rank_of()) {
      Bytes buf = RankBuffer(key, s.records().at(key));
      for (auto& byte : buf) {
        byte = static_cast<uint8_t>(field.Mul(coeff, byte));
      }
      Bytes& acc = row[rank];
      acc = XorBytes(acc, buf);
    }
  }
  for (auto it = row.begin(); it != row.end();) {
    it = it->second.empty() ? row.erase(it) : std::next(it);
  }
  return row;
}

/// Asserts every parity row of every instantiated group equals its
/// re-encode from the live data buckets.
void ExpectParityInSync(const LhSystem& sys, const std::string& context) {
  const uint64_t k = sys.options().parity_group_size;
  const int m = static_cast<int>(sys.options().parity_count);
  const uint64_t groups = (sys.bucket_count() + k - 1) / k;
  for (uint64_t g = 0; g < groups; ++g) {
    for (int j = 0; j < m; ++j) {
      EXPECT_EQ(sys.parity_bucket(g, j).parity(), ExpectedRow(sys, g, j))
          << context << ": parity row (group " << g << ", index " << j
          << ") diverged from the data";
    }
  }
}

std::map<uint64_t, Bytes> Contents(const LhSystem& sys) {
  std::map<uint64_t, Bytes> all;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    for (const auto& [key, value] : sys.bucket(b).records()) {
      all.emplace(key, value);
    }
  }
  return all;
}

void KillBucket(LhSystem& sys, uint64_t b) {
  ASSERT_NE(sys.event_network(), nullptr);
  sys.event_network()->KillSite(sys.bucket(b).site());
}

class CollectorSite : public Site {
 public:
  void OnMessage(Message& msg, Network& net) override {
    (void)net;
    replies.push_back(std::move(msg));
  }
  std::vector<Message> replies;
};

/// Pumps every event due strictly before `horizon_us` and stops — unlike
/// PumpUntilIdle it never crosses a far-future timer, so a rebuild hold's
/// degraded window stays open while the test looks at it.
void PumpBefore(LhSystem& sys, uint64_t horizon_us) {
  EventNetwork* net = sys.event_network();
  while (net->next_event_due_us() < horizon_us) net->Pump();
}

/// Hand-driven scan fan-out (one kScan per bucket, accurate levels): the
/// client's Scan would PumpUntilIdle and fast-forward virtual time through
/// the rebuild hold, so observing a degraded scan requires driving the
/// fan-out below the hold's horizon.
std::vector<std::pair<uint64_t, Bytes>> ManualScan(
    LhSystem& sys, CollectorSite& collector, SiteId collector_site,
    uint64_t filter, const std::vector<uint32_t>& levels,
    uint64_t horizon_us) {
  collector.replies.clear();
  const uint64_t extent = levels.size();
  for (uint64_t a = 0; a < extent; ++a) {
    Message req;
    req.type = MsgType::kScan;
    req.from = collector_site;
    req.reply_to = collector_site;
    req.request_id = 1'000'000 + a;
    req.key = a;
    req.filter_id = filter;
    req.assumed_level = levels[a];
    req.to = sys.SiteOfBucket(a);
    sys.network().Send(std::move(req));
  }
  for (int round = 0; round < 64 && collector.replies.size() < extent;
       ++round) {
    PumpBefore(sys, horizon_us);
    sys.network().DrainDeferredScans();
  }
  EXPECT_EQ(collector.replies.size(), extent)
      << "degraded fan-out incomplete";
  std::vector<std::pair<uint64_t, Bytes>> hits;
  for (Message& m : collector.replies) {
    EXPECT_EQ(m.type, MsgType::kScanReply);
    for (WireRecord& r : m.records) hits.emplace_back(r.key, r.value);
  }
  std::sort(hits.begin(), hits.end());
  return hits;
}

// ---------------------------------------------------------------------
// Parity maintenance (no faults)
// ---------------------------------------------------------------------

TEST(RecoveryTest, ParityRowsMirrorDataThroughSplitsAndChurn) {
  LhOptions o = RecoveryOptions(/*seed=*/11, /*k=*/4, /*m=*/2);
  LhSystem sys(o);
  LhClient* c = sys.NewClient();
  for (uint64_t key = 1; key <= 60; ++key) {
    c->Insert(key, TaggedValue("v", key));
  }
  for (uint64_t key = 2; key <= 40; key += 2) {
    ASSERT_TRUE(c->Delete(key).ok());
  }
  for (uint64_t key = 1; key <= 20; ++key) {
    c->Insert(key, TaggedValue("w", key));  // overwrite
  }
  sys.network().PumpUntilIdle();
  ASSERT_GT(sys.bucket_count(), 4u) << "workload should have split";
  ExpectParityInSync(sys, "after split-heavy churn");
}

TEST(RecoveryTest, ParityRowsMirrorDataThroughMerges) {
  LhOptions o = RecoveryOptions(/*seed=*/12, /*k=*/4, /*m=*/2);
  o.merge_threshold = 0.4;  // parity itself must survive shrinking
  LhSystem sys(o);
  LhClient* c = sys.NewClient();
  for (uint64_t key = 1; key <= 60; ++key) {
    c->Insert(key, TaggedValue("v", key));
  }
  sys.network().PumpUntilIdle();
  const size_t grown = sys.bucket_count();
  for (uint64_t key = 1; key <= 55; ++key) {
    c->Delete(key);
  }
  sys.network().PumpUntilIdle();
  EXPECT_LT(sys.bucket_count(), grown) << "deletes should have merged";
  ExpectParityInSync(sys, "after grow-then-shrink");
}

// ---------------------------------------------------------------------
// Site-kill reconstruction
// ---------------------------------------------------------------------

TEST(RecoveryTest, KilledBucketReconstructsByteIdentical) {
  LhSystem sys(RecoveryOptions(/*seed=*/21));
  LhClient* c = sys.NewClient();
  for (uint64_t key = 1; key <= 48; ++key) {
    c->Insert(key, TaggedValue("v", key));
  }
  sys.network().PumpUntilIdle();
  ASSERT_GE(sys.bucket_count(), 5u);

  // Pick a victim that actually holds records.
  uint64_t victim = 0;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    if (sys.bucket(b).record_count() > 0) victim = b;
  }
  const std::map<uint64_t, Bytes> healthy = sys.bucket(victim).records();
  const uint32_t healthy_level = sys.bucket(victim).level();
  ASSERT_FALSE(healthy.empty());
  const SiteId dead_site = sys.bucket(victim).site();
  KillBucket(sys, victim);

  // Read every record the dead bucket owned: the first lookup's retries
  // report the dead site, the coordinator probes and declares, the parity
  // proxy reconstructs, and every op converges to the correct value.
  for (const auto& [key, value] : healthy) {
    auto r = c->Lookup(key);
    ASSERT_TRUE(r.ok()) << "key " << key << " lost with the site";
    EXPECT_EQ(*r, value) << "key " << key << " decoded wrong";
  }
  sys.network().PumpUntilIdle();

  EXPECT_FALSE(sys.bucket_dead(victim));
  EXPECT_NE(sys.bucket(victim).site(), dead_site) << "rebuilt on a new site";
  EXPECT_EQ(sys.bucket(victim).records(), healthy)
      << "reconstruction must be byte-identical";
  EXPECT_EQ(sys.bucket(victim).level(), healthy_level);
  EXPECT_TRUE(sys.bucket(victim).columns().MirrorsMap(healthy))
      << "ColumnStore mirror must be rebuilt in lockstep";
  ExpectParityInSync(sys, "after reconstruction");

  // The rebuilt bucket is a full citizen: mutations flow and parity tracks.
  for (const auto& [key, value] : healthy) {
    (void)value;
    c->Insert(key, TaggedValue("post-recovery-", key));
  }
  sys.network().PumpUntilIdle();
  ExpectParityInSync(sys, "after post-recovery writes");

  if (obs::kMetricsEnabled) {
    const std::string json = sys.network().metrics().ToJson();
    EXPECT_NE(json.find("recovery.rebuilt_buckets"), std::string::npos);
    EXPECT_NE(json.find("recovery.decode_us"), std::string::npos);
    EXPECT_NE(json.find("recovery.reconstruction_us"), std::string::npos);
    EXPECT_NE(json.find("coord.dead_sites"), std::string::npos);
    EXPECT_NE(json.find("coord.dead_site_reports"), std::string::npos);
  }
}

TEST(RecoveryTest, ReconstructsValuesWithTrailingZeroBytes) {
  // Regression: canonical trimming strips trailing 0x00 bytes from rank
  // buffers, so a value ending in zeros (one ciphertext in 256 does)
  // RS-decodes to a buffer shorter than its length prefix claims. The
  // parser must zero-extend instead of rejecting the reconstruction.
  LhSystem sys(RecoveryOptions(/*seed=*/33));
  LhClient* c = sys.NewClient();
  std::map<uint64_t, Bytes> model;
  for (uint64_t key = 1; key <= 40; ++key) {
    Bytes value(6 + key % 9, static_cast<uint8_t>(0xA0 + key));
    // 0..4 trailing zero bytes; every fifth value is all zeros.
    value.resize(value.size() + key % 5, 0);
    if (key % 5 == 0) std::fill(value.begin(), value.end(), 0);
    c->Insert(key, value);
    model[key] = std::move(value);
  }
  // Trimming can also cut into the key field and the length prefix: empty
  // values under keys whose low bytes are zero.
  for (uint64_t key : {uint64_t{1} << 8, uint64_t{1} << 16, uint64_t{1} << 32}) {
    c->Insert(key, Bytes{});
    model[key] = Bytes{};
  }
  sys.network().PumpUntilIdle();
  ASSERT_GE(sys.bucket_count(), 2u);

  // Kill every nonempty bucket in turn so each awkward record is decoded
  // at least once, wherever it hashed.
  for (uint64_t victim = 0; victim < sys.bucket_count(); ++victim) {
    const std::map<uint64_t, Bytes> healthy = sys.bucket(victim).records();
    if (healthy.empty()) continue;
    KillBucket(sys, victim);
    for (const auto& [key, value] : healthy) {
      auto r = c->Lookup(key);
      ASSERT_TRUE(r.ok()) << "key " << key << " lost with bucket " << victim;
      EXPECT_EQ(*r, value) << "key " << key << " decoded wrong";
    }
    sys.network().PumpUntilIdle();
    EXPECT_EQ(sys.bucket(victim).records(), healthy)
        << "bucket " << victim << " reconstruction must be byte-identical";
  }
  EXPECT_EQ(Contents(sys), model);
  ExpectParityInSync(sys, "after trailing-zero reconstructions");
}

TEST(RecoveryTest, TwoSimultaneousKillsWithDoubleParity) {
  LhSystem sys(RecoveryOptions(/*seed=*/22, /*k=*/4, /*m=*/2));
  LhClient* c = sys.NewClient();
  for (uint64_t key = 1; key <= 48; ++key) {
    c->Insert(key, TaggedValue("v", key));
  }
  sys.network().PumpUntilIdle();
  ASSERT_GE(sys.bucket_count(), 4u);

  // Two dead members of group 0 at once: decoding needs both parity rows.
  const uint64_t victims[2] = {1, 2};
  std::map<uint64_t, Bytes> healthy[2];
  for (int i = 0; i < 2; ++i) {
    healthy[i] = sys.bucket(victims[i]).records();
    ASSERT_FALSE(healthy[i].empty());
  }
  KillBucket(sys, victims[0]);
  KillBucket(sys, victims[1]);

  for (int i = 0; i < 2; ++i) {
    for (const auto& [key, value] : healthy[i]) {
      auto r = c->Lookup(key);
      ASSERT_TRUE(r.ok()) << "key " << key << " lost with site " << i;
      EXPECT_EQ(*r, value);
    }
  }
  sys.network().PumpUntilIdle();
  for (int i = 0; i < 2; ++i) {
    EXPECT_FALSE(sys.bucket_dead(victims[i]));
    EXPECT_EQ(sys.bucket(victims[i]).records(), healthy[i])
        << "victim " << victims[i] << " not byte-identical";
    EXPECT_TRUE(sys.bucket(victims[i]).columns().MirrorsMap(healthy[i]));
  }
  ExpectParityInSync(sys, "after double reconstruction");
}

TEST(RecoveryTest, KillLoadingSplitTargetMidSplit) {
  LhSystem sys(RecoveryOptions(/*seed=*/23));
  LhClient* c = sys.NewClient();
  std::map<uint64_t, Bytes> model;
  uint64_t key = 1;
  // Fill until an overflow report is one insert away, without settling.
  for (; key <= 8; ++key) {
    model[key] = TaggedValue("v", key);
    c->Insert(key, model[key]);
  }
  sys.network().PumpUntilIdle();
  const size_t before = sys.bucket_count();
  // The next inserts trigger a split; catch the target while it loads.
  for (; key <= 12 && sys.bucket_count() == before; ++key) {
    model[key] = TaggedValue("v", key);
    c->Insert(key, model[key]);
    for (int p = 0; p < 200 && sys.bucket_count() == before; ++p) {
      if (!sys.network().Pump()) break;
    }
  }
  ASSERT_GT(sys.bucket_count(), before) << "no split triggered";
  const uint64_t target = sys.bucket_count() - 1;
  ASSERT_TRUE(sys.bucket(target).loading())
      << "split target already settled; timing drifted";
  KillBucket(sys, target);

  // Converge: every key (including the ones the in-flight transfer was
  // carrying toward the dead target) must be readable again.
  for (const auto& [k2, v2] : model) {
    auto r = c->Lookup(k2);
    ASSERT_TRUE(r.ok()) << "key " << k2 << " lost in the mid-split kill";
    EXPECT_EQ(*r, v2);
  }
  sys.network().PumpUntilIdle();
  EXPECT_FALSE(sys.bucket_dead(target));
  EXPECT_FALSE(sys.bucket(target).loading())
      << "redelivered transfer must have settled the rebuilt target";
  EXPECT_EQ(Contents(sys), model);
  ExpectParityInSync(sys, "after mid-split target kill");
}

TEST(RecoveryTest, KillSplitSourceMidSplit) {
  LhSystem sys(RecoveryOptions(/*seed=*/24));
  LhClient* c = sys.NewClient();
  std::map<uint64_t, Bytes> model;
  uint64_t key = 1;
  for (; key <= 8; ++key) {
    model[key] = TaggedValue("v", key);
    c->Insert(key, model[key]);
  }
  sys.network().PumpUntilIdle();
  const size_t before = sys.bucket_count();
  for (; key <= 12 && sys.bucket_count() == before; ++key) {
    model[key] = TaggedValue("v", key);
    c->Insert(key, model[key]);
    for (int p = 0; p < 200 && sys.bucket_count() == before; ++p) {
      if (!sys.network().Pump()) break;
    }
  }
  ASSERT_GT(sys.bucket_count(), before) << "no split triggered";
  // Kill the bucket the coordinator ordered to split (the split pointer
  // was 0 for the first split).
  KillBucket(sys, 0);

  for (const auto& [k2, v2] : model) {
    auto r = c->Lookup(k2);
    ASSERT_TRUE(r.ok()) << "key " << k2 << " lost in the source kill";
    EXPECT_EQ(*r, v2);
  }
  sys.network().PumpUntilIdle();
  EXPECT_FALSE(sys.bucket_dead(0));
  EXPECT_EQ(Contents(sys), model);
  ExpectParityInSync(sys, "after mid-split source kill");
}

// ---------------------------------------------------------------------
// Degraded-mode serving
// ---------------------------------------------------------------------

TEST(RecoveryTest, DegradedReadsAndScansServeDuringRebuildHold) {
  LhOptions o = RecoveryOptions(/*seed=*/31);
  o.recovery_hold_us = 10'000'000;  // wide-open degraded window
  LhSystem sys(o);
  LhClient* c = sys.NewClient();
  for (uint64_t key = 1; key <= 48; ++key) {
    c->Insert(key, TaggedValue("v", key));
  }
  const uint64_t match_all =
      sys.InstallFilter([](uint64_t, ByteSpan, ByteSpan) { return true; });
  CollectorSite collector;
  const SiteId collector_site = sys.network().Register(&collector);
  sys.network().PumpUntilIdle();
  const std::map<uint64_t, Bytes> model = Contents(sys);
  std::vector<uint32_t> levels;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    levels.push_back(sys.bucket(b).level());
  }
  const auto baseline = ManualScan(sys, collector, collector_site, match_all,
                                   levels, sys.network().now_us() + 200'000);
  ASSERT_EQ(baseline.size(), model.size());

  uint64_t victim = 0;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    if (sys.bucket(b).record_count() > 0) victim = b;
  }
  const std::map<uint64_t, Bytes> healthy = sys.bucket(victim).records();
  KillBucket(sys, victim);

  // Every read during the hold is served from the decoded shadow.
  for (const auto& [key, value] : healthy) {
    auto r = c->Lookup(key);
    ASSERT_TRUE(r.ok()) << "degraded read of key " << key << " failed";
    EXPECT_EQ(*r, value);
  }
  ASSERT_TRUE(sys.bucket_dead(victim))
      << "rebuild should still be held back while degraded reads serve";

  // A scan with the dead member still un-rebuilt must return the exact
  // healthy result set — the proxy answers for the dead bucket.
  const auto degraded = ManualScan(sys, collector, collector_site, match_all,
                                   levels, sys.network().now_us() + 200'000);
  ASSERT_TRUE(sys.bucket_dead(victim))
      << "scan outlasted the hold; timings drifted";
  EXPECT_EQ(degraded, baseline)
      << "degraded scan must be byte-identical to the healthy baseline";

  if (obs::kMetricsEnabled) {
    const std::string json = sys.network().metrics().ToJson();
    EXPECT_NE(json.find("recovery.degraded_reads"), std::string::npos);
    EXPECT_NE(json.find("recovery.degraded_scans"), std::string::npos);
  }

  // Let the hold elapse: rebuild installs, the file heals completely.
  sys.network().PumpUntilIdle();
  EXPECT_FALSE(sys.bucket_dead(victim));
  EXPECT_EQ(sys.bucket(victim).records(), healthy);
  EXPECT_EQ(Contents(sys), model);
  ExpectParityInSync(sys, "after the hold elapsed");
}

TEST(RecoveryTest, DegradedScanModesAgreeByteForByte) {
  // Serial, pooled, and sharded scan execution over a file with one dead
  // group member must return identical, complete hit sets: degraded
  // evaluation happens inline at the proxy regardless of executor mode,
  // and the live buckets answer through their usual mode-specific path.
  std::vector<std::vector<std::pair<uint64_t, Bytes>>> results;
  struct ModeSpec {
    size_t threads;
    size_t shard_min;
    const char* name;
  };
  const ModeSpec modes[] = {
      {0, 0, "serial"}, {4, 0, "pooled"}, {4, 1, "sharded"}};
  for (const ModeSpec& mode : modes) {
    SCOPED_TRACE(mode.name);
    LhOptions o = RecoveryOptions(/*seed=*/32);
    o.recovery_hold_us = 10'000'000;
    o.scan_threads = mode.threads;
    o.scan_shard_min_records = mode.shard_min;
    LhSystem sys(o);
    LhClient* c = sys.NewClient();
    for (uint64_t key = 1; key <= 48; ++key) {
      c->Insert(key, TaggedValue("v", key));
    }
    const uint64_t match_all =
        sys.InstallFilter([](uint64_t, ByteSpan, ByteSpan) { return true; });
    CollectorSite collector;
    const SiteId collector_site = sys.network().Register(&collector);
    sys.network().PumpUntilIdle();
    std::vector<uint32_t> levels;
    for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
      levels.push_back(sys.bucket(b).level());
    }

    uint64_t victim = 0;
    for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
      if (sys.bucket(b).record_count() > 0) victim = b;
    }
    const std::map<uint64_t, Bytes> healthy = sys.bucket(victim).records();
    KillBucket(sys, victim);
    // Declare via one degraded read, then scan inside the hold window.
    auto probe = c->Lookup(healthy.begin()->first);
    ASSERT_TRUE(probe.ok());
    ASSERT_TRUE(sys.bucket_dead(victim));
    auto hits = ManualScan(sys, collector, collector_site, match_all, levels,
                           sys.network().now_us() + 200'000);
    ASSERT_TRUE(sys.bucket_dead(victim)) << "scan outlasted the hold";
    ASSERT_EQ(hits.size(), 48u) << "degraded scan dropped records";
    results.push_back(std::move(hits));
  }
  EXPECT_EQ(results[0], results[1]) << "pooled diverged from serial";
  EXPECT_EQ(results[0], results[2]) << "sharded diverged from serial";
}

// ---------------------------------------------------------------------
// Parity-site failure
// ---------------------------------------------------------------------

TEST(RecoveryTest, ParitySiteRebuildRestoresTheRowAndRecovery) {
  LhSystem sys(RecoveryOptions(/*seed=*/41));
  LhClient* c = sys.NewClient();
  for (uint64_t key = 1; key <= 48; ++key) {
    c->Insert(key, TaggedValue("v", key));
  }
  sys.network().PumpUntilIdle();

  // Kill parity bucket 0 of group 0 and rebuild it in-process.
  const SiteId dead_parity = sys.parity_bucket(0, 0).site();
  sys.event_network()->KillSite(dead_parity);
  sys.RebuildParityBucket(0, 0);
  EXPECT_NE(sys.parity_bucket(0, 0).site(), dead_parity);
  EXPECT_EQ(sys.parity_bucket(0, 0).parity(), ExpectedRow(sys, 0, 0))
      << "re-encoded row must match the data";

  // The rebuilt row keeps tracking...
  for (uint64_t key = 1; key <= 10; ++key) {
    c->Insert(key, TaggedValue("w", key));
  }
  sys.network().PumpUntilIdle();
  ExpectParityInSync(sys, "after parity rebuild plus churn");

  // ...and can carry a subsequent data-site reconstruction.
  uint64_t victim = 1;
  const std::map<uint64_t, Bytes> healthy = sys.bucket(victim).records();
  ASSERT_FALSE(healthy.empty());
  KillBucket(sys, victim);
  for (const auto& [key, value] : healthy) {
    auto r = c->Lookup(key);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, value);
  }
  sys.network().PumpUntilIdle();
  EXPECT_EQ(sys.bucket(victim).records(), healthy);
  ExpectParityInSync(sys, "after recovery through the rebuilt parity row");
}

// ---------------------------------------------------------------------
// Restart re-encode (persistence path)
// ---------------------------------------------------------------------

TEST(RecoveryTest, RestartReencodesParityFromRecoveredData) {
  if (!persist::kPersistEnabled) {
    GTEST_SKIP() << "persistence compiled out";
  }
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "essdds_parity_restart")
          .string();
  std::filesystem::remove_all(dir);
  LhOptions o = RecoveryOptions(/*seed=*/51);
  o.data_dir = dir;
  std::map<uint64_t, Bytes> model;
  {
    LhSystem sys(o);
    LhClient* c = sys.NewClient();
    for (uint64_t key = 1; key <= 48; ++key) {
      model[key] = TaggedValue("v", key);
      c->Insert(key, model[key]);
    }
    sys.network().PumpUntilIdle();
  }
  // Restart over the same directory: parity rows are re-encoded from the
  // replayed buckets and immediately able to carry a reconstruction.
  LhSystem sys(o);
  ASSERT_GT(sys.recovered_bucket_count(), 0u);
  EXPECT_EQ(Contents(sys), model);
  ExpectParityInSync(sys, "after restart re-encode");

  LhClient* c = sys.NewClient();
  uint64_t victim = 1;
  const std::map<uint64_t, Bytes> healthy = sys.bucket(victim).records();
  ASSERT_FALSE(healthy.empty());
  KillBucket(sys, victim);
  for (const auto& [key, value] : healthy) {
    auto r = c->Lookup(key);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, value);
  }
  sys.network().PumpUntilIdle();
  EXPECT_EQ(sys.bucket(victim).records(), healthy);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Seeded kill sweep: random kill points mid-workload, protocol faults on,
// full convergence, byte-identical replays.
// ---------------------------------------------------------------------

struct SweepDigest {
  std::map<uint64_t, Bytes> contents;
  uint64_t virtual_end_us = 0;
  uint64_t retries = 0;
  size_t rebuilt = 0;

  friend bool operator==(const SweepDigest&, const SweepDigest&) = default;
};

SweepDigest RunKillSweep(uint64_t seed, size_t m) {
  LhOptions o = RecoveryOptions(seed, /*k=*/4, m);
  o.event_net.protocol_faults = true;
  o.event_net.protocol_drop_prob = 0.05;
  o.event_net.protocol_duplicate_prob = 0.05;
  LhSystem sys(o);
  LhClient* c = sys.NewClient();
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + m);

  std::map<uint64_t, Bytes> model;
  const size_t nops = 140;
  // Kill up to m sites at seeded points mid-workload.
  const size_t kills = 1 + rng.Uniform(m);
  std::set<size_t> kill_at;
  while (kill_at.size() < kills) kill_at.insert(20 + rng.Uniform(80));
  size_t killed = 0;

  for (size_t i = 0; i < nops; ++i) {
    if (kill_at.count(i) && sys.bucket_count() > 1) {
      // Only kill a bucket in a group that still has parity headroom.
      std::map<uint64_t, size_t> dead_per_group;
      const uint64_t kk = o.parity_group_size;
      for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
        if (sys.event_network()->site_killed(sys.bucket(b).site())) {
          ++dead_per_group[b / kk];
        }
      }
      std::vector<uint64_t> eligible;
      for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
        if (sys.event_network()->site_killed(sys.bucket(b).site())) continue;
        if (dead_per_group[b / kk] < m) eligible.push_back(b);
      }
      if (!eligible.empty()) {
        const uint64_t victim = eligible[rng.Uniform(eligible.size())];
        sys.event_network()->KillSite(sys.bucket(victim).site());
        ++killed;
      }
    }
    const uint64_t key = 1 + rng.Uniform(64);
    const uint64_t pick = rng.Uniform(100);
    if (pick < 60) {
      std::string tag = "s";
      tag += std::to_string(seed);
      tag += '-';
      tag += std::to_string(i);
      tag += '-';
      tag += std::to_string(key);
      Bytes value = ToBytes(tag);
      c->Insert(key, value);
      model[key] = std::move(value);
    } else if (pick < 85) {
      auto r = c->Lookup(key);
      auto it = model.find(key);
      EXPECT_EQ(r.ok(), it != model.end())
          << "lookup(" << key << ") diverged from the model at op " << i
          << "; replay: sweep seed " << seed;
      if (r.ok() && it != model.end()) {
        EXPECT_EQ(*r, it->second)
            << "lookup(" << key << ") wrong bytes; replay: sweep seed "
            << seed;
      }
    } else {
      const bool had = model.erase(key) > 0;
      EXPECT_EQ(c->Delete(key).ok(), had)
          << "delete(" << key << ") diverged; replay: sweep seed " << seed;
    }
  }
  sys.network().PumpUntilIdle();

  // Convergence: every surviving record byte-identical to the model, no
  // bucket left declared dead, parity rows back in sync.
  EXPECT_EQ(Contents(sys), model) << "replay: sweep seed " << seed;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    EXPECT_FALSE(sys.bucket_dead(b))
        << "bucket " << b << " still dead; replay: sweep seed " << seed;
    EXPECT_TRUE(sys.bucket(b).columns().MirrorsMap(sys.bucket(b).records()))
        << "bucket " << b << " column mirror torn; replay: sweep seed "
        << seed;
  }
  ExpectParityInSync(sys, "sweep seed " + std::to_string(seed));

  SweepDigest digest;
  digest.contents = Contents(sys);
  digest.virtual_end_us = sys.network().now_us();
  digest.retries = c->retry_count();
  digest.rebuilt = killed;
  return digest;
}

TEST(RecoveryTest, SeededKillSweepSingleParity) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    SCOPED_TRACE("sweep seed " + std::to_string(seed));
    RunKillSweep(seed, /*m=*/1);
  }
}

TEST(RecoveryTest, SeededKillSweepDoubleParity) {
  for (uint64_t seed = 101; seed <= 125; ++seed) {
    SCOPED_TRACE("sweep seed " + std::to_string(seed));
    RunKillSweep(seed, /*m=*/2);
  }
}

TEST(RecoveryTest, SweepReplaysBitForBit) {
  // The whole pipeline — workload, kill points, network schedule, probe
  // timers, reconstruction — is driven by seeded virtual time: the same
  // seed must reproduce the same final state, the same virtual clock, and
  // the same retry count.
  for (uint64_t seed : {7u, 19u}) {
    SCOPED_TRACE("sweep seed " + std::to_string(seed));
    const SweepDigest a = RunKillSweep(seed, /*m=*/1);
    const SweepDigest b = RunKillSweep(seed, /*m=*/1);
    EXPECT_TRUE(a == b) << "seed " << seed << " did not replay bit-for-bit";
  }
}

// ---------------------------------------------------------------------
// Parity wire fuzz: every new Deserialize entry point holds the junk-in ->
// error-out guarantee (see tests/util/fuzz_util.h).
// ---------------------------------------------------------------------

TEST(RecoveryWireFuzzTest, ParseRankBufferNeverCrashes) {
  test::RandomBytesTrials(0xA11CE, 400, 96, [](ByteSpan junk) {
    (void)ParseRankBuffer(junk);  // must not crash/throw/over-allocate
  });
  const Bytes wire = RankBuffer(77, ToBytes("payload"));
  // Rank buffers are an equivalence class modulo trailing zeros, so a
  // truncated prefix is indistinguishable from a canonically trimmed buffer
  // whose dropped tail was zero: every prefix must parse, to the record
  // whose missing bytes are zero.
  auto trimmed = [](ByteSpan b) {
    Bytes t(b.begin(), b.end());
    while (!t.empty() && t.back() == 0) t.pop_back();
    return t;
  };
  test::TruncationSweep(wire, [&trimmed](ByteSpan prefix, size_t len) {
    auto parsed = ParseRankBuffer(prefix);
    ASSERT_TRUE(parsed.ok()) << "prefix of " << len << " bytes";
    if (len == 0) {
      EXPECT_FALSE(parsed.value().present)
          << "empty buffer is the canonical unoccupied rank";
    } else {
      EXPECT_EQ(trimmed(RankBuffer(parsed.value().key, parsed.value().value)),
                trimmed(prefix))
          << "prefix of " << len << " bytes must parse as its zero-extension";
    }
  });
  test::SingleByteMutations(0xB0B, wire, [](ByteSpan mutated, size_t) {
    (void)ParseRankBuffer(mutated);
  });
  // Round trip and zero-padding tolerance (RS decode pads to the longest
  // survivor).
  Bytes padded = wire;
  padded.resize(padded.size() + 9, 0);
  auto parsed = ParseRankBuffer(padded);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().present);
  EXPECT_EQ(parsed.value().key, 77u);
  EXPECT_EQ(parsed.value().value, ToBytes("payload"));
  // Nonzero trailing garbage is NOT padding.
  padded.back() = 1;
  EXPECT_FALSE(ParseRankBuffer(padded).ok());
}

TEST(RecoveryWireFuzzTest, ParseRankBufferRestoresTrimmedZeros) {
  // The regression that motivated zero-extension: a record value ending in
  // 0x00 (one in 256 ciphertexts) loses those bytes to canonical trimming,
  // so the parser sees a length prefix larger than the remaining payload
  // and must restore the difference instead of rejecting its own decode.
  const Bytes value = {0xAB, 0xCD, 0x00, 0x00};
  Bytes wire = RankBuffer(42, value);
  while (!wire.empty() && wire.back() == 0) wire.pop_back();
  auto parsed = ParseRankBuffer(wire);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().key, 42u);
  EXPECT_EQ(parsed.value().value, value);

  // Trimming can eat the whole tail of the encoding: an empty value under a
  // key whose low bytes are zero leaves just the marker plus the key's
  // nonzero prefix.
  Bytes deep = RankBuffer(uint64_t{1} << 16, Bytes{});
  while (!deep.empty() && deep.back() == 0) deep.pop_back();
  ASSERT_LT(deep.size(), 9u);
  auto short_parsed = ParseRankBuffer(deep);
  ASSERT_TRUE(short_parsed.ok());
  EXPECT_EQ(short_parsed.value().key, uint64_t{1} << 16);
  EXPECT_TRUE(short_parsed.value().value.empty());

  // Junk in, error out: an implausible declared length must not turn
  // zero-extension into a giant allocation.
  Bytes bomb = RankBuffer(7, ToBytes("x"));
  bomb[9] = 0xFF;  // length prefix -> ~4 GiB
  bomb[10] = 0xFF;
  bomb[11] = 0xFF;
  bomb[12] = 0xFF;
  EXPECT_FALSE(ParseRankBuffer(bomb).ok());
}

TEST(RecoveryWireFuzzTest, DecodeParityEntryNeverCrashes) {
  test::RandomBytesTrials(0xC0DE, 400, 96, [](ByteSpan junk) {
    (void)DecodeParityEntry(junk);
  });
  ParityEntry entry;
  entry.op = 0;
  entry.record_key = 123456789;
  entry.delta = ToBytes("delta-bytes");
  const Bytes wire = EncodeParityEntry(entry);
  auto round = DecodeParityEntry(wire);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value().op, entry.op);
  EXPECT_EQ(round.value().record_key, entry.record_key);
  EXPECT_EQ(round.value().delta, entry.delta);
  test::TruncationSweep(wire, [](ByteSpan prefix, size_t len) {
    EXPECT_FALSE(DecodeParityEntry(prefix).ok())
        << "truncation to " << len << " bytes must be rejected";
  });
  test::SingleByteMutations(0xD00D, wire, [](ByteSpan mutated, size_t) {
    (void)DecodeParityEntry(mutated);
  });
  // Unknown op codes are rejected.
  Bytes bad_op = wire;
  bad_op[0] = 2;
  EXPECT_FALSE(DecodeParityEntry(bad_op).ok());
}

TEST(RecoveryWireFuzzTest, DecodeSeqTargetsNeverCrashes) {
  test::RandomBytesTrials(0xFEED, 400, 128, [](ByteSpan junk) {
    (void)DecodeSeqTargets(junk);
  });
  const std::map<int, uint64_t> targets = {{0, 17}, {2, 0}, {3, 999999}};
  const Bytes wire = EncodeSeqTargets(targets);
  auto round = DecodeSeqTargets(wire);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round.value(), targets);
  test::TruncationSweep(wire, [](ByteSpan prefix, size_t len) {
    if (len > 0) {
      EXPECT_FALSE(DecodeSeqTargets(prefix).ok())
          << "truncation to " << len << " bytes must be rejected";
    }
  });
  test::SingleByteMutations(0xBEEF, wire, [](ByteSpan mutated, size_t) {
    (void)DecodeSeqTargets(mutated);
  });
}

}  // namespace
}  // namespace essdds::sdds
