#include "sdds/network.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sdds/lh_options.h"

namespace essdds::sdds {
namespace {

class RecordingSite : public Site {
 public:
  void OnMessage(Message& msg, Network& net) override {
    received.push_back(msg);
    if (bounce_to != kInvalidSite && msg.hops < 3) {
      Message fwd = msg;
      fwd.from = id;
      fwd.to = bounce_to;
      fwd.hops = msg.hops + 1;
      net.Send(fwd);
    }
  }

  SiteId id = kInvalidSite;
  SiteId bounce_to = kInvalidSite;
  std::vector<Message> received;
};

TEST(SimNetworkTest, DeliversSynchronously) {
  SimNetwork net;
  RecordingSite a, b;
  a.id = net.Register(&a);
  b.id = net.Register(&b);
  Message m;
  m.type = MsgType::kLookup;
  m.from = a.id;
  m.to = b.id;
  m.key = 42;
  net.Send(m);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].key, 42u);
  EXPECT_TRUE(a.received.empty());
}

TEST(SimNetworkTest, CountsMessagesBytesAndForwards) {
  SimNetwork net;
  RecordingSite a, b, c;
  a.id = net.Register(&a);
  b.id = net.Register(&b);
  c.id = net.Register(&c);
  b.bounce_to = c.id;  // b forwards everything to c
  Message m;
  m.type = MsgType::kInsert;
  m.from = a.id;
  m.to = b.id;
  m.value = Bytes(100, 'x');
  net.Send(m);
  const NetworkStats& st = net.stats();
  EXPECT_EQ(st.total_messages, 2u);  // a->b plus b->c forward
  EXPECT_EQ(st.forwarded_messages, 1u);
  EXPECT_GT(st.total_bytes, 200u);  // two 100-byte payloads + headers
  EXPECT_EQ(st.per_type.at(MsgType::kInsert), 2u);
  net.ResetStats();
  EXPECT_EQ(net.stats().total_messages, 0u);
}

TEST(SimNetworkTest, SiteCountTracksRegistrations) {
  SimNetwork net;
  RecordingSite sites[5];
  for (auto& s : sites) s.id = net.Register(&s);
  EXPECT_EQ(net.site_count(), 5u);
  // Ids are dense and ordered.
  for (SiteId i = 0; i < 5; ++i) EXPECT_EQ(sites[i].id, i);
}

TEST(MessageTest, EveryTypeHasAName) {
  for (int t = 0; t <= static_cast<int>(MsgType::kMergeDone); ++t) {
    EXPECT_NE(MsgTypeToString(static_cast<MsgType>(t)), "Unknown")
        << "type " << t;
  }
}

TEST(MessageTest, AccountedBytesScaleWithPayload) {
  Message small;
  small.type = MsgType::kInsert;
  small.value = Bytes(10, 'a');
  Message large = small;
  large.value = Bytes(1000, 'a');
  EXPECT_EQ(large.AccountedBytes() - small.AccountedBytes(), 990u);

  Message scan;
  scan.type = MsgType::kScan;
  scan.filter_arg = Bytes(64, 'q');
  EXPECT_GT(scan.AccountedBytes(), 64u);

  Message reply;
  reply.type = MsgType::kScanReply;
  reply.records.push_back(WireRecord{1, Bytes(50, 'r')});
  reply.records.push_back(WireRecord{2, Bytes(50, 'r')});
  EXPECT_GE(reply.AccountedBytes(), 116u);  // 2*(8+50) + header
}

TEST(MessageTest, IamCostsExtraBytes) {
  Message m;
  m.type = MsgType::kLookupReply;
  const size_t without = m.AccountedBytes();
  m.has_iam = true;
  EXPECT_GT(m.AccountedBytes(), without);
}

TEST(FileImageTest, BucketCountAndAssumedLevels) {
  FileImage img{.level = 2, .split_pointer = 1};
  EXPECT_EQ(img.BucketCount(), 5u);
  // Buckets 0 (split) and 4 (its child) are at level 3; 1..3 at level 2.
  EXPECT_EQ(img.AssumedLevel(0), 3u);
  EXPECT_EQ(img.AssumedLevel(1), 2u);
  EXPECT_EQ(img.AssumedLevel(3), 2u);
  EXPECT_EQ(img.AssumedLevel(4), 3u);
}

TEST(LhKeyHashTest, BijectiveOnSamplesAndWellSpread) {
  // splitmix64 finalizer: distinct inputs give distinct outputs and low
  // bits look uniform.
  std::set<uint64_t> images;
  int low_bit_ones = 0;
  for (uint64_t k = 0; k < 4096; ++k) {
    const uint64_t h = LhKeyHash(k);
    EXPECT_TRUE(images.insert(h).second);
    low_bit_ones += static_cast<int>(h & 1);
  }
  EXPECT_GT(low_bit_ones, 1850);
  EXPECT_LT(low_bit_ones, 2250);
}

TEST(LhKeyHashTest, ImageRespectsOption) {
  LhOptions hashed{.hash_keys = true};
  LhOptions raw{.hash_keys = false};
  EXPECT_EQ(LhKeyImage(123, raw), 123u);
  EXPECT_EQ(LhKeyImage(123, hashed), LhKeyHash(123));
  EXPECT_NE(LhKeyImage(123, hashed), 123u);
}

}  // namespace
}  // namespace essdds::sdds
