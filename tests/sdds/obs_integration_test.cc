#include <gtest/gtest.h>

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sdds/event_network.h"
#include "sdds/lh_system.h"
#include "util/bytes.h"

namespace essdds::sdds {
namespace {

using obs::HopKind;

Bytes ValueFor(uint64_t key) { return ToBytes("v" + std::to_string(key)); }

LhOptions EventOptions(uint64_t seed, double drop_prob) {
  LhOptions o;
  o.bucket_capacity = 16;
  o.network_mode = NetworkMode::kEvent;
  o.event_net.seed = seed;
  o.event_net.drop_prob = drop_prob;
  return o;
}

// ---------------------------------------------------------------------------
// Per-op latency histograms

TEST(ObsIntegrationTest, PerOpLatencyHistogramsPopulate) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LhSystem sys(EventOptions(/*seed=*/42, /*drop_prob=*/0.0));
  const uint64_t filter = sys.InstallFilter(
      [](uint64_t, ByteSpan, ByteSpan) { return true; });
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 40; ++k) c->Insert(k, ValueFor(k));
  for (uint64_t k = 0; k < 40; ++k) ASSERT_TRUE(c->Lookup(k).ok());
  ASSERT_TRUE(c->Delete(7).ok());
  const LhClient::ScanResult scan = c->Scan(filter, {});
  EXPECT_EQ(scan.hits.size(), 39u);

  obs::MetricRegistry& m = sys.network().metrics();
  EXPECT_EQ(m.histogram("client.insert_us").count(), 40u);
  EXPECT_EQ(m.histogram("client.lookup_us").count(), 40u);
  EXPECT_EQ(m.histogram("client.delete_us").count(), 1u);
  EXPECT_EQ(m.histogram("client.scan_us").count(), 1u);
  // The event network charges at least one link latency per round trip, so
  // latencies are nonzero virtual microseconds.
  EXPECT_GT(m.histogram("client.lookup_us").Summarize().p50, 0u);
  EXPECT_GE(m.histogram("client.lookup_us").max(),
            m.histogram("client.lookup_us").Summarize().p50);
}

TEST(ObsIntegrationTest, PerSiteSendCountersSumToNetworkTotals) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LhSystem sys(EventOptions(/*seed=*/7, /*drop_prob=*/0.0));
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 60; ++k) c->Insert(k, ValueFor(k));
  sys.network().PumpUntilIdle();

  obs::MetricRegistry& m = sys.network().metrics();
  uint64_t msgs = 0, bytes = 0;
  for (SiteId s = 0; s < sys.network().site_count(); ++s) {
    msgs += m.counter("net.site." + std::to_string(s) + ".msgs_sent").value();
    bytes +=
        m.counter("net.site." + std::to_string(s) + ".bytes_sent").value();
  }
  EXPECT_EQ(msgs, sys.network().stats().total_messages);
  EXPECT_EQ(bytes, sys.network().stats().total_bytes);
}

TEST(ObsIntegrationTest, PerBucketRecordGaugesTrackContents) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LhOptions o;
  o.bucket_capacity = 64;  // no split: everything stays in bucket 0
  LhSystem sys(o);
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 5; ++k) c->Insert(k, ValueFor(k));
  EXPECT_EQ(sys.network().metrics().gauge("bucket.0.records").value(), 5);
  ASSERT_TRUE(c->Delete(3).ok());
  EXPECT_EQ(sys.network().metrics().gauge("bucket.0.records").value(), 4);
}

TEST(ObsIntegrationTest, ScanBatchHistogramsRecordInDeferredMode) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LhOptions o;
  o.bucket_capacity = 8;
  o.scan_threads = 4;
  o.scan_shard_min_records = 0;  // shard every bucket with > 1 record
  LhSystem sys(o);
  const uint64_t filter = sys.InstallFilter(
      [](uint64_t, ByteSpan, ByteSpan) { return true; });
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 40; ++k) c->Insert(k, ValueFor(k));
  const LhClient::ScanResult scan = c->Scan(filter, {});
  EXPECT_EQ(scan.hits.size(), 40u);

  obs::MetricRegistry& m = sys.network().metrics();
  ASSERT_GE(m.histogram("scan.batch_tasks").count(), 1u);
  EXPECT_GE(m.histogram("scan.batch_tasks").max(),
            static_cast<uint64_t>(scan.buckets_answered));
  ASSERT_GE(m.histogram("scan.batch_shards").count(), 1u);
  EXPECT_GE(m.histogram("scan.batch_shards").max(),
            m.histogram("scan.batch_tasks").max())
      << "sharding never produces fewer execution units than tasks";
}

// ---------------------------------------------------------------------------
// Acceptance: 50-seed sweep, fault-injected tail visibly fatter

TEST(ObsIntegrationTest, FaultInjectionFattensLatencyTailAcrossFiftySeeds) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  constexpr int kSeeds = 50;
  constexpr uint64_t kOps = 30;
  obs::Histogram clean_lookup, faulty_lookup;
  obs::Histogram clean_scan, faulty_scan;
  uint64_t faulty_retries = 0;

  for (int seed = 1; seed <= kSeeds; ++seed) {
    for (const double drop : {0.0, 0.15}) {
      LhSystem sys(EventOptions(static_cast<uint64_t>(seed), drop));
      const uint64_t filter = sys.InstallFilter(
          [](uint64_t, ByteSpan, ByteSpan) { return true; });
      LhClient* c = sys.NewClient();
      for (uint64_t k = 0; k < kOps; ++k) c->Insert(k, ValueFor(k));
      for (uint64_t k = 0; k < kOps; ++k) ASSERT_TRUE(c->Lookup(k).ok());
      const LhClient::ScanResult scan = c->Scan(filter, {});
      ASSERT_EQ(scan.hits.size(), kOps);

      obs::MetricRegistry& m = sys.network().metrics();
      if (drop == 0.0) {
        clean_lookup.MergeFrom(m.histogram("client.lookup_us"));
        clean_scan.MergeFrom(m.histogram("client.scan_us"));
        EXPECT_EQ(m.counter("client.retries").value(), 0u)
            << "seed " << seed << ": fault-free run retried";
      } else {
        faulty_lookup.MergeFrom(m.histogram("client.lookup_us"));
        faulty_scan.MergeFrom(m.histogram("client.scan_us"));
        faulty_retries += m.counter("client.retries").value();
      }
    }
  }

  const obs::Histogram::Summary cl = clean_lookup.Summarize();
  const obs::Histogram::Summary fl = faulty_lookup.Summarize();
  const obs::Histogram::Summary cs = clean_scan.Summarize();
  const obs::Histogram::Summary fs = faulty_scan.Summarize();
  // The per-op latency report the issue asks the sweep to produce.
  std::cout << "lookup_us fault-free: p50=" << cl.p50 << " p95=" << cl.p95
            << " p99=" << cl.p99 << " max=" << cl.max << " n=" << cl.count
            << "\nlookup_us drop=0.15: p50=" << fl.p50 << " p95=" << fl.p95
            << " p99=" << fl.p99 << " max=" << fl.max << " n=" << fl.count
            << "\nscan_us   fault-free: p50=" << cs.p50 << " p95=" << cs.p95
            << " p99=" << cs.p99 << " max=" << cs.max
            << "\nscan_us   drop=0.15: p50=" << fs.p50 << " p95=" << fs.p95
            << " p99=" << fs.p99 << " max=" << fs.max
            << "\nretries(faulty)=" << faulty_retries << "\n";

  ASSERT_EQ(cl.count, uint64_t{kSeeds} * kOps);
  ASSERT_EQ(fl.count, uint64_t{kSeeds} * kOps);
  EXPECT_GT(faulty_retries, 0u);
  // A dropped request or reply costs at least one extra round trip (the
  // client detects the loss when the network idles and retransmits), so
  // retried ops accumulate strictly more link latency than any clean op.
  EXPECT_GT(fl.p99, cl.p99) << "retries should fatten the lookup tail";
  EXPECT_GT(fl.p99, cl.max)
      << "faulty p99 should exceed even the fault-free worst case";
  EXPECT_LT(cl.p99, 100'000u) << "fault-free lookups never wait on a timeout";
}

// ---------------------------------------------------------------------------
// Causal hop traces

TEST(ObsIntegrationTest, ScriptedDropLeavesCompleteCausalTrace) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LhSystem sys(EventOptions(/*seed=*/3, /*drop_prob=*/0.0));
  LhClient* c = sys.NewClient();
  c->Insert(5, ValueFor(5));
  sys.network().PumpUntilIdle();

  // Deterministically lose the first lookup's reply: the client must time
  // out, retransmit, and accept the retry's reply — and the trace ring must
  // hold that whole causal chain under the op's trace id.
  sys.event_network()->ScriptDrop(MsgType::kLookupReply, 1);
  ASSERT_TRUE(c->Lookup(5).ok());
  EXPECT_EQ(c->retry_count(), 1u);

  const uint64_t id = c->last_trace_id();
  ASSERT_NE(id, 0u);
  const std::vector<obs::TraceEvent> hops =
      sys.network().trace().Snapshot(id);
  auto count = [&hops](HopKind kind) {
    size_t n = 0;
    for (const obs::TraceEvent& ev : hops) n += ev.kind == kind;
    return n;
  };
  EXPECT_EQ(count(HopKind::kOpStart), 1u);
  EXPECT_EQ(count(HopKind::kDrop), 1u);
  EXPECT_EQ(count(HopKind::kRetry), 1u);
  EXPECT_EQ(count(HopKind::kOpDone), 1u);
  // request + dropped reply + retransmission + accepted reply.
  EXPECT_GE(count(HopKind::kSend), 4u);
  EXPECT_GE(count(HopKind::kDeliver), 3u);
  // Causal order: start before the drop, the drop before the retry, the
  // retry before completion.
  auto first = [&hops](HopKind kind) {
    for (size_t i = 0; i < hops.size(); ++i) {
      if (hops[i].kind == kind) return i;
    }
    return hops.size();
  };
  EXPECT_LT(first(HopKind::kOpStart), first(HopKind::kDrop));
  EXPECT_LT(first(HopKind::kDrop), first(HopKind::kRetry));
  EXPECT_LT(first(HopKind::kRetry), first(HopKind::kOpDone));

  // The human-readable dump renders the same chain.
  const std::string dump = sys.network().TraceDump(id);
  for (const char* needle :
       {"op-start", "send", "drop", "retry", "deliver", "op-done",
        "Lookup", "LookupReply"}) {
    EXPECT_NE(dump.find(needle), std::string::npos)
        << "dump lacks \"" << needle << "\":\n"
        << dump;
  }
}

TEST(ObsIntegrationTest, SplitTriggeredByInsertCarriesItsTraceId) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LhOptions o;
  o.bucket_capacity = 4;  // overflow quickly
  LhSystem sys(o);
  LhClient* c = sys.NewClient();
  uint64_t k = 0;
  while (sys.network().metrics().counter("coord.splits").value() == 0) {
    ASSERT_LT(k, 100u) << "no split after 100 inserts";
    c->Insert(k, ValueFor(k));
    ++k;
  }
  // Synchronous network: the whole overflow -> split -> move chain ran
  // inside the insert that tipped the bucket, under that insert's trace id.
  const uint64_t id = c->last_trace_id();
  ASSERT_NE(id, 0u);
  const std::vector<obs::TraceEvent> hops =
      sys.network().trace().Snapshot(id);
  auto saw_type = [&hops](MsgType t) {
    for (const obs::TraceEvent& ev : hops) {
      if (ev.msg_type == static_cast<uint8_t>(t)) return true;
    }
    return false;
  };
  EXPECT_TRUE(saw_type(MsgType::kInsert));
  EXPECT_TRUE(saw_type(MsgType::kOverflow));
  EXPECT_TRUE(saw_type(MsgType::kSplit));
  EXPECT_TRUE(saw_type(MsgType::kMoveRecords));
  EXPECT_TRUE(saw_type(MsgType::kSplitDone));
  EXPECT_EQ(sys.bucket_count(), 2u);
}

// ---------------------------------------------------------------------------
// Reset semantics and exports

TEST(ObsIntegrationTest, ResetStatsGivesPhaseLocalNumbers) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LhSystem sys(EventOptions(/*seed=*/11, /*drop_prob=*/0.0));
  LhClient* c = sys.NewClient();

  // Phase 1: inserts only.
  for (uint64_t k = 0; k < 20; ++k) c->Insert(k, ValueFor(k));
  sys.network().PumpUntilIdle();
  ASSERT_EQ(sys.network().metrics().histogram("client.insert_us").count(),
            20u);
  ASSERT_GT(sys.network().stats().total_messages, 0u);

  // The one reset point zeroes the flat stats, the registry, and the ring.
  sys.network().ResetStats();
  EXPECT_EQ(sys.network().stats().total_messages, 0u);
  EXPECT_EQ(sys.network().metrics().histogram("client.insert_us").count(),
            0u);
  EXPECT_EQ(sys.network().trace().size(), 0u);

  // Phase 2: lookups only — the numbers must describe just this phase,
  // through the instrument references sites cached before the reset.
  for (uint64_t k = 0; k < 20; ++k) ASSERT_TRUE(c->Lookup(k).ok());
  obs::MetricRegistry& m = sys.network().metrics();
  EXPECT_EQ(m.histogram("client.insert_us").count(), 0u);
  EXPECT_EQ(m.histogram("client.lookup_us").count(), 20u);
  const NetworkStats& s = sys.network().stats();
  EXPECT_EQ(s.per_type.count(MsgType::kInsert), 0u);
  EXPECT_EQ(s.per_type.at(MsgType::kLookup), 20u);
  EXPECT_GT(sys.network().trace().size(), 0u);
}

TEST(ObsIntegrationTest, NetworkStatsToJsonCarriesAllCounters) {
  LhSystem sys;
  LhClient* c = sys.NewClient();
  c->Insert(1, ValueFor(1));
  ASSERT_TRUE(c->Lookup(1).ok());
  const std::string json = sys.network().stats().ToJson();
  for (const char* needle :
       {"\"total_messages\":4", "\"total_bytes\":", "\"forwarded_messages\":0",
        "\"dropped_messages\":0", "\"retried_messages\":0", "\"per_type\":",
        "\"Insert\":1", "\"LookupReply\":1"}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "missing " << needle << " in " << json;
  }
}

TEST(ObsIntegrationTest, RegistryToJsonExportsClientHistograms) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  LhSystem sys;
  LhClient* c = sys.NewClient();
  c->Insert(1, ValueFor(1));
  const std::string json = sys.network().metrics().ToJson();
  EXPECT_NE(json.find("\"client.insert_us\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket.0.records\""), std::string::npos);
  EXPECT_NE(json.find("\"net.site."), std::string::npos);
}

}  // namespace
}  // namespace essdds::sdds
