// ColumnStore battery: the columnar mirror must track a std::map through
// arbitrary upsert/erase sequences byte for byte (the MirrorsMap audit),
// keep its arena bounded by compaction, and stay in lockstep with every
// bucket's record map across the full LH* lifecycle — splits, merges, bulk
// transfers — which is what the scan path's byte-identity rests on.

#include "sdds/column_store.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sdds/lh_system.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

Bytes Val(uint64_t k) { return ToBytes("value-" + std::to_string(k)); }

Bytes RandomPayload(Rng& rng, size_t max_len) {
  Bytes b(rng.Uniform(max_len + 1));
  for (auto& x : b) x = static_cast<uint8_t>(rng.Uniform(256));
  return b;
}

TEST(ColumnStoreTest, EmptyStoreMirrorsEmptyMap) {
  ColumnStore store;
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.MirrorsMap({}));
  const ColumnSlice s = store.slice();
  EXPECT_EQ(s.count, 0u);
}

TEST(ColumnStoreTest, UpsertKeepsAscendingKeyOrder) {
  ColumnStore store;
  for (uint64_t k : {7u, 3u, 9u, 1u, 5u}) store.Upsert(k, Val(k));
  ASSERT_EQ(store.size(), 5u);
  for (size_t i = 1; i < store.size(); ++i) {
    EXPECT_LT(store.key(i - 1), store.key(i));
  }
  const ColumnSlice s = store.slice();
  for (size_t i = 0; i < s.count; ++i) {
    const ByteSpan p = s.payload(i);
    const Bytes expected = Val(s.keys[i]);
    ASSERT_EQ(p.size(), expected.size());
    EXPECT_TRUE(std::equal(p.begin(), p.end(), expected.begin()));
  }
}

TEST(ColumnStoreTest, SameSizeReplaceGrowsNoWaste) {
  ColumnStore store;
  store.Upsert(1, ToBytes("aaaa"));
  store.Upsert(1, ToBytes("bbbb"));
  EXPECT_EQ(store.waste_bytes(), 0u);
  const ByteSpan p = store.payload(0);
  EXPECT_EQ(std::string(p.begin(), p.end()), "bbbb");
}

TEST(ColumnStoreTest, ResizeReplaceAccountsWasteAndCompacts) {
  ColumnStore store;
  store.Upsert(1, ToBytes("short"));
  store.Upsert(1, ToBytes("rather-longer-payload"));
  // The 5 old bytes are dead until compaction reclaims them.
  std::map<uint64_t, Bytes> expected{{1, ToBytes("rather-longer-payload")}};
  EXPECT_TRUE(store.MirrorsMap(expected));
  // Alternate two sizes: compaction must keep the arena within 2x the live
  // volume instead of growing without bound.
  for (int i = 0; i < 1000; ++i) {
    store.Upsert(1, i % 2 ? ToBytes("short") : ToBytes("rather-longer-payload"));
  }
  EXPECT_LE(store.waste_bytes(), 2 * ToBytes("rather-longer-payload").size());
}

TEST(ColumnStoreTest, EraseMissingKeyIsNoop) {
  ColumnStore store;
  store.Upsert(2, Val(2));
  store.Erase(99);
  EXPECT_TRUE(store.MirrorsMap({{2, Val(2)}}));
}

TEST(ColumnStoreTest, ErasingLastRecordReleasesArena) {
  ColumnStore store;
  store.Upsert(1, Val(1));
  store.Upsert(2, Val(2));
  store.Erase(1);
  store.Erase(2);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.waste_bytes(), 0u);
  EXPECT_TRUE(store.MirrorsMap({}));
}

TEST(ColumnStoreTest, EmptyPayloadsRoundTrip) {
  ColumnStore store;
  store.Upsert(1, Bytes{});
  store.Upsert(2, Val(2));
  store.Upsert(3, Bytes{});
  std::map<uint64_t, Bytes> expected{{1, {}}, {2, Val(2)}, {3, {}}};
  EXPECT_TRUE(store.MirrorsMap(expected));
  EXPECT_EQ(store.slice().payload(0).size(), 0u);
}

TEST(ColumnStoreTest, RebuildFromMatchesMap) {
  Rng rng(31);
  std::map<uint64_t, Bytes> records;
  for (int i = 0; i < 200; ++i) {
    records[rng.Uniform(1000)] = RandomPayload(rng, 40);
  }
  ColumnStore store;
  store.Upsert(12345, Val(1));  // stale content the rebuild must drop
  store.RebuildFrom(records);
  EXPECT_TRUE(store.MirrorsMap(records));
  EXPECT_EQ(store.waste_bytes(), 0u);
}

TEST(ColumnStoreTest, MirrorsMapDetectsDivergence) {
  ColumnStore store;
  store.Upsert(1, Val(1));
  EXPECT_FALSE(store.MirrorsMap({}));                       // extra record
  EXPECT_FALSE(store.MirrorsMap({{2, Val(1)}}));            // wrong key
  EXPECT_FALSE(store.MirrorsMap({{1, ToBytes("other!!")}}));  // wrong bytes
  EXPECT_FALSE(store.MirrorsMap({{1, Val(1)}, {2, Val(2)}}));  // missing
}

TEST(ColumnStoreTest, RandomOpSequenceMirrorsMap) {
  // Property: after any interleaving of upserts (random sizes, including
  // same-key replacements that churn the arena) and erases, the store holds
  // exactly the map's content in key order.
  Rng rng(32);
  for (int trial = 0; trial < 20; ++trial) {
    ColumnStore store;
    std::map<uint64_t, Bytes> model;
    for (int op = 0; op < 500; ++op) {
      const uint64_t key = rng.Uniform(64);  // small space: frequent replaces
      if (rng.Bernoulli(0.3) && !model.empty()) {
        store.Erase(key);
        model.erase(key);
      } else {
        Bytes payload = RandomPayload(rng, 64);
        store.Upsert(key, payload);
        model[key] = std::move(payload);
      }
    }
    ASSERT_TRUE(store.MirrorsMap(model)) << "trial " << trial;
  }
}

TEST(ColumnStoreTest, BucketsMirrorMapsThroughSplits) {
  // End-to-end lockstep audit, growth direction: inserts drive the file
  // through many splits (bulk kMoveRecords transfers + carve-outs); every
  // live bucket's column store must mirror its record map afterwards.
  LhSystem sys(LhOptions{.bucket_capacity = 8});
  LhClient* c = sys.NewClient();
  Rng rng(33);
  std::set<uint64_t> keys;
  for (int i = 0; i < 600; ++i) keys.insert(rng.Next());
  for (uint64_t k : keys) c->Insert(k, Val(k));
  ASSERT_GT(sys.bucket_count(), 8u);
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    const LhBucketServer& server = sys.bucket(b);
    EXPECT_TRUE(server.columns().MirrorsMap(server.records()))
        << "bucket " << b;
  }
}

TEST(ColumnStoreTest, AllDeadArenaBoundaryStaysConsistent) {
  // Shrinking every record to a zero-length payload drives the store to the
  // waste_bytes == arena_bytes boundary: the arena is 100% dead bytes while
  // live (empty) entries still exist. The compaction threshold must treat
  // the live volume as 0 here — not underflow — and the next append must
  // compact the dead bytes away.
  ColumnStore store;
  std::map<uint64_t, Bytes> m;
  store.Upsert(1, ToBytes("xxxx"));
  store.Upsert(2, ToBytes("yyyy"));
  m[1] = {};
  m[2] = {};
  store.Upsert(1, {});
  store.Upsert(2, {});
  EXPECT_EQ(store.waste_bytes(), store.arena_bytes()) << "not at the boundary";
  EXPECT_TRUE(store.MirrorsMap(m));

  // An append at the boundary sees threshold waste >= 0 + payload and
  // compacts; nothing is live, so the arena collapses to just the new bytes.
  store.Upsert(3, ToBytes("zz"));
  m[3] = ToBytes("zz");
  EXPECT_EQ(store.waste_bytes(), 0u);
  EXPECT_EQ(store.arena_bytes(), 2u);
  EXPECT_TRUE(store.MirrorsMap(m));
}

TEST(ColumnStoreTest, WastePlusLiveAlwaysEqualsArena) {
  // The accounting invariant the compaction threshold's unsigned arithmetic
  // rests on: waste + (sum of live payload lengths) == arena size, after
  // every mutation — including zero-length payloads, same-size in-place
  // replaces, and erases.
  Rng rng(55);
  ColumnStore store;
  std::map<uint64_t, Bytes> m;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t key = rng.Uniform(64);
    if (!m.empty() && rng.Bernoulli(0.3)) {
      store.Erase(key);
      m.erase(key);
    } else {
      Bytes payload = RandomPayload(rng, 24);  // empty ~1/25 of the time
      store.Upsert(key, ByteSpan(payload));
      m[key] = std::move(payload);
    }
    uint64_t live = 0;
    for (const auto& [k, v] : m) live += v.size();
    ASSERT_EQ(store.waste_bytes() + live, store.arena_bytes())
        << "invariant broken after op " << i;
  }
  EXPECT_TRUE(store.MirrorsMap(m));
}

TEST(ColumnStoreTest, AlternatingReplaceSizesStayBounded) {
  // One key flip-flopping between two payload sizes must not grow the arena
  // without bound: the compaction threshold charges the incoming payload,
  // so the arena stays within 2x live volume + one payload.
  ColumnStore store;
  const Bytes big(100, 0xAA);
  const Bytes small(50, 0xBB);
  for (int i = 0; i < 500; ++i) {
    store.Upsert(7, ByteSpan(i % 2 == 0 ? big : small));
    ASSERT_LE(store.arena_bytes(), 2 * 100u + 100u) << "iteration " << i;
  }
  EXPECT_EQ(store.size(), 1u);
}

TEST(ColumnStoreTest, BucketsMirrorMapsThroughMergesAndChurn) {
  // Shrink direction: deletes trigger merges (kMergeRecords transfers,
  // dissolved buckets), interleaved with fresh inserts and replacements.
  LhSystem sys(LhOptions{.bucket_capacity = 8, .merge_threshold = 0.4});
  LhClient* c = sys.NewClient();
  Rng rng(34);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 400; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) c->Insert(k, Val(k));
  // Delete most, re-insert some with different payloads.
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i % 4 != 0) c->Delete(keys[i]);
  }
  for (size_t i = 0; i < keys.size(); i += 8) {
    c->Insert(keys[i], ToBytes("replacement-" + std::to_string(i)));
  }
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    const LhBucketServer& server = sys.bucket(b);
    EXPECT_TRUE(server.columns().MirrorsMap(server.records()))
        << "bucket " << b;
  }
}

}  // namespace
}  // namespace essdds::sdds
