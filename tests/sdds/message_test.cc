#include "sdds/message.h"

#include <gtest/gtest.h>

#include <vector>

#include "tests/util/fuzz_util.h"

namespace essdds::sdds {
namespace {

Message SampleScanReply() {
  Message m;
  m.type = MsgType::kScanReply;
  m.from = 7;
  m.to = 3;
  m.request_id = 0x1122334455667788ull;
  m.reply_to = 3;
  m.hops = 2;
  m.filter_id = 99;
  m.filter_arg = ToBytes("encrypted query bytes");
  m.assumed_level = 5;
  m.records.push_back({42, ToBytes("alpha")});
  m.records.push_back({43, {}});
  m.records.push_back({44, ToBytes("gamma")});
  m.trace_id = 0xA5A5A5A5ull;
  return m;
}

TEST(MessageWireTest, RoundTripsEveryField) {
  Message m = SampleScanReply();
  m.key = 0xABCDEF;
  m.value = ToBytes("value bytes");
  m.found = true;
  m.has_iam = true;
  m.iam_level = 9;
  m.iam_address = 123456;
  m.bucket_to_split = 17;
  m.new_level = 4;

  auto decoded = Message::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(*decoded, m);
}

TEST(MessageWireTest, RoundTripsEveryMessageType) {
  for (uint8_t t = 0; t <= static_cast<uint8_t>(MsgType::kMergeDone); ++t) {
    Message m;
    m.type = static_cast<MsgType>(t);
    m.request_id = t;
    auto decoded = Message::Decode(m.Encode());
    ASSERT_TRUE(decoded.ok()) << MsgTypeToString(m.type);
    EXPECT_EQ(*decoded, m) << MsgTypeToString(m.type);
  }
}

TEST(MessageWireTest, RejectsUnknownMessageType) {
  Bytes wire = SampleScanReply().Encode();
  wire[0] = 0xEE;
  auto decoded = Message::Decode(wire);
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(MessageWireTest, RejectsTrailingGarbage) {
  Bytes wire = SampleScanReply().Encode();
  wire.push_back(0);
  EXPECT_TRUE(Message::Decode(wire).status().IsCorruption());
}

TEST(MessageWireTest, LegacyEncodingWithoutTraceIdDecodes) {
  // The trace id was appended to the wire layout as a compatible
  // extension: an encoding that stops after new_level (the
  // pre-observability format) must still decode, with trace_id = 0.
  Message m = SampleScanReply();
  Bytes wire = m.Encode();
  wire.resize(wire.size() - 8);  // strip the trailing trace id
  auto decoded = Message::Decode(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  Message expect = m;
  expect.trace_id = 0;
  EXPECT_EQ(*decoded, expect);
}

TEST(MessageWireTest, RejectsImplausibleRecordCountWithoutAllocating) {
  // A minimal valid message, then force the record count to 0xFFFFFFFF:
  // decode must fail closed instead of reserving 4 billion records.
  Message m;
  Bytes wire = m.Encode();
  // Record count sits 24 bytes before the end (count + bucket_to_split +
  // new_level + trace_id trailer).
  const size_t count_at = wire.size() - 24;
  wire[count_at] = wire[count_at + 1] = wire[count_at + 2] =
      wire[count_at + 3] = 0xFF;
  EXPECT_TRUE(Message::Decode(wire).status().IsCorruption());
}

TEST(MessageFuzzTest, SurvivesRandomBytes) {
  test::RandomBytesTrials(21, 2000, 200, [](ByteSpan junk) {
    auto m = Message::Decode(junk);  // must not crash
    if (m.ok()) {
      EXPECT_LE(m->type, MsgType::kMergeDone);
    }
  });
}

TEST(MessageFuzzTest, SurvivesTruncation) {
  const Message sample = SampleScanReply();
  const Bytes wire = sample.Encode();
  // Exactly one proper prefix is a valid message: cutting the trailing
  // 8-byte trace id leaves the legacy layout, which decodes with
  // trace_id = 0. Every other truncation must fail closed.
  const size_t legacy_len = wire.size() - 8;
  test::TruncationSweep(wire, [&](ByteSpan prefix, size_t len) {
    auto m = Message::Decode(prefix);
    if (len == legacy_len) {
      ASSERT_TRUE(m.ok()) << "legacy layout stopped decoding";
      Message expect = sample;
      expect.trace_id = 0;
      EXPECT_EQ(*m, expect);
    } else {
      EXPECT_FALSE(m.ok()) << "truncation at " << len << " parsed";
    }
  });
}

TEST(MessageFuzzTest, SurvivesSingleByteMutations) {
  const Bytes wire = SampleScanReply().Encode();
  test::SingleByteMutations(22, wire, [](ByteSpan mutated, size_t) {
    auto m = Message::Decode(mutated);  // must not crash or over-allocate
    if (m.ok()) {
      EXPECT_LE(m->type, MsgType::kMergeDone);
    }
  });
}

}  // namespace
}  // namespace essdds::sdds
