#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sdds/lh_system.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

Bytes Val(uint64_t k) { return ToBytes("v" + std::to_string(k)); }

LhOptions ShrinkingOptions() {
  return LhOptions{.bucket_capacity = 8, .merge_threshold = 0.25};
}

TEST(LhShrinkTest, FileShrinksAfterMassDeletes) {
  LhSystem sys(ShrinkingOptions());
  LhClient* c = sys.NewClient();
  Rng rng(1);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 2000; ++i) {
    keys.push_back(rng.Next());
    c->Insert(keys.back(), Val(keys.back()));
  }
  const size_t peak = sys.bucket_count();
  ASSERT_GT(peak, 64u);

  for (size_t i = 0; i < keys.size() - 50; ++i) {
    ASSERT_TRUE(c->Delete(keys[i]).ok());
  }
  EXPECT_LT(sys.bucket_count(), peak / 2)
      << "file did not shrink (peak " << peak << ")";
  // The survivors are all still reachable.
  for (size_t i = keys.size() - 50; i < keys.size(); ++i) {
    auto r = c->Lookup(keys[i]);
    ASSERT_TRUE(r.ok()) << "key " << keys[i];
    EXPECT_EQ(*r, Val(keys[i]));
  }
}

TEST(LhShrinkTest, CoordinatorStateStaysConsistent) {
  LhSystem sys(ShrinkingOptions());
  LhClient* c = sys.NewClient();
  Rng rng(2);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(rng.Next());
    c->Insert(keys.back(), Val(keys.back()));
  }
  for (uint64_t k : keys) ASSERT_TRUE(c->Delete(k).ok());
  // Extent must equal 2^i + n at all times; check the final state.
  const uint32_t i = sys.coordinator().level();
  const uint64_t n = sys.coordinator().split_pointer();
  EXPECT_EQ(sys.bucket_count(), (uint64_t{1} << i) + n);
  // Bucket levels follow the split pointer exactly as during growth.
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    const uint32_t expected = (b < n || b >= (uint64_t{1} << i)) ? i + 1 : i;
    EXPECT_EQ(sys.bucket(b).level(), expected) << "bucket " << b;
  }
  EXPECT_EQ(sys.TotalRecords(), 0u);
}

TEST(LhShrinkTest, GrowShrinkGrowCycleKeepsAllRecords) {
  LhSystem sys(ShrinkingOptions());
  LhClient* c = sys.NewClient();
  Rng rng(3);
  std::set<uint64_t> live;
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 800; ++i) {
      uint64_t k = rng.Next();
      c->Insert(k, Val(k));
      live.insert(k);
    }
    // Delete ~75%.
    auto it = live.begin();
    while (it != live.end()) {
      if (rng.Bernoulli(0.75)) {
        ASSERT_TRUE(c->Delete(*it).ok());
        it = live.erase(it);
      } else {
        ++it;
      }
    }
    EXPECT_EQ(sys.TotalRecords(), live.size());
    for (uint64_t k : live) {
      ASSERT_TRUE(c->Lookup(k).ok()) << "cycle " << cycle << " key " << k;
    }
  }
}

TEST(LhShrinkTest, StaleAheadClientStillReachesEverything) {
  LhSystem sys(ShrinkingOptions());
  LhClient* writer = sys.NewClient();
  Rng rng(4);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1500; ++i) {
    keys.push_back(rng.Next());
    writer->Insert(keys.back(), Val(keys.back()));
  }
  // Warm the writer's image at peak size.
  for (uint64_t k : keys) ASSERT_TRUE(writer->Lookup(k).ok());
  const uint64_t image_at_peak = writer->image().BucketCount();

  // Shrink the file drastically via a second client.
  LhClient* deleter = sys.NewClient();
  for (size_t i = 100; i < keys.size(); ++i) {
    ASSERT_TRUE(deleter->Delete(keys[i]).ok());
  }
  ASSERT_LT(sys.bucket_count(), image_at_peak)
      << "test needs the file to be smaller than the writer's image";

  // The writer's image is now AHEAD of the file; stub folding must still
  // route every request correctly.
  for (size_t i = 0; i < 100; ++i) {
    auto r = writer->Lookup(keys[i]);
    ASSERT_TRUE(r.ok()) << "key " << keys[i];
  }
  // And a scan from the stale-ahead client sees each record exactly once.
  const uint64_t match_all = sys.InstallFilter(
      [](uint64_t, ByteSpan, ByteSpan) { return true; });
  auto result = writer->Scan(match_all, {});
  EXPECT_EQ(result.hits.size(), sys.TotalRecords());
  std::set<uint64_t> seen;
  for (const auto& hit : result.hits) {
    EXPECT_TRUE(seen.insert(hit.key).second) << "duplicate " << hit.key;
  }
  EXPECT_EQ(result.buckets_answered, sys.bucket_count());
}

class ProbeSite : public Site {
 public:
  void OnMessage(Message& msg, Network& net) override {
    (void)net;
    received.push_back(std::move(msg));
  }
  std::vector<Message> received;
};

TEST(LhShrinkTest, RetiredBucketForwardsStaleKeyRequests) {
  LhSystem sys(ShrinkingOptions());
  LhClient* c = sys.NewClient();
  Rng rng(7);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1500; ++i) {
    keys.push_back(rng.Next());
    c->Insert(keys.back(), Val(keys.back()));
  }
  const size_t peak = sys.bucket_count();
  ASSERT_GT(peak, 2u);
  // The highest-numbered bucket at peak is retired first by the merges.
  const SiteId retired_site = sys.bucket(peak - 1).site();

  for (size_t i = 100; i < keys.size(); ++i) {
    ASSERT_TRUE(c->Delete(keys[i]).ok());
  }
  ASSERT_LT(sys.bucket_count(), peak - 1)
      << "test needs bucket " << peak - 1 << " to be retired";

  // A maximally stale client addresses the retired bucket directly: the
  // request must be forwarded along the parent chain and answered from
  // wherever the record lives now — never served from the retired bucket's
  // empty map (and never crash the server).
  ProbeSite probe;
  const SiteId probe_site = sys.network().Register(&probe);
  Message req;
  req.type = MsgType::kLookup;
  req.from = probe_site;
  req.reply_to = probe_site;
  req.request_id = 77;
  req.key = keys[0];
  req.to = retired_site;
  sys.network().Send(std::move(req));

  ASSERT_EQ(probe.received.size(), 1u);
  const Message& reply = probe.received[0];
  EXPECT_EQ(reply.type, MsgType::kLookupReply);
  EXPECT_TRUE(reply.found) << "record lost behind the retired bucket";
  EXPECT_EQ(reply.value, Val(keys[0]));

  // Same for a delete of a key that never existed: routed, answered, no
  // phantom state.
  Message del;
  del.type = MsgType::kDelete;
  del.from = probe_site;
  del.reply_to = probe_site;
  del.request_id = 78;
  del.key = keys[0] ^ 0x5a5a5a5a5a5a5a5aull;
  del.to = retired_site;
  sys.network().Send(std::move(del));
  ASSERT_EQ(probe.received.size(), 2u);
  EXPECT_EQ(probe.received[1].type, MsgType::kDeleteAck);
  EXPECT_FALSE(probe.received[1].found);
}

TEST(LhShrinkTest, RetiredBucketForwardsStaleScans) {
  LhSystem sys(ShrinkingOptions());
  LhClient* c = sys.NewClient();
  Rng rng(8);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1200; ++i) {
    keys.push_back(rng.Next());
    c->Insert(keys.back(), Val(keys.back()));
  }
  const size_t peak = sys.bucket_count();
  ASSERT_GT(peak, 2u);
  const SiteId retired_site = sys.bucket(peak - 1).site();
  for (size_t i = 50; i < keys.size(); ++i) {
    ASSERT_TRUE(c->Delete(keys[i]).ok());
  }
  ASSERT_LT(sys.bucket_count(), peak - 1);

  const uint64_t match_all =
      sys.InstallFilter([](uint64_t, ByteSpan, ByteSpan) { return true; });
  ProbeSite probe;
  const SiteId probe_site = sys.network().Register(&probe);
  Message scan;
  scan.type = MsgType::kScan;
  scan.from = probe_site;
  scan.reply_to = probe_site;
  scan.request_id = 79;
  scan.filter_id = match_all;
  // A level high enough that the serving bucket propagates to no children:
  // the probe expects exactly the one reply from wherever the scan folds.
  scan.assumed_level = 31;
  scan.to = retired_site;
  sys.network().Send(std::move(scan));

  ASSERT_EQ(probe.received.size(), 1u);
  const Message& reply = probe.received[0];
  EXPECT_EQ(reply.type, MsgType::kScanReply);
  // The reply comes from a live bucket (under its own bucket number) and
  // carries that bucket's records — not the retired bucket's empty map.
  ASSERT_LT(reply.key, sys.bucket_count());
  EXPECT_EQ(reply.records.size(), sys.bucket(reply.key).record_count());
}

TEST(LhShrinkTest, NeverShrinksBelowOneBucket) {
  LhSystem sys(ShrinkingOptions());
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 20; ++k) c->Insert(k, Val(k));
  for (uint64_t k = 0; k < 20; ++k) ASSERT_TRUE(c->Delete(k).ok());
  EXPECT_GE(sys.bucket_count(), 1u);
  // The file still works.
  c->Insert(99, Val(99));
  EXPECT_TRUE(c->Lookup(99).ok());
}

TEST(LhShrinkTest, DisabledByDefault) {
  LhSystem sys(LhOptions{.bucket_capacity = 8});
  LhClient* c = sys.NewClient();
  Rng rng(5);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(rng.Next());
    c->Insert(keys.back(), Val(keys.back()));
  }
  const size_t peak = sys.bucket_count();
  for (uint64_t k : keys) ASSERT_TRUE(c->Delete(k).ok());
  EXPECT_EQ(sys.bucket_count(), peak);  // no merging without opting in
}

TEST(LhShrinkTest, MergeTrafficIsAccounted) {
  LhSystem sys(ShrinkingOptions());
  LhClient* c = sys.NewClient();
  Rng rng(6);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 600; ++i) {
    keys.push_back(rng.Next());
    c->Insert(keys.back(), Val(keys.back()));
  }
  sys.network().ResetStats();
  for (uint64_t k : keys) ASSERT_TRUE(c->Delete(k).ok());
  const NetworkStats& st = sys.network().stats();
  EXPECT_GT(st.per_type.at(MsgType::kUnderflow), 0u);
  EXPECT_GT(st.per_type.at(MsgType::kMerge), 0u);
  EXPECT_EQ(st.per_type.at(MsgType::kMerge),
            st.per_type.at(MsgType::kMergeDone));
  EXPECT_EQ(st.per_type.at(MsgType::kMerge),
            st.per_type.at(MsgType::kMergeRecords));
}

}  // namespace
}  // namespace essdds::sdds
