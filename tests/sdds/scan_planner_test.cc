// Shard-planner battery: the interval carve must survive degenerate key
// distributions — keys pinned at 0 and UINT64_MAX, tight clusters, heavy
// skew, consecutive keys, single records — without crashing, double-
// covering, or dropping records; and the columnar carve (equal index
// ranges over the packed arena) must splice back byte-identically to
// serial evaluation on every one of them. Extremes land several interval
// boundaries on the same record; the planner drops the resulting empty
// ranges rather than scheduling them.

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sdds/column_store.h"
#include "sdds/lh_options.h"
#include "sdds/scan_executor.h"
#include "util/bytes.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

Bytes Val(uint64_t k) { return ToBytes("value-" + std::to_string(k)); }

std::unique_ptr<ScanFilter> SelectiveFilter() {
  return MakeScanFilter([](uint64_t key, ByteSpan value, ByteSpan arg) {
    if (arg.empty()) return true;
    return !value.empty() && key % 3 == static_cast<uint64_t>(arg[0]) % 3;
  });
}

/// The distributions the key-space interval math is most likely to get
/// wrong. Each returns the record map; the sweep runs every (distribution,
/// thread count, shard threshold, columnar on/off) combination against the
/// serial ground truth.
std::vector<std::pair<std::string, std::map<uint64_t, Bytes>>>
ExtremeDistributions() {
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  std::vector<std::pair<std::string, std::map<uint64_t, Bytes>>> out;

  auto add = [&](std::string name, std::vector<uint64_t> keys) {
    std::map<uint64_t, Bytes> records;
    for (uint64_t k : keys) records[k] = Val(k);
    out.emplace_back(std::move(name), std::move(records));
  };

  add("empty", {});
  add("single_zero", {0});
  add("single_max", {kMax});
  add("both_extremes", {0, kMax});
  // Full-span with all interior boundaries collapsing onto one record.
  add("extremes_and_midpoint", {0, kMax / 2, kMax});
  {
    std::vector<uint64_t> keys;  // tight cluster far from the origin
    for (uint64_t k = 0; k < 100; ++k) keys.push_back(1'000'000 + k);
    add("tight_cluster", std::move(keys));
  }
  {
    std::vector<uint64_t> keys;  // consecutive from zero: span == n - 1
    for (uint64_t k = 0; k < 64; ++k) keys.push_back(k);
    add("consecutive", std::move(keys));
  }
  {
    // One outlier at kMax drags the span: every interior boundary lands
    // past the cluster, so all but the first and last ranges are empty.
    std::vector<uint64_t> keys;
    for (uint64_t k = 0; k < 50; ++k) keys.push_back(k);
    keys.push_back(kMax);
    add("cluster_plus_max_outlier", std::move(keys));
  }
  {
    std::vector<uint64_t> keys;  // two clusters hugging both ends
    for (uint64_t k = 0; k < 40; ++k) {
      keys.push_back(k);
      keys.push_back(kMax - k);
    }
    add("bimodal_extremes", std::move(keys));
  }
  {
    Rng rng(51);  // uniform hashed keys: the well-behaved baseline
    std::vector<uint64_t> keys;
    for (int i = 0; i < 200; ++i) keys.push_back(rng.Next());
    add("uniform", std::move(keys));
  }
  return out;
}

ScanTask MakeTask(const std::map<uint64_t, Bytes>& records,
                  const ColumnStore* columns, const ScanFilter& filter,
                  Bytes arg) {
  ScanTask task;
  task.bucket = 0;
  task.records = &records;
  if (columns != nullptr) {
    task.columns = columns->slice();
    task.has_columns = true;
  }
  task.filter = &filter;
  task.arg = std::move(arg);
  task.reply.type = MsgType::kScanReply;
  return task;
}

void ExpectSameHits(const std::vector<WireRecord>& actual,
                    const std::vector<WireRecord>& expected,
                    const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].key, expected[i].key) << label << " hit " << i;
    EXPECT_EQ(actual[i].value, expected[i].value) << label << " hit " << i;
  }
}

TEST(ScanPlannerTest, ExtremeKeyDistributionsMatchSerial) {
  const auto distributions = ExtremeDistributions();
  const std::unique_ptr<ScanFilter> filter = SelectiveFilter();
  const Bytes arg = {uint8_t{1}};
  for (const auto& [name, records] : distributions) {
    ColumnStore columns;
    columns.RebuildFrom(records);
    // Serial ground truth (map walk, threads = 1 pool).
    std::vector<WireRecord> expected;
    {
      ScanTask task = MakeTask(records, nullptr, *filter, arg);
      ExecuteScanTask(task);
      expected = std::move(task.reply.records);
    }
    for (const size_t threads : {2u, 4u, 8u, 16u}) {
      for (const size_t shard_min : {0u, 1u, 2u, 7u, 1000u}) {
        ScanWorkerPool pool(threads);
        const std::string label = name + " threads=" +
                                  std::to_string(threads) + " shard_min=" +
                                  std::to_string(shard_min);
        {
          std::vector<ScanTask> tasks;
          tasks.push_back(MakeTask(records, nullptr, *filter, arg));
          pool.Run(tasks, shard_min);
          ExpectSameHits(tasks[0].reply.records, expected, label + " map");
        }
        {
          std::vector<ScanTask> tasks;
          tasks.push_back(MakeTask(records, &columns, *filter, arg));
          pool.Run(tasks, shard_min);
          ExpectSameHits(tasks[0].reply.records, expected,
                         label + " columnar");
        }
      }
    }
  }
}

TEST(ScanPlannerTest, MatchAllKeepsEveryRecordExactlyOnce) {
  // With a pass-everything filter the reply must be the whole map, in key
  // order, regardless of how boundary collisions carved the shards — a
  // dropped or double-covered range shows up immediately here.
  const auto distributions = ExtremeDistributions();
  const std::unique_ptr<ScanFilter> filter = SelectiveFilter();
  for (const auto& [name, records] : distributions) {
    ColumnStore columns;
    columns.RebuildFrom(records);
    ScanWorkerPool pool(8);
    for (const bool columnar : {false, true}) {
      std::vector<ScanTask> tasks;
      tasks.push_back(
          MakeTask(records, columnar ? &columns : nullptr, *filter, {}));
      pool.Run(tasks, 1);
      const auto& hits = tasks[0].reply.records;
      ASSERT_EQ(hits.size(), records.size())
          << name << (columnar ? " columnar" : " map");
      size_t i = 0;
      for (const auto& [key, value] : records) {
        EXPECT_EQ(hits[i].key, key) << name << " index " << i;
        EXPECT_EQ(hits[i].value, value) << name << " index " << i;
        ++i;
      }
    }
  }
}

TEST(ScanPlannerTest, MixedBatchesOfMapAndColumnarTasks) {
  // One drain can legitimately carry both kinds of task (unit tests and
  // benches build bare map tasks; bucket servers attach columns): the
  // planner must shard each by its own geometry.
  const auto distributions = ExtremeDistributions();
  const std::unique_ptr<ScanFilter> filter = SelectiveFilter();
  const Bytes arg = {uint8_t{2}};
  std::vector<ColumnStore> stores(distributions.size());
  std::vector<std::vector<WireRecord>> expected;
  for (size_t d = 0; d < distributions.size(); ++d) {
    stores[d].RebuildFrom(distributions[d].second);
    ScanTask task = MakeTask(distributions[d].second, nullptr, *filter, arg);
    ExecuteScanTask(task);
    expected.push_back(std::move(task.reply.records));
  }
  ScanWorkerPool pool(4);
  std::vector<ScanTask> tasks;
  for (size_t d = 0; d < distributions.size(); ++d) {
    tasks.push_back(MakeTask(distributions[d].second,
                             d % 2 == 0 ? &stores[d] : nullptr, *filter,
                             arg));
  }
  pool.Run(tasks, 2);
  for (size_t d = 0; d < tasks.size(); ++d) {
    ExpectSameHits(tasks[d].reply.records, expected[d],
                   distributions[d].first);
  }
}

}  // namespace
}  // namespace essdds::sdds
