#include "sdds/rs_code.h"

#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <tuple>
#include <vector>

#include "sdds/lh_system.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

std::vector<Bytes> RandomData(int k, size_t len, uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> data(static_cast<size_t>(k));
  for (auto& d : data) {
    d.resize(len);
    for (auto& b : d) b = static_cast<uint8_t>(rng.Next());
  }
  return data;
}

class RsCodeParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

INSTANTIATE_TEST_SUITE_P(Configs, RsCodeParamTest,
                         ::testing::Values(std::tuple{2, 1}, std::tuple{4, 2},
                                           std::tuple{4, 4}, std::tuple{8, 2},
                                           std::tuple{10, 4},
                                           std::tuple{1, 1}));

TEST_P(RsCodeParamTest, SurvivesEveryErasurePatternUpToM) {
  auto [k, m] = GetParam();
  auto code = RsCode::Create(k, m);
  ASSERT_TRUE(code.ok());
  auto data = RandomData(k, 64, 42);
  auto parity = code->Encode(data);
  ASSERT_TRUE(parity.ok());

  const int total = k + m;
  // Erase every subset of size <= m (bounded enumeration for large configs).
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::optional<Bytes>> pieces;
    for (int i = 0; i < k; ++i) pieces.emplace_back(data[static_cast<size_t>(i)]);
    for (int j = 0; j < m; ++j) pieces.emplace_back((*parity)[static_cast<size_t>(j)]);
    // Random erasure pattern of size exactly m.
    std::vector<int> idx(static_cast<size_t>(total));
    for (int i = 0; i < total; ++i) idx[static_cast<size_t>(i)] = i;
    rng.Shuffle(idx);
    for (int e = 0; e < m; ++e) pieces[static_cast<size_t>(idx[static_cast<size_t>(e)])].reset();

    auto decoded = code->Decode(pieces);
    ASSERT_TRUE(decoded.ok());
    for (int i = 0; i < k; ++i) {
      EXPECT_EQ((*decoded)[static_cast<size_t>(i)], data[static_cast<size_t>(i)]);
    }
  }
}

// Enumerate every size-c subset of {0..n-1}, invoking fn on each.
void ForEachCombination(int n, int c,
                        const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> pick(static_cast<size_t>(c));
  for (int i = 0; i < c; ++i) pick[static_cast<size_t>(i)] = i;
  for (;;) {
    fn(pick);
    int i = c - 1;
    while (i >= 0 && pick[static_cast<size_t>(i)] == n - c + i) --i;
    if (i < 0) return;
    ++pick[static_cast<size_t>(i)];
    for (int j = i + 1; j < c; ++j) {
      pick[static_cast<size_t>(j)] = pick[static_cast<size_t>(j - 1)] + 1;
    }
  }
}

// The MDS property, exhaustively: EVERY erasure pattern of size <= m decodes
// back to the original data, for every (k, m) in the grid. The random trials
// above give breadth cheaply; this gives certainty for the configs the
// recovery layer actually runs (k=4 m=1, k=4 m=2) and a margin beyond.
TEST_P(RsCodeParamTest, EveryErasurePatternUpToMDecodesExhaustively) {
  auto [k, m] = GetParam();
  auto code = RsCode::Create(k, m);
  ASSERT_TRUE(code.ok());
  auto data = RandomData(k, 48, 99);
  auto parity = code->Encode(data);
  ASSERT_TRUE(parity.ok());

  const int total = k + m;
  for (int erased = 0; erased <= m; ++erased) {
    ForEachCombination(total, erased, [&](const std::vector<int>& pattern) {
      std::vector<std::optional<Bytes>> pieces;
      for (int i = 0; i < k; ++i) {
        pieces.emplace_back(data[static_cast<size_t>(i)]);
      }
      for (int j = 0; j < m; ++j) {
        pieces.emplace_back((*parity)[static_cast<size_t>(j)]);
      }
      for (int e : pattern) pieces[static_cast<size_t>(e)].reset();

      auto decoded = code->Decode(pieces);
      ASSERT_TRUE(decoded.ok()) << "k=" << k << " m=" << m
                                << " erased=" << erased;
      for (int i = 0; i < k; ++i) {
        ASSERT_EQ((*decoded)[static_cast<size_t>(i)],
                  data[static_cast<size_t>(i)])
            << "k=" << k << " m=" << m << " slot " << i;
      }
    });
  }
}

// The converse bound: every pattern of exactly m+1 erasures must be REJECTED
// (never silently mis-decoded) — losing more than the parity headroom is
// detected, which is what lets reconstruction CHECK instead of corrupt.
TEST_P(RsCodeParamTest, EveryPatternBeyondMFailsExhaustively) {
  auto [k, m] = GetParam();
  auto code = RsCode::Create(k, m);
  ASSERT_TRUE(code.ok());
  const int total = k + m;
  if (m + 1 > total) GTEST_SKIP() << "cannot erase more pieces than exist";
  auto data = RandomData(k, 16, 5);
  auto parity = code->Encode(data);
  ASSERT_TRUE(parity.ok());

  ForEachCombination(total, m + 1, [&](const std::vector<int>& pattern) {
    std::vector<std::optional<Bytes>> pieces;
    for (int i = 0; i < k; ++i) {
      pieces.emplace_back(data[static_cast<size_t>(i)]);
    }
    for (int j = 0; j < m; ++j) {
      pieces.emplace_back((*parity)[static_cast<size_t>(j)]);
    }
    for (int e : pattern) pieces[static_cast<size_t>(e)].reset();
    EXPECT_FALSE(code->Decode(pieces).ok())
        << "k=" << k << " m=" << m << " should reject " << (m + 1)
        << " erasures";
  });
}

TEST(RsCodeTest, FailsBeyondMErasures) {
  auto code = RsCode::Create(4, 2);
  auto data = RandomData(4, 32, 1);
  auto parity = code->Encode(data);
  std::vector<std::optional<Bytes>> pieces;
  for (auto& d : data) pieces.emplace_back(d);
  for (auto& p : *parity) pieces.emplace_back(p);
  pieces[0].reset();
  pieces[1].reset();
  pieces[4].reset();  // 3 erasures > m=2
  EXPECT_FALSE(code->Decode(pieces).ok());
}

TEST(RsCodeTest, RejectsBadParameters) {
  EXPECT_FALSE(RsCode::Create(0, 1).ok());
  EXPECT_FALSE(RsCode::Create(1, 0).ok());
  EXPECT_FALSE(RsCode::Create(200, 100).ok());
  EXPECT_FALSE(RsCode::Create(-1, 2).ok());
  EXPECT_FALSE(RsCode::Create(4, -1).ok());
  EXPECT_FALSE(RsCode::Create(0, 0).ok());
  // k + m must fit the GF(2^8) code length bound (k + m <= 256).
  EXPECT_TRUE(RsCode::Create(255, 1).ok());
  EXPECT_FALSE(RsCode::Create(256, 1).ok());
}

TEST(RsCodeTest, DecodeRejectsTooManySlots) {
  auto code = RsCode::Create(3, 2);
  auto data = RandomData(3, 8, 17);
  auto parity = code->Encode(data);
  ASSERT_TRUE(parity.ok());
  std::vector<std::optional<Bytes>> pieces;
  for (auto& d : data) pieces.emplace_back(d);
  for (auto& p : *parity) pieces.emplace_back(p);
  pieces.emplace_back(Bytes(8, 0));  // 6 slots for a 5-slot code
  EXPECT_FALSE(code->Decode(pieces).ok());
}

TEST(RsCodeTest, EncodeValidatesBufferCount) {
  auto code = RsCode::Create(3, 2);
  EXPECT_FALSE(code->Encode(RandomData(2, 8, 3)).ok());
}

TEST(RsCodeTest, DecodeValidatesSlotCount) {
  auto code = RsCode::Create(3, 2);
  std::vector<std::optional<Bytes>> too_few(3);
  EXPECT_FALSE(code->Decode(too_few).ok());
}

TEST(RsCodeTest, UnequalLengthBuffersArePaddedConsistently) {
  auto code = RsCode::Create(2, 1);
  std::vector<Bytes> data = {ToBytes("short"), ToBytes("a longer buffer")};
  auto parity = code->Encode(data);
  ASSERT_TRUE(parity.ok());
  std::vector<std::optional<Bytes>> pieces = {std::nullopt, data[1],
                                              (*parity)[0]};
  auto decoded = code->Decode(pieces);
  ASSERT_TRUE(decoded.ok());
  // Reconstructed buffer is zero-padded to the group length.
  Bytes expected = ToBytes("short");
  expected.resize(data[1].size(), 0);
  EXPECT_EQ((*decoded)[0], expected);
}

TEST(RsCodeTest, RecordSerializationRoundTrip) {
  std::vector<std::pair<uint64_t, Bytes>> records = {
      {1, ToBytes("alpha")}, {42, ToBytes("")}, {7, Bytes(300, 0xAB)}};
  Bytes blob = SerializeRecords(records);
  auto back = DeserializeRecords(blob);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, records);
}

TEST(RsCodeTest, DeserializeRejectsTruncation) {
  std::vector<std::pair<uint64_t, Bytes>> records = {{1, ToBytes("alpha")}};
  Bytes blob = SerializeRecords(records);
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(DeserializeRecords(ByteSpan(blob.data(), len)).ok())
        << "len " << len;
  }
}

// End-to-end: recover a lost LH* bucket from group parity, the LH*_RS idea.
TEST(RsCodeTest, RecoversLostLhBucketFromParity) {
  LhSystem sys(LhOptions{.bucket_capacity = 16});
  LhClient* c = sys.NewClient();
  Rng rng(11);
  for (int i = 0; i < 400; ++i) {
    c->Insert(rng.Next(), ToBytes("record-" + std::to_string(i)));
  }
  const int k = 4;
  ASSERT_GE(sys.bucket_count(), static_cast<size_t>(k));
  auto code = RsCode::Create(k, 2);

  // Snapshot a group of k buckets, compute parity.
  std::vector<Bytes> group;
  for (int b = 0; b < k; ++b) {
    const auto& recs = sys.bucket(static_cast<uint64_t>(b)).records();
    std::vector<std::pair<uint64_t, Bytes>> v(recs.begin(), recs.end());
    group.push_back(SerializeRecords(v));
  }
  size_t max_len = 0;
  for (auto& g : group) max_len = std::max(max_len, g.size());
  for (auto& g : group) g.resize(max_len, 0);
  auto parity = code->Encode(group);
  ASSERT_TRUE(parity.ok());

  // "Lose" buckets 1 and 3; rebuild from the surviving pieces.
  std::vector<std::optional<Bytes>> pieces;
  for (int b = 0; b < k; ++b) pieces.emplace_back(group[static_cast<size_t>(b)]);
  for (auto& p : *parity) pieces.emplace_back(p);
  pieces[1].reset();
  pieces[3].reset();
  auto decoded = code->Decode(pieces);
  ASSERT_TRUE(decoded.ok());

  auto restored1 = DeserializeRecords((*decoded)[1]);
  ASSERT_TRUE(restored1.ok());
  const auto& original1 = sys.bucket(1).records();
  ASSERT_EQ(restored1->size(), original1.size());
  for (const auto& [key, value] : *restored1) {
    auto it = original1.find(key);
    ASSERT_TRUE(it != original1.end());
    EXPECT_EQ(it->second, value);
  }
}

}  // namespace
}  // namespace essdds::sdds
