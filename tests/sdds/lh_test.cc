#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "sdds/lh_system.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

Bytes Val(uint64_t k) { return ToBytes("value-" + std::to_string(k)); }

TEST(LhSystemTest, StartsWithSingleBucket) {
  LhSystem sys;
  EXPECT_EQ(sys.bucket_count(), 1u);
  EXPECT_EQ(sys.coordinator().level(), 0u);
  EXPECT_EQ(sys.coordinator().split_pointer(), 0u);
  EXPECT_EQ(sys.TotalRecords(), 0u);
}

TEST(LhSystemTest, InsertThenLookup) {
  LhSystem sys;
  LhClient* c = sys.NewClient();
  EXPECT_FALSE(c->Insert(1, Val(1)));
  auto r = c->Lookup(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, Val(1));
}

TEST(LhSystemTest, LookupMissingIsNotFound) {
  LhSystem sys;
  LhClient* c = sys.NewClient();
  EXPECT_TRUE(c->Lookup(99).status().IsNotFound());
}

TEST(LhSystemTest, InsertOverwrites) {
  LhSystem sys;
  LhClient* c = sys.NewClient();
  EXPECT_FALSE(c->Insert(5, Val(5)));
  EXPECT_TRUE(c->Insert(5, ToBytes("new")));
  EXPECT_EQ(*c->Lookup(5), ToBytes("new"));
  EXPECT_EQ(sys.TotalRecords(), 1u);
}

TEST(LhSystemTest, DeleteRemoves) {
  LhSystem sys;
  LhClient* c = sys.NewClient();
  c->Insert(7, Val(7));
  EXPECT_TRUE(c->Delete(7).ok());
  EXPECT_TRUE(c->Lookup(7).status().IsNotFound());
  EXPECT_TRUE(c->Delete(7).IsNotFound());
}

TEST(LhSystemTest, FileGrowsUnderLoad) {
  LhSystem sys(LhOptions{.bucket_capacity = 8});
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 500; ++k) c->Insert(k, Val(k));
  EXPECT_GT(sys.bucket_count(), 16u);
  EXPECT_EQ(sys.TotalRecords(), 500u);
}

TEST(LhSystemTest, AllRecordsFindableAfterManySplits) {
  LhSystem sys(LhOptions{.bucket_capacity = 4});
  LhClient* c = sys.NewClient();
  Rng rng(2024);
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; ++i) keys.insert(rng.Next());
  for (uint64_t k : keys) c->Insert(k, Val(k));
  for (uint64_t k : keys) {
    auto r = c->Lookup(k);
    ASSERT_TRUE(r.ok()) << "key " << k;
    EXPECT_EQ(*r, Val(k));
  }
}

TEST(LhSystemTest, RecordsLiveInTheirLinearHashBucket) {
  // Invariant: every record's hashed address under its bucket's own level
  // equals the bucket number.
  LhSystem sys(LhOptions{.bucket_capacity = 4});
  LhClient* c = sys.NewClient();
  Rng rng(7);
  for (int i = 0; i < 1500; ++i) c->Insert(rng.Next(), Val(i));
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    const LhBucketServer& srv = sys.bucket(b);
    const uint64_t mask = (uint64_t{1} << srv.level()) - 1;
    for (const auto& [key, value] : srv.records()) {
      EXPECT_EQ(LhKeyImage(key, sys.options()) & mask, b)
          << "key " << key << " misplaced in " << b;
    }
  }
}

TEST(LhSystemTest, RawKeyAddressingWhenHashingDisabled) {
  LhSystem sys(LhOptions{.bucket_capacity = 4, .hash_keys = false});
  LhClient* c = sys.NewClient();
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) c->Insert(rng.Next(), Val(i));
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    const LhBucketServer& srv = sys.bucket(b);
    const uint64_t mask = (uint64_t{1} << srv.level()) - 1;
    for (const auto& [key, value] : srv.records()) {
      EXPECT_EQ(key & mask, b);
    }
  }
}

TEST(LhSystemTest, BucketLevelsFollowSplitPointer) {
  LhSystem sys(LhOptions{.bucket_capacity = 4});
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 800; ++k) c->Insert(k * 2654435761u, Val(k));
  const uint32_t i = sys.coordinator().level();
  const uint64_t n = sys.coordinator().split_pointer();
  EXPECT_EQ(sys.bucket_count(), (uint64_t{1} << i) + n);
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    const uint32_t expected =
        (b < n || b >= (uint64_t{1} << i)) ? i + 1 : i;
    EXPECT_EQ(sys.bucket(b).level(), expected) << "bucket " << b;
  }
}

TEST(LhSystemTest, StaleClientStillReachesEverything) {
  LhSystem sys(LhOptions{.bucket_capacity = 4});
  LhClient* writer = sys.NewClient();
  std::vector<uint64_t> keys;
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.Next());
  for (uint64_t k : keys) writer->Insert(k, Val(k));

  // A brand-new client has image (0,0) — maximally stale.
  LhClient* reader = sys.NewClient();
  EXPECT_EQ(reader->image().BucketCount(), 1u);
  for (uint64_t k : keys) {
    auto r = reader->Lookup(k);
    ASSERT_TRUE(r.ok()) << "key " << k;
  }
}

TEST(LhSystemTest, ForwardingNeverExceedsTwoHops) {
  LhSystem sys(LhOptions{.bucket_capacity = 4});
  LhClient* writer = sys.NewClient();
  Rng rng(123);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1200; ++i) {
    keys.push_back(rng.Next());
    writer->Insert(keys.back(), Val(i));
  }
  LhClient* stale = sys.NewClient();
  // Track hops via the reply message's hop counter: reply.hops was copied
  // from the serving request. Use lookups; the guarantee is <= 2 forwards.
  // (We cannot see the reply struct here, so assert via stats: every lookup
  // sends 1 request + <=2 forwards + 1 reply.)
  for (uint64_t k : keys) {
    sys.network().ResetStats();
    ASSERT_TRUE(stale->Lookup(k).ok());
    const NetworkStats& st = sys.network().stats();
    // 1 client request + forwards + 1 reply.
    const uint64_t forwards = st.total_messages - 2;
    EXPECT_LE(forwards, 2u) << "key " << k;
    EXPECT_EQ(st.forwarded_messages, forwards);
  }
}

TEST(LhSystemTest, ClientImageConvergesViaIam) {
  LhSystem sys(LhOptions{.bucket_capacity = 4});
  LhClient* writer = sys.NewClient();
  Rng rng(5);
  std::vector<uint64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(rng.Next());
    writer->Insert(keys.back(), Val(i));
  }
  LhClient* reader = sys.NewClient();
  for (uint64_t k : keys) ASSERT_TRUE(reader->Lookup(k).ok());
  EXPECT_GT(reader->iam_count(), 0u);

  // After enough traffic the image must be close to the true extent; repeat
  // lookups should almost never forward.
  sys.network().ResetStats();
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(reader->Lookup(keys[static_cast<size_t>(i)]).ok());
  }
  const NetworkStats& st = sys.network().stats();
  const double forward_rate =
      static_cast<double>(st.forwarded_messages) / 200.0;
  EXPECT_LT(forward_rate, 0.20) << st.ToString();
}

TEST(LhSystemTest, ImageNeverExceedsTrueExtent) {
  LhSystem sys(LhOptions{.bucket_capacity = 4});
  LhClient* c = sys.NewClient();
  Rng rng(31);
  for (int i = 0; i < 1500; ++i) {
    c->Insert(rng.Next(), Val(i));
    ASSERT_LE(c->image().BucketCount(), sys.bucket_count());
  }
}

TEST(LhSystemTest, ScanReachesEveryBucketExactlyOnce) {
  LhSystem sys(LhOptions{.bucket_capacity = 4});
  LhClient* c = sys.NewClient();
  Rng rng(8);
  for (int i = 0; i < 700; ++i) c->Insert(rng.Next(), Val(i));

  const uint64_t match_all =
      sys.InstallFilter([](uint64_t, ByteSpan, ByteSpan) { return true; });
  // A stale client must still reach all buckets.
  LhClient* stale = sys.NewClient();
  auto result = stale->Scan(match_all, {});
  EXPECT_EQ(result.buckets_answered, sys.bucket_count());
  EXPECT_EQ(result.hits.size(), sys.TotalRecords());
  // No duplicates.
  std::set<uint64_t> seen;
  for (const auto& r : result.hits) {
    EXPECT_TRUE(seen.insert(r.key).second) << "duplicate hit " << r.key;
  }
}

TEST(LhSystemTest, ScanFilterSelectsSubset) {
  LhSystem sys(LhOptions{.bucket_capacity = 16});
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 300; ++k) c->Insert(k, Val(k));
  const uint64_t odd_filter = sys.InstallFilter(
      [](uint64_t key, ByteSpan, ByteSpan) { return key % 2 == 1; });
  auto result = c->Scan(odd_filter, {});
  EXPECT_EQ(result.hits.size(), 150u);
  for (const auto& r : result.hits) EXPECT_EQ(r.key % 2, 1u);
}

TEST(LhSystemTest, ScanFilterReceivesArgument) {
  LhSystem sys(LhOptions{.bucket_capacity = 16});
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 100; ++k) c->Insert(k, Val(k));
  const uint64_t mod_filter =
      sys.InstallFilter([](uint64_t key, ByteSpan, ByteSpan arg) {
        return !arg.empty() && key % arg[0] == 0;
      });
  auto result = c->Scan(mod_filter, Bytes{7});
  size_t expected = 0;
  for (uint64_t k = 0; k < 100; ++k) expected += (k % 7 == 0);
  EXPECT_EQ(result.hits.size(), expected);
}

TEST(LhSystemTest, LoadFactorStaysReasonable) {
  LhSystem sys(LhOptions{.bucket_capacity = 32});
  LhClient* c = sys.NewClient();
  Rng rng(13);
  for (int i = 0; i < 5000; ++i) c->Insert(rng.Next(), Bytes(16, 'x'));
  // Linear hashing with uncontrolled splits keeps load factor in a sane
  // band (paper-typical ~0.6-0.8).
  EXPECT_GT(sys.LoadFactor(), 0.3);
  EXPECT_LT(sys.LoadFactor(), 1.1);
}

TEST(LhSystemTest, MessageCountPerInsertIsConstantIndependentOfScale) {
  // The SDDS promise: access cost does not grow with file size.
  LhSystem sys(LhOptions{.bucket_capacity = 32});
  LhClient* c = sys.NewClient();
  Rng rng(17);
  auto measure = [&](int batch) {
    sys.network().ResetStats();
    for (int i = 0; i < batch; ++i) c->Insert(rng.Next(), Bytes(8, 'a'));
    return static_cast<double>(sys.network().stats().total_messages) / batch;
  };
  (void)measure(2000);                  // warm-up: grow the file
  double small_cost = measure(1000);    // ~dozens of buckets
  for (int i = 0; i < 20000; ++i) c->Insert(rng.Next(), Bytes(8, 'a'));
  double large_cost = measure(1000);    // ~hundreds of buckets
  // Within noise, cost per op stays flat (2 messages + occasional split
  // traffic + rare forwards).
  EXPECT_LT(large_cost, small_cost * 1.5 + 1.0);
}

TEST(LhSystemTest, DistributionAcrossBucketsIsBalanced) {
  LhSystem sys(LhOptions{.bucket_capacity = 32});
  LhClient* c = sys.NewClient();
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) c->Insert(rng.Next(), Bytes(4, 'b'));
  size_t max_records = 0;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    max_records = std::max(max_records, sys.bucket(b).record_count());
  }
  const double mean = static_cast<double>(sys.TotalRecords()) /
                      static_cast<double>(sys.bucket_count());
  EXPECT_LT(static_cast<double>(max_records), mean * 4);
}

TEST(LhSystemTest, SequentialKeysStripePerfectlyWithoutHashing) {
  // With raw addressing, linear hashing uses the low bits directly, so
  // sequential keys stripe perfectly.
  LhSystem sys(LhOptions{.bucket_capacity = 32, .hash_keys = false});
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 4096; ++k) c->Insert(k, Bytes(4, 'c'));
  size_t min_records = static_cast<size_t>(-1), max_records = 0;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    min_records = std::min(min_records, sys.bucket(b).record_count());
    max_records = std::max(max_records, sys.bucket(b).record_count());
  }
  EXPECT_LE(max_records, 2 * std::max<size_t>(min_records, 1));
}

TEST(LhSystemTest, StructuredKeysBalanceWithHashing) {
  // The scheme's index keys carry a sub-id in the low bits; without the
  // key mixer they would collapse onto a handful of addresses. With it,
  // the file stays compact and balanced.
  LhSystem sys(LhOptions{.bucket_capacity = 32});
  LhClient* c = sys.NewClient();
  for (uint64_t rid = 0; rid < 1000; ++rid) {
    for (uint64_t subid = 0; subid < 4; ++subid) {
      c->Insert((rid << 8) | subid, Bytes(4, 'c'));
    }
  }
  // 4000 records / 32 per bucket: a sane file has ~125-260 buckets, not
  // thousands (which the unhashed layout produces).
  EXPECT_LT(sys.bucket_count(), 400u);
  EXPECT_GT(sys.LoadFactor(), 0.3);
}

TEST(LhSystemTest, MultipleClientsSeeSameData) {
  LhSystem sys(LhOptions{.bucket_capacity = 8});
  LhClient* a = sys.NewClient();
  LhClient* b = sys.NewClient();
  for (uint64_t k = 0; k < 200; ++k) a->Insert(k, Val(k));
  for (uint64_t k = 200; k < 400; ++k) b->Insert(k, Val(k));
  for (uint64_t k = 0; k < 400; ++k) {
    EXPECT_TRUE(a->Lookup(k).ok());
    EXPECT_TRUE(b->Lookup(k).ok());
  }
}

TEST(LhSystemTest, DeleteHeavyWorkloadKeepsInvariants) {
  LhSystem sys(LhOptions{.bucket_capacity = 8});
  LhClient* c = sys.NewClient();
  Rng rng(23);
  std::set<uint64_t> live;
  for (int i = 0; i < 3000; ++i) {
    if (!live.empty() && rng.Bernoulli(0.4)) {
      uint64_t victim = *live.begin();
      EXPECT_TRUE(c->Delete(victim).ok());
      live.erase(live.begin());
    } else {
      uint64_t k = rng.Next();
      c->Insert(k, Val(k));
      live.insert(k);
    }
  }
  EXPECT_EQ(sys.TotalRecords(), live.size());
  for (uint64_t k : live) EXPECT_TRUE(c->Lookup(k).ok());
}

TEST(NetworkStatsTest, CountsMessagesAndBytes) {
  LhSystem sys;
  LhClient* c = sys.NewClient();
  sys.network().ResetStats();
  c->Insert(1, Bytes(100, 'z'));
  const NetworkStats& st = sys.network().stats();
  EXPECT_EQ(st.total_messages, 2u);  // request + ack
  EXPECT_GT(st.total_bytes, 100u);
  EXPECT_EQ(st.per_type.at(MsgType::kInsert), 1u);
  EXPECT_EQ(st.per_type.at(MsgType::kInsertAck), 1u);
  EXPECT_FALSE(st.ToString().empty());
}

}  // namespace
}  // namespace essdds::sdds
