#include "sdds/event_network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sdds/lh_system.h"

namespace essdds::sdds {
namespace {

class RecordingSite : public Site {
 public:
  void OnMessage(Message& msg, Network& net) override {
    (void)net;
    received.push_back(msg);
  }
  std::vector<Message> received;
};

Message KeyedMessage(MsgType type, SiteId from, SiteId to, uint64_t key) {
  Message m;
  m.type = type;
  m.from = from;
  m.to = to;
  m.key = key;
  return m;
}

TEST(EventNetworkTest, SendSchedulesAndPumpDelivers) {
  EventNetwork net;
  RecordingSite a, b;
  const SiteId sa = net.Register(&a);
  const SiteId sb = net.Register(&b);
  net.Send(KeyedMessage(MsgType::kLookup, sa, sb, 42));
  // Nothing is delivered until the requester pumps.
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.stats().total_messages, 1u);
  EXPECT_EQ(net.queued_events(), 1u);

  EXPECT_TRUE(net.Pump());
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].key, 42u);
  EXPECT_GE(net.now_us(), net.options().min_latency_us);
  EXPECT_FALSE(net.Pump()) << "idle after the only event";
}

TEST(EventNetworkTest, SameSeedSameSchedule) {
  auto run = [](uint64_t seed) {
    EventNetworkOptions opts;
    opts.seed = seed;
    EventNetwork net(opts);
    RecordingSite a, b, c;
    const SiteId sa = net.Register(&a);
    const SiteId sb = net.Register(&b);
    const SiteId sc = net.Register(&c);
    for (uint64_t k = 0; k < 40; ++k) {
      net.Send(KeyedMessage(MsgType::kLookup, k % 2 ? sa : sb, sc, k));
    }
    net.PumpUntilIdle();
    std::vector<uint64_t> order;
    for (const Message& m : c.received) order.push_back(m.key);
    return order;
  };
  EXPECT_EQ(run(7), run(7)) << "a seed must replay bit-for-bit";
  EXPECT_NE(run(7), run(8)) << "different seeds should schedule differently";
}

TEST(EventNetworkTest, CrossLinkTrafficReorders) {
  // Two senders, one receiver: per-message latencies reorder the arrivals
  // relative to the send order even with FIFO links.
  EventNetworkOptions opts;
  opts.seed = 123;
  opts.min_latency_us = 1;
  opts.max_latency_us = 10'000;
  EventNetwork net(opts);
  RecordingSite a, b, c;
  const SiteId sa = net.Register(&a);
  const SiteId sb = net.Register(&b);
  const SiteId sc = net.Register(&c);
  for (uint64_t k = 0; k < 50; ++k) {
    net.Send(KeyedMessage(MsgType::kLookup, k % 2 ? sa : sb, sc, k));
  }
  net.PumpUntilIdle();
  ASSERT_EQ(c.received.size(), 50u);
  std::vector<uint64_t> order;
  for (const Message& m : c.received) order.push_back(m.key);
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()))
      << "50 random latencies should produce at least one inversion";
}

TEST(EventNetworkTest, FifoLinkNeverReordersWithinOneLink) {
  EventNetworkOptions opts;
  opts.seed = 99;
  opts.min_latency_us = 1;
  opts.max_latency_us = 50'000;  // huge jitter: FIFO must still hold
  EventNetwork net(opts);
  RecordingSite a, b;
  const SiteId sa = net.Register(&a);
  const SiteId sb = net.Register(&b);
  for (uint64_t k = 0; k < 100; ++k) {
    net.Send(KeyedMessage(MsgType::kLookup, sa, sb, k));
  }
  net.PumpUntilIdle();
  ASSERT_EQ(b.received.size(), 100u);
  for (uint64_t k = 0; k < 100; ++k) EXPECT_EQ(b.received[k].key, k);
}

TEST(EventNetworkTest, DropsCountSeparatelyAndOnlyEligibleTypes) {
  EventNetworkOptions opts;
  opts.seed = 5;
  opts.drop_prob = 0.5;
  EventNetwork net(opts);
  RecordingSite a, b;
  const SiteId sa = net.Register(&a);
  const SiteId sb = net.Register(&b);
  for (uint64_t k = 0; k < 200; ++k) {
    net.Send(KeyedMessage(MsgType::kLookup, sa, sb, k));  // eligible
  }
  for (uint64_t k = 0; k < 50; ++k) {
    net.Send(KeyedMessage(MsgType::kMoveRecords, sa, sb, k));  // protected
  }
  net.PumpUntilIdle();
  const NetworkStats& st = net.stats();
  // Every send is charged once, dropped or not.
  EXPECT_EQ(st.total_messages, 250u);
  EXPECT_GT(st.dropped_messages, 50u) << "p=0.5 over 200 eligible sends";
  EXPECT_LT(st.dropped_messages, 150u);
  EXPECT_EQ(b.received.size(), 250u - st.dropped_messages);
  // Bulk record transfers are never dropped: all 50 arrived.
  size_t moves = 0;
  for (const Message& m : b.received) {
    if (m.type == MsgType::kMoveRecords) ++moves;
  }
  EXPECT_EQ(moves, 50u);
}

TEST(EventNetworkTest, DuplicatesDeliverTwiceButCountOnceInTotals) {
  EventNetworkOptions opts;
  opts.seed = 11;
  opts.duplicate_prob = 1.0;
  EventNetwork net(opts);
  RecordingSite a, b;
  const SiteId sa = net.Register(&a);
  const SiteId sb = net.Register(&b);
  for (uint64_t k = 0; k < 20; ++k) {
    net.Send(KeyedMessage(MsgType::kInsert, sa, sb, k));
  }
  net.PumpUntilIdle();
  EXPECT_EQ(net.stats().total_messages, 20u);
  EXPECT_EQ(net.stats().duplicated_messages, 20u);
  EXPECT_EQ(net.stats().per_type.at(MsgType::kInsert), 20u);
  EXPECT_EQ(b.received.size(), 40u);
}

TEST(EventNetworkTest, ScriptDropDiscardsExactlyTheNthSend) {
  EventNetwork net;
  RecordingSite a, b;
  const SiteId sa = net.Register(&a);
  const SiteId sb = net.Register(&b);
  net.ScriptDrop(MsgType::kLookup, 2);
  for (uint64_t k = 0; k < 4; ++k) {
    net.Send(KeyedMessage(MsgType::kLookup, sa, sb, k));
  }
  net.PumpUntilIdle();
  ASSERT_EQ(b.received.size(), 3u);
  std::vector<uint64_t> keys;
  for (const Message& m : b.received) keys.push_back(m.key);
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<uint64_t>{0, 2, 3}));
  EXPECT_EQ(net.stats().dropped_messages, 1u);
}

TEST(EventNetworkTest, PauseParksDeliveriesUntilResume) {
  EventNetwork net;
  RecordingSite a, b;
  const SiteId sa = net.Register(&a);
  const SiteId sb = net.Register(&b);
  net.PauseSite(sb);
  net.Send(KeyedMessage(MsgType::kLookup, sa, sb, 1));
  net.Send(KeyedMessage(MsgType::kLookup, sa, sb, 2));
  net.PumpUntilIdle();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.parked_messages(), 2u);

  net.ResumeSite(sb);
  net.PumpUntilIdle();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_EQ(net.parked_messages(), 0u);
}

TEST(EventNetworkTest, TimedPauseResumesByItself) {
  EventNetwork net;
  RecordingSite a, b;
  const SiteId sa = net.Register(&a);
  const SiteId sb = net.Register(&b);
  net.PauseSite(sb, /*duration_us=*/1'000'000);
  net.Send(KeyedMessage(MsgType::kLookup, sa, sb, 7));
  net.PumpUntilIdle();  // pumps the parked delivery, the resume, the redelivery
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_GE(net.now_us(), 1'000'000u);
}

// --- full-system behaviour over the event network ---

LhOptions EventOptions(uint64_t seed) {
  LhOptions o;
  o.bucket_capacity = 8;
  o.network_mode = NetworkMode::kEvent;
  o.event_net.seed = seed;
  return o;
}

TEST(EventNetworkSystemTest, InsertLookupDeleteAcrossSplits) {
  LhSystem sys(EventOptions(2024));
  LhClient* c = sys.NewClient();
  for (uint64_t k = 0; k < 200; ++k) {
    EXPECT_FALSE(c->Insert(k, ToBytes("v" + std::to_string(k))));
  }
  sys.network().PumpUntilIdle();  // let restructuring settle
  EXPECT_GT(sys.bucket_count(), 1u) << "capacity 8 must have split";
  EXPECT_EQ(sys.TotalRecords(), 200u);
  for (uint64_t k = 0; k < 200; ++k) {
    auto r = c->Lookup(k);
    ASSERT_TRUE(r.ok()) << "key " << k;
    EXPECT_EQ(*r, ToBytes("v" + std::to_string(k)));
  }
  EXPECT_TRUE(c->Delete(77).ok());
  EXPECT_TRUE(c->Lookup(77).status().IsNotFound());
  EXPECT_EQ(c->retry_count(), 0u) << "no faults, no retries";
}

// Satellite regression: the first kLookup reply is lost; the client must
// recover with exactly one retransmission.
TEST(EventNetworkSystemTest, ScriptedReplyLossRecoversWithExactlyOneRetry) {
  LhSystem sys(EventOptions(31337));
  EventNetwork* net = sys.event_network();
  ASSERT_NE(net, nullptr);
  LhClient* c = sys.NewClient();
  c->Insert(9, ToBytes("payload"));
  sys.network().PumpUntilIdle();
  sys.network().ResetStats();

  net->ScriptDrop(MsgType::kLookupReply, 1);
  auto r = c->Lookup(9);
  ASSERT_TRUE(r.ok()) << "client must recover from the lost reply";
  EXPECT_EQ(*r, ToBytes("payload"));

  EXPECT_EQ(c->retry_count(), 1u) << "exactly one retransmission";
  const NetworkStats& st = sys.network().stats();
  EXPECT_EQ(st.dropped_messages, 1u);
  EXPECT_EQ(st.retried_messages, 1u);
  // Two kLookup sends crossed the wire (original + retry), two replies were
  // produced, one was dropped.
  EXPECT_EQ(st.per_type.at(MsgType::kLookup), 2u);
  EXPECT_EQ(st.per_type.at(MsgType::kLookupReply), 2u);
}

TEST(EventNetworkSystemTest, ScriptedRequestLossAlsoRecovers) {
  LhSystem sys(EventOptions(4242));
  EventNetwork* net = sys.event_network();
  LhClient* c = sys.NewClient();
  c->Insert(3, ToBytes("x"));
  sys.network().PumpUntilIdle();

  net->ScriptDrop(MsgType::kDelete, 1);
  EXPECT_TRUE(c->Delete(3).ok());
  EXPECT_EQ(c->retry_count(), 1u);
  EXPECT_TRUE(c->Lookup(3).status().IsNotFound());
}

TEST(EventNetworkSystemTest, PausedBucketDelaysButDoesNotLose) {
  LhSystem sys(EventOptions(777));
  EventNetwork* net = sys.event_network();
  LhClient* c = sys.NewClient();
  c->Insert(1, ToBytes("one"));
  sys.network().PumpUntilIdle();

  // Stall the root bucket's site across several client timeouts; the
  // lookup must still complete once the site recovers.
  net->PauseSite(sys.bucket(0).site(), /*duration_us=*/50'000'000);
  auto r = c->Lookup(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ToBytes("one"));
  EXPECT_GT(c->retry_count(), 0u) << "timeouts must have fired while paused";
  sys.network().PumpUntilIdle();  // flush the other retries' replies
  EXPECT_GT(c->stale_reply_count(), 0u)
      << "the piled-up retries all get answered on resume; the extras are "
         "discarded as stale";
}

TEST(EventNetworkSystemTest, StatsToStringReportsFaultCounters) {
  NetworkStats st;
  st.total_messages = 10;
  EXPECT_EQ(st.ToString().find("dropped"), std::string::npos)
      << "fault counters stay out of the fault-free line";
  st.dropped_messages = 2;
  st.retried_messages = 1;
  const std::string s = st.ToString();
  EXPECT_NE(s.find("dropped=2"), std::string::npos);
  EXPECT_NE(s.find("duplicated=0"), std::string::npos);
  EXPECT_NE(s.find("retried=1"), std::string::npos);
}

TEST(EventNetworkSystemTest, HugeTimeoutBackoffSaturatesInsteadOfWrapping) {
  // Regression: with request_timeout_us in the top bit range, the backoff
  // shift (timeout << attempts) wrapped uint64_t, planting the retry
  // deadline in the past — every pump became another retransmission until
  // the retry cap aborted the run. The shift and the deadline addition must
  // saturate instead.
  LhOptions o = EventOptions(909);
  o.request_timeout_us = (uint64_t{1} << 63) + 5;
  LhSystem sys(o);
  EventNetwork* net = sys.event_network();
  LhClient* c = sys.NewClient();
  c->Insert(4, ToBytes("durable"));
  sys.network().PumpUntilIdle();

  net->ScriptDrop(MsgType::kLookupReply, 1);
  auto r = c->Lookup(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ToBytes("durable"));
  EXPECT_EQ(c->retry_count(), 1u) << "saturated backoff must not hot-loop";
}

TEST(EventNetworkSystemTest, BackoffCapShiftSaturatesNearMaxTimeout) {
  // The cap shift is 6: a timeout just past UINT64_MAX >> 6 overflows
  // exactly at the capped attempt. Drop six consecutive replies so the
  // backoff walks the full shift ladder; the sixth doubling must pin the
  // deadline at the far future, not wrap it to now.
  LhOptions o = EventOptions(910);
  o.request_timeout_us = (UINT64_MAX >> 6) + 1;
  LhSystem sys(o);
  EventNetwork* net = sys.event_network();
  LhClient* c = sys.NewClient();
  c->Insert(5, ToBytes("still-here"));
  sys.network().PumpUntilIdle();

  for (uint64_t occurrence = 1; occurrence <= 6; ++occurrence) {
    net->ScriptDrop(MsgType::kLookupReply, occurrence);
  }
  auto r = c->Lookup(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ToBytes("still-here"));
  EXPECT_EQ(c->retry_count(), 6u);
}

}  // namespace
}  // namespace essdds::sdds
