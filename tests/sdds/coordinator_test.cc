#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "sdds/lh_server.h"

namespace essdds::sdds {
namespace {

/// A bucket stand-in that swallows everything it receives. Because it never
/// acks, a split or merge sent to it stays in flight — which is how a real
/// network looks to the coordinator between dispatching kSplit and hearing
/// kSplitDone. The synchronous LhSystem can never produce that window, so
/// this harness drives the coordinator directly.
class SinkSite : public Site {
 public:
  void OnMessage(Message& msg, Network& net) override {
    (void)net;
    received.push_back(std::move(msg));
  }

  std::vector<Message> received;
};

class FakeRuntime : public LhRuntime {
 public:
  explicit FakeRuntime(SimNetwork* net) : net_(net) { CreateBucket(0, 0); }

  void set_coordinator_site(SiteId site) { coordinator_site_ = site; }
  SinkSite& sink(uint64_t bucket) { return *sinks_.at(bucket); }
  size_t bucket_count() const { return sinks_.size(); }

  SiteId SiteOfBucket(uint64_t bucket) const override {
    return sites_.at(static_cast<size_t>(bucket));
  }
  bool BucketExists(uint64_t bucket) const override {
    return bucket < sites_.size();
  }
  SiteId CoordinatorSite() const override { return coordinator_site_; }
  SiteId CreateBucket(uint64_t bucket, uint32_t level) override {
    (void)level;
    EXPECT_EQ(bucket, sinks_.size()) << "bucket creation out of order";
    sinks_.push_back(std::make_unique<SinkSite>());
    sites_.push_back(net_->Register(sinks_.back().get()));
    return sites_.back();
  }
  const ScanFilter& FilterById(uint64_t) const override { return *no_filter_; }
  const LhOptions& options() const override { return options_; }
  void RetireLastBucket() override { sites_.pop_back(); }

 private:
  SimNetwork* net_;
  SiteId coordinator_site_ = kInvalidSite;
  LhOptions options_;
  std::vector<std::unique_ptr<SinkSite>> sinks_;
  std::vector<SiteId> sites_;
  std::unique_ptr<ScanFilter> no_filter_ =
      MakeScanFilter([](uint64_t, ByteSpan, ByteSpan) { return false; });
};

struct CoordinatorHarness {
  CoordinatorHarness() : runtime(&net), coordinator(&runtime) {
    const SiteId site = net.Register(&coordinator);
    coordinator.set_site(site);
    runtime.set_coordinator_site(site);
  }

  void Report(MsgType type, uint64_t bucket) {
    Message m;
    m.type = type;
    m.from = runtime.SiteOfBucket(bucket);
    m.to = runtime.CoordinatorSite();
    m.key = bucket;
    net.Send(std::move(m));
  }

  SimNetwork net;
  FakeRuntime runtime;
  LhCoordinator coordinator;
};

TEST(LhCoordinatorTest, OverflowDuringInFlightSplitIsDropped) {
  CoordinatorHarness h;

  h.Report(MsgType::kOverflow, 0);
  // The split of bucket 0 is now in flight: bucket 1 was allocated and the
  // kSplit dispatched, but the sink never acks.
  ASSERT_EQ(h.runtime.bucket_count(), 2u);
  ASSERT_EQ(h.runtime.sink(0).received.size(), 1u);
  EXPECT_EQ(h.runtime.sink(0).received[0].type, MsgType::kSplit);

  // A second overflow report racing the ack must be dropped — the seed
  // coordinator aborted the process here.
  h.Report(MsgType::kOverflow, 0);
  EXPECT_EQ(h.runtime.bucket_count(), 2u) << "no second bucket allocated";
  EXPECT_EQ(h.runtime.sink(0).received.size(), 1u) << "no second kSplit";

  // Once the in-flight split acks, the pointer advances and the coordinator
  // serves overflow reports again.
  h.Report(MsgType::kSplitDone, 0);
  EXPECT_EQ(h.coordinator.level(), 1u);
  EXPECT_EQ(h.coordinator.split_pointer(), 0u);

  h.Report(MsgType::kOverflow, 1);
  EXPECT_EQ(h.runtime.bucket_count(), 3u);
  ASSERT_EQ(h.runtime.sink(0).received.size(), 2u);
  EXPECT_EQ(h.runtime.sink(0).received[1].type, MsgType::kSplit);
}

TEST(LhCoordinatorTest, OverflowDuringInFlightMergeIsDropped) {
  CoordinatorHarness h;
  // Grow to two buckets (completing the split), then start a merge that
  // never acks.
  h.Report(MsgType::kOverflow, 0);
  h.Report(MsgType::kSplitDone, 0);
  ASSERT_EQ(h.runtime.bucket_count(), 2u);

  h.Report(MsgType::kUnderflow, 0);
  ASSERT_EQ(h.runtime.sink(1).received.size(), 1u);
  EXPECT_EQ(h.runtime.sink(1).received[0].type, MsgType::kMerge);

  // An overflow racing the in-flight merge must be dropped, not crash and
  // not allocate a bucket while the file is shrinking.
  h.Report(MsgType::kOverflow, 0);
  EXPECT_EQ(h.runtime.bucket_count(), 2u);
  EXPECT_EQ(h.runtime.sink(0).received.size(), 1u)
      << "only the original kSplit";
}

}  // namespace
}  // namespace essdds::sdds
