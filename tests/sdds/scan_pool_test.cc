// Persistent scan worker pool battery: lifecycle stress (repeated
// start/run/destroy cycles, lazy start, never-started pools), determinism
// (pool size 1 and every shard threshold bit-for-bit equal to serial
// evaluation), oversubscription in both directions, empty batches, the
// ESSDDS_THREADS=OFF serial-fallback guarantee, and the deferred-scan
// snapshot contract under scripted pause/scan/split interleavings on the
// event network.

#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sdds/event_network.h"
#include "sdds/lh_system.h"
#include "sdds/scan_executor.h"
#include "util/bytes.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

constexpr size_t kNoShard = std::numeric_limits<size_t>::max();

Bytes Val(uint64_t k) { return ToBytes("value-" + std::to_string(k)); }

std::map<uint64_t, Bytes> BuildRecords(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::map<uint64_t, Bytes> records;
  while (records.size() < n) {
    const uint64_t k = rng.Next();
    records[k] = Val(k);
  }
  return records;
}

/// A filter selective enough that hit sets are a strict, non-empty subset.
std::unique_ptr<ScanFilter> SelectiveFilter() {
  return MakeScanFilter([](uint64_t key, ByteSpan value, ByteSpan arg) {
    if (arg.empty()) return true;
    return !value.empty() && key % 3 == static_cast<uint64_t>(arg[0]) % 3;
  });
}

ScanTask MakeTask(uint64_t bucket, const std::map<uint64_t, Bytes>& records,
                  const ScanFilter& filter, Bytes arg) {
  ScanTask task;
  task.bucket = bucket;
  task.records = &records;
  task.filter = &filter;
  task.arg = std::move(arg);
  task.reply.type = MsgType::kScanReply;
  task.reply.key = bucket;
  return task;
}

/// Fresh tasks over `buckets`, one per bucket, all with the same argument.
std::vector<ScanTask> MakeBatch(
    const std::vector<std::map<uint64_t, Bytes>>& buckets,
    const ScanFilter& filter, const Bytes& arg) {
  std::vector<ScanTask> tasks;
  tasks.reserve(buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) {
    tasks.push_back(MakeTask(b, buckets[b], filter, arg));
  }
  return tasks;
}

/// The ground truth: serial inline evaluation of an identical batch.
std::vector<std::vector<WireRecord>> SerialHits(
    const std::vector<std::map<uint64_t, Bytes>>& buckets,
    const ScanFilter& filter, const Bytes& arg) {
  std::vector<ScanTask> tasks = MakeBatch(buckets, filter, arg);
  for (ScanTask& task : tasks) ExecuteScanTask(task);
  std::vector<std::vector<WireRecord>> hits;
  hits.reserve(tasks.size());
  for (ScanTask& task : tasks) hits.push_back(std::move(task.reply.records));
  return hits;
}

void ExpectPoolMatchesSerial(
    ScanWorkerPool& pool, size_t shard_min,
    const std::vector<std::map<uint64_t, Bytes>>& buckets,
    const ScanFilter& filter, const Bytes& arg,
    const std::vector<std::vector<WireRecord>>& expected) {
  std::vector<ScanTask> tasks = MakeBatch(buckets, filter, arg);
  pool.Run(tasks, shard_min);
  ASSERT_EQ(tasks.size(), expected.size());
  for (size_t t = 0; t < tasks.size(); ++t) {
    EXPECT_TRUE(tasks[t].evaluated) << "task " << t;
    EXPECT_EQ(tasks[t].reply.records, expected[t])
        << "task " << t << " diverged (shard_min=" << shard_min << ")";
  }
}

TEST(ScanPoolTest, PoolSizeOneMatchesSerialBitForBit) {
  std::vector<std::map<uint64_t, Bytes>> buckets;
  for (uint64_t b = 0; b < 5; ++b) buckets.push_back(BuildRecords(120, b + 1));
  auto filter = SelectiveFilter();
  const Bytes arg = ToBytes("a");
  const auto expected = SerialHits(buckets, *filter, arg);
  size_t total = 0;
  for (const auto& h : expected) total += h.size();
  ASSERT_GT(total, 0u) << "filter selected nothing";

  ScanWorkerPool pool(1);
  for (size_t shard_min : {size_t{0}, size_t{1}, size_t{16}, kNoShard}) {
    ExpectPoolMatchesSerial(pool, shard_min, buckets, *filter, arg, expected);
  }
  // A size-1 pool is the serial path: no worker ever starts.
  EXPECT_EQ(pool.started_workers(), 0u);
}

TEST(ScanPoolTest, ShardThresholdSweepMatchesSerialAtTaskLevel) {
  // One large and one tiny bucket, so every threshold exercises both the
  // sharded and the unsharded branch in the same batch.
  std::vector<std::map<uint64_t, Bytes>> buckets;
  buckets.push_back(BuildRecords(700, 11));
  buckets.push_back(BuildRecords(3, 12));
  buckets.push_back(BuildRecords(256, 13));
  auto filter = SelectiveFilter();
  for (const Bytes& arg : {Bytes{}, ToBytes("b")}) {
    const auto expected = SerialHits(buckets, *filter, arg);
    for (size_t threads : {size_t{2}, size_t{4}, size_t{16}}) {
      ScanWorkerPool pool(threads);
      for (size_t shard_min :
           {size_t{0}, size_t{1}, size_t{2}, size_t{7}, size_t{64}, kNoShard}) {
        ExpectPoolMatchesSerial(pool, shard_min, buckets, *filter, arg,
                                expected);
      }
    }
  }
}

TEST(ScanPoolTest, RepeatedStartRunDestroyCyclesAreClean) {
  std::vector<std::map<uint64_t, Bytes>> buckets;
  for (uint64_t b = 0; b < 4; ++b) buckets.push_back(BuildRecords(90, b + 40));
  auto filter = SelectiveFilter();
  const Bytes arg = ToBytes("c");
  const auto expected = SerialHits(buckets, *filter, arg);

  for (int cycle = 0; cycle < 16; ++cycle) {
    ScanWorkerPool pool(4);
    EXPECT_EQ(pool.started_workers(), 0u) << "pool must start lazily";
    for (int batch = 0; batch < 3; ++batch) {
      ExpectPoolMatchesSerial(pool, /*shard_min=*/8, buckets, *filter, arg,
                              expected);
    }
    // Destructor joins the workers; the next cycle builds a fresh pool.
  }
  // Construct-and-destroy without ever running: nothing to join, no hang.
  for (int i = 0; i < 8; ++i) {
    ScanWorkerPool idle(8);
    EXPECT_EQ(idle.started_workers(), 0u);
  }
}

TEST(ScanPoolTest, OversubscriptionInBothDirections) {
  auto filter = SelectiveFilter();
  const Bytes arg = ToBytes("d");

  // Threads >> tasks: 32 workers, 2 buckets.
  std::vector<std::map<uint64_t, Bytes>> few;
  few.push_back(BuildRecords(50, 7));
  few.push_back(BuildRecords(8, 8));
  const auto few_expected = SerialHits(few, *filter, arg);
  ScanWorkerPool wide(32);
  ExpectPoolMatchesSerial(wide, /*shard_min=*/1, few, *filter, arg,
                          few_expected);

  // Tasks >> threads: 2 workers, 48 buckets (plus sharding pressure).
  std::vector<std::map<uint64_t, Bytes>> many;
  for (uint64_t b = 0; b < 48; ++b) many.push_back(BuildRecords(30, 100 + b));
  const auto many_expected = SerialHits(many, *filter, arg);
  ScanWorkerPool narrow(2);
  ExpectPoolMatchesSerial(narrow, /*shard_min=*/1, many, *filter, arg,
                          many_expected);
}

TEST(ScanPoolTest, EmptyBatchesAndEmptyBucketsDoNotDeadlock) {
  ScanWorkerPool pool(4);
  std::vector<ScanTask> none;
  pool.Run(none, 0);
  pool.Run(none, kNoShard);
  EXPECT_EQ(pool.started_workers(), 0u) << "empty batch must not start workers";

  // A task over an empty bucket map.
  auto filter = SelectiveFilter();
  std::vector<std::map<uint64_t, Bytes>> buckets(3);
  buckets[1] = BuildRecords(20, 5);
  const auto expected = SerialHits(buckets, *filter, {});
  ExpectPoolMatchesSerial(pool, 0, buckets, *filter, {}, expected);

  // System level: draining with nothing queued is a no-op, and scanning an
  // empty file answers one empty bucket.
  LhSystem sys(LhOptions{.scan_threads = 4});
  sys.network().DrainDeferredScans();
  const uint64_t match_all =
      sys.InstallFilter([](uint64_t, ByteSpan, ByteSpan) { return true; });
  auto result = sys.NewClient()->Scan(match_all, {});
  EXPECT_EQ(result.hits.size(), 0u);
  EXPECT_EQ(result.buckets_answered, 1u);
}

TEST(ScanPoolTest, ThreadSupportGateCompilesPoolToSerialPath) {
  std::vector<std::map<uint64_t, Bytes>> buckets;
  buckets.push_back(BuildRecords(64, 21));
  buckets.push_back(BuildRecords(64, 22));
  auto filter = SelectiveFilter();
  const auto expected = SerialHits(buckets, *filter, {});

  ScanWorkerPool pool(4);
  ExpectPoolMatchesSerial(pool, /*shard_min=*/1, buckets, *filter, {},
                          expected);
#if ESSDDS_THREADS
  EXPECT_TRUE(ScanWorkerPool::threads_compiled_in());
  EXPECT_EQ(pool.started_workers(), 4u)
      << "a parallel batch must have started the full pool";
#else
  // Thread support compiled out: the pool IS the serial path — identical
  // results (asserted above) with no worker ever created.
  EXPECT_FALSE(ScanWorkerPool::threads_compiled_in());
  EXPECT_EQ(pool.started_workers(), 0u);
#endif
}

// --- system level: the pool behind LhSystem scans ---

/// One LH* file plus a selective filter and a deterministic workload.
struct Workload {
  explicit Workload(size_t scan_threads, size_t shard_min = 1024)
      : sys(LhOptions{.bucket_capacity = 8,
                      .scan_threads = scan_threads,
                      .scan_shard_min_records = shard_min}),
        client(sys.NewClient()) {
    filter_id =
        sys.InstallFilter([](uint64_t key, ByteSpan value, ByteSpan arg) {
          if (arg.empty()) return true;
          return !value.empty() &&
                 (key % arg.size()) == static_cast<uint64_t>(arg[0] % 7);
        });
  }

  void Fill(int n, uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      const uint64_t k = rng.Next();
      client->Insert(k, Val(k));
    }
  }

  LhSystem sys;
  LhClient* client;
  uint64_t filter_id = 0;
};

TEST(ScanPoolTest, SystemShardThresholdSweepMatchesSerial) {
  Workload serial(0);
  serial.Fill(1500, 77);
  serial.sys.network().ResetStats();
  const Bytes arg = ToBytes("sweep");
  const auto expected = serial.client->Scan(serial.filter_id, arg);
  const NetworkStats expected_stats = serial.sys.network().stats();
  ASSERT_GT(expected.hits.size(), 0u);

  for (size_t shard_min :
       {size_t{1}, size_t{2}, size_t{7}, size_t{64}, kNoShard}) {
    SCOPED_TRACE("shard_min " + std::to_string(shard_min));
    Workload sharded(4, shard_min);
    sharded.Fill(1500, 77);
    sharded.sys.network().ResetStats();
    const auto got = sharded.client->Scan(sharded.filter_id, arg);
    EXPECT_EQ(got.hits, expected.hits);
    EXPECT_EQ(got.buckets_answered, expected.buckets_answered);
    EXPECT_EQ(sharded.sys.network().stats(), expected_stats);
  }
}

TEST(ScanPoolTest, OnePoolServesManyScansAndManySystemsCycle) {
  // Pool reuse: one system, many scans — the pool starts once and serves
  // every batch.
  Workload serial(0), pooled(4, /*shard_min=*/4);
  serial.Fill(600, 9);
  pooled.Fill(600, 9);
  for (int i = 0; i < 12; ++i) {
    const Bytes arg(1, static_cast<uint8_t>('a' + i));
    EXPECT_EQ(pooled.client->Scan(pooled.filter_id, arg).hits,
              serial.client->Scan(serial.filter_id, arg).hits)
        << "scan " << i;
  }
#if ESSDDS_THREADS
  EXPECT_EQ(pooled.sys.network().scan_pool().started_workers(), 4u);
#endif
  // System churn: each LhSystem owns its pool; create, scan, destroy.
  for (int cycle = 0; cycle < 6; ++cycle) {
    Workload w(4, /*shard_min=*/2);
    w.Fill(200, 50 + static_cast<uint64_t>(cycle));
    const auto result = w.client->Scan(w.filter_id, {});
    EXPECT_EQ(result.hits.size(), 200u) << "cycle " << cycle;
  }
}

// --- the deferred-scan snapshot contract (dangling-pointer hazard) ---

TEST(ScanPoolDeathTest, StaleSnapshotAbortsInsteadOfReadingDanglingState) {
  // The backstop behind the resolve-before-mutation protocol: if a mutation
  // path ever misses its AboutToMutateRecords() call, evaluation must abort
  // on the generation mismatch, not silently scan a mutated (or freed) map.
  const auto records = BuildRecords(10, 99);
  auto filter = SelectiveFilter();
  ScanTask task = MakeTask(0, records, *filter, {});
  uint64_t generation = 7;
  task.live_generation = &generation;
  task.enqueue_generation = 7;
  ExecuteScanTask(task);  // generations agree: fine
  EXPECT_TRUE(task.evaluated);

  ScanTask stale = MakeTask(0, records, *filter, {});
  stale.live_generation = &generation;
  stale.enqueue_generation = 7;
  generation = 8;  // the map "mutated" after enqueue
  EXPECT_DEATH(ExecuteScanTask(stale), "mutated record map");
}

/// Bare reply sink for hand-rolled scan fan-outs.
struct Collector final : Site {
  std::vector<Message> replies;
  void OnMessage(Message& msg, Network&) override {
    replies.push_back(std::move(msg));
  }
};

// A split delivered while a scan task is queued must not change what the
// task returns: the bucket resolves the task against the pre-split content
// (what serial inline evaluation saw at kScan delivery). Scripted as
// pause(coordinator) / overflow / scan fan-out / resume / split / drain.
TEST(ScanPoolTest, SplitArrivingWhileTaskQueuedKeepsPreSplitSnapshot) {
  LhOptions opt;
  opt.bucket_capacity = 8;
  opt.hash_keys = false;  // raw placement: the split moves exactly the odds
  opt.scan_threads = 4;
  opt.scan_shard_min_records = 2;
  opt.network_mode = NetworkMode::kEvent;
  opt.event_net.seed = 13;
  LhSystem sys(opt);
  EventNetwork* net = sys.event_network();
  ASSERT_NE(net, nullptr);
  const uint64_t match_all =
      sys.InstallFilter([](uint64_t, ByteSpan, ByteSpan) { return true; });
  LhClient* client = sys.NewClient();

  for (uint64_t k = 1; k <= 8; ++k) client->Insert(k, Val(k));
  net->PumpUntilIdle();
  ASSERT_EQ(sys.bucket_count(), 1u);

  // Park the overflow report at the paused coordinator: the split is now
  // pending but cannot start.
  net->PauseSite(sys.CoordinatorSite());
  client->Insert(9, Val(9));
  net->PumpUntilIdle();
  ASSERT_EQ(net->parked_messages(), 1u) << "overflow not parked";
  ASSERT_EQ(sys.bucket_count(), 1u);

  // Hand-rolled scan fan-out, so the test controls what happens between the
  // task enqueue and the drain.
  Collector collector;
  const SiteId cid = sys.network().Register(&collector);
  Message scan;
  scan.type = MsgType::kScan;
  scan.from = cid;
  scan.reply_to = cid;
  scan.request_id = 4242;
  scan.filter_id = match_all;
  scan.assumed_level = 0;
  scan.to = sys.SiteOfBucket(0);
  sys.network().Send(std::move(scan));
  net->PumpUntilIdle();
  ASSERT_TRUE(collector.replies.empty()) << "scan answered before drain";

  // Release the overflow: the split races the queued task and mutates
  // bucket 0's record map. The bucket must resolve the task first.
  net->ResumeSite(sys.CoordinatorSite());
  net->PumpUntilIdle();
  ASSERT_EQ(sys.bucket_count(), 2u) << "split did not run";
  ASSERT_LT(sys.bucket(0).record_count(), 9u) << "split moved nothing";

  sys.network().DrainDeferredScans();
  net->PumpUntilIdle();

  // The reply carries the full pre-split bucket — exactly the serial
  // result — not the post-split remainder.
  ASSERT_EQ(collector.replies.size(), 1u);
  std::vector<WireRecord> expected;
  for (uint64_t k = 1; k <= 9; ++k) expected.push_back(WireRecord{k, Val(k)});
  EXPECT_EQ(collector.replies[0].records, expected);
}

// A kScan parked at a paused bucket replays after its initiator already
// drained: the late task waits in the pending queue, and the next mutation
// (here an insert) must resolve it before touching the map — otherwise the
// snapshot assert aborts. The eventual reply reaches the client as a
// discarded stale reply; the next scan is complete and correct.
TEST(ScanPoolTest, LateReplayedScanResolvesBeforeNextMutation) {
  LhOptions opt;
  opt.bucket_capacity = 64;
  opt.scan_threads = 4;
  opt.scan_shard_min_records = 2;
  opt.network_mode = NetworkMode::kEvent;
  opt.event_net.seed = 29;
  LhSystem sys(opt);
  EventNetwork* net = sys.event_network();
  const uint64_t match_all =
      sys.InstallFilter([](uint64_t, ByteSpan, ByteSpan) { return true; });
  LhClient* client = sys.NewClient();

  for (uint64_t k = 1; k <= 6; ++k) client->Insert(k, Val(k));
  net->PumpUntilIdle();

  // The whole fan-out parks: the scan returns empty-handed.
  net->PauseSite(sys.SiteOfBucket(0));
  auto blocked = client->Scan(match_all, {});
  EXPECT_EQ(blocked.buckets_answered, 0u);
  EXPECT_EQ(blocked.hits.size(), 0u);

  // Replay the parked kScan: the bucket enqueues a task nobody is waiting
  // for. The following insert mutates the map and must resolve it first.
  net->ResumeSite(sys.SiteOfBucket(0));
  net->PumpUntilIdle();
  client->Insert(7, Val(7));
  net->PumpUntilIdle();

  // The next scan drains both replies: its own (7 records) and the stale
  // one (6 pre-insert records), which the client discards.
  auto fresh = client->Scan(match_all, {});
  EXPECT_EQ(fresh.buckets_answered, 1u);
  EXPECT_EQ(fresh.hits.size(), 7u);
  EXPECT_EQ(client->stale_reply_count(), 1u);
}

}  // namespace
}  // namespace essdds::sdds
