#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sdds/lh_system.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

Bytes Val(uint64_t k) { return ToBytes("value-" + std::to_string(k)); }

/// One LH* file plus a selective filter and a deterministic workload,
/// parameterized only by the scan thread count.
struct Workload {
  explicit Workload(size_t scan_threads, double merge_threshold = 0.0)
      : sys(LhOptions{.bucket_capacity = 8,
                      .merge_threshold = merge_threshold,
                      .scan_threads = scan_threads}),
        client(sys.NewClient()) {
    filter_id = sys.InstallFilter([](uint64_t key, ByteSpan value, ByteSpan arg) {
      if (arg.empty()) return true;
      return !value.empty() &&
             (key % arg.size()) == static_cast<uint64_t>(arg[0] % 7);
    });
  }

  void Fill(int n, uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      const uint64_t k = rng.Next();
      keys.push_back(k);
      client->Insert(k, Val(k));
    }
  }

  LhSystem sys;
  LhClient* client;
  uint64_t filter_id = 0;
  std::vector<uint64_t> keys;
};

TEST(ParallelScanTest, ResultsAndAccountingIdenticalToSerial) {
  Workload serial(0), parallel(4);
  serial.Fill(2000, 42);
  parallel.Fill(2000, 42);
  ASSERT_EQ(serial.sys.bucket_count(), parallel.sys.bucket_count());

  const Bytes arg = ToBytes("selective-arg");
  serial.sys.network().ResetStats();
  parallel.sys.network().ResetStats();
  auto serial_result = serial.client->Scan(serial.filter_id, arg);
  auto parallel_result = parallel.client->Scan(parallel.filter_id, arg);

  EXPECT_GT(serial_result.hits.size(), 0u) << "filter selected nothing";
  EXPECT_LT(serial_result.hits.size(), serial.keys.size())
      << "filter not selective";
  // Byte-identical hits in identical order.
  EXPECT_EQ(serial_result.hits, parallel_result.hits);
  EXPECT_EQ(serial_result.buckets_answered, parallel_result.buckets_answered);
  // And the exact same message/byte/per-type accounting: deferring the
  // evaluations must not change what crosses the simulated wire.
  EXPECT_EQ(serial.sys.network().stats(), parallel.sys.network().stats());
}

TEST(ParallelScanTest, MatchAllScanIdenticalAcrossThreadCounts) {
  Workload baseline(0);
  baseline.Fill(1200, 7);
  baseline.sys.network().ResetStats();
  const auto expected = baseline.client->Scan(baseline.filter_id, {});
  EXPECT_EQ(expected.hits.size(), baseline.keys.size());
  const NetworkStats expected_stats = baseline.sys.network().stats();

  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}, size_t{32}}) {
    Workload w(threads);
    w.Fill(1200, 7);
    w.sys.network().ResetStats();
    const auto got = w.client->Scan(w.filter_id, {});
    EXPECT_EQ(got.hits, expected.hits) << "threads=" << threads;
    EXPECT_EQ(got.buckets_answered, expected.buckets_answered)
        << "threads=" << threads;
    EXPECT_EQ(w.sys.network().stats(), expected_stats)
        << "threads=" << threads;
  }
}

TEST(ParallelScanTest, StaleAheadClientScanIdenticalToSerial) {
  // Shrink the file under a client whose image is ahead: retired-bucket
  // forwarding plus per-bucket dedup must behave identically in both modes.
  auto run = [](size_t threads) {
    Workload w(threads, /*merge_threshold=*/0.25);
    w.Fill(1500, 99);
    // Warm the image at peak, then delete most records via a second client.
    for (uint64_t k : w.keys) EXPECT_TRUE(w.client->Lookup(k).ok());
    LhClient* deleter = w.sys.NewClient();
    for (size_t i = 100; i < w.keys.size(); ++i) {
      EXPECT_TRUE(deleter->Delete(w.keys[i]).ok());
    }
    EXPECT_LT(w.sys.bucket_count(), w.client->image().BucketCount());
    auto result = w.client->Scan(w.filter_id, {});
    EXPECT_EQ(result.hits.size(), w.sys.TotalRecords());
    return result;
  };
  const auto serial = run(0);
  const auto parallel = run(4);
  EXPECT_EQ(serial.hits, parallel.hits);
  EXPECT_EQ(serial.buckets_answered, parallel.buckets_answered);
}

TEST(ParallelScanTest, RepeatedParallelScansAreStable) {
  Workload w(8);
  w.Fill(800, 3);
  const auto first = w.client->Scan(w.filter_id, {});
  for (int i = 0; i < 5; ++i) {
    const auto again = w.client->Scan(w.filter_id, {});
    EXPECT_EQ(again.hits, first.hits) << "iteration " << i;
  }
}

}  // namespace
}  // namespace essdds::sdds
