#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sdds/lh_system.h"
#include "util/random.h"

// End-to-end durability: an LhSystem with a data_dir must survive a full
// process restart — modelled by destroying the system object and building a
// new one over the same directory — with every bucket's records, level, the
// coordinator extent, the ColumnStore mirrors, and the scan results exactly
// as the last acknowledged state left them. Splits, merges, bucket-number
// reuse, and event-network pause/resume all ride through the same log.

namespace essdds::sdds {
namespace {

#if ESSDDS_PERSIST

Bytes Val(uint64_t k) { return ToBytes("payload-" + std::to_string(k)); }

class PersistenceSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("essdds_sys_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  LhOptions Options() {
    LhOptions o;
    o.bucket_capacity = 8;
    o.data_dir = dir_;
    return o;
  }

  /// Every bucket's full state, keyed by bucket number.
  struct Snapshot {
    std::vector<std::map<uint64_t, Bytes>> records;
    std::vector<uint32_t> levels;
    uint32_t level = 0;
    uint64_t split_pointer = 0;

    friend bool operator==(const Snapshot&, const Snapshot&) = default;
  };

  static Snapshot Take(LhSystem& sys) {
    Snapshot s;
    for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
      s.records.push_back(sys.bucket(b).records());
      s.levels.push_back(sys.bucket(b).level());
      EXPECT_TRUE(sys.bucket(b).columns().MirrorsMap(sys.bucket(b).records()))
          << "bucket " << b;
    }
    s.level = sys.coordinator().level();
    s.split_pointer = sys.coordinator().split_pointer();
    return s;
  }

  std::string dir_;
};

TEST_F(PersistenceSystemTest, RestartAfterSplitsRecoversEverything) {
  Snapshot before;
  std::vector<uint64_t> keys;
  {
    LhSystem sys(Options());
    LhClient* c = sys.NewClient();
    Rng rng(21);
    for (int i = 0; i < 400; ++i) {
      keys.push_back(rng.Next());
      c->Insert(keys.back(), Val(keys.back()));
    }
    ASSERT_GT(sys.bucket_count(), 8u) << "workload did not split";
    before = Take(sys);
  }

  LhSystem sys(Options());
  EXPECT_EQ(sys.recovered_bucket_count(), before.records.size());
  EXPECT_EQ(Take(sys), before) << "recovered state differs from pre-restart";

  // The file keeps serving: lookups, scans, and further growth all work.
  LhClient* c = sys.NewClient();
  for (uint64_t k : keys) {
    auto r = c->Lookup(k);
    ASSERT_TRUE(r.ok()) << "key " << k;
    EXPECT_EQ(*r, Val(k));
  }
  const uint64_t all = sys.InstallFilter(
      [](uint64_t, ByteSpan, ByteSpan) { return true; });
  auto scan = c->Scan(all, {});
  EXPECT_EQ(scan.hits.size(), keys.size());

  const size_t extent = sys.bucket_count();
  Rng rng(22);
  for (int i = 0; i < 200; ++i) {
    const uint64_t k = rng.Next();
    c->Insert(k, Val(k));
  }
  EXPECT_GT(sys.bucket_count(), extent) << "post-restart splits broken";
}

TEST_F(PersistenceSystemTest, RestartAfterShrinkSkipsRetiredBuckets) {
  LhOptions opts = Options();
  opts.merge_threshold = 0.25;
  Snapshot before;
  std::vector<uint64_t> survivors;
  {
    LhSystem sys(opts);
    LhClient* c = sys.NewClient();
    Rng rng(31);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 600; ++i) {
      keys.push_back(rng.Next());
      c->Insert(keys.back(), Val(keys.back()));
    }
    const size_t peak = sys.bucket_count();
    for (size_t i = 0; i + 40 < keys.size(); ++i) {
      ASSERT_TRUE(c->Delete(keys[i]).ok());
    }
    survivors.assign(keys.end() - 40, keys.end());
    ASSERT_LT(sys.bucket_count(), peak) << "file did not shrink";
    before = Take(sys);
  }

  LhSystem sys(opts);
  EXPECT_EQ(sys.recovered_bucket_count(), before.records.size());
  EXPECT_EQ(Take(sys), before);
  LhClient* c = sys.NewClient();
  for (uint64_t k : survivors) {
    auto r = c->Lookup(k);
    ASSERT_TRUE(r.ok()) << "survivor " << k;
    EXPECT_EQ(*r, Val(k));
  }
}

TEST_F(PersistenceSystemTest, BucketNumberReuseAfterMergeThenRestart) {
  LhOptions opts = Options();
  opts.merge_threshold = 0.25;
  Snapshot before;
  {
    LhSystem sys(opts);
    LhClient* c = sys.NewClient();
    Rng rng(41);
    // Grow, shrink, grow again: bucket numbers retire and come back, and
    // each rebirth must supersede the retired log (fresh epoch) rather
    // than replay into it.
    std::set<uint64_t> live;
    for (int cycle = 0; cycle < 2; ++cycle) {
      for (int i = 0; i < 300; ++i) {
        const uint64_t k = rng.Next();
        c->Insert(k, Val(k));
        live.insert(k);
      }
      auto it = live.begin();
      while (it != live.end()) {
        if (rng.Bernoulli(0.8)) {
          ASSERT_TRUE(c->Delete(*it).ok());
          it = live.erase(it);
        } else {
          ++it;
        }
      }
    }
    before = Take(sys);
  }

  LhSystem sys(opts);
  EXPECT_EQ(sys.recovered_bucket_count(), before.records.size());
  EXPECT_EQ(Take(sys), before);
}

TEST_F(PersistenceSystemTest, EventNetworkPauseResumeThenRestart) {
  LhOptions opts = Options();
  opts.network_mode = NetworkMode::kEvent;
  opts.event_net.seed = 7;
  Snapshot before;
  std::vector<uint64_t> keys;
  {
    LhSystem sys(opts);
    LhClient* c = sys.NewClient();
    Rng rng(51);
    for (int i = 0; i < 120; ++i) {
      keys.push_back(rng.Next());
      c->Insert(keys.back(), Val(keys.back()));
    }
    // Knock a site out for a stretch of virtual time: requests park, the
    // client retries, and every op still lands — then quiesce and "kill
    // the process".
    ASSERT_GT(sys.bucket_count(), 1u);
    sys.event_network()->PauseSite(sys.bucket(0).site(),
                                   /*duration_us=*/2'000'000);
    for (int i = 0; i < 60; ++i) {
      keys.push_back(rng.Next());
      c->Insert(keys.back(), Val(keys.back()));
    }
    sys.event_network()->PumpUntilIdle();
    before = Take(sys);
  }

  LhSystem sys(opts);
  EXPECT_EQ(sys.recovered_bucket_count(), before.records.size());
  EXPECT_EQ(Take(sys), before);
  LhClient* c = sys.NewClient();
  for (uint64_t k : keys) {
    auto r = c->Lookup(k);
    ASSERT_TRUE(r.ok()) << "key " << k;
    EXPECT_EQ(*r, Val(k));
  }
}

TEST_F(PersistenceSystemTest, CheckpointCompactionPreservesRecovery) {
  LhOptions opts = Options();
  opts.log_checkpoint_min_bytes = 256;  // checkpoint aggressively
  Snapshot before;
  {
    LhSystem sys(opts);
    LhClient* c = sys.NewClient();
    Rng rng(61);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 300; ++i) {
      keys.push_back(rng.Next());
      c->Insert(keys.back(), Val(keys.back()));
      if (i % 3 == 0 && keys.size() > 10) {
        // Churn so the logs outgrow their floors repeatedly.
        const uint64_t k = keys[rng.Uniform(keys.size())];
        c->Insert(k, Val(k ^ 1));
      }
    }
    before = Take(sys);
    if (obs::kMetricsEnabled) {
      ASSERT_GT(sys.network().metrics().counter("persist.checkpoints").value(),
                0u)
          << "workload never compacted — floor too high for the test";
    }
  }
  LhSystem sys(opts);
  EXPECT_EQ(Take(sys), before);
}

TEST_F(PersistenceSystemTest, RecoveryMetricsAppearInRegistry) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  {
    LhSystem sys(Options());
    LhClient* c = sys.NewClient();
    for (uint64_t k = 0; k < 100; ++k) c->Insert(k, Val(k));
  }
  LhSystem sys(Options());
  obs::MetricRegistry& m = sys.network().metrics();
  EXPECT_EQ(m.counter("persist.recovered_buckets").value(),
            sys.recovered_bucket_count());
  EXPECT_GT(m.counter("persist.replayed_records").value(), 0u);
  const std::string json = m.ToJson();
  for (const char* name :
       {"persist.recovered_buckets", "persist.replayed_records",
        "persist.recovery_us", "persist.log_bytes"}) {
    EXPECT_NE(json.find(name), std::string::npos)
        << name << " missing from metrics JSON";
  }
}

TEST_F(PersistenceSystemTest, NoPlaintextPayloadOnDiskAcrossRestructuring) {
  // Distinctive payloads pushed through splits and merges: whatever path a
  // record takes (put, bulk move, merge transfer, checkpoint), its bytes
  // must never appear in the clear in any log file.
  const std::string needle = "EXFILTRATABLE-SECRET-NEEDLE";
  LhOptions opts = Options();
  opts.merge_threshold = 0.25;
  {
    LhSystem sys(opts);
    LhClient* c = sys.NewClient();
    Rng rng(71);
    std::vector<uint64_t> keys;
    for (int i = 0; i < 200; ++i) {
      keys.push_back(rng.Next());
      c->Insert(keys.back(),
                ToBytes(needle + "-" + std::to_string(keys.back())));
    }
    for (size_t i = 0; i + 20 < keys.size(); ++i) {
      ASSERT_TRUE(c->Delete(keys[i]).ok());
    }
  }
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    ++files;
    std::FILE* f = std::fopen(entry.path().string().c_str(), "rb");
    ASSERT_NE(f, nullptr);
    Bytes image;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      image.insert(image.end(), buf, buf + n);
    }
    std::fclose(f);
    auto it = std::search(image.begin(), image.end(), needle.begin(),
                          needle.end());
    EXPECT_EQ(it, image.end())
        << "plaintext payload in " << entry.path().string();
  }
  EXPECT_GT(files, 0u);
}

TEST_F(PersistenceSystemTest, FreshDirectoryStartsEmpty) {
  LhSystem sys(Options());
  EXPECT_EQ(sys.recovered_bucket_count(), 0u);
  EXPECT_EQ(sys.bucket_count(), 1u);
  EXPECT_EQ(sys.TotalRecords(), 0u);
}

#else  // !ESSDDS_PERSIST

TEST(PersistenceSystemStubTest, DataDirIsIgnoredWhenCompiledOut) {
  LhOptions opts;
  opts.data_dir = (std::filesystem::path(::testing::TempDir()) /
                   "essdds_sys_stub")
                      .string();
  LhSystem sys(opts);  // logs a warning, stays RAM-only
  EXPECT_EQ(sys.recovered_bucket_count(), 0u);
  LhClient* c = sys.NewClient();
  c->Insert(1, ToBytes("ram-only"));
  auto r = c->Lookup(1);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ToBytes("ram-only"));
}

#endif  // ESSDDS_PERSIST

}  // namespace
}  // namespace essdds::sdds
