// Interleaving-exploration harness: drives identical randomized workloads
// (insert / lookup / delete / scan mixes from two clients) through the
// synchronous SimNetwork and the discrete-event EventNetwork across many
// seeds, asserting that every run converges and that the event runs produce
// results equivalent to the synchronous baseline. Any failure prints the
// workload seed; replaying that seed reproduces the exact schedule, because
// both the workload generator and the network draw from seeded generators
// and no wall-clock time is involved.

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "sdds/event_network.h"
#include "sdds/lh_system.h"
#include "util/bytes.h"
#include "util/random.h"

namespace essdds::sdds {
namespace {

struct OpRecord {
  char kind = '?';  // 'i'nsert, 'l'ookup, 'd'elete, 's'can
  uint64_t key = 0;
  bool flag = false;  // insert: replaced; lookup: found; delete: found
  Bytes value;        // lookup result when found
  std::vector<std::pair<uint64_t, Bytes>> hits;  // scan hits, sorted by key

  friend bool operator==(const OpRecord&, const OpRecord&) = default;
};

struct WorkloadResult {
  std::vector<OpRecord> ops;
  std::map<uint64_t, Bytes> contents;  // final records, merged over buckets
  uint64_t retries = 0;
  uint64_t iams = 0;
  NetworkStats stats;
  /// Snapshot of the run's trace ring (empty with metrics compiled out);
  /// failure messages render its tail so a failing seed ships its own
  /// causal history.
  std::vector<obs::TraceEvent> trace;
};

/// Formats the last `n` recorded hops for a failure message. The assertion
/// macros evaluate their streamed message only on failure, so passing seeds
/// never pay for the formatting.
std::string TraceTail(const std::vector<obs::TraceEvent>& trace,
                      size_t n = 48) {
  if (!obs::kMetricsEnabled) return "\n(trace ring compiled out)";
  std::string out = "\ntrace ring tail (last " +
                    std::to_string(std::min(n, trace.size())) + " of " +
                    std::to_string(trace.size()) + " hops):\n";
  const size_t start = trace.size() > n ? trace.size() - n : 0;
  for (size_t i = start; i < trace.size(); ++i) {
    out += "  " + obs::FormatTraceEvent(trace[i], [](uint8_t t) {
      return MsgTypeToString(static_cast<MsgType>(t));
    }) + "\n";
  }
  return out;
}

constexpr size_t kDefaultOps = 120;

/// The shared workload shape: small buckets force frequent splits, an
/// aggressive merge threshold forces shrinking, and a 96-key space makes
/// overwrite / delete-miss / re-insert patterns common.
LhOptions BaseOptions() {
  LhOptions o;
  o.bucket_capacity = 8;
  o.merge_threshold = 0.4;
  return o;
}

std::map<uint64_t, Bytes> Contents(const LhSystem& sys) {
  std::map<uint64_t, Bytes> all;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    for (const auto& [k, v] : sys.bucket(b).records()) {
      all.emplace(k, v);
    }
  }
  return all;
}

/// Runs `nops` seeded operations against a fresh LhSystem built from
/// `options`. The op sequence depends only on `seed`, never on the network
/// mode, so a sync and an event run with the same seed perform the very
/// same application-level work.
WorkloadResult RunWorkload(LhOptions options, uint64_t seed,
                           size_t nops = kDefaultOps) {
  LhSystem sys(options);
  const uint64_t filter =
      sys.InstallFilter([](uint64_t key, ByteSpan, ByteSpan arg) {
        return !arg.empty() && key % 3 == static_cast<uint64_t>(arg[0]) % 3;
      });
  LhClient* clients[2] = {sys.NewClient(), sys.NewClient()};

  Rng rng(seed ^ 0x77073096ee0e612cULL);
  WorkloadResult out;
  out.ops.reserve(nops);
  for (size_t i = 0; i < nops; ++i) {
    LhClient* c = clients[rng.Uniform(2)];
    OpRecord rec;
    rec.key = 1 + rng.Uniform(96);
    const uint64_t pick = rng.Uniform(100);
    if (pick < 55) {
      rec.kind = 'i';
      rec.flag = c->Insert(
          rec.key,
          ToBytes("v" + std::to_string(rec.key) + "-" + std::to_string(i)));
    } else if (pick < 75) {
      rec.kind = 'l';
      auto r = c->Lookup(rec.key);
      rec.flag = r.ok();
      if (r.ok()) rec.value = *std::move(r);
    } else if (pick < 90) {
      rec.kind = 'd';
      rec.flag = c->Delete(rec.key).ok();
    } else {
      rec.kind = 's';
      auto scan = c->Scan(filter, Bytes(1, static_cast<uint8_t>(i % 3)));
      rec.hits.reserve(scan.hits.size());
      for (WireRecord& h : scan.hits) {
        rec.hits.emplace_back(h.key, std::move(h.value));
      }
      std::sort(rec.hits.begin(), rec.hits.end());
    }
    out.ops.push_back(std::move(rec));
  }

  // Convergence: drain whatever restructuring traffic is still in flight.
  sys.network().PumpUntilIdle();
  out.contents = Contents(sys);
  out.retries = clients[0]->retry_count() + clients[1]->retry_count();
  out.iams = clients[0]->iam_count() + clients[1]->iam_count();
  out.stats = sys.network().stats();
  out.trace = sys.network().trace().Snapshot();

  // Post-convergence self-consistency, regardless of mode or faults: the
  // merged bucket contents are exactly what a fresh client can read back.
  EXPECT_EQ(sys.TotalRecords(), out.contents.size())
      << "replay: workload seed " << seed << TraceTail(out.trace);
  LhClient* probe = sys.NewClient();
  for (const auto& [k, v] : out.contents) {
    auto r = probe->Lookup(k);
    EXPECT_TRUE(r.ok() && *r == v)
        << "key " << k << " unreadable after convergence; replay: workload "
        << "seed " << seed << TraceTail(sys.network().trace().Snapshot());
  }
  return out;
}

/// Asserts per-operation result equality. Used for fault-free comparisons,
/// where the event schedule must not change any application-visible result.
void ExpectSameResults(const WorkloadResult& sync, const WorkloadResult& ev,
                       uint64_t seed, const char* config) {
  ASSERT_EQ(sync.ops.size(), ev.ops.size());
  for (size_t i = 0; i < sync.ops.size(); ++i) {
    ASSERT_TRUE(sync.ops[i] == ev.ops[i])
        << "op " << i << " (kind '" << sync.ops[i].kind << "', key "
        << sync.ops[i].key << ") diverged under " << config
        << "; replay: workload seed " << seed << TraceTail(ev.trace);
  }
  ASSERT_TRUE(sync.contents == ev.contents)
      << "final contents diverged under " << config
      << "; replay: workload seed " << seed << TraceTail(ev.trace);
}

// Tentpole sweep: 200 seeds, fault-free event network. Every
// application-visible result — insert replaced flags, lookup outcomes and
// values, delete outcomes, scan hit sets, final contents — must be
// byte-identical to the synchronous baseline, even though splits and merges
// now stay in flight across operations and messages reorder across links.
TEST(InterleavingTest, TwoHundredSeedsMatchSynchronousBaseline) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    SCOPED_TRACE("workload seed " + std::to_string(seed));
    WorkloadResult sync = RunWorkload(BaseOptions(), seed);

    LhOptions ev = BaseOptions();
    ev.network_mode = NetworkMode::kEvent;
    ev.event_net.seed = seed;
    WorkloadResult event = RunWorkload(ev, seed);

    ExpectSameResults(sync, event, seed, "event network (fault-free)");
    ASSERT_EQ(event.retries, 0u)
        << "fault-free run retried; replay: workload seed " << seed;
  }
}

// Without the FIFO-link guarantee even same-link messages reorder (UDP-like
// delivery). The protocol must still produce identical results.
TEST(InterleavingTest, NonFifoLinksStillMatchBaseline) {
  for (uint64_t seed = 300; seed < 350; ++seed) {
    SCOPED_TRACE("workload seed " + std::to_string(seed));
    WorkloadResult sync = RunWorkload(BaseOptions(), seed);

    LhOptions ev = BaseOptions();
    ev.network_mode = NetworkMode::kEvent;
    ev.event_net.seed = seed;
    ev.event_net.fifo_links = false;
    ev.event_net.min_latency_us = 1;
    ev.event_net.max_latency_us = 5000;
    WorkloadResult event = RunWorkload(ev, seed);

    ExpectSameResults(sync, event, seed, "non-FIFO event network");
  }
}

// Thread-pool scans with intra-bucket sharding (every bucket sharded,
// threshold 1) riding the event network: splits and merges stay in flight
// across the scans' deferred tasks, which the buckets resolve before
// mutating. 20+ seeds must still match the serial synchronous baseline bit
// for bit — scan hit sets, per-op flags, and final contents.
TEST(InterleavingTest, ShardedThreadedScansUnderEventNetworkMatchBaseline) {
  for (uint64_t seed = 700; seed <= 720; ++seed) {
    SCOPED_TRACE("workload seed " + std::to_string(seed));
    WorkloadResult sync = RunWorkload(BaseOptions(), seed);

    LhOptions ev = BaseOptions();
    ev.scan_threads = 4;
    ev.scan_shard_min_records = 1;
    ev.network_mode = NetworkMode::kEvent;
    ev.event_net.seed = seed;
    WorkloadResult event = RunWorkload(ev, seed);

    ExpectSameResults(sync, event, seed,
                      "sharded thread-pool scans on the event network");
  }
}

// Fault sweep: drops and duplicates on client key traffic. The runs must
// complete (no CHECK crash, every op eventually answered via retries) and
// converge to a self-consistent file — RunWorkload itself verifies that a
// fresh client can read back every record after quiescence. Per-op flags
// are exempt here: a duplicated delete legitimately reports NotFound on its
// second execution, a retried insert legitimately reports "replaced".
TEST(InterleavingTest, FaultInjectionSweepConvergesViaRetries) {
  uint64_t total_dropped = 0;
  uint64_t total_duplicated = 0;
  uint64_t total_retried = 0;
  for (uint64_t seed = 1000; seed < 1100; ++seed) {
    SCOPED_TRACE("workload seed " + std::to_string(seed));
    LhOptions ev = BaseOptions();
    ev.network_mode = NetworkMode::kEvent;
    ev.event_net.seed = seed;
    ev.event_net.drop_prob = 0.08;
    ev.event_net.duplicate_prob = 0.08;
    WorkloadResult event = RunWorkload(ev, seed, /*nops=*/150);

    // Every scan's hit set must be consistent with the filter predicate —
    // scan traffic is never dropped, so no hit can be lost to a fault.
    for (size_t i = 0; i < event.ops.size(); ++i) {
      if (event.ops[i].kind != 's') continue;
      for (const auto& hit : event.ops[i].hits) {
        ASSERT_EQ(hit.first % 3, static_cast<uint64_t>(i % 3))
            << "scan hit violates the predicate; replay: workload seed "
            << seed;
      }
    }
    total_dropped += event.stats.dropped_messages;
    total_duplicated += event.stats.duplicated_messages;
    total_retried += event.stats.retried_messages;
    ASSERT_GE(event.retries, 0u);
  }
  // With p=0.08 over ~100 runs the sweep must have exercised every fault
  // path; a zero here means the knobs are dead.
  EXPECT_GT(total_dropped, 0u);
  EXPECT_GT(total_duplicated, 0u);
  EXPECT_GT(total_retried, 0u);
}

// Scan evaluation on a thread pool under the event network — the target of
// the ThreadSanitizer CI leg. One shared ScanFilter::Prepared per scan is
// driven concurrently by the workers, so this sweep is what would light up
// any unsynchronized per-scan state.
TEST(InterleavingTest, ThreadedScansUnderEventNetworkMatchBaseline) {
  for (uint64_t seed = 500; seed < 520; ++seed) {
    SCOPED_TRACE("workload seed " + std::to_string(seed));
    WorkloadResult sync = RunWorkload(BaseOptions(), seed);

    LhOptions ev = BaseOptions();
    ev.scan_threads = 4;
    ev.network_mode = NetworkMode::kEvent;
    ev.event_net.seed = seed;
    WorkloadResult event = RunWorkload(ev, seed);

    ExpectSameResults(sync, event, seed, "event network + 4 scan threads");
  }
}

// The replay guarantee itself: the same (workload seed, net seed) pair must
// reproduce the run bit-for-bit — results, contents, message counts, fault
// decisions. This is what makes a printed failing seed actionable.
TEST(InterleavingTest, SameSeedReplaysBitForBit) {
  for (uint64_t seed : {7u, 42u, 1234u}) {
    SCOPED_TRACE("workload seed " + std::to_string(seed));
    LhOptions ev = BaseOptions();
    ev.network_mode = NetworkMode::kEvent;
    ev.event_net.seed = seed;
    ev.event_net.drop_prob = 0.05;
    ev.event_net.duplicate_prob = 0.05;
    WorkloadResult a = RunWorkload(ev, seed, /*nops=*/150);
    WorkloadResult b = RunWorkload(ev, seed, /*nops=*/150);
    ASSERT_TRUE(a.ops == b.ops);
    ASSERT_TRUE(a.contents == b.contents);
    ASSERT_EQ(a.retries, b.retries);
    ASSERT_TRUE(a.stats == b.stats);
  }
}

}  // namespace
}  // namespace essdds::sdds
