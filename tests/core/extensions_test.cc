// Tests for the extension features beyond the paper's baseline: per-family
// ECB keys, shrinking files under the encrypted store, and the full
// Figure-2 worked example of the paper.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/encrypted_store.h"
#include "workload/phonebook.h"

namespace essdds::core {
namespace {

std::unique_ptr<EncryptedStore> MakeStore(
    SchemeParams params, sdds::LhOptions index_opts = {},
    std::span<const std::string> corpus = {}) {
  EncryptedStore::Options opts;
  opts.params = params;
  opts.index_file = index_opts;
  auto store = EncryptedStore::Create(opts, ToBytes("ext test"), corpus);
  EXPECT_TRUE(store.ok()) << store.status();
  return *std::move(store);
}

TEST(PerFamilyKeysTest, SearchStillWorks) {
  SchemeParams p{.codes_per_chunk = 4, .per_family_keys = true};
  auto store = MakeStore(p);
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Insert(2, "WONG MING").ok());
  auto rids = store->Search("SCHWARZ");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1}));
}

TEST(PerFamilyKeysTest, WithDispersalAndStage2) {
  SchemeParams p{.num_codes = 16,
                 .codes_per_chunk = 4,
                 .dispersal_sites = 2,
                 .per_family_keys = true};
  workload::PhonebookGenerator gen(9);
  auto corpus = gen.Generate(80);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);
  auto store = MakeStore(p, {}, training);
  for (const auto& r : corpus) ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  int checked = 0;
  for (const auto& r : corpus) {
    if (r.name.size() < store->params().min_query_symbols()) continue;
    auto rids = store->Search(r.name);
    ASSERT_TRUE(rids.ok());
    EXPECT_TRUE(std::binary_search(rids->begin(), rids->end(), r.rid))
        << r.name;
    ++checked;
  }
  EXPECT_GT(checked, 60);
}

TEST(PerFamilyKeysTest, FamiliesUseDistinctCodebooks) {
  // The same content chunk at the same symbols must encrypt differently in
  // different families (offset-0 chunk of family 0 vs the same 4 symbols
  // appearing chunk-aligned in another record's family-0... so instead
  // compare across stores: per-family off => family streams of a repeated
  // pattern coincide at aligned offsets; on => they don't).
  const std::string content = "ABCDABCDABCDABCD";  // period == chunk size
  SchemeParams off{.codes_per_chunk = 4};
  SchemeParams on{.codes_per_chunk = 4, .per_family_keys = true};
  auto pipe_off = IndexPipeline::Create(off, ToBytes("k"), {});
  auto pipe_on = IndexPipeline::Create(on, ToBytes("k"), {});
  auto recs_off = pipe_off->BuildIndexRecords(1, content);
  auto recs_on = pipe_on->BuildIndexRecords(1, content);
  // Family 0 sees chunks "ABCD" repeated; its stream is constant in both,
  // and family 0 uses the same key/tweak in both modes.
  EXPECT_EQ(recs_off[0].stream[0], recs_off[0].stream[1]);
  EXPECT_EQ(recs_on[0].stream[0], recs_on[0].stream[1]);
  EXPECT_EQ(recs_on[0].stream[0], recs_off[0].stream[0]);
  // Family 1 sees "BCDA" repeated. With a shared codebook its ciphertext is
  // the shared encryption of "BCDA"; with per-family keys it must differ.
  EXPECT_EQ(recs_off[1].stream[0], recs_off[1].stream[1]);
  EXPECT_NE(recs_on[1].stream[0], recs_off[1].stream[0])
      << "per-family keys did not change the family-1 codebook";
}

TEST(PerFamilyKeysTest, QueryWireGrowsByFamilyCount) {
  SchemeParams off{.codes_per_chunk = 4};
  SchemeParams on{.codes_per_chunk = 4, .per_family_keys = true};
  auto pipe_off = IndexPipeline::Create(off, ToBytes("k"), {});
  auto pipe_on = IndexPipeline::Create(on, ToBytes("k"), {});
  auto q_off = pipe_off->BuildQuery("ABCDEFGHIJ");
  auto q_on = pipe_on->BuildQuery("ABCDEFGHIJ");
  EXPECT_GT(q_on->Serialize().size(), 3 * q_off->Serialize().size());
  // Round trip.
  auto back = SearchQuery::Deserialize(q_on->Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->per_family);
  EXPECT_EQ(back->family_series.size(), 4u);
  EXPECT_EQ(back->SeriesFor(2).size(), q_on->SeriesFor(2).size());
}

TEST(StoreShrinkTest, IndexFileShrinksWithDeletes) {
  SchemeParams p{.codes_per_chunk = 4};
  sdds::LhOptions index_opts{.bucket_capacity = 16, .merge_threshold = 0.25};
  auto store = MakeStore(p, index_opts);
  workload::PhonebookGenerator gen(77);
  auto corpus = gen.Generate(400);
  for (const auto& r : corpus) ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  const size_t peak = store->index_file().bucket_count();
  ASSERT_GT(peak, 32u);
  for (size_t i = 0; i + 20 < corpus.size(); ++i) {
    ASSERT_TRUE(store->Delete(corpus[i].rid).ok());
  }
  EXPECT_LT(store->index_file().bucket_count(), peak / 2);
  // Remaining records still searchable.
  for (size_t i = corpus.size() - 20; i < corpus.size(); ++i) {
    const auto& r = corpus[i];
    if (r.name.size() < store->params().min_query_symbols()) continue;
    auto rids = store->Search(r.name);
    ASSERT_TRUE(rids.ok());
    EXPECT_TRUE(std::binary_search(rids->begin(), rids->end(), r.rid))
        << r.name;
  }
}

TEST(PaperExampleTest, Figure2SearchSchwarz) {
  // Figure 2 of the paper: record RI=007 "415-409-5431SCHWARZ THOMAS J$$",
  // chunk size 4 with two chunkings; searching the last name "SCHWARZ"
  // (the paper pads with the leading space: " SCHWARZ") must hit.
  SchemeParams p{.codes_per_chunk = 4, .chunking_stride = 2};
  ASSERT_EQ(p.num_chunkings(), 2);  // two index records, like the figure
  auto store = MakeStore(p);
  const std::string rc = "415-409-5431SCHWARZ THOMAS J";
  ASSERT_TRUE(store->Insert(7, rc).ok());
  // The figure's two search chunkings (min query = s + stride - 1 = 5).
  // " SCHWARZ " does not occur (a '1' precedes SCHWARZ), yet the scheme
  // reports a hit: the leading space falls outside every full chunk of the
  // matching alignments, so no site can verify it — the boundary
  // false-positive class the paper's §2.3/§7 discussion describes.
  auto rids = store->Search(" SCHWARZ ");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{7}));
  rids = store->Search("SCHWARZ ");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{7}));
  rids = store->Search("2SCHWARZ");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{7}));
}

TEST(PaperExampleTest, Section24FalsePositiveStructure) {
  // §2.4: with only ONE stored chunking, "ACDEFGHI" false-positives against
  // a record containing "BCDEFGHIJK" because the critical chunked search
  // string (EFGH) coincides. With all chunkings + the AND rule, it doesn't.
  const std::string record = "ABCDEFGHIJKLMNOP";

  SchemeParams one_site{.codes_per_chunk = 4, .chunking_stride = 4};
  ASSERT_TRUE(one_site.Validate().ok());
  ASSERT_EQ(one_site.num_chunkings(), 1);
  auto store1 = MakeStore(one_site);
  ASSERT_TRUE(store1->Insert(1, record).ok());
  // Query whose only full chunk at some alignment is "EFGH"-aligned:
  // "ACDEFGH" (7 symbols >= min 4+4-1=7): alignments 0..3 -> chunks
  // [ACDE]? no — offsets of full chunks: a=0: ACDE? "ACDEFGH" a=0 ->
  // [ACDE]; a=1 -> [CDEF]; a=2 -> [DEFG]; a=3 -> [EFGH]. Only alignment 3
  // matches the record's single chunking at the right phase.
  auto rids = store1->Search("ACDEFGH");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1}))
      << "single-chunking storage must show the paper's false positive";

  SchemeParams all_sites{.codes_per_chunk = 4,
                         .combination =
                             CombinationMode::kAllExpectedChunkings};
  auto store4 = MakeStore(all_sites);
  ASSERT_TRUE(store4->Insert(1, record).ok());
  rids = store4->Search("ACDEFGH");
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty())
      << "all-chunkings AND combination must kill the false positive";
}

}  // namespace
}  // namespace essdds::core
