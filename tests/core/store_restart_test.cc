// Regression: EncryptedStore's record-cipher nonce input is (rid,
// insert_sequence). Before the counter was made durable
// (persist::SequenceFile), a restarted store began again at sequence 0, so
// the first overwrite of a rid after a restart repeated the (rid, 0) nonce
// of that rid's original insert — an AES-CTR keystream reuse across two
// different plaintexts. The sealed layout is nonce(12) || ct || tag, so the
// reuse is directly observable in the stored blobs.

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/encrypted_store.h"
#include "crypto/record_cipher.h"
#include "persist/bucket_log.h"

namespace essdds::core {
namespace {

Bytes Master() { return ToBytes("restart test master"); }

std::unique_ptr<EncryptedStore> MakeStore(const std::string& data_dir) {
  EncryptedStore::Options opts;
  opts.params = SchemeParams{};
  opts.record_file.bucket_capacity = 8;
  opts.record_file.data_dir = data_dir;
  opts.index_file.bucket_capacity = 32;
  auto store = EncryptedStore::Create(opts, Master(), {});
  EXPECT_TRUE(store.ok()) << store.status();
  return *std::move(store);
}

// The sealed record-store blob for `rid` (empty when absent).
Bytes SealedFor(EncryptedStore& store, uint64_t rid) {
  for (uint64_t b = 0; b < store.record_file().bucket_count(); ++b) {
    for (const auto& [key, value] : store.record_file().bucket(b).records()) {
      if (key == rid) return value;
    }
  }
  return {};
}

Bytes NonceOf(const Bytes& sealed) {
  EXPECT_GE(sealed.size(), crypto::RecordCipher::kNonceSize);
  return Bytes(sealed.begin(),
               sealed.begin() + crypto::RecordCipher::kNonceSize);
}

TEST(StoreRestartTest, OverwriteAfterRestartNeverRepeatsNonce) {
  if (!persist::kPersistEnabled) {
    GTEST_SKIP() << "needs -DESSDDS_PERSIST=ON";
  }
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "store-restart").string();
  std::filesystem::remove_all(dir);

  Bytes first_nonce;
  {
    auto store = MakeStore(dir);
    // rid 7 is this store's very first insert: sequence 0 under the old
    // in-RAM counter.
    ASSERT_TRUE(store->Insert(7, "ORIGINAL CONTENT AAAA").ok());
    first_nonce = NonceOf(SealedFor(*store, 7));
  }

  {
    // Restart over the same directory; the record file replays rid 7.
    auto store = MakeStore(dir);
    auto got = store->Get(7);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "ORIGINAL CONTENT AAAA");

    // First insert of the restarted process = the old counter's sequence 0
    // again. The overwrite of rid 7 must still draw a fresh nonce.
    ASSERT_TRUE(store->Insert(7, "REPLACED CONTENT BBBB").ok());
    const Bytes second_nonce = NonceOf(SealedFor(*store, 7));
    EXPECT_NE(second_nonce, first_nonce)
        << "record cipher repeated a (rid, sequence) nonce after restart";

    auto replaced = store->Get(7);
    ASSERT_TRUE(replaced.ok());
    EXPECT_EQ(*replaced, "REPLACED CONTENT BBBB");
  }
  std::filesystem::remove_all(dir);
}

TEST(StoreRestartTest, SequencesStayUniqueAcrossManyRestarts) {
  if (!persist::kPersistEnabled) {
    GTEST_SKIP() << "needs -DESSDDS_PERSIST=ON";
  }
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "store-restart-many")
          .string();
  std::filesystem::remove_all(dir);

  // Overwrite the same rid once per process lifetime; every sealed blob
  // must carry a distinct nonce (distinct sequence).
  std::vector<Bytes> nonces;
  for (int run = 0; run < 4; ++run) {
    auto store = MakeStore(dir);
    ASSERT_TRUE(store->Insert(42, "content run " + std::to_string(run)).ok());
    nonces.push_back(NonceOf(SealedFor(*store, 42)));
  }
  for (size_t i = 0; i < nonces.size(); ++i) {
    for (size_t j = i + 1; j < nonces.size(); ++j) {
      EXPECT_NE(nonces[i], nonces[j]) << "runs " << i << " and " << j;
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace essdds::core
