// Property sweep across the scheme's parameter grid: the no-false-negative
// guarantee, serialization round trips, and storage accounting must hold
// for every legal combination of (unit, codes, s, stride, k, mode,
// per-family keys).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/encrypted_store.h"
#include "util/random.h"
#include "workload/phonebook.h"

namespace essdds::core {
namespace {

// (unit_symbols, num_codes, codes_per_chunk, stride, k, mode, per_family)
using GridPoint = std::tuple<int, uint32_t, int, int, int, int, bool>;

class SchemeGridTest : public ::testing::TestWithParam<GridPoint> {
 protected:
  SchemeParams ParamsFromGrid() const {
    auto [unit, codes, s, stride, k, mode, per_family] = GetParam();
    SchemeParams p;
    p.unit_symbols = unit;
    p.num_codes = codes;
    p.codes_per_chunk = s;
    p.chunking_stride = stride;
    p.dispersal_sites = k;
    p.combination = static_cast<CombinationMode>(mode);
    p.per_family_keys = per_family;
    return p;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Grid, SchemeGridTest,
    ::testing::Values(
        // Stage-1-only shapes.
        GridPoint{1, 256, 2, 1, 1, 0, false},
        GridPoint{1, 256, 4, 1, 1, 0, false},
        GridPoint{1, 256, 8, 1, 1, 0, false},
        GridPoint{1, 256, 4, 2, 1, 0, false},
        GridPoint{1, 256, 8, 4, 1, 0, false},
        GridPoint{1, 256, 8, 8, 1, 0, false},
        // Dispersal shapes (k | chunk bits, g in 2..16).
        GridPoint{1, 256, 4, 1, 2, 0, false},
        GridPoint{1, 256, 4, 1, 4, 0, false},
        GridPoint{1, 256, 4, 1, 8, 0, false},
        GridPoint{1, 256, 6, 1, 3, 0, false},
        GridPoint{1, 256, 6, 2, 3, 0, false},
        // Stage 2 shapes.
        GridPoint{1, 8, 2, 1, 1, 0, false},
        GridPoint{1, 32, 4, 1, 1, 0, false},
        GridPoint{1, 16, 4, 2, 2, 0, false},
        GridPoint{2, 16, 2, 1, 1, 0, false},
        GridPoint{2, 64, 2, 2, 1, 0, false},
        // AND combination.
        GridPoint{1, 256, 4, 1, 4, 1, false},
        GridPoint{1, 16, 4, 1, 2, 1, false},
        GridPoint{2, 16, 2, 1, 1, 1, false},
        // Per-family keys.
        GridPoint{1, 256, 4, 1, 1, 0, true},
        GridPoint{1, 256, 4, 1, 4, 0, true},
        GridPoint{1, 16, 4, 1, 2, 1, true}));

TEST_P(SchemeGridTest, ValidatesAndRoundTrips) {
  SchemeParams p = ParamsFromGrid();
  ASSERT_TRUE(p.Validate().ok()) << p.ToString();

  workload::PhonebookGenerator gen(404);
  auto corpus = gen.Generate(40);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);

  auto pipe = IndexPipeline::Create(p, ToBytes("grid"), training);
  ASSERT_TRUE(pipe.ok()) << p.ToString();

  // Index records: exactly the advertised count, streams serialize.
  auto recs = pipe->BuildIndexRecords(1, corpus[0].name);
  EXPECT_EQ(recs.size(),
            static_cast<size_t>(p.index_records_per_record()));
  for (const auto& r : recs) {
    auto back = pipe->DeserializeStream(pipe->SerializeStream(r.stream));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, r.stream);
  }

  // Query round trip through the wire format.
  std::string probe;
  while (probe.size() < p.min_query_symbols()) probe += "SCHWARZ ";
  probe.resize(std::max(p.min_query_symbols(), size_t{8}));
  auto q = pipe->BuildQuery(probe);
  ASSERT_TRUE(q.ok()) << p.ToString();
  auto wire = q->Serialize();
  auto parsed = SearchQuery::Deserialize(wire);
  ASSERT_TRUE(parsed.ok()) << p.ToString();
  EXPECT_EQ(parsed->per_family, p.per_family_keys);
}

TEST_P(SchemeGridTest, NoFalseNegativesEndToEnd) {
  SchemeParams p = ParamsFromGrid();
  EncryptedStore::Options opts;
  opts.params = p;
  workload::PhonebookGenerator gen(505);
  auto corpus = gen.Generate(60);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);
  auto store = EncryptedStore::Create(opts, ToBytes("grid"), training);
  ASSERT_TRUE(store.ok()) << p.ToString();
  for (const auto& r : corpus) {
    ASSERT_TRUE((*store)->Insert(r.rid, r.name).ok());
  }

  Rng rng(606);
  int checked = 0;
  for (const auto& r : corpus) {
    if (r.name.size() < p.min_query_symbols()) continue;
    const size_t extra = r.name.size() - p.min_query_symbols();
    const size_t len = p.min_query_symbols() + rng.Uniform(extra + 1);
    const size_t start = rng.Uniform(r.name.size() - len + 1);
    const std::string needle = r.name.substr(start, len);
    auto rids = (*store)->Search(needle);
    ASSERT_TRUE(rids.ok()) << p.ToString();
    EXPECT_TRUE(std::binary_search(rids->begin(), rids->end(), r.rid))
        << p.ToString() << " needle='" << needle << "' in '" << r.name << "'";
    ++checked;
  }
  EXPECT_GT(checked, 20) << p.ToString();
}

}  // namespace
}  // namespace essdds::core
