#include "core/compiled_query.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/matcher.h"
#include "util/random.h"

namespace essdds::core {
namespace {

/// Reference matcher: the obvious O(n*m) scan, overlapping occurrences
/// included. Everything faster must agree with this.
std::vector<size_t> NaiveOccurrences(const std::vector<uint64_t>& stream,
                                     const std::vector<uint64_t>& pattern) {
  std::vector<size_t> out;
  if (pattern.empty() || pattern.size() > stream.size()) return out;
  for (size_t i = 0; i + pattern.size() <= stream.size(); ++i) {
    if (std::equal(pattern.begin(), pattern.end(), stream.begin() + i)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<uint64_t> RandomStream(Rng& rng, size_t len, uint64_t alphabet) {
  std::vector<uint64_t> v(len);
  for (auto& x : v) x = rng.Uniform(alphabet);
  return v;
}

TEST(KmpTest, FailureTableMatchesDefinition) {
  // fail[i] = length of the longest proper prefix of pattern[0..i] that is
  // also a suffix — checked against the quadratic definition.
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const auto pattern = RandomStream(rng, 1 + rng.Uniform(12), 3);
    const auto fail = KmpFailureTable(pattern);
    ASSERT_EQ(fail.size(), pattern.size());
    for (size_t i = 0; i < pattern.size(); ++i) {
      uint32_t expected = 0;
      for (size_t len = 1; len < i + 1; ++len) {
        if (std::equal(pattern.begin(), pattern.begin() + len,
                       pattern.begin() + (i + 1 - len))) {
          expected = static_cast<uint32_t>(len);
        }
      }
      EXPECT_EQ(fail[i], expected) << "trial " << trial << " i " << i;
    }
  }
}

TEST(KmpTest, ContainsAgreesWithNaiveMatcher) {
  Rng rng(12);
  for (int trial = 0; trial < 500; ++trial) {
    // Alphabet of 2: self-overlapping patterns (AAAB, ABAB...) are the norm,
    // which is exactly where hand-rolled matchers go wrong.
    const auto stream = RandomStream(rng, rng.Uniform(40), 2);
    const auto pattern = RandomStream(rng, 1 + rng.Uniform(6), 2);
    const auto fail = KmpFailureTable(pattern);
    EXPECT_EQ(KmpContains(stream, pattern, fail),
              !NaiveOccurrences(stream, pattern).empty())
        << "trial " << trial;
  }
}

TEST(KmpTest, FindOccurrencesAgreesWithNaiveMatcher) {
  Rng rng(13);
  for (int trial = 0; trial < 500; ++trial) {
    const auto stream = RandomStream(rng, rng.Uniform(60), 3);
    // Mix random patterns with substrings of the stream (guaranteed hits).
    std::vector<uint64_t> pattern;
    if (rng.Bernoulli(0.5) && stream.size() >= 2) {
      const size_t len = 1 + rng.Uniform(std::min<size_t>(stream.size(), 5));
      const size_t at = rng.Uniform(stream.size() - len + 1);
      pattern.assign(stream.begin() + at, stream.begin() + at + len);
    } else {
      pattern = RandomStream(rng, 1 + rng.Uniform(5), 3);
    }
    EXPECT_EQ(FindOccurrences(stream, pattern),
              NaiveOccurrences(stream, pattern))
        << "trial " << trial;
  }
}

/// Builds a single-codebook query whose series carry the given chunk
/// patterns (dispersal off).
SearchQuery PlainQuery(std::vector<std::vector<uint64_t>> patterns) {
  SearchQuery q;
  q.symbols_per_chunk = 4;
  q.chunking_stride = 1;
  q.dispersal_sites = 1;
  q.query_symbols = 8;
  uint32_t alignment = 0;
  for (auto& p : patterns) {
    QuerySeries s;
    s.alignment = alignment++;
    s.chunks = std::move(p);
    q.series.push_back(std::move(s));
  }
  return q;
}

TEST(CompiledQueryTest, MatchesAgreesWithNaivePerSeries) {
  Rng rng(14);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::vector<uint64_t>> patterns;
    const size_t num_series = 1 + rng.Uniform(3);
    for (size_t s = 0; s < num_series; ++s) {
      patterns.push_back(RandomStream(rng, 1 + rng.Uniform(4), 2));
    }
    const auto stream = RandomStream(rng, rng.Uniform(30), 2);

    bool naive = false;
    for (const auto& p : patterns) {
      naive = naive || !NaiveOccurrences(stream, p).empty();
    }
    const CompiledQuery compiled(PlainQuery(patterns));
    EXPECT_EQ(compiled.Matches(0, 0, stream), naive) << "trial " << trial;
    // Without per-family series the compiled set is shared by every family.
    EXPECT_EQ(compiled.Matches(7, 0, stream), naive) << "trial " << trial;
  }
}

TEST(CompiledQueryTest, ForEachOccurrenceReportsEveryNaivePosition) {
  Rng rng(15);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::vector<uint64_t>> patterns;
    const size_t num_series = 1 + rng.Uniform(3);
    for (size_t s = 0; s < num_series; ++s) {
      patterns.push_back(RandomStream(rng, 1 + rng.Uniform(4), 2));
    }
    const auto stream = RandomStream(rng, rng.Uniform(30), 2);

    std::set<std::pair<uint32_t, size_t>> naive;
    for (uint32_t s = 0; s < patterns.size(); ++s) {
      for (size_t at : NaiveOccurrences(stream, patterns[s])) {
        naive.insert({s, at});  // series alignment == series index here
      }
    }
    const CompiledQuery compiled(PlainQuery(patterns));
    std::set<std::pair<uint32_t, size_t>> got;
    compiled.ForEachOccurrence(0, 0, stream,
                               [&](uint32_t alignment, size_t chunk) {
                                 EXPECT_TRUE(got.insert({alignment, chunk}).second)
                                     << "duplicate report";
                               });
    EXPECT_EQ(got, naive) << "trial " << trial;
  }
}

TEST(CompiledQueryTest, DispersedQueryMatchesPerSite) {
  // k = 3: each series carries one piece stream per dispersal site, and a
  // site only ever sees (and must only ever match) its own stream.
  SearchQuery q;
  q.symbols_per_chunk = 4;
  q.chunking_stride = 2;
  q.dispersal_sites = 3;
  q.query_symbols = 8;
  QuerySeries s;
  s.alignment = 1;
  s.pieces = {{1, 2}, {3, 4}, {5, 6}};
  q.series.push_back(s);
  const CompiledQuery compiled(std::move(q));

  EXPECT_TRUE(compiled.Matches(0, 0, std::vector<uint64_t>{9, 1, 2, 9}));
  EXPECT_FALSE(compiled.Matches(0, 0, std::vector<uint64_t>{9, 3, 4, 9}));
  EXPECT_TRUE(compiled.Matches(0, 1, std::vector<uint64_t>{3, 4}));
  EXPECT_TRUE(compiled.Matches(0, 2, std::vector<uint64_t>{5, 6}));
  // A site index the query has no piece stream for cannot match (the seed
  // matcher indexed past the pieces array here).
  EXPECT_FALSE(compiled.Matches(0, 3, std::vector<uint64_t>{1, 2}));
  EXPECT_FALSE(compiled.Matches(0, 1000, std::vector<uint64_t>{1, 2}));
}

TEST(CompiledQueryTest, PerFamilyQueryIsolatesFamilies) {
  SearchQuery q;
  q.symbols_per_chunk = 4;
  q.chunking_stride = 1;
  q.dispersal_sites = 1;
  q.query_symbols = 8;
  q.per_family = true;
  QuerySeries f0, f1;
  f0.alignment = 0;
  f0.chunks = {10, 11};
  f1.alignment = 0;
  f1.chunks = {20, 21};
  q.family_series = {{f0}, {f1}};
  const CompiledQuery compiled(std::move(q));

  const std::vector<uint64_t> stream0 = {10, 11};
  const std::vector<uint64_t> stream1 = {20, 21};
  EXPECT_TRUE(compiled.Matches(0, 0, stream0));
  EXPECT_FALSE(compiled.Matches(0, 0, stream1));
  EXPECT_TRUE(compiled.Matches(1, 0, stream1));
  EXPECT_FALSE(compiled.Matches(1, 0, stream0));
  // A family beyond the query's series lists cannot match.
  EXPECT_FALSE(compiled.Matches(2, 0, stream0));
  EXPECT_FALSE(compiled.Matches(1000, 0, stream0));
}

TEST(CompiledQueryTest, FromWireEqualsDirectCompilation) {
  Rng rng(16);
  std::vector<std::vector<uint64_t>> patterns = {
      RandomStream(rng, 3, 4), RandomStream(rng, 2, 4)};
  SearchQuery q = PlainQuery(patterns);
  const Bytes wire = q.Serialize();

  auto from_wire = CompiledQuery::FromWire(wire);
  ASSERT_TRUE(from_wire.ok()) << from_wire.status().ToString();
  const CompiledQuery direct(std::move(q));
  for (int trial = 0; trial < 100; ++trial) {
    const auto stream = RandomStream(rng, rng.Uniform(20), 4);
    EXPECT_EQ(from_wire->Matches(0, 0, stream), direct.Matches(0, 0, stream));
  }
}

TEST(CompiledQueryTest, FromWireRejectsGarbage) {
  const Bytes garbage = ToBytes("not a query");
  EXPECT_FALSE(CompiledQuery::FromWire(garbage).ok());
  EXPECT_FALSE(CompiledQuery::FromWire({}).ok());
}

TEST(CompiledQueryTest, EmptySeriesNeverMatch) {
  const CompiledQuery compiled(PlainQuery({{}}));
  EXPECT_FALSE(compiled.Matches(0, 0, std::vector<uint64_t>{1, 2, 3}));
  EXPECT_FALSE(compiled.Matches(0, 0, std::vector<uint64_t>{}));
}

}  // namespace
}  // namespace essdds::core
