// Robustness and failure-injection tests: malformed wire bytes must never
// crash or be misinterpreted, and the paper's §2.3 short-query expansion
// must stay complete.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/encrypted_store.h"
#include "core/pipeline.h"
#include "sdds/rs_code.h"
#include "tests/util/fuzz_util.h"
#include "util/random.h"
#include "workload/phonebook.h"

namespace essdds::core {
namespace {

std::unique_ptr<EncryptedStore> MakeStore(SchemeParams params) {
  EncryptedStore::Options opts;
  opts.params = params;
  auto store = EncryptedStore::Create(opts, ToBytes("robustness"), {});
  EXPECT_TRUE(store.ok());
  return *std::move(store);
}

constexpr char kNameAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZ &'-";

TEST(ExpansionSearchTest, FindsOccurrencesOneBelowMinimum) {
  auto store = MakeStore(SchemeParams{});  // s=4, min query 4
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Insert(2, "WONG MING").ok());
  // "ONG" is 3 symbols — below the minimum; plain Search refuses.
  EXPECT_FALSE(store->Search("ONG").ok());
  auto rids = store->SearchWithExpansion("ONG", kNameAlphabet);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{2}));
}

TEST(ExpansionSearchTest, CoversOccurrenceAtRecordEnd) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "ABCDEFG").ok());
  // "EFG" occurs only at the very end: right-extension alone would miss it;
  // the left extension ("DEFG") finds it.
  auto rids = store->SearchWithExpansion("EFG", kNameAlphabet);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1}));
}

TEST(ExpansionSearchTest, CoversOccurrenceAtRecordStart) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "ABCDEFG").ok());
  auto rids = store->SearchWithExpansion("ABC", kNameAlphabet);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1}));
}

TEST(ExpansionSearchTest, RejectsTooShortOrEmptyAlphabet) {
  auto store = MakeStore(SchemeParams{});
  EXPECT_FALSE(store->SearchWithExpansion("AB", kNameAlphabet).ok());
  EXPECT_FALSE(store->SearchWithExpansion("ABC", "").ok());
}

TEST(ExpansionSearchTest, FullLengthQueryPassesThrough) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "SCHWARZ").ok());
  auto rids = store->SearchWithExpansion("SCHW", kNameAlphabet);
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1}));
}

TEST(ExpansionSearchTest, NoFalseNegativesOverCorpus) {
  auto store = MakeStore(SchemeParams{});
  workload::PhonebookGenerator gen(88);
  auto corpus = gen.Generate(100);
  for (const auto& r : corpus) ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  int checked = 0;
  for (const auto& r : corpus) {
    if (r.name.size() < 3) continue;
    const std::string fragment = r.name.substr(0, 3);  // min - 1 symbols
    auto rids = store->SearchWithExpansion(fragment, kNameAlphabet);
    ASSERT_TRUE(rids.ok());
    EXPECT_TRUE(std::binary_search(rids->begin(), rids->end(), r.rid))
        << fragment;
    ++checked;
  }
  EXPECT_GT(checked, 90);
}

// --- deserializer fuzzing: random bytes must produce errors, not UB ---

TEST(FuzzTest, SearchQueryDeserializeSurvivesRandomBytes) {
  test::RandomBytesTrials(1, 2000, 200, [](ByteSpan junk) {
    auto q = SearchQuery::Deserialize(junk);  // must not crash
    if (q.ok()) {
      // If it parsed, the invariants must hold.
      EXPECT_GT(q->dispersal_sites, 0u);
      EXPECT_LE(q->series.size(), 1024u);
    }
  });
}

TEST(FuzzTest, SearchQueryDeserializeSurvivesTruncation) {
  SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 4};
  auto pipe = IndexPipeline::Create(p, ToBytes("fuzz"), {});
  auto q = pipe->BuildQuery("ABCDEFGHIJ");
  Bytes wire = q->Serialize();
  test::TruncationSweep(wire, [](ByteSpan prefix, size_t len) {
    auto parsed = SearchQuery::Deserialize(prefix);
    EXPECT_FALSE(parsed.ok()) << "truncation at " << len << " parsed";
  });
  // Full length parses.
  EXPECT_TRUE(SearchQuery::Deserialize(wire).ok());
}

TEST(FuzzTest, SearchQueryDeserializeSurvivesSingleByteMutations) {
  SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 4};
  auto pipe = IndexPipeline::Create(p, ToBytes("fuzz"), {});
  auto q = pipe->BuildQuery("ABCDEFGHIJ");
  const Bytes wire = q->Serialize();
  test::SingleByteMutations(4, wire, [](ByteSpan mutated, size_t) {
    auto parsed = SearchQuery::Deserialize(mutated);  // must not crash
    if (parsed.ok()) {
      EXPECT_GT(parsed->dispersal_sites, 0u);
      EXPECT_LE(parsed->dispersal_sites, 64u);
    }
  });
}

TEST(FuzzTest, StreamDeserializeSurvivesRandomBytes) {
  SchemeParams p{.codes_per_chunk = 4};
  auto pipe = IndexPipeline::Create(p, ToBytes("fuzz"), {});
  test::RandomBytesTrials(2, 2000, 64, [&](ByteSpan junk) {
    (void)pipe->DeserializeStream(junk);  // must not crash
  });
}

TEST(FuzzTest, StreamDeserializeSurvivesTruncationAndMutation) {
  SchemeParams p{.codes_per_chunk = 4};
  auto pipe = IndexPipeline::Create(p, ToBytes("fuzz"), {});
  const Bytes wire = pipe->SerializeStream({1, 2, 3, 0xFFFF, 42});
  EXPECT_TRUE(pipe->DeserializeStream(wire).ok());
  test::TruncationSweep(wire, [&](ByteSpan prefix, size_t) {
    (void)pipe->DeserializeStream(prefix);  // must not crash
  });
  test::SingleByteMutations(5, wire, [&](ByteSpan mutated, size_t) {
    (void)pipe->DeserializeStream(mutated);  // must not crash
  });
}

TEST(FuzzTest, RecordBlockDeserializeSurvivesRandomBytes) {
  test::RandomBytesTrials(3, 2000, 100, [](ByteSpan junk) {
    (void)sdds::DeserializeRecords(junk);  // must not crash
  });
}

TEST(FuzzTest, RecordBlockDeserializeSurvivesTruncation) {
  const Bytes wire = sdds::SerializeRecords(
      {{1, ToBytes("SCHWARZ")}, {2, ToBytes("TSUI")}, {3, {}}});
  test::TruncationSweep(wire, [](ByteSpan prefix, size_t len) {
    auto parsed = sdds::DeserializeRecords(prefix);
    EXPECT_FALSE(parsed.ok()) << "truncation at " << len << " parsed";
  });
  auto full = sdds::DeserializeRecords(wire);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 3u);
}

TEST(FuzzTest, RecordBlockDeserializeSurvivesSingleByteMutations) {
  const Bytes wire = sdds::SerializeRecords(
      {{1, ToBytes("SCHWARZ")}, {2, ToBytes("TSUI")}, {3, {}}});
  test::SingleByteMutations(6, wire, [](ByteSpan mutated, size_t) {
    auto parsed = sdds::DeserializeRecords(mutated);  // must not crash
    if (parsed.ok()) {
      EXPECT_LE(parsed->size(), 3u + 255u);  // a mutated count stays bounded
    }
  });
}

TEST(FuzzTest, RecordBlockRejectsHugeClaimedCountWithoutAllocating) {
  // count = 0xFFFFFFFF over a 12-byte payload: must fail closed as
  // Corruption before any reserve; with a count that big a reserve would
  // demand tens of gigabytes and throw bad_alloc.
  Bytes evil = {0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8};
  auto parsed = sdds::DeserializeRecords(evil);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(FuzzTest, RecordBlockToleratesZeroPaddedTail) {
  // RS parity groups pad blocks to the group maximum; the zero tail after
  // the last record must stay parseable (the recovery path relies on it).
  Bytes wire = sdds::SerializeRecords({{9, ToBytes("PADDED")}});
  wire.resize(wire.size() + 64, 0);
  auto parsed = sdds::DeserializeRecords(wire);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].first, 9u);
}

// --- failure injection at the storage layer ---

TEST(FailureInjectionTest, CorruptIndexPayloadIsIgnoredNotFatal) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Insert(2, "WONG MING").ok());
  // Vandalize every index record of rid 1 with garbage.
  auto& index = store->index_file();
  for (uint64_t b = 0; b < index.bucket_count(); ++b) {
    auto& records =
        const_cast<std::map<uint64_t, Bytes>&>(index.bucket(b).records());
    for (auto& [key, value] : records) {
      if ((key >> store->params().subid_bits) == 1) {
        value = Bytes{0xDE, 0xAD};
      }
    }
  }
  // Site-side matching skips the corrupt records; rid 2 is still found and
  // the search does not crash. (rid 1 becomes unfindable — data loss at a
  // site is an availability problem, handled by the RS extension.)
  auto rids = store->Search("WONG");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{2}));
}

TEST(FailureInjectionTest, CorruptSealedRecordFailsClosed) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  auto& file = store->record_file();
  for (uint64_t b = 0; b < file.bucket_count(); ++b) {
    auto& records =
        const_cast<std::map<uint64_t, Bytes>&>(file.bucket(b).records());
    for (auto& [key, value] : records) value[value.size() / 2] ^= 0x80;
  }
  auto got = store->Get(1);
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
}

}  // namespace
}  // namespace essdds::core
