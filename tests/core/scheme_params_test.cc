#include "core/scheme_params.h"

#include <gtest/gtest.h>

namespace essdds::core {
namespace {

TEST(SchemeParamsTest, DefaultsValidate) {
  SchemeParams p;
  EXPECT_TRUE(p.Validate().ok()) << p.Validate();
  EXPECT_EQ(p.symbols_per_chunk(), 4);
  EXPECT_EQ(p.chunk_bits(), 32);
  EXPECT_EQ(p.num_chunkings(), 4);
  EXPECT_EQ(p.index_records_per_record(), 4);
  EXPECT_EQ(p.min_query_symbols(), 4u);
  EXPECT_FALSE(p.stage2_enabled());
}

TEST(SchemeParamsTest, PaperConclusionConfigValidates) {
  // "a chunk size of 6 ASCII characters together with dispersing index
  // records into 3 records" — 48-bit chunks, k=3, g=16.
  SchemeParams p{.codes_per_chunk = 6, .dispersal_sites = 3};
  ASSERT_TRUE(p.Validate().ok()) << p.Validate();
  EXPECT_EQ(p.chunk_bits(), 48);
  EXPECT_EQ(p.chunk_bits() / p.dispersal_sites, 16);
}

TEST(SchemeParamsTest, Stage2ConfigDerivedQuantities) {
  SchemeParams p{.unit_symbols = 2,
                 .num_codes = 16,
                 .codes_per_chunk = 2,
                 .chunking_stride = 1};
  ASSERT_TRUE(p.Validate().ok());
  EXPECT_TRUE(p.stage2_enabled());
  EXPECT_EQ(p.code_bits(), 4);
  EXPECT_EQ(p.symbols_per_chunk(), 4);
  EXPECT_EQ(p.chunk_bits(), 8);
  EXPECT_EQ(p.num_chunkings(), 4);
}

TEST(SchemeParamsTest, ReducedStorageRaisesMinQuery) {
  // §2.5: s=8 with 4 sites -> min length s+1; with 2 sites -> s+3.
  SchemeParams four{.codes_per_chunk = 8, .chunking_stride = 2};
  ASSERT_TRUE(four.Validate().ok());
  EXPECT_EQ(four.num_chunkings(), 4);
  EXPECT_EQ(four.min_query_symbols(), 9u);

  SchemeParams two{.codes_per_chunk = 8, .chunking_stride = 4};
  ASSERT_TRUE(two.Validate().ok());
  EXPECT_EQ(two.num_chunkings(), 2);
  EXPECT_EQ(two.min_query_symbols(), 11u);
}

TEST(SchemeParamsTest, RejectsBadConfigs) {
  EXPECT_FALSE(SchemeParams{.unit_symbols = 0}.Validate().ok());
  EXPECT_FALSE(SchemeParams{.unit_symbols = 9}.Validate().ok());
  EXPECT_FALSE(SchemeParams{.num_codes = 1}.Validate().ok());
  EXPECT_FALSE(SchemeParams{.num_codes = 100}.Validate().ok());  // not 2^t
  EXPECT_FALSE(SchemeParams{.codes_per_chunk = 0}.Validate().ok());
  EXPECT_FALSE(SchemeParams{.codes_per_chunk = 9}.Validate().ok());  // 72 bits
  EXPECT_FALSE(SchemeParams{.chunking_stride = 3}.Validate().ok());  // !| 4
  EXPECT_FALSE(SchemeParams{.dispersal_sites = 0}.Validate().ok());
  EXPECT_FALSE(SchemeParams{.dispersal_sites = 3}.Validate().ok());  // !| 32
  SchemeParams too_many{.codes_per_chunk = 8, .dispersal_sites = 8,
                        .subid_bits = 3};
  EXPECT_FALSE(too_many.Validate().ok());  // 8*8=64 > 2^3
}

TEST(SchemeParamsTest, OneBitPiecesRejected) {
  // 8-bit chunks over 8 sites would need GF(2) with all-nonzero E.
  SchemeParams p{.num_codes = 4, .codes_per_chunk = 4, .dispersal_sites = 8};
  EXPECT_FALSE(p.Validate().ok());
}

TEST(SchemeParamsTest, ToStringMentionsKeyKnobs) {
  SchemeParams p;
  const std::string s = p.ToString();
  EXPECT_NE(s.find("s=4"), std::string::npos);
  EXPECT_NE(s.find("k=1"), std::string::npos);
}

}  // namespace
}  // namespace essdds::core
