#include "core/matcher.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace essdds::core {
namespace {

using U64 = std::vector<uint64_t>;

TEST(MatcherTest, FindsSingleOccurrence) {
  U64 stream = {1, 2, 3, 4, 5};
  U64 pattern = {3, 4};
  EXPECT_EQ(FindOccurrences(stream, pattern), (std::vector<size_t>{2}));
}

TEST(MatcherTest, FindsMultipleAndOverlapping) {
  U64 stream = {7, 7, 7, 7};
  U64 pattern = {7, 7};
  EXPECT_EQ(FindOccurrences(stream, pattern), (std::vector<size_t>{0, 1, 2}));
}

TEST(MatcherTest, NoMatch) {
  U64 stream = {1, 2, 3};
  U64 pattern = {2, 1};
  EXPECT_TRUE(FindOccurrences(stream, pattern).empty());
}

TEST(MatcherTest, PatternLongerThanStream) {
  U64 stream = {1, 2};
  U64 pattern = {1, 2, 3};
  EXPECT_TRUE(FindOccurrences(stream, pattern).empty());
}

TEST(MatcherTest, EmptyPatternMatchesNothing) {
  U64 stream = {1, 2, 3};
  U64 pattern = {};
  EXPECT_TRUE(FindOccurrences(stream, pattern).empty());
}

TEST(MatcherTest, EmptyStream) {
  U64 stream = {};
  U64 pattern = {1};
  EXPECT_TRUE(FindOccurrences(stream, pattern).empty());
}

TEST(MatcherTest, FullStreamMatch) {
  U64 v = {9, 8, 7};
  EXPECT_EQ(FindOccurrences(v, v), (std::vector<size_t>{0}));
}

TEST(MatcherTest, PeriodicPatternKmpCorrectness) {
  // Classic KMP trap: pattern with repeated prefix.
  U64 stream = {1, 1, 2, 1, 1, 1, 2};
  U64 pattern = {1, 1, 2};
  EXPECT_EQ(FindOccurrences(stream, pattern), (std::vector<size_t>{0, 4}));
}

TEST(MatcherTest, MatchesNaiveSearchOnRandomInputs) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.Uniform(60);
    const size_t m = 1 + rng.Uniform(6);
    U64 stream(n), pattern(m);
    // Small alphabet to force many matches.
    for (auto& v : stream) v = rng.Uniform(3);
    for (auto& v : pattern) v = rng.Uniform(3);

    std::vector<size_t> naive;
    for (size_t i = 0; i + m <= n; ++i) {
      bool ok = true;
      for (size_t j = 0; j < m; ++j) {
        if (stream[i + j] != pattern[j]) {
          ok = false;
          break;
        }
      }
      if (ok) naive.push_back(i);
    }
    EXPECT_EQ(FindOccurrences(stream, pattern), naive)
        << "trial " << trial;
  }
}

TEST(MatcherTest, Uint32Overload) {
  std::vector<uint32_t> stream = {5, 6, 5, 6, 5};
  std::vector<uint32_t> pattern = {5, 6, 5};
  EXPECT_EQ(FindOccurrences(stream, pattern), (std::vector<size_t>{0, 2}));
}

}  // namespace
}  // namespace essdds::core
