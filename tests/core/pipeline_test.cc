#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "core/matcher.h"

namespace essdds::core {
namespace {

const std::vector<std::string>& Corpus() {
  static const std::vector<std::string>& corpus = *new std::vector<std::string>{
      "SCHWARZ THOMAS", "TSUI PETER", "LITWIN WITOLD", "ADRIAN CORTEZ",
      "ABOGADO ALEJANDRO & CATHERINE", "LEE WEI", "WONG MING"};
  return corpus;
}

Bytes Master() { return ToBytes("pipeline test master key"); }

TEST(IndexKeyTest, PackUnpackRoundTrip) {
  SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 4};
  ASSERT_TRUE(p.Validate().ok());
  for (uint64_t rid : {0ull, 1ull, 4154090271ull}) {
    for (uint32_t f = 0; f < 4; ++f) {
      for (uint32_t d = 0; d < 4; ++d) {
        const uint64_t key = MakeIndexKey(rid, f, d, p);
        uint64_t rid2;
        uint32_t f2, d2;
        ParseIndexKey(key, p, &rid2, &f2, &d2);
        EXPECT_EQ(rid2, rid);
        EXPECT_EQ(f2, f);
        EXPECT_EQ(d2, d);
      }
    }
  }
}

TEST(IndexKeyTest, SubidsOccupyLowBits) {
  // Paper §5: sub-ids as least significant bits scatter one record's index
  // records across LH* buckets.
  SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 4};
  std::set<uint64_t> low_bits;
  for (uint32_t f = 0; f < 4; ++f) {
    for (uint32_t d = 0; d < 4; ++d) {
      low_bits.insert(MakeIndexKey(42, f, d, p) & 0xF);
    }
  }
  EXPECT_EQ(low_bits.size(), 16u);
}

TEST(IndexPipelineTest, CreateValidatesParams) {
  SchemeParams bad{.codes_per_chunk = 0};
  EXPECT_FALSE(IndexPipeline::Create(bad, Master(), Corpus()).ok());
  SchemeParams good;
  EXPECT_FALSE(IndexPipeline::Create(good, Bytes{}, Corpus()).ok());
  SchemeParams stage2{.num_codes = 8};
  EXPECT_FALSE(IndexPipeline::Create(stage2, Master(), {}).ok());
  EXPECT_TRUE(IndexPipeline::Create(stage2, Master(), Corpus()).ok());
}

TEST(IndexPipelineTest, BuildsOneRecordPerFamilyAndSite) {
  SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 4};
  auto pipe = IndexPipeline::Create(p, Master(), {});
  ASSERT_TRUE(pipe.ok());
  auto recs = pipe->BuildIndexRecords(7, "ABCDEFGHIJKLMNOP");
  EXPECT_EQ(recs.size(), 16u);  // 4 families x 4 sites
  std::set<std::pair<uint32_t, uint32_t>> seen;
  for (const auto& r : recs) {
    EXPECT_EQ(r.rid, 7u);
    seen.insert({r.family, r.site});
  }
  EXPECT_EQ(seen.size(), 16u);
}

TEST(IndexPipelineTest, StreamsAreEncrypted) {
  SchemeParams p{.codes_per_chunk = 4};
  auto pipe = IndexPipeline::Create(p, Master(), {});
  ASSERT_TRUE(pipe.ok());
  auto recs = pipe->BuildIndexRecords(1, "ABCDABCD");
  // Family 0: two chunks of "ABCD" -> equal ciphertext (ECB property) but
  // not the plaintext packing.
  const uint64_t plain_abcd = 0x41424344;
  ASSERT_EQ(recs[0].stream.size(), 2u);
  EXPECT_EQ(recs[0].stream[0], recs[0].stream[1]);
  EXPECT_NE(recs[0].stream[0], plain_abcd);
}

TEST(IndexPipelineTest, DispersedStreamsRecombineToChunkCiphertext) {
  SchemeParams with{.codes_per_chunk = 4, .dispersal_sites = 4};
  SchemeParams without{.codes_per_chunk = 4, .dispersal_sites = 1};
  auto pw = IndexPipeline::Create(with, Master(), {});
  auto po = IndexPipeline::Create(without, Master(), {});
  ASSERT_TRUE(pw.ok() && po.ok());
  auto recs_w = pw->BuildIndexRecords(1, "ABCDEFGH");
  auto recs_o = po->BuildIndexRecords(1, "ABCDEFGH");
  // recs_o[0] = family 0 chunk ciphertexts; recs_w[0..3] = its pieces.
  ASSERT_EQ(recs_o[0].stream.size(), 2u);
  ASSERT_EQ(recs_w[0].stream.size(), 2u);
  // Same master key derives the same ECB codebook, so recombining pieces
  // must give the undispersed ciphertexts. (We verify indirectly: piece
  // streams are consistent across chunks — equal chunks, equal pieces.)
  auto recs_w2 = pw->BuildIndexRecords(2, "ABCDABCD");
  for (uint32_t d = 0; d < 4; ++d) {
    const auto& stream = recs_w2[d].stream;
    ASSERT_EQ(stream.size(), 2u);
    EXPECT_EQ(stream[0], stream[1]);
  }
}

TEST(IndexPipelineTest, QueryTooShortRejected) {
  SchemeParams p{.codes_per_chunk = 4};
  auto pipe = IndexPipeline::Create(p, Master(), {});
  EXPECT_FALSE(pipe->BuildQuery("ABC").ok());
  EXPECT_TRUE(pipe->BuildQuery("ABCD").ok());
}

TEST(IndexPipelineTest, QuerySeriesMatchPaperExample) {
  // §2.4: searching "BCDEFGHIJK" with s=4 yields four series of 2,2,2,1
  // chunks at alignments 0..3.
  SchemeParams p{.codes_per_chunk = 4};
  auto pipe = IndexPipeline::Create(p, Master(), {});
  auto q = pipe->BuildQuery("BCDEFGHIJK");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->series.size(), 4u);
  EXPECT_EQ(q->series[0].alignment, 0u);
  EXPECT_EQ(q->series[0].chunks.size(), 2u);  // (BCDE)(FGHI)
  EXPECT_EQ(q->series[1].chunks.size(), 2u);  // (CDEF)(GHIJ)
  EXPECT_EQ(q->series[2].chunks.size(), 2u);  // (DEFG)(HIJK)
  EXPECT_EQ(q->series[3].chunks.size(), 1u);  // (EFGH)
}

TEST(IndexPipelineTest, QueryChunksMatchRecordChunks) {
  // The fundamental search property: a query series aligned with the record
  // chunking produces identical encrypted chunks.
  SchemeParams p{.codes_per_chunk = 4};
  auto pipe = IndexPipeline::Create(p, Master(), {});
  const std::string record = "ABCDEFGHIJKLMNOP";
  auto recs = pipe->BuildIndexRecords(1, record);
  auto q = pipe->BuildQuery("EFGHIJKL");  // occurs at p=4
  ASSERT_TRUE(q.ok());
  // Family 0 (offset 0): occurrence p=4 -> alignment (0-4) mod 4 = 0.
  const auto& family0 = recs[0].stream;
  const auto& series0 = q->series[0];
  auto hits = FindOccurrences(family0, series0.chunks);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);  // matches at chunk index 1 = symbol 4
}

TEST(IndexPipelineTest, SerializeDeserializeQueryRoundTrip) {
  for (int k : {1, 4}) {
    SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = k};
    auto pipe = IndexPipeline::Create(p, Master(), {});
    auto q = pipe->BuildQuery("ABCDEFGHIJ");
    ASSERT_TRUE(q.ok());
    Bytes wire = q->Serialize();
    auto back = SearchQuery::Deserialize(wire);
    ASSERT_TRUE(back.ok()) << "k=" << k;
    EXPECT_EQ(back->series.size(), q->series.size());
    EXPECT_EQ(back->dispersal_sites, q->dispersal_sites);
    EXPECT_EQ(back->query_symbols, q->query_symbols);
    for (size_t i = 0; i < q->series.size(); ++i) {
      EXPECT_EQ(back->SeriesLength(back->series[i]),
                q->SeriesLength(q->series[i]));
      for (uint32_t d = 0; d < static_cast<uint32_t>(k); ++d) {
        EXPECT_EQ(back->PatternFor(back->series[i], d),
                  q->PatternFor(q->series[i], d));
      }
    }
  }
}

TEST(IndexPipelineTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SearchQuery::Deserialize(Bytes{1, 2, 3}).ok());
  Bytes zeros(24, 0);
  // dispersal_sites == 0 is implausible.
  EXPECT_FALSE(SearchQuery::Deserialize(zeros).ok());
}

TEST(IndexPipelineTest, StreamSerializationRoundTrip) {
  for (int k : {1, 2, 4}) {
    SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = k};
    auto pipe = IndexPipeline::Create(p, Master(), {});
    ASSERT_TRUE(pipe.ok());
    auto recs = pipe->BuildIndexRecords(9, "ABCDEFGHIJKLMNOPQRSTUVWX");
    for (const auto& r : recs) {
      Bytes wire = pipe->SerializeStream(r.stream);
      auto back = pipe->DeserializeStream(wire);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(*back, r.stream);
    }
  }
}

TEST(IndexPipelineTest, StreamDeserializeRejectsTruncation) {
  SchemeParams p{.codes_per_chunk = 4};
  auto pipe = IndexPipeline::Create(p, Master(), {});
  Bytes wire = pipe->SerializeStream({1, 2, 3});
  Bytes truncated(wire.begin(), wire.end() - 2);
  EXPECT_FALSE(pipe->DeserializeStream(truncated).ok());
}

TEST(IndexPipelineTest, DifferentMasterKeysGiveDifferentCiphertexts) {
  SchemeParams p{.codes_per_chunk = 4};
  auto a = IndexPipeline::Create(p, ToBytes("key-a"), {});
  auto b = IndexPipeline::Create(p, ToBytes("key-b"), {});
  auto ra = a->BuildIndexRecords(1, "ABCDEFGH");
  auto rb = b->BuildIndexRecords(1, "ABCDEFGH");
  EXPECT_NE(ra[0].stream, rb[0].stream);
}

TEST(IndexPipelineTest, Stage2PipelineEndToEnd) {
  SchemeParams p{.unit_symbols = 1,
                 .num_codes = 8,
                 .codes_per_chunk = 2,
                 .dispersal_sites = 2};
  ASSERT_TRUE(p.Validate().ok());
  auto pipe = IndexPipeline::Create(p, Master(), Corpus());
  ASSERT_TRUE(pipe.ok());
  EXPECT_EQ(pipe->stream_value_bits(), 3);  // 6-bit chunks over 2 sites
  auto recs = pipe->BuildIndexRecords(1, "SCHWARZ THOMAS");
  EXPECT_EQ(recs.size(), 4u);  // 2 families x 2 sites
  auto q = pipe->BuildQuery("SCHWARZ");
  ASSERT_TRUE(q.ok());
  EXPECT_GE(q->series.size(), 1u);
}

}  // namespace
}  // namespace essdds::core
