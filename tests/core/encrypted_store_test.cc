#include "core/encrypted_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "util/random.h"
#include "workload/phonebook.h"

namespace essdds::core {
namespace {

Bytes Master() { return ToBytes("store test master"); }

std::unique_ptr<EncryptedStore> MakeStore(
    SchemeParams params, std::span<const std::string> corpus = {}) {
  EncryptedStore::Options opts;
  opts.params = params;
  opts.record_file.bucket_capacity = 16;
  opts.index_file.bucket_capacity = 32;
  auto store = EncryptedStore::Create(opts, Master(), corpus);
  EXPECT_TRUE(store.ok()) << store.status();
  return *std::move(store);
}

TEST(EncryptedStoreTest, InsertGetRoundTrip) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(7, "SCHWARZ THOMAS").ok());
  auto got = store->Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "SCHWARZ THOMAS");
}

TEST(EncryptedStoreTest, GetMissingIsNotFound) {
  auto store = MakeStore(SchemeParams{});
  EXPECT_TRUE(store->Get(99).status().IsNotFound());
}

TEST(EncryptedStoreTest, RecordStoreHoldsOnlyCiphertext) {
  auto store = MakeStore(SchemeParams{});
  const std::string content = "HIGHLY CONFIDENTIAL SUBSCRIBER";
  ASSERT_TRUE(store->Insert(1, content).ok());
  // Walk every bucket of the record file: plaintext must not appear.
  for (uint64_t b = 0; b < store->record_file().bucket_count(); ++b) {
    for (const auto& [key, value] : store->record_file().bucket(b).records()) {
      const std::string blob(value.begin(), value.end());
      EXPECT_EQ(blob.find("CONFIDENTIAL"), std::string::npos);
    }
  }
}

TEST(EncryptedStoreTest, SearchFindsExactOccurrence) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Insert(2, "TSUI PETER").ok());
  ASSERT_TRUE(store->Insert(3, "LITWIN WITOLD").ok());
  auto rids = store->Search("SCHWARZ");
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(*rids, (std::vector<uint64_t>{1}));
}

TEST(EncryptedStoreTest, SearchAtEveryOffsetOfTheRecord) {
  auto store = MakeStore(SchemeParams{});
  const std::string content = "ABCDEFGHIJKLMNOPQRSTUVWXYZ";
  ASSERT_TRUE(store->Insert(5, content).ok());
  for (size_t start = 0; start + 6 <= content.size(); ++start) {
    auto rids = store->Search(content.substr(start, 6));
    ASSERT_TRUE(rids.ok()) << "start " << start;
    EXPECT_EQ(*rids, (std::vector<uint64_t>{5})) << "start " << start;
  }
}

TEST(EncryptedStoreTest, SearchRespectsMinimumLength) {
  auto store = MakeStore(SchemeParams{});  // s=4, stride 1 -> min 4
  ASSERT_TRUE(store->Insert(1, "ABCDEFGH").ok());
  EXPECT_FALSE(store->Search("ABC").ok());
  EXPECT_TRUE(store->Search("ABCD").ok());
}

TEST(EncryptedStoreTest, NoHitsForAbsentString) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  auto rids = store->Search("QQQQQQQ");
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty());
}

TEST(EncryptedStoreTest, DeleteRemovesRecordAndIndex) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Delete(1).ok());
  EXPECT_TRUE(store->Get(1).status().IsNotFound());
  auto rids = store->Search("SCHWARZ");
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(rids->empty());
  EXPECT_EQ(store->index_file().TotalRecords(), 0u);
  EXPECT_TRUE(store->Delete(1).IsNotFound());
}

TEST(EncryptedStoreTest, ReinsertReplacesContent) {
  auto store = MakeStore(SchemeParams{});
  ASSERT_TRUE(store->Insert(1, "SCHWARZ THOMAS").ok());
  ASSERT_TRUE(store->Insert(1, "WONG MING AND ASSOCIATES").ok());
  EXPECT_EQ(*store->Get(1), "WONG MING AND ASSOCIATES");
  auto old_hit = store->Search("SCHWARZ");
  ASSERT_TRUE(old_hit.ok());
  EXPECT_TRUE(old_hit->empty());
  auto new_hit = store->Search("WONG MING");
  ASSERT_TRUE(new_hit.ok());
  EXPECT_EQ(*new_hit, (std::vector<uint64_t>{1}));
}

TEST(EncryptedStoreTest, IndexSitesNeverSeePlaintext) {
  SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 4};
  auto store = MakeStore(p);
  ASSERT_TRUE(store->Insert(1, "AAAABBBBCCCCDDDD").ok());
  // No index bucket value may contain 4 consecutive plaintext bytes.
  for (uint64_t b = 0; b < store->index_file().bucket_count(); ++b) {
    for (const auto& [key, value] : store->index_file().bucket(b).records()) {
      const std::string blob(value.begin(), value.end());
      EXPECT_EQ(blob.find("AAAA"), std::string::npos);
      EXPECT_EQ(blob.find("BBBB"), std::string::npos);
    }
  }
}

struct StoreConfig {
  std::string name;
  SchemeParams params;
};

class EncryptedStoreConfigTest : public ::testing::TestWithParam<StoreConfig> {
};

INSTANTIATE_TEST_SUITE_P(
    Configs, EncryptedStoreConfigTest,
    ::testing::Values(
        StoreConfig{"stage1_only", SchemeParams{}},
        StoreConfig{"stage1_dispersed",
                    SchemeParams{.codes_per_chunk = 4, .dispersal_sites = 4}},
        StoreConfig{"paper_conclusion",
                    SchemeParams{.codes_per_chunk = 6, .dispersal_sites = 3}},
        StoreConfig{"reduced_storage",
                    SchemeParams{.codes_per_chunk = 8, .chunking_stride = 2}},
        StoreConfig{"stage2",
                    SchemeParams{.num_codes = 32, .codes_per_chunk = 4}},
        StoreConfig{"stage2_dispersed",
                    SchemeParams{.num_codes = 16,
                                 .codes_per_chunk = 4,
                                 .dispersal_sites = 2}},
        StoreConfig{"all_expected_mode",
                    SchemeParams{.codes_per_chunk = 4,
                                 .dispersal_sites = 4,
                                 .combination =
                                     CombinationMode::kAllExpectedChunkings}}),
    [](const auto& param_info) { return param_info.param.name; });

// The core correctness property across all configurations: NO FALSE
// NEGATIVES. Every true occurrence of length >= min_query_symbols is found.
TEST_P(EncryptedStoreConfigTest, NeverMissesTrueOccurrences) {
  workload::PhonebookGenerator gen(321);
  auto corpus = gen.Generate(120);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);

  auto store = MakeStore(GetParam().params, training);
  for (const auto& r : corpus) {
    ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  }

  const size_t min_len = store->params().min_query_symbols();
  Rng rng(99);
  int checked = 0;
  for (const auto& r : corpus) {
    if (r.name.size() < min_len) continue;
    // Random substring of the record, at least min_len long.
    const size_t max_extra = r.name.size() - min_len;
    const size_t len = min_len + rng.Uniform(max_extra + 1);
    const size_t start = rng.Uniform(r.name.size() - len + 1);
    const std::string needle = r.name.substr(start, len);

    auto rids = store->Search(needle);
    ASSERT_TRUE(rids.ok());
    EXPECT_TRUE(std::binary_search(rids->begin(), rids->end(), r.rid))
        << "missed '" << needle << "' in '" << r.name << "' ("
        << GetParam().name << ")";
    ++checked;
  }
  EXPECT_GT(checked, 50);
}

// And every reported rid whose content we fetch must be explainable: with
// Stage 2 off, a hit must contain at least one chunk-aligned fragment of
// the query (sanity bound on false positives).
TEST_P(EncryptedStoreConfigTest, HitsAreChunkExplainable) {
  if (GetParam().params.stage2_enabled()) GTEST_SKIP();
  workload::PhonebookGenerator gen(654);
  auto corpus = gen.Generate(100);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);
  auto store = MakeStore(GetParam().params, training);
  for (const auto& r : corpus) ASSERT_TRUE(store->Insert(r.rid, r.name).ok());

  auto sample = workload::SampleRecords(corpus, 30, 7);
  const size_t min_len = store->params().min_query_symbols();
  for (const auto* rec : sample) {
    std::string needle(workload::SurnameOf(*rec));
    if (needle.size() < min_len) continue;
    auto outcome = store->SearchDetailed(needle);
    ASSERT_TRUE(outcome.ok());
    for (uint64_t rid : outcome->rids) {
      auto content = store->Get(rid);
      ASSERT_TRUE(content.ok());
      // Without lossy compression a hit requires at least one full chunk of
      // the query to appear verbatim in the content.
      const int s = store->params().symbols_per_chunk();
      bool explainable = false;
      for (size_t a = 0; !explainable && a + s <= needle.size(); ++a) {
        explainable = content->find(needle.substr(a, s)) != std::string::npos;
      }
      EXPECT_TRUE(explainable)
          << "unexplainable hit rid=" << rid << " content='" << *content
          << "' query='" << needle << "'";
    }
  }
}

TEST(EncryptedStoreTest, DispersalAndReducesFalsePositives) {
  // A candidate that matches on one dispersal site but not all k must be
  // rejected. We engineer this indirectly: with tiny 2-bit pieces, single-
  // site matches are frequent, so candidates >> confirmed.
  SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 4};
  workload::PhonebookGenerator gen(11);
  auto corpus = gen.Generate(300);
  auto store = MakeStore(p);
  for (const auto& r : corpus) ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  auto outcome = store->SearchDetailed("ZZZZYYYY");
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->rids.empty());
}

TEST(EncryptedStoreTest, AllExpectedModeIsSubsetOfAnyMode) {
  workload::PhonebookGenerator gen(22);
  auto corpus = gen.Generate(200);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);

  SchemeParams any_mode{.num_codes = 8, .codes_per_chunk = 2};
  SchemeParams all_mode = any_mode;
  all_mode.combination = CombinationMode::kAllExpectedChunkings;

  auto store_any = MakeStore(any_mode, training);
  auto store_all = MakeStore(all_mode, training);
  for (const auto& r : corpus) {
    ASSERT_TRUE(store_any->Insert(r.rid, r.name).ok());
    ASSERT_TRUE(store_all->Insert(r.rid, r.name).ok());
  }
  auto sample = workload::SampleRecords(corpus, 40, 3);
  for (const auto* rec : sample) {
    // The surname occurs at position 0 of the record's own name.
    std::string needle(workload::SurnameOf(*rec));
    if (needle.size() < store_any->params().min_query_symbols()) continue;
    auto any_hits = store_any->Search(needle);
    auto all_hits = store_all->Search(needle);
    ASSERT_TRUE(any_hits.ok() && all_hits.ok());
    // all_mode hits are a subset of any_mode hits.
    EXPECT_TRUE(std::includes(any_hits->begin(), any_hits->end(),
                              all_hits->begin(), all_hits->end()))
        << needle;
    // And the true record is in both.
    EXPECT_TRUE(std::binary_search(all_hits->begin(), all_hits->end(),
                                   rec->rid))
        << needle;
  }
}

TEST(EncryptedStoreTest, SearchStatsAreConsistent) {
  auto store = MakeStore(SchemeParams{});
  workload::PhonebookGenerator gen(33);
  for (const auto& r : gen.Generate(150)) {
    ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  }
  auto outcome = store->SearchDetailed("WONG");
  ASSERT_TRUE(outcome.ok());
  const auto& st = outcome->stats;
  EXPECT_GE(st.candidate_index_records, st.families_confirmed);
  EXPECT_GE(st.families_confirmed, st.rids_candidates);
  EXPECT_GE(st.rids_candidates, st.rids_final);
  EXPECT_EQ(st.rids_final, outcome->rids.size());
  EXPECT_GT(st.rids_final, 0u);
}

TEST(EncryptedStoreTest, ScalesAcrossManyBucketsAndStaysSearchable) {
  SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 2};
  workload::PhonebookGenerator gen(44);
  auto corpus = gen.Generate(400);
  auto store = MakeStore(p);
  for (const auto& r : corpus) ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  // The index file must have split well beyond one bucket.
  EXPECT_GT(store->index_file().bucket_count(), 8u);
  // And search still works for an arbitrary record.
  const auto& target = corpus[123];
  auto rids = store->Search(target.name);
  ASSERT_TRUE(rids.ok());
  EXPECT_TRUE(std::binary_search(rids->begin(), rids->end(), target.rid));
}

TEST(EncryptedStoreTest, RejectsOversizedRid) {
  auto store = MakeStore(SchemeParams{});  // subid_bits = 8
  EXPECT_FALSE(store->Insert(~uint64_t{0}, "X").ok());
}

TEST(EncryptedStoreTest, ParallelIndexScanMatchesSerialOnPhonebook) {
  // The full scheme with thread-pool index scans must be indistinguishable
  // from the serial build: same rids, same per-stage stats, same network
  // accounting. This is the workload the paper evaluates.
  auto run = [](size_t scan_threads) {
    SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 2};
    EncryptedStore::Options opts;
    opts.params = p;
    opts.record_file.bucket_capacity = 16;
    opts.index_file.bucket_capacity = 32;
    opts.index_file.scan_threads = scan_threads;
    auto store = EncryptedStore::Create(opts, Master(), {});
    EXPECT_TRUE(store.ok()) << store.status();

    workload::PhonebookGenerator gen(77);
    auto corpus = gen.Generate(300);
    for (const auto& r : corpus) {
      EXPECT_TRUE((*store)->Insert(r.rid, r.name).ok());
    }
    (*store)->index_file().network().ResetStats();

    struct Outcome {
      std::vector<uint64_t> rids;
      EncryptedStore::SearchStats stats;
      sdds::NetworkStats net;
    } out;
    for (const char* q : {"SCHWARZ", "MARIA", "ER J", "ZZZZQQ"}) {
      auto found = (*store)->SearchDetailed(q);
      EXPECT_TRUE(found.ok()) << q;
      out.rids.insert(out.rids.end(), found->rids.begin(), found->rids.end());
      out.stats.candidate_index_records +=
          found->stats.candidate_index_records;
      out.stats.families_confirmed += found->stats.families_confirmed;
      out.stats.rids_final += found->stats.rids_final;
    }
    out.net = (*store)->index_file().network().stats();
    return out;
  };

  const auto serial = run(0);
  const auto parallel = run(4);
  EXPECT_EQ(serial.rids, parallel.rids);
  EXPECT_EQ(serial.stats.candidate_index_records,
            parallel.stats.candidate_index_records);
  EXPECT_EQ(serial.stats.families_confirmed,
            parallel.stats.families_confirmed);
  EXPECT_EQ(serial.stats.rids_final, parallel.stats.rids_final);
  EXPECT_EQ(serial.net, parallel.net);
  EXPECT_GT(serial.stats.rids_final, 0u) << "queries matched nothing";
}

TEST(EncryptedStoreTest, ShardedIndexScanThresholdSweepMatchesSerial) {
  // Full-scheme leg of the shard-threshold sweep: whatever the intra-bucket
  // sharding threshold, pooled index scans must reproduce the serial build
  // exactly — rids, per-stage stats, and network accounting.
  auto run = [](size_t scan_threads, size_t shard_min) {
    SchemeParams p{.codes_per_chunk = 4, .dispersal_sites = 2};
    EncryptedStore::Options opts;
    opts.params = p;
    opts.record_file.bucket_capacity = 16;
    opts.index_file.bucket_capacity = 32;
    opts.index_file.scan_threads = scan_threads;
    opts.index_file.scan_shard_min_records = shard_min;
    auto store = EncryptedStore::Create(opts, Master(), {});
    EXPECT_TRUE(store.ok()) << store.status();

    workload::PhonebookGenerator gen(77);
    auto corpus = gen.Generate(300);
    for (const auto& r : corpus) {
      EXPECT_TRUE((*store)->Insert(r.rid, r.name).ok());
    }
    (*store)->index_file().network().ResetStats();

    struct Outcome {
      std::vector<uint64_t> rids;
      EncryptedStore::SearchStats stats;
      sdds::NetworkStats net;
    } out;
    for (const char* q : {"SCHWARZ", "MARIA", "ER J", "ZZZZQQ"}) {
      auto found = (*store)->SearchDetailed(q);
      EXPECT_TRUE(found.ok()) << q;
      out.rids.insert(out.rids.end(), found->rids.begin(), found->rids.end());
      out.stats.candidate_index_records +=
          found->stats.candidate_index_records;
      out.stats.families_confirmed += found->stats.families_confirmed;
      out.stats.rids_final += found->stats.rids_final;
    }
    out.net = (*store)->index_file().network().stats();
    return out;
  };

  const auto serial = run(0, sdds::LhOptions{}.scan_shard_min_records);
  EXPECT_GT(serial.stats.rids_final, 0u) << "queries matched nothing";
  for (size_t shard_min :
       {size_t{1}, size_t{2}, size_t{7}, size_t{64},
        std::numeric_limits<size_t>::max()}) {
    SCOPED_TRACE("shard_min " + std::to_string(shard_min));
    const auto sharded = run(4, shard_min);
    EXPECT_EQ(serial.rids, sharded.rids);
    EXPECT_EQ(serial.stats.candidate_index_records,
              sharded.stats.candidate_index_records);
    EXPECT_EQ(serial.stats.families_confirmed,
              sharded.stats.families_confirmed);
    EXPECT_EQ(serial.stats.rids_final, sharded.stats.rids_final);
    EXPECT_EQ(serial.net, sharded.net);
  }
}

TEST(EncryptedStoreTest, SearchMessageTrafficIsBounded) {
  auto store = MakeStore(SchemeParams{});
  workload::PhonebookGenerator gen(55);
  for (const auto& r : gen.Generate(200)) {
    ASSERT_TRUE(store->Insert(r.rid, r.name).ok());
  }
  store->index_file().network().ResetStats();
  ASSERT_TRUE(store->Search("SCHWARZ").ok());
  const auto& st = store->index_file().network().stats();
  // One scan message per bucket (plus forwarding) and one reply per bucket.
  const uint64_t buckets = store->index_file().bucket_count();
  EXPECT_LE(st.total_messages, 3 * buckets);
  EXPECT_GE(st.total_messages, 2 * buckets);
}

}  // namespace
}  // namespace essdds::core
