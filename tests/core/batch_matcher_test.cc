// BatchMatcher battery: the bit-parallel matcher must agree with the
// scalar CompiledQuery KMP and with a naive O(n*m) reference on arbitrary
// random queries and streams — including byte-reduced alphabet collisions
// (values equal in their low byte but different above it, which fire the
// automaton and must be killed by verification), multi-group packing,
// KMP-fallback patterns longer than a machine word, empty patterns,
// out-of-range families/sites, and the zero-dispersal-site clamp shared
// with CompiledQuery. Also pins the record-boundary property: a pattern
// straddling two records matches neither.

#include "core/batch_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include "core/compiled_query.h"
#include "core/pipeline.h"
#include "util/random.h"

namespace essdds::core {
namespace {

using OccurrenceSet = std::set<std::pair<uint32_t, size_t>>;

/// Values that collide in their low byte on purpose: the automaton sees
/// `value & 0xFF`, so streams drawn from this distribution are full of
/// candidate fires the exact verification must reject.
uint64_t CollidingValue(Rng& rng) {
  return rng.Uniform(3) | (rng.Uniform(4) << 8);
}

std::vector<uint64_t> RandomStream(Rng& rng, size_t len) {
  std::vector<uint64_t> v(len);
  for (auto& x : v) x = CollidingValue(rng);
  return v;
}

/// One random series: chunks (and pieces when k > 1) drawn from the
/// colliding distribution. Lengths mix empty, short, word-filling, and
/// longer-than-a-word (KMP fallback) patterns.
QuerySeries RandomSeries(Rng& rng, uint32_t sites) {
  QuerySeries s;
  s.alignment = static_cast<uint32_t>(rng.Uniform(4));
  size_t len;
  const uint64_t shape = rng.Uniform(10);
  if (shape == 0) {
    len = 0;  // empty pattern: must never match
  } else if (shape == 1) {
    len = 65 + rng.Uniform(16);  // past the word: KMP fallback
  } else if (shape == 2) {
    len = 20 + rng.Uniform(45);  // large in-word: forces group splits
  } else {
    len = 1 + rng.Uniform(8);
  }
  s.chunks = RandomStream(rng, len);
  if (sites > 1) {
    s.pieces.resize(sites);
    for (auto& p : s.pieces) p = RandomStream(rng, len);
    s.chunks.clear();
  }
  return s;
}

SearchQuery RandomQuery(Rng& rng) {
  SearchQuery q;
  q.symbols_per_chunk = 4;
  q.chunking_stride = 1;
  const uint64_t mode = rng.Uniform(3);
  q.dispersal_sites = mode == 0 ? 1 : (mode == 1 ? 2 : 4);
  q.per_family = rng.Bernoulli(0.3);
  auto fill = [&](std::vector<QuerySeries>& list) {
    const size_t n = rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) {
      list.push_back(RandomSeries(rng, q.dispersal_sites));
    }
  };
  if (q.per_family) {
    q.family_series.resize(1 + rng.Uniform(3));
    for (auto& list : q.family_series) fill(list);
  } else {
    fill(q.series);
  }
  return q;
}

/// Ground truth: the obvious scan of every series pattern, overlapping
/// occurrences included.
OccurrenceSet NaiveOccurrences(const SearchQuery& q, uint32_t family,
                               uint32_t site,
                               const std::vector<uint64_t>& stream) {
  OccurrenceSet out;
  if (site >= q.effective_sites()) return out;
  const std::vector<QuerySeries>* list = &q.series;
  if (q.per_family) {
    if (family >= q.family_series.size()) return out;
    list = &q.family_series[family];
  }
  for (const QuerySeries& s : *list) {
    const std::vector<uint64_t>& pattern = q.PatternFor(s, site);
    if (pattern.empty() || pattern.size() > stream.size()) continue;
    for (size_t i = 0; i + pattern.size() <= stream.size(); ++i) {
      if (std::equal(pattern.begin(), pattern.end(), stream.begin() + i)) {
        out.insert({s.alignment, i});
      }
    }
  }
  return out;
}

/// Random stream that, half the time, has one of the query's own patterns
/// spliced in at a random offset — otherwise hits would be vanishingly
/// rare for the longer patterns.
std::vector<uint64_t> StreamForQuery(Rng& rng, const SearchQuery& q,
                                     uint32_t family, uint32_t site) {
  std::vector<uint64_t> stream = RandomStream(rng, rng.Uniform(120));
  if (!rng.Bernoulli(0.5)) return stream;
  const std::vector<QuerySeries>* list = &q.series;
  if (q.per_family && family < q.family_series.size()) {
    list = &q.family_series[family];
  }
  if (list->empty() || site >= q.effective_sites()) return stream;
  const QuerySeries& s = (*list)[rng.Uniform(list->size())];
  const std::vector<uint64_t>& pattern = q.PatternFor(s, site);
  if (pattern.empty() || pattern.size() > stream.size()) return stream;
  const size_t at = rng.Uniform(stream.size() - pattern.size() + 1);
  std::copy(pattern.begin(), pattern.end(), stream.begin() + at);
  return stream;
}

TEST(BatchMatcherTest, AgreesWithCompiledQueryAndNaiveOnRandomInputs) {
  Rng rng(41);
  for (int trial = 0; trial < 300; ++trial) {
    const SearchQuery query = RandomQuery(rng);
    const BatchMatcher batch(&query);
    const CompiledQuery compiled{SearchQuery(query)};  // scalar KMP twin
    // Sweep coordinates past the valid range: out-of-range cells must
    // answer "no match", never crash.
    for (uint32_t family = 0; family < 4; ++family) {
      for (uint32_t site = 0; site < 6; ++site) {
        const std::vector<uint64_t> stream =
            StreamForQuery(rng, query, family, site);
        const OccurrenceSet expected =
            NaiveOccurrences(query, family, site, stream);
        EXPECT_EQ(batch.Matches(family, site, stream), !expected.empty())
            << "trial " << trial << " family " << family << " site " << site;
        EXPECT_EQ(compiled.Matches(family, site, stream), !expected.empty())
            << "trial " << trial << " family " << family << " site " << site;
        OccurrenceSet batch_occ;
        batch.ForEachOccurrence(family, site, stream,
                                [&](uint32_t alignment, size_t c) {
                                  batch_occ.insert({alignment, c});
                                });
        EXPECT_EQ(batch_occ, expected)
            << "trial " << trial << " family " << family << " site " << site;
        OccurrenceSet compiled_occ;
        compiled.ForEachOccurrence(family, site, stream,
                                   [&](uint32_t alignment, size_t c) {
                                     compiled_occ.insert({alignment, c});
                                   });
        EXPECT_EQ(compiled_occ, expected)
            << "trial " << trial << " family " << family << " site " << site;
      }
    }
  }
}

TEST(BatchMatcherTest, ByteCollisionsDoNotFakeMatches) {
  // Two values with the same low byte are indistinguishable to the
  // automaton; only verification separates them. A stream of near-misses
  // (every value collides with the pattern's byte but differs above) must
  // not match.
  SearchQuery q;
  q.dispersal_sites = 1;
  QuerySeries s;
  s.alignment = 0;
  s.chunks = {0x0101, 0x0102, 0x0103};
  q.series.push_back(s);
  const BatchMatcher batch(&q);
  // Same low bytes 01/02/03, different high bytes.
  const std::vector<uint64_t> near{0x0201, 0x0202, 0x0203, 0x0301, 0x0302,
                                   0x0303};
  EXPECT_FALSE(batch.Matches(0, 0, near));
  const std::vector<uint64_t> exact{0x0201, 0x0101, 0x0102, 0x0103, 0x0303};
  EXPECT_TRUE(batch.Matches(0, 0, exact));
}

TEST(BatchMatcherTest, PatternStraddlingRecordBoundaryMatchesNeither) {
  // Index streams are matched per record: a pattern whose occurrence spans
  // the boundary between two adjacent records (adjacent in a bucket's
  // packed arena too) must match neither, even though the concatenation
  // contains it.
  SearchQuery q;
  q.dispersal_sites = 1;
  QuerySeries s;
  s.alignment = 0;
  s.chunks = {11, 22, 33, 44};
  q.series.push_back(s);
  const BatchMatcher batch(&q);
  const std::vector<uint64_t> first{5, 6, 11, 22};   // pattern head at tail
  const std::vector<uint64_t> second{33, 44, 7, 8};  // pattern tail at head
  EXPECT_FALSE(batch.Matches(0, 0, first));
  EXPECT_FALSE(batch.Matches(0, 0, second));
  std::vector<uint64_t> concat = first;
  concat.insert(concat.end(), second.begin(), second.end());
  EXPECT_TRUE(batch.Matches(0, 0, concat));  // the straddle is real...
  int occurrences = 0;
  batch.ForEachOccurrence(0, 0, first, [&](uint32_t, size_t) { ++occurrences; });
  batch.ForEachOccurrence(0, 0, second,
                          [&](uint32_t, size_t) { ++occurrences; });
  EXPECT_EQ(occurrences, 0);  // ...but belongs to no single record
}

TEST(BatchMatcherTest, ZeroSiteQueryUsesChunksLikeCompiledQuery) {
  // dispersal_sites == 0 cannot arrive off the wire (Deserialize rejects
  // it) but a hand-built query can carry it; the shared clamp routes both
  // matchers to the undispersed `chunks` stream — formerly CompiledQuery
  // indexed the empty `pieces` here.
  SearchQuery q;
  q.dispersal_sites = 0;
  QuerySeries s;
  s.alignment = 2;
  s.chunks = {9, 8, 7};
  q.series.push_back(s);
  ASSERT_EQ(q.effective_sites(), 1u);
  const BatchMatcher batch(&q);
  const CompiledQuery compiled{SearchQuery(q)};
  const std::vector<uint64_t> hit{1, 9, 8, 7, 2};
  const std::vector<uint64_t> miss{9, 8, 6};
  EXPECT_TRUE(batch.Matches(0, 0, hit));
  EXPECT_TRUE(compiled.Matches(0, 0, hit));
  EXPECT_FALSE(batch.Matches(0, 0, miss));
  EXPECT_FALSE(compiled.Matches(0, 0, miss));
  // Site 1 and above stay out of range under the clamp.
  EXPECT_FALSE(batch.Matches(0, 1, hit));
  EXPECT_FALSE(compiled.Matches(0, 1, hit));
}

TEST(BatchMatcherTest, ZeroSiteWireQueryIsRejected) {
  // Regression: a wire image whose dispersal_sites field is patched to 0
  // (or past the plausibility cap) must fail Deserialize, not reach the
  // matchers.
  SearchQuery q;
  q.symbols_per_chunk = 4;
  q.chunking_stride = 1;
  q.dispersal_sites = 1;
  QuerySeries s;
  s.alignment = 0;
  s.chunks = {1, 2, 3};
  q.series.push_back(s);
  Bytes wire = q.Serialize();
  ASSERT_TRUE(SearchQuery::Deserialize(wire).ok());
  // dispersal_sites is the third u32 of the header.
  Bytes zero_sites = wire;
  zero_sites[8] = zero_sites[9] = zero_sites[10] = zero_sites[11] = 0;
  EXPECT_FALSE(SearchQuery::Deserialize(zero_sites).ok());
  Bytes oversized = wire;
  oversized[8] = 65;  // > kMaxWireDispersalSites
  oversized[9] = oversized[10] = oversized[11] = 0;
  EXPECT_FALSE(SearchQuery::Deserialize(oversized).ok());
}

TEST(BatchMatcherTest, ManySeriesPackAcrossMultipleGroups) {
  // 20 series of 8 values exceed two 64-bit words: packing must spill into
  // several automaton groups and still find a hit in any of them.
  Rng rng(42);
  SearchQuery q;
  q.dispersal_sites = 1;
  for (int i = 0; i < 20; ++i) {
    QuerySeries s;
    s.alignment = static_cast<uint32_t>(i);
    s.chunks = RandomStream(rng, 8);
    q.series.push_back(s);
  }
  const BatchMatcher batch(&q);
  const CompiledQuery compiled{SearchQuery(q)};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint64_t> stream = RandomStream(rng, 60);
    const size_t pick = rng.Uniform(q.series.size());
    const size_t at = rng.Uniform(stream.size() - 8 + 1);
    std::copy(q.series[pick].chunks.begin(), q.series[pick].chunks.end(),
              stream.begin() + at);
    EXPECT_TRUE(batch.Matches(0, 0, stream)) << "trial " << trial;
    OccurrenceSet batch_occ, compiled_occ;
    batch.ForEachOccurrence(0, 0, stream, [&](uint32_t a, size_t c) {
      batch_occ.insert({a, c});
    });
    compiled.ForEachOccurrence(0, 0, stream, [&](uint32_t a, size_t c) {
      compiled_occ.insert({a, c});
    });
    EXPECT_EQ(batch_occ, compiled_occ) << "trial " << trial;
    EXPECT_TRUE(batch_occ.count({static_cast<uint32_t>(pick), at}) > 0)
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace essdds::core
