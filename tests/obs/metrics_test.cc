#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#if ESSDDS_THREADS
#include <thread>
#endif

namespace essdds::obs {
namespace {

// Most assertions here exercise the real instruments; in a metrics-OFF
// build the stubs return zeros by contract, so those tests skip. The
// API-compiles-either-way property is itself under test: this file builds
// unmodified on both settings.

TEST(CounterTest, IncrementsAndResets) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, LastWriteWins) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Gauge g;
  g.Set(7);
  g.Set(-3);
  EXPECT_EQ(g.value(), -3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(HistogramTest, ZeroSamplesAreWellDefined) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0u);
  const Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0u);
}

TEST(HistogramTest, SingleSampleIsExactAtEveryQuantile) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // 5 lands in the [4, 7] bucket whose upper bound is 7; the exact-max
  // clamp must bring every quantile back down to the observed 5.
  Histogram h;
  h.Record(5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 5u);
  EXPECT_EQ(h.max(), 5u);
  EXPECT_EQ(h.Quantile(0.0), 5u);  // rank clamps to the first sample
  EXPECT_EQ(h.Quantile(0.5), 5u);
  EXPECT_EQ(h.Quantile(0.99), 5u);
  EXPECT_EQ(h.Quantile(1.0), 5u);
}

TEST(HistogramTest, ZeroValueLandsInBucketZero) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram h;
  h.Record(0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.5), 0u);
}

TEST(HistogramTest, ValuesBeyondLastFiniteBoundary) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // Values at and past 2^63 land in the top bucket; quantiles stay clamped
  // to the exact max instead of reporting the bucket's UINT64_MAX bound.
  Histogram h;
  const uint64_t big = (uint64_t{1} << 63) + 5;
  h.Record(big);
  h.Record(~uint64_t{0});
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~uint64_t{0});
  EXPECT_EQ(h.Quantile(0.01), ~uint64_t{0})
      << "both samples share the top bucket";
  EXPECT_EQ(h.Quantile(1.0), ~uint64_t{0});
}

TEST(HistogramTest, QuantilesOfKnownDistribution) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  // Rank 500 is the value 500, in the [256, 511] bucket -> reported as the
  // bucket's upper bound 511. Log-scale quantiles are bucket-granular.
  EXPECT_EQ(h.Quantile(0.5), 511u);
  // Ranks 950 and 990 both live in [512, 1023], clamped to the exact max.
  EXPECT_EQ(h.Quantile(0.95), 1000u);
  EXPECT_EQ(h.Quantile(0.99), 1000u);
  const Histogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(HistogramTest, QuantileRankIsCeilBased) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // The q-th quantile is the sample at rank ceil(q*n) — the smallest rank
  // covering fraction q of the population. Samples sit at exact bucket
  // upper bounds (2^b - 1) so every pinned expectation below is a precise
  // value, not a bucket approximation. Truncation instead of ceil would
  // return the rank below whenever q*n is integral or the floating-point
  // product dips under it (0.95*100 evaluates below 95).
  {
    Histogram h;  // n = 1
    h.Record(3);
    EXPECT_EQ(h.Quantile(0.0), 3u);
    EXPECT_EQ(h.Quantile(0.5), 3u);
    EXPECT_EQ(h.Quantile(0.95), 3u);
    EXPECT_EQ(h.Quantile(1.0), 3u);
  }
  {
    Histogram h;  // n = 2: p50 is the 1st sample (ceil(1.0) = 1)
    h.Record(1);
    h.Record(3);
    EXPECT_EQ(h.Quantile(0.5), 1u);
    EXPECT_EQ(h.Quantile(0.51), 3u);  // ceil(1.02) = 2
    EXPECT_EQ(h.Quantile(0.95), 3u);
    EXPECT_EQ(h.Quantile(1.0), 3u);
  }
  {
    Histogram h;  // n = 3: p50 is the 2nd sample (ceil(1.5) = 2), which
    h.Record(1);  // truncation would report as the 1st
    h.Record(3);
    h.Record(7);
    EXPECT_EQ(h.Quantile(0.5), 3u);
    EXPECT_EQ(h.Quantile(0.34), 3u);  // ceil(1.02) = 2
    EXPECT_EQ(h.Quantile(0.33), 1u);  // ceil(0.99) = 1
    EXPECT_EQ(h.Quantile(0.95), 7u);
  }
  {
    Histogram h;  // n = 4: p50 exactly the 2nd, p95/p99 the 4th
    h.Record(1);
    h.Record(3);
    h.Record(7);
    h.Record(15);
    EXPECT_EQ(h.Quantile(0.25), 1u);
    EXPECT_EQ(h.Quantile(0.5), 3u);
    EXPECT_EQ(h.Quantile(0.75), 7u);
    EXPECT_EQ(h.Quantile(0.95), 15u);  // ceil(3.8) = 4; floor gave the 3rd
    EXPECT_EQ(h.Quantile(0.99), 15u);
  }
  {
    Histogram h;  // n = 100: rank 95 must clear the 94-sample plateau even
    // though 0.95 * 100 computes fractionally below 95.
    for (int i = 0; i < 94; ++i) h.Record(1);
    for (int i = 0; i < 6; ++i) h.Record(3);
    EXPECT_EQ(h.Quantile(0.5), 1u);
    EXPECT_EQ(h.Quantile(0.94), 1u);
    EXPECT_EQ(h.Quantile(0.95), 3u);
    EXPECT_EQ(h.Quantile(0.99), 3u);
  }
  {
    Histogram h;  // n = 100: p99 boundary — rank 99 is the first of the
    for (int i = 0; i < 98; ++i) h.Record(1);  // two 3s
    h.Record(3);
    h.Record(3);
    EXPECT_EQ(h.Quantile(0.98), 1u);
    EXPECT_EQ(h.Quantile(0.99), 3u);
    EXPECT_EQ(h.Quantile(1.0), 3u);
  }
}

TEST(HistogramTest, MergeFromFoldsCountsSumsAndMax) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram a, b;
  a.Record(2);
  a.Record(100);
  b.Record(7);
  b.Record(5000);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 2u + 100u + 7u + 5000u);
  EXPECT_EQ(a.max(), 5000u);
  EXPECT_EQ(a.Quantile(1.0), 5000u);
  // The source is untouched.
  EXPECT_EQ(b.count(), 2u);
}

TEST(HistogramTest, ResetClearsEverything) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  Histogram h;
  h.Record(9);
  h.Record(1 << 20);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Quantile(0.99), 0u);
}

#if ESSDDS_THREADS
// The lock-free recording contract, under ThreadSanitizer in the tsan CI
// leg: scan_threads=8 workers hammer one histogram and one counter
// concurrently; totals must be exact (every sample counted exactly once)
// and TSan must see no race.
TEST(HistogramTest, ConcurrentRecordingIsLossless) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20'000;
  Histogram h;
  Counter c;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, &c, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h.Record(t * kPerThread + i);
        c.Increment();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  EXPECT_EQ(c.value(), kThreads * kPerThread);
  const uint64_t n = kThreads * kPerThread;
  EXPECT_EQ(h.sum(), n * (n - 1) / 2);
  EXPECT_EQ(h.max(), n - 1);
}
#endif  // ESSDDS_THREADS

TEST(MetricRegistryTest, SameNameYieldsSameInstrument) {
  MetricRegistry r;
  // Holds on both settings: ON returns the named instrument, OFF returns
  // the one shared stub.
  EXPECT_EQ(&r.counter("x"), &r.counter("x"));
  EXPECT_EQ(&r.gauge("g"), &r.gauge("g"));
  EXPECT_EQ(&r.histogram("h"), &r.histogram("h"));
}

TEST(MetricRegistryTest, DistinctNamesYieldDistinctInstruments) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricRegistry r;
  EXPECT_NE(&r.counter("a"), &r.counter("b"));
  EXPECT_NE(&r.histogram("a"), &r.histogram("b"));
}

TEST(MetricRegistryTest, ResetAllZeroesButKeepsReferencesValid) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricRegistry r;
  Counter& c = r.counter("ops");
  Gauge& g = r.gauge("depth");
  Histogram& h = r.histogram("lat");
  c.Increment(3);
  g.Set(11);
  h.Record(100);
  r.ResetAll();
  // The registrations survive; only the values reset. Cached references
  // keep recording into the same instruments.
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  c.Increment();
  EXPECT_EQ(r.counter("ops").value(), 1u);
  EXPECT_EQ(&r.counter("ops"), &c);
}

TEST(MetricRegistryTest, ToJsonListsEveryKindInOrder) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  MetricRegistry r;
  r.counter("zeta").Increment(2);
  r.counter("alpha").Increment();
  r.gauge("load").Set(-4);
  r.histogram("lat").Record(8);
  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\":1"), std::string::npos);
  EXPECT_NE(json.find("\"zeta\":2"), std::string::npos);
  EXPECT_NE(json.find("\"load\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""))
      << "keys must be lexicographically ordered";
}

TEST(MetricRegistryTest, BinaryInstrumentNamesExportAsValidAsciiJson) {
  if (!kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  // Instrument names derived from raw record keys can carry arbitrary
  // bytes (bucket gauges interpolate key material in some deployments);
  // the JSON export must escape them per byte rather than emit invalid
  // UTF-8 that breaks every standard parser.
  MetricRegistry r;
  std::string name = "bucket.";
  name.push_back(static_cast<char>(0x80));
  name.push_back(static_cast<char>(0xFF));
  name += ".records";
  r.counter(name).Increment(3);
  const std::string json = r.ToJson();
  for (const unsigned char c : json) {
    ASSERT_LT(c, 0x80) << "non-ASCII byte leaked into metrics JSON";
  }
  EXPECT_NE(json.find("\\u0080"), std::string::npos);
  EXPECT_NE(json.find("\\u00ff"), std::string::npos);
  EXPECT_NE(json.find(":3"), std::string::npos);
}

TEST(MetricRegistryTest, OffBuildCollapsesToStubs) {
  if (kMetricsEnabled) GTEST_SKIP() << "metrics compiled in";
  MetricRegistry r;
  r.counter("x").Increment(100);
  EXPECT_EQ(r.counter("x").value(), 0u) << "stubs record nothing";
  EXPECT_EQ(r.ToJson(), "{}");
}

}  // namespace
}  // namespace essdds::obs
