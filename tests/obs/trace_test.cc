#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"  // kMetricsEnabled

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace essdds::obs {
namespace {

TraceEvent Ev(uint64_t time_us, uint64_t trace_id, HopKind kind,
              uint8_t msg_type = 1) {
  TraceEvent ev;
  ev.time_us = time_us;
  ev.trace_id = trace_id;
  ev.request_id = trace_id * 10;
  ev.key = 99;
  ev.from = 0;
  ev.to = 2;
  ev.msg_type = msg_type;
  ev.kind = kind;
  return ev;
}

std::string_view TestTypeName(uint8_t t) {
  return t == 1 ? "kInsert" : "kOther";
}

TEST(HopKindNameTest, CoversEveryKind) {
  EXPECT_EQ(HopKindName(HopKind::kOpStart), "op-start");
  EXPECT_EQ(HopKindName(HopKind::kSend), "send");
  EXPECT_EQ(HopKindName(HopKind::kDeliver), "deliver");
  EXPECT_EQ(HopKindName(HopKind::kDrop), "drop");
  EXPECT_EQ(HopKindName(HopKind::kDuplicate), "duplicate");
  EXPECT_EQ(HopKindName(HopKind::kPark), "park");
  EXPECT_EQ(HopKindName(HopKind::kReplay), "replay");
  EXPECT_EQ(HopKindName(HopKind::kRetry), "retry");
  EXPECT_EQ(HopKindName(HopKind::kStale), "stale-reply");
  EXPECT_EQ(HopKindName(HopKind::kOpDone), "op-done");
}

TEST(FormatTraceEventTest, RendersTypeNameAndFallsBackToRawNumber) {
  // FormatTraceEvent is compiled on both settings (tests hold their own
  // snapshots), so no skip here.
  const TraceEvent ev = Ev(120, 3, HopKind::kSend);
  const std::string with_name = FormatTraceEvent(ev, TestTypeName);
  EXPECT_NE(with_name.find("send"), std::string::npos);
  EXPECT_NE(with_name.find("kInsert"), std::string::npos);
  EXPECT_NE(with_name.find("120"), std::string::npos);
  const std::string raw = FormatTraceEvent(ev, nullptr);
  EXPECT_NE(raw.find("send"), std::string::npos);
}

TEST(TraceRingTest, RecordsInOrder) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceRing ring(16);
  ring.Record(Ev(10, 1, HopKind::kOpStart));
  ring.Record(Ev(20, 1, HopKind::kSend));
  ring.Record(Ev(30, 1, HopKind::kOpDone));
  const std::vector<TraceEvent> all = ring.Snapshot();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].kind, HopKind::kOpStart);
  EXPECT_EQ(all[1].kind, HopKind::kSend);
  EXPECT_EQ(all[2].kind, HopKind::kOpDone);
  EXPECT_EQ(all[0].time_us, 10u);
  EXPECT_EQ(ring.overwritten(), 0u);
}

TEST(TraceRingTest, SnapshotFiltersByTraceId) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceRing ring(16);
  ring.Record(Ev(1, 7, HopKind::kOpStart));
  ring.Record(Ev(2, 8, HopKind::kOpStart));
  ring.Record(Ev(3, 7, HopKind::kOpDone));
  const std::vector<TraceEvent> only7 = ring.Snapshot(7);
  ASSERT_EQ(only7.size(), 2u);
  EXPECT_EQ(only7[0].kind, HopKind::kOpStart);
  EXPECT_EQ(only7[1].kind, HopKind::kOpDone);
  EXPECT_EQ(ring.Snapshot(0).size(), 3u) << "0 means everything";
}

TEST(TraceRingTest, OverwritesOldestWhenFull) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) {
    ring.Record(Ev(i, 1, HopKind::kSend));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.capacity(), 4u);
  EXPECT_EQ(ring.overwritten(), 6u);
  const std::vector<TraceEvent> tail = ring.Snapshot();
  ASSERT_EQ(tail.size(), 4u);
  // The four most recent events, still in recording order.
  EXPECT_EQ(tail[0].time_us, 6u);
  EXPECT_EQ(tail[3].time_us, 9u);
}

TEST(TraceRingTest, ClearEmptiesAndResetsOverwriteCount) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceRing ring(2);
  ring.Record(Ev(1, 1, HopKind::kSend));
  ring.Record(Ev(2, 1, HopKind::kSend));
  ring.Record(Ev(3, 1, HopKind::kSend));
  EXPECT_EQ(ring.overwritten(), 1u);
  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.overwritten(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  ring.Record(Ev(4, 1, HopKind::kSend));
  EXPECT_EQ(ring.Snapshot().size(), 1u);
}

TEST(TraceRingTest, DumpTextContainsOneLinePerHop) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceRing ring(16);
  ring.Record(Ev(100, 5, HopKind::kOpStart));
  ring.Record(Ev(200, 5, HopKind::kRetry));
  ring.Record(Ev(300, 6, HopKind::kOpStart));
  const std::string dump = ring.DumpText(5, TestTypeName);
  EXPECT_NE(dump.find("op-start"), std::string::npos);
  EXPECT_NE(dump.find("retry"), std::string::npos);
  EXPECT_NE(dump.find("kInsert"), std::string::npos);
  // The other trace's hop is filtered out; its timestamp never appears.
  EXPECT_EQ(dump.find("300"), std::string::npos);
}

TEST(TraceRingTest, ToJsonEmitsArrayOfHops) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceRing ring(16);
  EXPECT_EQ(ring.ToJson(0, TestTypeName), "[]") << "empty ring, empty array";
  ring.Record(Ev(42, 9, HopKind::kDeliver));
  const std::string json = ring.ToJson(9, TestTypeName);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"hop\":\"deliver\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":9"), std::string::npos);
  EXPECT_NE(json.find("\"t_us\":42"), std::string::npos);
}

TEST(TraceRingTest, OffBuildStubRecordsNothing) {
  if (kMetricsEnabled) GTEST_SKIP() << "tracing compiled in";
  TraceRing ring(16);
  ring.Record(Ev(1, 1, HopKind::kSend));
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_TRUE(ring.Snapshot().empty());
  EXPECT_EQ(ring.ToJson(0, nullptr), "[]");
  EXPECT_NE(ring.DumpText(0, nullptr).find("compiled out"),
            std::string::npos);
}

}  // namespace
}  // namespace essdds::obs
