#include "util/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "tests/util/fuzz_util.h"

namespace essdds {
namespace {

TEST(WireWriterTest, RoundTripsEveryPrimitive) {
  WireWriter w;
  w.WriteU8(0xAB);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteBool(true);
  w.WriteBool(false);
  w.WriteLengthPrefixed(ToBytes("payload"));
  w.WriteBytes(ToBytes("raw"));
  const Bytes wire = w.buffer();
  EXPECT_EQ(wire.size(), 1u + 4 + 8 + 1 + 1 + 4 + 7 + 3);

  WireReader r(wire);
  EXPECT_EQ(*r.ReadU8(), 0xAB);
  EXPECT_EQ(*r.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(*r.ReadBool());
  EXPECT_FALSE(*r.ReadBool());
  auto lp = r.ReadLengthPrefixed();
  ASSERT_TRUE(lp.ok());
  EXPECT_EQ(ToString(*lp), "payload");
  auto raw = r.ReadBytes(3);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ToString(*raw), "raw");
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(WireWriterTest, TakeBufferResetsWriter) {
  WireWriter w;
  w.WriteU32(7);
  Bytes first = w.TakeBuffer();
  EXPECT_EQ(first.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
  w.WriteU8(1);
  EXPECT_EQ(w.size(), 1u);
}

TEST(WireReaderTest, EveryReadPastTheEndIsCorruption) {
  const Bytes three = {1, 2, 3};
  {
    WireReader r(three);
    EXPECT_TRUE(r.ReadU32().status().IsCorruption());
  }
  {
    WireReader r(three);
    EXPECT_TRUE(r.ReadU64().status().IsCorruption());
  }
  {
    WireReader r(three);
    EXPECT_TRUE(r.ReadBytes(4).status().IsCorruption());
  }
  {
    WireReader r(ByteSpan{});
    EXPECT_TRUE(r.ReadU8().status().IsCorruption());
    EXPECT_TRUE(r.ReadLengthPrefixed().status().IsCorruption());
  }
}

TEST(WireReaderTest, ReadsDoNotAdvancePastFailure) {
  const Bytes wire = {0x00, 0x00, 0x00, 0x05};  // u32 = 5
  WireReader r(wire);
  EXPECT_TRUE(r.ReadU64().status().IsCorruption());
  EXPECT_EQ(r.position(), 0u);  // failed read consumed nothing
  EXPECT_EQ(*r.ReadU32(), 5u);
}

TEST(WireReaderTest, BoolByteMustBeZeroOrOne) {
  const Bytes wire = {2};
  WireReader r(wire);
  EXPECT_TRUE(r.ReadBool().status().IsCorruption());
}

TEST(WireReaderTest, LengthPrefixBeyondPayloadIsCorruption) {
  WireWriter w;
  w.WriteU32(10);  // claims 10 bytes follow
  w.WriteBytes(ToBytes("short"));
  WireReader r(w.buffer());
  EXPECT_TRUE(r.ReadLengthPrefixed().status().IsCorruption());
}

TEST(WireReaderTest, ExpectEndRejectsTrailingBytes) {
  const Bytes wire = {0, 0, 0, 1, 0xFF};
  WireReader r(wire);
  ASSERT_TRUE(r.ReadU32().ok());
  EXPECT_TRUE(r.ExpectEnd().IsCorruption());
}

TEST(WireReaderTest, ReadCountRejectsImplausibleCounts) {
  // count = 0xFFFFFFFF with 8 payload bytes: 12 bytes/element cannot fit.
  Bytes wire = {0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3, 4, 5, 6, 7, 8};
  WireReader r(wire);
  EXPECT_TRUE(r.ReadCount(12).status().IsCorruption());
}

TEST(WireReaderTest, ReadCountAcceptsExactlyFittingCounts) {
  WireWriter w;
  w.WriteU32(3);
  for (int i = 0; i < 3; ++i) w.WriteU32(static_cast<uint32_t>(i));
  WireReader r(w.buffer());
  auto count = r.ReadCount(4);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 3u);
  WireReader r2(w.buffer());
  EXPECT_TRUE(r2.ReadCount(5).status().IsCorruption());
}

TEST(WireReaderTest, CheckedReserveCapsByRemainingBytes) {
  const Bytes wire(40, 0);
  WireReader r(wire);
  std::vector<uint64_t> v;
  r.CheckedReserve(v, /*count=*/0xFFFFFFFFu, /*min_element_size=*/8);
  EXPECT_LE(v.capacity(), 64u);  // capped near 40 / 8 = 5, not 4 billion
  std::vector<uint64_t> w2;
  r.CheckedReserve(w2, /*count=*/2, /*min_element_size=*/8);
  EXPECT_GE(w2.capacity(), 2u);
}

TEST(WireReaderFuzzTest, RandomBytesNeverCrashPrimitiveReads) {
  test::RandomBytesTrials(11, 2000, 64, [](ByteSpan junk) {
    WireReader r(junk);
    (void)r.ReadU8();
    (void)r.ReadU32();
    (void)r.ReadLengthPrefixed();
    (void)r.ReadCount(12);
    (void)r.ReadU64();
    (void)r.ExpectEnd();
  });
}

}  // namespace
}  // namespace essdds
