#include "util/bytes.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "util/bitstream.h"
#include "util/random.h"

namespace essdds {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes b = {0x00, 0x01, 0xAB, 0xFF};
  EXPECT_EQ(HexEncode(b), "0001abff");
  auto back = HexDecode("0001abff");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
}

TEST(BytesTest, HexDecodeAcceptsUppercase) {
  auto r = HexDecode("DEADBEEF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(HexEncode(*r), "deadbeef");
}

TEST(BytesTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(BytesTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, StringRoundTrip) {
  Bytes b = ToBytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(ToString(b), "hello");
}

TEST(BytesTest, BigEndianRoundTrip32) {
  uint8_t buf[4];
  StoreBigEndian32(0x12345678u, buf);
  EXPECT_EQ(buf[0], 0x12);
  EXPECT_EQ(buf[3], 0x78);
  EXPECT_EQ(LoadBigEndian32(buf), 0x12345678u);
}

TEST(BytesTest, BigEndianRoundTrip64) {
  uint8_t buf[8];
  StoreBigEndian64(0x0123456789ABCDEFull, buf);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xEF);
  EXPECT_EQ(LoadBigEndian64(buf), 0x0123456789ABCDEFull);
}

TEST(BytesTest, AppendBigEndian) {
  Bytes out;
  AppendBigEndian32(1, out);
  AppendBigEndian64(2, out);
  EXPECT_EQ(out.size(), 12u);
  EXPECT_EQ(LoadBigEndian32(out.data()), 1u);
  EXPECT_EQ(LoadBigEndian64(out.data() + 4), 2u);
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, d));
}

TEST(BitStreamTest, WriteReadRoundTrip) {
  BitWriter w;
  w.Write(0b101, 3);
  w.Write(0xFF, 8);
  w.Write(0, 1);
  w.Write(0x1234, 16);
  EXPECT_EQ(w.bit_count(), 28u);

  BitReader r(w.buffer());
  EXPECT_EQ(r.Read(3).value(), 0b101u);
  EXPECT_EQ(r.Read(8).value(), 0xFFu);
  EXPECT_EQ(r.Read(1).value(), 0u);
  EXPECT_EQ(r.Read(16).value(), 0x1234u);
}

TEST(BitStreamTest, ReadPastEndFails) {
  BitWriter w;
  w.Write(1, 2);
  BitReader r(w.buffer());
  ASSERT_TRUE(r.Read(2).ok());
  // The writer padded to a full byte; 6 padding bits remain.
  EXPECT_EQ(r.remaining_bits(), 6u);
  EXPECT_TRUE(r.Read(6).ok());
  EXPECT_FALSE(r.Read(1).ok());
}

TEST(BitStreamTest, RandomizedRoundTrip) {
  Rng rng(42);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::pair<uint64_t, int>> values;
    BitWriter w;
    for (int i = 0; i < 100; ++i) {
      int bits = static_cast<int>(rng.Uniform(64)) + 1;
      uint64_t mask = bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
      uint64_t v = rng.Next() & mask;
      values.emplace_back(v, bits);
      w.Write(v, bits);
    }
    BitReader r(w.buffer());
    for (auto [v, bits] : values) {
      auto got = r.Read(bits);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, v);
    }
  }
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(4);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) seen[rng.Uniform(8)]++;
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleCumulativeRespectsWeights) {
  Rng rng(10);
  // Weights 1, 3 -> cumulative {1, 4}; index 1 about 3x more likely.
  std::vector<double> cum = {1.0, 4.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 40000; ++i) counts[rng.SampleCumulative(cum)]++;
  EXPECT_GT(counts[1], counts[0] * 2);
  EXPECT_LT(counts[1], counts[0] * 4);
}

}  // namespace
}  // namespace essdds
