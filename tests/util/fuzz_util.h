#ifndef ESSDDS_TESTS_UTIL_FUZZ_UTIL_H_
#define ESSDDS_TESTS_UTIL_FUZZ_UTIL_H_

#include <cstdint>
#include <utility>

#include "util/bytes.h"
#include "util/random.h"

// Shared deterministic fuzz drivers for the wire-parsing surface. Every
// Deserialize entry point carries the same guarantee — junk in ->
// Status::Corruption out, zero exceptions, zero UB — and these harnesses are
// how the tests state it: seeded random bytes, full truncation sweeps of a
// valid encoding, and single-byte mutations of a valid encoding.

namespace essdds::test {

/// Calls `fn(junk)` on `trials` buffers of random length in [0, max_len)
/// filled with seeded random bytes. Deterministic in `seed`.
template <typename Fn>
void RandomBytesTrials(uint64_t seed, int trials, size_t max_len, Fn&& fn) {
  Rng rng(seed);
  for (int trial = 0; trial < trials; ++trial) {
    Bytes junk(rng.Uniform(max_len));
    for (auto& b : junk) b = static_cast<uint8_t>(rng.Next());
    fn(ByteSpan(junk));
  }
}

/// Calls `fn(prefix, len)` on every strict prefix of `wire` (lengths
/// 0 .. wire.size()-1). A parser of an exactly-sized format must reject
/// every one of them.
template <typename Fn>
void TruncationSweep(ByteSpan wire, Fn&& fn) {
  for (size_t len = 0; len < wire.size(); ++len) {
    fn(wire.subspan(0, len), len);
  }
}

/// Calls `fn(mutated, pos)` on copies of `wire` where the byte at each
/// position is in turn (a) flipped in one random bit, (b) replaced by a
/// random byte, and (c) forced to 0xFF — the worst case for length and
/// count fields. The parser may accept or reject, but must not crash,
/// throw, or over-allocate. Deterministic in `seed`.
template <typename Fn>
void SingleByteMutations(uint64_t seed, ByteSpan wire, Fn&& fn) {
  Rng rng(seed);
  Bytes buf(wire.begin(), wire.end());
  for (size_t pos = 0; pos < buf.size(); ++pos) {
    const uint8_t original = buf[pos];
    buf[pos] = original ^ static_cast<uint8_t>(1u << rng.Uniform(8));
    fn(ByteSpan(buf), pos);
    buf[pos] = static_cast<uint8_t>(rng.Next());
    fn(ByteSpan(buf), pos);
    buf[pos] = 0xFF;
    fn(ByteSpan(buf), pos);
    buf[pos] = original;
  }
}

}  // namespace essdds::test

#endif  // ESSDDS_TESTS_UTIL_FUZZ_UTIL_H_
