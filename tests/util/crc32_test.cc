#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

#include "util/bytes.h"

namespace essdds {
namespace {

ByteSpan Span(const std::string& s) {
  return ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

TEST(Crc32Test, KnownVectors) {
  // The IEEE 802.3 check value: CRC-32 of the ASCII digits "123456789".
  EXPECT_EQ(Crc32(Span("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(Span("")), 0x00000000u);
  EXPECT_EQ(Crc32(Span("a")), 0xE8B7BE43u);
  EXPECT_EQ(Crc32(Span("abc")), 0x352441C2u);
  EXPECT_EQ(Crc32(Span("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "payload bytes fed to the CRC in uneven pieces";
  const uint32_t whole = Crc32(Span(data));
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t crc = Crc32Update(0, Span(data.substr(0, cut)));
    crc = Crc32Update(crc, Span(data.substr(cut)));
    EXPECT_EQ(crc, whole) << "split at " << cut;
  }
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  Bytes data(64, 0x5A);
  const uint32_t base = Crc32(ByteSpan(data));
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(ByteSpan(data)), base) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

}  // namespace
}  // namespace essdds
