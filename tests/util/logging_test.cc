#include "util/logging.h"

#include <gtest/gtest.h>

namespace essdds {
namespace {

// The env hook itself (ESSDDS_LOG_LEVEL read at the first log site) cannot
// be re-triggered inside one process, so the parser it delegates to is
// tested directly and the level switch via SetMinLogLevel.

TEST(ParseLogLevelTest, AcceptsEveryDocumentedName) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
}

TEST(ParseLogLevelTest, IsCaseInsensitive) {
  EXPECT_EQ(ParseLogLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("Info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("WARN"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("ErRoR"), LogLevel::kError);
}

TEST(ParseLogLevelTest, RejectsUnknownNames) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("2"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("fatal"), std::nullopt)
      << "fatal is not a threshold users can select";
}

TEST(LogLevelTest, SetMinLogLevelRoundTrips) {
  const LogLevel before = GetMinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(GetMinLogLevel(), LogLevel::kError);
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetMinLogLevel(), LogLevel::kDebug);
  SetMinLogLevel(before);
  EXPECT_EQ(GetMinLogLevel(), before);
}

}  // namespace
}  // namespace essdds
