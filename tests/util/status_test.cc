#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "util/result.h"

namespace essdds {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotSupported), "NotSupported");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
  EXPECT_EQ(StatusCodeToString(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Corruption("x"));
}

Status FailingOp() { return Status::Unavailable("down"); }

Status Chained() {
  ESSDDS_RETURN_IF_ERROR(FailingOp());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Chained();
  EXPECT_TRUE(s.IsUnavailable());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 7;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.value_or(9), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_EQ(r.value_or(9), 9);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubled(int x) {
  ESSDDS_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto ok = Doubled(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  auto err = Doubled(-1);
  EXPECT_FALSE(err.ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace essdds
