#include "util/json_writer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

namespace essdds {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  {
    JsonWriter w;
    w.BeginObject().EndObject();
    EXPECT_EQ(w.str(), "{}");
  }
  {
    JsonWriter w;
    w.BeginArray().EndArray();
    EXPECT_EQ(w.str(), "[]");
  }
}

TEST(JsonWriterTest, CommasBetweenObjectMembers) {
  JsonWriter w;
  w.BeginObject().KV("a", 1).KV("b", 2).KV("c", "x").EndObject();
  EXPECT_EQ(w.str(), R"({"a":1,"b":2,"c":"x"})");
}

TEST(JsonWriterTest, CommasBetweenArrayElements) {
  JsonWriter w;
  w.BeginArray().Value(1).Value("two").Value(true).EndArray();
  EXPECT_EQ(w.str(), R"([1,"two",true])");
}

TEST(JsonWriterTest, NestedStructures) {
  JsonWriter w;
  w.BeginObject()
      .Key("modes")
      .BeginArray()
      .Value("serial")
      .Value("pooled")
      .EndArray()
      .Key("stats")
      .BeginObject()
      .KV("hits", uint64_t{7})
      .EndObject()
      .EndObject();
  EXPECT_EQ(w.str(), R"({"modes":["serial","pooled"],"stats":{"hits":7}})");
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter w;
  w.BeginObject().KV("k", "quote\" slash\\ tab\t nl\n").EndObject();
  EXPECT_EQ(w.str(), "{\"k\":\"quote\\\" slash\\\\ tab\\t nl\\n\"}");
}

TEST(JsonWriterTest, EscapesControlCharactersAsUnicode) {
  JsonWriter w;
  w.BeginArray().Value(std::string_view("\x01", 1)).EndArray();
  EXPECT_EQ(w.str(), "[\"\\u0001\"]");
}

TEST(JsonWriterTest, IntegerExtremes) {
  JsonWriter w;
  w.BeginArray()
      .Value(std::numeric_limits<uint64_t>::max())
      .Value(std::numeric_limits<int64_t>::min())
      .Value(-1)
      .EndArray();
  EXPECT_EQ(w.str(), "[18446744073709551615,-9223372036854775808,-1]");
}

TEST(JsonWriterTest, DoublesWithFixedDecimals) {
  JsonWriter w;
  w.BeginObject().KV("rate", 1234.5678, 2).EndObject();
  EXPECT_EQ(w.str(), R"({"rate":1234.57})");
}

TEST(JsonWriterTest, NonFiniteDoublesEmitNull) {
  JsonWriter w;
  w.BeginArray()
      .Value(std::numeric_limits<double>::infinity())
      .Value(std::numeric_limits<double>::quiet_NaN())
      .EndArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriterTest, RawSplicesPreRenderedFragments) {
  JsonWriter inner;
  inner.BeginObject().KV("n", 1).EndObject();
  JsonWriter w;
  w.BeginObject().Key("nested").Raw(inner.str()).KV("after", 2).EndObject();
  EXPECT_EQ(w.str(), R"({"nested":{"n":1},"after":2})");
}

TEST(JsonWriterTest, BooleansRenderAsKeywords) {
  JsonWriter w;
  w.BeginObject().KV("on", true).KV("off", false).EndObject();
  EXPECT_EQ(w.str(), R"({"on":true,"off":false})");
}

TEST(JsonWriterTest, InvalidHighBytesEscapePerByteNotRaw) {
  // Bytes 0x80-0xFF outside a well-formed UTF-8 sequence are invalid;
  // passed through raw they would make the whole document unparseable.
  // DEL (0x7f) is escaped too. A negative char must not sign-extend
  // through the formatter.
  JsonWriter w;
  w.BeginArray().Value(std::string_view("\x7f\x80\xab\xff", 4)).EndArray();
  EXPECT_EQ(w.str(), "[\"\\u007f\\u0080\\u00ab\\u00ff\"]");
}

TEST(JsonWriterTest, WellFormedUtf8PassesThroughVerbatim) {
  // A legitimate multi-byte name must round-trip as itself — NOT as one
  // \u00xx escape per byte, which a parser would decode into Latin-1
  // mojibake. 2-, 3-, and 4-byte sequences, mixed with ASCII.
  const std::string name = "Dvo\xc5\x99\xc3\xa1k \xe6\x97\xa5\xe6\x9c\xac \xf0\x9f\x94\x91";
  JsonWriter w;
  w.BeginObject().Key(name).Value(uint64_t{1}).EndObject();
  EXPECT_EQ(w.str(), "{\"" + name + "\":1}");
}

TEST(JsonWriterTest, MalformedUtf8SequencesEscapeOnlyTheBadBytes) {
  JsonWriter w;
  w.BeginArray()
      .Value(std::string_view("\xc3", 1))           // truncated 2-byte lead
      .Value(std::string_view("\xe0\x80\xa0", 3))   // overlong 3-byte
      .Value(std::string_view("\xed\xa0\x80", 3))   // UTF-16 surrogate
      .Value(std::string_view("\xf5\x80\x80\x80", 4))  // past U+10FFFF
      .Value(std::string_view("a\xc3\xa9\xffz", 5))    // valid é, stray 0xff
      .EndArray();
  EXPECT_EQ(w.str(),
            "[\"\\u00c3\","
            "\"\\u00e0\\u0080\\u00a0\","
            "\"\\u00ed\\u00a0\\u0080\","
            "\"\\u00f5\\u0080\\u0080\\u0080\","
            "\"a\xc3\xa9\\u00ffz\"]");
}

TEST(JsonWriterTest, EveryByteValueYieldsParseableOutput) {
  // Keys derived from raw record bytes can carry anything. The ascending
  // 0x00..0xFF ramp contains no well-formed multi-byte sequence (every
  // potential lead byte is followed by a non-continuation byte), so every
  // high byte must come out escaped and the result is pure ASCII.
  std::string all;
  for (int b = 0; b < 256; ++b) all.push_back(static_cast<char>(b));
  JsonWriter w;
  w.BeginObject().Key(all).Value(uint64_t{1}).EndObject();
  for (const unsigned char c : w.str()) {
    ASSERT_GE(c, 0x20);
    ASSERT_LT(c, 0x7f);
  }
  EXPECT_NE(w.str().find("\\u0080"), std::string::npos);
  EXPECT_NE(w.str().find("\\u00ff"), std::string::npos);
}

}  // namespace
}  // namespace essdds
