// Whole-system integration: Figure-4 formatted lines in, parsed, stored
// encrypted, searched in parallel over all three stages, decrypted out —
// across growth, shrink, and both LH* files at once.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "baseline/swp_word_store.h"
#include "core/encrypted_store.h"
#include "workload/phonebook.h"

namespace essdds {
namespace {

TEST(EndToEndTest, FormattedLinesThroughFullScheme) {
  // Produce the paper's Figure-4 file format, then run the whole pipeline
  // from parsing to decryption.
  workload::PhonebookGenerator gen(2006);
  std::vector<std::string> lines;
  for (const auto& rec : gen.Generate(300)) {
    lines.push_back(rec.FormattedLine());
  }

  core::EncryptedStore::Options options;
  options.params = core::SchemeParams{.num_codes = 64,
                                      .codes_per_chunk = 6,
                                      .dispersal_sites = 3};
  std::vector<std::string> training;
  std::vector<workload::PhoneRecord> parsed;
  for (const std::string& line : lines) {
    auto rec = workload::ParseFormattedLine(line);
    ASSERT_TRUE(rec.ok()) << line;
    training.push_back(rec->name);
    parsed.push_back(*std::move(rec));
  }
  auto store =
      core::EncryptedStore::Create(options, ToBytes("e2e"), training);
  ASSERT_TRUE(store.ok());
  for (const auto& rec : parsed) {
    ASSERT_TRUE((*store)->Insert(rec.rid, rec.name).ok());
  }

  // Search every parseable surname; decrypt every hit; confirm the target.
  int checked = 0;
  for (const auto& rec : parsed) {
    const std::string surname(workload::SurnameOf(rec));
    if (surname.size() < (*store)->params().min_query_symbols()) continue;
    auto rids = (*store)->Search(surname);
    ASSERT_TRUE(rids.ok());
    ASSERT_TRUE(std::binary_search(rids->begin(), rids->end(), rec.rid))
        << surname;
    auto content = (*store)->Get(rec.rid);
    ASSERT_TRUE(content.ok());
    EXPECT_EQ(*content, rec.name);
    ++checked;
  }
  EXPECT_GT(checked, 150);
}

TEST(EndToEndTest, GrowShrinkSearchLifecycle) {
  core::EncryptedStore::Options options;
  options.params = core::SchemeParams{.codes_per_chunk = 4};
  options.index_file =
      sdds::LhOptions{.bucket_capacity = 32, .merge_threshold = 0.2};
  options.record_file =
      sdds::LhOptions{.bucket_capacity = 16, .merge_threshold = 0.2};
  auto store = core::EncryptedStore::Create(options, ToBytes("cycle"), {});
  ASSERT_TRUE(store.ok());

  workload::PhonebookGenerator gen(55);
  auto corpus = gen.Generate(500);
  for (const auto& rec : corpus) {
    ASSERT_TRUE((*store)->Insert(rec.rid, rec.name).ok());
  }
  const size_t peak_buckets = (*store)->index_file().bucket_count();

  // Shrink to 10%.
  for (size_t i = 50; i < corpus.size(); ++i) {
    ASSERT_TRUE((*store)->Delete(corpus[i].rid).ok());
  }
  EXPECT_LT((*store)->index_file().bucket_count(), peak_buckets);

  // Everything remaining is searchable, nothing deleted is.
  for (size_t i = 0; i < corpus.size(); ++i) {
    const auto& rec = corpus[i];
    if (rec.name.size() < (*store)->params().min_query_symbols()) continue;
    auto rids = (*store)->Search(rec.name);  // full-name search: unique-ish
    ASSERT_TRUE(rids.ok());
    const bool present =
        std::binary_search(rids->begin(), rids->end(), rec.rid);
    if (i < 50) {
      EXPECT_TRUE(present) << rec.name;
    } else {
      EXPECT_FALSE(present) << rec.name;
    }
  }

  // Regrow.
  for (size_t i = 50; i < 200; ++i) {
    ASSERT_TRUE((*store)->Insert(corpus[i].rid, corpus[i].name).ok());
  }
  EXPECT_EQ((*store)->record_count(), 200u);
}

TEST(EndToEndTest, SideBySideWithBaselineOnSameCorpus) {
  // Both systems loaded with the same corpus agree on whole-word searches
  // (modulo the chunked scheme's false positives, which are a superset).
  workload::PhonebookGenerator gen(31);
  auto corpus = gen.Generate(200);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);

  core::EncryptedStore::Options options;
  options.params = core::SchemeParams{.codes_per_chunk = 4};
  auto ours = core::EncryptedStore::Create(options, ToBytes("x"), training);
  auto swp = baseline::SwpWordStore::Create(ToBytes("x"));
  ASSERT_TRUE(ours.ok());
  ASSERT_TRUE(swp.ok());
  for (const auto& r : corpus) {
    ASSERT_TRUE((*ours)->Insert(r.rid, r.name).ok());
    ASSERT_TRUE((*swp)->Insert(r.rid, r.name).ok());
  }
  for (const auto* rec : workload::SampleRecords(corpus, 50, 9)) {
    const std::string surname(workload::SurnameOf(*rec));
    if (surname.size() < (*ours)->params().min_query_symbols()) continue;
    auto swp_rids = (*swp)->SearchWord(surname);
    auto our_rids = (*ours)->Search(surname);
    ASSERT_TRUE(swp_rids.ok() && our_rids.ok());
    // Every SWP (exact word) hit must also be a substring hit for us.
    for (uint64_t rid : *swp_rids) {
      EXPECT_TRUE(
          std::binary_search(our_rids->begin(), our_rids->end(), rid))
          << surname;
    }
  }
}

}  // namespace
}  // namespace essdds
