#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "stats/chi_squared.h"
#include "stats/ngram.h"
#include "stats/randomness.h"
#include "util/random.h"

namespace essdds::stats {
namespace {

TEST(NgramCounterTest, SingleLetterCounts) {
  NgramCounter c(1, 256);
  c.AddText("AABAC");
  EXPECT_EQ(c.total(), 5u);
  EXPECT_EQ(c.CountOf('A'), 3u);
  EXPECT_EQ(c.CountOf('B'), 1u);
  EXPECT_EQ(c.CountOf('C'), 1u);
  EXPECT_EQ(c.CountOf('Z'), 0u);
  EXPECT_EQ(c.observed_cells(), 3u);
}

TEST(NgramCounterTest, DoubletCountsWithinRecordOnly) {
  NgramCounter c(2, 256);
  c.AddText("AB");
  c.AddText("BA");
  // "AB" and "BA"; no cross-record "BB".
  EXPECT_EQ(c.total(), 2u);
  std::vector<uint32_t> ab = {'A', 'B'};
  std::vector<uint32_t> bb = {'B', 'B'};
  EXPECT_EQ(c.CountOf(c.PackCell(ab)), 1u);
  EXPECT_EQ(c.CountOf(c.PackCell(bb)), 0u);
}

TEST(NgramCounterTest, TripletsOverlap) {
  NgramCounter c(3, 256);
  c.AddText("ABCD");  // ABC, BCD
  EXPECT_EQ(c.total(), 2u);
}

TEST(NgramCounterTest, PackUnpackRoundTrip) {
  NgramCounter c(3, 8);
  std::vector<uint32_t> sym = {7, 0, 5};
  EXPECT_EQ(c.UnpackCell(c.PackCell(sym)), sym);
  EXPECT_EQ(c.num_cells(), 512u);
}

TEST(NgramCounterTest, ShortSequencesIgnored) {
  NgramCounter c(3, 256);
  c.AddText("AB");
  EXPECT_EQ(c.total(), 0u);
}

TEST(NgramCounterTest, TopRanksByCount) {
  NgramCounter c(1, 256);
  c.AddText("AAABBC");
  auto top = c.Top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].cell, uint64_t{'A'});
  EXPECT_EQ(top[0].count, 3u);
  EXPECT_NEAR(top[0].fraction, 0.5, 1e-9);
  EXPECT_EQ(top[1].cell, uint64_t{'B'});
}

TEST(ChiSquaredTest, UniformDataScoresNearDegreesOfFreedom) {
  // For uniform random data, E[chi2] = num_cells - 1.
  Rng rng(42);
  NgramCounter c(1, 16);
  std::vector<uint32_t> seq(100000);
  for (auto& s : seq) s = static_cast<uint32_t>(rng.Uniform(16));
  c.Add(seq);
  const double chi2 = ChiSquaredUniform(c);
  EXPECT_GT(chi2, 1.0);
  EXPECT_LT(chi2, 60.0);  // df = 15; 60 is far beyond any sane quantile
}

TEST(ChiSquaredTest, SkewedDataScoresHuge) {
  NgramCounter c(1, 16);
  std::vector<uint32_t> seq(10000, 3);  // all mass on one symbol
  c.Add(seq);
  const double chi2 = ChiSquaredUniform(c);
  // All 10000 in one of 16 cells: chi2 = n*(k-1) = 150000.
  EXPECT_NEAR(chi2, 150000.0, 1.0);
}

TEST(ChiSquaredTest, ZeroCellsContributeExpectedMass) {
  // Two symbols observed equally out of 4 possible.
  NgramCounter c(1, 4);
  std::vector<uint32_t> seq = {0, 1, 0, 1};
  c.Add(seq);
  // expected = 1 per cell; chi2 = (2-1)^2*2 + (0-1)^2*2 = 4.
  EXPECT_NEAR(ChiSquaredUniform(c), 4.0, 1e-9);
}

TEST(ChiSquaredTest, EmptyCounterIsZero) {
  NgramCounter c(1, 4);
  EXPECT_EQ(ChiSquaredUniform(c), 0.0);
}

TEST(ChiSquaredTest, RawHistogramOverload) {
  std::unordered_map<uint64_t, uint64_t> h = {{0, 10}, {1, 10}};
  EXPECT_NEAR(ChiSquaredUniform(h, 2), 0.0, 1e-9);
  EXPECT_GT(ChiSquaredUniform(h, 4), 0.0);
}

TEST(EntropyTest, UniformIsLogK) {
  NgramCounter c(1, 8);
  std::vector<uint32_t> seq;
  for (uint32_t s = 0; s < 8; ++s) {
    for (int i = 0; i < 10; ++i) seq.push_back(s);
  }
  c.Add(seq);
  EXPECT_NEAR(EmpiricalEntropyBits(c), 3.0, 1e-9);
}

TEST(EntropyTest, ConstantIsZero) {
  NgramCounter c(1, 8);
  std::vector<uint32_t> seq(100, 5);
  c.Add(seq);
  EXPECT_NEAR(EmpiricalEntropyBits(c), 0.0, 1e-9);
}

Bytes PseudoRandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<uint8_t>(rng.Next());
  return b;
}

TEST(RandomnessTest, RandomDataPassesBattery) {
  Bytes data = PseudoRandomBytes(20000, 7);
  for (const auto& r : RunAllRandomnessTests(data)) {
    EXPECT_TRUE(r.passed) << r.name << " statistic=" << r.statistic;
  }
}

TEST(RandomnessTest, ConstantDataFailsMonobit) {
  Bytes data(1000, 0xFF);
  EXPECT_FALSE(MonobitTest(data).passed);
}

TEST(RandomnessTest, AlternatingBitsFailRuns) {
  // 0101... has far too many runs.
  Bytes data(1000, 0x55);
  EXPECT_TRUE(MonobitTest(data).passed);  // perfectly balanced
  EXPECT_FALSE(RunsTest(data).passed);
}

TEST(RandomnessTest, BiasedPairsFailSerial) {
  // Bytes of 0b00110011: pairs 00,11,00,11 - only two of four patterns.
  Bytes data(1000, 0x33);
  EXPECT_FALSE(SerialTest(data).passed);
}

TEST(RandomnessTest, RepeatedNibblesFailPoker) {
  Bytes data(1000, 0xAA);  // nibble 0xA only
  EXPECT_FALSE(PokerTest(data).passed);
}

TEST(RandomnessTest, AsciiTextFailsBattery) {
  // English-like text is visibly non-random: the monobit test alone
  // catches the 0 high bit of ASCII.
  std::string text;
  for (int i = 0; i < 300; ++i) text += "SCHWARZ THOMAS J ";
  Bytes data = ToBytes(text);
  int failures = 0;
  for (const auto& r : RunAllRandomnessTests(data)) failures += !r.passed;
  EXPECT_GE(failures, 2);
}

TEST(RandomnessTest, PackSymbolsToBits) {
  // Four 2-bit symbols pack into one byte.
  Bytes packed = PackSymbolsToBits({0b01, 0b10, 0b11, 0b00}, 2);
  ASSERT_EQ(packed.size(), 1u);
  EXPECT_EQ(packed[0], 0b01101100);
}

}  // namespace
}  // namespace essdds::stats
