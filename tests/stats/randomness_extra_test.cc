#include <gtest/gtest.h>

#include <string>

#include "stats/randomness.h"
#include "util/random.h"

namespace essdds::stats {
namespace {

Bytes PseudoRandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  Bytes b(n);
  for (auto& x : b) x = static_cast<uint8_t>(rng.Next());
  return b;
}

TEST(CusumTest, RandomDataPasses) {
  EXPECT_TRUE(CumulativeSumsTest(PseudoRandomBytes(20000, 1)).passed);
}

TEST(CusumTest, DriftingDataFails) {
  // 60% ones: the random walk drifts linearly and the excursion explodes.
  Rng rng(2);
  Bytes data(5000);
  for (auto& b : data) {
    uint8_t v = 0;
    for (int bit = 0; bit < 8; ++bit) {
      v = static_cast<uint8_t>((v << 1) | (rng.Bernoulli(0.6) ? 1 : 0));
    }
    b = v;
  }
  EXPECT_FALSE(CumulativeSumsTest(data).passed);
}

TEST(CusumTest, TooShortInputIsInconclusiveFail) {
  EXPECT_FALSE(CumulativeSumsTest(Bytes(4, 0xA5)).passed);
}

TEST(ApEnTest, RandomDataPasses) {
  EXPECT_TRUE(ApproximateEntropyTest(PseudoRandomBytes(20000, 3)).passed);
}

TEST(ApEnTest, PeriodicDataFails) {
  // 01010101... is perfectly predictable: ApEn ~ 0, chi2 explodes.
  Bytes data(2000, 0x55);
  EXPECT_FALSE(ApproximateEntropyTest(data).passed);
}

TEST(ApEnTest, AsciiTextFails) {
  std::string text;
  for (int i = 0; i < 500; ++i) text += "SCHWARZ THOMAS ";
  EXPECT_FALSE(ApproximateEntropyTest(ToBytes(text)).passed);
}

TEST(BatteryTest, HasSixTests) {
  auto results = RunAllRandomnessTests(PseudoRandomBytes(20000, 4));
  EXPECT_EQ(results.size(), 6u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.passed) << r.name << " stat=" << r.statistic;
    EXPECT_FALSE(r.name.empty());
  }
}

}  // namespace
}  // namespace essdds::stats
