#include "net/socket_transport.h"

#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "net/cluster.h"

namespace essdds::net {
namespace {

TEST(Endpoint, ParsesUnix) {
  auto ep = Endpoint::Parse("uds:/tmp/essdds test.sock");
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(ep->path, "/tmp/essdds test.sock");
  EXPECT_EQ(ep->ToString(), "uds:/tmp/essdds test.sock");
}

TEST(Endpoint, ParsesTcp) {
  auto ep = Endpoint::Parse("tcp:127.0.0.1:9042");
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(ep->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(ep->host, "127.0.0.1");
  EXPECT_EQ(ep->port, 9042);
  EXPECT_EQ(ep->ToString(), "tcp:127.0.0.1:9042");
}

TEST(Endpoint, RejectsJunk) {
  EXPECT_FALSE(Endpoint::Parse("").ok());
  EXPECT_FALSE(Endpoint::Parse("http://x").ok());
  EXPECT_FALSE(Endpoint::Parse("uds:").ok());
  EXPECT_FALSE(Endpoint::Parse("tcp:hostonly").ok());
  EXPECT_FALSE(Endpoint::Parse("tcp:h:99999").ok());
  EXPECT_FALSE(Endpoint::Parse("tcp:h:0").ok());
  EXPECT_FALSE(Endpoint::Parse("tcp::123").ok());
  // sockaddr_un's sun_path bound.
  EXPECT_FALSE(Endpoint::Parse("uds:/" + std::string(120, 'x')).ok());
}

TEST(ClusterMap, ParsesOrderedHostList) {
  auto map = ClusterMap::Parse("uds:/tmp/a.sock,tcp:localhost:1234,uds:/b");
  ASSERT_TRUE(map.ok());
  ASSERT_EQ(map->hosts.size(), 3u);
  EXPECT_EQ(map->hosts[0].path, "/tmp/a.sock");
  EXPECT_EQ(map->hosts[1].port, 1234);
  EXPECT_EQ(map->HostOfBucket(0), 0u);
  EXPECT_EQ(map->HostOfBucket(4), 1u);
  EXPECT_EQ(map->HostOfSite(kCoordinatorSite), 0u);
  EXPECT_EQ(map->HostOfSite(SiteOfBucket(5)), 2u);
}

TEST(ClusterMap, RejectsEmptyPieces) {
  EXPECT_FALSE(ClusterMap::Parse("").ok());
  EXPECT_FALSE(ClusterMap::Parse("uds:/a,,uds:/b").ok());
  EXPECT_FALSE(ClusterMap::Parse("uds:/a,").ok());
}

TEST(BucketCreation, LevelIsTopBitPosition) {
  EXPECT_EQ(BucketCreationLevel(0), 0u);
  EXPECT_EQ(BucketCreationLevel(1), 1u);
  EXPECT_EQ(BucketCreationLevel(2), 2u);
  EXPECT_EQ(BucketCreationLevel(3), 2u);
  EXPECT_EQ(BucketCreationLevel(4), 3u);
  EXPECT_EQ(BucketCreationLevel(7), 3u);
  EXPECT_EQ(BucketCreationLevel(8), 4u);
  EXPECT_EQ(BucketCreationLevel(uint64_t{1} << 40), 41u);
}

class UdsRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("essdds-transport-" + std::to_string(::getpid()) + ".sock"))
                .string();
    ep_.kind = Endpoint::Kind::kUnix;
    ep_.path = path_;
  }
  void TearDown() override { ::unlink(path_.c_str()); }

  std::string path_;
  Endpoint ep_;
};

TEST_F(UdsRoundTrip, FramesCrossAListenAcceptPair) {
  auto listen_fd = ListenOn(ep_);
  ASSERT_TRUE(listen_fd.ok()) << listen_fd.status().ToString();

  auto client_fd = DialBlocking(ep_, /*timeout_ms=*/2000);
  ASSERT_TRUE(client_fd.ok()) << client_fd.status().ToString();
  Conn client(*client_fd);

  int server_fd = -1;
  for (int spin = 0; spin < 200 && server_fd < 0; ++spin) {
    server_fd = ::accept(*listen_fd, nullptr, nullptr);
    if (server_fd < 0) ::usleep(5000);
  }
  ASSERT_GE(server_fd, 0);
  ASSERT_TRUE(SetNonBlocking(server_fd).ok());
  Conn server(server_fd);

  // Client -> server: a hello and a big payload (several socket buffers).
  client.EnqueueFrame(EncodeFrame(FrameKind::kHello, EncodeHello(99)));
  Bytes big(512 * 1024);
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<uint8_t>(i);
  client.EnqueueFrame(EncodeFrame(FrameKind::kMessage, ByteSpan(big)));

  std::vector<Frame> got;
  std::vector<PollEntry> entries(2);
  Poller poller;
  for (int spin = 0; spin < 2000 && got.size() < 2; ++spin) {
    entries[0] = {.fd = client.fd(), .want_write = client.wants_write()};
    entries[1] = {.fd = server.fd(), .want_read = true};
    poller.Wait(entries, 10);
    if (entries[0].writable) {
      ASSERT_TRUE(client.Flush());
    }
    if (entries[1].readable) {
      server.ReadReady();
      for (;;) {
        Frame frame;
        auto r = server.NextFrame(&frame);
        ASSERT_TRUE(r.ok()) << r.status().ToString();
        if (!*r) break;
        got.push_back(std::move(frame));
      }
    }
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].kind, FrameKind::kHello);
  auto hello = DecodeHello(ByteSpan(got[0].payload));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(*hello, 99u);
  EXPECT_EQ(got[1].payload, big);
  ::close(*listen_fd);
}

TEST_F(UdsRoundTrip, PeerCloseTurnsConnDead) {
  auto listen_fd = ListenOn(ep_);
  ASSERT_TRUE(listen_fd.ok());
  auto client_fd = DialBlocking(ep_, 2000);
  ASSERT_TRUE(client_fd.ok());
  int server_fd = -1;
  for (int spin = 0; spin < 200 && server_fd < 0; ++spin) {
    server_fd = ::accept(*listen_fd, nullptr, nullptr);
    if (server_fd < 0) ::usleep(5000);
  }
  ASSERT_GE(server_fd, 0);
  ::close(server_fd);

  Conn client(*client_fd);
  // EOF surfaces through ReadReady; the Conn marks itself dead.
  for (int spin = 0; spin < 200 && !client.dead(); ++spin) {
    client.ReadReady();
    ::usleep(1000);
  }
  EXPECT_TRUE(client.dead());
  ::close(*listen_fd);
}

TEST(Dial, RefusedConnectionFailsCleanly) {
  Endpoint ep;
  ep.kind = Endpoint::Kind::kUnix;
  ep.path = "/tmp/essdds-no-such-socket-xyz.sock";
  EXPECT_FALSE(DialBlocking(ep, 500).ok());
}

}  // namespace
}  // namespace essdds::net
