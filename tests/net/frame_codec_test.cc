#include "net/frame_codec.h"

#include <gtest/gtest.h>

#include "sdds/message.h"
#include "tests/util/fuzz_util.h"
#include "util/random.h"

namespace essdds::net {
namespace {

Frame MustNext(FrameDecoder& dec) {
  Frame frame;
  Result<bool> r = dec.Next(&frame);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
  return frame;
}

TEST(FrameCodec, RoundTripsAllKinds) {
  const Bytes payload = {1, 2, 3, 4, 5};
  for (FrameKind kind :
       {FrameKind::kMessage, FrameKind::kHello, FrameKind::kExtent}) {
    FrameDecoder dec;
    dec.Append(ByteSpan(EncodeFrame(kind, ByteSpan(payload))));
    Frame frame = MustNext(dec);
    EXPECT_EQ(frame.kind, kind);
    EXPECT_EQ(frame.payload, payload);
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(FrameCodec, EmptyPayloadRoundTrips) {
  FrameDecoder dec;
  dec.Append(ByteSpan(EncodeFrame(FrameKind::kMessage, {})));
  Frame frame = MustNext(dec);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameCodec, ReassemblesAcrossArbitraryChunks) {
  // A real socket delivers bytes in arbitrary chunks; the decoder must
  // reassemble identically for every chunking.
  Bytes stream;
  std::vector<Bytes> payloads;
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Bytes p(rng.Uniform(300));
    for (auto& b : p) b = static_cast<uint8_t>(rng.Next());
    Bytes frame = EncodeFrame(FrameKind::kMessage, ByteSpan(p));
    stream.insert(stream.end(), frame.begin(), frame.end());
    payloads.push_back(std::move(p));
  }
  for (const size_t chunk : {size_t{1}, size_t{3}, size_t{16}, size_t{4096}}) {
    FrameDecoder dec;
    size_t delivered = 0;
    size_t off = 0;
    while (off < stream.size()) {
      const size_t n = std::min(chunk, stream.size() - off);
      dec.Append(ByteSpan(stream.data() + off, n));
      off += n;
      for (;;) {
        Frame frame;
        Result<bool> r = dec.Next(&frame);
        ASSERT_TRUE(r.ok());
        if (!*r) break;
        ASSERT_LT(delivered, payloads.size());
        EXPECT_EQ(frame.payload, payloads[delivered]);
        ++delivered;
      }
    }
    EXPECT_EQ(delivered, payloads.size()) << "chunk size " << chunk;
    EXPECT_EQ(dec.buffered(), 0u);
  }
}

TEST(FrameCodec, PartialHeaderAsksForMore) {
  const Bytes wire = EncodeFrame(FrameKind::kHello, EncodeHello(42));
  FrameDecoder dec;
  dec.Append(ByteSpan(wire.data(), kFrameHeaderSize - 1));
  Frame frame;
  Result<bool> r = dec.Next(&frame);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_FALSE(dec.corrupt());
}

TEST(FrameCodec, BadMagicIsCorruptionForever) {
  Bytes wire = EncodeFrame(FrameKind::kMessage, {{1, 2, 3}});
  wire[0] ^= 0xFF;
  FrameDecoder dec;
  dec.Append(ByteSpan(wire));
  Frame frame;
  EXPECT_FALSE(dec.Next(&frame).ok());
  EXPECT_TRUE(dec.corrupt());
  // A TCP stream has no resync point: appending a pristine frame afterwards
  // must not revive the stream.
  dec.Append(ByteSpan(EncodeFrame(FrameKind::kMessage, {{9}})));
  EXPECT_FALSE(dec.Next(&frame).ok());
}

TEST(FrameCodec, UnknownKindRejected) {
  Bytes wire = EncodeFrame(FrameKind::kMessage, {{1}});
  wire[4] = 0x77;  // kind byte
  FrameDecoder dec;
  dec.Append(ByteSpan(wire));
  Frame frame;
  EXPECT_FALSE(dec.Next(&frame).ok());
}

TEST(FrameCodec, OversizedLengthRejectedWithoutBuffering) {
  // Length field above the cap must fail immediately, not wait for 4 GiB.
  Bytes wire = EncodeFrame(FrameKind::kMessage, {{1}});
  wire[5] = 0xFF;
  wire[6] = 0xFF;
  wire[7] = 0xFF;
  wire[8] = 0xFF;
  FrameDecoder dec;
  dec.Append(ByteSpan(wire));
  Frame frame;
  EXPECT_FALSE(dec.Next(&frame).ok());
}

TEST(FrameCodec, PayloadBitflipFailsCrc) {
  Bytes wire = EncodeFrame(FrameKind::kMessage, {{10, 20, 30, 40}});
  wire[kFrameHeaderSize + 2] ^= 0x01;
  FrameDecoder dec;
  dec.Append(ByteSpan(wire));
  Frame frame;
  EXPECT_FALSE(dec.Next(&frame).ok());
}

TEST(FrameCodec, CompactsConsumedPrefix) {
  // Many small frames through one decoder: buffered() returns to zero, so
  // the consumed prefix cannot grow without bound.
  FrameDecoder dec;
  for (int i = 0; i < 5000; ++i) {
    dec.Append(ByteSpan(EncodeFrame(FrameKind::kExtent, EncodeExtent(i))));
    Frame frame = MustNext(dec);
    EXPECT_EQ(frame.kind, FrameKind::kExtent);
  }
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(FrameCodec, HelloAndExtentRoundTrip) {
  auto hello = DecodeHello(ByteSpan(EncodeHello(0x40000007u)));
  ASSERT_TRUE(hello.ok());
  EXPECT_EQ(*hello, 0x40000007u);
  auto extent = DecodeExtent(ByteSpan(EncodeExtent(uint64_t{1} << 40)));
  ASSERT_TRUE(extent.ok());
  EXPECT_EQ(*extent, uint64_t{1} << 40);
  EXPECT_FALSE(DecodeHello(ByteSpan(EncodeExtent(1))).ok());
  EXPECT_FALSE(DecodeExtent({}).ok());
}

// --- the fuzz battery (tests/util/fuzz_util.h) ---------------------------
// The decoder contract: any byte sequence produces frames, asks for more,
// or fails with Corruption — never a crash, never an oversized allocation.

void DrainAll(FrameDecoder& dec) {
  for (;;) {
    Frame frame;
    Result<bool> r = dec.Next(&frame);
    if (!r.ok() || !*r) break;
  }
}

TEST(FrameCodecFuzz, RandomBytesNeverCrash) {
  test::RandomBytesTrials(0xF4A3E, 300, 4096, [](ByteSpan junk) {
    FrameDecoder dec;
    dec.Append(junk);
    DrainAll(dec);
  });
}

TEST(FrameCodecFuzz, RandomBytesChunkedNeverCrash) {
  // Same junk split into tiny appends: exercises every partial-header and
  // partial-payload resume path.
  test::RandomBytesTrials(0xB0B0, 100, 2048, [](ByteSpan junk) {
    FrameDecoder dec;
    size_t off = 0;
    while (off < junk.size()) {
      const size_t n = std::min<size_t>(7, junk.size() - off);
      dec.Append(junk.subspan(off, n));
      off += n;
      DrainAll(dec);
    }
  });
}

TEST(FrameCodecFuzz, TruncationSweepNeverYieldsFrame) {
  sdds::Message msg;
  msg.type = sdds::MsgType::kInsert;
  msg.key = 77;
  msg.value = {1, 2, 3, 4};
  const Bytes wire = EncodeFrame(FrameKind::kMessage, ByteSpan(msg.Encode()));
  test::TruncationSweep(ByteSpan(wire), [](ByteSpan prefix, size_t len) {
    FrameDecoder dec;
    dec.Append(prefix);
    Frame frame;
    Result<bool> r = dec.Next(&frame);
    // A strict prefix of one frame never completes: either "need more"
    // (valid header prefix) or Corruption (never a frame).
    if (r.ok()) {
      EXPECT_FALSE(*r) << "frame completed from a " << len << "-byte prefix";
    }
  });
}

TEST(FrameCodecFuzz, SingleByteMutationsNeverCrash) {
  sdds::Message msg;
  msg.type = sdds::MsgType::kMoveRecords;
  for (uint64_t k = 0; k < 16; ++k) {
    msg.records.push_back(sdds::WireRecord{k, Bytes(32, uint8_t(k))});
  }
  const Bytes payload_wire = msg.Encode();
  const Bytes wire = EncodeFrame(FrameKind::kMessage, ByteSpan(payload_wire));
  test::SingleByteMutations(0xC0DE, ByteSpan(wire), [&](ByteSpan mutated,
                                                        size_t pos) {
    FrameDecoder dec;
    dec.Append(mutated);
    Frame frame;
    Result<bool> r = dec.Next(&frame);
    if (r.ok() && *r && pos >= kFrameHeaderSize) {
      // The harness sometimes produces no-op "mutations" (a random or
      // forced byte equal to the original); any REAL payload change must be
      // caught by the CRC, so a decoded payload is always the original.
      EXPECT_EQ(frame.payload, payload_wire)
          << "mutated payload at " << pos << " passed the CRC";
    }
  });
}

}  // namespace
}  // namespace essdds::net
