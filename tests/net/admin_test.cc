// The observability plane end to end: admin wire codecs (junk in ->
// Corruption out), cross-host trace stitching rules, and a forked 3-process
// cluster scraped live — merged metrics with per-host sections and cluster
// quantiles, per-host health, and one pipelined op's trace id assembled
// into a complete client -> coordinator host -> bucket host causal chain.

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/admin.h"
#include "net/bucket_host.h"
#include "net/socket_client.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace essdds::net {
namespace {

using obs::HopKind;
using obs::TraceEvent;
using sdds::MsgType;

// --- wire codecs -----------------------------------------------------------

TEST(AdminCodecTest, MetricsBodyRoundTrips) {
  obs::MetricRegistry reg;
  reg.counter("a.count").Increment(7);
  reg.gauge("b.gauge").Set(-3);
  reg.histogram("c.hist").Record(100);
  reg.histogram("c.hist").Record(100'000);
  sdds::NetworkStats stats;
  stats.total_messages = 42;
  stats.total_bytes = 4096;
  stats.per_type[MsgType::kInsert] = 30;
  stats.per_type[MsgType::kLookup] = 12;

  const Bytes body = EncodeMetricsBody(reg, stats);
  HostMetrics out;
  ASSERT_TRUE(DecodeMetricsBody(ByteSpan(body.data(), body.size()), &out)
                  .ok());
  EXPECT_EQ(out.stats, stats);
  if (obs::kMetricsEnabled) {
    ASSERT_EQ(out.counters.size(), 1u);
    EXPECT_EQ(out.counters[0].first, "a.count");
    EXPECT_EQ(out.counters[0].second, 7u);
    ASSERT_EQ(out.gauges.size(), 1u);
    EXPECT_EQ(out.gauges[0].second, -3);
    ASSERT_EQ(out.histograms.size(), 1u);
    EXPECT_EQ(out.histograms[0].first, "c.hist");
    EXPECT_EQ(out.histograms[0].second.count, 2u);
    EXPECT_EQ(out.histograms[0].second.sum, 100'100u);
    EXPECT_EQ(out.histograms[0].second.max, 100'000u);
  } else {
    // OFF builds still speak the wire; their own registry is just empty.
    EXPECT_TRUE(out.counters.empty());
    EXPECT_TRUE(out.histograms.empty());
  }
}

TEST(AdminCodecTest, TruncatedMetricsBodyIsCorruption) {
  obs::MetricRegistry reg;
  reg.counter("a").Increment();
  reg.histogram("h").Record(9);
  const Bytes body = EncodeMetricsBody(reg, {});
  // Every strict prefix must fail loudly, never misparse.
  for (size_t len = 0; len < body.size(); ++len) {
    HostMetrics out;
    EXPECT_FALSE(DecodeMetricsBody(ByteSpan(body.data(), len), &out).ok())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(AdminCodecTest, TraceBodyRoundTripsAndFilters) {
  obs::TraceRing ring(64);
  ring.Record({10, 111, 1, 5, 2, 3, 1, HopKind::kSend});
  ring.Record({20, 222, 2, 6, 3, 4, 1, HopKind::kDeliver});
  ring.Record({30, 111, 1, 5, 3, 2, 2, HopKind::kOpDone});

  const Bytes body = EncodeTraceBody(ring, 111);
  HostTrace out;
  ASSERT_TRUE(DecodeTraceBody(ByteSpan(body.data(), body.size()), &out).ok());
  if (obs::kMetricsEnabled) {
    ASSERT_EQ(out.events.size(), 2u);
    EXPECT_EQ(out.events[0].trace_id, 111u);
    EXPECT_EQ(out.events[0].time_us, 10u);
    EXPECT_EQ(out.events[0].kind, HopKind::kSend);
    EXPECT_EQ(out.events[1].kind, HopKind::kOpDone);
    EXPECT_EQ(out.events[1].msg_type, 2u);
  } else {
    EXPECT_TRUE(out.events.empty());
  }

  // Truncated trace bodies are Corruption too.
  for (size_t len = 0; len < body.size(); ++len) {
    HostTrace t;
    EXPECT_FALSE(DecodeTraceBody(ByteSpan(body.data(), len), &t).ok());
  }
}

TEST(AdminCodecTest, AdminReplyEnvelopeRoundTrips) {
  const Bytes inner = {1, 2, 3, 4};
  const Bytes payload =
      EncodeAdminReply(FrameKind::kAdminHealth, 2, 999,
                       ByteSpan(inner.data(), inner.size()));
  auto reply = DecodeAdminReply(ByteSpan(payload.data(), payload.size()));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->orig, FrameKind::kAdminHealth);
  EXPECT_EQ(reply->host_index, 2u);
  EXPECT_EQ(reply->now_us, 999u);
  EXPECT_EQ(reply->body, inner);

  // An envelope claiming a non-pull original kind is garbage.
  Bytes bad = payload;
  bad[0] = 0x7f;
  EXPECT_FALSE(DecodeAdminReply(ByteSpan(bad.data(), bad.size())).ok());
}

// --- trace stitching -------------------------------------------------------

TraceEvent Ev(uint64_t t, uint64_t req, uint32_t from, uint32_t to,
              uint8_t type, HopKind kind) {
  TraceEvent ev;
  ev.time_us = t;
  ev.trace_id = 77;
  ev.request_id = req;
  ev.from = from;
  ev.to = to;
  ev.msg_type = type;
  ev.kind = kind;
  return ev;
}

TEST(StitchTraceTest, SendOrdersBeforeDeliverAcrossSources) {
  // Source 1 (the deliverer) is listed FIRST and its local clock reads
  // earlier than the sender's — only the send->deliver edge can order them.
  std::vector<std::pair<int32_t, std::vector<TraceEvent>>> sources;
  sources.push_back({1, {Ev(5, 9, 100, 200, 1, HopKind::kDeliver)}});
  sources.push_back({-1,
                     {Ev(50, 9, 100, 100, 1, HopKind::kOpStart),
                      Ev(60, 9, 100, 200, 1, HopKind::kSend)}});
  const AssembledTrace trace = StitchTrace(77, sources);
  ASSERT_EQ(trace.hops.size(), 3u);
  EXPECT_TRUE(trace.ordered);
  EXPECT_EQ(trace.hops[0].ev.kind, HopKind::kOpStart);
  EXPECT_EQ(trace.hops[1].ev.kind, HopKind::kSend);
  EXPECT_EQ(trace.hops[2].ev.kind, HopKind::kDeliver);
  EXPECT_EQ(trace.hops[2].host, 1);
}

TEST(StitchTraceTest, ProgramOrderWithinOneSourceIsPreserved) {
  std::vector<std::pair<int32_t, std::vector<TraceEvent>>> sources;
  sources.push_back({0,
                     {Ev(30, 1, 1, 2, 1, HopKind::kDeliver),
                      Ev(10, 1, 2, 3, 4, HopKind::kSend),
                      Ev(20, 1, 2, 1, 2, HopKind::kSend)}});
  const AssembledTrace trace = StitchTrace(77, sources);
  ASSERT_EQ(trace.hops.size(), 3u);
  // Ring order wins regardless of timestamps: one ring is one thread.
  EXPECT_EQ(trace.hops[0].ev.kind, HopKind::kDeliver);
  EXPECT_EQ(trace.hops[1].ev.time_us, 10u);
  EXPECT_EQ(trace.hops[2].ev.time_us, 20u);
}

TEST(StitchTraceTest, RetriedSendsMatchDeliversByOrdinal) {
  // Two sends of the SAME signature (a retransmission); two delivers on the
  // server. k-th send -> k-th deliver: the first deliver may not be ordered
  // after the second send.
  std::vector<std::pair<int32_t, std::vector<TraceEvent>>> sources;
  sources.push_back({0,
                     {Ev(1, 9, 7, 8, 1, HopKind::kDeliver),
                      Ev(2, 9, 7, 8, 1, HopKind::kDeliver)}});
  sources.push_back({-1,
                     {Ev(1, 9, 7, 8, 1, HopKind::kSend),
                      Ev(2, 9, 7, 8, 1, HopKind::kSend)}});
  const AssembledTrace trace = StitchTrace(77, sources);
  ASSERT_EQ(trace.hops.size(), 4u);
  EXPECT_TRUE(trace.ordered);
  // First send precedes first deliver; second send precedes second deliver.
  std::vector<std::pair<int32_t, HopKind>> got;
  for (const ClusterHop& hop : trace.hops) got.push_back({hop.host, hop.ev.kind});
  size_t first_send = 0, first_deliver = 0, second_send = 0, second_deliver = 0;
  size_t sends = 0, delivers = 0;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].second == HopKind::kSend) {
      (++sends == 1 ? first_send : second_send) = i;
    } else {
      (++delivers == 1 ? first_deliver : second_deliver) = i;
    }
  }
  EXPECT_LT(first_send, first_deliver);
  EXPECT_LT(second_send, second_deliver);
}

// --- live cluster ----------------------------------------------------------

void InstallFilters(auto& target) {
  target.InstallFilter(sdds::MakeScanFilter(
      [](uint64_t, ByteSpan, ByteSpan) { return true; }));
}

sdds::LhOptions ServerOptions() {
  sdds::LhOptions lh;
  lh.bucket_capacity = 8;  // small: the workload drives many splits
  return lh;
}

class AdminE2eTest : public ::testing::Test {
 protected:
  static constexpr size_t kHosts = 3;

  void SetUp() override {
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("admin-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    std::string spec;
    for (size_t h = 0; h < kHosts; ++h) {
      if (h) spec += ",";
      spec += "uds:" + dir_ + "/h" + std::to_string(h) + ".sock";
    }
    auto map = ClusterMap::Parse(spec);
    ASSERT_TRUE(map.ok());
    cluster_ = *map;
    for (size_t h = 0; h < kHosts; ++h) {
      const pid_t pid = ::fork();
      ASSERT_GE(pid, 0);
      if (pid == 0) {
        BucketHost::Config config;
        config.cluster = cluster_;
        config.host_index = h;
        config.options = ServerOptions();
        BucketHost host(config);
        InstallFilters(host);
        if (!host.Start().ok()) ::_exit(3);
        for (;;) host.RunOnce(50);
      }
      pids_.push_back(pid);
    }
  }

  void TearDown() override {
    for (pid_t pid : pids_) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (pid_t pid : pids_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
    std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<SocketClient> NewClient(uint32_t client_id = 0) {
    SocketClient::Options opts;
    opts.cluster = cluster_;
    opts.client_id = client_id;
    opts.lh = ServerOptions();
    opts.lh.request_timeout_us = 2'000'000;
    opts.lh.max_request_retries = 8;
    auto client = std::make_unique<SocketClient>(opts);
    Status s = Status::OK();
    for (int attempt = 0; attempt < 100; ++attempt) {
      s = client->Connect();
      if (s.ok()) return client;
      ::usleep(20'000);
    }
    ADD_FAILURE() << "connect failed: " << s.ToString();
    return client;
  }

  std::unique_ptr<AdminClient> NewAdmin() {
    AdminClient::Options opts;
    opts.cluster = cluster_;
    auto admin = std::make_unique<AdminClient>(opts);
    Status s = Status::OK();
    for (int attempt = 0; attempt < 100; ++attempt) {
      s = admin->Connect();
      if (s.ok()) return admin;
      ::usleep(20'000);
    }
    ADD_FAILURE() << "admin connect failed: " << s.ToString();
    return admin;
  }

  /// Inserts `ops` records (pipelined) — enough splits to spread buckets
  /// over every host.
  void RunWorkload(SocketClient& client, uint64_t ops) {
    for (uint64_t i = 0; i < ops; ++i) {
      const std::string v = "record " + std::to_string(i);
      ASSERT_TRUE(
          client.SubmitInsert(i * 97 + 3, Bytes(v.begin(), v.end())).ok());
    }
    ASSERT_TRUE(client.AwaitAll().ok());
  }

  std::string dir_;
  ClusterMap cluster_;
  std::vector<pid_t> pids_;
};

TEST_F(AdminE2eTest, AdminScrapeMergesClusterView) {
  auto client = NewClient();
  RunWorkload(*client, 400);

  auto admin = NewAdmin();
  auto metrics = admin->Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(metrics->hosts.size(), kHosts);

  // Every host section carries its own index and live NetworkStats; the
  // cluster totals are the sum (each host accounts only its own sends).
  uint64_t summed = 0;
  std::set<uint32_t> indices;
  for (const HostMetrics& host : metrics->hosts) {
    indices.insert(host.host_index);
    summed += host.stats.total_messages;
  }
  EXPECT_EQ(indices.size(), kHosts);
  const sdds::NetworkStats merged = metrics->MergedStats();
  EXPECT_EQ(merged.total_messages, summed);
  EXPECT_GT(merged.total_messages, 0u);
  EXPECT_GT(merged.total_bytes, 0u);

  const std::string json = metrics->ToJson();
  EXPECT_NE(json.find("\"hosts\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);

  if (obs::kMetricsEnabled) {
    // The registry view: insert deliveries counted, message-size histogram
    // populated, and the merged JSON exposes cluster quantiles.
    uint64_t inserts = 0;
    uint64_t recv_count = 0;
    for (const HostMetrics& host : metrics->hosts) {
      for (const auto& [name, value] : host.counters) {
        if (name == "net.delivered.Insert") inserts += value;
      }
      for (const auto& [name, state] : host.histograms) {
        if (name == "net.recv_msg_bytes") recv_count += state.count;
      }
    }
    EXPECT_GE(inserts, 400u);
    EXPECT_GT(recv_count, 0u);
    EXPECT_NE(json.find("net.recv_msg_bytes"), std::string::npos);
    EXPECT_NE(json.find("\"p50\""), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
  }
}

TEST_F(AdminE2eTest, HealthReportsEveryHostsBuckets) {
  auto client = NewClient();
  const uint64_t kOps = 200;
  RunWorkload(*client, kOps);

  auto admin = NewAdmin();
  auto field = [](const std::string& json, const std::string& name) {
    const std::string needle = "\"" + name + "\":";
    const size_t pos = json.find(needle);
    return pos == std::string::npos
               ? int64_t{-1}
               : std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
  };
  // The workload's last acks can race the splits they triggered: records in
  // transit between a splitting bucket and its child are invisible to a
  // health scrape taken mid-move. Poll until the structure quiesces.
  Result<std::vector<HostHealth>> health = admin->Health();
  uint64_t records_total = 0;
  for (int poll = 0; poll < 100; ++poll) {
    ASSERT_TRUE(health.ok()) << health.status().ToString();
    ASSERT_EQ(health->size(), kHosts);
    records_total = 0;
    for (const HostHealth& h : *health) {
      const int64_t records = field(h.json, "records_total");
      ASSERT_GE(records, 0) << h.json;
      records_total += static_cast<uint64_t>(records);
    }
    if (records_total == kOps) break;
    ::usleep(20'000);
    health = admin->Health();
  }
  for (const HostHealth& h : *health) {
    EXPECT_EQ(field(h.json, "host_index"), static_cast<int64_t>(h.host_index));
    EXPECT_NE(h.json.find("\"buckets\""), std::string::npos);
    EXPECT_EQ(field(h.json, "halted_buckets"), 0);
  }
  // Health is live structure, not instruments: the quiesced record count is
  // exact in every build, METRICS=OFF included.
  EXPECT_EQ(records_total, kOps);
  // Only host 0 runs the coordinator.
  EXPECT_NE((*health)[0].json.find("\"coordinator\":true"),
            std::string::npos);
}

TEST_F(AdminE2eTest, OneOpsTraceAssemblesAcrossProcesses) {
  if (!obs::kMetricsEnabled) {
    GTEST_SKIP() << "tracing compiled out (-DESSDDS_METRICS=OFF)";
  }
  // Grow the file well past one bucket so records live on every host.
  auto loader = NewClient();
  RunWorkload(*loader, 400);

  auto admin = NewAdmin();

  // A FRESH client starts with a one-bucket image, so its first lookup goes
  // to bucket 0 on host 0 — the coordinator host — which forwards toward
  // the key's real bucket (LH* client addressing). For a key whose bucket
  // lives on host 1 or 2, the op's trace id therefore appears in the
  // client's ring, the coordinator host's ring, AND the serving bucket
  // host's ring. Probe keys until one such cross-host chain shows up.
  bool found_cross_host = false;
  for (uint32_t attempt = 0; attempt < 12 && !found_cross_host; ++attempt) {
    auto prober = NewClient(/*client_id=*/10 + attempt);
    const uint64_t key = (attempt * 7 + 1) * 97 + 3;
    auto value = prober->Lookup(key);
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    const uint64_t trace_id = prober->last_trace_id();
    ASSERT_NE(trace_id, 0u);

    auto trace =
        admin->AssembleTrace(trace_id, prober->trace().Snapshot(trace_id));
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();
    ASSERT_FALSE(trace->hops.empty());
    EXPECT_TRUE(trace->ordered);

    // The chain: the client's kOpStart opens it, its kOpDone comes after
    // every delivery of the request chain, and every kDeliver is preceded
    // by a matching kSend (per-connection FIFO makes the k-th ordinal
    // pairing exact). kOpDone need not be the literal last element: a
    // server may tag a trailing IAM send with the same trace id, and since
    // the client records no hop for receiving an IAM, that send is
    // genuinely concurrent with the op's close.
    EXPECT_EQ(trace->hops.front().ev.kind, HopKind::kOpStart);
    EXPECT_EQ(trace->hops.front().host, -1);
    size_t op_done = trace->hops.size();
    size_t last_deliver = 0;
    for (size_t i = 0; i < trace->hops.size(); ++i) {
      if (trace->hops[i].ev.kind == HopKind::kOpDone) {
        EXPECT_EQ(op_done, trace->hops.size()) << "duplicate kOpDone";
        EXPECT_EQ(trace->hops[i].host, -1);
        op_done = i;
      } else if (trace->hops[i].ev.kind == HopKind::kDeliver) {
        last_deliver = i;
      }
    }
    ASSERT_NE(op_done, trace->hops.size()) << "no kOpDone hop";
    // A retried op is allowed to close before its retransmission finishes
    // delivering (the duplicate's hops share the trace id and are only
    // ordered against their own send); on the clean path the op's close
    // must come after every delivery of the request chain.
    if (prober->retry_count() == 0) {
      EXPECT_GT(op_done, last_deliver)
          << "op closed before the request chain finished delivering";
    }
    std::vector<TraceEvent> sends;
    for (const ClusterHop& hop : trace->hops) {
      if (hop.ev.kind == HopKind::kSend) {
        sends.push_back(hop.ev);
      } else if (hop.ev.kind == HopKind::kDeliver) {
        bool matched = false;
        for (size_t i = 0; i < sends.size() && !matched; ++i) {
          matched = sends[i].request_id == hop.ev.request_id &&
                    sends[i].from == hop.ev.from &&
                    sends[i].to == hop.ev.to &&
                    sends[i].msg_type == hop.ev.msg_type;
          if (matched) sends.erase(sends.begin() + static_cast<long>(i));
        }
        EXPECT_TRUE(matched)
            << "deliver without a preceding matching send in the timeline";
      }
    }

    std::set<int32_t> hosts;
    for (const ClusterHop& hop : trace->hops) hosts.insert(hop.host);
    EXPECT_TRUE(hosts.count(-1)) << "client hops missing";
    if (hosts.count(-1) && hosts.count(0) &&
        (hosts.count(1) || hosts.count(2))) {
      found_cross_host = true;  // client + coordinator host + bucket host
    }
  }
  EXPECT_TRUE(found_cross_host)
      << "no probed key produced a client -> coordinator host -> bucket "
         "host forwarding chain";
}

}  // namespace
}  // namespace essdds::net
