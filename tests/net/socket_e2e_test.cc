// Multi-process end-to-end: 3 real server processes over unix-domain
// sockets serve a pipelined SocketClient workload through several splits,
// and the results are byte-identical to the same workload against an
// in-process LhSystem on SimNetwork. A SIGKILLed server then surfaces as a
// clean Status::Unavailable through the client's timeout/retry machinery —
// never a hang — while buckets on the surviving hosts keep serving.

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/bucket_host.h"
#include "net/socket_client.h"
#include "obs/metrics.h"
#include "sdds/lh_client.h"
#include "sdds/lh_system.h"

namespace essdds::net {
namespace {

// The filter set both the servers and the baseline install, in the same
// order (the wire carries only the filter index).
//   0: match-all   1: substring-of-value
void InstallFilters(auto& target) {
  using essdds::ByteSpan;
  target.InstallFilter(sdds::MakeScanFilter(
      [](uint64_t, ByteSpan, ByteSpan) { return true; }));
  target.InstallFilter(
      sdds::MakeScanFilter([](uint64_t, ByteSpan value, ByteSpan arg) {
        if (arg.empty() || arg.size() > value.size()) return false;
        for (size_t i = 0; i + arg.size() <= value.size(); ++i) {
          if (std::memcmp(value.data() + i, arg.data(), arg.size()) == 0) {
            return true;
          }
        }
        return false;
      }));
}

sdds::LhOptions ServerOptions() {
  sdds::LhOptions lh;
  lh.bucket_capacity = 8;  // small: the workload drives many splits
  return lh;
}

class SocketE2eTest : public ::testing::Test {
 protected:
  static constexpr size_t kHosts = 3;

  /// Cluster size; overridden by the power-of-two fixture below.
  virtual size_t host_count() const { return kHosts; }

  void SetUp() override {
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("e2e-" + std::to_string(::getpid()) + "-" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    metrics_path_ = dir_ + "/coord-metrics.json";
    std::string spec;
    for (size_t h = 0; h < host_count(); ++h) {
      if (h) spec += ",";
      spec += "uds:" + dir_ + "/h" + std::to_string(h) + ".sock";
    }
    auto map = ClusterMap::Parse(spec);
    ASSERT_TRUE(map.ok());
    cluster_ = *map;
  }

  void TearDown() override {
    for (pid_t pid : pids_) {
      if (pid > 0) ::kill(pid, SIGKILL);
    }
    for (pid_t pid : pids_) {
      if (pid > 0) ::waitpid(pid, nullptr, 0);
    }
    std::filesystem::remove_all(dir_);
  }

  /// Forks one real server process for cluster host `h`.
  void SpawnServer(size_t h) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      BucketHost::Config config;
      config.cluster = cluster_;
      config.host_index = h;
      config.options = ServerOptions();
      // Host 0 runs the coordinator; its periodic metrics dump is the only
      // window this test has into another process's counters.
      if (h == 0) config.metrics_path = metrics_path_;
      BucketHost host(config);
      InstallFilters(host);
      if (!host.Start().ok()) ::_exit(3);
      for (;;) host.RunOnce(50);
    }
    pids_.push_back(pid);
  }

  void SpawnCluster() {
    for (size_t h = 0; h < host_count(); ++h) SpawnServer(h);
  }

  std::unique_ptr<SocketClient> NewClient(uint64_t timeout_us,
                                          uint32_t retries,
                                          uint32_t client_id = 0) {
    SocketClient::Options opts;
    opts.cluster = cluster_;
    opts.client_id = client_id;
    opts.lh = ServerOptions();
    opts.lh.request_timeout_us = timeout_us;
    opts.lh.max_request_retries = retries;
    auto client = std::make_unique<SocketClient>(opts);
    // Servers may still be binding their sockets; retry the connect.
    Status s = Status::OK();
    for (int attempt = 0; attempt < 100; ++attempt) {
      s = client->Connect();
      if (s.ok()) return client;
      ::usleep(20'000);
    }
    ADD_FAILURE() << "connect failed: " << s.ToString();
    return client;
  }

  static std::string ValueFor(uint64_t key) {
    return "record " + std::to_string(key) + " tag " +
           std::to_string(key % 10);
  }

  /// Reads counter `name` out of the coordinator host's metrics JSON dump;
  /// -1 when the file or the counter is not there (yet).
  int64_t CoordinatorCounter(const std::string& name) const {
    std::ifstream in(metrics_path_);
    if (!in) return -1;
    std::string json((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const std::string needle = "\"" + name + "\":";
    const size_t pos = json.find(needle);
    if (pos == std::string::npos) return -1;
    return std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
  }

  std::string dir_;
  std::string metrics_path_;
  ClusterMap cluster_;
  std::vector<pid_t> pids_;
};

TEST_F(SocketE2eTest, WorkloadByteIdenticalToSimNetwork) {
  SpawnCluster();
  auto client = NewClient(/*timeout_us=*/2'000'000, /*retries=*/8);

  // The reference: identical options, filters, and op sequence on the
  // synchronous in-process simulator.
  sdds::LhSystem baseline(ServerOptions());
  InstallFilters(baseline);
  sdds::LhClient* ref = baseline.NewClient();

  const uint64_t kOps = 400;  // capacity 8 -> dozens of splits
  auto key_of = [](uint64_t i) { return i * 97 + 3; };

  // Insert pass (pipelined on the socket side; completion order differs,
  // per-key results may not).
  for (uint64_t i = 0; i < kOps; ++i) {
    const std::string v = ValueFor(key_of(i));
    ASSERT_TRUE(
        client->SubmitInsert(key_of(i), Bytes(v.begin(), v.end())).ok());
    ref->Insert(key_of(i), Bytes(v.begin(), v.end()));
  }
  ASSERT_TRUE(client->AwaitAll().ok());

  // Overwrite a slice; both sides must report "replaced".
  for (uint64_t i = 0; i < kOps; i += 10) {
    const std::string v = ValueFor(key_of(i)) + " v2";
    auto replaced = client->Insert(key_of(i), Bytes(v.begin(), v.end()));
    ASSERT_TRUE(replaced.ok());
    const bool ref_replaced = ref->Insert(key_of(i), Bytes(v.begin(), v.end()));
    EXPECT_EQ(*replaced, ref_replaced) << "key " << key_of(i);
  }

  // Delete a different slice; statuses must agree (all found).
  for (uint64_t i = 5; i < kOps; i += 10) {
    EXPECT_TRUE(client->Delete(key_of(i)).ok());
    EXPECT_TRUE(ref->Delete(key_of(i)).ok());
  }

  // Full read-back: byte-identical values, including NotFound agreement.
  for (uint64_t i = 0; i < kOps; ++i) {
    auto got = client->Lookup(key_of(i));
    auto want = ref->Lookup(key_of(i));
    ASSERT_EQ(got.ok(), want.ok()) << "key " << key_of(i);
    if (got.ok()) {
      EXPECT_EQ(*got, *want) << "key " << key_of(i);
    } else {
      EXPECT_TRUE(got.status().IsNotFound());
    }
  }
  // A lookup of a never-inserted key.
  EXPECT_TRUE(client->Lookup(1).status().IsNotFound());

  // Scans: substring filter and match-all. Hits are compared key-sorted,
  // the repo's canonical form for cross-network byte-identity (see
  // tests/sdds/interleaving_test.cc): a real-time cluster's physical
  // bucket placement legitimately differs from the synchronous simulator's
  // (overflow reports race in-flight splits and are re-raised on later
  // inserts), so (bucket, key) order is placement-dependent while the hit
  // set — keys and payload bytes — must match exactly.
  auto sorted_hits = [](std::vector<sdds::WireRecord> hits) {
    std::sort(hits.begin(), hits.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    return hits;
  };
  const std::string needle = "tag 7";
  auto scan = client->Scan(1, Bytes(needle.begin(), needle.end()));
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  auto ref_scan = ref->Scan(1, Bytes(needle.begin(), needle.end()));
  const auto got_hits = sorted_hits(std::move(scan->hits));
  const auto want_hits = sorted_hits(std::move(ref_scan.hits));
  ASSERT_EQ(got_hits.size(), want_hits.size());
  for (size_t i = 0; i < got_hits.size(); ++i) {
    EXPECT_EQ(got_hits[i].key, want_hits[i].key);
    EXPECT_EQ(got_hits[i].value, want_hits[i].value);
  }
  EXPECT_GT(got_hits.size(), 0u);

  auto all = client->Scan(0, {});
  ASSERT_TRUE(all.ok());
  auto ref_all = ref->Scan(0, {});
  const auto got_all = sorted_hits(std::move(all->hits));
  const auto want_all = sorted_hits(std::move(ref_all.hits));
  ASSERT_EQ(got_all.size(), want_all.size());
  for (size_t i = 0; i < got_all.size(); ++i) {
    EXPECT_EQ(got_all[i].key, want_all[i].key);
    EXPECT_EQ(got_all[i].value, want_all[i].value);
  }

  // The workload really went through splits: the client image learned a
  // multi-bucket file, the scan answered from more buckets than hosts, and
  // the extent spread over every host (round-robin placement).
  EXPECT_GT(client->image().BucketCount(), kHosts);
  EXPECT_GT(all->buckets_answered, kHosts);
}

TEST_F(SocketE2eTest, PipeliningKeepsManyOpsInFlight) {
  SpawnCluster();
  auto client = NewClient(2'000'000, 8);
  std::vector<uint64_t> tokens;
  for (uint64_t i = 0; i < 64; ++i) {
    const std::string v = ValueFor(i + 1);
    auto token = client->SubmitInsert(i + 1, Bytes(v.begin(), v.end()));
    ASSERT_TRUE(token.ok());
    tokens.push_back(*token);
  }
  // Tokens resolve in any order.
  for (auto it = tokens.rbegin(); it != tokens.rend(); ++it) {
    auto r = client->Await(*it);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->found);  // fresh keys: nothing replaced
  }
  EXPECT_EQ(client->inflight(), 0u);
}

TEST_F(SocketE2eTest, KilledServerYieldsUnavailableNotAHang) {
  SpawnCluster();
  auto loader = NewClient(2'000'000, 8);

  const uint64_t kOps = 200;
  auto key_of = [](uint64_t i) { return i * 31 + 11; };
  for (uint64_t i = 0; i < kOps; ++i) {
    const std::string v = ValueFor(key_of(i));
    ASSERT_TRUE(
        loader->SubmitInsert(key_of(i), Bytes(v.begin(), v.end())).ok());
  }
  ASSERT_TRUE(loader->AwaitAll().ok());

  // The probing client connects while every host is still alive, with a
  // short budget: 100ms timeout, 2 retries -> an op against a dead bucket
  // resolves in well under a second.
  auto prober = NewClient(/*timeout_us=*/100'000, /*retries=*/2,
                          /*client_id=*/1);
  ASSERT_TRUE(prober->Lookup(key_of(0)).ok());  // sanity while all alive

  // SIGKILL host 1 mid-run: no shutdown handshake, sockets die with it.
  ASSERT_EQ(::kill(pids_[1], SIGKILL), 0);
  ASSERT_EQ(::waitpid(pids_[1], nullptr, 0), pids_[1]);
  pids_[1] = -1;

  // Probe keys until both outcomes appear: ops on surviving hosts still
  // answer correctly, ops on the dead host's buckets fail with a clean
  // Unavailable from retry exhaustion.
  size_t ok_count = 0;
  size_t unavailable_count = 0;
  for (uint64_t i = 0; i < kOps && (ok_count == 0 || unavailable_count == 0);
       ++i) {
    auto got = prober->Lookup(key_of(i));
    if (got.ok()) {
      EXPECT_EQ(std::string(got->begin(), got->end()), ValueFor(key_of(i)));
      ++ok_count;
    } else {
      EXPECT_TRUE(got.status().IsUnavailable())
          << got.status().ToString();
      ++unavailable_count;
    }
  }
  EXPECT_GT(ok_count, 0u) << "surviving hosts stopped serving";
  EXPECT_GT(unavailable_count, 0u)
      << "no key of the killed host's buckets was probed";

  // A scan touches every bucket, so it must fail — but cleanly, bounded by
  // its deadline, not hang.
  auto scan = prober->Scan(0, {});
  ASSERT_FALSE(scan.ok());
  EXPECT_TRUE(scan.status().IsUnavailable()) << scan.status().ToString();

  // The client object survives the failures and keeps serving live keys.
  bool served_after = false;
  for (uint64_t i = 0; i < 10 && !served_after; ++i) {
    served_after = prober->Lookup(key_of(i)).ok();
  }
  EXPECT_TRUE(served_after);

  // Every exhausted op reported its unservable key to the coordinator
  // (kDeadSite); the coordinator's metrics dump on host 0 must show the
  // reports. Poll: the dump is periodic and the report frame travels on a
  // different connection than the probes.
  if (essdds::obs::kMetricsEnabled) {
    int64_t reports = -1;
    for (int i = 0; i < 100; ++i) {
      reports = CoordinatorCounter("coord.dead_site_reports");
      if (reports > 0) break;
      ::usleep(100'000);
    }
    EXPECT_GT(reports, 0)
        << "coordinator metrics JSON never showed a dead-site report";
  }
}

/// A power-of-two cluster: with round-robin placement (bucket % hosts),
/// whenever the host count divides 2^level, a splitting bucket b and its
/// child b + 2^level land on the SAME host (already at 2 hosts: bucket 1
/// splits to bucket 3, both on host 1, a non-coordinator). The parent's
/// kMoveRecords to the child is then a purely local hop — it never crosses
/// the network — so local delivery must materialize the child exactly as a
/// network frame would, or every moved record is silently dropped while the
/// coordinator still sees kSplitDone. The 3-host cluster above never
/// co-locates parent and child, so only this fixture covers that path.
class SocketE2ePow2Test : public SocketE2eTest {
 protected:
  size_t host_count() const override { return 2; }
};

TEST_F(SocketE2ePow2Test, CoLocatedSplitChildReceivesMovedRecords) {
  SpawnCluster();
  // Tighter budget than the 3-host tests: a dropped local hop is permanent
  // (no retry can recover it), so exhaust the exponential backoff in ~30s
  // instead of minutes when this regresses.
  auto client = NewClient(/*timeout_us=*/1'000'000, /*retries=*/5);

  sdds::LhSystem baseline(ServerOptions());
  InstallFilters(baseline);
  sdds::LhClient* ref = baseline.NewClient();

  // Capacity 8, 300 keys: splits run well past bucket 3, so several
  // same-host parent->child record moves happen on both hosts.
  const uint64_t kOps = 300;
  auto key_of = [](uint64_t i) { return i * 97 + 3; };
  for (uint64_t i = 0; i < kOps; ++i) {
    const std::string v = ValueFor(key_of(i));
    ASSERT_TRUE(
        client->SubmitInsert(key_of(i), Bytes(v.begin(), v.end())).ok());
    ref->Insert(key_of(i), Bytes(v.begin(), v.end()));
  }
  ASSERT_TRUE(client->AwaitAll().ok());

  // Every inserted record must still be readable — records moved on a
  // local-only split hop are exactly the ones a drop would lose.
  for (uint64_t i = 0; i < kOps; ++i) {
    auto got = client->Lookup(key_of(i));
    ASSERT_TRUE(got.ok()) << "key " << key_of(i) << " lost: "
                          << got.status().ToString();
    EXPECT_EQ(std::string(got->begin(), got->end()), ValueFor(key_of(i)));
  }

  // Match-all scan agrees with the simulator baseline record-for-record.
  auto all = client->Scan(0, {});
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  auto ref_all = ref->Scan(0, {});
  auto sorted_hits = [](std::vector<sdds::WireRecord> hits) {
    std::sort(hits.begin(), hits.end(),
              [](const auto& a, const auto& b) { return a.key < b.key; });
    return hits;
  };
  const auto got_all = sorted_hits(std::move(all->hits));
  const auto want_all = sorted_hits(std::move(ref_all.hits));
  ASSERT_EQ(got_all.size(), want_all.size());
  for (size_t i = 0; i < got_all.size(); ++i) {
    EXPECT_EQ(got_all[i].key, want_all[i].key);
    EXPECT_EQ(got_all[i].value, want_all[i].value);
  }
  // The workload really split deep enough to co-locate parent and child.
  EXPECT_GT(client->image().BucketCount(), 3u);
}

}  // namespace
}  // namespace essdds::net
