#include "workload/phonebook.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "stats/chi_squared.h"
#include "stats/ngram.h"
#include "workload/names.h"

namespace essdds::workload {
namespace {

TEST(NamesTest, CorporaAreNonEmptyAndWeighted) {
  EXPECT_GT(Surnames().size(), 100u);
  EXPECT_GT(GivenNames().size(), 50u);
  EXPECT_GT(TotalWeight(Surnames()), 0u);
  for (const WeightedName& w : Surnames()) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_GT(w.weight, 0u);
    for (char c : w.name) {
      EXPECT_TRUE((c >= 'A' && c <= 'Z') || c == ' ' || c == '\'' || c == '-')
          << w.name;
    }
  }
}

TEST(NamesTest, ShortAsianSurnamesPresent) {
  // The paper's false-positive analysis hinges on these.
  std::set<std::string_view> names;
  for (const WeightedName& w : Surnames()) names.insert(w.name);
  for (std::string_view expect :
       {"YU", "OU", "IP", "WU", "LI", "LE", "WOO", "KIM", "LEE", "MAI",
        "LIM", "MAK", "LEW", "KAY", "SEE"}) {
    EXPECT_TRUE(names.contains(expect)) << expect;
  }
}

TEST(PhonebookTest, FormattedLineMatchesFigure4Shape) {
  PhoneRecord rec{.rid = 4154090271, .name = "ADRIAN CORTEZ",
                  .phone = "415-409-0271"};
  const std::string line = rec.FormattedLine();
  EXPECT_EQ(line, "ADRIAN CORTEZ%%%%%%%%%%%%%415-409-0271$$");
  EXPECT_EQ(line.substr(line.size() - 2), "$$");
}

TEST(PhonebookTest, ParseRoundTrip) {
  PhonebookGenerator gen(1);
  for (uint64_t i = 0; i < 200; ++i) {
    PhoneRecord rec = gen.GenerateOne(i);
    auto parsed = ParseFormattedLine(rec.FormattedLine());
    ASSERT_TRUE(parsed.ok()) << rec.FormattedLine();
    EXPECT_EQ(parsed->name, rec.name);
    EXPECT_EQ(parsed->phone, rec.phone);
    EXPECT_EQ(parsed->rid, rec.rid);
  }
}

TEST(PhonebookTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseFormattedLine("").ok());
  EXPECT_FALSE(ParseFormattedLine("NO TRAILER").ok());
  EXPECT_FALSE(ParseFormattedLine("X$$").ok());
  EXPECT_FALSE(ParseFormattedLine("NAME%%%%415~409~0000$$").ok());
  EXPECT_FALSE(ParseFormattedLine("%%%%%%%%%%%%%%415-409-0000$$").ok());
}

TEST(PhonebookTest, GenerationIsDeterministic) {
  PhonebookGenerator a(42), b(42);
  auto ra = a.Generate(500);
  auto rb = b.Generate(500);
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].name, rb[i].name);
    EXPECT_EQ(ra[i].rid, rb[i].rid);
  }
}

TEST(PhonebookTest, RidsAreUnique) {
  PhonebookGenerator gen(7);
  auto records = gen.Generate(30000);
  std::set<uint64_t> rids;
  for (const auto& r : records) rids.insert(r.rid);
  EXPECT_EQ(rids.size(), records.size());
}

TEST(PhonebookTest, NamesAreCapitalizedAndPlausible) {
  PhonebookGenerator gen(3);
  auto records = gen.Generate(1000);
  for (const auto& r : records) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_TRUE(r.name.find(' ') != std::string::npos) << r.name;
    for (char c : r.name) {
      EXPECT_TRUE((c >= 'A' && c <= 'Z') || c == ' ' || c == '&' ||
                  c == '\'' || c == '-')
          << r.name;
    }
  }
}

TEST(PhonebookTest, SurnameOfExtractsFirstToken) {
  PhoneRecord rec{.rid = 1, .name = "SCHWARZ THOMAS J", .phone = ""};
  EXPECT_EQ(SurnameOf(rec), "SCHWARZ");
}

TEST(PhonebookTest, SampleRecordsDistinctAndDeterministic) {
  PhonebookGenerator gen(5);
  auto corpus = gen.Generate(5000);
  auto s1 = SampleRecords(corpus, 1000, 99);
  auto s2 = SampleRecords(corpus, 1000, 99);
  ASSERT_EQ(s1.size(), 1000u);
  std::set<const PhoneRecord*> unique(s1.begin(), s1.end());
  EXPECT_EQ(unique.size(), 1000u);
  EXPECT_EQ(s1, s2);
}

TEST(PhonebookTest, LetterFrequenciesMatchPaperProfile) {
  // Table 1 of the paper: A, E, N, R, I, O are the most common letters,
  // with A around 11% and all six between ~5%% and ~12%.
  PhonebookGenerator gen(11);
  auto records = gen.Generate(20000);
  stats::NgramCounter c(1, 256);
  uint64_t letter_total = 0;
  for (const auto& r : records) {
    for (char ch : r.name) {
      if (ch >= 'A' && ch <= 'Z') {
        uint32_t sym = static_cast<uint32_t>(ch);
        c.Add(std::span<const uint32_t>(&sym, 1));
        ++letter_total;
      }
    }
  }
  auto frac = [&](char ch) {
    return static_cast<double>(c.CountOf(static_cast<uint64_t>(ch))) /
           static_cast<double>(letter_total);
  };
  for (char ch : {'A', 'E', 'N', 'I', 'O'}) {
    EXPECT_GT(frac(ch), 0.04) << ch;
    EXPECT_LT(frac(ch), 0.16) << ch;
  }
  // Rare letters stay rare.
  EXPECT_LT(frac('Q'), 0.01);
  EXPECT_LT(frac('X'), 0.01);
}

TEST(PhonebookTest, ChiSquaredIsLargeLikeTable1) {
  // The plaintext directory is wildly non-uniform; over the 27-letter
  // (A-Z + space) alphabet the chi2 must be enormous, as in Table 1.
  PhonebookGenerator gen(13);
  auto records = gen.Generate(10000);
  stats::NgramCounter c(1, 27);
  for (const auto& r : records) {
    std::vector<uint32_t> syms;
    for (char ch : r.name) {
      if (ch >= 'A' && ch <= 'Z') {
        syms.push_back(static_cast<uint32_t>(ch - 'A'));
      } else if (ch == ' ') {
        syms.push_back(26);
      }
    }
    c.Add(syms);
  }
  EXPECT_GT(stats::ChiSquaredUniform(c), 10000.0);
}

}  // namespace
}  // namespace essdds::workload
