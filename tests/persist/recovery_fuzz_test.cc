#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "persist/bucket_log.h"
#include "sdds/message.h"
#include "tests/util/fuzz_util.h"
#include "util/bytes.h"

// The replay path is a parser of attacker-visible bytes (the disk image),
// so it carries the repo-wide wire guarantee: junk in -> a flagged tail
// out, zero crashes, zero over-allocation. On top of that it must be
// prefix-consistent — recovering from any torn prefix yields exactly the
// state of the frames that prefix fully contains, and re-replaying the
// valid prefix it reports is clean and idempotent.

namespace essdds::persist {
namespace {

#if ESSDDS_PERSIST

using test::RandomBytesTrials;
using test::SingleByteMutations;
using test::TruncationSweep;

class RecoveryFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("essdds_fuzz_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    key_ = Bytes(16, 0x33);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Builds a healthy log image exercising every record type, returning its
  /// bytes and the frame-boundary offsets (36-byte header,
  /// end-of-frame-1, ...).
  Bytes BuildImage(std::vector<uint64_t>* boundaries) {
    const std::string path = dir_ + "/bucket-0.log";
    auto log = BucketLog::Open(path, 0, 0, ByteSpan(key_), /*fresh=*/true,
                               64 * 1024, nullptr);
    EXPECT_NE(log, nullptr);
    boundaries->push_back(log->file_bytes());  // header
    auto mark = [&] { boundaries->push_back(log->file_bytes()); };

    EXPECT_TRUE(log->AppendPut(1, ToBytes("alpha")));
    mark();
    EXPECT_TRUE(log->AppendPut(2, ToBytes("beta-with-longer-payload")));
    mark();
    std::vector<sdds::WireRecord> bulk;
    bulk.push_back({7, ToBytes("gamma")});
    bulk.push_back({8, ToBytes("delta")});
    EXPECT_TRUE(log->AppendBulkPut(1, bulk));
    mark();
    EXPECT_TRUE(log->AppendEraseBulk(2, {2, 42}));
    mark();
    EXPECT_TRUE(log->AppendErase(7));
    mark();

    Bytes image;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr);
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      image.insert(image.end(), buf, buf + n);
    }
    std::fclose(f);
    return image;
  }

  std::string dir_;
  Bytes key_;
};

TEST_F(RecoveryFuzzTest, RandomBytesNeverCrash) {
  RandomBytesTrials(/*seed=*/101, /*trials=*/400, /*max_len=*/512,
                    [&](ByteSpan junk) {
                      const ReplayResult r =
                          BucketLog::ReplayBytes(junk, ByteSpan(key_));
                      // A random buffer essentially never carries a valid
                      // header CRC; whatever happens, the bound holds.
                      EXPECT_LE(r.valid_bytes, junk.size());
                    });
}

TEST_F(RecoveryFuzzTest, EveryTruncationRecoversConsistently) {
  std::vector<uint64_t> boundaries;
  const Bytes image = BuildImage(&boundaries);
  const ReplayResult full = BucketLog::ReplayBytes(ByteSpan(image), ByteSpan(key_));
  ASSERT_EQ(full.tail, ReplayResult::Tail::kClean);
  ASSERT_EQ(full.valid_bytes, image.size());

  // Expected state after each whole frame, computed by replaying each
  // boundary-aligned prefix once.
  std::map<uint64_t, ReplayResult> at_boundary;
  for (uint64_t b : boundaries) {
    at_boundary[b] =
        BucketLog::ReplayBytes(ByteSpan(image.data(), b), ByteSpan(key_));
    ASSERT_EQ(at_boundary[b].tail, ReplayResult::Tail::kClean)
        << "boundary " << b;
  }

  TruncationSweep(ByteSpan(image), [&](ByteSpan prefix, size_t len) {
    const ReplayResult r = BucketLog::ReplayBytes(prefix, ByteSpan(key_));
    EXPECT_LE(r.valid_bytes, len);

    // Find the last frame boundary at or below the cut.
    uint64_t floor = 0;
    for (uint64_t b : boundaries) {
      if (b <= len) floor = b;
    }
    if (len < 36) {
      // Header itself torn: flagged, nothing recovered.
      EXPECT_NE(r.tail, ReplayResult::Tail::kClean) << "cut " << len;
      EXPECT_EQ(r.valid_bytes, 0u) << "cut " << len;
      EXPECT_TRUE(r.records.empty()) << "cut " << len;
      return;
    }
    // The replay must recover exactly the frames below the cut...
    EXPECT_EQ(r.valid_bytes, floor) << "cut " << len;
    EXPECT_EQ(r.records, at_boundary[floor].records) << "cut " << len;
    EXPECT_EQ(r.level, at_boundary[floor].level) << "cut " << len;
    // ...and flag (never silently skip) the partial tail, unless the cut
    // fell exactly on a frame boundary.
    if (len == floor) {
      EXPECT_EQ(r.tail, ReplayResult::Tail::kClean) << "cut " << len;
    } else {
      EXPECT_EQ(r.tail, ReplayResult::Tail::kTorn) << "cut " << len;
    }

    // Idempotence: re-replaying the reported valid prefix is clean and
    // yields the same state — what the adopt-on-open repair relies on.
    const ReplayResult again = BucketLog::ReplayBytes(
        ByteSpan(image.data(), r.valid_bytes), ByteSpan(key_));
    EXPECT_EQ(again.tail, ReplayResult::Tail::kClean) << "cut " << len;
    EXPECT_EQ(again.records, r.records) << "cut " << len;
  });
}

TEST_F(RecoveryFuzzTest, SingleByteMutationsNeverCrashAndNeverGoUnnoticed) {
  std::vector<uint64_t> boundaries;
  const Bytes image = BuildImage(&boundaries);
  const ReplayResult full =
      BucketLog::ReplayBytes(ByteSpan(image), ByteSpan(key_));
  ASSERT_EQ(full.tail, ReplayResult::Tail::kClean);

  SingleByteMutations(/*seed=*/202, ByteSpan(image),
                      [&](ByteSpan mutated, size_t pos) {
    const ReplayResult r = BucketLog::ReplayBytes(mutated, ByteSpan(key_));
    EXPECT_LE(r.valid_bytes, mutated.size()) << "mutation at " << pos;
    if (mutated[pos] == image[pos]) return;  // mutation was a no-op
    // Every byte of the image is covered by the header CRC or a frame CRC
    // (or is a length field whose damage truncates the frame walk), so a
    // real mutation must surface: either the tail is flagged or the replay
    // stopped short of the full image. It must never read as a clean,
    // complete log with silently different content.
    const bool noticed = r.tail != ReplayResult::Tail::kClean ||
                         r.valid_bytes < mutated.size();
    EXPECT_TRUE(noticed) << "mutation at " << pos << " went unnoticed";
    if (!noticed) {
      EXPECT_EQ(r.records, full.records) << "mutation at " << pos;
    }
  });
}

TEST_F(RecoveryFuzzTest, TornWriteImagesFromFaultHookReplaySafely) {
  // Cross-check the fault hook against the fuzz harness: images produced by
  // armed tears (both modes, several offsets) replay without crashing and
  // always flag their tails.
  for (uint64_t offset : {37u, 48u, 65u, 88u, 119u}) {
    for (bool corrupt : {false, true}) {
      const std::string name =
          dir_ + "/torn-" + std::to_string(offset) + (corrupt ? "c" : "t");
      auto log = BucketLog::Open(name, 0, 0, ByteSpan(key_), true, 64 * 1024,
                                 nullptr);
      ASSERT_NE(log, nullptr);
      log->ArmTear({.at_cumulative_byte = offset, .corrupt = corrupt});
      uint64_t k = 0;
      while (log->AppendPut(k, ToBytes("filler-" + std::to_string(k)))) ++k;
      EXPECT_TRUE(log->crashed());

      const ReplayResult r = BucketLog::ReplayFile(name, ByteSpan(key_));
      // The acked prefix always comes back intact. A corrupt-mode tear is
      // always flagged — kCorrupt when the damage hits CRC-covered bytes,
      // kTorn when it hits a length field and derails the frame walk. A
      // truncating tear is flagged unless it landed exactly on a frame
      // boundary, where the file is indistinguishable from a clean shutdown.
      EXPECT_EQ(r.records.size(), k)
          << "acked frames lost or phantom frames appeared";
      if (corrupt) {
        EXPECT_NE(r.tail, ReplayResult::Tail::kClean) << "offset " << offset;
      } else {
        EXPECT_TRUE(r.tail == ReplayResult::Tail::kTorn ||
                    r.valid_bytes == std::filesystem::file_size(name))
            << "offset " << offset << ": partial tail went unflagged";
      }
    }
  }
}

#endif  // ESSDDS_PERSIST

}  // namespace
}  // namespace essdds::persist
