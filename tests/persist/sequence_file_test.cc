#include "persist/sequence_file.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

namespace essdds::persist {
namespace {

#if ESSDDS_PERSIST

class SequenceFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("seq-" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(SequenceFileTest, FreshDirectoryStartsAtFloor) {
  auto sf = SequenceFile::Open(dir_, 0);
  ASSERT_TRUE(sf.ok()) << sf.status().ToString();
  EXPECT_EQ(sf->Next(), 0u);
  EXPECT_EQ(sf->Next(), 1u);
  EXPECT_EQ(sf->Next(), 2u);
}

TEST_F(SequenceFileTest, ReopenNeverRepeatsAValue) {
  std::set<uint64_t> seen;
  // Five "process lifetimes" over the same directory, each handing out a
  // few values and then dying without any clean shutdown step (the class
  // has none — durability must not depend on one).
  for (int run = 0; run < 5; ++run) {
    auto sf = SequenceFile::Open(dir_, 0);
    ASSERT_TRUE(sf.ok());
    for (int i = 0; i < 7; ++i) {
      const uint64_t v = sf->Next();
      EXPECT_TRUE(seen.insert(v).second) << "value " << v << " repeated";
    }
  }
}

TEST_F(SequenceFileTest, FsyncModePersistsAndExtends) {
  // fsync=true routes every ceiling rewrite through fsync (tmp file before
  // the rename, directory after). Power loss itself cannot be simulated in
  // a unit test; this covers the synced code path end to end: initial
  // reservation, crossing a batch boundary, and restart monotonicity.
  auto sf = SequenceFile::Open(dir_, 0, /*fsync=*/true);
  ASSERT_TRUE(sf.ok()) << sf.status().ToString();
  uint64_t last = 0;
  for (uint64_t i = 0; i < SequenceFile::kBatch + 5; ++i) last = sf->Next();
  EXPECT_GE(sf->ceiling(), last);
  auto again = SequenceFile::Open(dir_, 0, /*fsync=*/true);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again->Next(), last);
}

TEST_F(SequenceFileTest, BatchExhaustionExtendsReservation) {
  auto sf = SequenceFile::Open(dir_, 0);
  ASSERT_TRUE(sf.ok());
  uint64_t last = 0;
  // Cross the first reservation boundary; values stay strictly increasing.
  for (uint64_t i = 0; i < SequenceFile::kBatch + 10; ++i) {
    const uint64_t v = sf->Next();
    if (i > 0) EXPECT_GT(v, last);
    last = v;
  }
  EXPECT_GE(sf->ceiling(), last);

  // A restart after crossing the boundary still lands above everything.
  auto again = SequenceFile::Open(dir_, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again->Next(), last);
}

TEST_F(SequenceFileTest, LegacyFloorAppliesOnlyWithoutFile) {
  // A directory with pre-counter data: the caller passes kLegacyFloor and
  // the first run starts there.
  auto sf = SequenceFile::Open(dir_, SequenceFile::kLegacyFloor);
  ASSERT_TRUE(sf.ok());
  EXPECT_EQ(sf->Next(), SequenceFile::kLegacyFloor);

  // Once the file exists it is authoritative; a later floor is ignored.
  auto again = SequenceFile::Open(dir_, SequenceFile::kLegacyFloor * 2);
  ASSERT_TRUE(again.ok());
  const uint64_t v = again->Next();
  EXPECT_GT(v, SequenceFile::kLegacyFloor);
  EXPECT_LT(v, SequenceFile::kLegacyFloor * 2);
}

TEST_F(SequenceFileTest, CorruptFileIsAnErrorNotARestart) {
  {
    auto sf = SequenceFile::Open(dir_, 0);
    ASSERT_TRUE(sf.ok());
    sf->Next();
  }
  const std::string path =
      (std::filesystem::path(dir_) / "insert-sequence").string();

  // Flip one byte of the ceiling: checksum mismatch.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(8);
    char b;
    f.seekg(8);
    f.get(b);
    f.seekp(8);
    f.put(static_cast<char>(b ^ 0x01));
  }
  EXPECT_FALSE(SequenceFile::Open(dir_, 0).ok());

  // Truncate: wrong size.
  std::filesystem::resize_file(path, 5);
  EXPECT_FALSE(SequenceFile::Open(dir_, 0).ok());

  // Empty: wrong size too (never silently restart from 0).
  std::filesystem::resize_file(path, 0);
  EXPECT_FALSE(SequenceFile::Open(dir_, 0).ok());
}

TEST_F(SequenceFileTest, NoStrayTmpAfterOpen) {
  auto sf = SequenceFile::Open(dir_, 0);
  ASSERT_TRUE(sf.ok());
  EXPECT_FALSE(std::filesystem::exists(
      std::filesystem::path(dir_) / "insert-sequence.tmp"));
}

#else  // !ESSDDS_PERSIST

TEST(SequenceFileTest, PersistOffIsRamOnly) {
  auto sf = SequenceFile::Open("/nonexistent/never-touched", 5);
  ASSERT_TRUE(sf.ok());
  EXPECT_EQ(sf->Next(), 5u);
  EXPECT_EQ(sf->Next(), 6u);
}

#endif  // ESSDDS_PERSIST

}  // namespace
}  // namespace essdds::persist
