#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "persist/bucket_log.h"
#include "persist/persist_manager.h"
#include "sdds/lh_server.h"
#include "util/random.h"

// Crash-point sweep: a scripted workload runs against one log-backed bucket
// server while a fault hook tears the log's write stream at a seeded byte
// offset — truncating mid-frame or flipping a bit — and the site halts
// unacknowledged, exactly like a killed process. A restarted site must then
// recover byte-identically to the last acked pre-crash state: the record
// map, the ColumnStore mirror, and the scan results. The sweep spreads the
// tear offsets across everything the log ever writes (header, frames, and —
// in the small-floor configuration — checkpoint rewrites).

namespace essdds::sdds {
namespace {

using persist::BucketLog;
using persist::PersistManager;

#if ESSDDS_PERSIST

class AckSink : public Site {
 public:
  void OnMessage(Message& msg, Network& net) override {
    (void)net;
    received.push_back(std::move(msg));
  }
  std::vector<Message> received;
};

/// A single-bucket world: every address routes to bucket 0, the coordinator
/// is a sink (capacity is huge, so no overflow fires anyway), and the one
/// installed filter matches everything.
class OneBucketRuntime : public LhRuntime {
 public:
  OneBucketRuntime() {
    options_.bucket_capacity = size_t{1} << 20;
    filter_ = MakeScanFilter(
        [](uint64_t, ByteSpan, ByteSpan) { return true; });
  }

  SiteId SiteOfBucket(uint64_t) const override { return server_site; }
  bool BucketExists(uint64_t bucket) const override { return bucket == 0; }
  SiteId CoordinatorSite() const override { return sink_site; }
  SiteId CreateBucket(uint64_t, uint32_t) override {
    ADD_FAILURE() << "no splits in this harness";
    return kInvalidSite;
  }
  const ScanFilter& FilterById(uint64_t) const override { return *filter_; }
  const LhOptions& options() const override { return options_; }
  void RetireLastBucket() override {}

  SiteId server_site = kInvalidSite;
  SiteId sink_site = kInvalidSite;

 private:
  LhOptions options_;
  std::unique_ptr<ScanFilter> filter_;
};

struct Op {
  MsgType type = MsgType::kInsert;
  uint64_t key = 0;
  Bytes value;
};

/// The scripted workload, generated once: a deterministic mix of fresh
/// inserts, overwrites, deletes of live keys, and deletes of absent keys.
std::vector<Op> BuildScript(uint64_t seed, size_t ops) {
  Rng rng(seed);
  std::vector<Op> script;
  std::vector<uint64_t> live;
  for (size_t i = 0; i < ops; ++i) {
    Op op;
    const uint64_t roll = rng.Uniform(10);
    if (roll < 5 || live.empty()) {
      op.type = MsgType::kInsert;
      op.key = rng.Next();
      live.push_back(op.key);
    } else if (roll < 7) {
      op.type = MsgType::kInsert;  // overwrite
      op.key = live[rng.Uniform(live.size())];
    } else if (roll < 9) {
      op.type = MsgType::kDelete;
      const size_t at = rng.Uniform(live.size());
      op.key = live[at];
      live.erase(live.begin() + static_cast<long>(at));
    } else {
      op.type = MsgType::kDelete;  // absent key
      op.key = rng.Next() | 1;
    }
    if (op.type == MsgType::kInsert) {
      op.value = ToBytes("record-" + std::to_string(op.key) + "-");
      const size_t pad = rng.Uniform(32);
      op.value.insert(op.value.end(), pad, static_cast<uint8_t>(rng.Next()));
    }
    script.push_back(std::move(op));
  }
  return script;
}

struct RunOutcome {
  std::map<uint64_t, Bytes> acked;  // state as of the last acknowledged op
  bool halted = false;
  uint64_t cumulative_bytes = 0;  // total bytes the log ever wrote
};

/// Runs the script against a fresh log-backed bucket in `dir`, optionally
/// arming the tear. Tracks the acked state: an op counts only when its ack
/// came back; once the site halts, nothing further applies.
RunOutcome RunWorkload(const std::string& dir, const std::vector<Op>& script,
                       size_t checkpoint_min, const BucketLog::TearSpec* tear) {
  PersistManager pm({.dir = dir, .checkpoint_min_bytes = checkpoint_min},
                    nullptr);
  SimNetwork net;
  OneBucketRuntime rt;
  AckSink sink;
  rt.sink_site = net.Register(&sink);
  LhBucketServer server(&rt, rt.options(), /*bucket_number=*/0, /*level=*/0);
  rt.server_site = net.Register(&server);
  server.set_site(rt.server_site);
  BucketLog* log = pm.OpenBucketLog(0, 0, /*fresh=*/true);
  EXPECT_NE(log, nullptr);
  server.AttachLog(log);
  if (tear != nullptr) log->ArmTear(*tear);

  RunOutcome out;
  uint64_t request_id = 1;
  for (const Op& op : script) {
    Message m;
    m.type = op.type;
    m.from = rt.sink_site;
    m.reply_to = rt.sink_site;
    m.to = rt.server_site;
    m.request_id = request_id++;
    m.key = op.key;
    m.value = op.value;
    const size_t acks_before = sink.received.size();
    net.Send(std::move(m));
    if (sink.received.size() == acks_before) {
      // No ack: the append tore and the site crashed. Everything from here
      // on is dropped silently.
      EXPECT_TRUE(server.halted());
      out.halted = true;
      break;
    }
    if (op.type == MsgType::kInsert) {
      out.acked[op.key] = op.value;
    } else {
      out.acked.erase(op.key);
    }
  }
  // Consistency of the harness itself: an un-torn run acks everything.
  if (tear == nullptr) {
    EXPECT_FALSE(out.halted);
  }
  out.cumulative_bytes = log->cumulative_bytes_written();
  return out;
}

/// Restarts over `dir` and asserts the recovered bucket matches `want`
/// byte-for-byte: record map, ColumnStore mirror, and scan results.
void VerifyRecovery(const std::string& dir,
                    const std::map<uint64_t, Bytes>& want,
                    const std::string& label) {
  PersistManager pm({.dir = dir}, nullptr);
  std::vector<PersistManager::RecoveredBucket> live = pm.Recover();
  std::map<uint64_t, Bytes> recovered;
  if (live.empty()) {
    // Only legal when nothing was ever acked (the tear hit the file header
    // before the first append succeeded).
    EXPECT_TRUE(want.empty()) << label << ": acked records vanished";
  } else {
    ASSERT_EQ(live.size(), 1u) << label;
    recovered = std::move(live[0].records);
  }
  EXPECT_EQ(recovered, want) << label << ": record map differs";

  // Restore a server from the replayed state and check the lockstep mirror
  // plus what a scan actually returns.
  SimNetwork net;
  OneBucketRuntime rt;
  AckSink sink;
  rt.sink_site = net.Register(&sink);
  LhBucketServer server(&rt, rt.options(), 0, live.empty() ? 0 : live[0].level);
  rt.server_site = net.Register(&server);
  server.set_site(rt.server_site);
  server.RestoreRecovered(recovered);
  EXPECT_TRUE(server.columns().MirrorsMap(server.records()))
      << label << ": ColumnStore out of lockstep after recovery";

  Message scan;
  scan.type = MsgType::kScan;
  scan.from = rt.sink_site;
  scan.reply_to = rt.sink_site;
  scan.to = rt.server_site;
  scan.request_id = 1;
  scan.filter_id = 0;
  scan.assumed_level = server.level();
  net.Send(std::move(scan));
  ASSERT_EQ(sink.received.size(), 1u) << label;
  const Message& reply = sink.received[0];
  ASSERT_EQ(reply.type, MsgType::kScanReply) << label;
  ASSERT_EQ(reply.records.size(), want.size()) << label << ": scan hit count";
  auto it = want.begin();
  for (size_t i = 0; i < reply.records.size(); ++i, ++it) {
    EXPECT_EQ(reply.records[i].key, it->first) << label << " hit " << i;
    EXPECT_EQ(reply.records[i].value, it->second) << label << " hit " << i;
  }
}

class CrashPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::path(::testing::TempDir()) /
             ("essdds_crash_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    std::filesystem::remove_all(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string Dir(const std::string& name) {
    const std::string d = base_ + "/" + name;
    std::filesystem::create_directories(d);
    return d;
  }

  /// One sweep: `points` tears spread across the full write stream of the
  /// dry run, alternating truncate and bit-flip, each verified to recover
  /// exactly the acked prefix.
  void Sweep(size_t checkpoint_min, size_t points, uint64_t seed) {
    const std::vector<Op> script = BuildScript(seed, /*ops=*/140);
    const RunOutcome dry =
        RunWorkload(Dir("dry"), script, checkpoint_min, nullptr);
    ASSERT_GT(dry.cumulative_bytes, 0u);

    Rng jitter(seed ^ 0x9E3779B97F4A7C15ull);
    size_t halted_runs = 0;
    for (size_t i = 0; i < points; ++i) {
      BucketLog::TearSpec spec;
      spec.at_cumulative_byte =
          dry.cumulative_bytes * i / points + jitter.Uniform(7);
      spec.corrupt = (i % 2) == 1;
      const std::string label =
          "tear@" + std::to_string(spec.at_cumulative_byte) +
          (spec.corrupt ? "/corrupt" : "/truncate") + " ckpt_min=" +
          std::to_string(checkpoint_min);
      const std::string dir = Dir("pt" + std::to_string(i));
      const RunOutcome torn = RunWorkload(dir, script, checkpoint_min, &spec);
      if (torn.halted) ++halted_runs;
      VerifyRecovery(dir, torn.acked, label);
      std::filesystem::remove_all(dir);
    }
    // The sweep must actually hit the write stream, not fly past it.
    EXPECT_GT(halted_runs, points * 3 / 4)
        << "tear offsets mostly missed the write stream";
  }

  std::string base_;
};

TEST_F(CrashPointTest, SweepWithoutCheckpoints) {
  // 64 KiB floor: this workload never checkpoints, so every tear lands in
  // the header or a plain appended frame.
  Sweep(/*checkpoint_min=*/64 * 1024, /*points=*/30, /*seed=*/11);
}

TEST_F(CrashPointTest, SweepThroughCheckpointRewrites) {
  // A tiny floor makes the log rewrite itself continually: many tears land
  // inside a checkpoint's tmp-file write, which must leave the old log
  // intact (the rename never happens).
  Sweep(/*checkpoint_min=*/192, /*points=*/30, /*seed=*/13);
}

TEST_F(CrashPointTest, TearDuringCheckpointKeepsOldLogIntact) {
  const std::vector<Op> script = BuildScript(/*seed=*/17, /*ops=*/60);
  const std::string dry_dir = Dir("dry");
  PersistManager pm({.dir = dry_dir, .checkpoint_min_bytes = 192}, nullptr);
  BucketLog* log = pm.OpenBucketLog(0, 0, /*fresh=*/true);
  ASSERT_NE(log, nullptr);

  // Build up some acked state, then force a checkpoint whose write tears.
  std::map<uint64_t, Bytes> state;
  for (uint64_t k = 0; k < 12; ++k) {
    state[k] = ToBytes("stable-" + std::to_string(k));
    ASSERT_TRUE(log->AppendPut(k, ByteSpan(state[k])));
  }
  log->ArmTear({.at_cumulative_byte = log->cumulative_bytes_written() + 40,
                .corrupt = false});
  EXPECT_FALSE(log->Checkpoint(0, false, state));
  EXPECT_TRUE(log->crashed());

  // The old log (with every acked frame) is what recovery sees; the torn
  // .tmp is swept.
  VerifyRecovery(dry_dir, state, "tear inside checkpoint tmp write");
  EXPECT_FALSE(std::filesystem::exists(pm.LogPath(0) + ".tmp"));
}

#endif  // ESSDDS_PERSIST

}  // namespace
}  // namespace essdds::sdds
