#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "persist/bucket_log.h"
#include "persist/persist_manager.h"
#include "sdds/lh_server.h"
#include "sdds/lh_system.h"
#include "util/random.h"

// Crash-point sweep: a scripted workload runs against one log-backed bucket
// server while a fault hook tears the log's write stream at a seeded byte
// offset — truncating mid-frame or flipping a bit — and the site halts
// unacknowledged, exactly like a killed process. A restarted site must then
// recover byte-identically to the last acked pre-crash state: the record
// map, the ColumnStore mirror, and the scan results. The sweep spreads the
// tear offsets across everything the log ever writes (header, frames, and —
// in the small-floor configuration — checkpoint rewrites).

namespace essdds::sdds {
namespace {

using persist::BucketLog;
using persist::PersistManager;

#if ESSDDS_PERSIST

class AckSink : public Site {
 public:
  void OnMessage(Message& msg, Network& net) override {
    (void)net;
    received.push_back(std::move(msg));
  }
  std::vector<Message> received;
};

/// A single-bucket world: every address routes to bucket 0, the coordinator
/// is a sink (capacity is huge, so no overflow fires anyway), and the one
/// installed filter matches everything.
class OneBucketRuntime : public LhRuntime {
 public:
  OneBucketRuntime() {
    options_.bucket_capacity = size_t{1} << 20;
    filter_ = MakeScanFilter(
        [](uint64_t, ByteSpan, ByteSpan) { return true; });
  }

  SiteId SiteOfBucket(uint64_t) const override { return server_site; }
  bool BucketExists(uint64_t bucket) const override { return bucket == 0; }
  SiteId CoordinatorSite() const override { return sink_site; }
  SiteId CreateBucket(uint64_t, uint32_t) override {
    ADD_FAILURE() << "no splits in this harness";
    return kInvalidSite;
  }
  const ScanFilter& FilterById(uint64_t) const override { return *filter_; }
  const LhOptions& options() const override { return options_; }
  void RetireLastBucket() override {}

  SiteId server_site = kInvalidSite;
  SiteId sink_site = kInvalidSite;

 private:
  LhOptions options_;
  std::unique_ptr<ScanFilter> filter_;
};

struct Op {
  MsgType type = MsgType::kInsert;
  uint64_t key = 0;
  Bytes value;
};

/// The scripted workload, generated once: a deterministic mix of fresh
/// inserts, overwrites, deletes of live keys, and deletes of absent keys.
std::vector<Op> BuildScript(uint64_t seed, size_t ops) {
  Rng rng(seed);
  std::vector<Op> script;
  std::vector<uint64_t> live;
  for (size_t i = 0; i < ops; ++i) {
    Op op;
    const uint64_t roll = rng.Uniform(10);
    if (roll < 5 || live.empty()) {
      op.type = MsgType::kInsert;
      op.key = rng.Next();
      live.push_back(op.key);
    } else if (roll < 7) {
      op.type = MsgType::kInsert;  // overwrite
      op.key = live[rng.Uniform(live.size())];
    } else if (roll < 9) {
      op.type = MsgType::kDelete;
      const size_t at = rng.Uniform(live.size());
      op.key = live[at];
      live.erase(live.begin() + static_cast<long>(at));
    } else {
      op.type = MsgType::kDelete;  // absent key
      op.key = rng.Next() | 1;
    }
    if (op.type == MsgType::kInsert) {
      op.value = ToBytes("record-" + std::to_string(op.key) + "-");
      const size_t pad = rng.Uniform(32);
      op.value.insert(op.value.end(), pad, static_cast<uint8_t>(rng.Next()));
    }
    script.push_back(std::move(op));
  }
  return script;
}

struct RunOutcome {
  std::map<uint64_t, Bytes> acked;  // state as of the last acknowledged op
  bool halted = false;
  uint64_t cumulative_bytes = 0;  // total bytes the log ever wrote
};

/// Runs the script against a fresh log-backed bucket in `dir`, optionally
/// arming the tear. Tracks the acked state: an op counts only when its ack
/// came back; once the site halts, nothing further applies.
RunOutcome RunWorkload(const std::string& dir, const std::vector<Op>& script,
                       size_t checkpoint_min, const BucketLog::TearSpec* tear) {
  PersistManager pm({.dir = dir, .checkpoint_min_bytes = checkpoint_min},
                    nullptr);
  SimNetwork net;
  OneBucketRuntime rt;
  AckSink sink;
  rt.sink_site = net.Register(&sink);
  LhBucketServer server(&rt, rt.options(), /*bucket_number=*/0, /*level=*/0);
  rt.server_site = net.Register(&server);
  server.set_site(rt.server_site);
  BucketLog* log = pm.OpenBucketLog(0, 0, /*fresh=*/true);
  EXPECT_NE(log, nullptr);
  server.AttachLog(log);
  if (tear != nullptr) log->ArmTear(*tear);

  RunOutcome out;
  uint64_t request_id = 1;
  for (const Op& op : script) {
    Message m;
    m.type = op.type;
    m.from = rt.sink_site;
    m.reply_to = rt.sink_site;
    m.to = rt.server_site;
    m.request_id = request_id++;
    m.key = op.key;
    m.value = op.value;
    const size_t acks_before = sink.received.size();
    net.Send(std::move(m));
    if (sink.received.size() == acks_before) {
      // No ack: the append tore and the site crashed. Everything from here
      // on is dropped silently.
      EXPECT_TRUE(server.halted());
      out.halted = true;
      break;
    }
    if (op.type == MsgType::kInsert) {
      out.acked[op.key] = op.value;
    } else {
      out.acked.erase(op.key);
    }
  }
  // Consistency of the harness itself: an un-torn run acks everything.
  if (tear == nullptr) {
    EXPECT_FALSE(out.halted);
  }
  out.cumulative_bytes = log->cumulative_bytes_written();
  return out;
}

/// Restarts over `dir` and asserts the recovered bucket matches `want`
/// byte-for-byte: record map, ColumnStore mirror, and scan results.
void VerifyRecovery(const std::string& dir,
                    const std::map<uint64_t, Bytes>& want,
                    const std::string& label) {
  PersistManager pm({.dir = dir}, nullptr);
  std::vector<PersistManager::RecoveredBucket> live = pm.Recover();
  std::map<uint64_t, Bytes> recovered;
  if (live.empty()) {
    // Only legal when nothing was ever acked (the tear hit the file header
    // before the first append succeeded).
    EXPECT_TRUE(want.empty()) << label << ": acked records vanished";
  } else {
    ASSERT_EQ(live.size(), 1u) << label;
    recovered = std::move(live[0].records);
  }
  EXPECT_EQ(recovered, want) << label << ": record map differs";

  // Restore a server from the replayed state and check the lockstep mirror
  // plus what a scan actually returns.
  SimNetwork net;
  OneBucketRuntime rt;
  AckSink sink;
  rt.sink_site = net.Register(&sink);
  LhBucketServer server(&rt, rt.options(), 0, live.empty() ? 0 : live[0].level);
  rt.server_site = net.Register(&server);
  server.set_site(rt.server_site);
  server.RestoreRecovered(recovered);
  EXPECT_TRUE(server.columns().MirrorsMap(server.records()))
      << label << ": ColumnStore out of lockstep after recovery";

  Message scan;
  scan.type = MsgType::kScan;
  scan.from = rt.sink_site;
  scan.reply_to = rt.sink_site;
  scan.to = rt.server_site;
  scan.request_id = 1;
  scan.filter_id = 0;
  scan.assumed_level = server.level();
  net.Send(std::move(scan));
  ASSERT_EQ(sink.received.size(), 1u) << label;
  const Message& reply = sink.received[0];
  ASSERT_EQ(reply.type, MsgType::kScanReply) << label;
  ASSERT_EQ(reply.records.size(), want.size()) << label << ": scan hit count";
  auto it = want.begin();
  for (size_t i = 0; i < reply.records.size(); ++i, ++it) {
    EXPECT_EQ(reply.records[i].key, it->first) << label << " hit " << i;
    EXPECT_EQ(reply.records[i].value, it->second) << label << " hit " << i;
  }
}

class CrashPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = (std::filesystem::path(::testing::TempDir()) /
             ("essdds_crash_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    std::filesystem::remove_all(base_);
  }
  void TearDown() override { std::filesystem::remove_all(base_); }

  std::string Dir(const std::string& name) {
    const std::string d = base_ + "/" + name;
    std::filesystem::create_directories(d);
    return d;
  }

  /// One sweep: `points` tears spread across the full write stream of the
  /// dry run, alternating truncate and bit-flip, each verified to recover
  /// exactly the acked prefix.
  void Sweep(size_t checkpoint_min, size_t points, uint64_t seed) {
    const std::vector<Op> script = BuildScript(seed, /*ops=*/140);
    const RunOutcome dry =
        RunWorkload(Dir("dry"), script, checkpoint_min, nullptr);
    ASSERT_GT(dry.cumulative_bytes, 0u);

    Rng jitter(seed ^ 0x9E3779B97F4A7C15ull);
    size_t halted_runs = 0;
    for (size_t i = 0; i < points; ++i) {
      BucketLog::TearSpec spec;
      spec.at_cumulative_byte =
          dry.cumulative_bytes * i / points + jitter.Uniform(7);
      spec.corrupt = (i % 2) == 1;
      const std::string label =
          "tear@" + std::to_string(spec.at_cumulative_byte) +
          (spec.corrupt ? "/corrupt" : "/truncate") + " ckpt_min=" +
          std::to_string(checkpoint_min);
      const std::string dir = Dir("pt" + std::to_string(i));
      const RunOutcome torn = RunWorkload(dir, script, checkpoint_min, &spec);
      if (torn.halted) ++halted_runs;
      VerifyRecovery(dir, torn.acked, label);
      std::filesystem::remove_all(dir);
    }
    // The sweep must actually hit the write stream, not fly past it.
    EXPECT_GT(halted_runs, points * 3 / 4)
        << "tear offsets mostly missed the write stream";
  }

  std::string base_;
};

TEST_F(CrashPointTest, SweepWithoutCheckpoints) {
  // 64 KiB floor: this workload never checkpoints, so every tear lands in
  // the header or a plain appended frame.
  Sweep(/*checkpoint_min=*/64 * 1024, /*points=*/30, /*seed=*/11);
}

TEST_F(CrashPointTest, SweepThroughCheckpointRewrites) {
  // A tiny floor makes the log rewrite itself continually: many tears land
  // inside a checkpoint's tmp-file write, which must leave the old log
  // intact (the rename never happens).
  Sweep(/*checkpoint_min=*/192, /*points=*/30, /*seed=*/13);
}

// ---- Multi-bucket sweep: crashes inside split and merge record transfers.
//
// The single-bucket harness above never restructures, so it cannot reach
// the transfer windows: the instants between the two-phase log writes of a
// split carve-out or a merge dissolution. Here a full LhSystem grows (many
// splits), shrinks (merges), and regrows (bucket-number reuse) while a tear
// is armed on ONE chosen bucket's log; the moment it fires counts as a
// whole-process SIGKILL and the workload stops. A fresh system over the
// directory must then recover every acknowledged record exactly once —
// transfers interrupted between the receiver's bulk-put and the sender's
// erase/clear leave the records in both logs, and the recovery repair rule
// must collapse the duplicate, never lose the data.

constexpr uint64_t kNoTearBucket = ~uint64_t{0};

/// LhSystem that arms a tear on one bucket's log the moment that log exists
/// — which for split-created buckets is inside the restructuring itself, so
/// low offsets land in the critical peer bulk-put write.
class TearingSystem : public LhSystem {
 public:
  TearingSystem(LhOptions options, uint64_t tear_bucket,
                const BucketLog::TearSpec* spec)
      : LhSystem(std::move(options)), tear_bucket_(tear_bucket) {
    if (spec != nullptr) {
      spec_ = *spec;
      arming_ = true;
      if (tear_bucket_ == 0) Arm(0);
    }
  }

  SiteId CreateBucket(uint64_t bucket, uint32_t level) override {
    const SiteId site = LhSystem::CreateBucket(bucket, level);
    if (arming_ && bucket == tear_bucket_) Arm(bucket);
    return site;
  }

  /// True once the armed tear killed its log — the simulated SIGKILL.
  bool TearFired() const {
    return armed_log_ != nullptr && armed_log_->crashed();
  }

 private:
  void Arm(uint64_t bucket) {
    BucketLog* log = persist()->log(bucket);
    // Bucket-number reuse replaces the log object; re-arm the incarnation
    // actually receiving writes (the old one never fired, or we'd have
    // stopped already).
    if (log == nullptr || log == armed_log_) return;
    log->ArmTear(spec_);
    armed_log_ = log;
  }

  uint64_t tear_bucket_ = kNoTearBucket;
  BucketLog::TearSpec spec_;
  bool arming_ = false;
  BucketLog* armed_log_ = nullptr;
};

LhOptions SystemOptions(const std::string& dir) {
  LhOptions o;
  o.bucket_capacity = 8;
  o.merge_threshold = 0.4;
  o.data_dir = dir;
  return o;
}

/// Deterministic grow/shrink/regrow script: phase one splits the file out
/// to many buckets, phase two merges most of them away, phase three splits
/// again over reused bucket numbers.
std::vector<Op> GrowShrinkScript() {
  Rng rng(77);
  std::vector<Op> script;
  auto insert = [&](uint64_t k) {
    Op op;
    op.type = MsgType::kInsert;
    op.key = k;
    op.value = ToBytes("sys-" + std::to_string(k) + "-");
    const size_t pad = rng.Uniform(24);
    op.value.insert(op.value.end(), pad, static_cast<uint8_t>(rng.Next()));
    script.push_back(std::move(op));
  };
  for (uint64_t k = 1; k <= 120; ++k) insert(k);
  for (uint64_t k = 1; k <= 96; ++k) {
    Op op;
    op.type = MsgType::kDelete;
    op.key = k;
    script.push_back(op);
  }
  for (uint64_t k = 200; k < 240; ++k) insert(k);
  return script;
}

struct SysOutcome {
  std::map<uint64_t, Bytes> acked;
  bool crashed = false;
};

/// Runs the script against a log-backed LhSystem, driving raw key ops from
/// an ack sink (forwarding routes them from bucket 0). Stops at the first
/// missing ack or the instant the armed tear fires: every site of the
/// simulated multicomputer lives in this one process, so the tear is a
/// whole-process crash, not a single-site outage.
SysOutcome RunSystemWorkload(const std::string& dir,
                             const std::vector<Op>& script,
                             uint64_t tear_bucket,
                             const BucketLog::TearSpec* spec,
                             std::map<uint64_t, uint64_t>* log_bytes_out) {
  TearingSystem sys(SystemOptions(dir), tear_bucket, spec);
  AckSink sink;
  const SiteId sink_site = sys.network().Register(&sink);

  SysOutcome out;
  uint64_t request_id = 1;
  for (const Op& op : script) {
    Message m;
    m.type = op.type;
    m.from = sink_site;
    m.reply_to = sink_site;
    m.to = sys.bucket(0).site();
    m.request_id = request_id++;
    m.key = op.key;
    m.value = op.value;
    const size_t acks_before = sink.received.size();
    sys.network().Send(std::move(m));
    if (sink.received.size() == acks_before) {
      out.crashed = true;
      break;
    }
    if (op.type == MsgType::kInsert) {
      out.acked[op.key] = op.value;
    } else {
      out.acked.erase(op.key);
    }
    if (sys.TearFired()) {
      // The op itself was acked (append-before-ack ran before the
      // restructuring), but the split/merge it triggered died partway.
      out.crashed = true;
      break;
    }
  }
  if (log_bytes_out != nullptr) {
    for (uint64_t b = 0;; ++b) {
      BucketLog* log = sys.persist()->log(b);
      if (log == nullptr) break;
      (*log_bytes_out)[b] = log->cumulative_bytes_written();
    }
  }
  return out;
}

/// Restarts a fresh system over `dir` and checks the acked state came back
/// exactly once: per-bucket mirrors, the merged record map, the total count
/// (a duplicated transfer would inflate it), and real client lookups (which
/// exercise recovered levels, extent, and routing).
void VerifySystemRecovery(const std::string& dir,
                          const std::map<uint64_t, Bytes>& want,
                          const std::string& label) {
  LhSystem sys(SystemOptions(dir));
  std::map<uint64_t, Bytes> got;
  uint64_t total = 0;
  for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
    const LhBucketServer& srv = sys.bucket(b);
    EXPECT_TRUE(srv.columns().MirrorsMap(srv.records()))
        << label << ": bucket " << b << " mirror out of lockstep";
    total += srv.records().size();
    for (const auto& [k, v] : srv.records()) got[k] = v;
  }
  EXPECT_EQ(total, want.size())
      << label << ": acked records lost, duplicated, or phantom";
  EXPECT_EQ(got, want) << label << ": recovered state differs";

  LhClient* c = sys.NewClient();
  for (const auto& [k, v] : want) {
    Result<Bytes> r = c->Lookup(k);
    ASSERT_TRUE(r.ok()) << label << ": acked key " << k << " unservable";
    EXPECT_EQ(*r, v) << label << ": key " << k;
  }
}

TEST_F(CrashPointTest, MultiBucketSplitMergeSweep) {
  const std::vector<Op> script = GrowShrinkScript();
  std::map<uint64_t, uint64_t> dry_bytes;
  const SysOutcome dry =
      RunSystemWorkload(Dir("dry"), script, kNoTearBucket, nullptr, &dry_bytes);
  ASSERT_FALSE(dry.crashed);
  ASSERT_GE(dry_bytes.size(), 4u) << "workload never split";

  // Sweep tear offsets across every bucket's write stream. Bucket 0 (the
  // longest-lived log, target of the final merges) gets the densest sweep;
  // split-created buckets get points clustered where their transfers live.
  size_t crashed_runs = 0;
  size_t point = 0;
  Rng jitter(0x5eed);
  for (const auto& [bucket, bytes] : dry_bytes) {
    const size_t points_here = bucket == 0 ? 10 : 4;
    for (size_t i = 0; i < points_here; ++i, ++point) {
      BucketLog::TearSpec spec;
      spec.at_cumulative_byte = bytes * i / points_here + jitter.Uniform(5);
      spec.corrupt = (point % 2) == 1;
      const std::string label =
          "bucket " + std::to_string(bucket) + " tear@" +
          std::to_string(spec.at_cumulative_byte) +
          (spec.corrupt ? "/corrupt" : "/truncate");
      const std::string dir = Dir("pt" + std::to_string(point));
      const SysOutcome torn =
          RunSystemWorkload(dir, script, bucket, &spec, nullptr);
      if (torn.crashed) ++crashed_runs;
      VerifySystemRecovery(dir, torn.acked, label);
      std::filesystem::remove_all(dir);
    }
  }
  EXPECT_GE(point, 50u) << "sweep thinner than the durability bar requires";
  EXPECT_GT(crashed_runs, point / 2)
      << "tear offsets mostly missed the write streams";
}

TEST_F(CrashPointTest, TearDuringCheckpointKeepsOldLogIntact) {
  const std::vector<Op> script = BuildScript(/*seed=*/17, /*ops=*/60);
  const std::string dry_dir = Dir("dry");
  PersistManager pm({.dir = dry_dir, .checkpoint_min_bytes = 192}, nullptr);
  BucketLog* log = pm.OpenBucketLog(0, 0, /*fresh=*/true);
  ASSERT_NE(log, nullptr);

  // Build up some acked state, then force a checkpoint whose write tears.
  std::map<uint64_t, Bytes> state;
  for (uint64_t k = 0; k < 12; ++k) {
    state[k] = ToBytes("stable-" + std::to_string(k));
    ASSERT_TRUE(log->AppendPut(k, ByteSpan(state[k])));
  }
  log->ArmTear({.at_cumulative_byte = log->cumulative_bytes_written() + 40,
                .corrupt = false});
  EXPECT_FALSE(log->Checkpoint(0, false, state));
  EXPECT_TRUE(log->crashed());

  // The old log (with every acked frame) is what recovery sees; the torn
  // .tmp is swept.
  VerifyRecovery(dry_dir, state, "tear inside checkpoint tmp write");
  EXPECT_FALSE(std::filesystem::exists(pm.LogPath(0) + ".tmp"));
}

#endif  // ESSDDS_PERSIST

}  // namespace
}  // namespace essdds::sdds
