#include "persist/bucket_log.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "persist/persist_manager.h"
#include "sdds/message.h"
#include "util/bytes.h"

namespace essdds::persist {
namespace {

#if ESSDDS_PERSIST

/// Fresh scratch directory per test, removed on teardown.
class BucketLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("essdds_log_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()->name())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    key_ = Bytes(16, 0x42);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const { return dir_ + "/" + name; }

  std::unique_ptr<BucketLog> Open(const std::string& name, bool fresh,
                                  size_t checkpoint_min = 64 * 1024,
                                  bool fsync = false) {
    return BucketLog::Open(Path(name), /*bucket=*/0, /*create_level=*/0,
                           ByteSpan(key_), fresh, checkpoint_min, &metrics_,
                           fsync);
  }

  static Bytes FileImage(const std::string& path) {
    Bytes out;
    std::FILE* f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    if (f == nullptr) return out;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      out.insert(out.end(), buf, buf + n);
    }
    std::fclose(f);
    return out;
  }

  std::string dir_;
  Bytes key_;
  PersistMetrics metrics_;
};

TEST_F(BucketLogTest, FreshOpenWritesHeaderOnly) {
  auto log = Open("bucket-0.log", /*fresh=*/true);
  ASSERT_NE(log, nullptr);
  EXPECT_FALSE(log->crashed());
  EXPECT_EQ(log->epoch(), 0u);
  EXPECT_EQ(log->file_bytes(), 36u);

  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kClean);
  EXPECT_TRUE(r.records.empty());
  EXPECT_EQ(r.epoch, 0u);
  EXPECT_EQ(r.bucket, 0u);
}

TEST_F(BucketLogTest, EveryRecordTypeRoundTrips) {
  auto log = Open("bucket-0.log", /*fresh=*/true);
  ASSERT_NE(log, nullptr);

  ASSERT_TRUE(log->AppendPut(1, ToBytes("one")));
  ASSERT_TRUE(log->AppendPut(2, ToBytes("two")));
  ASSERT_TRUE(log->AppendPut(1, ToBytes("one-v2")));  // overwrite
  ASSERT_TRUE(log->AppendErase(2));

  std::vector<sdds::WireRecord> bulk;
  bulk.push_back({10, ToBytes("ten")});
  bulk.push_back({11, ToBytes("eleven")});
  bulk.push_back({12, ToBytes("twelve")});
  ASSERT_TRUE(log->AppendBulkPut(/*level=*/3, bulk));
  ASSERT_TRUE(log->AppendEraseBulk(/*level=*/4, {11, 999}));

  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kClean);
  EXPECT_EQ(r.replayed_records, 6u);
  EXPECT_EQ(r.level, 4u);
  EXPECT_FALSE(r.retired);

  std::map<uint64_t, Bytes> want;
  want[1] = ToBytes("one-v2");
  want[10] = ToBytes("ten");
  want[12] = ToBytes("twelve");
  EXPECT_EQ(r.records, want);
}

TEST_F(BucketLogTest, ClearRetiresTheBucket) {
  auto log = Open("bucket-0.log", /*fresh=*/true);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->AppendPut(7, ToBytes("doomed")));
  ASSERT_TRUE(log->AppendClear());

  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kClean);
  EXPECT_TRUE(r.retired);
  EXPECT_TRUE(r.records.empty());
}

TEST_F(BucketLogTest, CheckpointCompactsAndBumpsEpoch) {
  auto log = Open("bucket-0.log", /*fresh=*/true);
  ASSERT_NE(log, nullptr);
  std::map<uint64_t, Bytes> state;
  for (uint64_t k = 0; k < 50; ++k) {
    state[k] = ToBytes("value-" + std::to_string(k));
    ASSERT_TRUE(log->AppendPut(k, ByteSpan(state[k])));
  }
  const uint64_t grown = log->file_bytes();

  ASSERT_TRUE(log->Checkpoint(/*level=*/2, /*retired=*/false, state));
  EXPECT_EQ(log->epoch(), 1u);
  EXPECT_LT(log->file_bytes(), grown) << "checkpoint did not compact";

  // Appends after the checkpoint replay on top of the snapshot.
  state[1000] = ToBytes("post-checkpoint");
  ASSERT_TRUE(log->AppendPut(1000, ByteSpan(state[1000])));
  ASSERT_TRUE(log->AppendErase(0));
  state.erase(0);

  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kClean);
  EXPECT_EQ(r.epoch, 1u);
  EXPECT_EQ(r.level, 2u);
  EXPECT_EQ(r.records, state);
}

TEST_F(BucketLogTest, MaybeCheckpointHonoursFloorAndDoubling) {
  auto log = Open("bucket-0.log", /*fresh=*/true, /*checkpoint_min=*/256);
  ASSERT_NE(log, nullptr);
  std::map<uint64_t, Bytes> state;
  state[1] = ToBytes("small");
  ASSERT_TRUE(log->AppendPut(1, ByteSpan(state[1])));

  // Below the floor: no rewrite regardless of ratio.
  log->MaybeCheckpoint(0, false, state);
  EXPECT_EQ(log->epoch(), 0u);

  // Grow past the floor (and past 2x the base size): the rewrite fires.
  for (uint64_t k = 2; k < 40; ++k) {
    state[k] = ToBytes("padding-padding-" + std::to_string(k));
    ASSERT_TRUE(log->AppendPut(k, ByteSpan(state[k])));
  }
  ASSERT_GT(log->file_bytes(), 512u);
  log->MaybeCheckpoint(0, false, state);
  EXPECT_EQ(log->epoch(), 1u);
  const uint64_t base = log->file_bytes();

  // Right after a checkpoint the file has not doubled: no rewrite.
  log->MaybeCheckpoint(0, false, state);
  EXPECT_EQ(log->epoch(), 1u);
  EXPECT_EQ(log->file_bytes(), base);
}

TEST_F(BucketLogTest, AdoptRepairsTornTailAndRetiresOldNonces) {
  std::map<uint64_t, Bytes> state;
  uint32_t old_epoch = 0;
  {
    auto log = Open("bucket-0.log", /*fresh=*/true);
    ASSERT_NE(log, nullptr);
    for (uint64_t k = 0; k < 10; ++k) {
      state[k] = ToBytes("v" + std::to_string(k));
      ASSERT_TRUE(log->AppendPut(k, ByteSpan(state[k])));
    }
    old_epoch = log->epoch();
  }
  // Tear the tail by hand: append half a frame of junk.
  {
    std::FILE* f = std::fopen(Path("bucket-0.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t junk[5] = {0x00, 0x00, 0x01, 0xAB, 0xCD};
    ASSERT_EQ(std::fwrite(junk, 1, sizeof junk, f), sizeof junk);
    std::fclose(f);
  }
  ASSERT_EQ(BucketLog::ReplayFile(Path("bucket-0.log"), ByteSpan(key_)).tail,
            ReplayResult::Tail::kTorn);

  // Adoption replays the valid prefix and rewrites the file as one clean
  // checkpoint under a fresh epoch.
  auto log = Open("bucket-0.log", /*fresh=*/false);
  ASSERT_NE(log, nullptr);
  EXPECT_FALSE(log->crashed());
  EXPECT_GT(log->epoch(), old_epoch);

  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kClean);
  EXPECT_EQ(r.records, state);
  EXPECT_EQ(r.replayed_records, 1u) << "adopt should leave one checkpoint frame";
}

TEST_F(BucketLogTest, AdoptPreservesCorruptImageAsSidecar) {
  {
    auto log = Open("bucket-0.log", /*fresh=*/true);
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->AppendPut(1, ToBytes("survives")));
    ASSERT_TRUE(log->AppendPut(2, ToBytes("in the bad frame")));
  }
  // Flip a ciphertext byte of the last frame: CRC mismatch -> corrupt tail.
  Bytes damaged = FileImage(Path("bucket-0.log"));
  damaged[damaged.size() - 10] ^= 0x40;
  {
    std::FILE* f = std::fopen(Path("bucket-0.log").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(damaged.data(), 1, damaged.size(), f),
              damaged.size());
    std::fclose(f);
  }
  ASSERT_EQ(BucketLog::ReplayFile(Path("bucket-0.log"), ByteSpan(key_)).tail,
            ReplayResult::Tail::kCorrupt);

  // Adoption still recovers the valid prefix — but the damaged original is
  // moved aside, not destroyed: if the "corruption" was really a wrong key
  // (config error), the ciphertext is the only way back.
  auto log = Open("bucket-0.log", /*fresh=*/false);
  ASSERT_NE(log, nullptr);
  EXPECT_FALSE(log->crashed());
  EXPECT_EQ(FileImage(Path("bucket-0.log.corrupt")), damaged);
  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kClean);
  EXPECT_EQ(r.records,
            (std::map<uint64_t, Bytes>{{1, ToBytes("survives")}}));

  // A second casualty numbers itself instead of clobbering the first.
  {
    std::FILE* f = std::fopen(Path("bucket-0.log").c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(damaged.data(), 1, damaged.size(), f),
              damaged.size());
    std::fclose(f);
  }
  auto log2 = Open("bucket-0.log", /*fresh=*/false);
  ASSERT_NE(log2, nullptr);
  EXPECT_TRUE(std::filesystem::exists(Path("bucket-0.log.corrupt.1")));
  EXPECT_EQ(FileImage(Path("bucket-0.log.corrupt")), damaged);
}

TEST_F(BucketLogTest, TornTailIsNotPreserved) {
  {
    auto log = Open("bucket-0.log", /*fresh=*/true);
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->AppendPut(1, ToBytes("fine")));
  }
  {
    std::FILE* f = std::fopen(Path("bucket-0.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const uint8_t junk[3] = {0x00, 0x00, 0x09};
    ASSERT_EQ(std::fwrite(junk, 1, sizeof junk, f), sizeof junk);
    std::fclose(f);
  }
  // A merely torn tail is the expected crash signature, fully explained by
  // the valid prefix — no sidecar clutter.
  auto log = Open("bucket-0.log", /*fresh=*/false);
  ASSERT_NE(log, nullptr);
  EXPECT_FALSE(std::filesystem::exists(Path("bucket-0.log.corrupt")));
}

TEST_F(BucketLogTest, ReopenedFileNeverReusesKeystream) {
  // Two incarnations at identical (epoch, frame) coordinates encrypting
  // identical plaintext: the per-incarnation salt must give unrelated
  // ciphertext. Under a fixed per-bucket key (the old scheme), the two
  // images would match byte-for-byte past the header, and XORing them would
  // hand an attacker the plaintext difference.
  const Bytes payload = ToBytes("identical-plaintext-either-run");
  auto frame_bytes = [&](const std::string& name) {
    auto log = Open(name, /*fresh=*/true);
    EXPECT_NE(log, nullptr);
    EXPECT_TRUE(log->AppendPut(1, ByteSpan(payload)));
    EXPECT_EQ(log->epoch(), 0u);
    Bytes image = FileImage(Path(name));
    return Bytes(image.begin() + 36, image.end());
  };
  const Bytes first = frame_bytes("bucket-0.log");
  std::filesystem::remove(Path("bucket-0.log"));
  const Bytes second = frame_bytes("bucket-0.log");
  ASSERT_EQ(first.size(), second.size());
  EXPECT_NE(first, second) << "keystream reused across incarnations";
}

TEST_F(BucketLogTest, FsyncModeRoundTrips) {
  // Functional smoke for the fsync policy: appends, checkpoints, and the
  // checkpoint rename all succeed with the sync calls in the path, and the
  // image replays identically.
  auto log = Open("bucket-0.log", /*fresh=*/true, /*checkpoint_min=*/64,
                  /*fsync=*/true);
  ASSERT_NE(log, nullptr);
  std::map<uint64_t, Bytes> state;
  state[1] = ToBytes("synced");
  ASSERT_TRUE(log->AppendPut(1, ByteSpan(state[1])));
  ASSERT_TRUE(log->Checkpoint(0, false, state));
  state[2] = ToBytes("post-checkpoint");
  ASSERT_TRUE(log->AppendPut(2, ByteSpan(state[2])));
  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kClean);
  EXPECT_EQ(r.records, state);
}

TEST_F(BucketLogTest, FreshOpenSupersedesExistingEpoch) {
  {
    auto log = Open("bucket-0.log", /*fresh=*/true);
    ASSERT_NE(log, nullptr);
    ASSERT_TRUE(log->AppendPut(1, ToBytes("stale")));
    ASSERT_TRUE(log->Checkpoint(0, false, {{1, ToBytes("stale")}}));
    ASSERT_EQ(log->epoch(), 1u);
  }
  // A reused bucket number opens fresh: the old records vanish and the epoch
  // continues past the prior one so (key, nonce) pairs never repeat.
  auto log = Open("bucket-0.log", /*fresh=*/true);
  ASSERT_NE(log, nullptr);
  EXPECT_EQ(log->epoch(), 2u);
  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kClean);
  EXPECT_TRUE(r.records.empty());
}

TEST_F(BucketLogTest, NoPlaintextPayloadBytesOnDisk) {
  // Distinctive needles long enough that a chance ciphertext collision is
  // (1/2^96-ish) impossible.
  const Bytes payload = ToBytes("TOP-SECRET-PAYLOAD-0123456789");
  const Bytes bulk_payload = ToBytes("ANOTHER-CLASSIFIED-RECORD-BODY");
  auto log = Open("bucket-0.log", /*fresh=*/true, /*checkpoint_min=*/64);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->AppendPut(5, ByteSpan(payload)));
  std::vector<sdds::WireRecord> bulk;
  bulk.push_back({6, bulk_payload});
  ASSERT_TRUE(log->AppendBulkPut(0, bulk));
  std::map<uint64_t, Bytes> state = {{5, payload}, {6, bulk_payload}};
  ASSERT_TRUE(log->Checkpoint(0, false, state));

  const Bytes image = FileImage(log->path());
  for (const Bytes& needle : {payload, bulk_payload}) {
    auto it = std::search(image.begin(), image.end(), needle.begin(),
                          needle.end());
    EXPECT_EQ(it, image.end()) << "plaintext payload leaked to disk";
  }
  // And yet the encrypted image replays to exactly those payloads.
  const ReplayResult r = BucketLog::ReplayBytes(ByteSpan(image), ByteSpan(key_));
  EXPECT_EQ(r.records, state);
}

TEST_F(BucketLogTest, WrongKeyReplaysAsCorrupt) {
  auto log = Open("bucket-0.log", /*fresh=*/true);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->AppendPut(1, ToBytes("sealed")));

  const Bytes wrong_key(16, 0x17);
  const ReplayResult r =
      BucketLog::ReplayFile(log->path(), ByteSpan(wrong_key));
  // The frame CRC covers the ciphertext, so the frame looks intact — but the
  // decrypted body is keystream garbage and must fail the parse, flagged.
  EXPECT_EQ(r.tail, ReplayResult::Tail::kCorrupt);
  EXPECT_TRUE(r.records.empty());
}

TEST_F(BucketLogTest, TruncateTearKillsTheLog) {
  auto log = Open("bucket-0.log", /*fresh=*/true);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->AppendPut(1, ToBytes("acked")));
  const uint64_t acked_bytes = log->cumulative_bytes_written();

  log->ArmTear({.at_cumulative_byte = acked_bytes + 3, .corrupt = false});
  EXPECT_FALSE(log->AppendPut(2, ToBytes("lost")));
  EXPECT_TRUE(log->crashed());
  // The log is dead: every subsequent append fails too.
  EXPECT_FALSE(log->AppendPut(3, ToBytes("also lost")));
  EXPECT_FALSE(log->AppendErase(1));
  EXPECT_FALSE(log->Checkpoint(0, false, {}));

  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kTorn);
  EXPECT_EQ(r.records, (std::map<uint64_t, Bytes>{{1, ToBytes("acked")}}));
}

TEST_F(BucketLogTest, CorruptTearFlagsOnReplay) {
  auto log = Open("bucket-0.log", /*fresh=*/true);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->AppendPut(1, ToBytes("acked")));

  log->ArmTear({.at_cumulative_byte = log->cumulative_bytes_written() + 6,
                .corrupt = true});
  EXPECT_FALSE(log->AppendPut(2, ToBytes("torn")));
  EXPECT_TRUE(log->crashed());

  const ReplayResult r = BucketLog::ReplayFile(log->path(), ByteSpan(key_));
  EXPECT_EQ(r.tail, ReplayResult::Tail::kCorrupt);
  EXPECT_EQ(r.records, (std::map<uint64_t, Bytes>{{1, ToBytes("acked")}}));
}

TEST_F(BucketLogTest, MetricsTrackFramesCheckpointsAndBytes) {
  if (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";
  obs::MetricRegistry registry;
  PersistMetrics metrics;
  metrics.appended_frames = &registry.counter("persist.appended_frames");
  metrics.checkpoints = &registry.counter("persist.checkpoints");
  metrics.log_bytes = &registry.gauge("persist.log_bytes");

  auto log = BucketLog::Open(Path("bucket-0.log"), 0, 0, ByteSpan(key_),
                             /*fresh=*/true, 64 * 1024, &metrics);
  ASSERT_NE(log, nullptr);
  ASSERT_TRUE(log->AppendPut(1, ToBytes("a")));
  ASSERT_TRUE(log->AppendPut(2, ToBytes("b")));
  EXPECT_EQ(metrics.appended_frames->value(), 2u);
  EXPECT_EQ(metrics.total_bytes, static_cast<int64_t>(log->file_bytes()));

  ASSERT_TRUE(log->Checkpoint(0, false, {{1, ToBytes("a")}, {2, ToBytes("b")}}));
  EXPECT_EQ(metrics.checkpoints->value(), 1u);
  EXPECT_EQ(metrics.total_bytes, static_cast<int64_t>(log->file_bytes()));
}

// --- PersistManager: directory-level recovery ---

class PersistManagerTest : public BucketLogTest {};

TEST_F(PersistManagerTest, FreshDirectoryRecoversEmpty) {
  PersistManager pm({.dir = Path("data")}, nullptr);
  EXPECT_TRUE(pm.Recover().empty());
}

TEST_F(PersistManagerTest, RecoverRoundTripsLiveBuckets) {
  {
    PersistManager pm({.dir = Path("data")}, nullptr);
    BucketLog* b0 = pm.OpenBucketLog(0, 1, /*fresh=*/true);
    BucketLog* b1 = pm.OpenBucketLog(1, 1, /*fresh=*/true);
    ASSERT_NE(b0, nullptr);
    ASSERT_NE(b1, nullptr);
    ASSERT_TRUE(b0->AppendPut(2, ToBytes("even")));
    ASSERT_TRUE(b1->AppendPut(3, ToBytes("odd")));
    ASSERT_TRUE(b1->AppendPut(5, ToBytes("odd too")));
  }
  PersistManager pm({.dir = Path("data")}, nullptr);
  auto live = pm.Recover();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0].records,
            (std::map<uint64_t, Bytes>{{2, ToBytes("even")}}));
  EXPECT_EQ(live[1].records,
            (std::map<uint64_t, Bytes>{{3, ToBytes("odd")},
                                       {5, ToBytes("odd too")}}));
}

TEST_F(PersistManagerTest, RetiredBucketAboveLiveOnesIsSkipped) {
  {
    PersistManager pm({.dir = Path("data")}, nullptr);
    BucketLog* b0 = pm.OpenBucketLog(0, 0, /*fresh=*/true);
    BucketLog* b1 = pm.OpenBucketLog(1, 1, /*fresh=*/true);
    ASSERT_TRUE(b0->AppendPut(1, ToBytes("stays")));
    ASSERT_TRUE(b1->AppendPut(9, ToBytes("moves")));
    ASSERT_TRUE(b1->AppendClear());  // merge dissolved bucket 1
  }
  PersistManager pm({.dir = Path("data")}, nullptr);
  auto live = pm.Recover();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].records,
            (std::map<uint64_t, Bytes>{{1, ToBytes("stays")}}));
}

TEST_F(PersistManagerTest, StrayTmpFilesAreSwept) {
  PersistManager pm({.dir = Path("data")}, nullptr);
  const std::string tmp = pm.LogPath(0) + ".tmp";
  {
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("half a checkpoint", f);
    std::fclose(f);
  }
  PersistManager pm2({.dir = Path("data")}, nullptr);
  EXPECT_TRUE(pm2.Recover().empty());
  EXPECT_FALSE(std::filesystem::exists(tmp));
}

TEST_F(PersistManagerTest, HeaderBucketMismatchIsTreatedCorrupt) {
  {
    PersistManager pm({.dir = Path("data")}, nullptr);
    BucketLog* b0 = pm.OpenBucketLog(0, 0, /*fresh=*/true);
    ASSERT_TRUE(b0->AppendPut(1, ToBytes("misfiled")));
  }
  // A log whose header says bucket 0 but whose name claims bucket 1 must not
  // be replayed into bucket 1 — but note the name now decides the key, so the
  // decrypt already fails before the header cross-check matters.
  std::filesystem::rename(Path("data") + "/bucket-0.log",
                          Path("data") + "/bucket-1.log");
  PersistManager pm({.dir = Path("data")}, nullptr);
  EXPECT_TRUE(pm.Recover().empty());
}

TEST_F(PersistManagerTest, PerBucketKeysDiffer) {
  PersistManager pm({.dir = Path("data")}, nullptr);
  EXPECT_NE(pm.BucketKey(0), pm.BucketKey(1));
  EXPECT_EQ(pm.BucketKey(0).size(), 16u);
}

TEST_F(PersistManagerTest, MasterMismatchIsFlaggedAndDecryptsNothing) {
  {
    PersistManager pm({.dir = Path("data"), .master = ToBytes("master-A")},
                      nullptr);
    BucketLog* b0 = pm.OpenBucketLog(0, 0, /*fresh=*/true);
    ASSERT_TRUE(b0->AppendPut(1, ToBytes("sealed under A")));
  }
  // The plaintext header still reads, so the bucket comes back — but with
  // zero decrypted records and the corrupt tail counted, never with
  // garbage records silently accepted.
  obs::MetricRegistry registry;
  PersistManager pm({.dir = Path("data"), .master = ToBytes("master-B")},
                    &registry);
  auto live = pm.Recover();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_TRUE(live[0].records.empty()) << "wrong master must not decrypt";
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(registry.counter("persist.corrupt_tails").value(), 1u);
  }
}

#else  // !ESSDDS_PERSIST

TEST(BucketLogStubTest, EverythingNoOps) {
  EXPECT_FALSE(kPersistEnabled);
  EXPECT_EQ(BucketLog::Open("x", 0, 0, {}, true, 0, nullptr), nullptr);
  PersistManager pm({.dir = "unused"}, nullptr);
  EXPECT_TRUE(pm.Recover().empty());
  EXPECT_EQ(pm.OpenBucketLog(0, 0, true), nullptr);
}

#endif  // ESSDDS_PERSIST

}  // namespace
}  // namespace essdds::persist
