// Microbenchmarks of the Galois-field and codec substrates.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "codec/chunker.h"
#include "codec/dispersal.h"
#include "codec/symbol_encoder.h"
#include "gf/gf2n.h"
#include "gf/matrix.h"
#include "sdds/rs_code.h"
#include "util/random.h"

namespace essdds {
namespace {

void BM_GfMul(benchmark::State& state) {
  const gf::GfField& f = gf::GfField::Of(static_cast<int>(state.range(0)));
  uint32_t a = 3, b = 7;
  for (auto _ : state) {
    a = f.Mul(a, b) | 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_GfMul)->Arg(4)->Arg(8)->Arg(16);

void BM_MatrixApplyRowVector(benchmark::State& state) {
  const gf::GfField& f = gf::GfField::Of(8);
  auto m = gf::GfMatrix::RandomInvertible(f, 4, 7);
  std::vector<uint32_t> v = {1, 2, 3, 4};
  for (auto _ : state) {
    auto out = m.ApplyToRowVector(v);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MatrixApplyRowVector);

void BM_DisperseChunk(benchmark::State& state) {
  auto d = codec::Disperser::Create(32, 4, 11);
  uint64_t chunk = 0x01020304;
  for (auto _ : state) {
    auto pieces = d->DisperseChunk(chunk++ & 0xFFFFFFFF);
    benchmark::DoNotOptimize(pieces);
  }
}
BENCHMARK(BM_DisperseChunk);

void BM_RsEncode(benchmark::State& state) {
  auto code = sdds::RsCode::Create(4, 2);
  Rng rng(5);
  std::vector<Bytes> data(4, Bytes(static_cast<size_t>(state.range(0))));
  for (auto& buf : data) {
    for (auto& byte : buf) byte = static_cast<uint8_t>(rng.Next());
  }
  for (auto _ : state) {
    auto parity = code->Encode(data);
    benchmark::DoNotOptimize(parity);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_RsEncode)->Arg(1024)->Arg(65536);

void BM_FrequencyEncoderStream(benchmark::State& state) {
  std::vector<std::string> corpus = {"SCHWARZ THOMAS", "LITWIN WITOLD",
                                     "WONG MING", "LEE WEI & MEI"};
  auto enc = codec::FrequencyEncoder::Train(
      corpus, {.unit_symbols = 1, .num_codes = 8});
  const std::string record = "ABOGADO ALEJANDRO & CATHERINE";
  for (auto _ : state) {
    auto codes = enc->EncodeStream(record, 0);
    benchmark::DoNotOptimize(codes);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(record.size()));
}
BENCHMARK(BM_FrequencyEncoderStream);

void BM_ChunkerBuildChunks(benchmark::State& state) {
  static const codec::IdentityEncoder& enc = *new codec::IdentityEncoder;
  auto chunker = codec::Chunker::Create(&enc, 4);
  const std::string record = "ABOGADO ALEJANDRO & CATHERINE ESQ";
  for (auto _ : state) {
    auto chunks = chunker->BuildChunks(record, 1);
    benchmark::DoNotOptimize(chunks);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(record.size()));
}
BENCHMARK(BM_ChunkerBuildChunks);

}  // namespace
}  // namespace essdds

BENCHMARK_MAIN();
