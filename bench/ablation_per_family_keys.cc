// Ablation of the per-family-key hardening (an extension beyond the paper):
// with a single shared ECB codebook, an attacker holding TWO index sites of
// different chunking families can align their streams and find identical
// ciphertext chunks — recovering relative plaintext structure across
// chunkings. Independent per-family codebooks reduce those cross-family
// matches to chance.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "workload/phonebook.h"

using essdds::ToBytes;

namespace {

struct Stats {
  uint64_t comparisons = 0;
  uint64_t collisions = 0;
};

Stats CrossFamilyCollisions(const essdds::core::IndexPipeline& pipe,
                            const std::vector<essdds::workload::PhoneRecord>&
                                corpus) {
  Stats st;
  for (const auto& r : corpus) {
    auto recs = pipe.BuildIndexRecords(r.rid, r.name);
    // k == 1: index records are per family. Compare families 0 and 1.
    const auto& f0 = recs[0].stream;
    const auto& f1 = recs[1].stream;
    for (uint64_t a : f0) {
      for (uint64_t b : f1) {
        ++st.comparisons;
        st.collisions += (a == b);
      }
    }
  }
  return st;
}

}  // namespace

int main() {
  const size_t n = essdds::bench::CorpusSize(20000);
  auto corpus = essdds::bench::LoadCorpus(n);

  essdds::bench::PrintHeader(
      "Ablation: shared vs per-family ECB codebooks (cross-site "
      "correlation), " + std::to_string(n) + " records");

  essdds::core::SchemeParams shared{.codes_per_chunk = 4};
  essdds::core::SchemeParams per_family{.codes_per_chunk = 4,
                                        .per_family_keys = true};
  auto pipe_shared =
      essdds::core::IndexPipeline::Create(shared, ToBytes("ablate"), {});
  auto pipe_family =
      essdds::core::IndexPipeline::Create(per_family, ToBytes("ablate"), {});
  if (!pipe_shared.ok() || !pipe_family.ok()) return 1;

  const Stats s = CrossFamilyCollisions(*pipe_shared, corpus);
  const Stats f = CrossFamilyCollisions(*pipe_family, corpus);

  auto rate = [](const Stats& st) {
    return st.comparisons == 0
               ? 0.0
               : 1e6 * static_cast<double>(st.collisions) /
                     static_cast<double>(st.comparisons);
  };
  std::printf("  %-22s | %-14s | %-12s | %s\n", "codebooks", "comparisons",
              "collisions", "rate (ppm)");
  std::printf("  %-22s | %-14llu | %-12llu | %.2f\n", "shared (paper)",
              static_cast<unsigned long long>(s.comparisons),
              static_cast<unsigned long long>(s.collisions), rate(s));
  std::printf("  %-22s | %-14llu | %-12llu | %.2f\n", "per-family (hardened)",
              static_cast<unsigned long long>(f.comparisons),
              static_cast<unsigned long long>(f.collisions), rate(f));

  // Chance level for 32-bit chunks is ~2^-32 = 0.0002 ppm.
  std::printf(
      "\nShape check: with a shared codebook, cross-family collisions occur\n"
      "whenever the same 4 symbols appear chunk-aligned in two chunkings\n"
      "(hundreds of ppm on real names); per-family keys push the rate to\n"
      "the 2^-32 chance level. Query cost: the hardened scheme ships one\n"
      "series set per family (see PerFamilyKeysTest.QueryWireGrowsByFamilyCount).\n");
  return 0;
}
