// Storage-cost table for the complete scheme (the paper's abstract promises
// an evaluation of "storage and access performance"): bytes of strongly
// encrypted record store plus index records, per configuration, relative to
// the plaintext.
//
// Expected shape: index cost scales with num_chunkings (storing s chunkings
// of the data); §2.5's strided storage divides it proportionally; Stage-2
// compression shrinks each index record by code_bits/8 per symbol; Stage-3
// dispersal is storage-neutral (it splits, not duplicates).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "crypto/record_cipher.h"

using essdds::Bytes;
using essdds::ByteSpan;
using essdds::ToBytes;

namespace {

struct Config {
  std::string name;
  essdds::core::SchemeParams params;
};

}  // namespace

int main() {
  const size_t n = essdds::bench::CorpusSize(20000);
  auto corpus = essdds::bench::LoadCorpus(n);
  std::vector<std::string> training;
  training.reserve(corpus.size());
  for (const auto& r : corpus) training.push_back(r.name);

  essdds::bench::PrintHeader("Storage overhead per configuration (" +
                             std::to_string(n) + " records)");

  const std::vector<Config> configs = {
      {"stage1 s=4, all chunkings",
       {.codes_per_chunk = 4}},
      {"stage1 s=8, all chunkings",
       {.codes_per_chunk = 8}},
      {"stage1 s=8, stride 2 (4 chunkings)",
       {.codes_per_chunk = 8, .chunking_stride = 2}},
      {"stage1 s=8, stride 4 (2 chunkings)",
       {.codes_per_chunk = 8, .chunking_stride = 4}},
      {"stage1+3 s=4, k=4",
       {.codes_per_chunk = 4, .dispersal_sites = 4}},
      {"stage1+2 s=4, 32 codes",
       {.num_codes = 32, .codes_per_chunk = 4}},
      {"stage1+2+3 s=4, 16 codes, k=2",
       {.num_codes = 16, .codes_per_chunk = 4, .dispersal_sites = 2}},
      {"paper conclusion: s=6, k=3",
       {.codes_per_chunk = 6, .dispersal_sites = 3}},
  };

  uint64_t plain_bytes = 0;
  for (const auto& r : corpus) plain_bytes += r.name.size();

  auto cipher = essdds::crypto::RecordCipher::Create(ToBytes("bench key"));
  uint64_t sealed_bytes = 0;
  for (const auto& r : corpus) {
    sealed_bytes += cipher->Seal(r.rid, 0, ToBytes(r.name)).size();
  }

  std::printf("plaintext: %llu bytes; sealed record store: %llu bytes "
              "(+%.1f%% AEAD framing)\n\n",
              static_cast<unsigned long long>(plain_bytes),
              static_cast<unsigned long long>(sealed_bytes),
              100.0 * (static_cast<double>(sealed_bytes) /
                           static_cast<double>(plain_bytes) -
                       1.0));
  std::printf("  %-38s | %-10s | %-12s | %-8s\n", "config", "#idx recs",
              "index bytes", "x plain");
  for (const Config& cfg : configs) {
    auto pipe = essdds::core::IndexPipeline::Create(
        cfg.params, ToBytes("bench key"), training);
    if (!pipe.ok()) {
      std::fprintf(stderr, "%s: %s\n", cfg.name.c_str(),
                   pipe.status().ToString().c_str());
      return 1;
    }
    uint64_t index_bytes = 0;
    uint64_t index_records = 0;
    for (const auto& r : corpus) {
      for (const auto& rec : pipe->BuildIndexRecords(r.rid, r.name)) {
        index_bytes += 8 /*key*/ + pipe->SerializeStream(rec.stream).size();
        ++index_records;
      }
    }
    std::printf("  %-38s | %-10llu | %-12llu | %.2f\n", cfg.name.c_str(),
                static_cast<unsigned long long>(index_records),
                static_cast<unsigned long long>(index_bytes),
                static_cast<double>(index_bytes) /
                    static_cast<double>(plain_bytes));
  }

  std::printf(
      "\nShape check: full chunking storage ~= s copies of the data;\n"
      "stride-m storage divides that by m (the paper's §2.5 trade-off);\n"
      "Stage 2 shrinks index bytes by roughly code_bits/8 per symbol;\n"
      "dispersal redistributes rather than duplicates.\n");
  return 0;
}
