// Reproduces Table 2: chi-squared after dispersal alone. Records in plain
// 8-bit ASCII are "chunked" at size one symbol and each byte dispersed into
// four 2-bit pieces with a random non-singular GF(2^2) matrix; the bench
// measures the symbol/doublet/triplet statistics an attacker sees at the
// dispersal sites.
//
// Paper reference values:
//   chi2 single 178,849 | doublets 335,796 | triplets 486,790
//   piece frequencies 0: 33.5%, 1: 26.9%, 2: 21.8%, 3: 17.7%
//   (key observation: dispersal alone does NOT flatten the distribution,
//    but the chi2 drop vs Table 1 is "encouraging")

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "codec/dispersal.h"
#include "stats/chi_squared.h"
#include "stats/ngram.h"

int main() {
  using essdds::bench::FormatChi2;
  const size_t n = essdds::bench::CorpusSize();
  auto corpus = essdds::bench::LoadCorpus(n);

  essdds::bench::PrintHeader(
      "Table 2: chi2 after dispersing 8b symbols into four 2b pieces, " +
      std::to_string(n) + " entries");

  auto disperser = essdds::codec::Disperser::Create(
      /*chunk_bits=*/8, /*num_sites=*/4, /*matrix_seed=*/20060401);
  if (!disperser.ok()) {
    std::fprintf(stderr, "disperser: %s\n",
                 disperser.status().ToString().c_str());
    return 1;
  }

  essdds::stats::NgramCounter singles(1, 4);
  essdds::stats::NgramCounter doublets(2, 4);
  essdds::stats::NgramCounter triplets(3, 4);

  std::vector<std::vector<uint32_t>> site_streams(4);
  for (const auto& rec : corpus) {
    for (auto& s : site_streams) s.clear();
    for (char c : rec.name) {
      auto pieces = disperser->DisperseChunk(static_cast<uint8_t>(c));
      for (int d = 0; d < 4; ++d) {
        site_streams[static_cast<size_t>(d)].push_back(
            pieces[static_cast<size_t>(d)]);
      }
    }
    // Statistics per dispersal record, exactly like the paper: each site's
    // stream is one "dispersion record".
    for (const auto& s : site_streams) {
      singles.Add(s);
      doublets.Add(s);
      triplets.Add(s);
    }
  }

  std::printf("chi2 (Single Letter) | %12s   (paper: 178,849)\n",
              FormatChi2(essdds::stats::ChiSquaredUniform(singles)).c_str());
  std::printf("chi2 (Doublets)      | %12s   (paper: 335,796)\n",
              FormatChi2(essdds::stats::ChiSquaredUniform(doublets)).c_str());
  std::printf("chi2 (Triplets)      | %12s   (paper: 486,790)\n",
              FormatChi2(essdds::stats::ChiSquaredUniform(triplets)).c_str());

  std::printf("\n2-bit piece frequencies (paper: 33.5/26.9/21.8/17.7)\n");
  for (const auto& e : singles.Top(4)) {
    std::printf("  %llu | %5.1f%%\n", static_cast<unsigned long long>(e.cell),
                100.0 * e.fraction);
  }
  std::printf("\nTop doublets (paper: 00 6.98%%, 10 6.27%%, 01 3.21%%, "
              "20 2.33%%):\n");
  for (const auto& e : doublets.Top(4)) {
    auto syms = doublets.UnpackCell(e.cell);
    std::printf("  %u%u | %5.2f%%\n", syms[0], syms[1], 100.0 * e.fraction);
  }
  std::printf("\nShape check: uneven piece distribution persists (no matrix\n"
              "flattens a skewed source), but chi2 dropped by about an order\n"
              "of magnitude versus Table 1.\n");
  return 0;
}
