#ifndef ESSDDS_BENCH_FP_UTIL_H_
#define ESSDDS_BENCH_FP_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/matcher.h"

namespace essdds::bench {

/// True when `pattern` occurs as a consecutive subsequence of `stream`.
inline bool Contains(const std::vector<uint32_t>& stream,
                     const std::vector<uint32_t>& pattern) {
  return !pattern.empty() &&
         !core::FindOccurrences(std::span<const uint32_t>(stream),
                                std::span<const uint32_t>(pattern))
              .empty();
}

/// Packs a code stream into chunk values of `chunk` codes starting at
/// `offset`, dropping partial chunks at both ends (the paper's §7 choice).
inline std::vector<uint32_t> ChunkCodes(const std::vector<uint32_t>& codes,
                                        size_t chunk, size_t offset,
                                        uint32_t num_codes) {
  std::vector<uint32_t> out;
  for (size_t start = offset; start + chunk <= codes.size(); start += chunk) {
    uint32_t v = 0;
    for (size_t i = 0; i < chunk; ++i) v = v * num_codes + codes[start + i];
    out.push_back(v);
  }
  return out;
}

/// The paper's false-positive rule: a reported record is a false positive
/// only when the search string does not occur in its plaintext at all
/// ("we did not count the occurrence of ADAMS in ADAMSON").
inline bool IsFalsePositive(const std::string& record_name,
                            const std::string& query) {
  return record_name.find(query) == std::string::npos;
}

}  // namespace essdds::bench

#endif  // ESSDDS_BENCH_FP_UTIL_H_
