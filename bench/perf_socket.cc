// Socket-transport benchmark: a pipelined SocketClient driving a 3-process
// cluster over unix-domain sockets at pipeline depths 1, 8 and 64. Depth 1
// is one-op-at-a-time round trips (LhClient's discipline on real wires);
// deeper windows keep multiple requests riding the connections so server
// turnaround overlaps client think time. Reports ops/s plus p50/p95/p99
// per-op latency (submit to completion, so queueing inside a deep window
// counts against it — throughput is the depth win, not tail latency).
//
// Emits one JSON object (bench_outputs/BENCH_socket.json) so CI can assert
// the pipelining claim: depth-64 ops/s strictly above depth-1.
//
// Scale with ESSDDS_SOCKET_OPS=<n> (default 4,000 measured inserts per
// depth, after a 512-insert warmup that drives the first splits).

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "net/admin.h"
#include "net/bucket_host.h"
#include "net/socket_client.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace essdds::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr size_t kHosts = 3;

size_t MeasuredOps() {
  if (const char* env = std::getenv("ESSDDS_SOCKET_OPS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return 4000;
}

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One forked cluster of kHosts server processes over UDS, torn down with
/// SIGKILL (the bench measures the steady state, not shutdown).
class Cluster {
 public:
  explicit Cluster(const std::string& tag) {
    dir_ = (std::filesystem::path("/tmp") /
            ("essdds-bench-" + std::to_string(::getpid()) + "-" + tag))
               .string();
    std::filesystem::create_directories(dir_);
    std::string spec;
    for (size_t h = 0; h < kHosts; ++h) {
      if (h) spec += ",";
      spec += "uds:" + dir_ + "/h" + std::to_string(h) + ".sock";
    }
    auto map = net::ClusterMap::Parse(spec);
    ESSDDS_CHECK(map.ok()) << map.status();
    cluster_ = *map;
    for (size_t h = 0; h < kHosts; ++h) Spawn(h);
  }

  ~Cluster() {
    for (pid_t pid : pids_) ::kill(pid, SIGKILL);
    for (pid_t pid : pids_) ::waitpid(pid, nullptr, 0);
    std::filesystem::remove_all(dir_);
  }

  const net::ClusterMap& map() const { return cluster_; }

  std::unique_ptr<net::SocketClient> NewClient() const {
    net::SocketClient::Options opts;
    opts.cluster = cluster_;
    opts.lh = Options();
    opts.lh.request_timeout_us = 2'000'000;
    opts.lh.max_request_retries = 5;
    auto client = std::make_unique<net::SocketClient>(opts);
    Status s = Status::OK();
    for (int attempt = 0; attempt < 200; ++attempt) {
      s = client->Connect();
      if (s.ok()) return client;
      ::usleep(20'000);
    }
    ESSDDS_CHECK(false) << "cluster never came up: " << s.ToString();
    return nullptr;
  }

 private:
  static sdds::LhOptions Options() {
    sdds::LhOptions lh;
    lh.bucket_capacity = 64;
    return lh;
  }

  void Spawn(size_t h) {
    const pid_t pid = ::fork();
    ESSDDS_CHECK(pid >= 0);
    if (pid == 0) {
      net::BucketHost::Config config;
      config.cluster = cluster_;
      config.host_index = h;
      config.options = Options();
      net::BucketHost host(config);
      if (!host.Start().ok()) ::_exit(3);
      for (;;) host.RunOnce(50);
    }
    pids_.push_back(pid);
  }

  std::string dir_;
  net::ClusterMap cluster_;
  std::vector<pid_t> pids_;
};

struct DepthNumbers {
  size_t depth = 0;
  size_t ops = 0;
  double ops_per_sec = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  uint64_t retries = 0;
};

double PercentileUs(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0;
  const size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(q * static_cast<double>(sorted_us.size())));
  return sorted_us[idx];
}

/// Inserts `ops` fresh keys keeping a window of `depth` in flight; latency
/// is submit-to-Await per op, throughput is the whole window-driven phase.
DepthNumbers RunDepth(size_t depth, size_t ops) {
  Cluster cluster("d" + std::to_string(depth));
  auto client = cluster.NewClient();

  const Bytes value = ToBytes("socket bench payload: forty-two bytes long!");
  // Warmup drives the first splits (and the IAM churn repairing the client
  // image) outside the measured phase.
  for (uint64_t i = 0; i < 512; ++i) {
    auto r = client->Insert(1'000'000 + i * 13, value);
    ESSDDS_CHECK(r.ok()) << r.status();
  }

  std::vector<double> lat_us;
  lat_us.reserve(ops);
  std::deque<std::pair<uint64_t, Clock::time_point>> window;
  auto complete_front = [&] {
    auto [token, start] = window.front();
    window.pop_front();
    auto r = client->Await(token);
    ESSDDS_CHECK(r.ok()) << r.status();
    lat_us.push_back(1e6 * SecondsSince(start));
  };

  const auto t0 = Clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t key = 9'000'000 + i * 7;
    auto token = client->SubmitInsert(key, value);
    ESSDDS_CHECK(token.ok()) << token.status();
    window.emplace_back(*token, Clock::now());
    if (window.size() >= depth) complete_front();
  }
  while (!window.empty()) complete_front();
  const double elapsed = SecondsSince(t0);

  DepthNumbers out;
  out.depth = depth;
  out.ops = ops;
  out.ops_per_sec = static_cast<double>(ops) / elapsed;
  std::sort(lat_us.begin(), lat_us.end());
  out.p50_us = PercentileUs(lat_us, 0.50);
  out.p95_us = PercentileUs(lat_us, 0.95);
  out.p99_us = PercentileUs(lat_us, 0.99);
  out.max_us = lat_us.back();
  out.retries = client->retry_count();
  return out;
}

struct ScrapeNumbers {
  double unwatched_ops_per_sec = 0;
  double watched_ops_per_sec = 0;
  double overhead_pct = 0;
  double blocked_pct = 0;
  bool overhead_ok = false;
  uint64_t scrapes = 0;
  double mean_scrape_us = 0;
};

/// The observability tax: the depth-64 insert workload with and without a
/// concurrent admin scrape loop. The watched chunks pull the full cluster
/// metrics once a second — the cadence of `essdds_admin watch`. The claim
/// (watching a live cluster costs under 5% of its throughput) is asserted
/// on the fraction of watched wall time spent blocked inside scrape round
/// trips — the direct cost, immune to the +/-10% run-to-run throughput
/// noise of a loaded multi-process cluster; the raw throughput delta is
/// reported alongside as context. Unwatched and watched chunks interleave on one
/// cluster — alternating which side goes first each round — so that table
/// growth (each chunk inserts fresh keys, so the LH* file keeps splitting)
/// and cache warmth bias neither side.
ScrapeNumbers RunScrape(size_t ops) {
  // A chunk must outlast the 1s scrape interval for the watched side to
  // actually scrape; at UDS speeds the default 4,000 ops finish in tens of
  // milliseconds, so the scrape leg has its own floor.
  const size_t chunk = std::max<size_t>(ops, 120'000);
  constexpr int kChunksPerSide = 2;

  Cluster cluster("scrape");
  auto client = cluster.NewClient();
  net::AdminClient::Options admin_opts;
  admin_opts.cluster = cluster.map();
  net::AdminClient admin(admin_opts);
  ESSDDS_CHECK(admin.Connect().ok());

  const Bytes value = ToBytes("socket bench payload: forty-two bytes long!");
  for (uint64_t i = 0; i < 512; ++i) {
    auto r = client->Insert(2'000'000 + i * 13, value);
    ESSDDS_CHECK(r.ok()) << r.status();
  }

  ScrapeNumbers out;
  double scrape_secs = 0;
  auto run_chunk = [&](uint64_t key_base, bool watched) -> double {
    std::deque<uint64_t> window;
    auto last_scrape = Clock::now();
    const auto t0 = Clock::now();
    for (uint64_t i = 0; i < chunk; ++i) {
      auto token = client->SubmitInsert(key_base + i * 7, value);
      ESSDDS_CHECK(token.ok()) << token.status();
      window.push_back(*token);
      if (window.size() >= 64) {
        auto r = client->Await(window.front());
        ESSDDS_CHECK(r.ok()) << r.status();
        window.pop_front();
      }
      if (watched && SecondsSince(last_scrape) >= 1.0) {
        const auto s0 = Clock::now();
        auto metrics = admin.Metrics();
        ESSDDS_CHECK(metrics.ok()) << metrics.status();
        ESSDDS_CHECK(metrics->hosts.size() == kHosts);
        scrape_secs += SecondsSince(s0);
        ++out.scrapes;
        last_scrape = Clock::now();
      }
    }
    while (!window.empty()) {
      auto r = client->Await(window.front());
      ESSDDS_CHECK(r.ok()) << r.status();
      window.pop_front();
    }
    return SecondsSince(t0);
  };

  double unwatched_secs = 0, watched_secs = 0;
  uint64_t key_base = 30'000'000;
  for (int round = 0; round < kChunksPerSide; ++round) {
    const bool watched_first = (round % 2) != 0;
    for (const bool watched : {watched_first, !watched_first}) {
      (watched ? watched_secs : unwatched_secs) += run_chunk(key_base, watched);
      key_base += 10'000'000;
    }
  }
  const double side_ops = static_cast<double>(chunk) * kChunksPerSide;
  out.unwatched_ops_per_sec = side_ops / unwatched_secs;
  out.watched_ops_per_sec = side_ops / watched_secs;
  out.overhead_pct =
      100.0 * (1.0 - out.watched_ops_per_sec / out.unwatched_ops_per_sec);
  out.blocked_pct = 100.0 * scrape_secs / watched_secs;
  out.overhead_ok = out.blocked_pct < 5.0;
  out.mean_scrape_us =
      out.scrapes > 0 ? 1e6 * scrape_secs / static_cast<double>(out.scrapes)
                      : 0.0;
  return out;
}

int Main() {
  const size_t ops = MeasuredOps();
  const std::vector<size_t> depths = {1, 8, 64};

  std::vector<DepthNumbers> results;
  for (const size_t d : depths) results.push_back(RunDepth(d, ops));

  JsonWriter w;
  w.BeginObject();
  w.KV("hosts", static_cast<uint64_t>(kHosts));
  w.KV("transport", "uds");
  w.KV("ops_per_depth", static_cast<uint64_t>(ops));
  w.Key("depths").BeginArray();
  for (const DepthNumbers& r : results) {
    w.BeginObject()
        .KV("depth", static_cast<uint64_t>(r.depth))
        .KV("ops", static_cast<uint64_t>(r.ops))
        .KV("ops_per_sec", r.ops_per_sec, 0)
        .KV("latency_p50_us", r.p50_us, 1)
        .KV("latency_p95_us", r.p95_us, 1)
        .KV("latency_p99_us", r.p99_us, 1)
        .KV("latency_max_us", r.max_us, 1)
        .KV("retries", r.retries)
        .EndObject();
  }
  w.EndArray();
  const double speedup =
      results.front().ops_per_sec > 0
          ? results.back().ops_per_sec / results.front().ops_per_sec
          : 0.0;
  w.KV("depth64_speedup_vs_depth1", speedup, 2);
  const bool pipelining_wins =
      results.back().ops_per_sec > results.front().ops_per_sec;
  w.KV("pipelining_wins", pipelining_wins);
  const ScrapeNumbers scrape = RunScrape(ops);
  w.Key("scrape").BeginObject();
  w.KV("watch_interval_ms", static_cast<uint64_t>(1000));
  w.KV("unwatched_ops_per_sec", scrape.unwatched_ops_per_sec, 0);
  w.KV("watched_ops_per_sec", scrape.watched_ops_per_sec, 0);
  w.KV("scrapes", scrape.scrapes);
  w.KV("mean_scrape_us", scrape.mean_scrape_us, 1);
  w.KV("scrape_blocked_pct", scrape.blocked_pct, 2);
  w.KV("watch_overhead_pct", scrape.overhead_pct, 2);
  w.KV("watch_overhead_ok", scrape.overhead_ok);
  w.EndObject();
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return pipelining_wins ? 0 : 1;
}

}  // namespace
}  // namespace essdds::bench

int main() { return essdds::bench::Main(); }
