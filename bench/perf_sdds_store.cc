// Macrobenchmarks: LH* operations and end-to-end encrypted-store insert and
// search latency (single simulated process; the interesting metric is
// throughput scaling, message counts are covered by access_messages).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "core/encrypted_store.h"
#include "sdds/lh_system.h"
#include "util/random.h"
#include "workload/phonebook.h"

namespace essdds {
namespace {

/// Reports the network traffic of the measured phase as per-op rates. Every
/// benchmark calls ResetStats() after its setup phase, so the counters (and
/// the metric registry behind them) describe only the iterations — setup
/// inserts never leak into the numbers.
void ReportPhaseTraffic(benchmark::State& state, const sdds::Network& net) {
  state.counters["msgs_per_op"] =
      benchmark::Counter(static_cast<double>(net.stats().total_messages),
                         benchmark::Counter::kAvgIterations);
  state.counters["bytes_per_op"] =
      benchmark::Counter(static_cast<double>(net.stats().total_bytes),
                         benchmark::Counter::kAvgIterations);
}

void BM_LhInsert(benchmark::State& state) {
  sdds::LhSystem sys(sdds::LhOptions{.bucket_capacity = 64});
  sdds::LhClient* client = sys.NewClient();
  Rng rng(1);
  sys.network().ResetStats();
  for (auto _ : state) {
    client->Insert(rng.Next(), Bytes(32, 'v'));
  }
  state.SetItemsProcessed(state.iterations());
  ReportPhaseTraffic(state, sys.network());
}
BENCHMARK(BM_LhInsert);

void BM_LhLookup(benchmark::State& state) {
  sdds::LhSystem sys(sdds::LhOptions{.bucket_capacity = 64});
  sdds::LhClient* client = sys.NewClient();
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<uint64_t> keys;
  Rng rng(2);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(rng.Next());
    client->Insert(keys.back(), Bytes(32, 'v'));
  }
  sys.network().ResetStats();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client->Lookup(keys[i++ % keys.size()]));
  }
  state.SetItemsProcessed(state.iterations());
  ReportPhaseTraffic(state, sys.network());
}
BENCHMARK(BM_LhLookup)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_LhScan(benchmark::State& state) {
  sdds::LhSystem sys(sdds::LhOptions{.bucket_capacity = 64});
  sdds::LhClient* client = sys.NewClient();
  Rng rng(3);
  const size_t n = static_cast<size_t>(state.range(0));
  for (size_t i = 0; i < n; ++i) client->Insert(rng.Next(), Bytes(32, 'v'));
  const uint64_t none =
      sys.InstallFilter([](uint64_t, ByteSpan, ByteSpan) { return false; });
  sys.network().ResetStats();
  for (auto _ : state) {
    auto result = client->Scan(none, {});
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  ReportPhaseTraffic(state, sys.network());
}
BENCHMARK(BM_LhScan)->Arg(10000);

std::unique_ptr<core::EncryptedStore> MakeStore(size_t corpus_size,
                                                core::SchemeParams params) {
  workload::PhonebookGenerator gen(7);
  auto corpus = gen.Generate(corpus_size);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);
  core::EncryptedStore::Options opts;
  opts.params = params;
  opts.record_file.bucket_capacity = 128;
  opts.index_file.bucket_capacity = 512;
  auto store = core::EncryptedStore::Create(opts, ToBytes("perf"), training);
  for (const auto& r : corpus) {
    if (!(*store)->Insert(r.rid, r.name).ok()) std::abort();
  }
  return *std::move(store);
}

void BM_StoreInsert(benchmark::State& state) {
  auto store = MakeStore(100, core::SchemeParams{.codes_per_chunk = 4,
                                                 .dispersal_sites = 4});
  workload::PhonebookGenerator gen(8);
  uint64_t seq = 1000000;
  store->index_file().network().ResetStats();
  store->record_file().network().ResetStats();
  for (auto _ : state) {
    auto rec = gen.GenerateOne(seq++ % 9000000);
    if (!store->Insert(rec.rid, rec.name).ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations());
  ReportPhaseTraffic(state, store->index_file().network());
}
BENCHMARK(BM_StoreInsert);

void BM_StoreSearch(benchmark::State& state) {
  auto store = MakeStore(static_cast<size_t>(state.range(0)),
                         core::SchemeParams{.codes_per_chunk = 4,
                                            .dispersal_sites = 4});
  store->index_file().network().ResetStats();
  for (auto _ : state) {
    auto rids = store->Search("SCHWARZ");
    if (!rids.ok()) std::abort();
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(state.iterations());
  ReportPhaseTraffic(state, store->index_file().network());
}
BENCHMARK(BM_StoreSearch)->Arg(1000)->Arg(5000);

void BM_StoreSearchStage2(benchmark::State& state) {
  auto store = MakeStore(
      2000, core::SchemeParams{.num_codes = 32, .codes_per_chunk = 4});
  for (auto _ : state) {
    auto rids = store->Search("SCHWARZ");
    if (!rids.ok()) std::abort();
    benchmark::DoNotOptimize(rids);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreSearchStage2);

}  // namespace
}  // namespace essdds

BENCHMARK_MAIN();
