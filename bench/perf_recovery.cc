// Recovery benchmarks: (1) the append-before-ack logging overhead — insert
// throughput of a RAM-only LhSystem against one writing encrypted bucket
// logs; (2) restart recovery — wall-clock to rebuild the full file from its
// logs, for a raw append-only history and for a checkpoint-compacted one
// (small floor, so each log is mostly a single snapshot frame); (3) parity
// reconstruction — kill a live bucket's site on the event network and
// measure the whole detect -> probe -> declare -> slice -> decode -> rebuild
// pipeline (DESIGN.md §16), for m = 1 and m = 2 parity headroom. Emits one
// JSON object so CI can track the numbers.
//
// Scale with ESSDDS_RECORDS=<n> (default 20,000 — logging overhead is
// per-record, recovery time is linear in the replayed history; the parity
// leg runs at 1/10th of it, event-network pumping is per-message).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sdds/event_network.h"
#include "sdds/lh_system.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/random.h"

namespace essdds::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Bytes Value(uint64_t key) {
  return ToBytes("recovery-bench-payload-" + std::to_string(key));
}

sdds::LhOptions MakeOptions(const std::string& data_dir,
                            size_t checkpoint_min) {
  sdds::LhOptions o;
  o.bucket_capacity = 128;
  o.data_dir = data_dir;
  o.log_checkpoint_min_bytes = checkpoint_min;
  return o;
}

struct LoadNumbers {
  double inserts_per_sec = 0;
  size_t buckets = 0;
  uintmax_t log_bytes = 0;  // on-disk footprint after the load
};

/// Inserts the workload into a fresh LhSystem (RAM-only when `data_dir` is
/// empty) and reports throughput plus the resulting on-disk footprint.
LoadNumbers RunLoad(size_t records, const std::string& data_dir,
                    size_t checkpoint_min) {
  Rng rng(20060401);
  std::vector<uint64_t> keys;
  keys.reserve(records);
  for (size_t i = 0; i < records; ++i) keys.push_back(rng.Next());

  sdds::LhSystem sys(MakeOptions(data_dir, checkpoint_min));
  sdds::LhClient* client = sys.NewClient();
  const auto start = Clock::now();
  for (uint64_t k : keys) client->Insert(k, Value(k));
  const double elapsed = SecondsSince(start);

  LoadNumbers out;
  out.inserts_per_sec = static_cast<double>(records) / elapsed;
  out.buckets = sys.bucket_count();
  if (!data_dir.empty()) {
    for (const auto& entry : std::filesystem::directory_iterator(data_dir)) {
      out.log_bytes += entry.file_size();
    }
  }
  return out;
}

struct RecoveryNumbers {
  double recovery_sec = 0;
  double records_per_sec = 0;
  size_t buckets = 0;
  uint64_t records = 0;
};

/// Rebuilds an LhSystem over an existing data directory — the restart path —
/// and reports how long the constructor's replay took.
RecoveryNumbers RunRecovery(const std::string& data_dir,
                            size_t checkpoint_min) {
  const auto start = Clock::now();
  sdds::LhSystem sys(MakeOptions(data_dir, checkpoint_min));
  RecoveryNumbers out;
  out.recovery_sec = SecondsSince(start);
  out.buckets = sys.recovered_bucket_count();
  out.records = sys.TotalRecords();
  out.records_per_sec = static_cast<double>(out.records) / out.recovery_sec;
  return out;
}

struct ReconstructionNumbers {
  size_t buckets = 0;        // file extent at kill time
  size_t kills = 0;          // completed trials
  double victim_records = 0; // mean records rebuilt per kill
  double wall_sec = 0;       // mean real seconds, kill -> rebuilt+verified
  double virtual_us = 0;     // mean virtual us, kill -> network idle
  uint64_t decl_to_rebuilt_us_p50 = 0;  // coordinator's own span (metrics)
};

/// Loads an event-network LhSystem with (k, m) parity groups, then
/// repeatedly kills a bucket's site and drives the full recovery pipeline —
/// client retries report the silence, the coordinator probes and declares,
/// the parity proxy gathers survivor slices and RS-decodes the loss, the
/// rebuilt bucket re-registers — timing kill-to-rebuilt and verifying the
/// reconstruction is byte-identical each trial.
ReconstructionNumbers RunReconstruction(size_t records, size_t k, size_t m,
                                        size_t kills) {
  sdds::LhOptions o;
  o.bucket_capacity = 32;
  o.merge_threshold = 0.0;  // socket parity v1: no shrinking under parity
  o.parity_group_size = k;
  o.parity_count = m;
  o.network_mode = sdds::NetworkMode::kEvent;
  o.event_net.seed = 20060401;
  // Same tight detection timings as the recovery suite: one retry burst
  // walks detect -> probe -> declare; rebuild immediately (no hold) so the
  // number is reconstruction cost, not the configured degraded window.
  o.request_timeout_us = 3'000;
  o.report_dead_after_retries = 2;
  o.ping_timeout_us = 6'000;
  o.recovery_hold_us = 0;
  sdds::LhSystem sys(o);
  sdds::LhClient* client = sys.NewClient();
  Rng rng(20060401);
  for (size_t i = 0; i < records; ++i) {
    const uint64_t key = rng.Next();
    client->Insert(key, Value(key));
  }
  sys.network().PumpUntilIdle();

  ReconstructionNumbers out;
  out.buckets = sys.bucket_count();
  for (size_t trial = 0; trial < kills; ++trial) {
    const uint64_t victim = (trial * 7 + 1) % sys.bucket_count();
    const auto healthy = sys.bucket(victim).records();
    if (healthy.empty()) continue;
    const uint64_t probe_key = healthy.begin()->first;
    out.victim_records += static_cast<double>(healthy.size());

    const uint64_t virtual_start = sys.event_network()->now_us();
    const auto start = Clock::now();
    sys.event_network()->KillSite(sys.bucket(victim).site());
    // The lookup's retries raise the kDeadSite report and park on the dead
    // address until the proxy takes it over; PumpUntilIdle then completes
    // the rebuild.
    auto r = client->Lookup(probe_key);
    sys.network().PumpUntilIdle();
    out.wall_sec += SecondsSince(start);
    out.virtual_us +=
        static_cast<double>(sys.event_network()->now_us() - virtual_start);

    ESSDDS_CHECK(r.ok()) << "key lost with the site";
    ESSDDS_CHECK(!sys.bucket_dead(victim));
    ESSDDS_CHECK(sys.bucket(victim).records() == healthy)
        << "reconstruction not byte-identical";
    ++out.kills;
  }
  if (out.kills > 0) {
    out.victim_records /= static_cast<double>(out.kills);
    out.wall_sec /= static_cast<double>(out.kills);
    out.virtual_us /= static_cast<double>(out.kills);
  }
  out.decl_to_rebuilt_us_p50 = sys.network()
                                   .metrics()
                                   .histogram("recovery.reconstruction_us")
                                   .Summarize()
                                   .p50;
  return out;
}

int Main() {
  const size_t records = CorpusSize(/*default_size=*/20'000);
  const std::string base =
      (std::filesystem::temp_directory_path() / "essdds_perf_recovery")
          .string();
  std::filesystem::remove_all(base);

  PrintHeader("Durable persistence: logging overhead and restart recovery (" +
              std::to_string(records) + " records)");

  const LoadNumbers ram = RunLoad(records, "", 64 * 1024);
  std::printf("RAM-only load:        %12.0f inserts/s (%zu buckets)\n",
              ram.inserts_per_sec, ram.buckets);

  // Raw history: a floor far above the workload, so no log ever compacts.
  const std::string raw_dir = base + "/raw";
  std::filesystem::create_directories(raw_dir);
  const size_t raw_floor = size_t{1} << 30;
  const LoadNumbers raw = RunLoad(records, raw_dir, raw_floor);
  std::printf("Logged load (raw):    %12.0f inserts/s (%.2fx overhead, "
              "%ju log bytes)\n",
              raw.inserts_per_sec, ram.inserts_per_sec / raw.inserts_per_sec,
              raw.log_bytes);

  // Compacted history: the default floor lets busy buckets checkpoint.
  const std::string ckpt_dir = base + "/compacted";
  std::filesystem::create_directories(ckpt_dir);
  const size_t ckpt_floor = 4 * 1024;
  const LoadNumbers ckpt = RunLoad(records, ckpt_dir, ckpt_floor);
  std::printf("Logged load (ckpt):   %12.0f inserts/s (%.2fx overhead, "
              "%ju log bytes)\n",
              ckpt.inserts_per_sec, ram.inserts_per_sec / ckpt.inserts_per_sec,
              ckpt.log_bytes);

  const RecoveryNumbers raw_rec = RunRecovery(raw_dir, raw_floor);
  std::printf("Recovery (raw):       %12.3f ms, %.0f records/s "
              "(%zu buckets, %llu records)\n",
              raw_rec.recovery_sec * 1e3, raw_rec.records_per_sec,
              raw_rec.buckets, static_cast<unsigned long long>(raw_rec.records));

  const RecoveryNumbers ckpt_rec = RunRecovery(ckpt_dir, ckpt_floor);
  std::printf("Recovery (ckpt):      %12.3f ms, %.0f records/s "
              "(%zu buckets, %llu records)\n",
              ckpt_rec.recovery_sec * 1e3, ckpt_rec.records_per_sec,
              ckpt_rec.buckets,
              static_cast<unsigned long long>(ckpt_rec.records));

  // Parity reconstruction (LH*RS-style site-kill recovery). 1/10th scale:
  // the event network pumps every message and parity delta one by one.
  const size_t parity_records = std::max<size_t>(records / 10, 500);
  const size_t kills = 3;
  PrintHeader("Parity reconstruction: site kill -> RS rebuild (" +
              std::to_string(parity_records) + " records, " +
              std::to_string(kills) + " kills per config)");
  const ReconstructionNumbers m1 =
      RunReconstruction(parity_records, /*k=*/4, /*m=*/1, kills);
  std::printf("Reconstruction k=4 m=1: %9.3f ms wall, %8.0f us virtual "
              "(%.0f records/kill, %zu buckets)\n",
              m1.wall_sec * 1e3, m1.virtual_us, m1.victim_records,
              m1.buckets);
  const ReconstructionNumbers m2 =
      RunReconstruction(parity_records, /*k=*/4, /*m=*/2, kills);
  std::printf("Reconstruction k=4 m=2: %9.3f ms wall, %8.0f us virtual "
              "(%.0f records/kill, %zu buckets)\n",
              m2.wall_sec * 1e3, m2.virtual_us, m2.victim_records,
              m2.buckets);

  JsonWriter w;
  w.BeginObject();
  w.Key("records").Value(static_cast<uint64_t>(records));
  w.Key("ram_inserts_per_sec").Value(ram.inserts_per_sec);
  w.Key("logged_inserts_per_sec_raw").Value(raw.inserts_per_sec);
  w.Key("logged_inserts_per_sec_compacted").Value(ckpt.inserts_per_sec);
  w.Key("log_bytes_raw").Value(static_cast<uint64_t>(raw.log_bytes));
  w.Key("log_bytes_compacted").Value(static_cast<uint64_t>(ckpt.log_bytes));
  w.Key("recovery_sec_raw").Value(raw_rec.recovery_sec);
  w.Key("recovery_sec_compacted").Value(ckpt_rec.recovery_sec);
  w.Key("recovered_records").Value(raw_rec.records);
  for (const auto* leg : {&m1, &m2}) {
    w.Key(leg == &m1 ? "reconstruction_k4m1" : "reconstruction_k4m2")
        .BeginObject()
        .KV("records", static_cast<uint64_t>(parity_records))
        .KV("buckets", static_cast<uint64_t>(leg->buckets))
        .KV("kills", static_cast<uint64_t>(leg->kills))
        .KV("victim_records_mean", leg->victim_records)
        .KV("reconstruction_wall_sec_mean", leg->wall_sec)
        .KV("reconstruction_virtual_us_mean", leg->virtual_us)
        .KV("declare_to_rebuilt_us_p50", leg->decl_to_rebuilt_us_p50)
        .EndObject();
  }
  w.EndObject();
  std::printf("\n%s\n", w.str().c_str());

  std::filesystem::remove_all(base);
  return 0;
}

}  // namespace
}  // namespace essdds::bench

int main() { return essdds::bench::Main(); }
