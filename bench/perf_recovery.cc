// Durability benchmark: (1) the append-before-ack logging overhead — insert
// throughput of a RAM-only LhSystem against one writing encrypted bucket
// logs; (2) restart recovery — wall-clock to rebuild the full file from its
// logs, for a raw append-only history and for a checkpoint-compacted one
// (small floor, so each log is mostly a single snapshot frame). Emits one
// JSON object so CI can track the numbers.
//
// Scale with ESSDDS_RECORDS=<n> (default 20,000 — logging overhead is
// per-record, recovery time is linear in the replayed history).

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sdds/lh_system.h"
#include "util/json_writer.h"
#include "util/random.h"

namespace essdds::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Bytes Value(uint64_t key) {
  return ToBytes("recovery-bench-payload-" + std::to_string(key));
}

sdds::LhOptions MakeOptions(const std::string& data_dir,
                            size_t checkpoint_min) {
  sdds::LhOptions o;
  o.bucket_capacity = 128;
  o.data_dir = data_dir;
  o.log_checkpoint_min_bytes = checkpoint_min;
  return o;
}

struct LoadNumbers {
  double inserts_per_sec = 0;
  size_t buckets = 0;
  uintmax_t log_bytes = 0;  // on-disk footprint after the load
};

/// Inserts the workload into a fresh LhSystem (RAM-only when `data_dir` is
/// empty) and reports throughput plus the resulting on-disk footprint.
LoadNumbers RunLoad(size_t records, const std::string& data_dir,
                    size_t checkpoint_min) {
  Rng rng(20060401);
  std::vector<uint64_t> keys;
  keys.reserve(records);
  for (size_t i = 0; i < records; ++i) keys.push_back(rng.Next());

  sdds::LhSystem sys(MakeOptions(data_dir, checkpoint_min));
  sdds::LhClient* client = sys.NewClient();
  const auto start = Clock::now();
  for (uint64_t k : keys) client->Insert(k, Value(k));
  const double elapsed = SecondsSince(start);

  LoadNumbers out;
  out.inserts_per_sec = static_cast<double>(records) / elapsed;
  out.buckets = sys.bucket_count();
  if (!data_dir.empty()) {
    for (const auto& entry : std::filesystem::directory_iterator(data_dir)) {
      out.log_bytes += entry.file_size();
    }
  }
  return out;
}

struct RecoveryNumbers {
  double recovery_sec = 0;
  double records_per_sec = 0;
  size_t buckets = 0;
  uint64_t records = 0;
};

/// Rebuilds an LhSystem over an existing data directory — the restart path —
/// and reports how long the constructor's replay took.
RecoveryNumbers RunRecovery(const std::string& data_dir,
                            size_t checkpoint_min) {
  const auto start = Clock::now();
  sdds::LhSystem sys(MakeOptions(data_dir, checkpoint_min));
  RecoveryNumbers out;
  out.recovery_sec = SecondsSince(start);
  out.buckets = sys.recovered_bucket_count();
  out.records = sys.TotalRecords();
  out.records_per_sec = static_cast<double>(out.records) / out.recovery_sec;
  return out;
}

int Main() {
  const size_t records = CorpusSize(/*default_size=*/20'000);
  const std::string base =
      (std::filesystem::temp_directory_path() / "essdds_perf_recovery")
          .string();
  std::filesystem::remove_all(base);

  PrintHeader("Durable persistence: logging overhead and restart recovery (" +
              std::to_string(records) + " records)");

  const LoadNumbers ram = RunLoad(records, "", 64 * 1024);
  std::printf("RAM-only load:        %12.0f inserts/s (%zu buckets)\n",
              ram.inserts_per_sec, ram.buckets);

  // Raw history: a floor far above the workload, so no log ever compacts.
  const std::string raw_dir = base + "/raw";
  std::filesystem::create_directories(raw_dir);
  const size_t raw_floor = size_t{1} << 30;
  const LoadNumbers raw = RunLoad(records, raw_dir, raw_floor);
  std::printf("Logged load (raw):    %12.0f inserts/s (%.2fx overhead, "
              "%ju log bytes)\n",
              raw.inserts_per_sec, ram.inserts_per_sec / raw.inserts_per_sec,
              raw.log_bytes);

  // Compacted history: the default floor lets busy buckets checkpoint.
  const std::string ckpt_dir = base + "/compacted";
  std::filesystem::create_directories(ckpt_dir);
  const size_t ckpt_floor = 4 * 1024;
  const LoadNumbers ckpt = RunLoad(records, ckpt_dir, ckpt_floor);
  std::printf("Logged load (ckpt):   %12.0f inserts/s (%.2fx overhead, "
              "%ju log bytes)\n",
              ckpt.inserts_per_sec, ram.inserts_per_sec / ckpt.inserts_per_sec,
              ckpt.log_bytes);

  const RecoveryNumbers raw_rec = RunRecovery(raw_dir, raw_floor);
  std::printf("Recovery (raw):       %12.3f ms, %.0f records/s "
              "(%zu buckets, %llu records)\n",
              raw_rec.recovery_sec * 1e3, raw_rec.records_per_sec,
              raw_rec.buckets, static_cast<unsigned long long>(raw_rec.records));

  const RecoveryNumbers ckpt_rec = RunRecovery(ckpt_dir, ckpt_floor);
  std::printf("Recovery (ckpt):      %12.3f ms, %.0f records/s "
              "(%zu buckets, %llu records)\n",
              ckpt_rec.recovery_sec * 1e3, ckpt_rec.records_per_sec,
              ckpt_rec.buckets,
              static_cast<unsigned long long>(ckpt_rec.records));

  JsonWriter w;
  w.BeginObject();
  w.Key("records").Value(static_cast<uint64_t>(records));
  w.Key("ram_inserts_per_sec").Value(ram.inserts_per_sec);
  w.Key("logged_inserts_per_sec_raw").Value(raw.inserts_per_sec);
  w.Key("logged_inserts_per_sec_compacted").Value(ckpt.inserts_per_sec);
  w.Key("log_bytes_raw").Value(static_cast<uint64_t>(raw.log_bytes));
  w.Key("log_bytes_compacted").Value(static_cast<uint64_t>(ckpt.log_bytes));
  w.Key("recovery_sec_raw").Value(raw_rec.recovery_sec);
  w.Key("recovery_sec_compacted").Value(ckpt_rec.recovery_sec);
  w.Key("recovered_records").Value(raw_rec.records);
  w.EndObject();
  std::printf("\n%s\n", w.str().c_str());

  std::filesystem::remove_all(base);
  return 0;
}

}  // namespace
}  // namespace essdds::bench

int main() { return essdds::bench::Main(); }
