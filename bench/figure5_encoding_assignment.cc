// Reproduces Figure 5: the symbol -> encoding assignment for 8 possible
// encodings, trained on the 1000-record sample. The paper's table shows the
// greedy balancing pattern: the 8 most frequent symbols take codes 0..7 in
// order, then assignment snakes back through the least-loaded buckets.

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codec/symbol_encoder.h"
#include "workload/phonebook.h"

int main() {
  const size_t n = essdds::bench::CorpusSize();
  auto corpus = essdds::bench::LoadCorpus(n);
  auto sample = essdds::workload::SampleRecords(corpus, 1000, 19741);

  essdds::bench::PrintHeader(
      "Figure 5: encoding assignment for 8 possible encodings "
      "(1000-record sample)");

  std::map<std::string, uint64_t> counts;
  for (const auto* rec : sample) {
    for (char c : rec->name) counts[std::string(1, c)]++;
  }
  auto encoder = essdds::codec::FrequencyEncoder::FromCounts(
      counts, {.unit_symbols = 1, .num_codes = 8});
  if (!encoder.ok()) {
    std::fprintf(stderr, "%s\n", encoder.status().ToString().c_str());
    return 1;
  }

  // Print by descending count, like the paper's figure.
  std::vector<std::pair<std::string, uint64_t>> ranked(counts.begin(),
                                                       counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::printf("  %-8s | %-8s | %-8s\n", "Symbol", "Quantity", "Encoding");
  for (const auto& [symbol, count] : ranked) {
    const std::string display = symbol == " " ? "space" : symbol;
    std::printf("  %-8s | %-8llu | %u\n", display.c_str(),
                static_cast<unsigned long long>(count),
                encoder->assignment().at(symbol));
  }

  std::printf("\nBucket loads (training objective: equal):\n  ");
  for (uint32_t b = 0; b < 8; ++b) {
    std::printf("%u:%llu  ", b,
                static_cast<unsigned long long>(encoder->bucket_loads()[b]));
  }
  std::printf(
      "\n\nShape check (paper Figure 5): the eight most frequent symbols\n"
      "receive the eight distinct codes; later symbols fill the lightest\n"
      "buckets, so rare symbols share codes with frequent ones.\n");
  return 0;
}
