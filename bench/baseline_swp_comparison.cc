// Comparison against the Song/Wagner/Perrig word-search baseline the paper
// positions itself against: capability (words vs arbitrary substrings),
// storage footprint, and accuracy, on the same directory sample.

#include <cstdio>
#include <string>
#include <vector>

#include "baseline/swp_word_store.h"
#include "bench/bench_util.h"
#include "bench/fp_util.h"
#include "core/encrypted_store.h"
#include "workload/phonebook.h"

using essdds::Bytes;
using essdds::ToBytes;

int main() {
  const size_t n = essdds::bench::CorpusSize(3000);
  auto corpus = essdds::bench::LoadCorpus(n);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);

  essdds::bench::PrintHeader(
      "Baseline: SWP00 word search vs this paper's chunked substring "
      "search, " + std::to_string(n) + " records");

  // Build both stores.
  auto swp = essdds::baseline::SwpWordStore::Create(ToBytes("compare"));
  essdds::core::EncryptedStore::Options opts;
  opts.params = essdds::core::SchemeParams{.codes_per_chunk = 4,
                                           .dispersal_sites = 4};
  opts.index_file.bucket_capacity = 512;
  auto ours = essdds::core::EncryptedStore::Create(opts, ToBytes("compare"),
                                                   training);
  if (!swp.ok() || !ours.ok()) return 1;
  for (const auto& r : corpus) {
    if (!(*swp)->Insert(r.rid, r.name).ok()) return 1;
    if (!(*ours)->Insert(r.rid, r.name).ok()) return 1;
  }

  // Storage.
  auto index_bytes = [](essdds::sdds::LhSystem& sys) {
    uint64_t bytes = 0;
    for (uint64_t b = 0; b < sys.bucket_count(); ++b) {
      for (const auto& [key, value] : sys.bucket(b).records()) {
        bytes += 8 + value.size();
      }
    }
    return bytes;
  };
  uint64_t plain = 0;
  for (const auto& r : corpus) plain += r.name.size();
  std::printf("storage: plaintext %llu B | SWP index %llu B (%.2fx) | "
              "ESSDDS index %llu B (%.2fx)\n",
              static_cast<unsigned long long>(plain),
              static_cast<unsigned long long>(index_bytes((*swp)->file())),
              static_cast<double>(index_bytes((*swp)->file())) / plain,
              static_cast<unsigned long long>(
                  index_bytes((*ours)->index_file())),
              static_cast<double>(index_bytes((*ours)->index_file())) / plain);

  // Accuracy and capability over 200 sampled surnames.
  auto sample = essdds::workload::SampleRecords(corpus, 200, 3);
  uint64_t swp_word_hits = 0, swp_word_misses = 0;
  uint64_t ours_hits = 0, ours_fp = 0, ours_misses = 0;
  uint64_t swp_prefix_found = 0, ours_prefix_found = 0;
  size_t prefix_queries = 0;
  for (const auto* rec : sample) {
    const std::string surname(essdds::workload::SurnameOf(*rec));
    // Whole-word search: both systems should find the record.
    auto swp_rids = (*swp)->SearchWord(surname);
    if (swp_rids.ok()) {
      const bool hit = std::binary_search(swp_rids->begin(), swp_rids->end(),
                                          rec->rid);
      swp_word_hits += hit;
      swp_word_misses += !hit;
    }
    if (surname.size() >= (*ours)->params().min_query_symbols()) {
      auto rids = (*ours)->Search(surname);
      if (rids.ok()) {
        ours_hits +=
            std::binary_search(rids->begin(), rids->end(), rec->rid);
        ours_misses +=
            !std::binary_search(rids->begin(), rids->end(), rec->rid);
        for (uint64_t rid : *rids) {
          auto content = (*ours)->Get(rid);
          ours_fp += content.ok() &&
                     essdds::bench::IsFalsePositive(*content, surname);
        }
      }
    }
    // Substring capability: search a 5-char prefix of long surnames.
    if (surname.size() >= 7) {
      ++prefix_queries;
      const std::string prefix = surname.substr(0, 5);
      auto swp_prefix = (*swp)->SearchWord(prefix);
      if (swp_prefix.ok()) {
        swp_prefix_found += std::binary_search(
            swp_prefix->begin(), swp_prefix->end(), rec->rid);
      }
      auto our_prefix = (*ours)->Search(prefix);
      if (our_prefix.ok()) {
        ours_prefix_found += std::binary_search(
            our_prefix->begin(), our_prefix->end(), rec->rid);
      }
    }
  }

  std::printf("\nwhole-word search (200 surnames):\n");
  std::printf("  SWP00:  %llu found, %llu missed (exact words only, 0 FP by "
              "construction)\n",
              static_cast<unsigned long long>(swp_word_hits),
              static_cast<unsigned long long>(swp_word_misses));
  std::printf("  ESSDDS: %llu found, %llu missed, %llu false positives\n",
              static_cast<unsigned long long>(ours_hits),
              static_cast<unsigned long long>(ours_misses),
              static_cast<unsigned long long>(ours_fp));
  std::printf("\nsubstring (5-char prefix of %zu long surnames):\n",
              prefix_queries);
  std::printf("  SWP00:  %llu found  <- word-only search cannot see "
              "fragments\n",
              static_cast<unsigned long long>(swp_prefix_found));
  std::printf("  ESSDDS: %llu found  <- chunked index searches arbitrary "
              "patterns\n",
              static_cast<unsigned long long>(ours_prefix_found));

  std::printf(
      "\nShape check: SWP wins on exactness and per-word storage; the\n"
      "paper's scheme is the only one that answers substring queries —\n"
      "its reason to exist — at the cost of s-fold index storage and a\n"
      "false-positive tail.\n");
  return 0;
}
