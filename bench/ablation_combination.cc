// Ablation of the cross-chunking combination rule. §2.3 claims "it is not
// possible that a search results in false positives from all sites": a
// record reported by EVERY chunking family that could structurally observe
// the occurrence is much more trustworthy than one reported by any single
// family. The paper's own FP experiments (§7) used the any-family rule;
// this bench quantifies what the all-expected-families filter buys.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fp_util.h"
#include "core/encrypted_store.h"
#include "workload/phonebook.h"

using essdds::Bytes;
using essdds::ByteSpan;
using essdds::ToBytes;

namespace {

struct Row {
  std::string name;
  uint64_t fp = 0;
  uint64_t miss = 0;
  uint64_t hits = 0;
};

}  // namespace

int main() {
  const size_t n = essdds::bench::CorpusSize(3000);
  auto corpus = essdds::bench::LoadCorpus(n);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);
  auto sample = essdds::workload::SampleRecords(corpus, 400, 7);

  essdds::bench::PrintHeader(
      "Ablation: any-chunking (paper experiments) vs all-expected-chunkings "
      "(paper's filter claim), " + std::to_string(n) + " records");

  // An aggressive Stage-2 configuration so code collisions are common and
  // the combination rule actually matters.
  essdds::core::SchemeParams base{.num_codes = 8, .codes_per_chunk = 2};

  std::vector<Row> rows;
  for (auto mode : {essdds::core::CombinationMode::kAnyChunking,
                    essdds::core::CombinationMode::kAllExpectedChunkings}) {
    essdds::core::SchemeParams params = base;
    params.combination = mode;
    essdds::core::EncryptedStore::Options opts;
    opts.params = params;
    opts.record_file.bucket_capacity = 256;
    opts.index_file.bucket_capacity = 512;
    auto store = essdds::core::EncryptedStore::Create(
        opts, ToBytes("combination ablation"), training);
    if (!store.ok()) {
      std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
      return 1;
    }
    for (const auto& r : corpus) {
      if (!(*store)->Insert(r.rid, r.name).ok()) return 1;
    }

    Row row;
    row.name = mode == essdds::core::CombinationMode::kAnyChunking
                   ? "any-chunking (OR)"
                   : "all-expected (AND)";
    const size_t min_len = (*store)->params().min_query_symbols();
    for (const auto* rec : sample) {
      std::string q(essdds::workload::SurnameOf(*rec));
      if (q.size() < min_len) continue;
      auto rids = (*store)->Search(q);
      if (!rids.ok()) return 1;
      bool found_self = false;
      for (uint64_t rid : *rids) {
        if (rid == rec->rid) found_self = true;
        auto content = (*store)->Get(rid);
        if (content.ok() && essdds::bench::IsFalsePositive(*content, q)) {
          row.fp++;
        }
      }
      row.hits += rids->size();
      row.miss += !found_self;
    }
    rows.push_back(row);
  }

  std::printf("  %-22s | %-8s | %-6s | %-6s\n", "combination", "hits", "FP",
              "miss");
  for (const Row& r : rows) {
    std::printf("  %-22s | %-8llu | %-6llu | %-6llu\n", r.name.c_str(),
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.fp),
                static_cast<unsigned long long>(r.miss));
  }
  std::printf(
      "\nShape check: the AND rule cuts false positives (often to a small\n"
      "fraction) at identical recall — misses are 0 in both modes.\n");
  return 0;
}
