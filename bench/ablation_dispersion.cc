// The experiment the paper left open ("Currently, we are investigating the
// impact of dispersion"): take the conclusion's recommended configuration —
// chunks of 6 ASCII characters dispersed into 3 index records (16-bit
// pieces) — and measure (i) how random a single dispersal site's stream
// looks (chi2 + NIST-style battery) and (ii) the false-positive cost,
// against Stage-1-only and Stage-1+2 baselines.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fp_util.h"
#include "core/encrypted_store.h"
#include "stats/chi_squared.h"
#include "stats/ngram.h"
#include "stats/randomness.h"
#include "workload/phonebook.h"

using essdds::Bytes;
using essdds::ByteSpan;
using essdds::ToBytes;

namespace {

struct Config {
  std::string name;
  essdds::core::SchemeParams params;
};

std::unique_ptr<essdds::core::EncryptedStore> MakeStore(
    const essdds::core::SchemeParams& params,
    const std::vector<std::string>& training) {
  essdds::core::EncryptedStore::Options opts;
  opts.params = params;
  opts.record_file.bucket_capacity = 256;
  opts.index_file.bucket_capacity = 512;
  auto store =
      essdds::core::EncryptedStore::Create(opts, ToBytes("ablation"), training);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    std::abort();
  }
  return *std::move(store);
}

}  // namespace

int main() {
  const size_t n = essdds::bench::CorpusSize(5000);
  auto corpus = essdds::bench::LoadCorpus(n);
  std::vector<std::string> training;
  for (const auto& r : corpus) training.push_back(r.name);

  essdds::bench::PrintHeader(
      "Ablation: impact of dispersion (paper's open experiment), " +
      std::to_string(n) + " records");

  const std::vector<Config> configs = {
      {"stage1 only (s=6)", {.codes_per_chunk = 6}},
      {"stage1+3: s=6, k=3 (paper conclusion)",
       {.codes_per_chunk = 6, .dispersal_sites = 3}},
      {"stage1+2: s=6, 16 codes/char (lossy)",
       {.num_codes = 16, .codes_per_chunk = 6}},
      {"stage1+2+3: 16 codes, k=3",
       {.num_codes = 16, .codes_per_chunk = 6, .dispersal_sites = 3}},
  };

  // Queries: surnames of 300 sampled records that satisfy the minimum
  // query length (6 symbols).
  auto sample = essdds::workload::SampleRecords(corpus, 300, 42);

  std::printf("  %-38s | %-11s | %-12s | %-10s | %-6s | %-5s\n", "config",
              "chi2 single", "chi2 doublet", "rand pass", "FP", "miss");
  for (const Config& cfg : configs) {
    auto store = MakeStore(cfg.params, training);
    for (const auto& r : corpus) {
      if (!store->Insert(r.rid, r.name).ok()) return 1;
    }

    // Attacker's view: the value stream at one index "site" (family 0,
    // dispersal site 0), packed to bits and analyzed byte-wise so all
    // configurations are measured over the same 256-symbol alphabet.
    const int value_bits = store->pipeline().stream_value_bits();
    essdds::stats::NgramCounter singles(1, 256);
    essdds::stats::NgramCounter doublets(2, 256);
    Bytes site_bits;
    for (const auto& r : corpus) {
      auto recs = store->pipeline().BuildIndexRecords(r.rid, r.name);
      const auto& stream = recs[0].stream;  // family 0, site 0
      std::vector<uint32_t> syms(stream.begin(), stream.end());
      Bytes packed = essdds::stats::PackSymbolsToBits(syms, value_bits);
      std::vector<uint32_t> bytes_syms(packed.begin(), packed.end());
      singles.Add(bytes_syms);
      doublets.Add(bytes_syms);
      site_bits.insert(site_bits.end(), packed.begin(), packed.end());
    }
    int passes = 0;
    auto battery = essdds::stats::RunAllRandomnessTests(site_bits);
    for (const auto& t : battery) passes += t.passed;

    // Search quality.
    uint64_t fp = 0, miss = 0;
    const size_t min_len = store->params().min_query_symbols();
    for (const auto* rec : sample) {
      std::string q(essdds::workload::SurnameOf(*rec));
      if (q.size() < min_len) continue;
      auto rids = store->Search(q);
      if (!rids.ok()) return 1;
      bool found_self = false;
      for (uint64_t rid : *rids) {
        if (rid == rec->rid) found_self = true;
        auto content = store->Get(rid);
        if (content.ok() && essdds::bench::IsFalsePositive(*content, q)) {
          ++fp;
        }
      }
      miss += !found_self;
    }

    std::printf("  %-38s | %-11s | %-12s | %d/%-8zu | %-6llu | %-5llu\n",
                cfg.name.c_str(),
                essdds::bench::FormatChi2(
                    essdds::stats::ChiSquaredUniform(singles))
                    .c_str(),
                essdds::bench::FormatChi2(
                    essdds::stats::ChiSquaredUniform(doublets))
                    .c_str(),
                passes, battery.size(),
                static_cast<unsigned long long>(fp),
                static_cast<unsigned long long>(miss));
  }

  std::printf(
      "\nShape check: dispersal (k=3) cuts a single site's chi2 by two\n"
      "orders of magnitude at zero false-positive cost (the cross-site AND\n"
      "makes dispersal lossless for search); Stage 2 on top flattens it\n"
      "further; with 6-character chunks even a lossy 16-code encoding adds\n"
      "no false positives (collisions need a full 6-gram match) — exactly\n"
      "the sweet spot the paper's conclusion conjectures; misses stay 0.\n");
  return 0;
}
