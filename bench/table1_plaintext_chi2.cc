// Reproduces Table 1 of the paper: chi-squared values for single letters,
// doublets and triplets of the (synthetic) SF phone directory names, plus
// the most frequent 1/2/3-grams.
//
// Paper reference values (282,965 real entries):
//   chi2 single 2,071,885 | doublets 10,725,271 | triplets 40,450,503
//   top letters A 11.1%, E 9.89%, N 8.55%, R 7.55%, I 6.98%, O 6.27%
//   top doublets AN 3.21%, ER 2.33%, AR 2.11%, ON 1.87%, IN 1.71%
//   top triplets CHA 0.69%, MAR 0.64%, SON 0.50%, ONG 0.50%, ANG 0.49%

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "stats/chi_squared.h"
#include "stats/ngram.h"

namespace {

// Name alphabet: A-Z (0..25), space (26), the rare &, ', - fold onto 27..29.
constexpr uint64_t kAlphabet = 30;

uint32_t SymbolOf(char c) {
  if (c >= 'A' && c <= 'Z') return static_cast<uint32_t>(c - 'A');
  if (c == ' ') return 26;
  if (c == '&') return 27;
  if (c == '\'') return 28;
  return 29;
}

std::string NameOfCell(const essdds::stats::NgramCounter& counter,
                       uint64_t cell) {
  std::string out;
  for (uint32_t s : counter.UnpackCell(cell)) {
    if (s < 26) {
      out += static_cast<char>('A' + s);
    } else if (s == 26) {
      out += '_';
    } else {
      out += '&';
    }
  }
  return out;
}

}  // namespace

int main() {
  using essdds::bench::FormatChi2;
  const size_t n = essdds::bench::CorpusSize();
  auto corpus = essdds::bench::LoadCorpus(n);

  essdds::bench::PrintHeader(
      "Table 1: chi2 values for the (synthetic) SF Phone Directory, " +
      std::to_string(n) + " entries");

  essdds::stats::NgramCounter singles(1, kAlphabet);
  essdds::stats::NgramCounter doublets(2, kAlphabet);
  essdds::stats::NgramCounter triplets(3, kAlphabet);
  std::vector<uint32_t> symbols;
  for (const auto& rec : corpus) {
    symbols.clear();
    for (char c : rec.name) symbols.push_back(SymbolOf(c));
    singles.Add(symbols);
    doublets.Add(symbols);
    triplets.Add(symbols);
  }

  std::printf("chi2 (Single Letter) | %15s   (paper:  2,071,885)\n",
              FormatChi2(essdds::stats::ChiSquaredUniform(singles)).c_str());
  std::printf("chi2 (Doublets)      | %15s   (paper: 10,725,271)\n",
              FormatChi2(essdds::stats::ChiSquaredUniform(doublets)).c_str());
  std::printf("chi2 (Triplets)      | %15s   (paper: 40,450,503)\n",
              FormatChi2(essdds::stats::ChiSquaredUniform(triplets)).c_str());

  std::printf("\nMost frequent single letters (paper: A 11.1%%, E 9.89%%, "
              "N 8.55%%, R 7.55%%, I 6.98%%, O 6.27%%):\n");
  for (const auto& e : singles.Top(6)) {
    std::printf("  %-3s | %5.2f%%\n", NameOfCell(singles, e.cell).c_str(),
                100.0 * e.fraction);
  }
  std::printf("\nMost frequent doublets (paper: AN 3.21%%, ER 2.33%%, "
              "AR 2.11%%, ON 1.87%%, IN 1.71%%):\n");
  for (const auto& e : doublets.Top(5)) {
    std::printf("  %-3s | %5.2f%%\n", NameOfCell(doublets, e.cell).c_str(),
                100.0 * e.fraction);
  }
  std::printf("\nMost frequent triplets (paper: CHA 0.69%%, MAR 0.64%%, "
              "SON 0.50%%, ONG 0.50%%, ANG 0.49%%):\n");
  for (const auto& e : triplets.Top(5)) {
    std::printf("  %-4s| %5.2f%%\n", NameOfCell(triplets, e.cell).c_str(),
                100.0 * e.fraction);
  }
  std::printf("\nShape check: chi2 triplets >> doublets >> singles, all far\n"
              "beyond uniform-random expectation (alphabet %llu).\n",
              static_cast<unsigned long long>(kAlphabet));
  return 0;
}
