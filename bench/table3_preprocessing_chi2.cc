// Reproduces Table 3: chi-squared after redundancy removal (Stage 2) alone.
// Symbols are grouped into units of n = 1, 2, 4, 6 characters; all units
// are ranked by corpus frequency and greedily packed into #enc equally
// loaded code buckets; the bench then measures the single/doublet/triplet
// statistics of the resulting code streams.
//
// Paper shape to reproduce (exact values are corpus-dependent):
//  - single-code chi2 is tiny when #distinct units >> #encodings (the
//    greedy packing equalizes the histogram) and explodes when the unit
//    space is too small (n=1 with 16 encodings, n=2 with 128);
//  - doublet/triplet chi2 stays orders of magnitude above the single chi2
//    (inter-chunk predictability: SMIT->H, MILL->ER);
//  - larger units push all values down.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "codec/symbol_encoder.h"
#include "stats/chi_squared.h"
#include "stats/ngram.h"

namespace {

struct Row {
  uint32_t encodings;
  double chi2_single;
  double chi2_double;
  double chi2_triple;
};

}  // namespace

int main() {
  using essdds::bench::FormatChi2;
  const size_t n_records = essdds::bench::CorpusSize();
  auto corpus = essdds::bench::LoadCorpus(n_records);

  essdds::bench::PrintHeader(
      "Table 3: chi2 after pre-processing (lossy unit encoding), " +
      std::to_string(n_records) + " entries");

  const std::map<int, std::vector<uint32_t>> sweeps = {
      {1, {2, 4, 8, 16}},
      {2, {8, 16, 32, 64, 128}},
      {4, {16, 32, 64, 128}},
      {6, {16, 32, 64, 128}},
  };

  for (const auto& [unit, encodings_list] : sweeps) {
    // Count unit occurrences once per unit size (offset-0 grouping, exactly
    // like the paper's "LITWIN WITOLD" -> "LITW" "IN W" "ITOL" example).
    std::map<std::string, uint64_t> counts;
    for (const auto& rec : corpus) {
      const std::string& s = rec.name;
      for (size_t pos = 0; pos + static_cast<size_t>(unit) <= s.size();
           pos += static_cast<size_t>(unit)) {
        counts[s.substr(pos, static_cast<size_t>(unit))]++;
      }
    }

    std::vector<Row> rows;
    for (uint32_t enc : encodings_list) {
      auto encoder = essdds::codec::FrequencyEncoder::FromCounts(
          counts, {.unit_symbols = unit, .num_codes = enc});
      if (!encoder.ok()) {
        std::fprintf(stderr, "encoder: %s\n",
                     encoder.status().ToString().c_str());
        return 1;
      }
      essdds::stats::NgramCounter singles(1, enc);
      essdds::stats::NgramCounter doublets(2, enc);
      essdds::stats::NgramCounter triplets(3, enc);
      for (const auto& rec : corpus) {
        std::vector<uint32_t> codes = encoder->EncodeStream(rec.name, 0);
        singles.Add(codes);
        doublets.Add(codes);
        triplets.Add(codes);
      }
      rows.push_back(Row{enc, essdds::stats::ChiSquaredUniform(singles),
                         essdds::stats::ChiSquaredUniform(doublets),
                         essdds::stats::ChiSquaredUniform(triplets)});
    }

    std::printf("\nChunk Size = %d\n", unit);
    std::printf("  %-8s | %-14s | %-14s | %-14s\n", "# encod.", "chi2 single",
                "chi2 double", "chi2 triple");
    for (const Row& r : rows) {
      std::printf("  %-8u | %-14s | %-14s | %-14s\n", r.encodings,
                  FormatChi2(r.chi2_single).c_str(),
                  FormatChi2(r.chi2_double).c_str(),
                  FormatChi2(r.chi2_triple).c_str());
    }
  }

  std::printf(
      "\nShape check (paper Table 3): single chi2 near zero while distinct\n"
      "units >> encodings; rises sharply once the unit space is exhausted\n"
      "(n=1/enc=16, n=2/enc=128); doublet and triplet chi2 remain large\n"
      "(inter-chunk predictability); larger chunks lower everything.\n");
  return 0;
}
