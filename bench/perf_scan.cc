// Scan-engine benchmark: (1) the site-side matcher — seed-style naive
// matching (per-record failure-table construction via FindOccurrences)
// against the compiled query (tables built once per scan); (2) the scan
// executor itself — the old spawn-threads-per-batch scheme against the
// persistent ScanWorkerPool, with and without intra-bucket sharding;
// (3) end-to-end encrypted search on the phonebook workload, serial vs
// pooled vs pooled+sharded index scans. Emits one JSON object so CI can
// track the numbers.
//
// Scale with ESSDDS_RECORDS=<n> (default 20,000 — the matcher contrast is
// size-independent, the executor and end-to-end parts are wall-clock
// bound).

#include <chrono>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

#if ESSDDS_THREADS
#include <atomic>
#include <thread>
#endif

#include "bench/bench_util.h"
#include "core/batch_matcher.h"
#include "core/compiled_query.h"
#include "core/encrypted_store.h"
#include "core/matcher.h"
#include "core/pipeline.h"
#include "obs/metrics.h"
#include "sdds/scan_executor.h"
#include "util/json_writer.h"
#include "util/random.h"

namespace essdds::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One stored index record as the scan sees it: coordinates plus stream.
struct IndexedStream {
  uint32_t family;
  uint32_t site;
  std::vector<uint64_t> stream;
};

/// The seed's per-record matching path: FindOccurrences builds the KMP
/// failure table (and an occurrence vector) anew for every record.
bool NaiveMatch(const core::SearchQuery& query, const IndexedStream& rec) {
  for (const core::QuerySeries& s : query.SeriesFor(rec.family)) {
    const std::vector<uint64_t>& pattern = query.PatternFor(s, rec.site);
    if (!core::FindOccurrences(rec.stream, pattern).empty()) return true;
  }
  return false;
}

struct MatcherNumbers {
  double naive_records_per_sec = 0;
  double compiled_records_per_sec = 0;
  double columnar_records_per_sec = 0;
  size_t records = 0;
  size_t matched = 0;
};

MatcherNumbers RunMatcherContrast(size_t corpus_size) {
  const core::SchemeParams params{.codes_per_chunk = 4, .dispersal_sites = 2};
  auto corpus = LoadCorpus(corpus_size);
  std::vector<std::string> training;
  training.reserve(corpus.size());
  for (const auto& r : corpus) training.push_back(r.name);
  auto pipeline =
      core::IndexPipeline::Create(params, ToBytes("perf-scan-key"), training);
  ESSDDS_CHECK(pipeline.ok()) << pipeline.status();

  std::vector<IndexedStream> records;
  for (const auto& r : corpus) {
    for (core::IndexRecordData& rec :
         pipeline->BuildIndexRecords(r.rid, r.name)) {
      records.push_back(
          IndexedStream{rec.family, rec.site, std::move(rec.stream)});
    }
  }
  auto built = pipeline->BuildQuery("SCHWARZ");
  ESSDDS_CHECK(built.ok()) << built.status();
  const core::SearchQuery query = *std::move(built);

  MatcherNumbers out;
  out.records = records.size();

  // Several passes so each side runs long enough to time reliably.
  const int kPasses = 5;
  size_t naive_matched = 0;
  auto t0 = Clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const IndexedStream& rec : records) {
      naive_matched += NaiveMatch(query, rec) ? 1 : 0;
    }
  }
  const double naive_s = SecondsSince(t0);

  const core::CompiledQuery compiled{core::SearchQuery(query)};
  size_t compiled_matched = 0;
  t0 = Clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const IndexedStream& rec : records) {
      compiled_matched +=
          compiled.Matches(rec.family, rec.site, rec.stream) ? 1 : 0;
    }
  }
  const double compiled_s = SecondsSince(t0);
  ESSDDS_CHECK(naive_matched == compiled_matched)
      << "matcher disagreement: " << naive_matched << " vs "
      << compiled_matched;

  // Columnar/batch leg: decoded streams packed into one contiguous value
  // arena with offset/length arrays — the layout a bucket's ColumnStore
  // presents to a scan shard — driven through the bit-parallel BatchMatcher.
  std::vector<uint64_t> arena;
  std::vector<size_t> offsets, lengths;
  std::vector<uint32_t> families, sites;
  offsets.reserve(records.size());
  lengths.reserve(records.size());
  families.reserve(records.size());
  sites.reserve(records.size());
  for (const IndexedStream& rec : records) {
    offsets.push_back(arena.size());
    lengths.push_back(rec.stream.size());
    families.push_back(rec.family);
    sites.push_back(rec.site);
    arena.insert(arena.end(), rec.stream.begin(), rec.stream.end());
  }
  const core::BatchMatcher batch(&query);
  size_t columnar_matched = 0;
  t0 = Clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (size_t i = 0; i < offsets.size(); ++i) {
      columnar_matched +=
          batch.Matches(families[i], sites[i],
                        std::span<const uint64_t>(arena.data() + offsets[i],
                                                  lengths[i]))
              ? 1
              : 0;
    }
  }
  const double columnar_s = SecondsSince(t0);
  ESSDDS_CHECK(columnar_matched == compiled_matched)
      << "batch matcher disagreement: " << columnar_matched << " vs "
      << compiled_matched;

  const double total = static_cast<double>(records.size()) * kPasses;
  out.naive_records_per_sec = total / naive_s;
  out.compiled_records_per_sec = total / compiled_s;
  out.columnar_records_per_sec = total / columnar_s;
  out.matched = compiled_matched / kPasses;
  return out;
}

// --- scan executor: spawn-per-batch vs persistent pool vs sharding ---

struct ExecutorNumbers {
  size_t buckets = 0;
  size_t records_per_bucket = 0;
  size_t batches = 0;
  double spawn_batches_per_sec = 0;
  double pool_batches_per_sec = 0;
  double sharded_batches_per_sec = 0;
  size_t hits = 0;  // per batch, identical across executors (checked)
};

#if ESSDDS_THREADS

/// Synthetic scan batch over `buckets`; fresh tasks each call (a real drain
/// rebuilds its batch too), the record maps are shared and read-only.
std::vector<sdds::ScanTask> MakeExecutorBatch(
    const std::vector<std::map<uint64_t, Bytes>>& buckets,
    const sdds::ScanFilter& filter) {
  std::vector<sdds::ScanTask> tasks;
  tasks.reserve(buckets.size());
  for (size_t b = 0; b < buckets.size(); ++b) {
    sdds::ScanTask task;
    task.bucket = b;
    task.records = &buckets[b];
    task.filter = &filter;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

/// The pre-pool executor, reproduced for the contrast: spawn `threads`
/// threads for every batch, pull tasks off a shared atomic index, join.
void SpawnPerBatch(std::vector<sdds::ScanTask>& tasks, size_t threads) {
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (size_t w = 0; w < threads; ++w) {
    workers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < tasks.size();
           i = next.fetch_add(1)) {
        sdds::ExecuteScanTask(tasks[i]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
}

ExecutorNumbers RunExecutorContrast(size_t threads) {
  ExecutorNumbers out;
  out.buckets = 8;
  out.records_per_bucket = 4096;
  out.batches = 300;

  Rng rng(20060401);
  std::vector<std::map<uint64_t, Bytes>> buckets(out.buckets);
  for (auto& bucket : buckets) {
    while (bucket.size() < out.records_per_bucket) {
      const uint64_t k = rng.Next();
      bucket[k] = ToBytes("record-" + std::to_string(k));
    }
  }
  // Representative per-record work: touch every value byte (a checksum
  // standing in for substring evaluation), hit on the low bits.
  auto filter = sdds::MakeScanFilter([](uint64_t, ByteSpan value, ByteSpan) {
    uint32_t sum = 0;
    for (uint8_t byte : value) sum = sum * 31 + byte;
    return (sum & 7) == 0;
  });

  auto count_hits = [](const std::vector<sdds::ScanTask>& tasks) {
    size_t hits = 0;
    for (const sdds::ScanTask& t : tasks) hits += t.reply.records.size();
    return hits;
  };

  auto time_executor = [&](auto&& run_batch) {
    // One warm-up batch (first pool batch starts the workers), then timed.
    auto warm = MakeExecutorBatch(buckets, *filter);
    run_batch(warm);
    const size_t hits = count_hits(warm);
    ESSDDS_CHECK(out.hits == 0 || hits == out.hits)
        << "executor disagreement: " << hits << " vs " << out.hits;
    out.hits = hits;
    auto t0 = Clock::now();
    for (size_t i = 0; i < out.batches; ++i) {
      auto batch = MakeExecutorBatch(buckets, *filter);
      run_batch(batch);
    }
    return static_cast<double>(out.batches) / SecondsSince(t0);
  };

  out.spawn_batches_per_sec = time_executor(
      [&](std::vector<sdds::ScanTask>& b) { SpawnPerBatch(b, threads); });
  sdds::ScanWorkerPool pool(threads);
  out.pool_batches_per_sec = time_executor([&](std::vector<sdds::ScanTask>& b) {
    pool.Run(b, std::numeric_limits<size_t>::max());
  });
  out.sharded_batches_per_sec = time_executor(
      [&](std::vector<sdds::ScanTask>& b) { pool.Run(b, 256); });
  return out;
}

#else  // !ESSDDS_THREADS

ExecutorNumbers RunExecutorContrast(size_t) { return {}; }

#endif  // ESSDDS_THREADS

struct ScanNumbers {
  double ms_per_search = 0;
  double index_records_per_sec = 0;
  size_t hits = 0;
  // Batch-shape histograms from the index network's metric registry
  // (zero-count with -DESSDDS_METRICS=OFF): tasks per drained batch and
  // shards those tasks split into. Serial scans never batch, so both stay
  // empty in the serial leg.
  obs::Histogram::Summary batch_tasks;
  obs::Histogram::Summary batch_shards;
};

/// Emits a Histogram::Summary as the next value (an object).
void SummaryValue(JsonWriter& w, const obs::Histogram::Summary& s) {
  w.BeginObject()
      .KV("count", s.count)
      .KV("p50", s.p50)
      .KV("p95", s.p95)
      .KV("p99", s.p99)
      .KV("max", s.max)
      .EndObject();
}

ScanNumbers RunStoreSearches(size_t corpus_size, size_t scan_threads,
                             size_t shard_min_records =
                                 sdds::LhOptions{}.scan_shard_min_records) {
  core::EncryptedStore::Options opts;
  opts.params = core::SchemeParams{.codes_per_chunk = 4, .dispersal_sites = 2};
  opts.record_file.bucket_capacity = 64;
  opts.index_file.bucket_capacity = 128;
  opts.index_file.scan_threads = scan_threads;
  opts.index_file.scan_shard_min_records = shard_min_records;
  auto store =
      core::EncryptedStore::Create(opts, ToBytes("perf-scan-key"), {});
  ESSDDS_CHECK(store.ok()) << store.status();

  auto corpus = LoadCorpus(corpus_size);
  for (const auto& r : corpus) {
    ESSDDS_CHECK((*store)->Insert(r.rid, r.name).ok());
  }
  const double index_records =
      static_cast<double>((*store)->index_file().TotalRecords());

  const std::vector<std::string> queries = {"SCHWARZ", "MARIA",  "GARCIA",
                                            "JOHNSON", "THOMAS", "NGUYEN"};
  ScanNumbers out;
  // Warm once (image adjustments, allocator), then reset so the reported
  // metrics cover exactly the measured phase, and measure.
  ESSDDS_CHECK((*store)->Search(queries[0]).ok());
  (*store)->index_file().network().ResetStats();
  auto t0 = Clock::now();
  for (const std::string& q : queries) {
    auto rids = (*store)->Search(q);
    ESSDDS_CHECK(rids.ok()) << rids.status();
    out.hits += rids->size();
  }
  const double elapsed = SecondsSince(t0);
  out.ms_per_search = 1e3 * elapsed / static_cast<double>(queries.size());
  // Every search evaluates every index record once at its site.
  out.index_records_per_sec =
      index_records * static_cast<double>(queries.size()) / elapsed;
  obs::MetricRegistry& metrics = (*store)->index_file().network().metrics();
  out.batch_tasks = metrics.histogram("scan.batch_tasks").Summarize();
  out.batch_shards = metrics.histogram("scan.batch_shards").Summarize();
  return out;
}

int Main() {
  const size_t corpus_size = CorpusSize(/*default_size=*/20000);
#if ESSDDS_THREADS
  size_t threads = std::thread::hardware_concurrency();
  if (threads < 2) threads = 2;
#else
  const size_t threads = 0;  // thread support compiled out
#endif

  // Shard threshold for the sharded legs: low enough that the 128-capacity
  // index buckets actually shard.
  const size_t shard_min = 32;

  const MatcherNumbers m = RunMatcherContrast(corpus_size);
  const ExecutorNumbers ex = RunExecutorContrast(threads > 0 ? threads : 2);
  const ScanNumbers serial = RunStoreSearches(corpus_size, 0);
  const ScanNumbers parallel = RunStoreSearches(corpus_size, threads);
  const ScanNumbers sharded =
      RunStoreSearches(corpus_size, threads, shard_min);

  const bool hits_agree =
      serial.hits == parallel.hits && serial.hits == sharded.hits;

  JsonWriter w;
  w.BeginObject();
  w.KV("corpus_records", static_cast<uint64_t>(corpus_size));
  w.Key("matcher").BeginObject();
  w.KV("index_records", static_cast<uint64_t>(m.records));
  w.KV("records_matched", static_cast<uint64_t>(m.matched));
  w.KV("naive_records_per_sec", m.naive_records_per_sec, 0);
  w.KV("compiled_records_per_sec", m.compiled_records_per_sec, 0);
  w.KV("columnar_records_per_sec", m.columnar_records_per_sec, 0);
  w.KV("speedup", m.compiled_records_per_sec / m.naive_records_per_sec, 2);
  w.KV("columnar_speedup_vs_compiled",
       m.columnar_records_per_sec / m.compiled_records_per_sec, 2);
  w.EndObject();
  w.Key("executor").BeginObject();
  w.KV("threads", static_cast<uint64_t>(threads));
  w.KV("buckets", static_cast<uint64_t>(ex.buckets));
  w.KV("records_per_bucket", static_cast<uint64_t>(ex.records_per_bucket));
  w.KV("batches", static_cast<uint64_t>(ex.batches));
  w.KV("hits_per_batch", static_cast<uint64_t>(ex.hits));
  w.KV("spawn_per_batch_batches_per_sec", ex.spawn_batches_per_sec, 1);
  w.KV("pool_batches_per_sec", ex.pool_batches_per_sec, 1);
  w.KV("pool_sharded_batches_per_sec", ex.sharded_batches_per_sec, 1);
  w.KV("pool_speedup_vs_spawn",
       ex.spawn_batches_per_sec > 0
           ? ex.pool_batches_per_sec / ex.spawn_batches_per_sec
           : 0.0,
       2);
  w.KV("sharded_speedup_vs_spawn",
       ex.spawn_batches_per_sec > 0
           ? ex.sharded_batches_per_sec / ex.spawn_batches_per_sec
           : 0.0,
       2);
  w.EndObject();
  w.Key("search").BeginObject();
  w.KV("scan_threads", static_cast<uint64_t>(threads));
  w.KV("shard_min_records", static_cast<uint64_t>(shard_min));
  w.KV("serial_ms_per_search", serial.ms_per_search, 2);
  w.KV("parallel_ms_per_search", parallel.ms_per_search, 2);
  w.KV("sharded_ms_per_search", sharded.ms_per_search, 2);
  w.KV("serial_index_records_per_sec", serial.index_records_per_sec, 0);
  w.KV("parallel_index_records_per_sec", parallel.index_records_per_sec, 0);
  w.KV("sharded_index_records_per_sec", sharded.index_records_per_sec, 0);
  w.KV("hits_agree", hits_agree);
  // Batch-shape histograms of the measured phase (metrics builds only;
  // zero-count objects with -DESSDDS_METRICS=OFF).
  w.Key("parallel_batch_tasks");
  SummaryValue(w, parallel.batch_tasks);
  w.Key("sharded_batch_tasks");
  SummaryValue(w, sharded.batch_tasks);
  w.Key("sharded_batch_shards");
  SummaryValue(w, sharded.batch_shards);
  w.EndObject();
  w.EndObject();
  std::printf("%s\n", w.str().c_str());
  return hits_agree ? 0 : 1;
}

}  // namespace
}  // namespace essdds::bench

int main() { return essdds::bench::Main(); }
