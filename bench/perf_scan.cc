// Scan-engine benchmark: (1) the site-side matcher — seed-style naive
// matching (per-record failure-table construction via FindOccurrences)
// against the compiled query (tables built once per scan); (2) end-to-end
// encrypted search on the phonebook workload, serial vs thread-pool index
// scans. Emits one JSON object so CI can track the numbers.
//
// Scale with ESSDDS_RECORDS=<n> (default 20,000 — the matcher contrast is
// size-independent, the end-to-end part is wall-clock bound).

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#if ESSDDS_THREADS
#include <thread>
#endif

#include "bench/bench_util.h"
#include "core/compiled_query.h"
#include "core/encrypted_store.h"
#include "core/matcher.h"
#include "core/pipeline.h"

namespace essdds::bench {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One stored index record as the scan sees it: coordinates plus stream.
struct IndexedStream {
  uint32_t family;
  uint32_t site;
  std::vector<uint64_t> stream;
};

/// The seed's per-record matching path: FindOccurrences builds the KMP
/// failure table (and an occurrence vector) anew for every record.
bool NaiveMatch(const core::SearchQuery& query, const IndexedStream& rec) {
  for (const core::QuerySeries& s : query.SeriesFor(rec.family)) {
    const std::vector<uint64_t>& pattern = query.PatternFor(s, rec.site);
    if (!core::FindOccurrences(rec.stream, pattern).empty()) return true;
  }
  return false;
}

struct MatcherNumbers {
  double naive_records_per_sec = 0;
  double compiled_records_per_sec = 0;
  size_t records = 0;
  size_t matched = 0;
};

MatcherNumbers RunMatcherContrast(size_t corpus_size) {
  const core::SchemeParams params{.codes_per_chunk = 4, .dispersal_sites = 2};
  auto corpus = LoadCorpus(corpus_size);
  std::vector<std::string> training;
  training.reserve(corpus.size());
  for (const auto& r : corpus) training.push_back(r.name);
  auto pipeline =
      core::IndexPipeline::Create(params, ToBytes("perf-scan-key"), training);
  ESSDDS_CHECK(pipeline.ok()) << pipeline.status();

  std::vector<IndexedStream> records;
  for (const auto& r : corpus) {
    for (core::IndexRecordData& rec :
         pipeline->BuildIndexRecords(r.rid, r.name)) {
      records.push_back(
          IndexedStream{rec.family, rec.site, std::move(rec.stream)});
    }
  }
  auto query = pipeline->BuildQuery("SCHWARZ");
  ESSDDS_CHECK(query.ok()) << query.status();

  MatcherNumbers out;
  out.records = records.size();

  // Several passes so each side runs long enough to time reliably.
  const int kPasses = 5;
  size_t naive_matched = 0;
  auto t0 = Clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const IndexedStream& rec : records) {
      naive_matched += NaiveMatch(*query, rec) ? 1 : 0;
    }
  }
  const double naive_s = SecondsSince(t0);

  const core::CompiledQuery compiled(*std::move(query));
  size_t compiled_matched = 0;
  t0 = Clock::now();
  for (int pass = 0; pass < kPasses; ++pass) {
    for (const IndexedStream& rec : records) {
      compiled_matched +=
          compiled.Matches(rec.family, rec.site, rec.stream) ? 1 : 0;
    }
  }
  const double compiled_s = SecondsSince(t0);
  ESSDDS_CHECK(naive_matched == compiled_matched)
      << "matcher disagreement: " << naive_matched << " vs "
      << compiled_matched;

  const double total = static_cast<double>(records.size()) * kPasses;
  out.naive_records_per_sec = total / naive_s;
  out.compiled_records_per_sec = total / compiled_s;
  out.matched = compiled_matched / kPasses;
  return out;
}

struct ScanNumbers {
  double ms_per_search = 0;
  double index_records_per_sec = 0;
  size_t hits = 0;
};

ScanNumbers RunStoreSearches(size_t corpus_size, size_t scan_threads) {
  core::EncryptedStore::Options opts;
  opts.params = core::SchemeParams{.codes_per_chunk = 4, .dispersal_sites = 2};
  opts.record_file.bucket_capacity = 64;
  opts.index_file.bucket_capacity = 128;
  opts.index_file.scan_threads = scan_threads;
  auto store =
      core::EncryptedStore::Create(opts, ToBytes("perf-scan-key"), {});
  ESSDDS_CHECK(store.ok()) << store.status();

  auto corpus = LoadCorpus(corpus_size);
  for (const auto& r : corpus) {
    ESSDDS_CHECK((*store)->Insert(r.rid, r.name).ok());
  }
  const double index_records =
      static_cast<double>((*store)->index_file().TotalRecords());

  const std::vector<std::string> queries = {"SCHWARZ", "MARIA",  "GARCIA",
                                            "JOHNSON", "THOMAS", "NGUYEN"};
  ScanNumbers out;
  // Warm once (image adjustments, allocator), then measure.
  ESSDDS_CHECK((*store)->Search(queries[0]).ok());
  auto t0 = Clock::now();
  for (const std::string& q : queries) {
    auto rids = (*store)->Search(q);
    ESSDDS_CHECK(rids.ok()) << rids.status();
    out.hits += rids->size();
  }
  const double elapsed = SecondsSince(t0);
  out.ms_per_search = 1e3 * elapsed / static_cast<double>(queries.size());
  // Every search evaluates every index record once at its site.
  out.index_records_per_sec =
      index_records * static_cast<double>(queries.size()) / elapsed;
  return out;
}

int Main() {
  const size_t corpus_size = CorpusSize(/*default_size=*/20000);
#if ESSDDS_THREADS
  size_t threads = std::thread::hardware_concurrency();
  if (threads < 2) threads = 2;
#else
  const size_t threads = 0;  // thread support compiled out
#endif

  const MatcherNumbers m = RunMatcherContrast(corpus_size);
  const ScanNumbers serial = RunStoreSearches(corpus_size, 0);
  const ScanNumbers parallel = RunStoreSearches(corpus_size, threads);

  std::printf("{\n");
  std::printf("  \"corpus_records\": %zu,\n", corpus_size);
  std::printf("  \"matcher\": {\n");
  std::printf("    \"index_records\": %zu,\n", m.records);
  std::printf("    \"records_matched\": %zu,\n", m.matched);
  std::printf("    \"naive_records_per_sec\": %.0f,\n",
              m.naive_records_per_sec);
  std::printf("    \"compiled_records_per_sec\": %.0f,\n",
              m.compiled_records_per_sec);
  std::printf("    \"speedup\": %.2f\n",
              m.compiled_records_per_sec / m.naive_records_per_sec);
  std::printf("  },\n");
  std::printf("  \"search\": {\n");
  std::printf("    \"scan_threads\": %zu,\n", threads);
  std::printf("    \"serial_ms_per_search\": %.2f,\n", serial.ms_per_search);
  std::printf("    \"parallel_ms_per_search\": %.2f,\n",
              parallel.ms_per_search);
  std::printf("    \"serial_index_records_per_sec\": %.0f,\n",
              serial.index_records_per_sec);
  std::printf("    \"parallel_index_records_per_sec\": %.0f,\n",
              parallel.index_records_per_sec);
  std::printf("    \"hits_agree\": %s\n",
              serial.hits == parallel.hits ? "true" : "false");
  std::printf("  }\n");
  std::printf("}\n");
  return serial.hits == parallel.hits ? 0 : 1;
}

}  // namespace
}  // namespace essdds::bench

int main() { return essdds::bench::Main(); }
