// Security evaluation by actual attack instead of the chi-squared proxy:
// run the classic ECB frequency-analysis attack against one index site
// under each stage configuration and report how much plaintext the
// rank-matching adversary recovers. The attacker holds a same-distribution
// public directory (different seed) as its reference model.

#include <cstdio>
#include <string>
#include <vector>

#include "attack/frequency_attack.h"
#include "bench/bench_util.h"
#include "core/pipeline.h"
#include "workload/phonebook.h"

using essdds::ToBytes;

namespace {

struct Config {
  std::string name;
  essdds::core::SchemeParams params;
};

}  // namespace

int main() {
  const size_t n = essdds::bench::CorpusSize(20000);
  // Victim and attacker corpora: same distribution, different draws.
  essdds::workload::PhonebookGenerator victim_gen(20060401);
  essdds::workload::PhonebookGenerator public_gen(19960101);
  auto victim = victim_gen.Generate(n);
  auto reference = public_gen.Generate(n);
  std::vector<std::string> training;
  for (const auto& r : victim) training.push_back(r.name);

  essdds::bench::PrintHeader(
      "Frequency-analysis attack on one index site, " + std::to_string(n) +
      " records (attacker model: public directory, different draw)");

  const std::vector<Config> configs = {
      {"stage1, s=1 (1-char ECB)", {.codes_per_chunk = 1}},
      {"stage1, s=2", {.codes_per_chunk = 2}},
      {"stage1, s=4", {.codes_per_chunk = 4}},
      {"stage1, s=6 (conclusion)", {.codes_per_chunk = 6}},
      {"stage1+2, s=4, 16 codes",
       {.num_codes = 16, .codes_per_chunk = 4}},
      {"stage1+3, s=4, k=4 (one site's view)",
       {.codes_per_chunk = 4, .dispersal_sites = 4}},
      {"full: 16 codes, s=4, k=2",
       {.num_codes = 16, .codes_per_chunk = 4, .dispersal_sites = 2}},
  };

  std::printf("  %-38s | %-10s | %-10s | %-10s | %-9s\n", "config",
              "occur acc", "map acc", "baseline", "gain");
  for (const Config& cfg : configs) {
    auto pipe = essdds::core::IndexPipeline::Create(
        cfg.params, ToBytes("attack bench"), training);
    if (!pipe.ok()) {
      std::fprintf(stderr, "%s: %s\n", cfg.name.c_str(),
                   pipe.status().ToString().c_str());
      return 1;
    }
    // The attacker sees family 0, site 0; ground truth is the unencrypted
    // stream of the same family. The model comes from the PUBLIC corpus
    // pushed through the same public pre-processing (chunking + Stage-2
    // encoding are corpus statistics, not secrets; dispersal and ECB are).
    std::vector<std::vector<uint64_t>> observed, truth, model;
    for (const auto& rec : victim) {
      auto recs = pipe->BuildIndexRecords(rec.rid, rec.name);
      observed.push_back(recs[0].stream);
    }
    // Ground truth / model: a keyless pipeline view. We reuse the pipeline
    // minus encryption by building with an all-identity configuration:
    // chunk values before ECB are exactly what Chunker+encoder produce.
    essdds::codec::IdentityEncoder identity;
    const essdds::codec::SymbolEncoder& enc =
        cfg.params.stage2_enabled() ? pipe->encoder() : identity;
    auto chunker =
        essdds::codec::Chunker::Create(&enc, cfg.params.codes_per_chunk);
    for (const auto& rec : victim) {
      truth.push_back(chunker->BuildChunks(rec.name, 0));
    }
    for (const auto& rec : reference) {
      model.push_back(chunker->BuildChunks(rec.name, 0));
    }
    // With dispersal, the site stream is pieces, not chunks; truth streams
    // keep chunk granularity (same positions), so accuracy measures how
    // much chunk plaintext the single site's pieces reveal.
    auto r = essdds::attack::RunFrequencyAttack(observed, model, truth);
    std::printf("  %-38s | %9.1f%% | %9.1f%% | %8.1f%% | %5.1fx\n",
                cfg.name.c_str(), 100.0 * r.occurrence_accuracy,
                100.0 * r.mapping_accuracy, 100.0 * r.guess_baseline,
                r.guess_baseline > 0
                    ? r.occurrence_accuracy / r.guess_baseline
                    : 0.0);
  }

  std::printf(
      "\nShape check: one-character ECB falls almost completely (the §2.1\n"
      "warning); accuracy drops steeply with chunk size; Stage-2 flattening\n"
      "pushes the attack toward its blind-guess baseline; a single\n"
      "dispersal site decodes essentially nothing — together, the paper's\n"
      "defense-in-depth story, measured as recovered plaintext.\n");
  return 0;
}
