// Reproduces Table 4: false positives after single-symbol encoding (FP1)
// and after additional chunking with chunk size 2 (FP2), for 8/16/32
// possible encodings, over 1000 random records whose last names are the
// 1000 search strings.
//
// Paper reference values (real SF data):
//   (a) all entries:        enc=8: FP1 6,253 FP2 18,838 | enc=16: 911/6,490
//                           | enc=32: 0/4,669
//   (b) names > 5 chars:    enc=8: 24/41 | 16: 1/13 | 32: 0/11
// Shape: FP falls steeply with more encodings; short names cause almost
// all false positives; chunking adds FPs on top of encoding.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fp_util.h"
#include "codec/symbol_encoder.h"
#include "stats/chi_squared.h"
#include "stats/ngram.h"
#include "workload/phonebook.h"

namespace {

struct Row {
  uint32_t enc;
  double chi2_single, chi2_double, chi2_triple;
  uint64_t fp1, fp2;
};

void PrintRows(const char* title, const std::vector<Row>& rows) {
  std::printf("\n%s\n", title);
  std::printf("  %-4s | %-12s | %-12s | %-12s | %-7s | %-7s\n", "En",
              "chi2 single", "chi2 double", "chi2 triple", "FP1", "FP2");
  for (const Row& r : rows) {
    std::printf("  %-4u | %-12s | %-12s | %-12s | %-7llu | %-7llu\n", r.enc,
                essdds::bench::FormatChi2(r.chi2_single).c_str(),
                essdds::bench::FormatChi2(r.chi2_double).c_str(),
                essdds::bench::FormatChi2(r.chi2_triple).c_str(),
                static_cast<unsigned long long>(r.fp1),
                static_cast<unsigned long long>(r.fp2));
  }
}

}  // namespace

int main() {
  const size_t n = essdds::bench::CorpusSize();
  auto corpus = essdds::bench::LoadCorpus(n);
  auto sample = essdds::workload::SampleRecords(corpus, 1000, 19741);

  essdds::bench::PrintHeader(
      "Table 4: false positives after symbol encoding (FP1) and after "
      "chunking, chunk size 2 (FP2); 1000 records");

  // Queries: the last names of the sampled records (with duplicates, as in
  // the paper).
  std::vector<std::string> queries;
  for (const auto* rec : sample) {
    queries.emplace_back(essdds::workload::SurnameOf(*rec));
  }

  for (bool long_names_only : {false, true}) {
    std::vector<Row> rows;
    for (uint32_t enc : {8u, 16u, 32u}) {
      // Train the encoder on the 1000-record sample (Figure 5's counts are
      // sample counts).
      std::map<std::string, uint64_t> counts;
      for (const auto* rec : sample) {
        for (char c : rec->name) counts[std::string(1, c)]++;
      }
      auto encoder = essdds::codec::FrequencyEncoder::FromCounts(
          counts, {.unit_symbols = 1, .num_codes = enc});
      if (!encoder.ok()) return 1;

      // Encode all sampled records (and their two chunkings) once.
      std::vector<std::vector<uint32_t>> encoded, chunks0, chunks1;
      encoded.reserve(sample.size());
      essdds::stats::NgramCounter singles(1, enc), doublets(2, enc),
          triplets(3, enc);
      for (const auto* rec : sample) {
        encoded.push_back(encoder->EncodeStream(rec->name, 0));
        singles.Add(encoded.back());
        doublets.Add(encoded.back());
        triplets.Add(encoded.back());
        chunks0.push_back(essdds::bench::ChunkCodes(encoded.back(), 2, 0, enc));
        chunks1.push_back(essdds::bench::ChunkCodes(encoded.back(), 2, 1, enc));
      }

      uint64_t fp1 = 0, fp2 = 0;
      for (const std::string& q : queries) {
        if (long_names_only && q.size() <= 5) continue;
        const std::vector<uint32_t> q_codes = encoder->EncodeStream(q, 0);
        // Query chunkings (chunk size 2, offsets 0 and 1, partials dropped).
        const auto q_chunks0 = essdds::bench::ChunkCodes(q_codes, 2, 0, enc);
        const auto q_chunks1 = essdds::bench::ChunkCodes(q_codes, 2, 1, enc);
        for (size_t r = 0; r < sample.size(); ++r) {
          // FP1: symbol-encoding level match.
          if (essdds::bench::Contains(encoded[r], q_codes)) {
            fp1 += essdds::bench::IsFalsePositive(sample[r]->name, q);
          }
          // FP2: chunked match — any query chunking in any record chunking
          // (the paper's experimental OR semantics).
          const bool hit2 = essdds::bench::Contains(chunks0[r], q_chunks0) ||
                            essdds::bench::Contains(chunks0[r], q_chunks1) ||
                            essdds::bench::Contains(chunks1[r], q_chunks0) ||
                            essdds::bench::Contains(chunks1[r], q_chunks1);
          if (hit2) fp2 += essdds::bench::IsFalsePositive(sample[r]->name, q);
        }
      }
      rows.push_back(Row{enc, essdds::stats::ChiSquaredUniform(singles),
                         essdds::stats::ChiSquaredUniform(doublets),
                         essdds::stats::ChiSquaredUniform(triplets), fp1,
                         fp2});
    }
    PrintRows(long_names_only
                  ? "(b) Entries with names longer than 5 characters "
                    "(paper: 24/41, 1/13, 0/11)"
                  : "(a) All entries (paper: 6253/18838, 911/6490, 0/4669)",
              rows);
  }

  std::printf(
      "\nShape check: FP1 collapses as encodings grow (near-lossless at 32);\n"
      "FP2 > FP1 (chunking adds false positives); restricting to names\n"
      "longer than 5 characters removes almost all false positives.\n");
  return 0;
}
