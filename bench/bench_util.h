#ifndef ESSDDS_BENCH_BENCH_UTIL_H_
#define ESSDDS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workload/phonebook.h"

namespace essdds::bench {

/// Number of directory records a table bench runs on. Defaults to the
/// paper's corpus size (282,965); override with ESSDDS_RECORDS=<n> to scale
/// a run down (the tables' *shape* is stable down to ~20k records).
inline size_t CorpusSize(size_t default_size =
                             workload::PhonebookGenerator::kPaperCorpusSize) {
  if (const char* env = std::getenv("ESSDDS_RECORDS")) {
    const long long v = std::atoll(env);
    if (v > 0) return static_cast<size_t>(v);
  }
  return default_size;
}

/// The deterministic synthetic SF-directory stand-in (see DESIGN.md §5).
inline std::vector<workload::PhoneRecord> LoadCorpus(size_t count) {
  workload::PhonebookGenerator gen(/*seed=*/20060401);  // ICDE 2006
  return gen.Generate(count);
}

/// Formats a chi-squared value the way the paper prints them (thousands
/// separators, small values with decimals).
inline std::string FormatChi2(double v) {
  char buf[64];
  if (v < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return buf;
  }
  if (v < 100.0) {
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
  }
  // Group integer digits by thousands.
  long long n = static_cast<long long>(v + 0.5);
  std::string digits = std::to_string(n);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c != 0 && c % 3 == 0) out.insert(out.begin(), ',');
    out.insert(out.begin(), *it);
    ++c;
  }
  return out;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

}  // namespace essdds::bench

#endif  // ESSDDS_BENCH_BENCH_UTIL_H_
