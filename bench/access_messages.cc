// Access-performance table: the SDDS promise is that key operations cost a
// constant number of messages regardless of file size, and that searches
// fan out to all sites in parallel. This bench grows an encrypted store
// and reports messages per operation at increasing scale.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/encrypted_store.h"
#include "workload/phonebook.h"

using essdds::Bytes;
using essdds::ByteSpan;
using essdds::ToBytes;

int main() {
  const size_t n = essdds::bench::CorpusSize(40000);
  auto corpus = essdds::bench::LoadCorpus(n);

  essdds::bench::PrintHeader(
      "Access cost in messages vs file size (SDDS constant-cost claim)");

  essdds::core::EncryptedStore::Options opts;
  opts.params = essdds::core::SchemeParams{.codes_per_chunk = 4};
  opts.record_file.bucket_capacity = 64;
  opts.index_file.bucket_capacity = 256;
  auto store =
      essdds::core::EncryptedStore::Create(opts, ToBytes("access bench"), {});
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.status().ToString().c_str());
    return 1;
  }

  std::printf("  %-9s | %-8s | %-11s | %-11s | %-13s | %-12s\n", "records",
              "idx bkts", "msgs/insert", "msgs/lookup", "msgs/search",
              "search bytes");

  size_t inserted = 0;
  for (size_t target : {2000u, 5000u, 10000u, 20000u, 40000u}) {
    if (target > corpus.size()) break;
    // Grow to the target size.
    while (inserted < target) {
      const auto& r = corpus[inserted++];
      if (!(*store)->Insert(r.rid, r.name).ok()) return 1;
    }

    // Measure inserts (re-inserting a slice is an upsert of same cost).
    auto& net = (*store)->index_file().network();
    auto& rnet = (*store)->record_file().network();
    net.ResetStats();
    rnet.ResetStats();
    const size_t batch = 200;
    for (size_t i = 0; i < batch; ++i) {
      const auto& r = corpus[i];
      if (!(*store)->Insert(r.rid, r.name).ok()) return 1;
    }
    const double msgs_insert =
        static_cast<double>(net.stats().total_messages +
                            rnet.stats().total_messages) /
        static_cast<double>(batch);

    net.ResetStats();
    rnet.ResetStats();
    for (size_t i = 0; i < batch; ++i) {
      if (!(*store)->Get(corpus[i].rid).ok()) return 1;
    }
    const double msgs_lookup =
        static_cast<double>(net.stats().total_messages +
                            rnet.stats().total_messages) /
        static_cast<double>(batch);

    net.ResetStats();
    rnet.ResetStats();
    const int searches = 20;
    for (int i = 0; i < searches; ++i) {
      if (!(*store)->Search("SCHWARZ").ok()) return 1;
    }
    const double msgs_search =
        static_cast<double>(net.stats().total_messages) / searches;
    const double bytes_search =
        static_cast<double>(net.stats().total_bytes) / searches;

    std::printf("  %-9zu | %-8zu | %-11.2f | %-11.2f | %-13.1f | %-12.0f\n",
                target, (*store)->index_file().bucket_count(), msgs_insert,
                msgs_lookup, msgs_search, bytes_search);
  }

  std::printf(
      "\nShape check: messages per insert/lookup stay flat as the file\n"
      "grows 20x (the LH* constant-access property); search messages grow\n"
      "linearly with the bucket count — by design, a scan visits every\n"
      "site in parallel.\n");
  return 0;
}
