// Reproduces Table 5: false positives after encoding two-symbol chunks into
// n = 8, 16, 32, 64 possible codes ("ABOGADO ..." -> "[AB][OG][AD]..." and
// "[BO][GA][DO]..."), searching the last names of 1000 sampled records.
//
// Paper reference values (real SF data):
//   (a) all entries:     8: 31,648 | 16: 15,588 | 32: 7,968 | 64: 3,857
//   (b) names > 5 chars: 8: 859    | 16: 96     | 32: 13    | 64: 2
// Shape: FP halves (roughly) per encoding doubling; long names nearly
// eliminate FPs; 64 codes here compresses 2 ASCII chars into 6 bits, the
// same rate as Table 4's last line (32 codes on single symbols).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fp_util.h"
#include "codec/symbol_encoder.h"
#include "stats/chi_squared.h"
#include "stats/ngram.h"
#include "workload/phonebook.h"

namespace {

struct Row {
  uint32_t enc;
  double chi2_single, chi2_double, chi2_triple;
  uint64_t fp;
};

}  // namespace

int main() {
  const size_t n = essdds::bench::CorpusSize();
  auto corpus = essdds::bench::LoadCorpus(n);
  auto sample = essdds::workload::SampleRecords(corpus, 1000, 19741);

  essdds::bench::PrintHeader(
      "Table 5: false positives after two-symbol chunk encoding; "
      "1000 records");

  std::vector<std::string> queries;
  for (const auto* rec : sample) {
    queries.emplace_back(essdds::workload::SurnameOf(*rec));
  }

  for (bool long_names_only : {false, true}) {
    std::vector<Row> rows;
    for (uint32_t enc : {8u, 16u, 32u, 64u}) {
      // Train on two-symbol units of the sample, both alignments (the
      // paper collects "[AB],[OG],..." and "[BO],[GA],...").
      std::map<std::string, uint64_t> counts;
      for (const auto* rec : sample) {
        const std::string& s = rec->name;
        for (size_t pos = 0; pos + 2 <= s.size(); ++pos) {
          counts[s.substr(pos, 2)]++;
        }
      }
      auto encoder = essdds::codec::FrequencyEncoder::FromCounts(
          counts, {.unit_symbols = 2, .num_codes = enc});
      if (!encoder.ok()) return 1;

      // Each record yields two code streams (unit offsets 0 and 1).
      std::vector<std::vector<uint32_t>> streams0, streams1;
      essdds::stats::NgramCounter singles(1, enc), doublets(2, enc),
          triplets(3, enc);
      for (const auto* rec : sample) {
        streams0.push_back(encoder->EncodeStream(rec->name, 0));
        streams1.push_back(encoder->EncodeStream(rec->name, 1));
        singles.Add(streams0.back());
        doublets.Add(streams0.back());
        triplets.Add(streams0.back());
      }

      uint64_t fp = 0;
      for (const std::string& q : queries) {
        if (long_names_only && q.size() <= 5) continue;
        const auto q0 = encoder->EncodeStream(q, 0);
        const auto q1 = encoder->EncodeStream(q, 1);
        for (size_t r = 0; r < sample.size(); ++r) {
          const bool hit = essdds::bench::Contains(streams0[r], q0) ||
                           essdds::bench::Contains(streams0[r], q1) ||
                           essdds::bench::Contains(streams1[r], q0) ||
                           essdds::bench::Contains(streams1[r], q1);
          if (hit) fp += essdds::bench::IsFalsePositive(sample[r]->name, q);
        }
      }
      rows.push_back(Row{enc, essdds::stats::ChiSquaredUniform(singles),
                         essdds::stats::ChiSquaredUniform(doublets),
                         essdds::stats::ChiSquaredUniform(triplets), fp});
    }

    std::printf("\n%s\n",
                long_names_only
                    ? "(b) Entries with last names longer than 5 characters "
                      "(paper: 859, 96, 13, 2)"
                    : "(a) All entries (paper: 31648, 15588, 7968, 3857)");
    std::printf("  %-4s | %-12s | %-12s | %-12s | %-7s\n", "Enc",
                "chi2 single", "chi2 double", "chi2 triple", "FP");
    for (const Row& r : rows) {
      std::printf("  %-4u | %-12s | %-12s | %-12s | %-7llu\n", r.enc,
                  essdds::bench::FormatChi2(r.chi2_single).c_str(),
                  essdds::bench::FormatChi2(r.chi2_double).c_str(),
                  essdds::bench::FormatChi2(r.chi2_triple).c_str(),
                  static_cast<unsigned long long>(r.fp));
    }
  }

  std::printf(
      "\nShape check: FP decreases monotonically with encodings; (b) is\n"
      "orders of magnitude below (a); chi2 single stays tiny (plenty of\n"
      "distinct two-symbol units to balance).\n");
  return 0;
}
