// Microbenchmarks of the crypto substrate (google-benchmark).

#include <benchmark/benchmark.h>

#include "crypto/aes.h"
#include "crypto/ecb.h"
#include "crypto/prp.h"
#include "crypto/record_cipher.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace essdds::crypto {
namespace {

void BM_AesEncryptBlock(benchmark::State& state) {
  auto aes = Aes::Create(Bytes(16, 0x5A));
  uint8_t block[16] = {1, 2, 3, 4};
  for (auto _ : state) {
    aes->EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    auto d = Sha256::Hash(data);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FeistelPrp(benchmark::State& state) {
  auto prp = FeistelPrp::Create(Bytes(16, 0x5A),
                                static_cast<int>(state.range(0)));
  uint64_t x = 12345;
  for (auto _ : state) {
    x = prp->Encrypt(x & ((uint64_t{1} << state.range(0)) - 1));
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_FeistelPrp)->Arg(16)->Arg(32)->Arg(48)->Arg(63);

void BM_EcbCodebookCachedHit(benchmark::State& state) {
  auto cb = EcbCodebook::Create(Bytes(16, 0x5A), 32);
  // Warm a small working set: real corpora have few distinct chunks.
  for (uint64_t i = 0; i < 1000; ++i) cb->Encrypt(i);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cb->Encrypt(i++ % 1000));
  }
}
BENCHMARK(BM_EcbCodebookCachedHit);

void BM_RecordCipherSeal(benchmark::State& state) {
  auto cipher = RecordCipher::Create(ToBytes("bench"));
  Bytes plaintext(static_cast<size_t>(state.range(0)), 'x');
  uint64_t seq = 0;
  for (auto _ : state) {
    Bytes sealed = cipher->Seal(42, seq++, plaintext);
    benchmark::DoNotOptimize(sealed);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordCipherSeal)->Arg(32)->Arg(256)->Arg(4096);

void BM_RecordCipherOpen(benchmark::State& state) {
  auto cipher = RecordCipher::Create(ToBytes("bench"));
  Bytes plaintext(static_cast<size_t>(state.range(0)), 'x');
  Bytes sealed = cipher->Seal(42, 0, plaintext);
  for (auto _ : state) {
    auto opened = cipher->Open(42, sealed);
    benchmark::DoNotOptimize(opened);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RecordCipherOpen)->Arg(256);

}  // namespace
}  // namespace essdds::crypto

BENCHMARK_MAIN();
