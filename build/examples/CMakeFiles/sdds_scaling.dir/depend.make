# Empty dependencies file for sdds_scaling.
# This may be replaced when dependencies are built.
