file(REMOVE_RECURSE
  "CMakeFiles/sdds_scaling.dir/sdds_scaling.cpp.o"
  "CMakeFiles/sdds_scaling.dir/sdds_scaling.cpp.o.d"
  "sdds_scaling"
  "sdds_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdds_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
