# Empty compiler generated dependencies file for essdds_shell.
# This may be replaced when dependencies are built.
