file(REMOVE_RECURSE
  "CMakeFiles/essdds_shell.dir/essdds_shell.cpp.o"
  "CMakeFiles/essdds_shell.dir/essdds_shell.cpp.o.d"
  "essdds_shell"
  "essdds_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
