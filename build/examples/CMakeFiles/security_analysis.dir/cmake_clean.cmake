file(REMOVE_RECURSE
  "CMakeFiles/security_analysis.dir/security_analysis.cpp.o"
  "CMakeFiles/security_analysis.dir/security_analysis.cpp.o.d"
  "security_analysis"
  "security_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
