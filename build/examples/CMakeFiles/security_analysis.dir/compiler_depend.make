# Empty compiler generated dependencies file for security_analysis.
# This may be replaced when dependencies are built.
