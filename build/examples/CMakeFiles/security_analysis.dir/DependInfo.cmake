
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/security_analysis.cpp" "examples/CMakeFiles/security_analysis.dir/security_analysis.cpp.o" "gcc" "examples/CMakeFiles/security_analysis.dir/security_analysis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/essdds_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/essdds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/essdds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/essdds_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/essdds_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/essdds_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sdds/CMakeFiles/essdds_sdds.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/essdds_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/essdds_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/essdds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
