# Empty dependencies file for phonebook_search.
# This may be replaced when dependencies are built.
