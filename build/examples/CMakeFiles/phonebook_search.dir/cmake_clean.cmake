file(REMOVE_RECURSE
  "CMakeFiles/phonebook_search.dir/phonebook_search.cpp.o"
  "CMakeFiles/phonebook_search.dir/phonebook_search.cpp.o.d"
  "phonebook_search"
  "phonebook_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phonebook_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
