# Empty dependencies file for table1_plaintext_chi2.
# This may be replaced when dependencies are built.
