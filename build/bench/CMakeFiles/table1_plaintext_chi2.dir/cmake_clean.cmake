file(REMOVE_RECURSE
  "CMakeFiles/table1_plaintext_chi2.dir/table1_plaintext_chi2.cc.o"
  "CMakeFiles/table1_plaintext_chi2.dir/table1_plaintext_chi2.cc.o.d"
  "table1_plaintext_chi2"
  "table1_plaintext_chi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_plaintext_chi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
