file(REMOVE_RECURSE
  "CMakeFiles/perf_sdds_store.dir/perf_sdds_store.cc.o"
  "CMakeFiles/perf_sdds_store.dir/perf_sdds_store.cc.o.d"
  "perf_sdds_store"
  "perf_sdds_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_sdds_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
