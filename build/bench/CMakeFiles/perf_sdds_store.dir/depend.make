# Empty dependencies file for perf_sdds_store.
# This may be replaced when dependencies are built.
