# Empty compiler generated dependencies file for perf_gf_codec.
# This may be replaced when dependencies are built.
