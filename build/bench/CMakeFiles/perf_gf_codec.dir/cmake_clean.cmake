file(REMOVE_RECURSE
  "CMakeFiles/perf_gf_codec.dir/perf_gf_codec.cc.o"
  "CMakeFiles/perf_gf_codec.dir/perf_gf_codec.cc.o.d"
  "perf_gf_codec"
  "perf_gf_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_gf_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
