file(REMOVE_RECURSE
  "CMakeFiles/table4_fp_symbol_encoding.dir/table4_fp_symbol_encoding.cc.o"
  "CMakeFiles/table4_fp_symbol_encoding.dir/table4_fp_symbol_encoding.cc.o.d"
  "table4_fp_symbol_encoding"
  "table4_fp_symbol_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_fp_symbol_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
