# Empty compiler generated dependencies file for table4_fp_symbol_encoding.
# This may be replaced when dependencies are built.
