file(REMOVE_RECURSE
  "CMakeFiles/ablation_combination.dir/ablation_combination.cc.o"
  "CMakeFiles/ablation_combination.dir/ablation_combination.cc.o.d"
  "ablation_combination"
  "ablation_combination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
