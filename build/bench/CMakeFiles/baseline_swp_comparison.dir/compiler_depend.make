# Empty compiler generated dependencies file for baseline_swp_comparison.
# This may be replaced when dependencies are built.
