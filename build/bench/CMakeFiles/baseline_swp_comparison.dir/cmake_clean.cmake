file(REMOVE_RECURSE
  "CMakeFiles/baseline_swp_comparison.dir/baseline_swp_comparison.cc.o"
  "CMakeFiles/baseline_swp_comparison.dir/baseline_swp_comparison.cc.o.d"
  "baseline_swp_comparison"
  "baseline_swp_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_swp_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
