file(REMOVE_RECURSE
  "CMakeFiles/perf_crypto.dir/perf_crypto.cc.o"
  "CMakeFiles/perf_crypto.dir/perf_crypto.cc.o.d"
  "perf_crypto"
  "perf_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
