# Empty dependencies file for perf_crypto.
# This may be replaced when dependencies are built.
