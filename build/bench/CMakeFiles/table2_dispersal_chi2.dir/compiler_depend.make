# Empty compiler generated dependencies file for table2_dispersal_chi2.
# This may be replaced when dependencies are built.
