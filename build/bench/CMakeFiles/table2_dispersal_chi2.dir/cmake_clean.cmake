file(REMOVE_RECURSE
  "CMakeFiles/table2_dispersal_chi2.dir/table2_dispersal_chi2.cc.o"
  "CMakeFiles/table2_dispersal_chi2.dir/table2_dispersal_chi2.cc.o.d"
  "table2_dispersal_chi2"
  "table2_dispersal_chi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_dispersal_chi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
