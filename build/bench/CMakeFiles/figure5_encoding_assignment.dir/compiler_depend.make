# Empty compiler generated dependencies file for figure5_encoding_assignment.
# This may be replaced when dependencies are built.
