file(REMOVE_RECURSE
  "CMakeFiles/figure5_encoding_assignment.dir/figure5_encoding_assignment.cc.o"
  "CMakeFiles/figure5_encoding_assignment.dir/figure5_encoding_assignment.cc.o.d"
  "figure5_encoding_assignment"
  "figure5_encoding_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure5_encoding_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
