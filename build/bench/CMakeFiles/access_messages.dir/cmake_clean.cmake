file(REMOVE_RECURSE
  "CMakeFiles/access_messages.dir/access_messages.cc.o"
  "CMakeFiles/access_messages.dir/access_messages.cc.o.d"
  "access_messages"
  "access_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/access_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
