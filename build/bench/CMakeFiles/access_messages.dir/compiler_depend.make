# Empty compiler generated dependencies file for access_messages.
# This may be replaced when dependencies are built.
