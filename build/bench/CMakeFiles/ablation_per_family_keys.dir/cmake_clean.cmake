file(REMOVE_RECURSE
  "CMakeFiles/ablation_per_family_keys.dir/ablation_per_family_keys.cc.o"
  "CMakeFiles/ablation_per_family_keys.dir/ablation_per_family_keys.cc.o.d"
  "ablation_per_family_keys"
  "ablation_per_family_keys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_per_family_keys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
