# Empty dependencies file for ablation_per_family_keys.
# This may be replaced when dependencies are built.
