# Empty compiler generated dependencies file for table5_fp_chunk_encoding.
# This may be replaced when dependencies are built.
