file(REMOVE_RECURSE
  "CMakeFiles/table5_fp_chunk_encoding.dir/table5_fp_chunk_encoding.cc.o"
  "CMakeFiles/table5_fp_chunk_encoding.dir/table5_fp_chunk_encoding.cc.o.d"
  "table5_fp_chunk_encoding"
  "table5_fp_chunk_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_fp_chunk_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
