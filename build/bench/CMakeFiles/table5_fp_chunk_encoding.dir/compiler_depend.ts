# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table5_fp_chunk_encoding.
