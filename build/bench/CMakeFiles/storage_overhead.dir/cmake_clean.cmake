file(REMOVE_RECURSE
  "CMakeFiles/storage_overhead.dir/storage_overhead.cc.o"
  "CMakeFiles/storage_overhead.dir/storage_overhead.cc.o.d"
  "storage_overhead"
  "storage_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
