file(REMOVE_RECURSE
  "CMakeFiles/attack_frequency.dir/attack_frequency.cc.o"
  "CMakeFiles/attack_frequency.dir/attack_frequency.cc.o.d"
  "attack_frequency"
  "attack_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
