# Empty compiler generated dependencies file for attack_frequency.
# This may be replaced when dependencies are built.
