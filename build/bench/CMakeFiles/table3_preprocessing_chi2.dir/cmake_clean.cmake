file(REMOVE_RECURSE
  "CMakeFiles/table3_preprocessing_chi2.dir/table3_preprocessing_chi2.cc.o"
  "CMakeFiles/table3_preprocessing_chi2.dir/table3_preprocessing_chi2.cc.o.d"
  "table3_preprocessing_chi2"
  "table3_preprocessing_chi2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_preprocessing_chi2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
