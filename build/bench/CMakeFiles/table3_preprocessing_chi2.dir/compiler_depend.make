# Empty compiler generated dependencies file for table3_preprocessing_chi2.
# This may be replaced when dependencies are built.
