# Empty dependencies file for essdds_util.
# This may be replaced when dependencies are built.
