file(REMOVE_RECURSE
  "CMakeFiles/essdds_util.dir/bitstream.cc.o"
  "CMakeFiles/essdds_util.dir/bitstream.cc.o.d"
  "CMakeFiles/essdds_util.dir/bytes.cc.o"
  "CMakeFiles/essdds_util.dir/bytes.cc.o.d"
  "CMakeFiles/essdds_util.dir/logging.cc.o"
  "CMakeFiles/essdds_util.dir/logging.cc.o.d"
  "CMakeFiles/essdds_util.dir/random.cc.o"
  "CMakeFiles/essdds_util.dir/random.cc.o.d"
  "CMakeFiles/essdds_util.dir/status.cc.o"
  "CMakeFiles/essdds_util.dir/status.cc.o.d"
  "libessdds_util.a"
  "libessdds_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
