file(REMOVE_RECURSE
  "libessdds_util.a"
)
