# Empty dependencies file for essdds_workload.
# This may be replaced when dependencies are built.
