file(REMOVE_RECURSE
  "CMakeFiles/essdds_workload.dir/names.cc.o"
  "CMakeFiles/essdds_workload.dir/names.cc.o.d"
  "CMakeFiles/essdds_workload.dir/phonebook.cc.o"
  "CMakeFiles/essdds_workload.dir/phonebook.cc.o.d"
  "libessdds_workload.a"
  "libessdds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
