file(REMOVE_RECURSE
  "libessdds_workload.a"
)
