# Empty dependencies file for essdds_crypto.
# This may be replaced when dependencies are built.
