file(REMOVE_RECURSE
  "libessdds_crypto.a"
)
