file(REMOVE_RECURSE
  "CMakeFiles/essdds_crypto.dir/aes.cc.o"
  "CMakeFiles/essdds_crypto.dir/aes.cc.o.d"
  "CMakeFiles/essdds_crypto.dir/ecb.cc.o"
  "CMakeFiles/essdds_crypto.dir/ecb.cc.o.d"
  "CMakeFiles/essdds_crypto.dir/hmac.cc.o"
  "CMakeFiles/essdds_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/essdds_crypto.dir/prp.cc.o"
  "CMakeFiles/essdds_crypto.dir/prp.cc.o.d"
  "CMakeFiles/essdds_crypto.dir/record_cipher.cc.o"
  "CMakeFiles/essdds_crypto.dir/record_cipher.cc.o.d"
  "CMakeFiles/essdds_crypto.dir/sha256.cc.o"
  "CMakeFiles/essdds_crypto.dir/sha256.cc.o.d"
  "libessdds_crypto.a"
  "libessdds_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
