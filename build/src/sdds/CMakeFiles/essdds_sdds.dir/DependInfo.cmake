
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sdds/lh_client.cc" "src/sdds/CMakeFiles/essdds_sdds.dir/lh_client.cc.o" "gcc" "src/sdds/CMakeFiles/essdds_sdds.dir/lh_client.cc.o.d"
  "/root/repo/src/sdds/lh_options.cc" "src/sdds/CMakeFiles/essdds_sdds.dir/lh_options.cc.o" "gcc" "src/sdds/CMakeFiles/essdds_sdds.dir/lh_options.cc.o.d"
  "/root/repo/src/sdds/lh_server.cc" "src/sdds/CMakeFiles/essdds_sdds.dir/lh_server.cc.o" "gcc" "src/sdds/CMakeFiles/essdds_sdds.dir/lh_server.cc.o.d"
  "/root/repo/src/sdds/lh_system.cc" "src/sdds/CMakeFiles/essdds_sdds.dir/lh_system.cc.o" "gcc" "src/sdds/CMakeFiles/essdds_sdds.dir/lh_system.cc.o.d"
  "/root/repo/src/sdds/message.cc" "src/sdds/CMakeFiles/essdds_sdds.dir/message.cc.o" "gcc" "src/sdds/CMakeFiles/essdds_sdds.dir/message.cc.o.d"
  "/root/repo/src/sdds/network.cc" "src/sdds/CMakeFiles/essdds_sdds.dir/network.cc.o" "gcc" "src/sdds/CMakeFiles/essdds_sdds.dir/network.cc.o.d"
  "/root/repo/src/sdds/rs_code.cc" "src/sdds/CMakeFiles/essdds_sdds.dir/rs_code.cc.o" "gcc" "src/sdds/CMakeFiles/essdds_sdds.dir/rs_code.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/essdds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/essdds_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
