# Empty compiler generated dependencies file for essdds_sdds.
# This may be replaced when dependencies are built.
