file(REMOVE_RECURSE
  "CMakeFiles/essdds_sdds.dir/lh_client.cc.o"
  "CMakeFiles/essdds_sdds.dir/lh_client.cc.o.d"
  "CMakeFiles/essdds_sdds.dir/lh_options.cc.o"
  "CMakeFiles/essdds_sdds.dir/lh_options.cc.o.d"
  "CMakeFiles/essdds_sdds.dir/lh_server.cc.o"
  "CMakeFiles/essdds_sdds.dir/lh_server.cc.o.d"
  "CMakeFiles/essdds_sdds.dir/lh_system.cc.o"
  "CMakeFiles/essdds_sdds.dir/lh_system.cc.o.d"
  "CMakeFiles/essdds_sdds.dir/message.cc.o"
  "CMakeFiles/essdds_sdds.dir/message.cc.o.d"
  "CMakeFiles/essdds_sdds.dir/network.cc.o"
  "CMakeFiles/essdds_sdds.dir/network.cc.o.d"
  "CMakeFiles/essdds_sdds.dir/rs_code.cc.o"
  "CMakeFiles/essdds_sdds.dir/rs_code.cc.o.d"
  "libessdds_sdds.a"
  "libessdds_sdds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_sdds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
