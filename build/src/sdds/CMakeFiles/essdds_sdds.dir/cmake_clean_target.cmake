file(REMOVE_RECURSE
  "libessdds_sdds.a"
)
