# Empty compiler generated dependencies file for essdds_gf.
# This may be replaced when dependencies are built.
