file(REMOVE_RECURSE
  "CMakeFiles/essdds_gf.dir/gf2n.cc.o"
  "CMakeFiles/essdds_gf.dir/gf2n.cc.o.d"
  "CMakeFiles/essdds_gf.dir/matrix.cc.o"
  "CMakeFiles/essdds_gf.dir/matrix.cc.o.d"
  "libessdds_gf.a"
  "libessdds_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
