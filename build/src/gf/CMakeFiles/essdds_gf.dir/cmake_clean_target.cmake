file(REMOVE_RECURSE
  "libessdds_gf.a"
)
