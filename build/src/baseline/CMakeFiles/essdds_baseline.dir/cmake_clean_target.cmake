file(REMOVE_RECURSE
  "libessdds_baseline.a"
)
