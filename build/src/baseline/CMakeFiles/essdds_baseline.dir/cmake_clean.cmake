file(REMOVE_RECURSE
  "CMakeFiles/essdds_baseline.dir/swp_word_store.cc.o"
  "CMakeFiles/essdds_baseline.dir/swp_word_store.cc.o.d"
  "libessdds_baseline.a"
  "libessdds_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
