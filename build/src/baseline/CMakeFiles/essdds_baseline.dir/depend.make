# Empty dependencies file for essdds_baseline.
# This may be replaced when dependencies are built.
