file(REMOVE_RECURSE
  "CMakeFiles/essdds_attack.dir/frequency_attack.cc.o"
  "CMakeFiles/essdds_attack.dir/frequency_attack.cc.o.d"
  "libessdds_attack.a"
  "libessdds_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
