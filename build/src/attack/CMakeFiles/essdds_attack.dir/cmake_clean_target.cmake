file(REMOVE_RECURSE
  "libessdds_attack.a"
)
