# Empty dependencies file for essdds_attack.
# This may be replaced when dependencies are built.
