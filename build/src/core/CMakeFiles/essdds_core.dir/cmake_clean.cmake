file(REMOVE_RECURSE
  "CMakeFiles/essdds_core.dir/encrypted_store.cc.o"
  "CMakeFiles/essdds_core.dir/encrypted_store.cc.o.d"
  "CMakeFiles/essdds_core.dir/matcher.cc.o"
  "CMakeFiles/essdds_core.dir/matcher.cc.o.d"
  "CMakeFiles/essdds_core.dir/pipeline.cc.o"
  "CMakeFiles/essdds_core.dir/pipeline.cc.o.d"
  "CMakeFiles/essdds_core.dir/scheme_params.cc.o"
  "CMakeFiles/essdds_core.dir/scheme_params.cc.o.d"
  "libessdds_core.a"
  "libessdds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
