file(REMOVE_RECURSE
  "libessdds_core.a"
)
