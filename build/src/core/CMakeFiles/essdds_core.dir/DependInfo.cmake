
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/encrypted_store.cc" "src/core/CMakeFiles/essdds_core.dir/encrypted_store.cc.o" "gcc" "src/core/CMakeFiles/essdds_core.dir/encrypted_store.cc.o.d"
  "/root/repo/src/core/matcher.cc" "src/core/CMakeFiles/essdds_core.dir/matcher.cc.o" "gcc" "src/core/CMakeFiles/essdds_core.dir/matcher.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/essdds_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/essdds_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/scheme_params.cc" "src/core/CMakeFiles/essdds_core.dir/scheme_params.cc.o" "gcc" "src/core/CMakeFiles/essdds_core.dir/scheme_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/essdds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/essdds_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/essdds_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/sdds/CMakeFiles/essdds_sdds.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/essdds_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
