# Empty dependencies file for essdds_core.
# This may be replaced when dependencies are built.
