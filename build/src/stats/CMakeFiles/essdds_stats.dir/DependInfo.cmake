
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/chi_squared.cc" "src/stats/CMakeFiles/essdds_stats.dir/chi_squared.cc.o" "gcc" "src/stats/CMakeFiles/essdds_stats.dir/chi_squared.cc.o.d"
  "/root/repo/src/stats/ngram.cc" "src/stats/CMakeFiles/essdds_stats.dir/ngram.cc.o" "gcc" "src/stats/CMakeFiles/essdds_stats.dir/ngram.cc.o.d"
  "/root/repo/src/stats/randomness.cc" "src/stats/CMakeFiles/essdds_stats.dir/randomness.cc.o" "gcc" "src/stats/CMakeFiles/essdds_stats.dir/randomness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/essdds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
