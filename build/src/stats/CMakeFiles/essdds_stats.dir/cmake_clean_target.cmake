file(REMOVE_RECURSE
  "libessdds_stats.a"
)
