# Empty compiler generated dependencies file for essdds_stats.
# This may be replaced when dependencies are built.
