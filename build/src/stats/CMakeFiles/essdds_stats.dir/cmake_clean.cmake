file(REMOVE_RECURSE
  "CMakeFiles/essdds_stats.dir/chi_squared.cc.o"
  "CMakeFiles/essdds_stats.dir/chi_squared.cc.o.d"
  "CMakeFiles/essdds_stats.dir/ngram.cc.o"
  "CMakeFiles/essdds_stats.dir/ngram.cc.o.d"
  "CMakeFiles/essdds_stats.dir/randomness.cc.o"
  "CMakeFiles/essdds_stats.dir/randomness.cc.o.d"
  "libessdds_stats.a"
  "libessdds_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
