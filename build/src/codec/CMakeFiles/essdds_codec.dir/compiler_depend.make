# Empty compiler generated dependencies file for essdds_codec.
# This may be replaced when dependencies are built.
