file(REMOVE_RECURSE
  "libessdds_codec.a"
)
