
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codec/chunker.cc" "src/codec/CMakeFiles/essdds_codec.dir/chunker.cc.o" "gcc" "src/codec/CMakeFiles/essdds_codec.dir/chunker.cc.o.d"
  "/root/repo/src/codec/dispersal.cc" "src/codec/CMakeFiles/essdds_codec.dir/dispersal.cc.o" "gcc" "src/codec/CMakeFiles/essdds_codec.dir/dispersal.cc.o.d"
  "/root/repo/src/codec/symbol_encoder.cc" "src/codec/CMakeFiles/essdds_codec.dir/symbol_encoder.cc.o" "gcc" "src/codec/CMakeFiles/essdds_codec.dir/symbol_encoder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/essdds_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/essdds_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
