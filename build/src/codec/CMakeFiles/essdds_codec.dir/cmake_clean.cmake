file(REMOVE_RECURSE
  "CMakeFiles/essdds_codec.dir/chunker.cc.o"
  "CMakeFiles/essdds_codec.dir/chunker.cc.o.d"
  "CMakeFiles/essdds_codec.dir/dispersal.cc.o"
  "CMakeFiles/essdds_codec.dir/dispersal.cc.o.d"
  "CMakeFiles/essdds_codec.dir/symbol_encoder.cc.o"
  "CMakeFiles/essdds_codec.dir/symbol_encoder.cc.o.d"
  "libessdds_codec.a"
  "libessdds_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
