# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/essdds_util_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_gf_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_sdds_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_codec_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_stats_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_workload_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_core_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_baseline_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_crypto_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_integration_test[1]_include.cmake")
include("/root/repo/build/tests/essdds_attack_test[1]_include.cmake")
