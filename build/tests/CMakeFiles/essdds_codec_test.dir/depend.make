# Empty dependencies file for essdds_codec_test.
# This may be replaced when dependencies are built.
