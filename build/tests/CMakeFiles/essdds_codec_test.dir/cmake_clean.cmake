file(REMOVE_RECURSE
  "CMakeFiles/essdds_codec_test.dir/codec/chunker_test.cc.o"
  "CMakeFiles/essdds_codec_test.dir/codec/chunker_test.cc.o.d"
  "CMakeFiles/essdds_codec_test.dir/codec/codec_property_test.cc.o"
  "CMakeFiles/essdds_codec_test.dir/codec/codec_property_test.cc.o.d"
  "CMakeFiles/essdds_codec_test.dir/codec/dispersal_test.cc.o"
  "CMakeFiles/essdds_codec_test.dir/codec/dispersal_test.cc.o.d"
  "CMakeFiles/essdds_codec_test.dir/codec/symbol_encoder_test.cc.o"
  "CMakeFiles/essdds_codec_test.dir/codec/symbol_encoder_test.cc.o.d"
  "essdds_codec_test"
  "essdds_codec_test.pdb"
  "essdds_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
