
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codec/chunker_test.cc" "tests/CMakeFiles/essdds_codec_test.dir/codec/chunker_test.cc.o" "gcc" "tests/CMakeFiles/essdds_codec_test.dir/codec/chunker_test.cc.o.d"
  "/root/repo/tests/codec/codec_property_test.cc" "tests/CMakeFiles/essdds_codec_test.dir/codec/codec_property_test.cc.o" "gcc" "tests/CMakeFiles/essdds_codec_test.dir/codec/codec_property_test.cc.o.d"
  "/root/repo/tests/codec/dispersal_test.cc" "tests/CMakeFiles/essdds_codec_test.dir/codec/dispersal_test.cc.o" "gcc" "tests/CMakeFiles/essdds_codec_test.dir/codec/dispersal_test.cc.o.d"
  "/root/repo/tests/codec/symbol_encoder_test.cc" "tests/CMakeFiles/essdds_codec_test.dir/codec/symbol_encoder_test.cc.o" "gcc" "tests/CMakeFiles/essdds_codec_test.dir/codec/symbol_encoder_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codec/CMakeFiles/essdds_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/essdds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/essdds_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/essdds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
