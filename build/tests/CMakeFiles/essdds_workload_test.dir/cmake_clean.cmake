file(REMOVE_RECURSE
  "CMakeFiles/essdds_workload_test.dir/workload/phonebook_test.cc.o"
  "CMakeFiles/essdds_workload_test.dir/workload/phonebook_test.cc.o.d"
  "essdds_workload_test"
  "essdds_workload_test.pdb"
  "essdds_workload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
