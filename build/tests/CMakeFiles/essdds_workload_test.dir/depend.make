# Empty dependencies file for essdds_workload_test.
# This may be replaced when dependencies are built.
