file(REMOVE_RECURSE
  "CMakeFiles/essdds_core_test.dir/core/encrypted_store_test.cc.o"
  "CMakeFiles/essdds_core_test.dir/core/encrypted_store_test.cc.o.d"
  "CMakeFiles/essdds_core_test.dir/core/extensions_test.cc.o"
  "CMakeFiles/essdds_core_test.dir/core/extensions_test.cc.o.d"
  "CMakeFiles/essdds_core_test.dir/core/matcher_test.cc.o"
  "CMakeFiles/essdds_core_test.dir/core/matcher_test.cc.o.d"
  "CMakeFiles/essdds_core_test.dir/core/pipeline_test.cc.o"
  "CMakeFiles/essdds_core_test.dir/core/pipeline_test.cc.o.d"
  "CMakeFiles/essdds_core_test.dir/core/property_sweep_test.cc.o"
  "CMakeFiles/essdds_core_test.dir/core/property_sweep_test.cc.o.d"
  "CMakeFiles/essdds_core_test.dir/core/robustness_test.cc.o"
  "CMakeFiles/essdds_core_test.dir/core/robustness_test.cc.o.d"
  "CMakeFiles/essdds_core_test.dir/core/scheme_params_test.cc.o"
  "CMakeFiles/essdds_core_test.dir/core/scheme_params_test.cc.o.d"
  "essdds_core_test"
  "essdds_core_test.pdb"
  "essdds_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
