# Empty dependencies file for essdds_core_test.
# This may be replaced when dependencies are built.
