# Empty compiler generated dependencies file for essdds_integration_test.
# This may be replaced when dependencies are built.
