file(REMOVE_RECURSE
  "CMakeFiles/essdds_integration_test.dir/integration/end_to_end_test.cc.o"
  "CMakeFiles/essdds_integration_test.dir/integration/end_to_end_test.cc.o.d"
  "essdds_integration_test"
  "essdds_integration_test.pdb"
  "essdds_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
