file(REMOVE_RECURSE
  "CMakeFiles/essdds_attack_test.dir/attack/frequency_attack_test.cc.o"
  "CMakeFiles/essdds_attack_test.dir/attack/frequency_attack_test.cc.o.d"
  "essdds_attack_test"
  "essdds_attack_test.pdb"
  "essdds_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
