# Empty compiler generated dependencies file for essdds_attack_test.
# This may be replaced when dependencies are built.
