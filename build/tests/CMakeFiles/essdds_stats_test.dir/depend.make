# Empty dependencies file for essdds_stats_test.
# This may be replaced when dependencies are built.
