file(REMOVE_RECURSE
  "CMakeFiles/essdds_stats_test.dir/stats/randomness_extra_test.cc.o"
  "CMakeFiles/essdds_stats_test.dir/stats/randomness_extra_test.cc.o.d"
  "CMakeFiles/essdds_stats_test.dir/stats/stats_test.cc.o"
  "CMakeFiles/essdds_stats_test.dir/stats/stats_test.cc.o.d"
  "essdds_stats_test"
  "essdds_stats_test.pdb"
  "essdds_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
