file(REMOVE_RECURSE
  "CMakeFiles/essdds_gf_test.dir/gf/gf2n_test.cc.o"
  "CMakeFiles/essdds_gf_test.dir/gf/gf2n_test.cc.o.d"
  "CMakeFiles/essdds_gf_test.dir/gf/matrix_test.cc.o"
  "CMakeFiles/essdds_gf_test.dir/gf/matrix_test.cc.o.d"
  "essdds_gf_test"
  "essdds_gf_test.pdb"
  "essdds_gf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_gf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
