# Empty dependencies file for essdds_gf_test.
# This may be replaced when dependencies are built.
