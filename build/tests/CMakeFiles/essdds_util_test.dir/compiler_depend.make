# Empty compiler generated dependencies file for essdds_util_test.
# This may be replaced when dependencies are built.
