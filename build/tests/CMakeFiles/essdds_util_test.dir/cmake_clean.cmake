file(REMOVE_RECURSE
  "CMakeFiles/essdds_util_test.dir/util/bytes_test.cc.o"
  "CMakeFiles/essdds_util_test.dir/util/bytes_test.cc.o.d"
  "CMakeFiles/essdds_util_test.dir/util/status_test.cc.o"
  "CMakeFiles/essdds_util_test.dir/util/status_test.cc.o.d"
  "essdds_util_test"
  "essdds_util_test.pdb"
  "essdds_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
