# Empty dependencies file for essdds_crypto_test.
# This may be replaced when dependencies are built.
