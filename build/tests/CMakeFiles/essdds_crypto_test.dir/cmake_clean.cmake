file(REMOVE_RECURSE
  "CMakeFiles/essdds_crypto_test.dir/crypto/aes_test.cc.o"
  "CMakeFiles/essdds_crypto_test.dir/crypto/aes_test.cc.o.d"
  "CMakeFiles/essdds_crypto_test.dir/crypto/key_separation_test.cc.o"
  "CMakeFiles/essdds_crypto_test.dir/crypto/key_separation_test.cc.o.d"
  "CMakeFiles/essdds_crypto_test.dir/crypto/prp_test.cc.o"
  "CMakeFiles/essdds_crypto_test.dir/crypto/prp_test.cc.o.d"
  "CMakeFiles/essdds_crypto_test.dir/crypto/record_cipher_test.cc.o"
  "CMakeFiles/essdds_crypto_test.dir/crypto/record_cipher_test.cc.o.d"
  "CMakeFiles/essdds_crypto_test.dir/crypto/sha256_test.cc.o"
  "CMakeFiles/essdds_crypto_test.dir/crypto/sha256_test.cc.o.d"
  "essdds_crypto_test"
  "essdds_crypto_test.pdb"
  "essdds_crypto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_crypto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
