file(REMOVE_RECURSE
  "CMakeFiles/essdds_baseline_test.dir/baseline/swp_word_store_test.cc.o"
  "CMakeFiles/essdds_baseline_test.dir/baseline/swp_word_store_test.cc.o.d"
  "essdds_baseline_test"
  "essdds_baseline_test.pdb"
  "essdds_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
