
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline/swp_word_store_test.cc" "tests/CMakeFiles/essdds_baseline_test.dir/baseline/swp_word_store_test.cc.o" "gcc" "tests/CMakeFiles/essdds_baseline_test.dir/baseline/swp_word_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/essdds_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/essdds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/essdds_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sdds/CMakeFiles/essdds_sdds.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/essdds_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/essdds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
