# Empty compiler generated dependencies file for essdds_baseline_test.
# This may be replaced when dependencies are built.
