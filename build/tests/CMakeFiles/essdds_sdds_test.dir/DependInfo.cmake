
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sdds/lh_shrink_test.cc" "tests/CMakeFiles/essdds_sdds_test.dir/sdds/lh_shrink_test.cc.o" "gcc" "tests/CMakeFiles/essdds_sdds_test.dir/sdds/lh_shrink_test.cc.o.d"
  "/root/repo/tests/sdds/lh_test.cc" "tests/CMakeFiles/essdds_sdds_test.dir/sdds/lh_test.cc.o" "gcc" "tests/CMakeFiles/essdds_sdds_test.dir/sdds/lh_test.cc.o.d"
  "/root/repo/tests/sdds/network_test.cc" "tests/CMakeFiles/essdds_sdds_test.dir/sdds/network_test.cc.o" "gcc" "tests/CMakeFiles/essdds_sdds_test.dir/sdds/network_test.cc.o.d"
  "/root/repo/tests/sdds/rs_code_test.cc" "tests/CMakeFiles/essdds_sdds_test.dir/sdds/rs_code_test.cc.o" "gcc" "tests/CMakeFiles/essdds_sdds_test.dir/sdds/rs_code_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sdds/CMakeFiles/essdds_sdds.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/essdds_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/essdds_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
