# Empty compiler generated dependencies file for essdds_sdds_test.
# This may be replaced when dependencies are built.
