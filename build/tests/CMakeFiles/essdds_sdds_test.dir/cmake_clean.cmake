file(REMOVE_RECURSE
  "CMakeFiles/essdds_sdds_test.dir/sdds/lh_shrink_test.cc.o"
  "CMakeFiles/essdds_sdds_test.dir/sdds/lh_shrink_test.cc.o.d"
  "CMakeFiles/essdds_sdds_test.dir/sdds/lh_test.cc.o"
  "CMakeFiles/essdds_sdds_test.dir/sdds/lh_test.cc.o.d"
  "CMakeFiles/essdds_sdds_test.dir/sdds/network_test.cc.o"
  "CMakeFiles/essdds_sdds_test.dir/sdds/network_test.cc.o.d"
  "CMakeFiles/essdds_sdds_test.dir/sdds/rs_code_test.cc.o"
  "CMakeFiles/essdds_sdds_test.dir/sdds/rs_code_test.cc.o.d"
  "essdds_sdds_test"
  "essdds_sdds_test.pdb"
  "essdds_sdds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/essdds_sdds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
