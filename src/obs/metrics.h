#ifndef ESSDDS_OBS_METRICS_H_
#define ESSDDS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace essdds::obs {

/// Snapshot of one histogram's internals: plain integers, no atomics, so it
/// can be copied, shipped across a wire, and folded into another histogram.
/// The admin plane (net::AdminClient) pulls these from every host of a
/// socket cluster and merges them into one cluster-wide histogram via
/// Histogram::MergeState. Defined outside the ESSDDS_METRICS gate: wire
/// codecs must decode peer snapshots even in a build whose own instruments
/// are stubs.
struct HistogramState {
  static constexpr size_t kBuckets = 65;
  uint64_t buckets[kBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;

  friend bool operator==(const HistogramState&,
                         const HistogramState&) = default;
};

/// True when the build carries the metrics/tracing layer. With
/// -DESSDDS_METRICS=OFF every class in this header collapses to a stateless
/// no-op stub with the same API, so instrumented call sites compile away
/// without #ifdefs. The contract: an OFF build must produce byte-identical
/// results and NetworkStats on every existing test — metrics are strictly
/// passive observers.
#if ESSDDS_METRICS
inline constexpr bool kMetricsEnabled = true;
#else
inline constexpr bool kMetricsEnabled = false;
#endif

constexpr bool MetricsCompiledIn() { return kMetricsEnabled; }

#if ESSDDS_METRICS

/// Monotonic event count. Recording is lock-free (relaxed atomics), so scan
/// workers may increment concurrently with the driver thread.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. a bucket's record count).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-boundary log-scale histogram over uint64 samples (latencies in
/// virtual microseconds, batch sizes, shard counts). Bucket 0 holds the
/// value 0; bucket i (1..64) holds [2^(i-1), 2^i). Values beyond the last
/// finite boundary land in the top bucket; `max` is tracked exactly, so a
/// quantile estimate is never reported above the largest observed sample.
///
/// Recording is lock-free (relaxed atomics + a CAS loop for the max):
/// concurrent Record() from scan workers is safe. Read-side methods
/// (Quantile, Summarize) are approximate under concurrent writes and exact
/// once writers quiesce — which is when the simulator reads them.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void Record(uint64_t value) {
    buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// Quantile estimate for q in [0, 1]: the upper boundary of the bucket
  /// holding the q-th sample, clamped to the exact max. Zero samples yield
  /// a well-defined 0 (as do q <= 0 on any data).
  uint64_t Quantile(double q) const;

  struct Summary {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  Summary Summarize() const;

  /// Folds another histogram's samples into this one (aggregation across
  /// runs). Bucket-granular: count/sum/max are exact, quantiles are as
  /// approximate as the source buckets.
  void MergeFrom(const Histogram& other);

  /// Copies the current contents into a plain snapshot (approximate under
  /// concurrent writers, exact once they quiesce — same contract as the
  /// other read-side methods).
  HistogramState CaptureState() const;

  /// Folds a snapshot's samples into this histogram — MergeFrom for state
  /// that crossed a process boundary.
  void MergeState(const HistogramState& state);

  void Reset();

 private:
  static size_t BucketOf(uint64_t value) {
    if (value == 0) return 0;
    size_t b = 0;
    while (value != 0) {
      value >>= 1;
      ++b;
    }
    return b;  // bit_width: 1 -> bucket 1, [2,3] -> 2, [4,7] -> 3, ...
  }

  /// Largest value the bucket can hold.
  static uint64_t UpperBound(size_t bucket) {
    if (bucket >= 64) return ~uint64_t{0};
    return (uint64_t{1} << bucket) - 1;
  }

  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Named metric directory. One registry lives on each simulated network;
/// sites, clients, and the scan pool obtain their instruments once (at
/// construction/registration) and record through the returned references —
/// the hot path never touches the name map.
///
/// Thread safety: instrument *lookup/creation* is confined to the single
/// simulator driver thread (sites register and clients are created there);
/// *recording* through the returned references is lock-free and safe from
/// scan workers. References stay valid for the registry's lifetime.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// The one reset: zeroes every counter, gauge, and histogram while
  /// keeping all registrations (references held by call sites stay valid).
  /// Network::ResetStats() calls this so a phase boundary resets the flat
  /// NetworkStats and the registry together.
  void ResetAll();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,
  /// p50,p95,p99}}} with keys in lexicographic order.
  std::string ToJson() const;

  /// Full-registry snapshots in lexicographic name order — what the admin
  /// wire ships to a puller. Creation-free: a registry that never saw a
  /// metric yields empty vectors.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramState>> HistogramStates() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

#else  // !ESSDDS_METRICS — stateless stubs, same API, everything inlines away

class Counter {
 public:
  void Increment(uint64_t = 1) {}
  uint64_t value() const { return 0; }
  void Reset() {}
};

class Gauge {
 public:
  void Set(int64_t) {}
  int64_t value() const { return 0; }
  void Reset() {}
};

class Histogram {
 public:
  static constexpr size_t kBuckets = 65;
  void Record(uint64_t) {}
  uint64_t count() const { return 0; }
  uint64_t sum() const { return 0; }
  uint64_t max() const { return 0; }
  uint64_t Quantile(double) const { return 0; }
  struct Summary {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  Summary Summarize() const { return {}; }
  void MergeFrom(const Histogram&) {}
  HistogramState CaptureState() const { return {}; }
  void MergeState(const HistogramState&) {}
  void Reset() {}
};

class MetricRegistry {
 public:
  Counter& counter(std::string_view) { return counter_; }
  Gauge& gauge(std::string_view) { return gauge_; }
  Histogram& histogram(std::string_view) { return histogram_; }
  void ResetAll() {}
  std::string ToJson() const { return "{}"; }
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const {
    return {};
  }
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const {
    return {};
  }
  std::vector<std::pair<std::string, HistogramState>> HistogramStates() const {
    return {};
  }

 private:
  // One shared stub per kind: references handed out are all the same
  // stateless object.
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // ESSDDS_METRICS

}  // namespace essdds::obs

#endif  // ESSDDS_OBS_METRICS_H_
