#include "obs/trace.h"

#include <cstdio>

#include "util/json_writer.h"
#include "util/logging.h"

namespace essdds::obs {

std::string_view HopKindName(HopKind k) {
  switch (k) {
    case HopKind::kOpStart:
      return "op-start";
    case HopKind::kSend:
      return "send";
    case HopKind::kDeliver:
      return "deliver";
    case HopKind::kDrop:
      return "drop";
    case HopKind::kDuplicate:
      return "duplicate";
    case HopKind::kPark:
      return "park";
    case HopKind::kReplay:
      return "replay";
    case HopKind::kRetry:
      return "retry";
    case HopKind::kStale:
      return "stale-reply";
    case HopKind::kOpDone:
      return "op-done";
  }
  return "?";
}

std::string FormatTraceEvent(
    const TraceEvent& ev,
    const std::function<std::string_view(uint8_t)>& type_name) {
  char buf[192];
  const std::string type =
      type_name ? std::string(type_name(ev.msg_type))
                : "type" + std::to_string(ev.msg_type);
  std::snprintf(buf, sizeof buf,
                "t=%10lluus trace=%llu req=%llu %-11s %-12s site %u -> %u "
                "key/bucket=%llu",
                static_cast<unsigned long long>(ev.time_us),
                static_cast<unsigned long long>(ev.trace_id),
                static_cast<unsigned long long>(ev.request_id),
                std::string(HopKindName(ev.kind)).c_str(), type.c_str(),
                ev.from, ev.to, static_cast<unsigned long long>(ev.key));
  return buf;
}

#if ESSDDS_METRICS

TraceRing::TraceRing(size_t capacity) : events_(capacity ? capacity : 1) {}

void TraceRing::Record(TraceEvent ev) {
  if (size_ == events_.size()) ++overwritten_;
  events_[next_] = ev;
  next_ = (next_ + 1) % events_.size();
  if (size_ < events_.size()) ++size_;
}

std::vector<TraceEvent> TraceRing::Snapshot(uint64_t trace_id) const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  const size_t start = (next_ + events_.size() - size_) % events_.size();
  for (size_t i = 0; i < size_; ++i) {
    const TraceEvent& ev = events_[(start + i) % events_.size()];
    if (trace_id == 0 || ev.trace_id == trace_id) out.push_back(ev);
  }
  return out;
}

std::string TraceRing::DumpText(
    uint64_t trace_id,
    const std::function<std::string_view(uint8_t)>& type_name) const {
  std::string out;
  if (overwritten_ > 0) {
    out += "(ring overwrote " + std::to_string(overwritten_) +
           " older hops)\n";
  }
  for (const TraceEvent& ev : Snapshot(trace_id)) {
    out += FormatTraceEvent(ev, type_name);
    out.push_back('\n');
  }
  if (out.empty()) {
    out = "(no hops recorded for trace " + std::to_string(trace_id) + ")\n";
  }
  return out;
}

std::string TraceRing::ToJson(
    uint64_t trace_id,
    const std::function<std::string_view(uint8_t)>& type_name) const {
  JsonWriter w;
  w.BeginArray();
  for (const TraceEvent& ev : Snapshot(trace_id)) {
    w.BeginObject()
        .KV("t_us", ev.time_us)
        .KV("trace", ev.trace_id)
        .KV("req", ev.request_id)
        .KV("hop", HopKindName(ev.kind))
        .KV("msg", type_name ? type_name(ev.msg_type)
                             : std::string_view("unknown"))
        .KV("from", static_cast<uint64_t>(ev.from))
        .KV("to", static_cast<uint64_t>(ev.to))
        .KV("key", ev.key)
        .EndObject();
  }
  w.EndArray();
  return w.str();
}

void TraceRing::Clear() {
  next_ = 0;
  size_ = 0;
  overwritten_ = 0;
}

#endif  // ESSDDS_METRICS

}  // namespace essdds::obs
