#ifndef ESSDDS_OBS_TRACE_H_
#define ESSDDS_OBS_TRACE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace essdds::obs {

/// What happened at one hop of a traced operation's causal path.
enum class HopKind : uint8_t {
  kOpStart = 0,  // client began an operation (msg_type = request type)
  kSend,         // a site handed a message to the network
  kDeliver,      // the network ran the destination's OnMessage
  kDrop,         // the network discarded the send (fault injection)
  kDuplicate,    // the network scheduled an extra fault copy
  kPark,         // delivery parked at a paused/loading site
  kReplay,       // a parked message re-entered delivery
  kRetry,        // the client retransmitted after a timeout/loss
  kStale,        // the client discarded a reply for a completed request
  kOpDone,       // client accepted the operation's result
};

std::string_view HopKindName(HopKind k);

/// One recorded hop. `trace_id` groups the hops of a single client
/// operation (0 = untraced protocol background, still recorded); `key`
/// carries the message's key field — the record key for key ops, the bucket
/// number on scan replies and restructuring orders.
struct TraceEvent {
  uint64_t time_us = 0;
  uint64_t trace_id = 0;
  uint64_t request_id = 0;
  uint64_t key = 0;
  uint32_t from = 0;
  uint32_t to = 0;
  uint8_t msg_type = 0;
  HopKind kind = HopKind::kSend;
};

#if ESSDDS_METRICS

/// Bounded in-memory hop recorder: a fixed-capacity ring that overwrites
/// its oldest entries, so tracing every message of a long run costs O(1)
/// memory and a failing seed still holds the causally relevant recent past.
///
/// Recording happens only on the simulator's driver thread (network sends,
/// deliveries, client/site events); scan workers never trace. The ring is
/// therefore unsynchronized by design.
class TraceRing {
 public:
  explicit TraceRing(size_t capacity = 8192);

  void Record(TraceEvent ev);

  /// Events in recording order, optionally filtered to one trace id
  /// (0 = everything).
  std::vector<TraceEvent> Snapshot(uint64_t trace_id = 0) const;

  /// Human-readable dump, one hop per line. `type_name` renders the wire
  /// message type (the ring itself is protocol-agnostic); nullable — raw
  /// numbers are printed then.
  std::string DumpText(
      uint64_t trace_id,
      const std::function<std::string_view(uint8_t)>& type_name) const;

  /// JSON array of hop objects (same filter semantics as Snapshot).
  std::string ToJson(
      uint64_t trace_id,
      const std::function<std::string_view(uint8_t)>& type_name) const;

  void Clear();

  size_t size() const { return size_; }
  size_t capacity() const { return events_.size(); }
  /// Events overwritten since the last Clear() — nonzero means the dump is
  /// a suffix of the run, not the whole history.
  uint64_t overwritten() const { return overwritten_; }

 private:
  std::vector<TraceEvent> events_;
  size_t next_ = 0;
  size_t size_ = 0;
  uint64_t overwritten_ = 0;
};

#else  // !ESSDDS_METRICS

class TraceRing {
 public:
  explicit TraceRing(size_t = 0) {}
  void Record(const TraceEvent&) {}
  std::vector<TraceEvent> Snapshot(uint64_t = 0) const { return {}; }
  std::string DumpText(
      uint64_t, const std::function<std::string_view(uint8_t)>&) const {
    return "(tracing compiled out: build with -DESSDDS_METRICS=ON)";
  }
  std::string ToJson(uint64_t,
                     const std::function<std::string_view(uint8_t)>&) const {
    return "[]";
  }
  void Clear() {}
  size_t size() const { return 0; }
  size_t capacity() const { return 0; }
  uint64_t overwritten() const { return 0; }
};

#endif  // ESSDDS_METRICS

/// Formats one hop as a text line (shared by TraceRing::DumpText and test
/// failure reporters that hold their own snapshots).
std::string FormatTraceEvent(
    const TraceEvent& ev,
    const std::function<std::string_view(uint8_t)>& type_name);

}  // namespace essdds::obs

#endif  // ESSDDS_OBS_TRACE_H_
