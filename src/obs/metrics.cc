#include "obs/metrics.h"

#if ESSDDS_METRICS

#include <cmath>

#include "util/json_writer.h"

namespace essdds::obs {

uint64_t Histogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based: the smallest rank covering fraction q
  // of the population, i.e. ceil(q*n). Truncation here would bias a whole
  // rank low whenever q*n is integral-or-above (p50 of 4 samples must be
  // the 2nd, not the 1st) — and the product is computed in floating point,
  // so an exact integral target like 0.95*100 can surface as 94.999...;
  // the epsilon keeps ceil from bumping such targets to the next rank.
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(n) - 1e-9));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // The bucket's upper boundary, never above the exact observed max.
      const uint64_t m = max();
      const uint64_t upper = UpperBound(b);
      return upper < m ? upper : m;
    }
  }
  return max();  // concurrent writers mid-update; best effort
}

Histogram::Summary Histogram::Summarize() const {
  Summary s;
  s.count = count();
  s.sum = sum();
  s.max = max();
  s.p50 = Quantile(0.50);
  s.p95 = Quantile(0.95);
  s.p99 = Quantile(0.99);
  return s;
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t b = 0; b < kBuckets; ++b) {
    const uint64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  uint64_t v = other.max();
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

HistogramState Histogram::CaptureState() const {
  HistogramState s;
  for (size_t b = 0; b < kBuckets; ++b) {
    s.buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  s.count = count();
  s.sum = sum();
  s.max = max();
  return s;
}

void Histogram::MergeState(const HistogramState& state) {
  for (size_t b = 0; b < kBuckets; ++b) {
    if (state.buckets[b]) {
      buckets_[b].fetch_add(state.buckets[b], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(state.count, std::memory_order_relaxed);
  sum_.fetch_add(state.sum, std::memory_order_relaxed);
  uint64_t v = state.max;
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Counter& MetricRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void MetricRegistry::ResetAll() {
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string MetricRegistry::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.KV(name, c->value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.KV(name, g->value());
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Summary s = h->Summarize();
    w.Key(name)
        .BeginObject()
        .KV("count", s.count)
        .KV("sum", s.sum)
        .KV("max", s.max)
        .KV("p50", s.p50)
        .KV("p95", s.p95)
        .KV("p99", s.p99)
        .EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::vector<std::pair<std::string, uint64_t>> MetricRegistry::CounterValues()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricRegistry::GaugeValues()
    const {
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, HistogramState>>
MetricRegistry::HistogramStates() const {
  std::vector<std::pair<std::string, HistogramState>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->CaptureState());
  }
  return out;
}

}  // namespace essdds::obs

#endif  // ESSDDS_METRICS
