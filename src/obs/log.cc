#include "obs/log.h"

#if ESSDDS_METRICS

#include <cstdio>

namespace essdds::obs {

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();  // leaked: outlives static dtors
  return *log;
}

void EventLog::set_rate_limit_per_sec(double per_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  per_sec_ = per_sec;
  tokens_ = per_sec > 0 ? per_sec : 0;
  primed_ = false;
}

void EventLog::set_capture(std::string* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  capture_ = sink;
}

uint64_t EventLog::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

uint64_t EventLog::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_total_;
}

bool EventLog::Admit(uint64_t* suppressed_since) {
  std::lock_guard<std::mutex> lock(mu_);
  if (per_sec_ <= 0) {
    *suppressed_since = suppressed_since_;
    suppressed_since_ = 0;
    ++emitted_;
    return true;
  }
  const auto now = std::chrono::steady_clock::now();
  if (!primed_) {
    primed_ = true;
    last_refill_ = now;
    tokens_ = per_sec_;  // full burst at startup
  } else {
    const double elapsed =
        std::chrono::duration<double>(now - last_refill_).count();
    last_refill_ = now;
    tokens_ += elapsed * per_sec_;
    if (tokens_ > per_sec_) tokens_ = per_sec_;  // burst cap = 1s of budget
  }
  if (tokens_ < 1.0) {
    ++suppressed_total_;
    ++suppressed_since_;
    return false;
  }
  tokens_ -= 1.0;
  *suppressed_since = suppressed_since_;
  suppressed_since_ = 0;
  ++emitted_;
  return true;
}

void EventLog::Write(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capture_ != nullptr) {
    capture_->append(line);
    capture_->push_back('\n');
    return;
  }
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
}

LogEvent::LogEvent(std::string_view event, LogLevel level)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GetMinLogLevel())) {
  if (!enabled_) return;
  w_.BeginObject().KV("event", event);
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  uint64_t suppressed_since = 0;
  EventLog& log = EventLog::Global();
  if (!log.Admit(&suppressed_since)) return;
  if (suppressed_since > 0) w_.KV("suppressed", suppressed_since);
  w_.EndObject();
  log.Write(w_.str());
}

LogEvent& LogEvent::U64(std::string_view key, uint64_t v) {
  if (enabled_) w_.KV(key, v);
  return *this;
}

LogEvent& LogEvent::I64(std::string_view key, int64_t v) {
  if (enabled_) w_.KV(key, v);
  return *this;
}

LogEvent& LogEvent::Dbl(std::string_view key, double v) {
  if (enabled_) w_.KV(key, v);
  return *this;
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view v) {
  if (enabled_) w_.KV(key, v);
  return *this;
}

}  // namespace essdds::obs

#endif  // ESSDDS_METRICS
