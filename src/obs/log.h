#ifndef ESSDDS_OBS_LOG_H_
#define ESSDDS_OBS_LOG_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "util/json_writer.h"
#include "util/logging.h"

namespace essdds::obs {

#if ESSDDS_METRICS

/// Process-wide sink for structured (one-JSON-line) events: slow ops,
/// bucket halts, recovery milestones. Distinct from ESSDDS_LOG, which emits
/// free-form human text — these lines are machine-greppable and carry trace
/// ids, so a slow-op line can be fed straight to `essdds_admin trace`.
///
/// Events are rate-limited by a token bucket (default 20 lines/sec): a hot
/// failure path — every op slow because a site died — must not turn the log
/// into the bottleneck. Dropped events are counted, and the count of drops
/// since the last emitted line rides the next line as a "suppressed" field,
/// so the reader knows the log is lossy and by how much.
///
/// Thread-safe; the emitting path takes one short mutex.
class EventLog {
 public:
  static EventLog& Global();

  /// Token-bucket refill rate. <= 0 disables limiting entirely.
  void set_rate_limit_per_sec(double per_sec);

  /// Test hook: while set, emitted lines append to *sink instead of stderr.
  /// Pass nullptr to restore stderr. Caller owns the string and must keep
  /// it alive until the hook is cleared.
  void set_capture(std::string* sink);

  uint64_t emitted() const;
  uint64_t suppressed() const;

 private:
  friend class LogEvent;

  /// Consumes one token. True → caller may emit, and *suppressed_since
  /// holds the number of events dropped since the previous emitted line
  /// (0 when none). False → the event is dropped and counted.
  bool Admit(uint64_t* suppressed_since);
  void Write(std::string_view line);

  mutable std::mutex mu_;
  double per_sec_ = 20.0;
  double tokens_ = 20.0;
  bool primed_ = false;
  std::chrono::steady_clock::time_point last_refill_;
  uint64_t emitted_ = 0;
  uint64_t suppressed_total_ = 0;
  uint64_t suppressed_since_ = 0;
  std::string* capture_ = nullptr;
};

/// Builder for one structured event line. Fields accumulate through the
/// chainable setters; the destructor emits the line (subject to level and
/// rate-limit checks):
///
///   obs::LogEvent("slow_op")
///       .Str("op", "insert").U64("key", k)
///       .U64("elapsed_us", dt).U64("trace_id", tid);
///
/// → {"event":"slow_op","op":"insert","key":...,"elapsed_us":...,...}
///
/// Default level is kWarning so events are visible at the default min log
/// level — every emitting site is already opt-in (slow_op_us = 0 disables
/// slow-op events; halts are always worth a line).
class LogEvent {
 public:
  explicit LogEvent(std::string_view event,
                    LogLevel level = LogLevel::kWarning);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& U64(std::string_view key, uint64_t v);
  LogEvent& I64(std::string_view key, int64_t v);
  LogEvent& Dbl(std::string_view key, double v);
  LogEvent& Str(std::string_view key, std::string_view v);

 private:
  bool enabled_;
  JsonWriter w_;
};

#else  // !ESSDDS_METRICS — the whole sink inlines away

class EventLog {
 public:
  static EventLog& Global() {
    static EventLog log;
    return log;
  }
  void set_rate_limit_per_sec(double) {}
  void set_capture(std::string*) {}
  uint64_t emitted() const { return 0; }
  uint64_t suppressed() const { return 0; }
};

class LogEvent {
 public:
  explicit LogEvent(std::string_view, LogLevel = LogLevel::kWarning) {}
  LogEvent& U64(std::string_view, uint64_t) { return *this; }
  LogEvent& I64(std::string_view, int64_t) { return *this; }
  LogEvent& Dbl(std::string_view, double) { return *this; }
  LogEvent& Str(std::string_view, std::string_view) { return *this; }
};

#endif  // ESSDDS_METRICS

}  // namespace essdds::obs

#endif  // ESSDDS_OBS_LOG_H_
