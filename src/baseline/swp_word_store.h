#ifndef ESSDDS_BASELINE_SWP_WORD_STORE_H_
#define ESSDDS_BASELINE_SWP_WORD_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/prp.h"
#include "sdds/lh_system.h"
#include "util/result.h"

namespace essdds::baseline {

/// Baseline for comparison: Song/Wagner/Perrig-style searchable encryption
/// (IEEE S&P 2000), which the paper explicitly contrasts with ("in contrast
/// to the work by Song et al., we want to be able to search for arbitrary
/// patterns, not just words").
///
/// Construction (the SWP final scheme, adapted to fixed-width word digests):
/// each word W maps to a 64-bit digest X = H(W), pre-encrypted to
/// X' = E(X) = <L, R>. Position i of record rid stores
///   C_i = X' xor <S_i, F_{k(L)}(S_i)>
/// where S_i is a per-(rid, i) pseudorandom 32-bit salt and k(L) a
/// word-derived key. A site given the trapdoor (X', k(L)) can test any C_i
/// by xoring and checking the <S, F_k(S)> structure — without learning
/// anything about non-matching words. Search granularity is WHOLE WORDS
/// only; that is precisely the limitation the paper's chunked scheme lifts.
class SwpWordStore {
 public:
  static Result<std::unique_ptr<SwpWordStore>> Create(ByteSpan master_key);

  /// Tokenizes `content` into words (maximal alpha runs, uppercased) and
  /// stores one sealed word per position.
  Status Insert(uint64_t rid, std::string_view content);

  /// Exact-word search; returns sorted rids. Substrings of words are NOT
  /// found — by design of the baseline.
  Result<std::vector<uint64_t>> SearchWord(std::string_view word);

  /// Removes all word entries of a record.
  Status Delete(uint64_t rid);

  sdds::LhSystem& file() { return file_; }
  uint64_t stored_words() const { return file_.TotalRecords(); }

  /// Tokenization used by Insert (exposed for tests and benches).
  static std::vector<std::string> Tokenize(std::string_view content);

 private:
  explicit SwpWordStore(Bytes master_key);

  /// 64-bit word digest (keyed, so sites cannot brute-force a dictionary
  /// without the key).
  uint64_t WordDigest(std::string_view word) const;
  /// 32-bit per-position salt S_i.
  uint32_t Salt(uint64_t rid, uint32_t position) const;
  /// Word-derived check key k(L).
  Bytes CheckKey(uint32_t left) const;
  /// F_k(S): 32-bit pseudorandom check value.
  static uint32_t CheckTag(const Bytes& key, uint32_t salt);

  Bytes digest_key_;
  Bytes salt_key_;
  Bytes check_key_root_;
  std::unique_ptr<crypto::FeistelPrp> pre_encryptor_;  // 64-bit PRP
  sdds::LhSystem file_;
  sdds::LhClient* client_ = nullptr;
  uint64_t filter_id_ = 0;
  /// Word count per record, to derive deterministic delete keys.
  std::map<uint64_t, uint32_t> word_counts_;
};

}  // namespace essdds::baseline

#endif  // ESSDDS_BASELINE_SWP_WORD_STORE_H_
