#include "baseline/swp_word_store.h"

#include <algorithm>
#include <cctype>
#include <utility>

#include "crypto/hmac.h"

namespace essdds::baseline {

namespace {

constexpr int kPositionBits = 16;

uint64_t EntryKey(uint64_t rid, uint32_t position) {
  return (rid << kPositionBits) | position;
}

}  // namespace

SwpWordStore::SwpWordStore(Bytes master_key)
    : digest_key_(crypto::DeriveKey(master_key, "swp/digest", 32)),
      salt_key_(crypto::DeriveKey(master_key, "swp/salt", 32)),
      check_key_root_(crypto::DeriveKey(master_key, "swp/check", 32)),
      file_(sdds::LhOptions{.bucket_capacity = 64}) {
  auto prp = crypto::FeistelPrp::Create(
      crypto::DeriveKey(master_key, "swp/pre", 16), 64);
  ESSDDS_CHECK(prp.ok());
  pre_encryptor_ = std::make_unique<crypto::FeistelPrp>(*std::move(prp));
  client_ = file_.NewClient();

  filter_id_ = file_.InstallFilter([](uint64_t key, ByteSpan value,
                                      ByteSpan arg) {
    (void)key;
    // arg = X'(8) || check key (16). value = C (8 bytes).
    if (arg.size() != 24 || value.size() != 8) return false;
    const uint64_t x_prime = LoadBigEndian64(arg.data());
    const Bytes check_key(arg.begin() + 8, arg.end());
    const uint64_t c = LoadBigEndian64(value.data());
    const uint64_t t = c ^ x_prime;
    const uint32_t salt = static_cast<uint32_t>(t >> 32);
    const uint32_t tag = static_cast<uint32_t>(t & 0xFFFFFFFFu);
    return CheckTag(check_key, salt) == tag;
  });
}

Result<std::unique_ptr<SwpWordStore>> SwpWordStore::Create(
    ByteSpan master_key) {
  if (master_key.empty()) {
    return Status::InvalidArgument("empty master key");
  }
  return std::unique_ptr<SwpWordStore>(
      new SwpWordStore(Bytes(master_key.begin(), master_key.end())));
}

std::vector<std::string> SwpWordStore::Tokenize(std::string_view content) {
  std::vector<std::string> words;
  std::string current;
  for (char c : content) {
    if (std::isalpha(static_cast<unsigned char>(c))) {
      current += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      words.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) words.push_back(std::move(current));
  return words;
}

uint64_t SwpWordStore::WordDigest(std::string_view word) const {
  auto mac = crypto::HmacSha256(digest_key_, ToBytes(word));
  return LoadBigEndian64(mac.data());
}

uint32_t SwpWordStore::Salt(uint64_t rid, uint32_t position) const {
  Bytes msg;
  AppendBigEndian64(rid, msg);
  AppendBigEndian32(position, msg);
  auto mac = crypto::HmacSha256(salt_key_, msg);
  return LoadBigEndian32(mac.data());
}

Bytes SwpWordStore::CheckKey(uint32_t left) const {
  Bytes msg;
  AppendBigEndian32(left, msg);
  auto mac = crypto::HmacSha256(check_key_root_, msg);
  return Bytes(mac.begin(), mac.begin() + 16);
}

uint32_t SwpWordStore::CheckTag(const Bytes& key, uint32_t salt) {
  Bytes msg;
  AppendBigEndian32(salt, msg);
  auto mac = crypto::HmacSha256(key, msg);
  return LoadBigEndian32(mac.data());
}

Status SwpWordStore::Insert(uint64_t rid, std::string_view content) {
  if (rid > (~uint64_t{0} >> kPositionBits)) {
    return Status::InvalidArgument("rid does not fit the key layout");
  }
  const std::vector<std::string> words = Tokenize(content);
  if (words.size() >= (uint64_t{1} << kPositionBits)) {
    return Status::InvalidArgument("record has too many words");
  }
  // Replace semantics: clear any previous footprint first.
  auto it = word_counts_.find(rid);
  if (it != word_counts_.end()) {
    ESSDDS_RETURN_IF_ERROR(Delete(rid));
  }
  for (uint32_t i = 0; i < words.size(); ++i) {
    const uint64_t x_prime = pre_encryptor_->Encrypt(WordDigest(words[i]));
    const uint32_t left = static_cast<uint32_t>(x_prime >> 32);
    const uint32_t salt = Salt(rid, i);
    const uint32_t tag = CheckTag(CheckKey(left), salt);
    const uint64_t sealed =
        x_prime ^ ((static_cast<uint64_t>(salt) << 32) | tag);
    Bytes value(8);
    StoreBigEndian64(sealed, value.data());
    client_->Insert(EntryKey(rid, i), std::move(value));
  }
  word_counts_[rid] = static_cast<uint32_t>(words.size());
  return Status::OK();
}

Result<std::vector<uint64_t>> SwpWordStore::SearchWord(
    std::string_view word) {
  const std::vector<std::string> tokens = Tokenize(word);
  if (tokens.size() != 1) {
    return Status::InvalidArgument("SearchWord expects exactly one word");
  }
  const uint64_t x_prime = pre_encryptor_->Encrypt(WordDigest(tokens[0]));
  const uint32_t left = static_cast<uint32_t>(x_prime >> 32);
  Bytes trapdoor;
  AppendBigEndian64(x_prime, trapdoor);
  const Bytes check_key = CheckKey(left);
  trapdoor.insert(trapdoor.end(), check_key.begin(), check_key.end());

  auto scan = client_->Scan(filter_id_, trapdoor);
  std::vector<uint64_t> rids;
  for (const auto& hit : scan.hits) {
    rids.push_back(hit.key >> kPositionBits);
  }
  std::sort(rids.begin(), rids.end());
  rids.erase(std::unique(rids.begin(), rids.end()), rids.end());
  return rids;
}

Status SwpWordStore::Delete(uint64_t rid) {
  auto it = word_counts_.find(rid);
  if (it == word_counts_.end()) {
    return Status::NotFound("no record " + std::to_string(rid));
  }
  for (uint32_t i = 0; i < it->second; ++i) {
    Status s = client_->Delete(EntryKey(rid, i));
    if (!s.ok() && !s.IsNotFound()) return s;
  }
  word_counts_.erase(it);
  return Status::OK();
}

}  // namespace essdds::baseline
