#include "sdds/network.h"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "util/json_writer.h"

namespace essdds::sdds {

std::string NetworkStats::ToString() const {
  std::ostringstream os;
  os << "messages=" << total_messages << " bytes=" << total_bytes
     << " forwarded=" << forwarded_messages;
  if (dropped_messages || duplicated_messages || retried_messages) {
    os << " dropped=" << dropped_messages
       << " duplicated=" << duplicated_messages
       << " retried=" << retried_messages;
  }
  if (retransmitted_frames || link_acks) {
    os << " retransmitted_frames=" << retransmitted_frames
       << " link_acks=" << link_acks;
  }
  // Per-type breakdown: one aligned row per type, in wire-enum order (the
  // map key order — stable across runs and platforms).
  for (const auto& [type, count] : per_type) {
    os << "\n  " << std::left << std::setw(12) << MsgTypeToString(type)
       << std::right << std::setw(10) << count;
  }
  return os.str();
}

std::string NetworkStats::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.KV("total_messages", total_messages);
  w.KV("total_bytes", total_bytes);
  w.KV("forwarded_messages", forwarded_messages);
  w.KV("dropped_messages", dropped_messages);
  w.KV("duplicated_messages", duplicated_messages);
  w.KV("retried_messages", retried_messages);
  w.KV("retransmitted_frames", retransmitted_frames);
  w.KV("link_acks", link_acks);
  w.Key("per_type").BeginObject();
  for (const auto& [type, count] : per_type) {
    w.KV(MsgTypeToString(type), count);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

void Network::NoteSendMetrics(const Message& msg, uint64_t bytes) {
  if (!obs::kMetricsEnabled) return;
  if (msg.from != kInvalidSite) {
    while (site_msgs_sent_.size() <= msg.from) {
      const std::string prefix =
          "net.site." + std::to_string(site_msgs_sent_.size());
      site_msgs_sent_.push_back(&metrics_.counter(prefix + ".msgs_sent"));
      site_bytes_sent_.push_back(&metrics_.counter(prefix + ".bytes_sent"));
    }
    site_msgs_sent_[msg.from]->Increment();
    site_bytes_sent_[msg.from]->Increment(bytes);
  }
  TraceHop(obs::HopKind::kSend, msg);
}

std::string Network::TraceDump(uint64_t trace_id) const {
  return trace_.DumpText(trace_id, [](uint8_t t) {
    return MsgTypeToString(static_cast<MsgType>(t));
  });
}

void Network::EnqueueScanTask(ScanTask task) {
  pending_scans_.push_back(std::move(task));
}

ScanWorkerPool& Network::scan_pool() {
  if (!scan_pool_) {
    scan_pool_ = std::make_unique<ScanWorkerPool>(scan_threads_, &metrics_);
  }
  return *scan_pool_;
}

void Network::ResolveDeferredScans(uint64_t bucket) {
  // Inline, on the calling thread: this runs from a bucket server about to
  // mutate its record map, mid-message-delivery — the pool is reserved for
  // the batch drain. ExecuteScanTask skips tasks already evaluated.
  for (ScanTask& task : pending_scans_) {
    if (task.bucket == bucket) ExecuteScanTask(task);
  }
}

void Network::DrainDeferredScans() {
  if (pending_scans_.empty()) return;
  std::vector<ScanTask> batch = std::move(pending_scans_);
  pending_scans_.clear();

  // One Prepare() per scan, not per bucket: tasks with the same filter and
  // the same argument belong to the same scan, so they share one compiled
  // filter instance (Prepared::Matches is const and thread-safe; see the
  // ScanFilter contract). A scan whose argument fails to compile shares the
  // nullptr — every one of its buckets answers empty. Tasks a bucket
  // already resolved ahead of a mutation carry their hits and are skipped.
  std::vector<std::unique_ptr<ScanFilter::Prepared>> prepared_pool;
  std::map<std::pair<const ScanFilter*, Bytes>, const ScanFilter::Prepared*>
      by_scan;
  for (ScanTask& task : batch) {
    if (task.evaluated) continue;
    auto key = std::make_pair(task.filter, task.arg);
    auto it = by_scan.find(key);
    if (it == by_scan.end()) {
      prepared_pool.push_back(task.filter->Prepare(task.arg));
      it = by_scan.emplace(std::move(key), prepared_pool.back().get()).first;
    }
    task.shared_prepared = it->second;
    task.has_shared_prepared = true;
  }

  scan_pool().Run(batch, scan_shard_min_records_);
  // Replies go out in ascending bucket order: the one deterministic order
  // independent of worker scheduling (and of the serial delivery order).
  std::stable_sort(batch.begin(), batch.end(),
                   [](const ScanTask& a, const ScanTask& b) {
                     return a.bucket < b.bucket;
                   });
  for (ScanTask& task : batch) Send(std::move(task.reply));
}

SiteId SimNetwork::Register(Site* site) {
  ESSDDS_CHECK(site != nullptr);
  sites_.push_back(site);
  return static_cast<SiteId>(sites_.size() - 1);
}

void SimNetwork::Send(Message msg) {
  ESSDDS_CHECK(msg.to < sites_.size())
      << "send to unregistered site " << msg.to;
  Account(msg);

  // Guard against protocol bugs that would recurse unboundedly.
  ++delivery_depth_;
  ESSDDS_CHECK(delivery_depth_ < 256) << "message delivery depth exceeded";
  TraceHop(obs::HopKind::kDeliver, msg);
  Site* dest = sites_[msg.to];
  dest->OnMessage(msg, *this);
  --delivery_depth_;
}

}  // namespace essdds::sdds
