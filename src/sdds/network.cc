#include "sdds/network.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace essdds::sdds {

std::string NetworkStats::ToString() const {
  std::ostringstream os;
  os << "messages=" << total_messages << " bytes=" << total_bytes
     << " forwarded=" << forwarded_messages;
  for (const auto& [type, count] : per_type) {
    os << " " << MsgTypeToString(type) << "=" << count;
  }
  return os.str();
}

SiteId SimNetwork::Register(Site* site) {
  ESSDDS_CHECK(site != nullptr);
  sites_.push_back(site);
  return static_cast<SiteId>(sites_.size() - 1);
}

void SimNetwork::Send(Message msg) {
  ESSDDS_CHECK(msg.to < sites_.size())
      << "send to unregistered site " << msg.to;
  stats_.total_messages++;
  stats_.total_bytes += msg.AccountedBytes();
  stats_.per_type[msg.type]++;
  if (msg.hops > 0) stats_.forwarded_messages++;

  // Guard against protocol bugs that would recurse unboundedly.
  ++delivery_depth_;
  ESSDDS_CHECK(delivery_depth_ < 256) << "message delivery depth exceeded";
  Site* dest = sites_[msg.to];
  dest->OnMessage(msg, *this);
  --delivery_depth_;
}

void SimNetwork::EnqueueScanTask(ScanTask task) {
  pending_scans_.push_back(std::move(task));
}

void SimNetwork::DrainDeferredScans() {
  if (pending_scans_.empty()) return;
  std::vector<ScanTask> batch = std::move(pending_scans_);
  pending_scans_.clear();
  RunScanTasks(batch, scan_threads_);
  // Replies go out in ascending bucket order: the one deterministic order
  // independent of worker scheduling (and of the serial delivery order).
  std::stable_sort(batch.begin(), batch.end(),
                   [](const ScanTask& a, const ScanTask& b) {
                     return a.bucket < b.bucket;
                   });
  for (ScanTask& task : batch) Send(std::move(task.reply));
}

}  // namespace essdds::sdds
