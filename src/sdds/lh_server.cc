#include "sdds/lh_server.h"

#include <utility>

namespace essdds::sdds {

LhBucketServer::LhBucketServer(LhRuntime* runtime, const LhOptions& options,
                               uint64_t bucket_number, uint32_t level)
    : runtime_(runtime),
      options_(options),
      bucket_number_(bucket_number),
      level_(level) {
  ESSDDS_CHECK(runtime != nullptr);
}

uint64_t LhBucketServer::RouteFor(uint64_t key) const {
  // LH* server address verification (Litwin/Neimat/Schneider 1996): compute
  // the address under this bucket's own level; if it differs, a second
  // candidate under level-1 may lie closer along the split order. This rule
  // bounds forwarding at two hops for any client image.
  const uint64_t image = LhKeyImage(key, options_);
  const uint64_t a_prime = image & ((uint64_t{1} << level_) - 1);
  if (a_prime == bucket_number_) return bucket_number_;
  if (level_ >= 1) {
    const uint64_t a_second = image & ((uint64_t{1} << (level_ - 1)) - 1);
    if (a_second > bucket_number_ && a_second < a_prime) return a_second;
  }
  return a_prime;
}

void LhBucketServer::OnMessage(const Message& msg, SimNetwork& net) {
  switch (msg.type) {
    case MsgType::kInsert:
    case MsgType::kLookup:
    case MsgType::kDelete:
      HandleKeyOp(msg, net);
      return;
    case MsgType::kScan:
      HandleScan(msg, net);
      return;
    case MsgType::kSplit:
      HandleSplit(msg, net);
      return;
    case MsgType::kMoveRecords:
      HandleMoveRecords(msg);
      return;
    case MsgType::kMerge:
      HandleMerge(msg, net);
      return;
    case MsgType::kMergeRecords:
      HandleMergeRecords(msg);
      return;
    default:
      ESSDDS_CHECK(false) << "bucket server got unexpected message "
                          << MsgTypeToString(msg.type);
  }
}

void LhBucketServer::HandleKeyOp(const Message& msg, SimNetwork& net) {
  const uint64_t route = RouteFor(msg.key);
  if (route != bucket_number_) {
    ESSDDS_CHECK(runtime_->BucketExists(route))
        << "LH* forwarding target " << route << " does not exist";
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(route);
    fwd.hops = msg.hops + 1;
    if (msg.hops == 0) {
      // Remember the first mis-addressed bucket; the serving bucket echoes
      // it in the image adjustment so the client can repair its image.
      fwd.has_iam = true;
      fwd.iam_level = level_;
      fwd.iam_address = bucket_number_;
    }
    net.Send(std::move(fwd));
    return;
  }

  Message reply;
  reply.from = site_;
  reply.to = msg.reply_to;
  reply.request_id = msg.request_id;
  reply.key = msg.key;
  if (msg.hops > 0) {
    reply.has_iam = true;
    reply.iam_level = msg.iam_level;
    reply.iam_address = msg.iam_address;
  }

  switch (msg.type) {
    case MsgType::kInsert: {
      auto [it, inserted] = records_.insert_or_assign(msg.key, msg.value);
      (void)it;
      reply.type = MsgType::kInsertAck;
      reply.found = !inserted;  // true when an existing record was replaced
      net.Send(std::move(reply));
      MaybeReportOverflow(net);
      return;
    }
    case MsgType::kLookup: {
      reply.type = MsgType::kLookupReply;
      auto it = records_.find(msg.key);
      reply.found = it != records_.end();
      if (reply.found) reply.value = it->second;
      net.Send(std::move(reply));
      return;
    }
    case MsgType::kDelete: {
      reply.type = MsgType::kDeleteAck;
      reply.found = records_.erase(msg.key) > 0;
      net.Send(std::move(reply));
      MaybeReportUnderflow(net);
      return;
    }
    default:
      ESSDDS_CHECK(false);
  }
}

void LhBucketServer::HandleScan(const Message& msg, SimNetwork& net) {
  // Propagate to every split descendant the sender's image did not cover.
  // Each existing bucket receives the scan exactly once: the client covers
  // its image, and each bucket covers the children created by its own
  // splits past the level the sender assumed.
  for (uint32_t l = msg.assumed_level; l < level_; ++l) {
    const uint64_t child = bucket_number_ + (uint64_t{1} << l);
    ESSDDS_CHECK(runtime_->BucketExists(child))
        << "scan child " << child << " missing";
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(child);
    fwd.assumed_level = l + 1;
    fwd.hops = msg.hops + 1;
    net.Send(std::move(fwd));
  }

  const ScanFilter& filter = runtime_->FilterById(msg.filter_id);
  Message reply;
  reply.type = MsgType::kScanReply;
  reply.from = site_;
  reply.to = msg.reply_to;
  reply.request_id = msg.request_id;
  reply.key = bucket_number_;  // lets the client attribute hits to buckets
  for (const auto& [key, value] : records_) {
    if (filter(key, value, msg.filter_arg)) {
      reply.records.push_back(WireRecord{key, value});
    }
  }
  net.Send(std::move(reply));
}

void LhBucketServer::HandleSplit(const Message& msg, SimNetwork& net) {
  ESSDDS_CHECK(msg.bucket_to_split == bucket_number_);
  ESSDDS_CHECK(msg.new_level == level_ + 1)
      << "split level mismatch: coordinator " << msg.new_level << " vs local "
      << level_ + 1;
  const uint64_t new_bucket = msg.key;
  level_ = msg.new_level;

  Message move;
  move.type = MsgType::kMoveRecords;
  move.from = site_;
  move.to = runtime_->SiteOfBucket(new_bucket);
  const uint64_t mask = (uint64_t{1} << level_) - 1;
  for (auto it = records_.begin(); it != records_.end();) {
    if ((LhKeyImage(it->first, options_) & mask) == new_bucket) {
      move.records.push_back(WireRecord{it->first, std::move(it->second)});
      it = records_.erase(it);
    } else {
      ++it;
    }
  }
  net.Send(std::move(move));

  Message done;
  done.type = MsgType::kSplitDone;
  done.from = site_;
  done.to = runtime_->CoordinatorSite();
  done.key = bucket_number_;
  net.Send(std::move(done));
}

void LhBucketServer::HandleMoveRecords(const Message& msg) {
  // Bulk load during a split: records arrive pre-addressed, no overflow
  // report (a subsequent regular insert re-checks capacity).
  for (const WireRecord& r : msg.records) {
    records_[r.key] = r.value;
  }
}

void LhBucketServer::HandleMerge(const Message& msg, SimNetwork& net) {
  // This bucket dissolves: every record returns to the parent it split off
  // from, and the parent's level steps back down.
  const uint64_t parent = msg.key;
  Message move;
  move.type = MsgType::kMergeRecords;
  move.from = site_;
  move.to = runtime_->SiteOfBucket(parent);
  move.new_level = msg.new_level;
  for (auto& [key, value] : records_) {
    move.records.push_back(WireRecord{key, std::move(value)});
  }
  records_.clear();
  net.Send(std::move(move));

  Message done;
  done.type = MsgType::kMergeDone;
  done.from = site_;
  done.to = runtime_->CoordinatorSite();
  done.key = bucket_number_;
  net.Send(std::move(done));
}

void LhBucketServer::HandleMergeRecords(const Message& msg) {
  ESSDDS_CHECK(msg.new_level == level_ - 1)
      << "merge level mismatch at bucket " << bucket_number_;
  level_ = msg.new_level;
  for (const WireRecord& r : msg.records) {
    records_[r.key] = r.value;
  }
}

void LhBucketServer::MaybeReportOverflow(SimNetwork& net) {
  if (records_.size() <= options_.bucket_capacity) return;
  Message overflow;
  overflow.type = MsgType::kOverflow;
  overflow.from = site_;
  overflow.to = runtime_->CoordinatorSite();
  overflow.key = bucket_number_;
  net.Send(std::move(overflow));
}

void LhBucketServer::MaybeReportUnderflow(SimNetwork& net) {
  if (options_.merge_threshold <= 0.0) return;
  const double low_water =
      options_.merge_threshold * static_cast<double>(options_.bucket_capacity);
  if (static_cast<double>(records_.size()) >= low_water) return;
  Message underflow;
  underflow.type = MsgType::kUnderflow;
  underflow.from = site_;
  underflow.to = runtime_->CoordinatorSite();
  underflow.key = bucket_number_;
  net.Send(std::move(underflow));
}

void LhCoordinator::OnMessage(const Message& msg, SimNetwork& net) {
  switch (msg.type) {
    case MsgType::kOverflow:
      // Uncontrolled splitting: every collision report triggers one split of
      // the bucket at the split pointer (which is generally NOT the
      // overflowing bucket — that is the essence of linear hashing).
      PerformSplit(net);
      return;
    case MsgType::kSplitDone:
      ESSDDS_CHECK(split_in_progress_);
      split_in_progress_ = false;
      ++split_pointer_;
      ++extent_;
      if (split_pointer_ == (uint64_t{1} << level_)) {
        split_pointer_ = 0;
        ++level_;
      }
      return;
    case MsgType::kUnderflow:
      PerformMerge(net);
      return;
    case MsgType::kMergeDone:
      ESSDDS_CHECK(merge_in_progress_);
      merge_in_progress_ = false;
      if (split_pointer_ == 0) {
        ESSDDS_CHECK(level_ > 0);
        --level_;
        split_pointer_ = (uint64_t{1} << level_) - 1;
      } else {
        --split_pointer_;
      }
      --extent_;
      runtime_->RetireLastBucket();
      return;
    default:
      ESSDDS_CHECK(false) << "coordinator got unexpected message "
                          << MsgTypeToString(msg.type);
  }
}

void LhCoordinator::PerformMerge(SimNetwork& net) {
  if (merge_in_progress_ || split_in_progress_ || extent_ <= 1) return;
  merge_in_progress_ = true;
  // Inverse of the split order: dissolve the most recently created bucket
  // back into its parent.
  uint64_t victim, parent, parent_new_level;
  if (split_pointer_ > 0) {
    parent = split_pointer_ - 1;
    victim = parent + (uint64_t{1} << level_);
    parent_new_level = level_;
  } else {
    // The file just doubled; undo the last split of the previous round.
    parent = (uint64_t{1} << (level_ - 1)) - 1;
    victim = (uint64_t{1} << level_) - 1;
    parent_new_level = level_ - 1;
  }
  Message merge;
  merge.type = MsgType::kMerge;
  merge.from = site_;
  merge.to = runtime_->SiteOfBucket(victim);
  merge.bucket_to_split = victim;
  merge.key = parent;
  merge.new_level = static_cast<uint32_t>(parent_new_level);
  net.Send(std::move(merge));
}

void LhCoordinator::PerformSplit(SimNetwork& net) {
  ESSDDS_CHECK(!split_in_progress_) << "re-entrant split";
  if (merge_in_progress_) return;
  split_in_progress_ = true;
  const uint64_t old_bucket = split_pointer_;
  const uint64_t new_bucket = split_pointer_ + (uint64_t{1} << level_);
  runtime_->CreateBucket(new_bucket, level_ + 1);

  Message split;
  split.type = MsgType::kSplit;
  split.from = site_;
  split.to = runtime_->SiteOfBucket(old_bucket);
  split.bucket_to_split = old_bucket;
  split.new_level = level_ + 1;
  split.key = new_bucket;
  net.Send(std::move(split));
}

}  // namespace essdds::sdds
