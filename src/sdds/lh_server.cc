#include "sdds/lh_server.h"

#include <string>
#include <utility>

#include "sdds/parity_server.h"
#include "sdds/scan_executor.h"

namespace essdds::sdds {

namespace {

/// The bucket a dissolved (or never-created) bucket folds onto: clearing
/// the top set bit is exactly the parent relation of linear hashing.
uint64_t ParentBucket(uint64_t bucket) {
  ESSDDS_CHECK(bucket != 0) << "bucket 0 has no parent";
  uint64_t top = uint64_t{1} << 63;
  while ((bucket & top) == 0) top >>= 1;
  return bucket & ~top;
}

/// Messages a reconstruction freeze parks: everything that would change
/// the record map (and thereby emit parity) while the gather snapshots it.
bool MutatesRecords(MsgType t) {
  switch (t) {
    case MsgType::kInsert:
    case MsgType::kDelete:
    case MsgType::kSplit:
    case MsgType::kMerge:
    case MsgType::kMoveRecords:
    case MsgType::kMergeRecords:
      return true;
    default:
      return false;
  }
}

}  // namespace

LhBucketServer::LhBucketServer(LhRuntime* runtime, const LhOptions& options,
                               uint64_t bucket_number, uint32_t level)
    : runtime_(runtime),
      options_(options),
      bucket_number_(bucket_number),
      level_(level),
      // Every bucket but the root is born of a split: it owns nothing until
      // its kMoveRecords bulk load lands, and must not serve before then.
      loading_(bucket_number != 0),
      parity_level_emitted_(level) {
  ESSDDS_CHECK(runtime != nullptr);
}

uint64_t LhBucketServer::RouteFor(uint64_t key) const {
  // LH* server address verification (Litwin/Neimat/Schneider 1996): compute
  // the address under this bucket's own level; if it differs, a second
  // candidate under level-1 may lie closer along the split order. This rule
  // bounds forwarding at two hops for any client image.
  const uint64_t image = LhKeyImage(key, options_);
  const uint64_t a_prime = image & ((uint64_t{1} << level_) - 1);
  if (a_prime == bucket_number_) return bucket_number_;
  if (level_ >= 1) {
    const uint64_t a_second = image & ((uint64_t{1} << (level_ - 1)) - 1);
    if (a_second > bucket_number_ && a_second < a_prime) return a_second;
  }
  return a_prime;
}

void LhBucketServer::RestoreRecovered(std::map<uint64_t, Bytes> records) {
  records_ = std::move(records);
  columns_.RebuildFrom(records_);
  // A recovered bucket owns its records already; nothing is in flight
  // toward it, so it serves immediately.
  loading_ = false;
  if (ParityEnabled()) {
    // Restart path: the parity rows are re-encoded in-process from this
    // state (LhSystem::SeedParityFromData), so the rank table restarts
    // fresh and sequential and the update sequence restarts with it.
    rank_of_.clear();
    free_ranks_.clear();
    next_rank_ = 0;
    for (const auto& [key, value] : records_) {
      (void)value;
      rank_of_[key] = next_rank_++;
    }
    parity_seq_ = 0;
    parity_level_emitted_ = level_;
  }
}

void LhBucketServer::OnMessage(Message& msg, Network& net) {
  if (halted_) {
    // The durable log tore mid-append: this site is crashed. A crashed
    // process neither acks nor forwards — peers see silence until a restart
    // replays the log.
    return;
  }
  // Liveness probes and reconstruction control bypass every parking state:
  // a frozen or still-loading bucket is alive and must say so, and the
  // recovery proxy's freeze/release must always get through.
  if (msg.type == MsgType::kPing) {
    HandlePing(msg, net);
    return;
  }
  if (msg.type == MsgType::kReconstructRequest) {
    HandleReconstructRequest(msg, net);
    return;
  }
  if (frozen_ && MutatesRecords(msg.type)) {
    // A reconstruction gather snapshotted this bucket's rank buffers;
    // mutating now would move the group's parity out from under the
    // decode. Reads still serve. Replayed at the release.
    frozen_parked_.push_back(std::move(msg));
    return;
  }
  if (loading_ && msg.type != MsgType::kMoveRecords) {
    // The split that created this bucket hasn't delivered its records yet:
    // serving now would answer from an empty map, and a racing merge would
    // dissolve the bucket around the in-flight transfer. Park everything
    // until the load lands, then replay in arrival order.
    parked_.push_back(std::move(msg));
    return;
  }
  switch (msg.type) {
    case MsgType::kInsert:
    case MsgType::kLookup:
    case MsgType::kDelete:
      HandleKeyOp(msg, net);
      return;
    case MsgType::kScan:
      HandleScan(msg, net);
      return;
    case MsgType::kSplit:
      HandleSplit(msg, net);
      return;
    case MsgType::kMoveRecords:
      HandleMoveRecords(msg, net);
      return;
    case MsgType::kMerge:
      HandleMerge(msg, net);
      return;
    case MsgType::kMergeRecords:
      HandleMergeRecords(msg, net);
      return;
    default:
      ESSDDS_CHECK(false) << "bucket server got unexpected message "
                          << MsgTypeToString(msg.type);
  }
}

void LhBucketServer::HandleKeyOp(Message& msg, Network& net) {
  // A retired bucket was dissolved into its parent by a merge; a stale
  // client whose image is ahead of the file can still address it. Its
  // records live at the parent now — forward there instead of serving a
  // wrong answer from the empty local map.
  uint64_t route = retired_ ? ParentBucket(bucket_number_) : RouteFor(msg.key);
  if (route != bucket_number_) {
    // Address verification ran under this bucket's level; after a merge the
    // computed bucket may no longer exist. Fold onto the parent chain (the
    // bucket that absorbed its records) rather than aborting.
    while (!runtime_->BucketExists(route)) route = ParentBucket(route);
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(route);
    fwd.bucket_to_split = route;  // addressed bucket, for degraded routing
    fwd.hops = msg.hops + 1;
    if (msg.hops == 0) {
      // Remember the first mis-addressed bucket; the serving bucket echoes
      // it in the image adjustment so the client can repair its image.
      fwd.has_iam = true;
      fwd.iam_level = level_;
      fwd.iam_address = bucket_number_;
    }
    net.Send(std::move(fwd));
    return;
  }

  Message reply;
  reply.from = site_;
  reply.to = msg.reply_to;
  reply.request_id = msg.request_id;
  reply.trace_id = msg.trace_id;
  reply.key = msg.key;
  if (msg.hops > 0) {
    reply.has_iam = true;
    reply.iam_level = msg.iam_level;
    reply.iam_address = msg.iam_address;
  }

  switch (msg.type) {
    case MsgType::kInsert: {
      // Durability before acknowledgement: the record reaches the log
      // before the map, the ack, or the overflow report. A torn append
      // halts the site with the insert unacknowledged — the client retries
      // against the restarted site.
      if (log_ != nullptr && !log_->AppendPut(msg.key, msg.value)) {
        Halt();
        return;
      }
      std::vector<ParityOp> parity_ops;
      if (ParityEnabled()) parity_ops.push_back(MakeUpsertOp(msg.key, msg.value));
      AboutToMutateRecords(net);
      auto [it, inserted] =
          records_.insert_or_assign(msg.key, std::move(msg.value));
      columns_.Upsert(msg.key, it->second);
      UpdateRecordGauge(net);
      EmitParity(net, std::move(parity_ops), false, msg.trace_id);
      reply.type = MsgType::kInsertAck;
      reply.found = !inserted;  // true when an existing record was replaced
      net.Send(std::move(reply));
      MaybeReportOverflow(net, msg.trace_id);
      if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
      return;
    }
    case MsgType::kLookup: {
      reply.type = MsgType::kLookupReply;
      auto it = records_.find(msg.key);
      reply.found = it != records_.end();
      if (reply.found) reply.value = it->second;
      net.Send(std::move(reply));
      return;
    }
    case MsgType::kDelete: {
      if (log_ != nullptr && !log_->AppendErase(msg.key)) {
        Halt();
        return;
      }
      std::vector<ParityOp> parity_ops;
      if (ParityEnabled() && records_.count(msg.key)) {
        parity_ops.push_back(MakeEraseOp(msg.key));
      }
      AboutToMutateRecords(net);
      reply.type = MsgType::kDeleteAck;
      reply.found = records_.erase(msg.key) > 0;
      columns_.Erase(msg.key);
      UpdateRecordGauge(net);
      EmitParity(net, std::move(parity_ops), false, msg.trace_id);
      net.Send(std::move(reply));
      MaybeReportUnderflow(net, msg.trace_id);
      if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
      return;
    }
    default:
      ESSDDS_CHECK(false);
  }
}

void LhBucketServer::HandleScan(Message& msg, Network& net) {
  if (retired_) {
    // Dissolved by a merge: the parent owns the records now (and answers
    // under its own bucket number, so the client's per-bucket dedup still
    // sees one live reply per bucket).
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(ParentBucket(bucket_number_));
    fwd.key = ParentBucket(bucket_number_);
    fwd.hops = msg.hops + 1;
    net.Send(std::move(fwd));
    return;
  }

  // Propagate to every split descendant the sender's image did not cover.
  // Each existing bucket receives the scan exactly once: the client covers
  // its image, and each bucket covers the children created by its own
  // splits past the level the sender assumed. A child dissolved by a
  // concurrent merge no longer holds records — skip it.
  for (uint32_t l = msg.assumed_level; l < level_; ++l) {
    const uint64_t child = bucket_number_ + (uint64_t{1} << l);
    if (!runtime_->BucketExists(child)) continue;
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(child);
    fwd.key = child;  // intended bucket, for degraded-mode routing
    fwd.assumed_level = l + 1;
    fwd.hops = msg.hops + 1;
    net.Send(std::move(fwd));
  }

  ScanTask task;
  task.bucket = bucket_number_;
  task.records = &records_;
  task.columns = columns_.slice();
  task.has_columns = true;
  task.filter = &runtime_->FilterById(msg.filter_id);
  task.arg = Bytes(msg.filter_arg.begin(), msg.filter_arg.end());
  task.live_generation = &mutation_generation_;
  task.enqueue_generation = mutation_generation_;
  task.reply.type = MsgType::kScanReply;
  task.reply.from = site_;
  task.reply.to = msg.reply_to;
  task.reply.request_id = msg.request_id;
  task.reply.trace_id = msg.trace_id;
  task.reply.key = bucket_number_;  // lets the client attribute hits to buckets
  // Piggyback this bucket's level, snapshotted at forward time: a client
  // without a quiescence barrier (sockets) derives from it exactly which
  // children the scan was propagated to and awaits those replies too.
  task.reply.new_level = level_;
  if (net.deferred_scan_mode()) {
    // Parallel scan mode: evaluation runs off the messaging path once the
    // initiator drains the batch; the reply is sent then.
    net.EnqueueScanTask(std::move(task));
  } else {
    ExecuteScanTask(task);
    net.Send(std::move(task.reply));
  }
}

void LhBucketServer::HandleSplit(const Message& msg, Network& net) {
  ESSDDS_CHECK(msg.bucket_to_split == bucket_number_);
  if (msg.new_level != level_ + 1) {
    // The coordinator computed this split against a level this bucket has
    // not reached yet: the merge record transfer that steps the level down
    // (sent by the dissolving child, on a different link than the
    // coordinator's order) is still in flight. Hold the split until it
    // lands — splitting now would move the wrong key range.
    ESSDDS_CHECK(msg.new_level <= level_)
        << "split level mismatch: coordinator " << msg.new_level
        << " vs local " << level_ + 1;
    stashed_control_.push_back(msg);
    return;
  }
  const uint64_t new_bucket = msg.key;
  // Compute the carve-out first so the log records (explicit key list + the
  // stepped-up level) land before the record map shrinks: replay never needs
  // to re-run the hash. A tear in either log write halts the site with the
  // pre-split state still the durable truth.
  const uint64_t mask = (uint64_t{1} << msg.new_level) - 1;
  std::vector<uint64_t> moved_keys;
  for (const auto& [key, value] : records_) {
    if ((LhKeyImage(key, options_) & mask) == new_bucket) {
      moved_keys.push_back(key);
    }
  }
  // Deferred scans must resolve against the pre-split content before any
  // value is moved out of the record map below.
  AboutToMutateRecords(net);

  Message move;
  move.type = MsgType::kMoveRecords;
  move.from = site_;
  move.to = runtime_->SiteOfBucket(new_bucket);
  move.key = new_bucket;  // lets a recovery proxy identify the target
  move.trace_id = msg.trace_id;
  move.records.reserve(moved_keys.size());
  for (uint64_t key : moved_keys) {
    move.records.push_back(WireRecord{key, std::move(records_[key])});
  }
  // Two-phase durable transfer: the receiving bucket's log gets the
  // bulk-put BEFORE this bucket logs the erase. A crash between the two
  // leaves the moved records in BOTH logs — the new bucket's copy is
  // dropped by the recovery repair rule (its parent's level still predates
  // the split) — never in neither, which would be silent loss of acked
  // records.
  if (log_ != nullptr) {
    persist::BucketLog* peer = runtime_->LogOfBucket(new_bucket);
    if (peer != nullptr) {
      if (!peer->AppendBulkPut(msg.new_level, move.records)) {
        Halt();
        return;
      }
      move.records_durable = true;
    }
    if (!log_->AppendEraseBulk(msg.new_level, moved_keys)) {
      Halt();
      return;
    }
  }
  level_ = msg.new_level;
  for (uint64_t key : moved_keys) records_.erase(key);
  // Split carve-out removes a whole key range; per-record column erases
  // would memmove the flat arrays once per moved record, so repack instead.
  columns_.RebuildFrom(records_);
  UpdateRecordGauge(net);
  if (ParityEnabled()) {
    // One parity update for the whole carve-out, stamped with the stepped-up
    // level (the values now live in the transfer message).
    std::vector<ParityOp> parity_ops;
    parity_ops.reserve(move.records.size());
    for (const WireRecord& r : move.records) {
      ParityOp op = MakeEraseOp(r.key);
      op.delta = RankBuffer(r.key, r.value);
      parity_ops.push_back(std::move(op));
    }
    EmitParity(net, std::move(parity_ops), false, msg.trace_id);
  }
  if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
  net.Send(std::move(move));

  Message done;
  done.type = MsgType::kSplitDone;
  done.from = site_;
  done.to = runtime_->CoordinatorSite();
  done.key = bucket_number_;
  done.trace_id = msg.trace_id;
  net.Send(std::move(done));
}

void LhBucketServer::HandleMoveRecords(Message& msg, Network& net) {
  // Bulk load during a split: records arrive pre-addressed, no overflow
  // report (a subsequent regular insert re-checks capacity). The message is
  // ours to cannibalize — adopt the values instead of deep-copying them
  // (the log append below only reads them). When the sender already wrote
  // the bulk-put into this bucket's log (two-phase transfer), appending it
  // again would only store a redundant duplicate frame.
  if (!msg.records_durable && log_ != nullptr &&
      !log_->AppendBulkPut(level_, msg.records)) {
    Halt();
    return;
  }
  std::vector<ParityOp> parity_ops;
  if (ParityEnabled()) {
    parity_ops.reserve(msg.records.size());
    for (const WireRecord& r : msg.records) {
      parity_ops.push_back(MakeUpsertOp(r.key, r.value));
    }
  }
  const bool was_loading = loading_;
  AboutToMutateRecords(net);
  for (WireRecord& r : msg.records) {
    records_[r.key] = std::move(r.value);
  }
  columns_.RebuildFrom(records_);
  UpdateRecordGauge(net);
  // The loading transition must reach the parity sites even when the
  // transfer is empty — their member state mirrors it for reconstruction.
  EmitParity(net, std::move(parity_ops), was_loading, msg.trace_id);
  if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
  if (loading_) {
    loading_ = false;
    // Replay whatever raced the bulk load, in arrival order. Replays may
    // send (replies, forwards, even a parked kMerge's transfer), which the
    // network schedules as usual.
    std::vector<Message> replay = std::move(parked_);
    parked_.clear();
    for (Message& m : replay) OnMessage(m, net);
  }
}

void LhBucketServer::HandleMerge(const Message& msg, Network& net) {
  if (msg.new_level + 1 != level_) {
    // The coordinator dissolves this bucket assuming level new_level + 1,
    // but a merge record transfer INTO this bucket (it was the parent of an
    // earlier merge) is still in flight. Dissolving now would strand that
    // transfer at a retired bucket; wait for the level to step down first.
    ESSDDS_CHECK(msg.new_level + 1 < level_)
        << "merge level mismatch: coordinator " << msg.new_level + 1
        << " vs local " << level_;
    stashed_control_.push_back(msg);
    return;
  }
  // This bucket dissolves: every record returns to the parent it split off
  // from, and the parent's level steps back down. Deferred scans resolve
  // first (the move below empties the values), then the transfer goes to
  // the logs two-phase: the parent's bulk-put lands BEFORE this bucket's
  // kClear. A crash between the two leaves the records in both logs — the
  // still-live victim is dropped by the recovery repair rule (the parent's
  // stepped-down level gives the interruption away) — never in neither. A
  // replayed kClear marks the bucket retired, so recovery never resurrects
  // records the parent now owns.
  AboutToMutateRecords(net);
  const uint64_t parent = msg.key;
  Message move;
  move.type = MsgType::kMergeRecords;
  move.from = site_;
  move.to = runtime_->SiteOfBucket(parent);
  move.key = parent;  // lets a recovery proxy identify the target
  move.new_level = msg.new_level;
  move.trace_id = msg.trace_id;
  for (auto& [key, value] : records_) {
    move.records.push_back(WireRecord{key, std::move(value)});
  }
  if (log_ != nullptr) {
    persist::BucketLog* peer = runtime_->LogOfBucket(parent);
    if (peer != nullptr) {
      if (!peer->AppendBulkPut(msg.new_level, move.records)) {
        Halt();
        return;
      }
      move.records_durable = true;
    }
    if (!log_->AppendClear()) {
      Halt();
      return;
    }
  }
  records_.clear();
  columns_.Clear();
  UpdateRecordGauge(net);
  if (ParityEnabled()) {
    // The dissolving bucket's whole rank range empties in one update.
    std::vector<ParityOp> parity_ops;
    parity_ops.reserve(move.records.size());
    for (const WireRecord& r : move.records) {
      ParityOp op = MakeEraseOp(r.key);
      op.delta = RankBuffer(r.key, r.value);
      parity_ops.push_back(std::move(op));
    }
    EmitParity(net, std::move(parity_ops), false, msg.trace_id);
  }
  // Dissolved from this moment: an op that reaches this bucket before the
  // coordinator retires it from the directory must chase the records to
  // the parent, not read the empty map.
  retired_ = true;
  net.Send(std::move(move));

  Message done;
  done.type = MsgType::kMergeDone;
  done.from = site_;
  done.to = runtime_->CoordinatorSite();
  done.key = bucket_number_;
  done.trace_id = msg.trace_id;
  net.Send(std::move(done));
}

void LhBucketServer::HandleMergeRecords(Message& msg, Network& net) {
  // Merges are serialized at the coordinator, but their record transfers
  // travel on different links: a later merge's transfer (lower new_level)
  // can overtake an earlier one's. Apply transfers strictly in level
  // order — each step takes the level down by exactly one — and stash any
  // that arrive early.
  ESSDDS_CHECK(msg.new_level < level_)
      << "merge level mismatch at bucket " << bucket_number_;
  if (msg.new_level != level_ - 1) {
    stashed_merge_records_.push_back(std::move(msg));
    return;
  }
  // One resolution covers the whole handler, including stashed transfers
  // applied below: no message delivery happens in between, so no new scan
  // task can be enqueued mid-application. A transfer the dissolving bucket
  // already wrote into this log (two-phase) is not appended again.
  if (!msg.records_durable && log_ != nullptr &&
      !log_->AppendBulkPut(msg.new_level, msg.records)) {
    Halt();
    return;
  }
  AboutToMutateRecords(net);
  std::vector<ParityOp> parity_ops;
  if (ParityEnabled()) {
    parity_ops.reserve(msg.records.size());
    for (const WireRecord& r : msg.records) {
      parity_ops.push_back(MakeUpsertOp(r.key, r.value));
    }
  }
  level_ = msg.new_level;
  for (WireRecord& r : msg.records) {
    records_[r.key] = std::move(r.value);
  }
  // One parity update per applied transfer: each carries its own stepped
  // level, so the parity member mirror tracks the level sequence exactly.
  EmitParity(net, std::move(parity_ops), false, msg.trace_id);
  // The step down may unblock a stashed transfer (and that one the next).
  for (bool applied = true; applied;) {
    applied = false;
    for (auto it = stashed_merge_records_.begin();
         it != stashed_merge_records_.end(); ++it) {
      if (it->new_level + 1 != level_) continue;
      Message next = std::move(*it);
      stashed_merge_records_.erase(it);
      if (!next.records_durable && log_ != nullptr &&
          !log_->AppendBulkPut(next.new_level, next.records)) {
        Halt();
        return;
      }
      std::vector<ParityOp> stashed_ops;
      if (ParityEnabled()) {
        stashed_ops.reserve(next.records.size());
        for (const WireRecord& r : next.records) {
          stashed_ops.push_back(MakeUpsertOp(r.key, r.value));
        }
      }
      level_ = next.new_level;
      for (WireRecord& r : next.records) {
        records_[r.key] = std::move(r.value);
      }
      EmitParity(net, std::move(stashed_ops), false, msg.trace_id);
      applied = true;
      break;
    }
  }
  // One repack after the whole transfer chain (main + unblocked stashed
  // transfers) rather than per-record upserts.
  columns_.RebuildFrom(records_);
  UpdateRecordGauge(net);
  if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
  // The level came down: a split or merge order stashed while this transfer
  // was in flight may be runnable now (it re-stashes if still early).
  if (!stashed_control_.empty()) {
    std::vector<Message> replay = std::move(stashed_control_);
    stashed_control_.clear();
    for (Message& m : replay) OnMessage(m, net);
  }
}

LhBucketServer::ParityOp LhBucketServer::MakeUpsertOp(uint64_t key,
                                                      ByteSpan value) {
  ParityOp op;
  op.op = 0;
  op.record_key = key;
  Bytes old_buf;
  auto rank = rank_of_.find(key);
  if (rank != rank_of_.end()) {
    op.rank = rank->second;
    auto rec = records_.find(key);
    ESSDDS_CHECK(rec != records_.end());
    old_buf = RankBuffer(key, rec->second);
  } else if (!free_ranks_.empty()) {
    op.rank = *free_ranks_.begin();
    free_ranks_.erase(free_ranks_.begin());
    rank_of_.emplace(key, op.rank);
  } else {
    op.rank = next_rank_++;
    rank_of_.emplace(key, op.rank);
  }
  op.delta = XorBytes(old_buf, RankBuffer(key, value));
  return op;
}

LhBucketServer::ParityOp LhBucketServer::MakeEraseOp(uint64_t key) {
  ParityOp op;
  op.op = 1;
  op.record_key = key;
  auto rank = rank_of_.find(key);
  ESSDDS_CHECK(rank != rank_of_.end()) << "erase of unranked key " << key;
  op.rank = rank->second;
  // Bulk paths (split carve-out, merge clear) have already moved the value
  // out of the map and override the delta themselves.
  auto rec = records_.find(key);
  if (rec != records_.end()) op.delta = RankBuffer(key, rec->second);
  free_ranks_.insert(op.rank);
  rank_of_.erase(rank);
  return op;
}

void LhBucketServer::EmitParity(Network& net, std::vector<ParityOp> ops,
                                bool clears_loading, uint64_t trace_id) {
  if (!ParityEnabled()) return;
  // A level step must reach the parity sites even without record deltas —
  // their member mirror drives degraded-mode address verification.
  if (ops.empty() && !clears_loading && level_ == parity_level_emitted_) {
    return;
  }
  ++parity_seq_;
  parity_level_emitted_ = level_;
  std::vector<WireRecord> entries;
  entries.reserve(ops.size());
  for (ParityOp& op : ops) {
    entries.push_back(WireRecord{
        op.rank,
        EncodeParityEntry(ParityEntry{op.op, op.record_key,
                                      std::move(op.delta)})});
  }
  for (SiteId parity_site : runtime_->ParitySitesOfBucket(bucket_number_)) {
    Message update;
    update.type = MsgType::kParityUpdate;
    update.from = site_;
    update.to = parity_site;
    update.key = bucket_number_;
    update.bucket_to_split =
        bucket_number_ / runtime_->options().parity_group_size;
    update.request_id = parity_seq_;
    update.new_level = level_;
    update.filter_id = clears_loading ? 1 : 0;
    update.records = entries;  // same unscaled deltas to every parity row
    update.trace_id = trace_id;
    net.Send(std::move(update));
  }
}

void LhBucketServer::HandlePing(const Message& msg, Network& net) {
  Message pong;
  pong.type = MsgType::kPong;
  pong.from = site_;
  pong.to = msg.from;
  pong.key = msg.key;
  pong.request_id = msg.request_id;
  pong.trace_id = msg.trace_id;
  net.Send(std::move(pong));
}

void LhBucketServer::HandleReconstructRequest(const Message& msg,
                                              Network& net) {
  if (msg.filter_id == 0) {
    auto floor = reconstruct_release_floor_.find(msg.from);
    if (floor != reconstruct_release_floor_.end() &&
        msg.request_id <= floor->second) {
      // Stale replay of a freeze whose gather already released (it sat in
      // a dead predecessor's letter queue until the rebuild redirect).
      return;
    }
    // Freeze + slice: park mutations and hand the proxy this bucket's rank
    // buffers plus the facts the decode needs (sequence cut, level,
    // loading). Re-freezing on a restarted gather just answers again.
    frozen_ = true;
    Message slice;
    slice.type = MsgType::kReconstructSlice;
    slice.from = site_;
    slice.to = msg.from;
    slice.key = bucket_number_;
    slice.request_id = msg.request_id;  // epoch echo
    slice.filter_id = parity_seq_;
    slice.new_level = level_;
    slice.found = loading_;
    slice.records.reserve(rank_of_.size());
    for (const auto& [key, rank] : rank_of_) {
      slice.records.push_back(WireRecord{rank, RankBuffer(key, records_.at(key))});
    }
    net.Send(std::move(slice));
    return;
  }
  ESSDDS_CHECK(msg.filter_id == 2)
      << "bucket server got reconstruct mode " << msg.filter_id;
  // Record the floor even when not frozen: a rebuilt bucket may see the
  // release before (or instead of) the freeze it answers for.
  uint64_t& floor = reconstruct_release_floor_[msg.from];
  floor = std::max(floor, msg.request_id);
  if (!frozen_) return;
  frozen_ = false;
  // Replay whatever the freeze parked, in arrival order (replays may send
  // and may re-park if the bucket is still loading).
  std::vector<Message> replay = std::move(frozen_parked_);
  frozen_parked_.clear();
  for (Message& m : replay) OnMessage(m, net);
}

void LhBucketServer::RestoreRebuilt(RebuiltBucket state) {
  records_.clear();
  rank_of_.clear();
  free_ranks_.clear();
  next_rank_ = 0;
  for (auto& [rank, record] : state.rank_records) {
    records_[record.key] = std::move(record.value);
    rank_of_[record.key] = rank;
    next_rank_ = std::max(next_rank_, rank + 1);
  }
  // Re-derive the free list: every rank below the high-water mark that no
  // record occupies is reusable, exactly as on the dead server.
  std::set<uint64_t> used;
  for (const auto& [key, rank] : rank_of_) {
    (void)key;
    used.insert(rank);
  }
  for (uint64_t r = 0; r < next_rank_; ++r) {
    if (!used.count(r)) free_ranks_.insert(r);
  }
  columns_.RebuildFrom(records_);
  level_ = state.level;
  parity_level_emitted_ = state.level;
  parity_seq_ = state.parity_seq;
  loading_ = state.loading;
}

void LhBucketServer::AboutToMutateRecords(Network& net) {
  // A deferred scan task holds a pointer into records_ until the batch
  // drains; evaluate any queued for this bucket now, against the
  // pre-mutation content — exactly what the serial inline mode returned at
  // kScan delivery, so deferred results stay byte-identical. The generation
  // step arms the snapshot assert for any mutation path that skips this
  // call.
  if (net.deferred_scan_mode()) net.ResolveDeferredScans(bucket_number_);
  ++mutation_generation_;
}

void LhBucketServer::UpdateRecordGauge(Network& net) {
  if (!obs::kMetricsEnabled) return;
  if (record_gauge_ == nullptr) {
    record_gauge_ = &net.metrics().gauge(
        "bucket." + std::to_string(bucket_number_) + ".records");
  }
  record_gauge_->Set(static_cast<int64_t>(records_.size()));
}

void LhBucketServer::MaybeReportOverflow(Network& net, uint64_t trace_id) {
  if (records_.size() <= options_.bucket_capacity) return;
  Message overflow;
  overflow.type = MsgType::kOverflow;
  overflow.from = site_;
  overflow.to = runtime_->CoordinatorSite();
  overflow.key = bucket_number_;
  overflow.trace_id = trace_id;
  net.Send(std::move(overflow));
}

void LhBucketServer::MaybeReportUnderflow(Network& net, uint64_t trace_id) {
  if (options_.merge_threshold <= 0.0) return;
  const double low_water =
      options_.merge_threshold * static_cast<double>(options_.bucket_capacity);
  if (static_cast<double>(records_.size()) >= low_water) return;
  Message underflow;
  underflow.type = MsgType::kUnderflow;
  underflow.from = site_;
  underflow.to = runtime_->CoordinatorSite();
  underflow.key = bucket_number_;
  underflow.trace_id = trace_id;
  net.Send(std::move(underflow));
}

void LhCoordinator::OnMessage(Message& msg, Network& net) {
  switch (msg.type) {
    case MsgType::kOverflow:
      // Uncontrolled splitting: every collision report triggers one split of
      // the bucket at the split pointer (which is generally NOT the
      // overflowing bucket — that is the essence of linear hashing).
      // Restructuring defers while a reconstruction runs — a split would
      // move records between buckets mid-gather. The bucket reports again
      // on its next insert.
      if (recovering_ == 0) PerformSplit(net, msg.trace_id);
      return;
    case MsgType::kSplitDone:
      ESSDDS_CHECK(split_in_progress_);
      split_in_progress_ = false;
      ++split_pointer_;
      ++extent_;
      if (split_pointer_ == (uint64_t{1} << level_)) {
        split_pointer_ = 0;
        ++level_;
      }
      return;
    case MsgType::kUnderflow:
      if (recovering_ == 0) PerformMerge(net, msg.trace_id);
      return;
    case MsgType::kMergeDone:
      ESSDDS_CHECK(merge_in_progress_);
      merge_in_progress_ = false;
      if (split_pointer_ == 0) {
        ESSDDS_CHECK(level_ > 0);
        --level_;
        split_pointer_ = (uint64_t{1} << level_) - 1;
      } else {
        --split_pointer_;
      }
      --extent_;
      runtime_->RetireLastBucket();
      return;
    case MsgType::kDeadSite:
      HandleDeadSite(msg, net);
      return;
    case MsgType::kPong: {
      // The probed site answered: alive, just slow. Forget the report.
      auto it = dead_probes_.find(msg.key);
      if (it != dead_probes_.end() && !it->second.declared) {
        dead_probes_.erase(it);
      }
      return;
    }
    case MsgType::kRecoveryTick:
      HandleRecoveryTick(msg, net);
      return;
    case MsgType::kRebuildDone: {
      auto it = dead_probes_.find(msg.key);
      ESSDDS_CHECK(it != dead_probes_.end() && it->second.declared);
      if (obs::kMetricsEnabled) {
        net.metrics()
            .histogram("recovery.reconstruction_us")
            .Record(net.now_us() - it->second.declared_at_us);
      }
      dead_probes_.erase(it);
      ESSDDS_CHECK(recovering_ > 0);
      --recovering_;
      return;
    }
    default:
      ESSDDS_CHECK(false) << "coordinator got unexpected message "
                          << MsgTypeToString(msg.type);
  }
}

void LhCoordinator::HandleDeadSite(const Message& msg, Network& net) {
  if (obs::kMetricsEnabled) {
    net.metrics().counter("coord.dead_site_reports").Increment();
  }
  if (runtime_->options().parity_group_size == 0) {
    // No parity groups -> no headroom to reconstruct from; the report is
    // telemetry only (the socket transport's clients send one per
    // retry-exhausted op, making a SIGKILLed host visible in the
    // coordinator's metrics even though v1 cannot recover it).
    return;
  }
  // The client reports the RECORD KEY it cannot get served (its own
  // computed address may be stale, and the hop that is actually dead can
  // sit anywhere on the forwarding chain). Every hop a key-op can take —
  // client address, intermediate forwards, authoritative bucket — is a
  // prefix of the key's hash image, so probing the existing prefixes
  // covers the whole chain.
  const uint64_t image = LhKeyImage(msg.key, runtime_->options());
  const uint64_t probed_mask_bits = level_ + 2;  // h_0 .. h_{i+1}
  std::set<uint64_t> candidates;
  for (uint64_t len = 0; len < probed_mask_bits; ++len) {
    const uint64_t c = image & ((uint64_t{1} << len) - 1);
    // BucketExists rather than the coordinator's extent: an in-flight
    // split's target bucket serves (well, parks) traffic before the
    // kSplitDone that steps the extent — and it can die like any other.
    if (runtime_->BucketExists(c)) candidates.insert(c);
  }
  for (uint64_t bucket : candidates) {
    if (dead_probes_.count(bucket)) continue;  // probe/recovery in flight
    DeadProbe probe;
    probe.generation = next_probe_generation_++;
    probe.reported_at_us = net.now_us();
    Message ping;
    ping.type = MsgType::kPing;
    ping.from = site_;
    ping.to = runtime_->SiteOfBucket(bucket);
    ping.key = bucket;
    ping.trace_id = msg.trace_id;
    net.Send(std::move(ping));
    Message tick;
    tick.type = MsgType::kRecoveryTick;
    tick.from = site_;
    tick.to = site_;
    tick.key = bucket;
    tick.filter_id = 0;  // ping-timeout probe
    tick.request_id = probe.generation;
    net.ScheduleTimer(std::move(tick), runtime_->options().ping_timeout_us);
    dead_probes_.emplace(bucket, probe);
  }
}

void LhCoordinator::HandleRecoveryTick(const Message& msg, Network& net) {
  const uint64_t bucket = msg.key;
  if (msg.filter_id == 1) {
    // Degraded-mode hold elapsed: order the rebuild.
    SendRebuild(bucket, net);
    return;
  }
  auto it = dead_probes_.find(bucket);
  if (it == dead_probes_.end() || it->second.declared) return;
  // A pong may have erased the probe this tick was armed for and a later
  // report re-created one; declaring THAT probe here would cut its
  // patience window short (and falsely kill a live site).
  if (it->second.generation != msg.request_id) return;
  ++it->second.attempts;
  if (it->second.attempts < runtime_->options().ping_attempts) {
    // Unanswered, but a slow or fault-delayed pong is still cheaper than a
    // false declaration (that would burn parity headroom on a live site):
    // ping again and keep waiting.
    Message ping;
    ping.type = MsgType::kPing;
    ping.from = site_;
    ping.to = runtime_->SiteOfBucket(bucket);
    ping.key = bucket;
    ping.trace_id = msg.trace_id;
    net.Send(std::move(ping));
    Message tick = msg;
    net.ScheduleTimer(std::move(tick), runtime_->options().ping_timeout_us);
    return;
  }
  // Every ping went unanswered for the whole patience window: declare the
  // site dead and hand reconstruction to the group's parity proxy.
  it->second.declared = true;
  it->second.declared_at_us = net.now_us();
  if (obs::kMetricsEnabled) {
    net.metrics().counter("coord.dead_sites").Increment();
    // Phase timer (declare): first client report -> dead declaration. The
    // freeze/decode/install phases are timed by the parity proxy.
    net.metrics()
        .histogram("recovery.declare_us")
        .Record(it->second.declared_at_us - it->second.reported_at_us);
  }
  it->second.proxy = runtime_->MarkBucketDead(bucket);
  ++recovering_;
  const uint64_t hold = runtime_->options().recovery_hold_us;
  if (hold == 0) {
    SendRebuild(bucket, net);
    return;
  }
  Message tick;
  tick.type = MsgType::kRecoveryTick;
  tick.from = site_;
  tick.to = site_;
  tick.key = bucket;
  tick.filter_id = 1;
  net.ScheduleTimer(std::move(tick), hold);
}

void LhCoordinator::SendRebuild(uint64_t bucket, Network& net) {
  auto it = dead_probes_.find(bucket);
  ESSDDS_CHECK(it != dead_probes_.end() && it->second.declared);
  Message rebuild;
  rebuild.type = MsgType::kRebuild;
  rebuild.from = site_;
  rebuild.to = it->second.proxy;
  rebuild.key = bucket;
  rebuild.bucket_to_split = bucket / runtime_->options().parity_group_size;
  net.Send(std::move(rebuild));
}

void LhCoordinator::PerformMerge(Network& net, uint64_t trace_id) {
  if (merge_in_progress_ || split_in_progress_ || extent_ <= 1) return;
  merge_in_progress_ = true;
  net.metrics().counter("coord.merges").Increment();
  // Inverse of the split order: dissolve the most recently created bucket
  // back into its parent.
  uint64_t victim, parent, parent_new_level;
  if (split_pointer_ > 0) {
    parent = split_pointer_ - 1;
    victim = parent + (uint64_t{1} << level_);
    parent_new_level = level_;
  } else {
    // The file just doubled; undo the last split of the previous round.
    parent = (uint64_t{1} << (level_ - 1)) - 1;
    victim = (uint64_t{1} << level_) - 1;
    parent_new_level = level_ - 1;
  }
  Message merge;
  merge.type = MsgType::kMerge;
  merge.from = site_;
  merge.to = runtime_->SiteOfBucket(victim);
  merge.bucket_to_split = victim;
  merge.key = parent;
  merge.new_level = static_cast<uint32_t>(parent_new_level);
  merge.trace_id = trace_id;
  net.Send(std::move(merge));
}

void LhCoordinator::PerformSplit(Network& net, uint64_t trace_id) {
  // An overflow report can arrive while a split (or merge) is already in
  // flight — on a real network the reports race the kSplitDone ack. The
  // report is then already served by the in-flight restructuring: drop it,
  // exactly as PerformMerge drops concurrent underflow reports. (A bucket
  // still overflowing afterwards reports again on its next insert.)
  if (split_in_progress_ || merge_in_progress_) return;
  split_in_progress_ = true;
  net.metrics().counter("coord.splits").Increment();
  const uint64_t old_bucket = split_pointer_;
  const uint64_t new_bucket = split_pointer_ + (uint64_t{1} << level_);
  runtime_->CreateBucket(new_bucket, level_ + 1);

  Message split;
  split.type = MsgType::kSplit;
  split.from = site_;
  split.to = runtime_->SiteOfBucket(old_bucket);
  split.bucket_to_split = old_bucket;
  split.new_level = level_ + 1;
  split.key = new_bucket;
  split.trace_id = trace_id;
  net.Send(std::move(split));
}

}  // namespace essdds::sdds
