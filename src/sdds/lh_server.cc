#include "sdds/lh_server.h"

#include <string>
#include <utility>

#include "sdds/scan_executor.h"

namespace essdds::sdds {

namespace {

/// The bucket a dissolved (or never-created) bucket folds onto: clearing
/// the top set bit is exactly the parent relation of linear hashing.
uint64_t ParentBucket(uint64_t bucket) {
  ESSDDS_CHECK(bucket != 0) << "bucket 0 has no parent";
  uint64_t top = uint64_t{1} << 63;
  while ((bucket & top) == 0) top >>= 1;
  return bucket & ~top;
}

}  // namespace

LhBucketServer::LhBucketServer(LhRuntime* runtime, const LhOptions& options,
                               uint64_t bucket_number, uint32_t level)
    : runtime_(runtime),
      options_(options),
      bucket_number_(bucket_number),
      level_(level),
      // Every bucket but the root is born of a split: it owns nothing until
      // its kMoveRecords bulk load lands, and must not serve before then.
      loading_(bucket_number != 0) {
  ESSDDS_CHECK(runtime != nullptr);
}

uint64_t LhBucketServer::RouteFor(uint64_t key) const {
  // LH* server address verification (Litwin/Neimat/Schneider 1996): compute
  // the address under this bucket's own level; if it differs, a second
  // candidate under level-1 may lie closer along the split order. This rule
  // bounds forwarding at two hops for any client image.
  const uint64_t image = LhKeyImage(key, options_);
  const uint64_t a_prime = image & ((uint64_t{1} << level_) - 1);
  if (a_prime == bucket_number_) return bucket_number_;
  if (level_ >= 1) {
    const uint64_t a_second = image & ((uint64_t{1} << (level_ - 1)) - 1);
    if (a_second > bucket_number_ && a_second < a_prime) return a_second;
  }
  return a_prime;
}

void LhBucketServer::RestoreRecovered(std::map<uint64_t, Bytes> records) {
  records_ = std::move(records);
  columns_.RebuildFrom(records_);
  // A recovered bucket owns its records already; nothing is in flight
  // toward it, so it serves immediately.
  loading_ = false;
}

void LhBucketServer::OnMessage(Message& msg, Network& net) {
  if (halted_) {
    // The durable log tore mid-append: this site is crashed. A crashed
    // process neither acks nor forwards — peers see silence until a restart
    // replays the log.
    return;
  }
  if (loading_ && msg.type != MsgType::kMoveRecords) {
    // The split that created this bucket hasn't delivered its records yet:
    // serving now would answer from an empty map, and a racing merge would
    // dissolve the bucket around the in-flight transfer. Park everything
    // until the load lands, then replay in arrival order.
    parked_.push_back(std::move(msg));
    return;
  }
  switch (msg.type) {
    case MsgType::kInsert:
    case MsgType::kLookup:
    case MsgType::kDelete:
      HandleKeyOp(msg, net);
      return;
    case MsgType::kScan:
      HandleScan(msg, net);
      return;
    case MsgType::kSplit:
      HandleSplit(msg, net);
      return;
    case MsgType::kMoveRecords:
      HandleMoveRecords(msg, net);
      return;
    case MsgType::kMerge:
      HandleMerge(msg, net);
      return;
    case MsgType::kMergeRecords:
      HandleMergeRecords(msg, net);
      return;
    default:
      ESSDDS_CHECK(false) << "bucket server got unexpected message "
                          << MsgTypeToString(msg.type);
  }
}

void LhBucketServer::HandleKeyOp(Message& msg, Network& net) {
  // A retired bucket was dissolved into its parent by a merge; a stale
  // client whose image is ahead of the file can still address it. Its
  // records live at the parent now — forward there instead of serving a
  // wrong answer from the empty local map.
  uint64_t route = retired_ ? ParentBucket(bucket_number_) : RouteFor(msg.key);
  if (route != bucket_number_) {
    // Address verification ran under this bucket's level; after a merge the
    // computed bucket may no longer exist. Fold onto the parent chain (the
    // bucket that absorbed its records) rather than aborting.
    while (!runtime_->BucketExists(route)) route = ParentBucket(route);
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(route);
    fwd.hops = msg.hops + 1;
    if (msg.hops == 0) {
      // Remember the first mis-addressed bucket; the serving bucket echoes
      // it in the image adjustment so the client can repair its image.
      fwd.has_iam = true;
      fwd.iam_level = level_;
      fwd.iam_address = bucket_number_;
    }
    net.Send(std::move(fwd));
    return;
  }

  Message reply;
  reply.from = site_;
  reply.to = msg.reply_to;
  reply.request_id = msg.request_id;
  reply.trace_id = msg.trace_id;
  reply.key = msg.key;
  if (msg.hops > 0) {
    reply.has_iam = true;
    reply.iam_level = msg.iam_level;
    reply.iam_address = msg.iam_address;
  }

  switch (msg.type) {
    case MsgType::kInsert: {
      // Durability before acknowledgement: the record reaches the log
      // before the map, the ack, or the overflow report. A torn append
      // halts the site with the insert unacknowledged — the client retries
      // against the restarted site.
      if (log_ != nullptr && !log_->AppendPut(msg.key, msg.value)) {
        halted_ = true;
        return;
      }
      AboutToMutateRecords(net);
      auto [it, inserted] =
          records_.insert_or_assign(msg.key, std::move(msg.value));
      columns_.Upsert(msg.key, it->second);
      UpdateRecordGauge(net);
      reply.type = MsgType::kInsertAck;
      reply.found = !inserted;  // true when an existing record was replaced
      net.Send(std::move(reply));
      MaybeReportOverflow(net, msg.trace_id);
      if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
      return;
    }
    case MsgType::kLookup: {
      reply.type = MsgType::kLookupReply;
      auto it = records_.find(msg.key);
      reply.found = it != records_.end();
      if (reply.found) reply.value = it->second;
      net.Send(std::move(reply));
      return;
    }
    case MsgType::kDelete: {
      if (log_ != nullptr && !log_->AppendErase(msg.key)) {
        halted_ = true;
        return;
      }
      AboutToMutateRecords(net);
      reply.type = MsgType::kDeleteAck;
      reply.found = records_.erase(msg.key) > 0;
      columns_.Erase(msg.key);
      UpdateRecordGauge(net);
      net.Send(std::move(reply));
      MaybeReportUnderflow(net, msg.trace_id);
      if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
      return;
    }
    default:
      ESSDDS_CHECK(false);
  }
}

void LhBucketServer::HandleScan(Message& msg, Network& net) {
  if (retired_) {
    // Dissolved by a merge: the parent owns the records now (and answers
    // under its own bucket number, so the client's per-bucket dedup still
    // sees one live reply per bucket).
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(ParentBucket(bucket_number_));
    fwd.hops = msg.hops + 1;
    net.Send(std::move(fwd));
    return;
  }

  // Propagate to every split descendant the sender's image did not cover.
  // Each existing bucket receives the scan exactly once: the client covers
  // its image, and each bucket covers the children created by its own
  // splits past the level the sender assumed. A child dissolved by a
  // concurrent merge no longer holds records — skip it.
  for (uint32_t l = msg.assumed_level; l < level_; ++l) {
    const uint64_t child = bucket_number_ + (uint64_t{1} << l);
    if (!runtime_->BucketExists(child)) continue;
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(child);
    fwd.assumed_level = l + 1;
    fwd.hops = msg.hops + 1;
    net.Send(std::move(fwd));
  }

  ScanTask task;
  task.bucket = bucket_number_;
  task.records = &records_;
  task.columns = columns_.slice();
  task.has_columns = true;
  task.filter = &runtime_->FilterById(msg.filter_id);
  task.arg = Bytes(msg.filter_arg.begin(), msg.filter_arg.end());
  task.live_generation = &mutation_generation_;
  task.enqueue_generation = mutation_generation_;
  task.reply.type = MsgType::kScanReply;
  task.reply.from = site_;
  task.reply.to = msg.reply_to;
  task.reply.request_id = msg.request_id;
  task.reply.trace_id = msg.trace_id;
  task.reply.key = bucket_number_;  // lets the client attribute hits to buckets
  // Piggyback this bucket's level, snapshotted at forward time: a client
  // without a quiescence barrier (sockets) derives from it exactly which
  // children the scan was propagated to and awaits those replies too.
  task.reply.new_level = level_;
  if (net.deferred_scan_mode()) {
    // Parallel scan mode: evaluation runs off the messaging path once the
    // initiator drains the batch; the reply is sent then.
    net.EnqueueScanTask(std::move(task));
  } else {
    ExecuteScanTask(task);
    net.Send(std::move(task.reply));
  }
}

void LhBucketServer::HandleSplit(const Message& msg, Network& net) {
  ESSDDS_CHECK(msg.bucket_to_split == bucket_number_);
  if (msg.new_level != level_ + 1) {
    // The coordinator computed this split against a level this bucket has
    // not reached yet: the merge record transfer that steps the level down
    // (sent by the dissolving child, on a different link than the
    // coordinator's order) is still in flight. Hold the split until it
    // lands — splitting now would move the wrong key range.
    ESSDDS_CHECK(msg.new_level <= level_)
        << "split level mismatch: coordinator " << msg.new_level
        << " vs local " << level_ + 1;
    stashed_control_.push_back(msg);
    return;
  }
  const uint64_t new_bucket = msg.key;
  // Compute the carve-out first so the log records (explicit key list + the
  // stepped-up level) land before the record map shrinks: replay never needs
  // to re-run the hash. A tear in either log write halts the site with the
  // pre-split state still the durable truth.
  const uint64_t mask = (uint64_t{1} << msg.new_level) - 1;
  std::vector<uint64_t> moved_keys;
  for (const auto& [key, value] : records_) {
    if ((LhKeyImage(key, options_) & mask) == new_bucket) {
      moved_keys.push_back(key);
    }
  }
  // Deferred scans must resolve against the pre-split content before any
  // value is moved out of the record map below.
  AboutToMutateRecords(net);

  Message move;
  move.type = MsgType::kMoveRecords;
  move.from = site_;
  move.to = runtime_->SiteOfBucket(new_bucket);
  move.trace_id = msg.trace_id;
  move.records.reserve(moved_keys.size());
  for (uint64_t key : moved_keys) {
    move.records.push_back(WireRecord{key, std::move(records_[key])});
  }
  // Two-phase durable transfer: the receiving bucket's log gets the
  // bulk-put BEFORE this bucket logs the erase. A crash between the two
  // leaves the moved records in BOTH logs — the new bucket's copy is
  // dropped by the recovery repair rule (its parent's level still predates
  // the split) — never in neither, which would be silent loss of acked
  // records.
  if (log_ != nullptr) {
    persist::BucketLog* peer = runtime_->LogOfBucket(new_bucket);
    if (peer != nullptr) {
      if (!peer->AppendBulkPut(msg.new_level, move.records)) {
        halted_ = true;
        return;
      }
      move.records_durable = true;
    }
    if (!log_->AppendEraseBulk(msg.new_level, moved_keys)) {
      halted_ = true;
      return;
    }
  }
  level_ = msg.new_level;
  for (uint64_t key : moved_keys) records_.erase(key);
  // Split carve-out removes a whole key range; per-record column erases
  // would memmove the flat arrays once per moved record, so repack instead.
  columns_.RebuildFrom(records_);
  UpdateRecordGauge(net);
  if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
  net.Send(std::move(move));

  Message done;
  done.type = MsgType::kSplitDone;
  done.from = site_;
  done.to = runtime_->CoordinatorSite();
  done.key = bucket_number_;
  done.trace_id = msg.trace_id;
  net.Send(std::move(done));
}

void LhBucketServer::HandleMoveRecords(Message& msg, Network& net) {
  // Bulk load during a split: records arrive pre-addressed, no overflow
  // report (a subsequent regular insert re-checks capacity). The message is
  // ours to cannibalize — adopt the values instead of deep-copying them
  // (the log append below only reads them). When the sender already wrote
  // the bulk-put into this bucket's log (two-phase transfer), appending it
  // again would only store a redundant duplicate frame.
  if (!msg.records_durable && log_ != nullptr &&
      !log_->AppendBulkPut(level_, msg.records)) {
    halted_ = true;
    return;
  }
  AboutToMutateRecords(net);
  for (WireRecord& r : msg.records) {
    records_[r.key] = std::move(r.value);
  }
  columns_.RebuildFrom(records_);
  UpdateRecordGauge(net);
  if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
  if (loading_) {
    loading_ = false;
    // Replay whatever raced the bulk load, in arrival order. Replays may
    // send (replies, forwards, even a parked kMerge's transfer), which the
    // network schedules as usual.
    std::vector<Message> replay = std::move(parked_);
    parked_.clear();
    for (Message& m : replay) OnMessage(m, net);
  }
}

void LhBucketServer::HandleMerge(const Message& msg, Network& net) {
  if (msg.new_level + 1 != level_) {
    // The coordinator dissolves this bucket assuming level new_level + 1,
    // but a merge record transfer INTO this bucket (it was the parent of an
    // earlier merge) is still in flight. Dissolving now would strand that
    // transfer at a retired bucket; wait for the level to step down first.
    ESSDDS_CHECK(msg.new_level + 1 < level_)
        << "merge level mismatch: coordinator " << msg.new_level + 1
        << " vs local " << level_;
    stashed_control_.push_back(msg);
    return;
  }
  // This bucket dissolves: every record returns to the parent it split off
  // from, and the parent's level steps back down. Deferred scans resolve
  // first (the move below empties the values), then the transfer goes to
  // the logs two-phase: the parent's bulk-put lands BEFORE this bucket's
  // kClear. A crash between the two leaves the records in both logs — the
  // still-live victim is dropped by the recovery repair rule (the parent's
  // stepped-down level gives the interruption away) — never in neither. A
  // replayed kClear marks the bucket retired, so recovery never resurrects
  // records the parent now owns.
  AboutToMutateRecords(net);
  const uint64_t parent = msg.key;
  Message move;
  move.type = MsgType::kMergeRecords;
  move.from = site_;
  move.to = runtime_->SiteOfBucket(parent);
  move.new_level = msg.new_level;
  move.trace_id = msg.trace_id;
  for (auto& [key, value] : records_) {
    move.records.push_back(WireRecord{key, std::move(value)});
  }
  if (log_ != nullptr) {
    persist::BucketLog* peer = runtime_->LogOfBucket(parent);
    if (peer != nullptr) {
      if (!peer->AppendBulkPut(msg.new_level, move.records)) {
        halted_ = true;
        return;
      }
      move.records_durable = true;
    }
    if (!log_->AppendClear()) {
      halted_ = true;
      return;
    }
  }
  records_.clear();
  columns_.Clear();
  UpdateRecordGauge(net);
  // Dissolved from this moment: an op that reaches this bucket before the
  // coordinator retires it from the directory must chase the records to
  // the parent, not read the empty map.
  retired_ = true;
  net.Send(std::move(move));

  Message done;
  done.type = MsgType::kMergeDone;
  done.from = site_;
  done.to = runtime_->CoordinatorSite();
  done.key = bucket_number_;
  done.trace_id = msg.trace_id;
  net.Send(std::move(done));
}

void LhBucketServer::HandleMergeRecords(Message& msg, Network& net) {
  // Merges are serialized at the coordinator, but their record transfers
  // travel on different links: a later merge's transfer (lower new_level)
  // can overtake an earlier one's. Apply transfers strictly in level
  // order — each step takes the level down by exactly one — and stash any
  // that arrive early.
  ESSDDS_CHECK(msg.new_level < level_)
      << "merge level mismatch at bucket " << bucket_number_;
  if (msg.new_level != level_ - 1) {
    stashed_merge_records_.push_back(std::move(msg));
    return;
  }
  // One resolution covers the whole handler, including stashed transfers
  // applied below: no message delivery happens in between, so no new scan
  // task can be enqueued mid-application. A transfer the dissolving bucket
  // already wrote into this log (two-phase) is not appended again.
  if (!msg.records_durable && log_ != nullptr &&
      !log_->AppendBulkPut(msg.new_level, msg.records)) {
    halted_ = true;
    return;
  }
  AboutToMutateRecords(net);
  level_ = msg.new_level;
  for (WireRecord& r : msg.records) {
    records_[r.key] = std::move(r.value);
  }
  // The step down may unblock a stashed transfer (and that one the next).
  for (bool applied = true; applied;) {
    applied = false;
    for (auto it = stashed_merge_records_.begin();
         it != stashed_merge_records_.end(); ++it) {
      if (it->new_level + 1 != level_) continue;
      Message next = std::move(*it);
      stashed_merge_records_.erase(it);
      if (!next.records_durable && log_ != nullptr &&
          !log_->AppendBulkPut(next.new_level, next.records)) {
        halted_ = true;
        return;
      }
      level_ = next.new_level;
      for (WireRecord& r : next.records) {
        records_[r.key] = std::move(r.value);
      }
      applied = true;
      break;
    }
  }
  // One repack after the whole transfer chain (main + unblocked stashed
  // transfers) rather than per-record upserts.
  columns_.RebuildFrom(records_);
  UpdateRecordGauge(net);
  if (log_ != nullptr) log_->MaybeCheckpoint(level_, retired_, records_);
  // The level came down: a split or merge order stashed while this transfer
  // was in flight may be runnable now (it re-stashes if still early).
  if (!stashed_control_.empty()) {
    std::vector<Message> replay = std::move(stashed_control_);
    stashed_control_.clear();
    for (Message& m : replay) OnMessage(m, net);
  }
}

void LhBucketServer::AboutToMutateRecords(Network& net) {
  // A deferred scan task holds a pointer into records_ until the batch
  // drains; evaluate any queued for this bucket now, against the
  // pre-mutation content — exactly what the serial inline mode returned at
  // kScan delivery, so deferred results stay byte-identical. The generation
  // step arms the snapshot assert for any mutation path that skips this
  // call.
  if (net.deferred_scan_mode()) net.ResolveDeferredScans(bucket_number_);
  ++mutation_generation_;
}

void LhBucketServer::UpdateRecordGauge(Network& net) {
  if (!obs::kMetricsEnabled) return;
  if (record_gauge_ == nullptr) {
    record_gauge_ = &net.metrics().gauge(
        "bucket." + std::to_string(bucket_number_) + ".records");
  }
  record_gauge_->Set(static_cast<int64_t>(records_.size()));
}

void LhBucketServer::MaybeReportOverflow(Network& net, uint64_t trace_id) {
  if (records_.size() <= options_.bucket_capacity) return;
  Message overflow;
  overflow.type = MsgType::kOverflow;
  overflow.from = site_;
  overflow.to = runtime_->CoordinatorSite();
  overflow.key = bucket_number_;
  overflow.trace_id = trace_id;
  net.Send(std::move(overflow));
}

void LhBucketServer::MaybeReportUnderflow(Network& net, uint64_t trace_id) {
  if (options_.merge_threshold <= 0.0) return;
  const double low_water =
      options_.merge_threshold * static_cast<double>(options_.bucket_capacity);
  if (static_cast<double>(records_.size()) >= low_water) return;
  Message underflow;
  underflow.type = MsgType::kUnderflow;
  underflow.from = site_;
  underflow.to = runtime_->CoordinatorSite();
  underflow.key = bucket_number_;
  underflow.trace_id = trace_id;
  net.Send(std::move(underflow));
}

void LhCoordinator::OnMessage(Message& msg, Network& net) {
  switch (msg.type) {
    case MsgType::kOverflow:
      // Uncontrolled splitting: every collision report triggers one split of
      // the bucket at the split pointer (which is generally NOT the
      // overflowing bucket — that is the essence of linear hashing).
      PerformSplit(net, msg.trace_id);
      return;
    case MsgType::kSplitDone:
      ESSDDS_CHECK(split_in_progress_);
      split_in_progress_ = false;
      ++split_pointer_;
      ++extent_;
      if (split_pointer_ == (uint64_t{1} << level_)) {
        split_pointer_ = 0;
        ++level_;
      }
      return;
    case MsgType::kUnderflow:
      PerformMerge(net, msg.trace_id);
      return;
    case MsgType::kMergeDone:
      ESSDDS_CHECK(merge_in_progress_);
      merge_in_progress_ = false;
      if (split_pointer_ == 0) {
        ESSDDS_CHECK(level_ > 0);
        --level_;
        split_pointer_ = (uint64_t{1} << level_) - 1;
      } else {
        --split_pointer_;
      }
      --extent_;
      runtime_->RetireLastBucket();
      return;
    default:
      ESSDDS_CHECK(false) << "coordinator got unexpected message "
                          << MsgTypeToString(msg.type);
  }
}

void LhCoordinator::PerformMerge(Network& net, uint64_t trace_id) {
  if (merge_in_progress_ || split_in_progress_ || extent_ <= 1) return;
  merge_in_progress_ = true;
  net.metrics().counter("coord.merges").Increment();
  // Inverse of the split order: dissolve the most recently created bucket
  // back into its parent.
  uint64_t victim, parent, parent_new_level;
  if (split_pointer_ > 0) {
    parent = split_pointer_ - 1;
    victim = parent + (uint64_t{1} << level_);
    parent_new_level = level_;
  } else {
    // The file just doubled; undo the last split of the previous round.
    parent = (uint64_t{1} << (level_ - 1)) - 1;
    victim = (uint64_t{1} << level_) - 1;
    parent_new_level = level_ - 1;
  }
  Message merge;
  merge.type = MsgType::kMerge;
  merge.from = site_;
  merge.to = runtime_->SiteOfBucket(victim);
  merge.bucket_to_split = victim;
  merge.key = parent;
  merge.new_level = static_cast<uint32_t>(parent_new_level);
  merge.trace_id = trace_id;
  net.Send(std::move(merge));
}

void LhCoordinator::PerformSplit(Network& net, uint64_t trace_id) {
  // An overflow report can arrive while a split (or merge) is already in
  // flight — on a real network the reports race the kSplitDone ack. The
  // report is then already served by the in-flight restructuring: drop it,
  // exactly as PerformMerge drops concurrent underflow reports. (A bucket
  // still overflowing afterwards reports again on its next insert.)
  if (split_in_progress_ || merge_in_progress_) return;
  split_in_progress_ = true;
  net.metrics().counter("coord.splits").Increment();
  const uint64_t old_bucket = split_pointer_;
  const uint64_t new_bucket = split_pointer_ + (uint64_t{1} << level_);
  runtime_->CreateBucket(new_bucket, level_ + 1);

  Message split;
  split.type = MsgType::kSplit;
  split.from = site_;
  split.to = runtime_->SiteOfBucket(old_bucket);
  split.bucket_to_split = old_bucket;
  split.new_level = level_ + 1;
  split.key = new_bucket;
  split.trace_id = trace_id;
  net.Send(std::move(split));
}

}  // namespace essdds::sdds
