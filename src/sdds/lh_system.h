#ifndef ESSDDS_SDDS_LH_SYSTEM_H_
#define ESSDDS_SDDS_LH_SYSTEM_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "persist/persist_manager.h"
#include "sdds/event_network.h"
#include "sdds/lh_client.h"
#include "sdds/lh_options.h"
#include "sdds/lh_server.h"
#include "sdds/network.h"
#include "sdds/parity_server.h"

namespace essdds::sdds {

/// Owns one LH* file: the simulated network, the split coordinator, the
/// bucket servers, the logical-bucket directory, and the scan-filter
/// registry. This is the embedding application's entry point to the SDDS
/// substrate.
///
/// Usage:
///   LhSystem sys({.bucket_capacity = 128});
///   uint64_t match_all = sys.InstallFilter([](auto, auto, auto) { ... });
///   LhClient* c = sys.NewClient();
///   c->Insert(42, ToBytes("hello"));
///   auto r = c->Lookup(42);
class LhSystem : public LhRuntime {
 public:
  explicit LhSystem(LhOptions options = {});

  LhSystem(const LhSystem&) = delete;
  LhSystem& operator=(const LhSystem&) = delete;

  /// Creates a client with a fresh (minimal) image of the file.
  LhClient* NewClient();

  /// Installs a site-side scan filter, returning its id for LhClient::Scan.
  /// Stands in for query code deployed at the sites. The filter's Prepare()
  /// hook runs once per bucket per scan (possibly from a worker thread when
  /// scan_threads > 1), so per-scan state lives in the Prepared instance,
  /// never in the filter itself.
  uint64_t InstallFilter(std::unique_ptr<ScanFilter> filter);

  /// Convenience for stateless predicates (tests, benches): wraps the
  /// callable in a ScanFilter whose Prepare() just captures the argument.
  uint64_t InstallFilter(
      std::function<bool(uint64_t key, ByteSpan value, ByteSpan arg)>
          predicate);

  // --- LhRuntime ---
  SiteId SiteOfBucket(uint64_t bucket) const override;
  bool BucketExists(uint64_t bucket) const override;
  SiteId CoordinatorSite() const override;
  SiteId CreateBucket(uint64_t bucket, uint32_t level) override;
  const ScanFilter& FilterById(uint64_t filter_id) const override;
  const LhOptions& options() const override { return options_; }
  void RetireLastBucket() override;
  persist::BucketLog* LogOfBucket(uint64_t bucket) override;

  // --- LhRuntime, high availability (DESIGN.md §16) ---
  std::vector<SiteId> ParitySitesOfBucket(uint64_t bucket) const override;
  bool SiteIsDead(SiteId site) const override;
  SiteId MarkBucketDead(uint64_t bucket) override;
  void RebuildBucket(uint64_t bucket, RebuiltBucket state) override;
  bool MemberTrafficDrained(uint64_t bucket) const override;

  /// In-process rebuild of one parity bucket (parity-site death): registers
  /// a fresh ParityServer for (group, parity_index), re-encodes its row
  /// from the live data buckets, and redirects the dead site's address to
  /// it. Duplicate updates still in flight toward the old address are
  /// absorbed by the sequence check. Requires the event network.
  void RebuildParityBucket(uint64_t group, int parity_index);

  // --- introspection for tests, benches and recovery tooling ---
  Network& network() { return *network_; }
  const Network& network() const { return *network_; }

  /// The event simulator when options().network_mode == kEvent (fault
  /// scripting, pause/resume, virtual clock); nullptr in synchronous mode.
  EventNetwork* event_network() { return event_network_; }
  size_t bucket_count() const { return servers_.size(); }
  const LhCoordinator& coordinator() const { return coordinator_; }
  /// The durable-persistence manager when options().data_dir is set on a
  /// persistence-enabled build; nullptr otherwise (RAM-only file).
  persist::PersistManager* persist() { return persist_.get(); }
  /// Number of buckets the constructor rebuilt from the data directory
  /// (0 on a fresh directory or without persistence).
  size_t recovered_bucket_count() const { return recovered_bucket_count_; }
  const LhBucketServer& bucket(uint64_t b) const;
  LhBucketServer& mutable_bucket(uint64_t b);
  /// The parity bucket `parity_index` of `group`; CHECK-fails when parity
  /// is off or the group has no members yet.
  const ParityServer& parity_bucket(uint64_t group, int parity_index) const;
  /// Number of parity groups instantiated so far (0 with parity off).
  size_t parity_group_count() const { return parity_servers_.size(); }
  /// True while `bucket` is declared dead and its address is served by a
  /// recovery proxy.
  bool bucket_dead(uint64_t bucket) const {
    return dead_buckets_.count(bucket) > 0;
  }
  uint64_t TotalRecords() const;
  /// Fraction of used capacity: records / (buckets * capacity).
  double LoadFactor() const;

 private:
  /// Creates the m parity buckets of `group` on first use.
  void EnsureParityGroup(uint64_t group);
  /// Restart path: re-encodes every group's parity rows from the recovered
  /// data buckets (the parity sites themselves are RAM-only).
  void SeedParityFromData();
  /// Re-encodes one parity row from the live data buckets of `group`.
  std::map<uint64_t, Bytes> EncodeParityRow(uint64_t group,
                                            int parity_index) const;
  std::vector<ParityServer::MemberSeed> MemberSeedsOf(uint64_t group) const;

  LhOptions options_;
  std::unique_ptr<Network> network_;
  EventNetwork* event_network_ = nullptr;  // network_ downcast (kEvent only)
  /// Durable log manager (only with data_dir + ESSDDS_PERSIST). Declared
  /// before the servers so bucket logs outlive every server that appends.
  std::unique_ptr<persist::PersistManager> persist_;
  /// True while the constructor re-creates recovered buckets: CreateBucket
  /// then adopts existing logs instead of truncating them.
  bool recovering_ = false;
  size_t recovered_bucket_count_ = 0;
  LhCoordinator coordinator_;
  SiteId coordinator_site_;
  std::vector<std::unique_ptr<LhBucketServer>> servers_;  // by bucket number
  // Dissolved bucket servers: kept alive (network sites hold raw pointers)
  // but no longer routed to.
  std::vector<std::unique_ptr<LhBucketServer>> retired_servers_;
  std::vector<std::unique_ptr<LhClient>> clients_;
  std::vector<std::unique_ptr<ScanFilter>> filters_;

  // --- high availability (parity_group_size > 0) ---
  /// group number -> its m parity buckets (created lazily with the group's
  /// first data member).
  std::map<uint64_t, std::vector<std::unique_ptr<ParityServer>>>
      parity_servers_;
  /// Parity update sequence of each retired bucket, so a number-reusing
  /// re-creation continues the stream where its predecessor stopped.
  std::map<uint64_t, uint64_t> last_parity_seq_;
  /// Every site a bucket number was ever served from (creation + rebuilds):
  /// the drain barrier must cover in-flight traffic from dead incarnations.
  std::map<uint64_t, std::vector<SiteId>> site_history_;
  /// Buckets declared dead, mapped to the proxy site serving their address
  /// until the rebuild installs.
  std::map<uint64_t, SiteId> dead_buckets_;
  /// Replaced parity servers (parity-site rebuild): kept alive, like
  /// retired_servers_, because network sites hold raw pointers.
  std::vector<std::unique_ptr<ParityServer>> retired_parity_;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_LH_SYSTEM_H_
