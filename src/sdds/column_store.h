#ifndef ESSDDS_SDDS_COLUMN_STORE_H_
#define ESSDDS_SDDS_COLUMN_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "util/bytes.h"

namespace essdds::sdds {

/// Read-only view of a bucket's columnar record storage, handed to scan
/// evaluation: record i is key `keys[i]` with payload bytes
/// arena[offsets[i], offsets[i] + lengths[i]). Records appear in ascending
/// key order — the same order a std::map iteration yields — so hits
/// collected over any contiguous index range concatenate into the exact
/// reply the map-based evaluation produces.
///
/// The view borrows the owning ColumnStore's buffers: it is valid only
/// until the store's next mutation. Scan tasks hold one under the same
/// contract that guards their record-map pointer (buckets resolve queued
/// tasks before mutating).
struct ColumnSlice {
  const uint64_t* keys = nullptr;
  const uint64_t* offsets = nullptr;
  const uint32_t* lengths = nullptr;
  const uint8_t* arena = nullptr;
  size_t count = 0;

  ByteSpan payload(size_t i) const {
    return ByteSpan(arena + offsets[i], lengths[i]);
  }
};

/// Columnar projection of one bucket's record map: payload bytes packed
/// into a contiguous arena with per-record offset/length arrays, keys in a
/// flat sorted array. The map stays the authority for key operations
/// (lookup, routing, split carving); the column store exists for scans,
/// which walk every record — a flat arena turns that walk from
/// pointer-chasing map nodes into streaming reads, and gives batch matchers
/// many packed records per pass.
///
/// The owning bucket mutates both structures in lockstep:
///   - Upsert/Erase mirror single-record map mutations. An upsert whose
///     payload size is unchanged overwrites in place; otherwise the new
///     payload is appended to the arena and the old bytes become waste.
///     Entry-array edits memmove the flat arrays (cheap at bucket sizes;
///     bulk paths below avoid the quadratic trap).
///   - RebuildFrom repacks everything from the map in one pass; the bulk
///     transfer paths (split carve-out, kMoveRecords, kMergeRecords) use it
///     instead of per-record edits.
/// Appends that outrun live bytes trigger a compaction (arena rewritten in
/// key order), so the arena stays within 2x of the live payload volume and
/// scan reads stay mostly sequential.
class ColumnStore {
 public:
  ColumnStore() = default;

  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  /// Inserts or replaces the payload of `key`.
  void Upsert(uint64_t key, ByteSpan payload);

  /// Removes `key` if present.
  void Erase(uint64_t key);

  /// Drops everything (merge dissolution).
  void Clear();

  /// Repacks from `records` in ascending key order (bulk transfer paths).
  void RebuildFrom(const std::map<uint64_t, Bytes>& records);

  size_t size() const { return keys_.size(); }
  uint64_t key(size_t i) const { return keys_[i]; }
  ByteSpan payload(size_t i) const {
    return ByteSpan(arena_.data() + offsets_[i], lengths_[i]);
  }

  /// Borrowed view for scan evaluation; valid until the next mutation.
  ColumnSlice slice() const {
    ColumnSlice s;
    s.keys = keys_.data();
    s.offsets = offsets_.data();
    s.lengths = lengths_.data();
    s.arena = arena_.data();
    s.count = keys_.size();
    return s;
  }

  /// Arena bytes occupied by dead payloads (replaced or erased records);
  /// reset by compaction and rebuilds. Exposed for tests. Invariant:
  /// waste_bytes() + (sum of live payload lengths) == arena_bytes().
  uint64_t waste_bytes() const { return waste_bytes_; }

  /// Total arena size, live + waste. Exposed for the compaction-boundary
  /// tests (growth-bound and all-dead-arena assertions).
  uint64_t arena_bytes() const { return arena_.size(); }

  /// True when this store holds exactly the content of `records`, byte for
  /// byte, in ascending key order. Test/audit hook.
  bool MirrorsMap(const std::map<uint64_t, Bytes>& records) const;

 private:
  /// Index of `key` in keys_, or keys_.size() when absent.
  size_t Find(uint64_t key) const;

  /// Rewrites the arena with live payloads only, in key order.
  void Compact();

  /// Appends `payload` to the arena (compacting first when the waste has
  /// outgrown the live bytes) and returns its offset.
  uint64_t Append(ByteSpan payload);

  std::vector<uint64_t> keys_;     // ascending
  std::vector<uint64_t> offsets_;  // into arena_, parallel to keys_
  std::vector<uint32_t> lengths_;  // parallel to keys_
  std::vector<uint8_t> arena_;
  uint64_t waste_bytes_ = 0;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_COLUMN_STORE_H_
