#include "sdds/column_store.h"

#include <algorithm>
#include <cstring>

#include "util/logging.h"

namespace essdds::sdds {

size_t ColumnStore::Find(uint64_t key) const {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return keys_.size();
  return static_cast<size_t>(it - keys_.begin());
}

uint64_t ColumnStore::Append(ByteSpan payload) {
  // Compact before growing past 2x the live volume; the threshold also
  // charges the incoming payload so a store that alternates two payload
  // sizes for one key cannot grow without bound.
  //
  // The unsigned subtraction cannot underflow: every mutation preserves
  // waste_bytes_ + (live payload bytes) == arena_.size() — in particular
  // the replace path in Upsert charges the superseded payload only AFTER
  // this append repoints the entry — so arena_.size() - waste_bytes_ is the
  // live volume, >= 0. The boundary waste_bytes_ == arena_.size() (an
  // all-dead arena under live zero-length entries) evaluates the threshold
  // as waste >= payload.size() and compacts; unit tests pin it.
  ESSDDS_DCHECK(waste_bytes_ <= arena_.size());
  if (waste_bytes_ > 0 &&
      waste_bytes_ >= arena_.size() - waste_bytes_ + payload.size()) {
    Compact();
  }
  const uint64_t offset = arena_.size();
  arena_.insert(arena_.end(), payload.begin(), payload.end());
  return offset;
}

void ColumnStore::Upsert(uint64_t key, ByteSpan payload) {
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  const size_t i = static_cast<size_t>(it - keys_.begin());
  if (it != keys_.end() && *it == key) {
    if (lengths_[i] == payload.size()) {
      // Same-size replace: overwrite in place, no arena growth.
      if (!payload.empty()) {
        std::memcpy(arena_.data() + offsets_[i], payload.data(),
                    payload.size());
      }
      return;
    }
    // Append may compact; the entry still references the old payload then,
    // so it survives compaction as live bytes and only becomes waste once
    // the entry is repointed below — charge it after, not before.
    const uint32_t old_length = lengths_[i];
    const uint64_t offset = Append(payload);
    offsets_[i] = offset;
    lengths_[i] = static_cast<uint32_t>(payload.size());
    waste_bytes_ += old_length;
    return;
  }
  const uint64_t offset = Append(payload);
  keys_.insert(keys_.begin() + static_cast<ptrdiff_t>(i), key);
  offsets_.insert(offsets_.begin() + static_cast<ptrdiff_t>(i), offset);
  lengths_.insert(lengths_.begin() + static_cast<ptrdiff_t>(i),
                  static_cast<uint32_t>(payload.size()));
}

void ColumnStore::Erase(uint64_t key) {
  const size_t i = Find(key);
  if (i == keys_.size()) return;
  waste_bytes_ += lengths_[i];
  keys_.erase(keys_.begin() + static_cast<ptrdiff_t>(i));
  offsets_.erase(offsets_.begin() + static_cast<ptrdiff_t>(i));
  lengths_.erase(lengths_.begin() + static_cast<ptrdiff_t>(i));
  // Deleting the last records of a bucket must release the arena too, or an
  // emptied bucket would pin its peak payload volume.
  if (keys_.empty()) {
    arena_.clear();
    waste_bytes_ = 0;
  }
}

void ColumnStore::Clear() {
  keys_.clear();
  offsets_.clear();
  lengths_.clear();
  arena_.clear();
  waste_bytes_ = 0;
}

void ColumnStore::RebuildFrom(const std::map<uint64_t, Bytes>& records) {
  keys_.clear();
  offsets_.clear();
  lengths_.clear();
  arena_.clear();
  waste_bytes_ = 0;
  keys_.reserve(records.size());
  offsets_.reserve(records.size());
  lengths_.reserve(records.size());
  uint64_t total = 0;
  for (const auto& [key, value] : records) total += value.size();
  arena_.reserve(total);
  for (const auto& [key, value] : records) {
    keys_.push_back(key);
    offsets_.push_back(arena_.size());
    lengths_.push_back(static_cast<uint32_t>(value.size()));
    arena_.insert(arena_.end(), value.begin(), value.end());
  }
}

void ColumnStore::Compact() {
  std::vector<uint8_t> packed;
  uint64_t live = 0;
  for (uint32_t len : lengths_) live += len;
  packed.reserve(live);
  for (size_t i = 0; i < keys_.size(); ++i) {
    const uint64_t offset = packed.size();
    packed.insert(packed.end(), arena_.begin() + static_cast<ptrdiff_t>(offsets_[i]),
                  arena_.begin() + static_cast<ptrdiff_t>(offsets_[i] + lengths_[i]));
    offsets_[i] = offset;
  }
  arena_ = std::move(packed);
  waste_bytes_ = 0;
}

bool ColumnStore::MirrorsMap(const std::map<uint64_t, Bytes>& records) const {
  if (records.size() != keys_.size()) return false;
  size_t i = 0;
  for (const auto& [key, value] : records) {
    if (keys_[i] != key || lengths_[i] != value.size()) return false;
    if (!value.empty() &&
        std::memcmp(arena_.data() + offsets_[i], value.data(),
                    value.size()) != 0) {
      return false;
    }
    ++i;
  }
  return true;
}

}  // namespace essdds::sdds
