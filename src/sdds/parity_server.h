#ifndef ESSDDS_SDDS_PARITY_SERVER_H_
#define ESSDDS_SDDS_PARITY_SERVER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "gf/gf2n.h"
#include "sdds/lh_options.h"
#include "sdds/network.h"
#include "sdds/rs_code.h"
#include "util/bytes.h"
#include "util/result.h"

namespace essdds::sdds {

// --- parity wire helpers (DESIGN.md §16) -------------------------------
//
// Parity is computed over fixed "rank" slots, LH*_RS style: every data
// bucket assigns each of its records a small integer rank, and the group's
// parity bucket j holds, per rank r,
//   P_j[r] = sum_i ParityCoeff(j, i) * D_i[r]
// over GF(2^8), where D_i[r] is member i's canonical rank buffer below
// (empty when member i has no record at rank r). Because GF addition is
// XOR, a record mutation folds into every parity row as a scaled delta of
// the old and new rank buffers — no other member's data needed.

/// Canonical rank buffer of a record: [present=1 u8][key u64][value
/// length-prefixed]. Buffers are compared modulo trailing zeros: the empty
/// byte string is the canonical buffer of an unoccupied rank, all-zero
/// padding added by XOR arithmetic or RS decode is equivalent, and
/// trimming may even cut into the encoding (a value ending in 0x00, an
/// empty value under a key with zero low bytes) — ParseRankBuffer restores
/// the missing bytes by zero-extension.
Bytes RankBuffer(uint64_t key, ByteSpan value);

/// A parsed rank buffer; `present` false for an unoccupied rank.
struct RankEntry {
  bool present = false;
  uint64_t key = 0;
  Bytes value;
};

/// Upper bound on a single record value reachable through a rank buffer.
/// Rank buffers are an equivalence class modulo trailing zeros, so the
/// parser must zero-extend up to the declared value length; the bound keeps
/// a garbage length prefix from turning that extension into a giant
/// allocation (junk in, error out).
inline constexpr size_t kMaxRankValueBytes = size_t{1} << 24;  // 16 MiB

/// Parses a rank buffer modulo trailing zeros: extra zero bytes (XOR
/// arithmetic / RS decode padding) are ignored, and a buffer cut short by
/// canonical trimming — a value ending in 0x00 loses those bytes — is
/// implicitly zero-extended to its declared length. Fails on nonzero bytes
/// past the payload, an invalid marker, or a value length above
/// kMaxRankValueBytes — decoded garbage must not pass.
Result<RankEntry> ParseRankBuffer(ByteSpan buf);

/// XOR of two byte strings, zero-padded to the longer length, with
/// trailing zero bytes trimmed (keeps rank buffers canonical).
Bytes XorBytes(ByteSpan a, ByteSpan b);

/// One record mutation as shipped to the group's parity sites inside a
/// kParityUpdate (one WireRecord per entry: key = rank, value = encoded
/// entry). The delta is the unscaled XOR of the member's old and new rank
/// buffers; each parity site scales it by its own generator coefficient.
struct ParityEntry {
  uint8_t op = 0;  // 0 = upsert (key now occupies the rank), 1 = erase
  uint64_t record_key = 0;
  Bytes delta;
};

Bytes EncodeParityEntry(const ParityEntry& e);
Result<ParityEntry> DecodeParityEntry(ByteSpan data);

/// Per-member sequence targets of a reconstruction round (member index ->
/// update count), sent by the recovery proxy to its parity peers so every
/// parity row snapshots the identical cut of the update stream.
Bytes EncodeSeqTargets(const std::map<int, uint64_t>& targets);
Result<std::map<int, uint64_t>> DecodeSeqTargets(ByteSpan data);

/// One parity bucket of an LH*RS-style parity group (DESIGN.md §16): the
/// k data buckets [group*k, group*k + k) are RS-coded onto m of these.
///
/// Normal operation: applies kParityUpdate deltas from its group's data
/// members, strictly in each member's sequence order (an out-of-order
/// buffer absorbs network reordering — rank/keymap bookkeeping does not
/// commute even though the XOR arithmetic does).
///
/// Recovery: when the hosting system declares a member dead it names the
/// group's first live parity site the RECOVERY PROXY (BeginRecovery). The
/// proxy freezes the surviving members (kReconstructRequest mode 0; they
/// answer a rank-buffer slice and park mutations), waits for the dead
/// members' in-flight updates to drain, aligns its parity peers on the
/// exact per-member sequence cut (mode 1), RS-decodes every lost bucket,
/// serves degraded reads and scans from the decoded shadow while the
/// coordinator's rebuild hold lasts, installs the rebuilt bucket via
/// LhRuntime::RebuildBucket on kRebuild, and finally releases everyone
/// (mode 2).
class ParityServer final : public Site {
 public:
  ParityServer(LhRuntime* runtime, const LhOptions& options, uint64_t group,
               int parity_index);

  void OnMessage(Message& msg, Network& net) override;

  void set_site(SiteId site) { site_ = site; }
  SiteId site() const { return site_; }
  uint64_t group() const { return group_; }
  int parity_index() const { return parity_index_; }

  /// Hosting-system hook: member `bucket` of this group was (re)created at
  /// `level`. First creation initialises its tracking; a re-creation after
  /// a merge-retire only refreshes level/loading — the update sequence and
  /// rank mirror continue across the bucket number's reuse. A member born
  /// while a gather runs is frozen immediately (hence the network).
  void InitMember(uint64_t bucket, uint32_t level, bool loading, Network& net);

  /// Hosting-system hook (proxy role): data bucket `bucket` was declared
  /// dead; start (or restart, folding the new death in) the gather.
  void BeginRecovery(uint64_t bucket, Network& net);

  /// Restart / parity-rebuild path: adopts a parity row recomputed
  /// in-process from the data buckets, plus the member bookkeeping that
  /// goes with it.
  struct MemberSeed {
    uint64_t bucket = 0;
    uint32_t level = 0;
    uint64_t applied = 0;
    std::map<uint64_t, uint64_t> key_rank;  // record key -> rank
  };
  void InstallSeed(std::map<uint64_t, Bytes> parity,
                   std::vector<MemberSeed> seeds);

  // --- introspection (tests, audit) ---
  const std::map<uint64_t, Bytes>& parity() const { return parity_; }
  uint64_t applied(uint64_t bucket) const;
  bool recovering() const { return gather_active_; }
  bool shadow_ready() const { return decode_valid_; }

 private:
  struct MemberState {
    bool inited = false;  // ever created in this group
    bool dead = false;    // currently being recovered
    bool loading = false;
    uint32_t level = 0;
    uint64_t applied = 0;  // updates applied == member's emitted seq
    std::map<uint64_t, Message> ooo;        // seq -> pending update
    std::map<uint64_t, uint64_t> key_rank;  // mirror of the member's ranks
  };

  /// Decoded state of one dead member, served degraded until installed.
  struct Shadow {
    std::map<uint64_t, Bytes> records;
    std::map<uint64_t, uint64_t> key_rank;
    uint32_t level = 0;
    bool loading = false;
    uint64_t seq = 0;
  };

  uint64_t BucketOfMember(int i) const {
    return group_ * static_cast<uint64_t>(k_) + static_cast<uint64_t>(i);
  }
  int MemberOfBucket(uint64_t bucket) const;

  void HandleParityUpdate(Message& msg, Network& net);
  void ApplyUpdate(int member, Message& msg);
  void DrainReady(int member, Network& net);

  // proxy role
  void NoteDead(int member, Network& net);
  void RestartGather(Network& net);
  void CheckGather(Network& net);
  void DecodeDead(Network& net);
  void InstallRebuild(int member, Network& net);
  void ReleaseAll(Network& net);
  void ArmTick(Network& net);

  // peer role
  void CheckPeerConverged(Network& net);

  // degraded serving
  void ServeDegradedLookup(Message& msg, Network& net, int member);
  void ServeDegradedScan(Message& msg, Network& net, int member);
  void ServeParkedReads(Network& net);

  LhRuntime* runtime_;
  LhOptions options_;
  uint64_t group_;
  int parity_index_;
  int k_;
  int m_;
  SiteId site_ = kInvalidSite;
  const gf::GfField* field_;
  RsCode code_;

  std::map<uint64_t, Bytes> parity_;  // rank -> this row's parity buffer
  std::vector<MemberState> members_;  // size k_

  // --- proxy state ---
  bool gather_active_ = false;
  /// Virtual time of the most recent gather (re)start — the base of the
  /// recovery.freeze_us phase timer (freeze broadcast -> decode start).
  uint64_t gather_started_us_ = 0;
  uint64_t epoch_ = 0;
  bool tick_armed_ = false;
  std::set<int> dead_members_;
  struct SliceInfo {
    std::map<uint64_t, Bytes> buffers;  // rank -> buffer
    uint64_t seq = 0;
    uint32_t level = 0;
    bool loading = false;
  };
  std::map<int, SliceInfo> slices_;                       // live members
  std::map<int, std::map<uint64_t, Bytes>> peer_pieces_;  // parity index
  std::set<int> peers_awaited_;
  bool targets_sent_ = false;
  std::map<int, uint64_t> targets_;
  bool decode_valid_ = false;
  std::map<int, Shadow> shadow_;
  std::set<int> pending_rebuilds_;  // kRebuild received before decode
  /// Reads parked until the decode lands; writes/control parked until the
  /// rebuilt server is installed (keyed for dedup across client retries).
  std::vector<Message> parked_reads_;
  std::map<std::pair<SiteId, uint64_t>, Message> parked_ops_;
  uint64_t shadow_generation_ = 0;  // scan-task generation anchor

  // --- peer state ---
  bool held_ = false;
  bool have_peer_targets_ = false;
  std::map<int, uint64_t> peer_targets_;
  uint64_t peer_epoch_ = 0;
  SiteId peer_proxy_site_ = kInvalidSite;
  bool peer_piece_sent_ = false;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_PARITY_SERVER_H_
