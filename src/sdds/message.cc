#include "sdds/message.h"

#include <utility>

#include "util/wire.h"

namespace essdds::sdds {

std::string_view MsgTypeToString(MsgType t) {
  switch (t) {
    case MsgType::kInsert:
      return "Insert";
    case MsgType::kLookup:
      return "Lookup";
    case MsgType::kDelete:
      return "Delete";
    case MsgType::kInsertAck:
      return "InsertAck";
    case MsgType::kLookupReply:
      return "LookupReply";
    case MsgType::kDeleteAck:
      return "DeleteAck";
    case MsgType::kScan:
      return "Scan";
    case MsgType::kScanReply:
      return "ScanReply";
    case MsgType::kOverflow:
      return "Overflow";
    case MsgType::kSplit:
      return "Split";
    case MsgType::kMoveRecords:
      return "MoveRecords";
    case MsgType::kSplitDone:
      return "SplitDone";
    case MsgType::kUnderflow:
      return "Underflow";
    case MsgType::kMerge:
      return "Merge";
    case MsgType::kMergeRecords:
      return "MergeRecords";
    case MsgType::kMergeDone:
      return "MergeDone";
    case MsgType::kParityUpdate:
      return "ParityUpdate";
    case MsgType::kDeadSite:
      return "DeadSite";
    case MsgType::kPing:
      return "Ping";
    case MsgType::kPong:
      return "Pong";
    case MsgType::kReconstructRequest:
      return "ReconstructRequest";
    case MsgType::kReconstructSlice:
      return "ReconstructSlice";
    case MsgType::kRebuild:
      return "Rebuild";
    case MsgType::kRebuildDone:
      return "RebuildDone";
    case MsgType::kRecoveryTick:
      return "RecoveryTick";
  }
  return "Unknown";
}

size_t Message::AccountedBytes() const {
  // Header: type(1) + from(4) + to(4) + request_id(8) + hops(1).
  size_t n = 18;
  switch (type) {
    case MsgType::kInsert:
      n += 8 + value.size();
      break;
    case MsgType::kLookup:
    case MsgType::kDelete:
      n += 8;
      break;
    case MsgType::kLookupReply:
      n += 8 + 1 + value.size();
      break;
    case MsgType::kInsertAck:
    case MsgType::kDeleteAck:
      n += 8 + 1;
      break;
    case MsgType::kScan:
      n += 8 + filter_arg.size() + 4;
      break;
    case MsgType::kScanReply:
      for (const WireRecord& r : records) n += 8 + r.value.size();
      break;
    case MsgType::kOverflow:
    case MsgType::kSplit:
    case MsgType::kSplitDone:
    case MsgType::kUnderflow:
    case MsgType::kMerge:
    case MsgType::kMergeDone:
      n += 8 + 4;
      break;
    case MsgType::kMoveRecords:
    case MsgType::kMergeRecords:
      n += 4;
      for (const WireRecord& r : records) n += 8 + r.value.size();
      break;
    case MsgType::kParityUpdate:
    case MsgType::kReconstructSlice:
      // member/slot + group + seq correlation + the rank entries.
      n += 8 + 8 + 4 + filter_arg.size();
      for (const WireRecord& r : records) n += 8 + 4 + r.value.size();
      break;
    case MsgType::kDeadSite:
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kReconstructRequest:
    case MsgType::kRebuild:
    case MsgType::kRebuildDone:
      n += 8 + 4;
      break;
    case MsgType::kRecoveryTick:
      // A self-addressed virtual timer, scheduled off the accounting path;
      // the size only matters if one is ever sent as a real message.
      n += 8;
      break;
  }
  if (has_iam) n += 12;
  return n;
}

Bytes Message::Encode() const {
  WireWriter w;
  w.WriteU8(static_cast<uint8_t>(type));
  w.WriteU32(from);
  w.WriteU32(to);
  w.WriteU64(request_id);
  w.WriteU32(reply_to);
  w.WriteU32(hops);
  w.WriteU64(key);
  w.WriteLengthPrefixed(value);
  w.WriteBool(found);
  w.WriteBool(has_iam);
  w.WriteU32(iam_level);
  w.WriteU64(iam_address);
  w.WriteU64(filter_id);
  w.WriteLengthPrefixed(filter_arg);
  w.WriteU32(assumed_level);
  w.WriteU32(static_cast<uint32_t>(records.size()));
  for (const WireRecord& r : records) {
    w.WriteU64(r.key);
    w.WriteLengthPrefixed(r.value);
  }
  w.WriteU64(bucket_to_split);
  w.WriteU32(new_level);
  w.WriteU64(trace_id);
  return w.TakeBuffer();
}

Result<Message> Message::Decode(ByteSpan data) {
  WireReader r(data);
  Message m;
  ESSDDS_ASSIGN_OR_RETURN(const uint8_t type_byte, r.ReadU8());
  if (type_byte > static_cast<uint8_t>(MsgType::kRecoveryTick)) {
    return Status::Corruption("message type out of range");
  }
  m.type = static_cast<MsgType>(type_byte);
  ESSDDS_ASSIGN_OR_RETURN(m.from, r.ReadU32());
  ESSDDS_ASSIGN_OR_RETURN(m.to, r.ReadU32());
  ESSDDS_ASSIGN_OR_RETURN(m.request_id, r.ReadU64());
  ESSDDS_ASSIGN_OR_RETURN(m.reply_to, r.ReadU32());
  ESSDDS_ASSIGN_OR_RETURN(m.hops, r.ReadU32());
  ESSDDS_ASSIGN_OR_RETURN(m.key, r.ReadU64());
  ESSDDS_ASSIGN_OR_RETURN(ByteSpan value, r.ReadLengthPrefixed());
  m.value.assign(value.begin(), value.end());
  ESSDDS_ASSIGN_OR_RETURN(m.found, r.ReadBool());
  ESSDDS_ASSIGN_OR_RETURN(m.has_iam, r.ReadBool());
  ESSDDS_ASSIGN_OR_RETURN(m.iam_level, r.ReadU32());
  ESSDDS_ASSIGN_OR_RETURN(m.iam_address, r.ReadU64());
  ESSDDS_ASSIGN_OR_RETURN(m.filter_id, r.ReadU64());
  ESSDDS_ASSIGN_OR_RETURN(ByteSpan filter_arg, r.ReadLengthPrefixed());
  m.filter_arg.assign(filter_arg.begin(), filter_arg.end());
  ESSDDS_ASSIGN_OR_RETURN(m.assumed_level, r.ReadU32());
  // Every record needs >= 12 bytes (key + value length prefix).
  ESSDDS_ASSIGN_OR_RETURN(const uint32_t num_records, r.ReadCount(12));
  m.records.reserve(num_records);
  for (uint32_t i = 0; i < num_records; ++i) {
    WireRecord rec;
    ESSDDS_ASSIGN_OR_RETURN(rec.key, r.ReadU64());
    ESSDDS_ASSIGN_OR_RETURN(ByteSpan rec_value, r.ReadLengthPrefixed());
    rec.value.assign(rec_value.begin(), rec_value.end());
    m.records.push_back(std::move(rec));
  }
  ESSDDS_ASSIGN_OR_RETURN(m.bucket_to_split, r.ReadU64());
  ESSDDS_ASSIGN_OR_RETURN(m.new_level, r.ReadU32());
  // Compatible extension: the trace id trails the legacy layout. An
  // encoding that ends here is the pre-observability format (trace_id 0);
  // anything else must be exactly the 8-byte id.
  if (r.remaining() > 0) {
    ESSDDS_ASSIGN_OR_RETURN(m.trace_id, r.ReadU64());
  }
  ESSDDS_RETURN_IF_ERROR(r.ExpectEnd());
  return m;
}

}  // namespace essdds::sdds
