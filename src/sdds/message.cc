#include "sdds/message.h"

namespace essdds::sdds {

std::string_view MsgTypeToString(MsgType t) {
  switch (t) {
    case MsgType::kInsert:
      return "Insert";
    case MsgType::kLookup:
      return "Lookup";
    case MsgType::kDelete:
      return "Delete";
    case MsgType::kInsertAck:
      return "InsertAck";
    case MsgType::kLookupReply:
      return "LookupReply";
    case MsgType::kDeleteAck:
      return "DeleteAck";
    case MsgType::kScan:
      return "Scan";
    case MsgType::kScanReply:
      return "ScanReply";
    case MsgType::kOverflow:
      return "Overflow";
    case MsgType::kSplit:
      return "Split";
    case MsgType::kMoveRecords:
      return "MoveRecords";
    case MsgType::kSplitDone:
      return "SplitDone";
    case MsgType::kUnderflow:
      return "Underflow";
    case MsgType::kMerge:
      return "Merge";
    case MsgType::kMergeRecords:
      return "MergeRecords";
    case MsgType::kMergeDone:
      return "MergeDone";
  }
  return "Unknown";
}

size_t Message::AccountedBytes() const {
  // Header: type(1) + from(4) + to(4) + request_id(8) + hops(1).
  size_t n = 18;
  switch (type) {
    case MsgType::kInsert:
      n += 8 + value.size();
      break;
    case MsgType::kLookup:
    case MsgType::kDelete:
      n += 8;
      break;
    case MsgType::kLookupReply:
      n += 8 + 1 + value.size();
      break;
    case MsgType::kInsertAck:
    case MsgType::kDeleteAck:
      n += 8 + 1;
      break;
    case MsgType::kScan:
      n += 8 + filter_arg.size() + 4;
      break;
    case MsgType::kScanReply:
      for (const WireRecord& r : records) n += 8 + r.value.size();
      break;
    case MsgType::kOverflow:
    case MsgType::kSplit:
    case MsgType::kSplitDone:
    case MsgType::kUnderflow:
    case MsgType::kMerge:
    case MsgType::kMergeDone:
      n += 8 + 4;
      break;
    case MsgType::kMoveRecords:
    case MsgType::kMergeRecords:
      n += 4;
      for (const WireRecord& r : records) n += 8 + r.value.size();
      break;
  }
  if (has_iam) n += 12;
  return n;
}

}  // namespace essdds::sdds
