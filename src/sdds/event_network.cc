#include "sdds/event_network.h"

#include <algorithm>
#include <utility>

namespace essdds::sdds {

bool FaultEligible(MsgType type) {
  switch (type) {
    case MsgType::kInsert:
    case MsgType::kLookup:
    case MsgType::kDelete:
    case MsgType::kInsertAck:
    case MsgType::kLookupReply:
    case MsgType::kDeleteAck:
    case MsgType::kDeadSite:
      return true;
    default:
      return false;
  }
}

bool ProtocolReliable(MsgType type) {
  switch (type) {
    case MsgType::kOverflow:
    case MsgType::kSplit:
    case MsgType::kMoveRecords:
    case MsgType::kSplitDone:
    case MsgType::kUnderflow:
    case MsgType::kMerge:
    case MsgType::kMergeRecords:
    case MsgType::kMergeDone:
    case MsgType::kParityUpdate:
    case MsgType::kPing:
    case MsgType::kPong:
    case MsgType::kReconstructRequest:
    case MsgType::kReconstructSlice:
    case MsgType::kRebuild:
    case MsgType::kRebuildDone:
      return true;
    default:
      return false;
  }
}

EventNetwork::EventNetwork(EventNetworkOptions options)
    : options_(options), rng_(options.seed) {
  ESSDDS_CHECK(options_.min_latency_us <= options_.max_latency_us)
      << "latency range inverted";
  ESSDDS_CHECK(options_.drop_prob >= 0.0 && options_.drop_prob < 1.0)
      << "drop probability must be in [0, 1)";
  ESSDDS_CHECK(options_.duplicate_prob >= 0.0 && options_.duplicate_prob <= 1.0)
      << "duplicate probability must be in [0, 1]";
  ESSDDS_CHECK(options_.protocol_drop_prob >= 0.0 &&
               options_.protocol_drop_prob < 1.0)
      << "protocol drop probability must be in [0, 1)";
  ESSDDS_CHECK(options_.protocol_duplicate_prob >= 0.0 &&
               options_.protocol_duplicate_prob <= 1.0)
      << "protocol duplicate probability must be in [0, 1]";
  ESSDDS_CHECK(options_.ack_timeout_us > 0) << "ack timeout must be positive";
}

SiteId EventNetwork::Register(Site* site) {
  ESSDDS_CHECK(site != nullptr);
  sites_.push_back(site);
  paused_.push_back(false);
  killed_.push_back(false);
  parked_.emplace_back();
  dead_letter_.emplace_back();
  return static_cast<SiteId>(sites_.size() - 1);
}

SiteId EventNetwork::Resolve(SiteId site) const {
  // The chain is acyclic by construction (a redirect always points at a
  // strictly newer site), so this terminates; the bound is a corruption
  // backstop.
  size_t steps = 0;
  auto it = redirect_.find(site);
  while (it != redirect_.end()) {
    site = it->second;
    it = redirect_.find(site);
    ESSDDS_CHECK(++steps <= redirect_.size()) << "redirect cycle";
  }
  return site;
}

uint64_t EventNetwork::DeliveryTime(SiteId from, SiteId to) {
  const uint64_t span =
      uint64_t{options_.max_latency_us} - options_.min_latency_us;
  uint64_t t = now_us_ + options_.min_latency_us +
               (span > 0 ? rng_.Uniform(span + 1) : 0);
  if (options_.fifo_links) {
    uint64_t& clock = link_clock_[{from, to}];
    t = std::max(t, clock);
    clock = t;
  }
  return t;
}

void EventNetwork::PushEvent(Event ev) {
  ev.seq = next_seq_++;
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void EventNetwork::ScheduleMessage(Message msg) {
  Event ev;
  ev.time_us = DeliveryTime(msg.from, msg.to);
  ev.msg = std::move(msg);
  PushEvent(std::move(ev));
}

void EventNetwork::ScheduleTimer(Message msg, uint64_t delay_us) {
  Event ev;
  ev.time_us = now_us_ + delay_us;
  ev.kind = EvKind::kTimer;
  ev.msg = std::move(msg);
  PushEvent(std::move(ev));
}

void EventNetwork::Send(Message msg) {
  ESSDDS_CHECK(msg.to < sites_.size())
      << "send to unregistered site " << msg.to;
  Account(msg);

  const uint64_t ordinal = ++sends_of_type_[msg.type];
  auto scripted = scripted_drops_.find(msg.type);
  if (scripted != scripted_drops_.end()) {
    auto& ordinals = scripted->second;
    auto hit = std::find(ordinals.begin(), ordinals.end(), ordinal);
    if (hit != ordinals.end()) {
      ordinals.erase(hit);
      ++stats_.dropped_messages;
      TraceHop(obs::HopKind::kDrop, msg);
      return;
    }
  }

  if (options_.protocol_faults && ProtocolReliable(msg.type)) {
    SendReliable(std::move(msg));
    return;
  }

  const bool eligible = FaultEligible(msg.type);
  if (eligible && options_.drop_prob > 0.0 &&
      rng_.Bernoulli(options_.drop_prob)) {
    ++stats_.dropped_messages;
    TraceHop(obs::HopKind::kDrop, msg);
    return;
  }
  if (eligible && options_.duplicate_prob > 0.0 &&
      rng_.Bernoulli(options_.duplicate_prob)) {
    ++stats_.duplicated_messages;
    TraceHop(obs::HopKind::kDuplicate, msg);
    ScheduleMessage(msg);  // the extra copy; charged only to duplicated_
  }
  ScheduleMessage(std::move(msg));
}

// --- reliable link layer ---

void EventNetwork::SendReliable(Message msg) {
  const SiteId from = msg.from;
  const SiteId to = msg.to;
  LinkState& link = links_[{from, to}];
  const uint64_t seq = link.next_send_seq++;
  PendingFrame pending;
  pending.msg = std::move(msg);
  link.unacked.emplace(seq, std::move(pending));
  TransmitFrame(from, to, seq);
  ScheduleRtxCheck(from, to, seq);
}

void EventNetwork::TransmitFrame(SiteId from, SiteId to, uint64_t seq) {
  auto link_it = links_.find({from, to});
  ESSDDS_CHECK(link_it != links_.end());
  auto pending_it = link_it->second.unacked.find(seq);
  ESSDDS_CHECK(pending_it != link_it->second.unacked.end());
  const Message& msg = pending_it->second.msg;

  if (options_.protocol_drop_prob > 0.0 &&
      rng_.Bernoulli(options_.protocol_drop_prob)) {
    ++stats_.dropped_messages;
    TraceHop(obs::HopKind::kDrop, msg);
    return;  // the retransmission timer recovers
  }
  if (options_.protocol_duplicate_prob > 0.0 &&
      rng_.Bernoulli(options_.protocol_duplicate_prob)) {
    ++stats_.duplicated_messages;
    TraceHop(obs::HopKind::kDuplicate, msg);
    Event dup;
    dup.time_us = DeliveryTime(from, to);
    dup.a = from;
    dup.b = to;
    dup.frame_seq = seq;
    dup.msg = msg;
    PushEvent(std::move(dup));
  }
  Event ev;
  ev.time_us = DeliveryTime(from, to);
  ev.a = from;
  ev.b = to;
  ev.frame_seq = seq;
  ev.msg = msg;
  PushEvent(std::move(ev));
}

void EventNetwork::ScheduleRtxCheck(SiteId from, SiteId to, uint64_t seq) {
  Event ev;
  ev.time_us = now_us_ + options_.ack_timeout_us;
  ev.kind = EvKind::kRtxCheck;
  ev.a = from;
  ev.b = to;
  ev.frame_seq = seq;
  PushEvent(std::move(ev));
}

void EventNetwork::HandleRtxCheck(const Event& ev) {
  auto link_it = links_.find({ev.a, ev.b});
  if (link_it == links_.end()) return;
  auto pending_it = link_it->second.unacked.find(ev.frame_seq);
  if (pending_it == link_it->second.unacked.end()) return;  // acked
  PendingFrame& pending = pending_it->second;
  if (pending.parked_dead) return;  // waits for RedirectSite
  if (killed_[Resolve(ev.b)]) {
    // The destination died while the frame (or its ack) was in flight:
    // stop the timer chain and wait for the rebuilt site.
    pending.parked_dead = true;
    TraceHop(obs::HopKind::kPark, pending.msg);
    return;
  }
  ++pending.retransmits;
  ESSDDS_CHECK(pending.retransmits <= options_.max_frame_retransmits)
      << "frame to live site " << ev.b << " exceeded "
      << options_.max_frame_retransmits << " retransmits";
  ++stats_.retransmitted_frames;
  TraceHop(obs::HopKind::kRetry, pending.msg);
  TransmitFrame(ev.a, ev.b, ev.frame_seq);
  ScheduleRtxCheck(ev.a, ev.b, ev.frame_seq);
}

void EventNetwork::DeliverNow(Message& msg, SiteId dest) {
  msg.to = dest;  // redirects rewrite the address the handler sees
  TraceHop(obs::HopKind::kDeliver, msg);
  sites_[dest]->OnMessage(msg, *this);
}

void EventNetwork::DeliverReliable(Event ev) {
  const SiteId dest = Resolve(ev.msg.to);
  LinkState& link = links_[{ev.a, ev.b}];
  if (killed_[dest]) {
    // Keep the frame in sender-side link state; RedirectSite resends it to
    // the rebuilt site. The physical copy is dropped (a killed site reads
    // nothing), so nothing replays out of the dead-letter queue twice.
    auto pending_it = link.unacked.find(ev.frame_seq);
    if (pending_it != link.unacked.end()) {
      pending_it->second.parked_dead = true;
      TraceHop(obs::HopKind::kPark, ev.msg);
    }
    return;
  }
  if (paused_[dest]) {
    // Parking is lossless (ResumeSite replays), so the park IS the
    // delivery as far as the ack layer is concerned: ack now, stop the
    // retransmission chain, and let the resume-time delivery dedup.
    link.unacked.erase(ev.frame_seq);
    TraceHop(obs::HopKind::kPark, ev.msg);
    parked_[dest].push_back(std::move(ev));
    return;
  }

  // Ack travels the reverse link and may itself be dropped — the sender
  // then retransmits and the sequence check below discards the duplicate.
  ++stats_.link_acks;
  if (!(options_.protocol_drop_prob > 0.0 &&
        rng_.Bernoulli(options_.protocol_drop_prob))) {
    Event ack;
    ack.time_us = DeliveryTime(ev.b, ev.a);
    ack.kind = EvKind::kAck;
    ack.a = ev.a;
    ack.b = ev.b;
    ack.frame_seq = ev.frame_seq;
    PushEvent(std::move(ack));
  }

  if (ev.frame_seq < link.next_recv_seq) {
    TraceHop(obs::HopKind::kStale, ev.msg);  // duplicate of a delivered frame
    return;
  }
  if (ev.frame_seq > link.next_recv_seq) {
    link.reorder.emplace(ev.frame_seq, std::move(ev.msg));  // hold for order
    return;
  }
  ++link.next_recv_seq;
  DeliverNow(ev.msg, dest);
  // Drain any successors that arrived early.
  auto next = link.reorder.find(link.next_recv_seq);
  while (next != link.reorder.end()) {
    Message held = std::move(next->second);
    link.reorder.erase(next);
    ++link.next_recv_seq;
    DeliverNow(held, Resolve(held.to));
    next = link.reorder.find(link.next_recv_seq);
  }
}

bool EventNetwork::Pump() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_us_ = std::max(now_us_, ev.time_us);

  switch (ev.kind) {
    case EvKind::kResume:
      ResumeSite(ev.resume_site);
      return true;
    case EvKind::kAck:
      links_[{ev.a, ev.b}].unacked.erase(ev.frame_seq);
      return true;
    case EvKind::kRtxCheck:
      HandleRtxCheck(ev);
      return true;
    case EvKind::kTimer: {
      const SiteId dest = Resolve(ev.msg.to);
      if (killed_[dest]) return true;  // a dead site's timers die with it
      if (paused_[dest]) {
        parked_[dest].push_back(std::move(ev));
        return true;
      }
      DeliverNow(ev.msg, dest);
      return true;
    }
    case EvKind::kDeliver:
      break;
  }

  if (ev.frame_seq > 0) {
    DeliverReliable(std::move(ev));
    return true;
  }
  const SiteId dest = Resolve(ev.msg.to);
  if (killed_[dest]) {
    TraceHop(obs::HopKind::kPark, ev.msg);
    dead_letter_[dest].push_back(std::move(ev.msg));
    return true;
  }
  if (paused_[dest]) {
    TraceHop(obs::HopKind::kPark, ev.msg);
    parked_[dest].push_back(std::move(ev));
    return true;
  }
  // Deferred scan mode: a delivery may enqueue a ScanTask instead of
  // answering inline. A kScan parked at a paused bucket can replay here
  // long after its initiator drained the batch — the task then waits in
  // the pending queue until the next drain, and the bucket resolves it
  // against pre-mutation content before any record-map change, so the
  // (eventually stale) reply still carries the hits the serial mode would
  // have produced at this delivery.
  DeliverNow(ev.msg, dest);
  return true;
}

size_t EventNetwork::parked_messages() const {
  size_t n = 0;
  for (const auto& p : parked_) n += p.size();
  return n;
}

size_t EventNetwork::dead_letter_messages() const {
  size_t n = 0;
  for (const auto& p : dead_letter_) n += p.size();
  return n;
}

void EventNetwork::PauseSite(SiteId site) {
  ESSDDS_CHECK(site < sites_.size());
  ESSDDS_CHECK(!killed_[site]) << "cannot pause a killed site";
  paused_[site] = true;
}

void EventNetwork::PauseSite(SiteId site, uint64_t duration_us) {
  PauseSite(site);
  Event resume;
  resume.time_us = now_us_ + duration_us;
  resume.kind = EvKind::kResume;
  resume.resume_site = site;
  PushEvent(std::move(resume));
}

void EventNetwork::ResumeSite(SiteId site) {
  ESSDDS_CHECK(site < sites_.size());
  paused_[site] = false;
  std::vector<Event> held = std::move(parked_[site]);
  parked_[site].clear();
  for (Event& ev : held) {
    TraceHop(obs::HopKind::kReplay, ev.msg);
    if (ev.kind == EvKind::kTimer) {
      ev.time_us = now_us_;
      PushEvent(std::move(ev));
    } else if (ev.frame_seq > 0) {
      // Replayed reliable frame: keep its link identity and sequence (it
      // was already acked at park time), redraw only the latency.
      ev.time_us = DeliveryTime(ev.a, ev.b);
      PushEvent(std::move(ev));
    } else {
      ScheduleMessage(std::move(ev.msg));
    }
  }
}

void EventNetwork::KillSite(SiteId site) {
  ESSDDS_CHECK(site < sites_.size());
  ESSDDS_CHECK(!paused_[site]) << "kill of a paused site is unsupported";
  killed_[site] = true;
}

void EventNetwork::RedirectSite(SiteId from, SiteId to) {
  ESSDDS_CHECK(from < sites_.size() && to < sites_.size());
  ESSDDS_CHECK(killed_[from]) << "only killed sites can be redirected";
  ESSDDS_CHECK(!killed_[Resolve(to)]) << "redirect target is dead";
  redirect_[from] = to;

  // Everything that parked while the site was dead now flows to the
  // rebuilt successor: dead letters replay with fresh latencies...
  std::vector<Message> held = std::move(dead_letter_[from]);
  dead_letter_[from].clear();
  for (Message& msg : held) {
    TraceHop(obs::HopKind::kReplay, msg);
    ScheduleMessage(std::move(msg));  // msg.to re-resolves at delivery
  }
  // ...and reliable frames that were waiting on a dead destination
  // retransmit (the redirect may have revived destinations reached through
  // chains, so re-check every parked frame).
  for (auto& [key, link] : links_) {
    for (auto& [seq, pending] : link.unacked) {
      if (!pending.parked_dead) continue;
      if (killed_[Resolve(key.second)]) continue;
      pending.parked_dead = false;
      ++stats_.retransmitted_frames;
      TraceHop(obs::HopKind::kRetry, pending.msg);
      TransmitFrame(key.first, key.second, seq);
      ScheduleRtxCheck(key.first, key.second, seq);
    }
  }
}

bool EventNetwork::HasInFlightFrom(SiteId site) const {
  for (const Event& ev : heap_) {
    if (ev.kind == EvKind::kDeliver && ev.msg.from == site) return true;
  }
  for (const auto& p : parked_) {
    for (const Event& ev : p) {
      if (ev.kind == EvKind::kDeliver && ev.msg.from == site) return true;
    }
  }
  for (const auto& [key, link] : links_) {
    if (key.first != site) continue;
    for (const auto& [seq, pending] : link.unacked) {
      if (!pending.parked_dead) return true;
    }
  }
  return false;
}

void EventNetwork::ScriptDrop(MsgType type, uint64_t occurrence) {
  ESSDDS_CHECK(occurrence > 0) << "occurrences are 1-based";
  scripted_drops_[type].push_back(sends_of_type_[type] + occurrence);
}

}  // namespace essdds::sdds
