#include "sdds/event_network.h"

#include <algorithm>
#include <utility>

namespace essdds::sdds {

bool FaultEligible(MsgType type) {
  switch (type) {
    case MsgType::kInsert:
    case MsgType::kLookup:
    case MsgType::kDelete:
    case MsgType::kInsertAck:
    case MsgType::kLookupReply:
    case MsgType::kDeleteAck:
      return true;
    default:
      return false;
  }
}

EventNetwork::EventNetwork(EventNetworkOptions options)
    : options_(options), rng_(options.seed) {
  ESSDDS_CHECK(options_.min_latency_us <= options_.max_latency_us)
      << "latency range inverted";
  ESSDDS_CHECK(options_.drop_prob >= 0.0 && options_.drop_prob < 1.0)
      << "drop probability must be in [0, 1)";
  ESSDDS_CHECK(options_.duplicate_prob >= 0.0 && options_.duplicate_prob <= 1.0)
      << "duplicate probability must be in [0, 1]";
}

SiteId EventNetwork::Register(Site* site) {
  ESSDDS_CHECK(site != nullptr);
  sites_.push_back(site);
  paused_.push_back(false);
  parked_.emplace_back();
  return static_cast<SiteId>(sites_.size() - 1);
}

uint64_t EventNetwork::DeliveryTime(SiteId from, SiteId to) {
  const uint64_t span =
      uint64_t{options_.max_latency_us} - options_.min_latency_us;
  uint64_t t = now_us_ + options_.min_latency_us +
               (span > 0 ? rng_.Uniform(span + 1) : 0);
  if (options_.fifo_links) {
    uint64_t& clock = link_clock_[{from, to}];
    t = std::max(t, clock);
    clock = t;
  }
  return t;
}

void EventNetwork::PushEvent(Event ev) {
  ev.seq = next_seq_++;
  heap_.push_back(std::move(ev));
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
}

void EventNetwork::ScheduleMessage(Message msg) {
  Event ev;
  ev.time_us = DeliveryTime(msg.from, msg.to);
  ev.msg = std::move(msg);
  PushEvent(std::move(ev));
}

void EventNetwork::Send(Message msg) {
  ESSDDS_CHECK(msg.to < sites_.size())
      << "send to unregistered site " << msg.to;
  Account(msg);

  const uint64_t ordinal = ++sends_of_type_[msg.type];
  auto scripted = scripted_drops_.find(msg.type);
  if (scripted != scripted_drops_.end()) {
    auto& ordinals = scripted->second;
    auto hit = std::find(ordinals.begin(), ordinals.end(), ordinal);
    if (hit != ordinals.end()) {
      ordinals.erase(hit);
      ++stats_.dropped_messages;
      TraceHop(obs::HopKind::kDrop, msg);
      return;
    }
  }

  const bool eligible = FaultEligible(msg.type);
  if (eligible && options_.drop_prob > 0.0 &&
      rng_.Bernoulli(options_.drop_prob)) {
    ++stats_.dropped_messages;
    TraceHop(obs::HopKind::kDrop, msg);
    return;
  }
  if (eligible && options_.duplicate_prob > 0.0 &&
      rng_.Bernoulli(options_.duplicate_prob)) {
    ++stats_.duplicated_messages;
    TraceHop(obs::HopKind::kDuplicate, msg);
    ScheduleMessage(msg);  // the extra copy; charged only to duplicated_
  }
  ScheduleMessage(std::move(msg));
}

bool EventNetwork::Pump() {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  now_us_ = std::max(now_us_, ev.time_us);

  if (ev.is_resume) {
    ResumeSite(ev.resume_site);
    return true;
  }
  const SiteId dest = ev.msg.to;
  if (paused_[dest]) {
    TraceHop(obs::HopKind::kPark, ev.msg);
    parked_[dest].push_back(std::move(ev.msg));
    return true;
  }
  // Deferred scan mode: a delivery may enqueue a ScanTask instead of
  // answering inline. A kScan parked at a paused bucket can replay here
  // long after its initiator drained the batch — the task then waits in
  // the pending queue until the next drain, and the bucket resolves it
  // against pre-mutation content before any record-map change, so the
  // (eventually stale) reply still carries the hits the serial mode would
  // have produced at this delivery.
  TraceHop(obs::HopKind::kDeliver, ev.msg);
  sites_[dest]->OnMessage(ev.msg, *this);
  return true;
}

size_t EventNetwork::parked_messages() const {
  size_t n = 0;
  for (const auto& p : parked_) n += p.size();
  return n;
}

void EventNetwork::PauseSite(SiteId site) {
  ESSDDS_CHECK(site < sites_.size());
  paused_[site] = true;
}

void EventNetwork::PauseSite(SiteId site, uint64_t duration_us) {
  PauseSite(site);
  Event resume;
  resume.time_us = now_us_ + duration_us;
  resume.is_resume = true;
  resume.resume_site = site;
  PushEvent(std::move(resume));
}

void EventNetwork::ResumeSite(SiteId site) {
  ESSDDS_CHECK(site < sites_.size());
  paused_[site] = false;
  std::vector<Message> held = std::move(parked_[site]);
  parked_[site].clear();
  for (Message& msg : held) {
    TraceHop(obs::HopKind::kReplay, msg);
    ScheduleMessage(std::move(msg));
  }
}

void EventNetwork::ScriptDrop(MsgType type, uint64_t occurrence) {
  ESSDDS_CHECK(occurrence > 0) << "occurrences are 1-based";
  scripted_drops_[type].push_back(sends_of_type_[type] + occurrence);
}

}  // namespace essdds::sdds
