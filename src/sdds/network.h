#ifndef ESSDDS_SDDS_NETWORK_H_
#define ESSDDS_SDDS_NETWORK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sdds/message.h"
#include "util/logging.h"

namespace essdds::sdds {

class SimNetwork;

/// A node of the simulated multicomputer. Concrete sites are LH* bucket
/// servers, the split coordinator, and clients.
class Site {
 public:
  virtual ~Site() = default;

  /// Handles one delivered message. The site may send further messages
  /// through `net` (delivery is synchronous and re-entrant).
  virtual void OnMessage(const Message& msg, SimNetwork& net) = 0;
};

/// Per-network traffic statistics. The paper's performance story for SDDS
/// is counted in messages, not wall-clock time; this is what the simulator
/// measures.
struct NetworkStats {
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t forwarded_messages = 0;  // messages with hops > 0
  std::map<MsgType, uint64_t> per_type;

  std::string ToString() const;
};

/// Single-process simulation of a multicomputer: every site has an id;
/// Send() delivers synchronously to the destination's OnMessage and accounts
/// the traffic. Not thread-safe; the simulation is single-threaded by
/// design (determinism).
class SimNetwork {
 public:
  SimNetwork() = default;

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a site and returns its id. The site must outlive the
  /// network.
  SiteId Register(Site* site);

  /// Delivers `msg` to msg.to, charging the traffic counters. Delivery is
  /// synchronous: the destination's OnMessage runs before Send returns.
  void Send(Message msg);

  /// Number of registered sites.
  size_t site_count() const { return sites_.size(); }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

 private:
  std::vector<Site*> sites_;
  NetworkStats stats_;
  int delivery_depth_ = 0;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_NETWORK_H_
