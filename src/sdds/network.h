#ifndef ESSDDS_SDDS_NETWORK_H_
#define ESSDDS_SDDS_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sdds/message.h"
#include "sdds/scan_executor.h"
#include "util/logging.h"

namespace essdds::sdds {

class Network;

/// A node of the simulated multicomputer. Concrete sites are LH* bucket
/// servers, the split coordinator, and clients.
class Site {
 public:
  virtual ~Site() = default;

  /// Handles one delivered message. The site may send further messages
  /// through `net` (on a synchronous network delivery is re-entrant; on an
  /// event network the sends are scheduled and delivered by later Pump()
  /// calls). The network owns `msg` for the duration of the delivery: the
  /// handler may move out of its payload fields (bulk record transfers do,
  /// to avoid deep copies).
  virtual void OnMessage(Message& msg, Network& net) = 0;
};

/// Per-network traffic statistics. The paper's performance story for SDDS
/// is counted in messages, not wall-clock time; this is what the simulator
/// measures.
///
/// Accounting under fault injection: `total_messages`/`total_bytes`/
/// `per_type` count every protocol send exactly once — a message the
/// network then drops stays counted (it was sent; `dropped_messages` says
/// what never arrived), while the extra copy of a duplicated message is
/// counted ONLY in `duplicated_messages` (a simulator artifact, not a
/// protocol send). Client retransmissions are real protocol sends: they
/// appear in the totals and additionally in `retried_messages`, so
/// `total_messages - retried_messages` stays comparable to a fault-free
/// run.
struct NetworkStats {
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t forwarded_messages = 0;  // messages with hops > 0
  uint64_t dropped_messages = 0;     // sends the network discarded (faults)
  uint64_t duplicated_messages = 0;  // extra fault copies (not in totals)
  uint64_t retried_messages = 0;     // client retransmissions (in totals)
  // Reliable link layer (EventNetwork protocol_faults): frame resends and
  // receiver acks. Neither is in the totals — a production transport hides
  // both below the messaging API, and totals must stay comparable to a
  // fault-free run.
  uint64_t retransmitted_frames = 0;
  uint64_t link_acks = 0;
  std::map<MsgType, uint64_t> per_type;

  /// Human-readable report: headline counters on the first line, then the
  /// per-type breakdown as aligned columns in wire-enum order. Fault
  /// counters appear only when any fired, so fault-free output stays terse.
  std::string ToString() const;

  /// Machine-readable form of the same numbers (used by the shell's
  /// --metrics export and the benches).
  std::string ToJson() const;

  friend bool operator==(const NetworkStats&, const NetworkStats&) = default;
};

/// The delivery contract every simulated multicomputer implements: sites
/// register, Send() accounts the traffic and (eventually) invokes the
/// destination's OnMessage, and the deferred scan batch runs off the
/// messaging path. Two implementations exist: the synchronous SimNetwork
/// below (Send delivers re-entrantly before returning — deterministic,
/// zero-latency) and the discrete-event EventNetwork (event_network.h:
/// seeded latency schedule, reordering, fault injection; deliveries happen
/// when the requester pumps).
class Network {
 public:
  Network() = default;
  virtual ~Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a site and returns its id. The site must outlive the
  /// network.
  virtual SiteId Register(Site* site) = 0;

  /// Accepts `msg` for delivery to msg.to, charging the traffic counters.
  /// Synchronous networks run the destination's OnMessage before returning;
  /// event networks schedule it.
  virtual void Send(Message msg) = 0;

  /// Delivers the next pending event, advancing virtual time; false when
  /// nothing is in flight. Synchronous networks are always idle: a request
  /// sender finds its reply waiting the moment Send returns.
  virtual bool Pump() { return false; }

  /// Delivers everything in flight (a quiescence barrier). No-op on
  /// synchronous networks.
  void PumpUntilIdle() {
    while (Pump()) {
    }
  }

  /// Virtual clock in microseconds; synchronous networks stay at 0.
  virtual uint64_t now_us() const { return 0; }

  /// Schedules `msg` for direct, fault-free delivery to msg.to after
  /// `delay_us` — a site-private timer (the recovery coordinator arms its
  /// probe and rebuild timeouts with these). Only meaningful where time
  /// advances; the synchronous base has no timeline to schedule on, and
  /// nothing that runs on it (no kills, no recovery) ever arms one.
  virtual void ScheduleTimer(Message msg, uint64_t delay_us) {
    (void)msg;
    (void)delay_us;
    ESSDDS_CHECK(false) << "timers require an event network";
  }

  /// True when delivery is scheduled rather than re-entrant — i.e. replies
  /// can be late, lost, or duplicated, and clients must keep retransmission
  /// state.
  virtual bool asynchronous() const { return false; }

  /// Number of registered sites.
  virtual size_t site_count() const = 0;

  const NetworkStats& stats() const { return stats_; }

  /// The one reset point for every observable number: the flat NetworkStats
  /// and the whole metric registry (counters, gauges, histograms) zero
  /// together, and the trace ring restarts, so phase-local measurements
  /// (e.g. between bench phases) never leak across the boundary. Instrument
  /// references cached by sites/clients stay valid.
  void ResetStats() {
    stats_ = NetworkStats{};
    metrics_.ResetAll();
    trace_.Clear();
  }

  // --- observability (src/obs) ---

  /// The network's metric registry and trace ring: one of each per
  /// simulated multicomputer, shared by every site, client, and the scan
  /// pool. Stateless no-op stubs when built with -DESSDDS_METRICS=OFF.
  obs::MetricRegistry& metrics() { return metrics_; }
  const obs::MetricRegistry& metrics() const { return metrics_; }
  obs::TraceRing& trace() { return trace_; }
  const obs::TraceRing& trace() const { return trace_; }

  /// Allocates the trace id for a new client operation. Always 0 with
  /// metrics compiled out: the wire field then stays at its untraced
  /// default, keeping encodings identical across ON/OFF builds.
  uint64_t NextTraceId() {
    return obs::kMetricsEnabled ? ++next_trace_id_ : 0;
  }

  /// Records one hop of `msg` in the trace ring at the current virtual
  /// time. Called on the driver thread only (network implementations at
  /// delivery/fault decisions, clients at op boundaries).
  void TraceHop(obs::HopKind kind, const Message& msg) {
    if (!obs::kMetricsEnabled) return;
    trace_.Record({now_us(), msg.trace_id, msg.request_id, msg.key, msg.from,
                   msg.to, static_cast<uint8_t>(msg.type), kind});
  }

  /// Human-readable causal dump of the ring, filtered to one trace id
  /// (0 = everything recorded).
  std::string TraceDump(uint64_t trace_id = 0) const;

  /// Called by clients when they retransmit a timed-out request (the resend
  /// itself goes through Send and is charged there).
  void NoteRetry() { ++stats_.retried_messages; }

  // --- deferred (parallel) scan mode ---

  /// Worker threads for scan evaluation; values <= 1 keep scans inline.
  /// Resizing discards the current pool (workers join); the next parallel
  /// scan starts a fresh one at the new size.
  void set_scan_threads(size_t threads) {
    scan_threads_ = threads;
    scan_pool_.reset();
  }
  size_t scan_threads() const { return scan_threads_; }

  /// Bucket record count above which a scan task is split into contiguous
  /// key-range shards evaluated concurrently (see LhOptions).
  void set_scan_shard_min_records(size_t n) { scan_shard_min_records_ = n; }
  size_t scan_shard_min_records() const { return scan_shard_min_records_; }

  /// True when bucket servers should defer scan evaluation to the batch.
  bool deferred_scan_mode() const { return scan_threads_ > 1; }

  /// Queues one bucket's scan evaluation (bucket servers, deferred mode).
  void EnqueueScanTask(ScanTask task);

  /// Evaluates all queued scan tasks on the persistent worker pool and
  /// sends their replies in ascending bucket order. Tasks belonging to the
  /// same scan — same filter, same argument — share one Prepare()d filter
  /// instance across all their buckets. Scan initiators call this after
  /// fanning out their kScan messages; a no-op when nothing is queued.
  void DrainDeferredScans();

  /// Evaluates the queued tasks of `bucket` immediately, on the calling
  /// thread. Bucket servers call this before mutating their record map: a
  /// queued task points into that map, so it must capture its hits while
  /// the content still matches what the serial inline mode saw at kScan
  /// delivery. The reply is kept and sent by the drain as usual, so
  /// traffic accounting is unchanged.
  void ResolveDeferredScans(uint64_t bucket);

  /// The network's persistent scan worker pool, created at scan_threads()
  /// size on first use. Workers start lazily on the first parallel batch.
  ScanWorkerPool& scan_pool();

 protected:
  /// Charges one protocol send to the counters (every implementation calls
  /// this exactly once per Send, before any fault decision).
  void Account(const Message& msg) {
    const uint64_t bytes = msg.AccountedBytes();
    stats_.total_messages++;
    stats_.total_bytes += bytes;
    stats_.per_type[msg.type]++;
    if (msg.hops > 0) stats_.forwarded_messages++;
    NoteSendMetrics(msg, bytes);
  }

  NetworkStats stats_;

 private:
  /// Metrics-side mirror of Account: per-site sent-message/byte counters
  /// (instrument references cached per site id, so steady-state sends never
  /// touch the registry's name map) plus the kSend trace hop. Compiles to
  /// nothing in an OFF build.
  void NoteSendMetrics(const Message& msg, uint64_t bytes);

  size_t scan_threads_ = 0;
  size_t scan_shard_min_records_ = 1024;
  std::vector<ScanTask> pending_scans_;
  std::unique_ptr<ScanWorkerPool> scan_pool_;

  obs::MetricRegistry metrics_;
  obs::TraceRing trace_;
  uint64_t next_trace_id_ = 0;
  // Cached per-site instruments, indexed by site id and grown lazily on
  // first send from that site.
  std::vector<obs::Counter*> site_msgs_sent_;
  std::vector<obs::Counter*> site_bytes_sent_;
};

/// Single-process simulation of a multicomputer: every site has an id;
/// Send() delivers synchronously to the destination's OnMessage and accounts
/// the traffic.
///
/// The messaging path is single-threaded by design (determinism). The one
/// concession to parallelism is the deferred scan mode: with scan_threads
/// set above 1, bucket servers enqueue their scan evaluations here instead
/// of evaluating inline, DrainDeferredScans() runs the batch on a worker
/// pool, and the completed replies are then sent serially in ascending
/// bucket order — so results and traffic accounting are identical to the
/// serial mode.
class SimNetwork final : public Network {
 public:
  SimNetwork() = default;

  SiteId Register(Site* site) override;

  /// Delivers `msg` to msg.to, charging the traffic counters. Delivery is
  /// synchronous: the destination's OnMessage runs before Send returns.
  void Send(Message msg) override;

  size_t site_count() const override { return sites_.size(); }

 private:
  std::vector<Site*> sites_;
  int delivery_depth_ = 0;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_NETWORK_H_
