#ifndef ESSDDS_SDDS_NETWORK_H_
#define ESSDDS_SDDS_NETWORK_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sdds/message.h"
#include "sdds/scan_executor.h"
#include "util/logging.h"

namespace essdds::sdds {

class SimNetwork;

/// A node of the simulated multicomputer. Concrete sites are LH* bucket
/// servers, the split coordinator, and clients.
class Site {
 public:
  virtual ~Site() = default;

  /// Handles one delivered message. The site may send further messages
  /// through `net` (delivery is synchronous and re-entrant). The network
  /// owns `msg` for the duration of the delivery: the handler may move out
  /// of its payload fields (bulk record transfers do, to avoid deep
  /// copies).
  virtual void OnMessage(Message& msg, SimNetwork& net) = 0;
};

/// Per-network traffic statistics. The paper's performance story for SDDS
/// is counted in messages, not wall-clock time; this is what the simulator
/// measures.
struct NetworkStats {
  uint64_t total_messages = 0;
  uint64_t total_bytes = 0;
  uint64_t forwarded_messages = 0;  // messages with hops > 0
  std::map<MsgType, uint64_t> per_type;

  std::string ToString() const;

  friend bool operator==(const NetworkStats&, const NetworkStats&) = default;
};

/// Single-process simulation of a multicomputer: every site has an id;
/// Send() delivers synchronously to the destination's OnMessage and accounts
/// the traffic.
///
/// The messaging path is single-threaded by design (determinism). The one
/// concession to parallelism is the deferred scan mode: with scan_threads
/// set above 1, bucket servers enqueue their scan evaluations here instead
/// of evaluating inline, DrainDeferredScans() runs the batch on a worker
/// pool, and the completed replies are then sent serially in ascending
/// bucket order — so results and traffic accounting are identical to the
/// serial mode.
class SimNetwork {
 public:
  SimNetwork() = default;

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Registers a site and returns its id. The site must outlive the
  /// network.
  SiteId Register(Site* site);

  /// Delivers `msg` to msg.to, charging the traffic counters. Delivery is
  /// synchronous: the destination's OnMessage runs before Send returns.
  void Send(Message msg);

  /// Number of registered sites.
  size_t site_count() const { return sites_.size(); }

  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }

  // --- deferred (parallel) scan mode ---

  /// Worker threads for scan evaluation; values <= 1 keep scans inline.
  void set_scan_threads(size_t threads) { scan_threads_ = threads; }
  size_t scan_threads() const { return scan_threads_; }

  /// True when bucket servers should defer scan evaluation to the batch.
  bool deferred_scan_mode() const { return scan_threads_ > 1; }

  /// Queues one bucket's scan evaluation (bucket servers, deferred mode).
  void EnqueueScanTask(ScanTask task);

  /// Evaluates all queued scan tasks (in parallel when configured) and
  /// sends their replies in ascending bucket order. Scan initiators call
  /// this after fanning out their kScan messages; a no-op when nothing is
  /// queued.
  void DrainDeferredScans();

 private:
  std::vector<Site*> sites_;
  NetworkStats stats_;
  int delivery_depth_ = 0;
  size_t scan_threads_ = 0;
  std::vector<ScanTask> pending_scans_;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_NETWORK_H_
