#include "sdds/rs_code.h"

#include <algorithm>
#include <utility>

#include "util/wire.h"

namespace essdds::sdds {

namespace {

const gf::GfField& Field() { return gf::GfField::Of(8); }

}  // namespace

RsCode::RsCode(int k, int m, gf::GfMatrix generator)
    : k_(k), m_(m), generator_(std::move(generator)) {}

Result<RsCode> RsCode::Create(int k, int m) {
  if (k < 1 || m < 1 || k + m > 256) {
    return Status::InvalidArgument("RS code needs 1<=k, 1<=m, k+m<=256");
  }
  const gf::GfField& f = Field();
  // Cauchy points: x_j = j for parity rows, y_i = m + i for data columns —
  // pairwise distinct, so every square submatrix of [I; C] is invertible.
  std::vector<uint32_t> x(m), y(k);
  for (int j = 0; j < m; ++j) x[j] = static_cast<uint32_t>(j);
  for (int i = 0; i < k; ++i) y[i] = static_cast<uint32_t>(m + i);
  ESSDDS_ASSIGN_OR_RETURN(gf::GfMatrix cauchy, gf::GfMatrix::Cauchy(f, x, y));

  gf::GfMatrix gen(f, static_cast<size_t>(k + m), static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) gen.Set(i, i, 1);
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < k; ++i) {
      gen.Set(static_cast<size_t>(k + j), static_cast<size_t>(i),
              cauchy.At(static_cast<size_t>(j), static_cast<size_t>(i)));
    }
  }
  return RsCode(k, m, std::move(gen));
}

Result<std::vector<Bytes>> RsCode::Encode(
    const std::vector<Bytes>& data) const {
  if (data.size() != static_cast<size_t>(k_)) {
    return Status::InvalidArgument("Encode expects exactly k data buffers");
  }
  size_t len = 0;
  for (const Bytes& d : data) len = std::max(len, d.size());

  const gf::GfField& f = Field();
  std::vector<Bytes> parity(static_cast<size_t>(m_), Bytes(len, 0));
  for (int j = 0; j < m_; ++j) {
    Bytes& out = parity[static_cast<size_t>(j)];
    for (int i = 0; i < k_; ++i) {
      const uint32_t coeff = generator_.At(static_cast<size_t>(k_ + j),
                                           static_cast<size_t>(i));
      const Bytes& src = data[static_cast<size_t>(i)];
      for (size_t b = 0; b < src.size(); ++b) {
        out[b] = static_cast<uint8_t>(f.Add(out[b], f.Mul(coeff, src[b])));
      }
    }
  }
  return parity;
}

Result<std::vector<Bytes>> RsCode::Decode(
    const std::vector<std::optional<Bytes>>& pieces) const {
  if (pieces.size() != static_cast<size_t>(k_ + m_)) {
    return Status::InvalidArgument("Decode expects k+m piece slots");
  }
  // Gather the first k surviving pieces, preferring data pieces (cheap
  // identity rows).
  std::vector<size_t> chosen;
  for (size_t i = 0; i < pieces.size() && chosen.size() < static_cast<size_t>(k_); ++i) {
    if (pieces[i].has_value()) chosen.push_back(i);
  }
  if (chosen.size() < static_cast<size_t>(k_)) {
    return Status::FailedPrecondition(
        "too many erasures: fewer than k pieces survive");
  }
  size_t len = 0;
  for (size_t i : chosen) len = std::max(len, pieces[i]->size());

  const gf::GfField& f = Field();
  gf::GfMatrix sub(f, static_cast<size_t>(k_), static_cast<size_t>(k_));
  for (size_t r = 0; r < static_cast<size_t>(k_); ++r) {
    for (size_t c = 0; c < static_cast<size_t>(k_); ++c) {
      sub.Set(r, c, generator_.At(chosen[r], c));
    }
  }
  ESSDDS_ASSIGN_OR_RETURN(gf::GfMatrix inv, sub.Inverse());

  // data[c] = sum_r inv[c][r] * piece[chosen[r]]  (byte-wise).
  std::vector<Bytes> data(static_cast<size_t>(k_), Bytes(len, 0));
  for (size_t c = 0; c < static_cast<size_t>(k_); ++c) {
    Bytes& out = data[c];
    for (size_t r = 0; r < static_cast<size_t>(k_); ++r) {
      const uint32_t coeff = inv.At(c, r);
      if (coeff == 0) continue;
      const Bytes& src = *pieces[chosen[r]];
      for (size_t b = 0; b < src.size(); ++b) {
        out[b] = static_cast<uint8_t>(f.Add(out[b], f.Mul(coeff, src[b])));
      }
    }
  }
  return data;
}

Bytes SerializeRecords(
    const std::vector<std::pair<uint64_t, Bytes>>& records) {
  WireWriter w;
  w.WriteU32(static_cast<uint32_t>(records.size()));
  for (const auto& [key, value] : records) {
    w.WriteU64(key);
    w.WriteLengthPrefixed(value);
  }
  return w.TakeBuffer();
}

Result<std::vector<std::pair<uint64_t, Bytes>>> DeserializeRecords(
    ByteSpan data) {
  WireReader r(data);
  // Each record occupies at least 12 header bytes; ReadCount rejects any
  // count the payload cannot account for before we reserve, so a ~100-byte
  // junk block can never demand a multi-gigabyte allocation (bad_alloc).
  ESSDDS_ASSIGN_OR_RETURN(const uint32_t count, r.ReadCount(12));
  std::vector<std::pair<uint64_t, Bytes>> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    ESSDDS_ASSIGN_OR_RETURN(const uint64_t key, r.ReadU64());
    ESSDDS_ASSIGN_OR_RETURN(ByteSpan value, r.ReadLengthPrefixed());
    out.emplace_back(key, Bytes(value.begin(), value.end()));
  }
  // No ExpectEnd: RS parity groups pad every block to the group's maximum
  // length, so a record block legitimately carries a zero tail.
  return out;
}

}  // namespace essdds::sdds
