#ifndef ESSDDS_SDDS_LH_CLIENT_H_
#define ESSDDS_SDDS_LH_CLIENT_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "sdds/lh_options.h"
#include "sdds/network.h"
#include "util/result.h"

namespace essdds::sdds {

/// An LH* client application view. Each client keeps its own, possibly
/// stale, image of the file extent; mis-addressed requests are forwarded by
/// the servers (at most two hops) and the client's image is repaired by the
/// piggybacked image adjustment messages (IAM). Clients never talk to the
/// coordinator — that is the SDDS autonomy property.
///
/// On an asynchronous (event) network the client additionally owns request
/// robustness: every key operation keeps a retransmission copy, pumps the
/// network until its reply arrives, and resends on timeout with bounded
/// exponential backoff. Retransmitted requests reuse their request id, so
/// whichever delivery answers first wins; late or duplicated replies to a
/// request already completed are discarded as stale (the operations are
/// idempotent at the servers, so re-execution is harmless).
class LhClient : public Site {
 public:
  /// Result of a parallel scan. Hits are in ascending (bucket, key) order —
  /// deterministic and identical between the serial and thread-pool scan
  /// modes.
  struct ScanResult {
    std::vector<WireRecord> hits;
    /// Number of buckets that answered (== true file extent at scan time).
    size_t buckets_answered = 0;
  };

  LhClient(LhRuntime* runtime, Network* net);

  void OnMessage(Message& msg, Network& net) override;

  /// Inserts or overwrites; returns true when an existing record was
  /// replaced.
  bool Insert(uint64_t key, Bytes value);

  /// Point lookup by key.
  Result<Bytes> Lookup(uint64_t key);

  /// Deletes; NotFound when the key did not exist.
  Status Delete(uint64_t key);

  /// Parallel scan: ships (filter_id, arg) to every bucket; each bucket
  /// evaluates the installed filter against its local records in parallel
  /// (simulated) and replies with its hits. On an event network the scan
  /// first quiesces in-flight restructuring (a split racing the fan-out
  /// could otherwise move records between two buckets after one was scanned
  /// and before the other), then pumps to completion; scan traffic itself
  /// is never dropped (see FaultEligible), so every live bucket answers.
  ScanResult Scan(uint64_t filter_id, Bytes filter_arg);

  const FileImage& image() const { return image_; }
  SiteId site() const { return site_; }

  /// Number of image adjustments this client has received (a measure of how
  /// often it was stale).
  uint64_t iam_count() const { return iam_count_; }

  /// Requests this client retransmitted after a timeout or a detected loss.
  uint64_t retry_count() const { return retry_count_; }

  /// Replies discarded because their request had already completed (late
  /// originals overtaken by a retry, or fault-injected duplicates).
  uint64_t stale_reply_count() const { return stale_reply_count_; }

  /// Trace id of the most recently started operation (0 with metrics
  /// compiled out). Tests use it to pull one op's causal hop chain out of
  /// the network's trace ring; the shell's `trace last` does the same.
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  /// LH* client addressing with the local image.
  uint64_t AddressFor(uint64_t key) const;

  /// Sends a key request and pumps the network until its reply arrives,
  /// retransmitting on timeout/loss (asynchronous networks). On a
  /// synchronous network the reply is already waiting when Send returns.
  Message RoundTrip(MsgType type, uint64_t key, Bytes value);

  void ApplyIam(const Message& reply);

  /// The latency histogram measuring `type` ops (client.{insert,lookup,
  /// delete}_us).
  obs::Histogram& LatencyHistogramFor(MsgType type);

  LhRuntime* runtime_;
  Network* net_;
  SiteId site_;
  FileImage image_;
  uint64_t next_request_id_ = 1;
  uint64_t iam_count_ = 0;
  uint64_t retry_count_ = 0;
  uint64_t stale_reply_count_ = 0;
  uint64_t last_trace_id_ = 0;

  // Cached instruments (resolved once at construction; see MetricRegistry's
  // thread contract). Latencies are in virtual microseconds, spanning first
  // send to accepted reply — retries, forwards, and parked deliveries all
  // happen inside the span. Shared registry-wide: several clients on one
  // network fold into the same distributions.
  obs::Histogram* insert_us_;
  obs::Histogram* lookup_us_;
  obs::Histogram* delete_us_;
  obs::Histogram* scan_us_;
  obs::Counter* retries_counter_;
  obs::Counter* stale_counter_;

  /// Request ids awaiting replies; anything else delivered here is stale.
  std::set<uint64_t> outstanding_;

  // Delivered replies park here until the requester picks them up; scans
  // accumulate several replies under one request id.
  std::map<uint64_t, std::vector<Message>> pending_;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_LH_CLIENT_H_
