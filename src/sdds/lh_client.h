#ifndef ESSDDS_SDDS_LH_CLIENT_H_
#define ESSDDS_SDDS_LH_CLIENT_H_

#include <cstdint>
#include <map>
#include <vector>

#include "sdds/lh_options.h"
#include "sdds/network.h"
#include "util/result.h"

namespace essdds::sdds {

/// An LH* client application view. Each client keeps its own, possibly
/// stale, image of the file extent; mis-addressed requests are forwarded by
/// the servers (at most two hops) and the client's image is repaired by the
/// piggybacked image adjustment messages (IAM). Clients never talk to the
/// coordinator — that is the SDDS autonomy property.
class LhClient : public Site {
 public:
  /// Result of a parallel scan. Hits are in ascending (bucket, key) order —
  /// deterministic and identical between the serial and thread-pool scan
  /// modes.
  struct ScanResult {
    std::vector<WireRecord> hits;
    /// Number of buckets that answered (== true file extent at scan time).
    size_t buckets_answered = 0;
  };

  LhClient(LhRuntime* runtime, SimNetwork* net);

  void OnMessage(Message& msg, SimNetwork& net) override;

  /// Inserts or overwrites; returns true when an existing record was
  /// replaced.
  bool Insert(uint64_t key, Bytes value);

  /// Point lookup by key.
  Result<Bytes> Lookup(uint64_t key);

  /// Deletes; NotFound when the key did not exist.
  Status Delete(uint64_t key);

  /// Parallel scan: ships (filter_id, arg) to every bucket; each bucket
  /// evaluates the installed filter against its local records in parallel
  /// (simulated) and replies with its hits.
  ScanResult Scan(uint64_t filter_id, Bytes filter_arg);

  const FileImage& image() const { return image_; }
  SiteId site() const { return site_; }

  /// Number of image adjustments this client has received (a measure of how
  /// often it was stale).
  uint64_t iam_count() const { return iam_count_; }

 private:
  /// LH* client addressing with the local image.
  uint64_t AddressFor(uint64_t key) const;

  /// Sends a key request and returns the (synchronously delivered) reply.
  Message RoundTrip(MsgType type, uint64_t key, Bytes value);

  void ApplyIam(const Message& reply);

  LhRuntime* runtime_;
  SimNetwork* net_;
  SiteId site_;
  FileImage image_;
  uint64_t next_request_id_ = 1;
  uint64_t iam_count_ = 0;

  // Synchronous delivery parks replies here until the requester picks them
  // up; scans accumulate several replies under one request id.
  std::map<uint64_t, std::vector<Message>> pending_;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_LH_CLIENT_H_
