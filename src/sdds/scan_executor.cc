#include "sdds/scan_executor.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "util/logging.h"

namespace essdds::sdds {

namespace {

/// Aborts if the task's record snapshot was mutated after enqueue. Buckets
/// resolve their queued tasks before mutating the record map, so a firing
/// here means a mutation path missed its AboutToMutateRecords() call.
void CheckSnapshotLive(const ScanTask& task) {
  if (task.live_generation == nullptr) return;
  ESSDDS_CHECK(*task.live_generation == task.enqueue_generation)
      << "scan task for bucket " << task.bucket
      << " evaluated over a mutated record map (enqueue generation "
      << task.enqueue_generation << ", live " << *task.live_generation << ")";
}

}  // namespace

void ExecuteScanTask(ScanTask& task) {
  if (task.evaluated) return;
  CheckSnapshotLive(task);
  std::unique_ptr<ScanFilter::Prepared> local;
  const ScanFilter::Prepared* prepared = task.shared_prepared;
  if (!task.has_shared_prepared) {
    local = task.filter->Prepare(task.arg);
    prepared = local.get();
  }
  task.evaluated = true;
  if (prepared == nullptr) return;  // malformed argument: empty reply
  if (task.has_columns) {
    prepared->MatchColumns(task.columns, 0, task.columns.count,
                           &task.reply.records);
    return;
  }
  for (const auto& [key, value] : *task.records) {
    if (prepared->Matches(key, value)) {
      task.reply.records.push_back(WireRecord{key, value});
    }
  }
}

ScanWorkerPool::ScanWorkerPool(size_t threads, obs::MetricRegistry* metrics)
    : threads_(threads) {
  if (metrics != nullptr) {
    batch_tasks_hist_ = &metrics->histogram("scan.batch_tasks");
    batch_shards_hist_ = &metrics->histogram("scan.batch_shards");
  }
}

#if ESSDDS_THREADS

ScanWorkerPool::~ScanWorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

size_t ScanWorkerPool::started_workers() const { return workers_.size(); }

void ScanWorkerPool::StartWorkers() {
  if (!workers_.empty()) return;
  workers_.reserve(threads_);
  for (size_t w = 0; w < threads_; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ScanWorkerPool::EvaluateShard(Shard& shard) {
  if (shard.task->has_columns) {
    // Columnar shard: one batch call over the index range; the filter walks
    // the packed arena itself.
    shard.prepared->MatchColumns(shard.task->columns, shard.col_begin,
                                 shard.col_end, &shard.hits);
    return;
  }
  // Hoist the members into locals: the opaque Matches() call and the
  // push_back would otherwise force a reload of end/prepared from the
  // Shard on every record, costing a measurable fraction of the record
  // loop on branchy ~30ns predicates.
  const auto end = shard.end;
  const ScanFilter::Prepared* const prepared = shard.prepared;
  std::vector<WireRecord>& hits = shard.hits;
  for (auto it = shard.begin; it != end; ++it) {
    if (prepared->Matches(it->first, it->second)) {
      hits.push_back(WireRecord{it->first, it->second});
    }
  }
}

void ScanWorkerPool::DrainShards(BatchState& state) {
  // Lock-free claims. A ticket < total implies the batch is still in
  // flight (its caller cannot leave RunBatch before `done` reaches total),
  // so the shard array behind it is alive; an exhausted ticket touches
  // nothing but the batch-local atomics.
  for (size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
       i < state.total;
       i = state.next.fetch_add(1, std::memory_order_relaxed)) {
    EvaluateShard(state.shards[i]);
    if (state.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state.total) {
      // Empty critical section: a waiter that saw `done` short is either
      // still holding mu_ (we serialize behind it) or already sleeping
      // (our notify wakes it) — no lost wakeup.
      { std::lock_guard<std::mutex> lock(mu_); }
      done_cv_.notify_all();
    }
  }
}

void ScanWorkerPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (batch_ != nullptr && batch_seq_ != seen);
    });
    if (shutdown_) return;
    seen = batch_seq_;
    // Shared ownership of the claim state: however late this worker runs,
    // it drains only this batch's tickets (see BatchState).
    std::shared_ptr<BatchState> state = batch_;
    lock.unlock();
    DrainShards(*state);
    lock.lock();
  }
}

void ScanWorkerPool::RunBatch(std::vector<Shard>& shards) {
  StartWorkers();
  auto state = std::make_shared<BatchState>();
  state->shards = shards.data();
  state->total = shards.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_ = state;
    ++batch_seq_;
  }
  work_cv_.notify_all();
  // The caller evaluates too: it claims shards alongside the workers
  // rather than sleeping while they drain the queue — a small batch often
  // completes entirely on this thread before a worker even wakes.
  DrainShards(*state);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
  batch_.reset();
}

void ScanWorkerPool::Run(std::vector<ScanTask>& tasks,
                         size_t shard_min_records) {
  if (threads_ <= 1) {
    size_t executed = 0;
    for (ScanTask& task : tasks) {
      if (!task.evaluated) ++executed;
      ExecuteScanTask(task);
    }
    if (batch_tasks_hist_ != nullptr) {
      batch_tasks_hist_->Record(executed);
      // Serial mode: every task is its own (whole-bucket) shard.
      batch_shards_hist_->Record(executed);
    }
    return;
  }
  // Shard planning runs on the caller: per-task Prepare (when the drain did
  // not attach a shared instance), snapshot checks, and contiguous range
  // carving. Treat a threshold of 0 as 1 — shard everything with more than
  // one record.
  const size_t min_records = std::max<size_t>(shard_min_records, 1);
  std::vector<std::unique_ptr<ScanFilter::Prepared>> local_prepared;
  std::vector<Shard> shards;
  std::vector<ScanTask*> planned;
  for (ScanTask& task : tasks) {
    if (task.evaluated) continue;
    CheckSnapshotLive(task);
    const ScanFilter::Prepared* prepared = task.shared_prepared;
    if (!task.has_shared_prepared) {
      local_prepared.push_back(task.filter->Prepare(task.arg));
      prepared = local_prepared.back().get();
    }
    if (prepared == nullptr) {  // malformed argument: empty reply
      task.evaluated = true;
      continue;
    }
    const size_t n =
        task.has_columns ? task.columns.count : task.records->size();
    size_t parts = 1;
    if (n > min_records) {
      parts = std::min(threads_, (n + min_records - 1) / min_records);
    }
    if (parts == 1) {
      // Unsharded task (possibly an empty bucket): one whole-bucket shard,
      // no key-span probing — begin()/rbegin() are not dereferenceable
      // here.
      Shard shard;
      shard.task = &task;
      if (task.has_columns) {
        shard.col_end = n;
      } else {
        shard.begin = task.records->begin();
        shard.end = task.records->end();
      }
      shard.prepared = prepared;
      shards.push_back(std::move(shard));
      planned.push_back(&task);
      continue;
    }
    if (task.has_columns) {
      // Columnar carve: equal record counts by index, no key-space math —
      // exact balance for any key distribution (parts <= n, so every shard
      // holds at least one record). Ranges are contiguous and ascending, so
      // the splice below reassembles the reply in ascending key order.
      for (size_t s = 0; s < parts; ++s) {
        Shard shard;
        shard.task = &task;
        shard.col_begin = n * s / parts;
        shard.col_end = n * (s + 1) / parts;
        shard.prepared = prepared;
        shards.push_back(std::move(shard));
      }
      planned.push_back(&task);
      continue;
    }
    // Carve contiguous key ranges (parts > 1 implies n >= 2, so first and
    // last keys exist). Count-based carving (std::advance) would
    // pointer-chase the whole map just to plan, doubling the memory traffic
    // of the scan; instead the key space [first, last] is cut into `parts`
    // equal intervals and each interior boundary found with lower_bound —
    // O(parts log n). Under hashed keys (the default) the intervals hold
    // near-equal record counts; clustered raw keys may imbalance the shards,
    // which costs parallelism, never correctness: the ranges concatenate to
    // the whole map in ascending key order regardless. Degenerate spans
    // (tightly clustered keys, extremes at 0/UINT64_MAX) can land several
    // boundaries on the same record — such empty ranges are dropped rather
    // than scheduled, so every emitted shard holds at least one record and
    // no record is ever covered twice.
    const uint64_t lo = task.records->begin()->first;
    const uint64_t hi = task.records->rbegin()->first;
    const uint64_t span = hi - lo;
    auto it = task.records->begin();
    for (size_t s = 0; s < parts; ++s) {
      Shard shard;
      shard.task = &task;
      shard.begin = it;
      if (s + 1 == parts) {
        shard.end = task.records->end();
      } else {
        const uint64_t boundary =
            lo + static_cast<uint64_t>(
                     static_cast<unsigned __int128>(span) * (s + 1) / parts);
        it = task.records->lower_bound(boundary);
        shard.end = it;
      }
      if (shard.begin == shard.end) continue;  // boundary collision: empty
      shard.prepared = prepared;
      shards.push_back(std::move(shard));
    }
    planned.push_back(&task);
  }
  if (batch_tasks_hist_ != nullptr) {
    batch_tasks_hist_->Record(planned.size());
    batch_shards_hist_->Record(shards.size());
  }
  if (!shards.empty()) {
    if (shards.size() == 1) {
      EvaluateShard(shards.front());
    } else {
      RunBatch(shards);
    }
    // Splice: shards were planned in task order with ascending key ranges,
    // so a straight append reassembles each reply in ascending key order —
    // byte-identical to the serial evaluation.
    for (Shard& shard : shards) {
      auto& out = shard.task->reply.records;
      out.insert(out.end(), std::make_move_iterator(shard.hits.begin()),
                 std::make_move_iterator(shard.hits.end()));
    }
  }
  for (ScanTask* task : planned) task->evaluated = true;
}

#else  // !ESSDDS_THREADS

ScanWorkerPool::~ScanWorkerPool() = default;

size_t ScanWorkerPool::started_workers() const { return 0; }

void ScanWorkerPool::Run(std::vector<ScanTask>& tasks,
                         size_t shard_min_records) {
  // Thread support compiled out: the pool is the serial path, regardless of
  // its configured size or the shard threshold.
  (void)shard_min_records;
  size_t executed = 0;
  for (ScanTask& task : tasks) {
    if (!task.evaluated) ++executed;
    ExecuteScanTask(task);
  }
  if (batch_tasks_hist_ != nullptr) {
    batch_tasks_hist_->Record(executed);
    batch_shards_hist_->Record(executed);
  }
}

#endif  // ESSDDS_THREADS

}  // namespace essdds::sdds
