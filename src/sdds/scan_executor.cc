#include "sdds/scan_executor.h"

#include <algorithm>
#include <memory>

#if ESSDDS_THREADS
#include <atomic>
#include <thread>
#endif

namespace essdds::sdds {

void ExecuteScanTask(ScanTask& task) {
  std::unique_ptr<ScanFilter::Prepared> local;
  const ScanFilter::Prepared* prepared = task.shared_prepared;
  if (!task.has_shared_prepared) {
    local = task.filter->Prepare(task.arg);
    prepared = local.get();
  }
  if (prepared == nullptr) return;  // malformed argument: empty reply
  for (const auto& [key, value] : *task.records) {
    if (prepared->Matches(key, value)) {
      task.reply.records.push_back(WireRecord{key, value});
    }
  }
}

void RunScanTasks(std::vector<ScanTask>& tasks, size_t threads) {
#if ESSDDS_THREADS
  const size_t workers = std::min(threads, tasks.size());
  if (workers > 1) {
    std::atomic<size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&tasks, &next] {
        for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < tasks.size();
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          ExecuteScanTask(tasks[i]);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    return;
  }
#else
  (void)threads;
#endif
  for (ScanTask& task : tasks) ExecuteScanTask(task);
}

}  // namespace essdds::sdds
