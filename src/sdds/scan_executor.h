#ifndef ESSDDS_SDDS_SCAN_EXECUTOR_H_
#define ESSDDS_SDDS_SCAN_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "sdds/lh_options.h"
#include "sdds/message.h"

namespace essdds::sdds {

/// One deferred bucket-scan evaluation. In parallel scan mode a bucket
/// server answers a kScan message by enqueueing this task instead of
/// evaluating inline; the filter work then runs off the messaging path so
/// a worker pool can evaluate buckets concurrently. The reply message is
/// pre-filled with everything except the hit records.
///
/// `records` points at the bucket's live record map: safe because the
/// initiating client is blocked until the batch drains, and nothing else
/// mutates buckets while a scan is outstanding.
struct ScanTask {
  uint64_t bucket = 0;
  const std::map<uint64_t, Bytes>* records = nullptr;
  const ScanFilter* filter = nullptr;
  Bytes arg;      // owned copy of the scan argument (workers never touch
                  // the originating message)
  Message reply;  // header pre-filled; `records` appended by the worker

  /// When `has_shared_prepared` is set, the drain already compiled the scan
  /// argument once for every bucket of this scan; the worker uses
  /// `shared_prepared` (nullptr = malformed argument, empty reply) instead
  /// of running Prepare() itself.
  const ScanFilter::Prepared* shared_prepared = nullptr;
  bool has_shared_prepared = false;
};

/// Evaluates one task: prepares the filter from the task's argument and
/// fills task.reply.records with the hits, in ascending key order (the
/// bucket's map order — deterministic regardless of execution order).
void ExecuteScanTask(ScanTask& task);

/// Runs every task, on `threads` workers when threads > 1 and the build has
/// thread support (ESSDDS_THREADS), serially otherwise. Each task is
/// evaluated exactly once by exactly one worker; task results are
/// independent of the execution schedule.
void RunScanTasks(std::vector<ScanTask>& tasks, size_t threads);

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_SCAN_EXECUTOR_H_
