#ifndef ESSDDS_SDDS_SCAN_EXECUTOR_H_
#define ESSDDS_SDDS_SCAN_EXECUTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#if ESSDDS_THREADS
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#endif

#include "obs/metrics.h"
#include "sdds/lh_options.h"
#include "sdds/message.h"

namespace essdds::sdds {

/// One deferred bucket-scan evaluation. In parallel scan mode a bucket
/// server answers a kScan message by enqueueing this task instead of
/// evaluating inline; the filter work then runs off the messaging path so
/// a worker pool can evaluate buckets concurrently. The reply message is
/// pre-filled with everything except the hit records.
///
/// `records` points at the bucket's live record map. The bucket guards the
/// pointer: before any mutation of the map it asks the network to resolve
/// its queued tasks (Network::ResolveDeferredScans), so a task is always
/// evaluated against exactly the content the serial inline mode would have
/// seen at kScan delivery. `live_generation`/`enqueue_generation` assert
/// that contract: the bucket bumps its mutation generation on every map
/// change, and evaluation aborts if the snapshot went stale anyway.
struct ScanTask {
  uint64_t bucket = 0;
  const std::map<uint64_t, Bytes>* records = nullptr;
  /// Columnar view of the same records (bucket servers maintain a
  /// ColumnStore beside the map). When `has_columns` is set, evaluation
  /// runs the filter's batch MatchColumns path over the packed arena —
  /// shards become contiguous index ranges instead of map-iterator ranges —
  /// and `records` is untouched. The slice borrows the bucket's buffers
  /// under the same pre-mutation-resolution contract as `records`.
  ColumnSlice columns;
  bool has_columns = false;
  const ScanFilter* filter = nullptr;
  Bytes arg;      // owned copy of the scan argument (workers never touch
                  // the originating message)
  Message reply;  // header pre-filled; `records` appended by the worker

  /// When `has_shared_prepared` is set, the drain already compiled the scan
  /// argument once for every bucket of this scan; the worker uses
  /// `shared_prepared` (nullptr = malformed argument, empty reply) instead
  /// of running Prepare() itself.
  const ScanFilter::Prepared* shared_prepared = nullptr;
  bool has_shared_prepared = false;

  /// Dangling-snapshot guard: the owning bucket's mutation counter, and its
  /// value when the task was enqueued. Evaluation CHECKs them equal.
  const uint64_t* live_generation = nullptr;
  uint64_t enqueue_generation = 0;

  /// Set once the task's hits are in `reply`; an evaluated task is skipped
  /// by every later execution pass (a bucket may resolve its tasks early,
  /// ahead of the batch drain, when a mutation is about to land).
  bool evaluated = false;
};

/// Evaluates one task inline on the calling thread: prepares the filter
/// from the task's argument (unless a shared Prepared is attached) and
/// fills task.reply.records with the hits, in ascending key order (the
/// bucket's map order — deterministic regardless of execution order).
/// No-op when the task is already evaluated.
void ExecuteScanTask(ScanTask& task);

/// Long-lived fixed-size worker pool for scan evaluation. One instance is
/// owned by each Network and reused across every scan batch, replacing the
/// old spawn-threads-per-batch executor: workers block on a condition
/// variable between batches, so a scan pays queue signalling instead of
/// thread creation. Within a batch, shard claims are lock-free and the
/// calling thread evaluates shards alongside the workers, so small batches
/// complete without a single context switch.
///
/// Sharding: Run() splits any task whose bucket holds more than
/// `shard_min_records` records into up to `thread_count()` contiguous
/// key-range shards evaluated concurrently, then splices the shard hits
/// back in ascending key order — so serial, pooled, and sharded execution
/// produce byte-identical replies.
///
/// Lifecycle: construction is cheap and spawns nothing; workers start
/// lazily on the first batch that can use them and are joined by the
/// destructor (clean shutdown, no detached threads). With `threads` <= 1,
/// or in a build without thread support (ESSDDS_THREADS off), Run() is the
/// plain serial loop and no worker ever starts.
///
/// Thread safety: Run() is driven from the single-threaded messaging path;
/// concurrent Run() calls are not supported (nor possible — the simulator
/// has one driver thread). Worker threads touch only the batch handed to
/// them.
class ScanWorkerPool {
 public:
  /// `metrics`, when given, receives the pool's batch-shape histograms
  /// ("scan.batch_tasks", "scan.batch_shards" — how many buckets each drain
  /// batched and how finely they sharded); must outlive the pool. The
  /// instruments are resolved once here, on the driver thread, per the
  /// registry's thread contract.
  explicit ScanWorkerPool(size_t threads,
                          obs::MetricRegistry* metrics = nullptr);
  ~ScanWorkerPool();

  ScanWorkerPool(const ScanWorkerPool&) = delete;
  ScanWorkerPool& operator=(const ScanWorkerPool&) = delete;

  /// True when the build carries thread support; false means Run() is
  /// compiled down to the serial path and no worker can ever start.
  static constexpr bool threads_compiled_in() {
#if ESSDDS_THREADS
    return true;
#else
    return false;
#endif
  }

  /// Configured pool size (evaluators used for a parallel batch).
  size_t thread_count() const { return threads_; }

  /// Workers actually running: 0 until the first parallel batch, then
  /// thread_count() for the pool's lifetime.
  size_t started_workers() const;

  /// Evaluates every not-yet-evaluated task and returns once all replies
  /// are filled. Tasks run on the pool (sharded per the threshold) when the
  /// pool is parallel, serially on the caller otherwise; results are
  /// byte-identical either way.
  void Run(std::vector<ScanTask>& tasks, size_t shard_min_records);

 private:
#if ESSDDS_THREADS
  /// One contiguous slice of a task's records, with its own hit vector so
  /// workers never contend on the reply. Columnar tasks carve index ranges
  /// [col_begin, col_end) into the packed arena; map-backed tasks carve
  /// key-range iterator pairs.
  struct Shard {
    ScanTask* task = nullptr;
    std::map<uint64_t, Bytes>::const_iterator begin;
    std::map<uint64_t, Bytes>::const_iterator end;
    size_t col_begin = 0;
    size_t col_end = 0;
    const ScanFilter::Prepared* prepared = nullptr;
    std::vector<WireRecord> hits;
  };

  /// Per-batch claim state, heap-allocated and shared with every worker
  /// that wakes for the batch. Owning the claim tickets batch-locally (not
  /// as reusable pool members) makes stragglers harmless: a worker
  /// descheduled past its whole batch drains a state whose tickets are
  /// already exhausted — it can never claim shards of a later batch, and
  /// the shared_ptr keeps the state alive however late it runs. The shard
  /// array itself lives in Run()'s frame; a participant dereferences it
  /// only for a ticket < total, which implies the batch (and so the frame)
  /// is still in flight.
  struct BatchState {
    Shard* shards = nullptr;
    size_t total = 0;
    std::atomic<size_t> next{0};  // shard claim ticket
    std::atomic<size_t> done{0};  // completed-shard count
  };

  static void EvaluateShard(Shard& shard);
  void StartWorkers();
  void WorkerLoop();
  void RunBatch(std::vector<Shard>& shards);

  /// Claims and evaluates shards until the batch's tickets run out; run by
  /// the workers AND by the batch caller (the caller evaluates alongside
  /// the pool instead of sleeping). Claims are lock-free — the mutex guards
  /// only batch publication and completion signalling, so the per-shard
  /// path never sleeps on contention.
  void DrainShards(BatchState& state);

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers sleep here between batches
  std::condition_variable done_cv_;  // Run() waits here for batch completion
  std::vector<std::thread> workers_;
  // Current batch; pointer and sequence guarded by mu_. `batch_seq_`
  // distinguishes batches so a worker that finishes early never re-enters
  // the same one.
  std::shared_ptr<BatchState> batch_;
  uint64_t batch_seq_ = 0;
  bool shutdown_ = false;
#endif
  const size_t threads_;
  // Batch-shape histograms (null when no registry was attached). Recorded
  // by Run() on the driver thread.
  obs::Histogram* batch_tasks_hist_ = nullptr;
  obs::Histogram* batch_shards_hist_ = nullptr;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_SCAN_EXECUTOR_H_
