#ifndef ESSDDS_SDDS_EVENT_NETWORK_H_
#define ESSDDS_SDDS_EVENT_NETWORK_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sdds/lh_options.h"
#include "sdds/network.h"
#include "util/random.h"

namespace essdds::sdds {

/// True for the message types the fault knobs may drop or duplicate:
/// client key requests and their replies, which the LhClient retry
/// machinery recovers (idempotent retransmission, stale-reply discard),
/// plus kDeadSite reports (re-sent on every further retry of the stuck
/// request). Scans are always delivered; protocol-internal traffic is
/// either always delivered (protocol_faults off) or carried by the
/// reliable link layer (protocol_faults on — see ProtocolReliable).
bool FaultEligible(MsgType type);

/// True for the protocol-internal types the reliable link layer carries
/// when EventNetworkOptions::protocol_faults is on: split/merge
/// restructuring, bulk moves, parity updates, and the reconstruction
/// control plane. Client traffic and scans are excluded (they have their
/// own recovery: retries and quiesce barriers), as are kDeadSite (fire-
/// and-forget, re-reported) and kRecoveryTick (never crosses a link).
bool ProtocolReliable(MsgType type);

/// Discrete-event simulation of the multicomputer: Send() draws a latency
/// from a seeded generator and schedules the delivery; Pump() pops the
/// earliest scheduled event, advances the virtual clock, and runs the
/// destination's OnMessage. Messages on different links overtake each
/// other, so splits, merges, image adjustments, and forwards genuinely race
/// in-flight client operations — the interleavings the synchronous
/// SimNetwork can never produce.
///
/// Determinism and replay: every random choice comes from one xoshiro
/// generator seeded with EventNetworkOptions::seed, ties in the event queue
/// break by submission order, and virtual time is decoupled from wall
/// clock. A run is therefore reproducible bit-for-bit from its options —
/// a failing interleaving is a seed, not a heisenbug.
///
/// Fault injection:
///  - drop_prob / duplicate_prob: per-send Bernoulli faults on
///    fault-eligible messages (see FaultEligible).
///  - protocol_faults + protocol_drop_prob / protocol_duplicate_prob:
///    protocol-internal frames (ProtocolReliable) ride a reliable link
///    layer — per-link sequence numbers, receiver acks, ack_timeout_us
///    retransmission — that delivers each frame exactly once and in link
///    order to a live destination no matter how the Bernoulli rolls land.
///  - ScriptDrop(type, n): deterministically discard the n-th future send
///    of `type` (any type — scripted tests own the consequences).
///  - PauseSite / ResumeSite: a paused site receives nothing; deliveries
///    addressed to it park until resume. The timed overload schedules the
///    resume as an event, modelling a site that stalls and recovers.
///    Parking is lossless, so the reliable layer treats a park as the
///    delivery for ack purposes.
///  - KillSite: fail-stop. Deliveries addressed to a killed site park in
///    its dead-letter queue (messages already in flight FROM it still
///    arrive — the site died with its output drained). Reliable frames
///    stop retransmitting and wait in sender-side link state. After
///    recovery rebuilds the bucket elsewhere, RedirectSite(old, spare)
///    re-points the address: dead letters replay and parked frames resend,
///    all delivered to the successor.
class EventNetwork final : public Network {
 public:
  explicit EventNetwork(EventNetworkOptions options = {});

  SiteId Register(Site* site) override;
  void Send(Message msg) override;
  bool Pump() override;
  uint64_t now_us() const override { return now_us_; }
  bool asynchronous() const override { return true; }
  size_t site_count() const override { return sites_.size(); }

  /// Schedules `msg` for direct delivery to msg.to after `delay_us` of
  /// virtual time: no faults, no accounting, no link state — a site's
  /// private timer (the recovery coordinator arms its probe timeouts with
  /// these). Keeps the network non-idle until it fires.
  void ScheduleTimer(Message msg, uint64_t delay_us) override;

  const EventNetworkOptions& options() const { return options_; }

  /// Scheduled (not yet delivered) events, including pending resumes.
  size_t queued_events() const { return heap_.size(); }

  /// Virtual due time of the earliest queued event (UINT64_MAX when the
  /// queue is empty). Lets a test pump up to a horizon without crossing a
  /// far-future timer — e.g. observing the degraded window a rebuild hold
  /// keeps open.
  uint64_t next_event_due_us() const {
    return heap_.empty() ? UINT64_MAX : heap_.front().time_us;
  }

  /// Messages currently parked at paused sites.
  size_t parked_messages() const;

  /// Messages parked in dead-letter queues of killed sites.
  size_t dead_letter_messages() const;

  /// Stops delivery to `site`: subsequent deliveries park until resume.
  void PauseSite(SiteId site);

  /// Pauses and schedules an automatic resume `duration_us` of virtual time
  /// from now (the resume is an event, so the network never looks idle
  /// while a timed pause is active — client timeouts keep firing).
  void PauseSite(SiteId site, uint64_t duration_us);

  /// Delivers everything parked at `site` (rescheduled with fresh
  /// latencies) and resumes normal delivery.
  void ResumeSite(SiteId site);

  /// Fail-stop kill: the site never receives another message. Deliveries
  /// addressed to it (directly or via redirects) park in its dead-letter
  /// queue; reliable frames additionally stop retransmitting. Messages it
  /// already sent still deliver. Irreversible except through RedirectSite.
  void KillSite(SiteId site);

  bool site_killed(SiteId site) const {
    return site < killed_.size() && killed_[site];
  }

  /// Re-points every address of killed `from` at `to` (the rebuilt bucket's
  /// site): future and queued deliveries resolve through the redirect, the
  /// dead-letter queue replays, and parked reliable frames retransmit.
  /// Redirects chain, so a twice-rebuilt bucket still resolves.
  void RedirectSite(SiteId from, SiteId to);

  /// Follows the redirect chain from `site` to the currently live address.
  SiteId Resolve(SiteId site) const;

  /// True while any message sent by `site` could still be delivered:
  /// scheduled deliveries, copies parked at paused sites, or unacked
  /// reliable frames that are not themselves waiting on a killed
  /// destination. Recovery uses this as a drain barrier before trusting a
  /// slice snapshot; tests use it to assert a killed site's traffic has
  /// settled.
  bool HasInFlightFrom(SiteId site) const;

  /// Scripted fault: discards the `occurrence`-th (1-based, counted from
  /// now) send of `type`. Repeatable; each call arms one drop.
  void ScriptDrop(MsgType type, uint64_t occurrence);

 private:
  enum class EvKind : uint8_t {
    kDeliver = 0,  // msg (frame_seq > 0: reliable frame on link (a, b))
    kResume,       // resume_site
    kTimer,        // msg, delivered directly
    kAck,          // reliable ack for link (a, b) seq frame_seq
    kRtxCheck,     // retransmission timer for link (a, b) seq frame_seq
  };

  struct Event {
    uint64_t time_us = 0;
    uint64_t seq = 0;  // tie-break: equal times deliver in submission order
    EvKind kind = EvKind::kDeliver;
    SiteId resume_site = kInvalidSite;
    // Reliable-layer link key (original addresses, pre-redirect) + frame
    // sequence. 0 = not a reliable frame.
    SiteId a = kInvalidSite;
    SiteId b = kInvalidSite;
    uint64_t frame_seq = 0;
    Message msg;
  };

  /// std::push_heap builds a max-heap; order events "after" each other so
  /// the top is the earliest (time, seq).
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_us != b.time_us) return a.time_us > b.time_us;
      return a.seq > b.seq;
    }
  };

  /// One reliable frame awaiting its ack. `parked_dead` marks a frame whose
  /// destination is killed: retransmission stops and RedirectSite resends.
  struct PendingFrame {
    Message msg;
    uint32_t retransmits = 0;
    bool parked_dead = false;
  };

  /// Sender- and receiver-side state of one directed link (keyed by the
  /// ORIGINAL site addresses; redirects never rename a link, so sequence
  /// numbering survives a rebuild).
  struct LinkState {
    uint64_t next_send_seq = 1;
    uint64_t next_recv_seq = 1;
    std::map<uint64_t, PendingFrame> unacked;
    std::map<uint64_t, Message> reorder;  // received early, held for order
  };

  /// Delivery time for a message sent now on (from -> to): now + uniform
  /// latency, pushed past the link's previous delivery when FIFO links are
  /// on.
  uint64_t DeliveryTime(SiteId from, SiteId to);

  void PushEvent(Event ev);
  void ScheduleMessage(Message msg);

  // --- reliable link layer (protocol_faults on) ---
  void SendReliable(Message msg);
  /// One physical transmission attempt of unacked frame `seq` on (from,
  /// to): rolls the protocol drop/duplicate faults, then schedules the
  /// delivery event(s).
  void TransmitFrame(SiteId from, SiteId to, uint64_t seq);
  void ScheduleRtxCheck(SiteId from, SiteId to, uint64_t seq);
  void HandleRtxCheck(const Event& ev);
  /// Delivery of a reliable frame: ack, dedup, reorder, in-order delivery.
  void DeliverReliable(Event ev);
  /// Runs the destination's OnMessage (after redirect resolution).
  void DeliverNow(Message& msg, SiteId dest);

  EventNetworkOptions options_;
  Rng rng_;
  uint64_t now_us_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<Site*> sites_;
  std::vector<Event> heap_;
  std::vector<bool> paused_;
  std::vector<bool> killed_;
  std::vector<std::vector<Event>> parked_;       // per paused site
  std::vector<std::vector<Message>> dead_letter_;  // per killed site
  std::map<SiteId, SiteId> redirect_;
  std::map<std::pair<SiteId, SiteId>, LinkState> links_;
  std::map<std::pair<SiteId, SiteId>, uint64_t> link_clock_;
  std::map<MsgType, uint64_t> sends_of_type_;
  // Armed scripted drops: absolute per-type send ordinals to discard.
  std::map<MsgType, std::vector<uint64_t>> scripted_drops_;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_EVENT_NETWORK_H_
