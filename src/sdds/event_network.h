#ifndef ESSDDS_SDDS_EVENT_NETWORK_H_
#define ESSDDS_SDDS_EVENT_NETWORK_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sdds/lh_options.h"
#include "sdds/network.h"
#include "util/random.h"

namespace essdds::sdds {

/// True for the message types the fault knobs may drop or duplicate:
/// client key requests and their replies, which the LhClient retry
/// machinery recovers (idempotent retransmission, stale-reply discard).
/// Everything else — split/merge transfers, coordinator control traffic,
/// scans — has no retransmission layer and is always delivered.
bool FaultEligible(MsgType type);

/// Discrete-event simulation of the multicomputer: Send() draws a latency
/// from a seeded generator and schedules the delivery; Pump() pops the
/// earliest scheduled event, advances the virtual clock, and runs the
/// destination's OnMessage. Messages on different links overtake each
/// other, so splits, merges, image adjustments, and forwards genuinely race
/// in-flight client operations — the interleavings the synchronous
/// SimNetwork can never produce.
///
/// Determinism and replay: every random choice comes from one xoshiro
/// generator seeded with EventNetworkOptions::seed, ties in the event queue
/// break by submission order, and virtual time is decoupled from wall
/// clock. A run is therefore reproducible bit-for-bit from its options —
/// a failing interleaving is a seed, not a heisenbug.
///
/// Fault injection:
///  - drop_prob / duplicate_prob: per-send Bernoulli faults on
///    fault-eligible messages (see FaultEligible).
///  - ScriptDrop(type, n): deterministically discard the n-th future send
///    of `type` (any type — scripted tests own the consequences).
///  - PauseSite / ResumeSite: a paused site receives nothing; deliveries
///    addressed to it park until resume. The timed overload schedules the
///    resume as an event, modelling a site that stalls and recovers.
class EventNetwork final : public Network {
 public:
  explicit EventNetwork(EventNetworkOptions options = {});

  SiteId Register(Site* site) override;
  void Send(Message msg) override;
  bool Pump() override;
  uint64_t now_us() const override { return now_us_; }
  bool asynchronous() const override { return true; }
  size_t site_count() const override { return sites_.size(); }

  const EventNetworkOptions& options() const { return options_; }

  /// Scheduled (not yet delivered) events, including pending resumes.
  size_t queued_events() const { return heap_.size(); }

  /// Messages currently parked at paused sites.
  size_t parked_messages() const;

  /// Stops delivery to `site`: subsequent deliveries park until resume.
  void PauseSite(SiteId site);

  /// Pauses and schedules an automatic resume `duration_us` of virtual time
  /// from now (the resume is an event, so the network never looks idle
  /// while a timed pause is active — client timeouts keep firing).
  void PauseSite(SiteId site, uint64_t duration_us);

  /// Delivers everything parked at `site` (rescheduled with fresh
  /// latencies) and resumes normal delivery.
  void ResumeSite(SiteId site);

  /// Scripted fault: discards the `occurrence`-th (1-based, counted from
  /// now) send of `type`. Repeatable; each call arms one drop.
  void ScriptDrop(MsgType type, uint64_t occurrence);

 private:
  struct Event {
    uint64_t time_us = 0;
    uint64_t seq = 0;  // tie-break: equal times deliver in submission order
    bool is_resume = false;
    SiteId resume_site = kInvalidSite;
    Message msg;
  };

  /// std::push_heap builds a max-heap; order events "after" each other so
  /// the top is the earliest (time, seq).
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_us != b.time_us) return a.time_us > b.time_us;
      return a.seq > b.seq;
    }
  };

  /// Delivery time for a message sent now on (from -> to): now + uniform
  /// latency, pushed past the link's previous delivery when FIFO links are
  /// on.
  uint64_t DeliveryTime(SiteId from, SiteId to);

  void PushEvent(Event ev);
  void ScheduleMessage(Message msg);

  EventNetworkOptions options_;
  Rng rng_;
  uint64_t now_us_ = 0;
  uint64_t next_seq_ = 0;
  std::vector<Site*> sites_;
  std::vector<Event> heap_;
  std::vector<bool> paused_;
  std::vector<std::vector<Message>> parked_;  // per site, arrival order
  std::map<std::pair<SiteId, SiteId>, uint64_t> link_clock_;
  std::map<MsgType, uint64_t> sends_of_type_;
  // Armed scripted drops: absolute per-type send ordinals to discard.
  std::map<MsgType, std::vector<uint64_t>> scripted_drops_;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_EVENT_NETWORK_H_
