#ifndef ESSDDS_SDDS_MESSAGE_H_
#define ESSDDS_SDDS_MESSAGE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace essdds::sdds {

/// Identifies a site (node) of the simulated multicomputer.
using SiteId = uint32_t;

inline constexpr SiteId kInvalidSite = static_cast<SiteId>(-1);

/// Wire message types of the LH* protocol.
enum class MsgType : uint8_t {
  // Client -> server key operations.
  kInsert = 0,
  kLookup,
  kDelete,
  // Server -> client replies (carry an optional image adjustment).
  kInsertAck,
  kLookupReply,
  kDeleteAck,
  // Parallel scan: client -> every bucket in its image; buckets forward to
  // buckets the client's stale image missed.
  kScan,
  kScanReply,
  // Split protocol: overflowing bucket -> coordinator; coordinator ->
  // splitting bucket; splitting bucket -> new bucket (bulk move).
  kOverflow,
  kSplit,
  kMoveRecords,
  kSplitDone,
  // Merge protocol (file shrinking): underflowing bucket -> coordinator;
  // coordinator -> dissolving bucket; dissolving bucket -> parent (bulk
  // move + level adjustment).
  kUnderflow,
  kMerge,
  kMergeRecords,
  kMergeDone,
  // Parity / recovery protocol (LH*RS-style high availability). A data
  // bucket streams batched rank deltas to the parity sites of its group;
  // clients report suspected-dead buckets to the coordinator, which probes
  // with ping/pong and then drives reconstruction through the group's
  // parity proxy (slice gathering, decode, rebuild on a spare site).
  kParityUpdate,       // data bucket -> parity site: batched rank deltas
  kDeadSite,           // client -> coordinator: suspected-dead bucket
  kPing,               // coordinator -> suspected bucket: liveness probe
  kPong,               // bucket -> coordinator: probe answer
  kReconstructRequest, // proxy -> group member: send your slice (may freeze)
  kReconstructSlice,   // member -> proxy: rank-buffer slice + parity seq
  kRebuild,            // coordinator -> parity proxy: install lost buckets
  kRebuildDone,        // proxy -> coordinator: reconstruction complete
  kRecoveryTick,       // self-addressed virtual timer (never crosses a link)
};

std::string_view MsgTypeToString(MsgType t);

/// A key/value record as shipped between sites.
struct WireRecord {
  uint64_t key = 0;
  Bytes value;

  friend bool operator==(const WireRecord&, const WireRecord&) = default;
};

/// Client's view of the file extent (possibly stale): level i' and split
/// pointer n'. The true extent is 2^i + n buckets.
struct FileImage {
  uint32_t level = 0;          // i'
  uint32_t split_pointer = 0;  // n'

  /// Number of buckets this image believes exist.
  uint64_t BucketCount() const {
    return (uint64_t{1} << level) + split_pointer;
  }

  /// The level this image assumes for bucket `a`: buckets below the split
  /// pointer (and their split images) are at i'+1, the rest at i'.
  uint32_t AssumedLevel(uint64_t a) const {
    const uint64_t two_i = uint64_t{1} << level;
    return (a < split_pointer || a >= two_i) ? level + 1 : level;
  }

  friend bool operator==(const FileImage&, const FileImage&) = default;
};

/// One simulated network message. Payload fields are a union-of-purposes:
/// only the fields relevant to `type` are meaningful. AccountedBytes() below
/// charges each message as if the active fields were serialized, so message
/// and byte counters behave like a real deployment's.
struct Message {
  MsgType type = MsgType::kInsert;
  SiteId from = kInvalidSite;
  SiteId to = kInvalidSite;

  /// Correlates replies with requests; assigned by the client.
  uint64_t request_id = 0;
  /// Observability: identifies the client operation this message serves,
  /// carried across forwards, retransmissions, scan fan-out, and the
  /// restructuring an op triggers (overflow -> split -> move), so one op's
  /// full causal path can be reassembled from the trace ring. 0 = untraced
  /// (metrics compiled out, or protocol background with no triggering op).
  /// Not charged by AccountedBytes: a production deployment would ship it
  /// only in a diagnostic header, and message/byte counters must stay
  /// byte-identical between metrics-ON and -OFF builds.
  uint64_t trace_id = 0;
  /// Final reply destination: preserved across server-to-server forwards so
  /// the serving bucket answers the originating client directly.
  SiteId reply_to = kInvalidSite;
  /// Forwarding hops taken so far by this request (LH* guarantees <= 2).
  uint32_t hops = 0;

  // --- key operations ---
  uint64_t key = 0;
  Bytes value;
  bool found = false;  // lookup/delete outcome

  // --- image adjustment (piggybacked on replies after a forward) ---
  bool has_iam = false;
  uint32_t iam_level = 0;     // level of the bucket that finally served
  uint64_t iam_address = 0;   // logical address the client first hit

  // --- scan ---
  /// Identifier of the scan filter to run at the site (registered on the
  /// system; stands in for shipping query code/parameters).
  uint64_t filter_id = 0;
  Bytes filter_arg;
  /// Level the sender assumed for the destination bucket; receiving buckets
  /// with a deeper level forward to the children the sender did not know.
  uint32_t assumed_level = 0;
  std::vector<WireRecord> records;  // scan hits / bulk moves

  // --- split protocol ---
  uint64_t bucket_to_split = 0;
  uint32_t new_level = 0;
  /// In-process flag on kMoveRecords/kMergeRecords: the sender already wrote
  /// the bulk-put into the RECEIVER's log (two-phase transfer; see
  /// LhRuntime::LogOfBucket), so the receiver must not append it again.
  /// Deliberately NOT on the wire: Encode/Decode drop it, and a receiver that
  /// misses it merely re-appends an idempotent duplicate frame.
  bool records_durable = false;

  /// Simulated serialized size in bytes (header + active payload).
  /// Cheaper than Encode().size(): counts only the fields `type` activates,
  /// mirroring what a production encoder would ship.
  size_t AccountedBytes() const;

  /// Real wire encoding (uniform layout: every field serialized). Decode is
  /// the bounds-checked inverse; malformed bytes yield Status::Corruption,
  /// never an exception or unbounded allocation. The encoding was extended
  /// compatibly with a trailing trace_id: Decode accepts the legacy layout
  /// (nothing after new_level, trace_id = 0) as well as the current one.
  Bytes Encode() const;
  static Result<Message> Decode(ByteSpan data);

  friend bool operator==(const Message&, const Message&) = default;
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_MESSAGE_H_
