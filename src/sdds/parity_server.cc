#include "sdds/parity_server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "sdds/scan_executor.h"
#include "util/wire.h"

namespace essdds::sdds {

namespace {

/// Parent relation of linear hashing (clear the top set bit); mirrors
/// lh_server.cc's fold rule for dissolved/never-created addresses.
uint64_t ParentBucket(uint64_t bucket) {
  ESSDDS_CHECK(bucket != 0) << "bucket 0 has no parent";
  uint64_t top = uint64_t{1} << 63;
  while ((bucket & top) == 0) top >>= 1;
  return bucket & ~top;
}

void TrimTrailingZeros(Bytes* b) {
  while (!b->empty() && b->back() == 0) b->pop_back();
}

}  // namespace

Bytes RankBuffer(uint64_t key, ByteSpan value) {
  WireWriter w;
  w.WriteU8(1);
  w.WriteU64(key);
  w.WriteLengthPrefixed(value);
  return w.TakeBuffer();
}

Result<RankEntry> ParseRankBuffer(ByteSpan buf) {
  RankEntry e;
  if (buf.empty()) return e;  // canonical unoccupied rank
  if (buf[0] == 0) {
    // Zero padding only (XOR arithmetic / RS decode widen buffers).
    for (size_t i = 1; i < buf.size(); ++i) {
      if (buf[i] != 0) return Status::Corruption("absent rank has payload");
    }
    return e;
  }
  if (buf[0] != 1) return Status::Corruption("rank buffer marker invalid");
  // Canonical buffers are trailing-zero trimmed, and the trim can reach into
  // the encoding itself: a value whose last bytes happen to be 0x00 (one in
  // 256 ciphertexts), an empty value under a key with zero low bytes. The
  // missing bytes are implicitly zero, so zero-extend the header, read the
  // declared value length, and zero-extend the value to match — otherwise a
  // reconstruction that RS-decodes such a record rejects its own (correct)
  // output.
  constexpr size_t kHeader = 1 + 8 + 4;  // marker + key + length prefix
  Bytes full(buf.begin(), buf.end());
  if (full.size() < kHeader) full.resize(kHeader, 0);
  WireReader r(full);
  ESSDDS_ASSIGN_OR_RETURN(const uint8_t present, r.ReadU8());
  (void)present;  // == 1, checked above
  e.present = true;
  ESSDDS_ASSIGN_OR_RETURN(e.key, r.ReadU64());
  ESSDDS_ASSIGN_OR_RETURN(const uint32_t len, r.ReadU32());
  if (len > kMaxRankValueBytes) {
    // Junk in, error out: an implausible length must not trigger a giant
    // zero-extension allocation.
    return Status::Corruption("rank buffer value length implausible");
  }
  const size_t have = std::min<size_t>(len, full.size() - kHeader);
  e.value.assign(full.begin() + static_cast<ptrdiff_t>(kHeader),
                 full.begin() + static_cast<ptrdiff_t>(kHeader + have));
  e.value.resize(len, 0);
  // Anything after the payload must be zero padding.
  for (size_t i = kHeader + len; i < full.size(); ++i) {
    if (full[i] != 0) return Status::Corruption("rank buffer trailing garbage");
  }
  return e;
}

Bytes XorBytes(ByteSpan a, ByteSpan b) {
  Bytes out(std::max(a.size(), b.size()), 0);
  for (size_t i = 0; i < a.size(); ++i) out[i] ^= a[i];
  for (size_t i = 0; i < b.size(); ++i) out[i] ^= b[i];
  TrimTrailingZeros(&out);
  return out;
}

Bytes EncodeParityEntry(const ParityEntry& e) {
  WireWriter w;
  w.WriteU8(e.op);
  w.WriteU64(e.record_key);
  w.WriteLengthPrefixed(e.delta);
  return w.TakeBuffer();
}

Result<ParityEntry> DecodeParityEntry(ByteSpan data) {
  WireReader r(data);
  ParityEntry e;
  ESSDDS_ASSIGN_OR_RETURN(e.op, r.ReadU8());
  if (e.op > 1) return Status::Corruption("parity entry op out of range");
  ESSDDS_ASSIGN_OR_RETURN(e.record_key, r.ReadU64());
  ESSDDS_ASSIGN_OR_RETURN(ByteSpan delta, r.ReadLengthPrefixed());
  e.delta.assign(delta.begin(), delta.end());
  ESSDDS_RETURN_IF_ERROR(r.ExpectEnd());
  return e;
}

Bytes EncodeSeqTargets(const std::map<int, uint64_t>& targets) {
  WireWriter w;
  w.WriteU32(static_cast<uint32_t>(targets.size()));
  for (const auto& [member, seq] : targets) {
    w.WriteU32(static_cast<uint32_t>(member));
    w.WriteU64(seq);
  }
  return w.TakeBuffer();
}

Result<std::map<int, uint64_t>> DecodeSeqTargets(ByteSpan data) {
  WireReader r(data);
  std::map<int, uint64_t> out;
  ESSDDS_ASSIGN_OR_RETURN(const uint32_t count, r.ReadCount(12));
  for (uint32_t i = 0; i < count; ++i) {
    ESSDDS_ASSIGN_OR_RETURN(const uint32_t member, r.ReadU32());
    ESSDDS_ASSIGN_OR_RETURN(const uint64_t seq, r.ReadU64());
    if (member > 255) return Status::Corruption("seq target member invalid");
    if (!out.emplace(static_cast<int>(member), seq).second) {
      return Status::Corruption("seq target member repeated");
    }
  }
  ESSDDS_RETURN_IF_ERROR(r.ExpectEnd());
  return out;
}

// --- ParityServer ------------------------------------------------------

ParityServer::ParityServer(LhRuntime* runtime, const LhOptions& options,
                           uint64_t group, int parity_index)
    : runtime_(runtime),
      options_(options),
      group_(group),
      parity_index_(parity_index),
      k_(static_cast<int>(options.parity_group_size)),
      m_(static_cast<int>(options.parity_count)),
      field_(&gf::GfField::Of(8)),
      code_(RsCode::Create(static_cast<int>(options.parity_group_size),
                           static_cast<int>(options.parity_count))
                .value()) {
  ESSDDS_CHECK(runtime != nullptr);
  ESSDDS_CHECK(parity_index_ >= 0 && parity_index_ < m_);
  members_.resize(static_cast<size_t>(k_));
}

int ParityServer::MemberOfBucket(uint64_t bucket) const {
  const uint64_t base = group_ * static_cast<uint64_t>(k_);
  ESSDDS_CHECK(bucket >= base && bucket < base + static_cast<uint64_t>(k_))
      << "bucket " << bucket << " not in parity group " << group_;
  return static_cast<int>(bucket - base);
}

uint64_t ParityServer::applied(uint64_t bucket) const {
  return members_[static_cast<size_t>(MemberOfBucket(bucket))].applied;
}

void ParityServer::InitMember(uint64_t bucket, uint32_t level, bool loading,
                              Network& net) {
  MemberState& ms = members_[static_cast<size_t>(MemberOfBucket(bucket))];
  // Re-creation after a merge-retire keeps the update sequence and the
  // (empty) rank mirror; only the placement facts refresh.
  ms.inited = true;
  ms.dead = false;
  ms.level = level;
  ms.loading = loading;
  if (gather_active_ && !decode_valid_) {
    // A member born mid-gather (split racing the recovery) must freeze like
    // the rest or the gather would wait on its slice forever.
    Message freeze;
    freeze.type = MsgType::kReconstructRequest;
    freeze.from = site_;
    freeze.to = runtime_->SiteOfBucket(bucket);
    freeze.key = bucket;
    freeze.bucket_to_split = group_;
    freeze.filter_id = 0;
    freeze.request_id = epoch_;
    net.Send(std::move(freeze));
  }
}

void ParityServer::InstallSeed(std::map<uint64_t, Bytes> parity,
                               std::vector<MemberSeed> seeds) {
  parity_ = std::move(parity);
  for (MemberSeed& seed : seeds) {
    MemberState& ms = members_[static_cast<size_t>(MemberOfBucket(seed.bucket))];
    ms.inited = true;
    ms.dead = false;
    ms.loading = false;
    ms.level = seed.level;
    ms.applied = seed.applied;
    ms.key_rank = std::move(seed.key_rank);
    ms.ooo.clear();
  }
}

void ParityServer::OnMessage(Message& msg, Network& net) {
  switch (msg.type) {
    case MsgType::kParityUpdate:
      HandleParityUpdate(msg, net);
      return;
    case MsgType::kReconstructRequest: {
      // Peer role: the group's proxy aligns us on a sequence cut (mode 1)
      // or releases the hold (mode 2).
      if (msg.filter_id == 1) {
        auto targets = DecodeSeqTargets(msg.filter_arg);
        ESSDDS_CHECK(targets.ok()) << targets.status().ToString();
        peer_targets_ = std::move(targets.value());
        have_peer_targets_ = true;
        held_ = false;
        peer_piece_sent_ = false;
        peer_epoch_ = msg.request_id;
        peer_proxy_site_ = msg.from;
        for (int i = 0; i < k_; ++i) DrainReady(i, net);
        CheckPeerConverged(net);
      } else {
        ESSDDS_CHECK(msg.filter_id == 2)
            << "parity site got reconstruct mode " << msg.filter_id;
        held_ = false;
        have_peer_targets_ = false;
        peer_targets_.clear();
        peer_piece_sent_ = false;
        for (int i = 0; i < k_; ++i) DrainReady(i, net);
      }
      return;
    }
    case MsgType::kReconstructSlice: {
      // Proxy role: a survivor's rank slice or a peer's parity piece.
      if (!gather_active_ || msg.request_id != epoch_) return;  // stale
      const std::vector<SiteId> psites =
          runtime_->ParitySitesOfBucket(BucketOfMember(0));
      for (size_t j = 0; j < psites.size(); ++j) {
        if (psites[j] == msg.from) {
          std::map<uint64_t, Bytes>& piece = peer_pieces_[static_cast<int>(j)];
          piece.clear();
          for (WireRecord& r : msg.records) piece[r.key] = std::move(r.value);
          peers_awaited_.erase(static_cast<int>(j));
          CheckGather(net);
          return;
        }
      }
      const int member = MemberOfBucket(msg.key);
      SliceInfo& info = slices_[member];
      info.buffers.clear();
      for (WireRecord& r : msg.records) info.buffers[r.key] = std::move(r.value);
      info.seq = msg.filter_id;
      info.level = msg.new_level;
      info.loading = msg.found;
      CheckGather(net);
      return;
    }
    case MsgType::kRecoveryTick: {
      tick_armed_ = false;
      if (!gather_active_) return;
      // Fold in members whose site died before the coordinator declared
      // them (they will never answer the freeze).
      for (int i = 0; i < k_; ++i) {
        const MemberState& ms = members_[static_cast<size_t>(i)];
        const uint64_t b = BucketOfMember(i);
        if (!ms.inited || ms.dead || !runtime_->BucketExists(b)) continue;
        if (runtime_->SiteIsDead(runtime_->SiteOfBucket(b))) NoteDead(i, net);
      }
      CheckGather(net);
      if (gather_active_ && !decode_valid_) ArmTick(net);
      return;
    }
    case MsgType::kRebuild: {
      const int member = MemberOfBucket(msg.key);
      pending_rebuilds_.insert(member);
      if (decode_valid_) InstallRebuild(member, net);
      return;
    }
    case MsgType::kPing: {
      Message pong;
      pong.type = MsgType::kPong;
      pong.from = site_;
      pong.to = msg.from;
      pong.key = msg.key;
      pong.request_id = msg.request_id;
      pong.trace_id = msg.trace_id;
      net.Send(std::move(pong));
      return;
    }
    case MsgType::kLookup: {
      uint64_t b = msg.bucket_to_split;
      while (b != 0 && !runtime_->BucketExists(b)) b = ParentBucket(b);
      int member = -1;
      const uint64_t base = group_ * static_cast<uint64_t>(k_);
      if (b >= base && b < base + static_cast<uint64_t>(k_)) {
        const int i = static_cast<int>(b - base);
        if (members_[static_cast<size_t>(i)].dead) member = i;
      }
      if (member < 0) {
        // Stale routing (the bucket was installed between send and
        // delivery, or the address folds elsewhere): pass it along.
        Message fwd = msg;
        fwd.from = site_;
        fwd.to = runtime_->SiteOfBucket(b);
        fwd.hops = msg.hops + 1;
        net.Send(std::move(fwd));
        return;
      }
      if (!decode_valid_) {
        parked_reads_.push_back(std::move(msg));
        return;
      }
      if (shadow_.at(member).loading) {
        // The dead bucket was a split target still loading: part of its
        // records sit in the parked kMoveRecords transfer, which only the
        // rebuilt bucket can absorb. A loading bucket parks client ops
        // (lh_server.cc) — its shadow must too, or the proxy answers an
        // authoritative "not found" for a record that is merely in transit.
        const auto dedup = std::make_pair(msg.reply_to, msg.request_id);
        if (!parked_ops_.count(dedup)) parked_ops_.emplace(dedup, std::move(msg));
        return;
      }
      ServeDegradedLookup(msg, net, member);
      return;
    }
    case MsgType::kScan: {
      uint64_t b = msg.key;  // scan messages carry the intended bucket
      while (b != 0 && !runtime_->BucketExists(b)) b = ParentBucket(b);
      const uint64_t base = group_ * static_cast<uint64_t>(k_);
      int member = -1;
      if (b >= base && b < base + static_cast<uint64_t>(k_)) {
        const int i = static_cast<int>(b - base);
        if (members_[static_cast<size_t>(i)].dead) member = i;
      }
      if (member < 0) {
        Message fwd = msg;
        fwd.from = site_;
        fwd.to = runtime_->SiteOfBucket(b);
        fwd.key = b;
        fwd.hops = msg.hops + 1;
        net.Send(std::move(fwd));
        return;
      }
      if (!decode_valid_) {
        parked_reads_.push_back(std::move(msg));
        return;
      }
      if (shadow_.at(member).loading) {
        // As for lookups: a loading shadow's record set is incomplete
        // until the parked transfer replays into the rebuilt bucket.
        // Scans fan out one message per bucket under one request id, so
        // the dedup key mixes in the member index.
        const auto dedup = std::make_pair(
            msg.reply_to, (uint64_t{1} << 62) |
                              (static_cast<uint64_t>(member) << 48) |
                              (msg.request_id & ((uint64_t{1} << 48) - 1)));
        if (!parked_ops_.count(dedup)) parked_ops_.emplace(dedup, std::move(msg));
        return;
      }
      ServeDegradedScan(msg, net, member);
      return;
    }
    case MsgType::kInsert:
    case MsgType::kDelete:
    case MsgType::kSplit:
    case MsgType::kMerge:
    case MsgType::kMoveRecords:
    case MsgType::kMergeRecords: {
      // Mutations addressed to a dead bucket wait for the rebuilt server.
      // Client retries of the same op park only once.
      if (msg.type == MsgType::kInsert || msg.type == MsgType::kDelete) {
        const auto dedup = std::make_pair(msg.reply_to, msg.request_id);
        if (parked_ops_.count(dedup)) return;
        parked_ops_.emplace(dedup, std::move(msg));
      } else {
        parked_ops_.emplace(
            std::make_pair(msg.from, (uint64_t{1} << 63) | msg.request_id),
            std::move(msg));
      }
      return;
    }
    default:
      ESSDDS_CHECK(false) << "parity server got unexpected message "
                          << MsgTypeToString(msg.type);
  }
}

void ParityServer::HandleParityUpdate(Message& msg, Network& net) {
  const int member = MemberOfBucket(msg.key);
  MemberState& ms = members_[static_cast<size_t>(member)];
  const uint64_t seq = msg.request_id;
  if (seq <= ms.applied) return;  // duplicate (redirect replay)
  ms.ooo.emplace(seq, std::move(msg));
  DrainReady(member, net);
  if (gather_active_ && !decode_valid_) CheckGather(net);
  if (have_peer_targets_) CheckPeerConverged(net);
}

void ParityServer::DrainReady(int member, Network& net) {
  (void)net;
  MemberState& ms = members_[static_cast<size_t>(member)];
  while (!ms.ooo.empty()) {
    if (held_) return;  // piece shipped: the row must not move until release
    if (have_peer_targets_) {
      auto t = peer_targets_.find(member);
      if (t != peer_targets_.end() && ms.applied >= t->second) return;
    }
    auto next = ms.ooo.find(ms.applied + 1);
    if (next == ms.ooo.end()) return;
    Message update = std::move(next->second);
    ms.ooo.erase(next);
    ApplyUpdate(member, update);
  }
}

void ParityServer::ApplyUpdate(int member, Message& msg) {
  MemberState& ms = members_[static_cast<size_t>(member)];
  ESSDDS_CHECK(msg.request_id == ms.applied + 1);
  const uint8_t coeff =
      code_.ParityCoeff(parity_index_, member);
  for (WireRecord& r : msg.records) {
    auto decoded = DecodeParityEntry(r.value);
    ESSDDS_CHECK(decoded.ok()) << decoded.status().ToString();
    ParityEntry& e = decoded.value();
    Bytes& buf = parity_[r.key];
    if (buf.size() < e.delta.size()) buf.resize(e.delta.size(), 0);
    for (size_t i = 0; i < e.delta.size(); ++i) {
      buf[i] ^= static_cast<uint8_t>(field_->Mul(coeff, e.delta[i]));
    }
    TrimTrailingZeros(&buf);
    if (buf.empty()) parity_.erase(r.key);
    if (e.op == 0) {
      ms.key_rank[e.record_key] = r.key;
    } else {
      ms.key_rank.erase(e.record_key);
    }
  }
  ms.level = msg.new_level;
  if (msg.filter_id & 1) ms.loading = false;
  ms.applied = msg.request_id;
}

// --- proxy role --------------------------------------------------------

void ParityServer::BeginRecovery(uint64_t bucket, Network& net) {
  NoteDead(MemberOfBucket(bucket), net);
  ArmTick(net);
}

void ParityServer::NoteDead(int member, Network& net) {
  MemberState& ms = members_[static_cast<size_t>(member)];
  if (ms.dead) return;
  ESSDDS_CHECK(ms.inited);
  ms.dead = true;
  dead_members_.insert(member);
  gather_active_ = true;
  RestartGather(net);
}

void ParityServer::RestartGather(Network& net) {
  ++epoch_;
  gather_started_us_ = net.now_us();
  slices_.clear();
  peer_pieces_.clear();
  peers_awaited_.clear();
  targets_sent_ = false;
  targets_.clear();
  decode_valid_ = false;
  shadow_.clear();
  for (int i = 0; i < k_; ++i) {
    const MemberState& ms = members_[static_cast<size_t>(i)];
    const uint64_t b = BucketOfMember(i);
    if (!ms.inited || ms.dead || !runtime_->BucketExists(b)) continue;
    Message freeze;
    freeze.type = MsgType::kReconstructRequest;
    freeze.from = site_;
    freeze.to = runtime_->SiteOfBucket(b);
    freeze.key = b;
    freeze.bucket_to_split = group_;
    freeze.filter_id = 0;
    freeze.request_id = epoch_;
    net.Send(std::move(freeze));
  }
  ArmTick(net);
}

void ParityServer::ArmTick(Network& net) {
  if (tick_armed_) return;
  tick_armed_ = true;
  Message tick;
  tick.type = MsgType::kRecoveryTick;
  tick.from = site_;
  tick.to = site_;
  net.ScheduleTimer(std::move(tick), 1000);
}

void ParityServer::CheckGather(Network& net) {
  if (!gather_active_ || decode_valid_) return;
  // 1. Every live existing member sliced; every dead or retired member's
  //    already-emitted updates fully drained (in flight nowhere, applied
  //    here in order).
  for (int i = 0; i < k_; ++i) {
    const MemberState& ms = members_[static_cast<size_t>(i)];
    if (!ms.inited) continue;
    const uint64_t b = BucketOfMember(i);
    if (ms.dead || !runtime_->BucketExists(b)) {
      if (!ms.ooo.empty()) return;
      if (!runtime_->MemberTrafficDrained(b)) return;
    } else if (!slices_.count(i)) {
      return;
    }
  }
  // 2. Targets: the exact per-member cut of the update stream the decode
  //    represents. All values are final here — survivors are frozen at
  //    their slice seq, dead and retired members have drained.
  targets_.clear();
  for (int i = 0; i < k_; ++i) {
    const MemberState& ms = members_[static_cast<size_t>(i)];
    if (!ms.inited) continue;
    auto slice = slices_.find(i);
    targets_[i] = slice != slices_.end() ? slice->second.seq : ms.applied;
  }
  // 3. This row converged to the cut (stragglers may still be in flight).
  for (const auto& [i, seq] : targets_) {
    const MemberState& ms = members_[static_cast<size_t>(i)];
    ESSDDS_CHECK(ms.applied <= seq)
        << "parity row ahead of frozen member " << i;
    if (ms.applied != seq) return;
  }
  // 4. Align the live peers on the same cut.
  const std::vector<SiteId> psites =
      runtime_->ParitySitesOfBucket(BucketOfMember(0));
  if (!targets_sent_) {
    targets_sent_ = true;
    for (size_t j = 0; j < psites.size(); ++j) {
      if (static_cast<int>(j) == parity_index_) continue;
      if (runtime_->SiteIsDead(psites[j])) continue;
      peers_awaited_.insert(static_cast<int>(j));
      Message align;
      align.type = MsgType::kReconstructRequest;
      align.from = site_;
      align.to = psites[j];
      align.filter_id = 1;
      align.filter_arg = EncodeSeqTargets(targets_);
      align.request_id = epoch_;
      align.bucket_to_split = group_;
      net.Send(std::move(align));
    }
  }
  if (!peers_awaited_.empty()) return;
  DecodeDead(net);
}

void ParityServer::DecodeDead(Network& net) {
  const auto start = std::chrono::steady_clock::now();
  if (obs::kMetricsEnabled) {
    // Phase timer (freeze): freeze broadcast -> every survivor sliced, the
    // update stream drained to the cut, and peers aligned. Virtual time,
    // like declare_us — it spans message round-trips, not local CPU.
    net.metrics()
        .histogram("recovery.freeze_us")
        .Record(net.now_us() - gather_started_us_);
  }
  // Rank universe: every rank any survivor, parity row, or dead member's
  // mirror mentions.
  std::set<uint64_t> ranks;
  for (const auto& [i, info] : slices_) {
    (void)i;
    for (const auto& [rank, buf] : info.buffers) {
      (void)buf;
      ranks.insert(rank);
    }
  }
  for (const auto& [rank, buf] : parity_) {
    (void)buf;
    ranks.insert(rank);
  }
  for (const auto& [j, piece] : peer_pieces_) {
    (void)j;
    for (const auto& [rank, buf] : piece) {
      (void)buf;
      ranks.insert(rank);
    }
  }
  for (int i : dead_members_) {
    for (const auto& [key, rank] : members_[static_cast<size_t>(i)].key_rank) {
      (void)key;
      ranks.insert(rank);
    }
  }

  const std::vector<SiteId> psites =
      runtime_->ParitySitesOfBucket(BucketOfMember(0));
  shadow_.clear();
  for (int i : dead_members_) {
    const MemberState& ms = members_[static_cast<size_t>(i)];
    Shadow& sh = shadow_[i];
    sh.key_rank = ms.key_rank;
    sh.level = ms.level;
    sh.loading = ms.loading;
    sh.seq = ms.applied;
  }

  std::vector<std::optional<Bytes>> pieces(
      static_cast<size_t>(k_ + m_));
  for (uint64_t rank : ranks) {
    for (int i = 0; i < k_; ++i) {
      const MemberState& ms = members_[static_cast<size_t>(i)];
      if (ms.dead) {
        pieces[static_cast<size_t>(i)] = std::nullopt;
        continue;
      }
      auto slice = slices_.find(i);
      if (slice == slices_.end()) {
        // Never created or retired: contributes zero at every rank.
        pieces[static_cast<size_t>(i)] = Bytes{};
        continue;
      }
      auto buf = slice->second.buffers.find(rank);
      pieces[static_cast<size_t>(i)] =
          buf != slice->second.buffers.end() ? buf->second : Bytes{};
    }
    for (int j = 0; j < m_; ++j) {
      const size_t slot = static_cast<size_t>(k_ + j);
      if (j == parity_index_) {
        auto buf = parity_.find(rank);
        pieces[slot] = buf != parity_.end() ? buf->second : Bytes{};
        continue;
      }
      if (runtime_->SiteIsDead(psites[static_cast<size_t>(j)])) {
        pieces[slot] = std::nullopt;
        continue;
      }
      auto piece = peer_pieces_.find(j);
      ESSDDS_CHECK(piece != peer_pieces_.end());
      auto buf = piece->second.find(rank);
      pieces[slot] = buf != piece->second.end() ? buf->second : Bytes{};
    }
    auto decoded = code_.Decode(pieces);
    if (!decoded.ok()) {
      // Which slots survived matters more than the status string when a
      // decode dies — dump the piece bitmap.
      std::string have;
      for (size_t s = 0; s < pieces.size(); ++s) {
        have += pieces[s].has_value() ? '1' : '0';
      }
      ESSDDS_CHECK(false) << "reconstruction decode failed: "
                          << decoded.status().ToString() << " pieces=" << have
                          << " dead=" << dead_members_.size();
    }
    for (int i : dead_members_) {
      auto entry = ParseRankBuffer(decoded.value()[static_cast<size_t>(i)]);
      ESSDDS_CHECK(entry.ok())
          << "decoded rank " << rank << " of member " << i
          << " unparseable: " << entry.status().ToString();
      if (!entry.value().present) continue;
      Shadow& sh = shadow_[i];
      auto mirror = sh.key_rank.find(entry.value().key);
      ESSDDS_CHECK(mirror != sh.key_rank.end() && mirror->second == rank)
          << "decoded record disagrees with parity rank mirror";
      sh.records.emplace(entry.value().key, std::move(entry.value().value));
    }
  }
  for (int i : dead_members_) {
    const Shadow& sh = shadow_[i];
    ESSDDS_CHECK(sh.records.size() == sh.key_rank.size())
        << "decode of member " << i << " missing records";
  }
  decode_valid_ = true;
  if (obs::kMetricsEnabled) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    net.metrics()
        .histogram("recovery.decode_us")
        .Record(static_cast<uint64_t>(us));
  }
  ServeParkedReads(net);
  // Rebuild orders that arrived mid-gather install now.
  const std::set<int> pending = pending_rebuilds_;
  for (int member : pending) InstallRebuild(member, net);
}

void ParityServer::InstallRebuild(int member, Network& net) {
  const auto install_start = std::chrono::steady_clock::now();
  ESSDDS_CHECK(decode_valid_);
  auto sh = shadow_.find(member);
  ESSDDS_CHECK(sh != shadow_.end());
  const uint64_t bucket = BucketOfMember(member);

  RebuiltBucket state;
  state.level = sh->second.level;
  state.loading = sh->second.loading;
  state.parity_seq = sh->second.seq;
  for (const auto& [key, rank] : sh->second.key_rank) {
    auto record = sh->second.records.find(key);
    ESSDDS_CHECK(record != sh->second.records.end());
    state.rank_records[rank] = WireRecord{key, record->second};
  }
  runtime_->RebuildBucket(bucket, std::move(state));
  if (obs::kMetricsEnabled) {
    net.metrics().counter("recovery.rebuilt_buckets").Increment();
  }

  MemberState& ms = members_[static_cast<size_t>(member)];
  ms.dead = false;
  dead_members_.erase(member);
  pending_rebuilds_.erase(member);
  shadow_.erase(member);

  // Mutations that waited for this bucket chase it to the new site.
  const SiteId dest = runtime_->SiteOfBucket(bucket);
  for (auto it = parked_ops_.begin(); it != parked_ops_.end();) {
    Message& op = it->second;
    uint64_t target;
    switch (op.type) {
      case MsgType::kInsert:
      case MsgType::kDelete:
      case MsgType::kLookup:  // parked off a loading shadow
        target = op.bucket_to_split;
        while (target != 0 && !runtime_->BucketExists(target)) {
          target = ParentBucket(target);
        }
        break;
      case MsgType::kMoveRecords:
      case MsgType::kMergeRecords:
      case MsgType::kScan:  // parked off a loading shadow; carries its bucket
        target = op.key;
        break;
      default:  // kSplit / kMerge carry their victim explicitly
        target = op.bucket_to_split;
        break;
    }
    if (target != bucket) {
      ++it;
      continue;
    }
    Message fwd = std::move(op);
    fwd.from = site_;
    fwd.to = dest;
    net.Send(std::move(fwd));
    it = parked_ops_.erase(it);
  }

  Message done;
  done.type = MsgType::kRebuildDone;
  done.from = site_;
  done.to = runtime_->CoordinatorSite();
  done.key = bucket;
  net.Send(std::move(done));

  if (obs::kMetricsEnabled) {
    // Phase timer (install): shadow -> live bucket, parked ops chased,
    // coordinator notified. Local CPU time, like decode_us.
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - install_start)
                        .count();
    net.metrics()
        .histogram("recovery.install_us")
        .Record(static_cast<uint64_t>(us));
  }

  if (dead_members_.empty()) ReleaseAll(net);
}

void ParityServer::ReleaseAll(Network& net) {
  const std::vector<SiteId> psites =
      runtime_->ParitySitesOfBucket(BucketOfMember(0));
  for (int i = 0; i < k_; ++i) {
    const MemberState& ms = members_[static_cast<size_t>(i)];
    const uint64_t b = BucketOfMember(i);
    if (!ms.inited || !runtime_->BucketExists(b)) continue;
    Message release;
    release.type = MsgType::kReconstructRequest;
    release.from = site_;
    release.to = runtime_->SiteOfBucket(b);
    release.key = b;
    release.bucket_to_split = group_;
    release.filter_id = 2;
    release.request_id = epoch_;
    net.Send(std::move(release));
  }
  for (size_t j = 0; j < psites.size(); ++j) {
    if (static_cast<int>(j) == parity_index_) continue;
    if (runtime_->SiteIsDead(psites[j])) continue;
    Message release;
    release.type = MsgType::kReconstructRequest;
    release.from = site_;
    release.to = psites[j];
    release.filter_id = 2;
    release.request_id = epoch_;
    release.bucket_to_split = group_;
    net.Send(std::move(release));
  }
  gather_active_ = false;
  decode_valid_ = false;
  targets_sent_ = false;
  targets_.clear();
  slices_.clear();
  peer_pieces_.clear();
  peers_awaited_.clear();
  shadow_.clear();
}

// --- peer role ---------------------------------------------------------

void ParityServer::CheckPeerConverged(Network& net) {
  if (!have_peer_targets_ || peer_piece_sent_) return;
  for (const auto& [i, seq] : peer_targets_) {
    const MemberState& ms = members_[static_cast<size_t>(i)];
    ESSDDS_CHECK(ms.applied <= seq)
        << "peer parity row ahead of the gather cut at member " << i;
    if (ms.applied != seq) return;
  }
  Message piece;
  piece.type = MsgType::kReconstructSlice;
  piece.from = site_;
  piece.to = peer_proxy_site_;
  piece.key = BucketOfMember(0);
  piece.bucket_to_split = group_;
  piece.request_id = peer_epoch_;
  piece.records.reserve(parity_.size());
  for (const auto& [rank, buf] : parity_) {
    piece.records.push_back(WireRecord{rank, buf});
  }
  net.Send(std::move(piece));
  peer_piece_sent_ = true;
  held_ = true;
}

// --- degraded serving --------------------------------------------------

void ParityServer::ServeParkedReads(Network& net) {
  std::vector<Message> reads = std::move(parked_reads_);
  parked_reads_.clear();
  for (Message& m : reads) OnMessage(m, net);
}

void ParityServer::ServeDegradedLookup(Message& msg, Network& net,
                                       int member) {
  const Shadow& sh = shadow_.at(member);
  const uint64_t bucket = BucketOfMember(member);
  // Address verification exactly as the dead server would have run it,
  // under its reconstructed level.
  const uint64_t image = LhKeyImage(msg.key, options_);
  const uint64_t a_prime = image & ((uint64_t{1} << sh.level) - 1);
  uint64_t route = bucket;
  if (a_prime != bucket) {
    route = a_prime;
    if (sh.level >= 1) {
      const uint64_t a_second =
          image & ((uint64_t{1} << (sh.level - 1)) - 1);
      if (a_second > bucket && a_second < a_prime) route = a_second;
    }
  }
  if (route != bucket) {
    while (route != 0 && !runtime_->BucketExists(route)) {
      route = ParentBucket(route);
    }
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(route);
    fwd.bucket_to_split = route;
    fwd.hops = msg.hops + 1;
    if (msg.hops == 0) {
      fwd.has_iam = true;
      fwd.iam_level = sh.level;
      fwd.iam_address = bucket;
    }
    net.Send(std::move(fwd));
    return;
  }
  if (obs::kMetricsEnabled) {
    net.metrics().counter("recovery.degraded_reads").Increment();
  }
  Message reply;
  reply.type = MsgType::kLookupReply;
  reply.from = site_;
  reply.to = msg.reply_to;
  reply.request_id = msg.request_id;
  reply.trace_id = msg.trace_id;
  reply.key = msg.key;
  if (msg.hops > 0) {
    reply.has_iam = true;
    reply.iam_level = msg.iam_level;
    reply.iam_address = msg.iam_address;
  }
  auto it = sh.records.find(msg.key);
  reply.found = it != sh.records.end();
  if (reply.found) reply.value = it->second;
  net.Send(std::move(reply));
}

void ParityServer::ServeDegradedScan(Message& msg, Network& net, int member) {
  Shadow& sh = shadow_.at(member);
  const uint64_t bucket = BucketOfMember(member);
  // Propagate to split descendants the sender's image missed, exactly as
  // the dead server would have (its reconstructed level says which).
  for (uint32_t l = msg.assumed_level; l < sh.level; ++l) {
    const uint64_t child = bucket + (uint64_t{1} << l);
    if (!runtime_->BucketExists(child)) continue;
    Message fwd = msg;
    fwd.from = site_;
    fwd.to = runtime_->SiteOfBucket(child);
    fwd.key = child;
    fwd.assumed_level = l + 1;
    fwd.hops = msg.hops + 1;
    net.Send(std::move(fwd));
  }
  if (obs::kMetricsEnabled) {
    net.metrics().counter("recovery.degraded_scans").Increment();
  }
  ScanTask task;
  task.bucket = bucket;
  task.records = &sh.records;
  task.has_columns = false;
  task.filter = &runtime_->FilterById(msg.filter_id);
  task.arg = Bytes(msg.filter_arg.begin(), msg.filter_arg.end());
  task.live_generation = &shadow_generation_;
  task.enqueue_generation = shadow_generation_;
  task.reply.type = MsgType::kScanReply;
  task.reply.from = site_;
  task.reply.to = msg.reply_to;
  task.reply.request_id = msg.request_id;
  task.reply.trace_id = msg.trace_id;
  task.reply.key = bucket;
  task.reply.new_level = sh.level;
  // Always evaluated inline: the shadow is immutable while it exists, and
  // parking it in the deferred batch would dangle once the bucket installs.
  ExecuteScanTask(task);
  net.Send(std::move(task.reply));
}

}  // namespace essdds::sdds
