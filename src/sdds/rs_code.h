#ifndef ESSDDS_SDDS_RS_CODE_H_
#define ESSDDS_SDDS_RS_CODE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "gf/matrix.h"
#include "util/bytes.h"
#include "util/result.h"

namespace essdds::sdds {

/// Systematic Reed-Solomon erasure code over GF(2^8) with a Cauchy parity
/// matrix — the coding layer of the paper's LH*_RS companion ([LMS05]): k
/// data buckets per group plus m parity buckets survive any m simultaneous
/// site failures. Also demonstrates the claim in the paper's Stage 3 that
/// "any dispersion algorithm (such as erasure correcting codes popularized
/// as IDA) that maintains the same information will do".
class RsCode {
 public:
  /// Creates a (k, m) code; requires 1 <= k, 1 <= m, k + m <= 256.
  static Result<RsCode> Create(int k, int m);

  int k() const { return k_; }
  int m() const { return m_; }

  /// Generator coefficient of parity row `j` (0-based) applied to data
  /// member `i`. Because GF(2^8) addition is XOR, an incremental update of
  /// one data buffer folds into parity j as
  ///   parity_j ^= ParityCoeff(j, i) * (old ^ new)
  /// — the identity LH*_RS parity buckets apply per record delta.
  uint8_t ParityCoeff(int j, int i) const {
    return static_cast<uint8_t>(generator_.At(k_ + j, i));
  }

  /// Encodes k equal-length data buffers into m parity buffers.
  Result<std::vector<Bytes>> Encode(const std::vector<Bytes>& data) const;

  /// Reconstructs all k data buffers from any k surviving pieces. `pieces`
  /// has k + m slots (data first, then parity); erased slots are nullopt.
  /// Fails when fewer than k pieces survive.
  Result<std::vector<Bytes>> Decode(
      const std::vector<std::optional<Bytes>>& pieces) const;

 private:
  RsCode(int k, int m, gf::GfMatrix generator);

  int k_;
  int m_;
  /// (k+m) x k over GF(2^8): identity on top, Cauchy parity rows below.
  /// Every k x k submatrix is invertible (MDS property).
  gf::GfMatrix generator_;
};

/// Serializes a bucket's record map for parity computation / recovery
/// (length-prefixed records). Used by the recovery tooling and tests.
Bytes SerializeRecords(const std::vector<std::pair<uint64_t, Bytes>>& records);
Result<std::vector<std::pair<uint64_t, Bytes>>> DeserializeRecords(
    ByteSpan data);

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_RS_CODE_H_
