#ifndef ESSDDS_SDDS_LH_OPTIONS_H_
#define ESSDDS_SDDS_LH_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sdds/column_store.h"
#include "sdds/message.h"
#include "util/bytes.h"
#include "util/logging.h"

namespace essdds::persist {
class BucketLog;
}  // namespace essdds::persist

namespace essdds::sdds {

/// Which multicomputer simulation carries an LH* file's traffic.
enum class NetworkMode : uint8_t {
  /// SimNetwork: zero-latency, synchronous, re-entrant delivery. Fully
  /// deterministic; splits and merges complete inside the client call that
  /// triggered them.
  kSync = 0,
  /// EventNetwork: discrete-event schedule with seeded per-message latency,
  /// cross-link reordering, and optional fault injection. Restructuring
  /// traffic stays in flight across client operations, so the protocol runs
  /// under real interleavings; clients keep retransmission state.
  kEvent,
};

/// Knobs of the discrete-event network simulation (NetworkMode::kEvent).
/// Every random choice — latency draws, drop/duplicate rolls — comes from
/// one generator seeded with `seed`, so a run is replayable from the seed
/// alone.
struct EventNetworkOptions {
  uint64_t seed = 1;

  /// Per-message latency, drawn uniformly from [min, max] microseconds of
  /// virtual time. Distinct latencies are what reorder messages on
  /// different links.
  uint32_t min_latency_us = 20;
  uint32_t max_latency_us = 2000;

  /// Keep each (sender, receiver) link first-in-first-out (TCP-like): a
  /// message never overtakes an earlier one on the same link. Cross-link
  /// reordering still happens. Setting this false reorders within links
  /// too (UDP-like) — the protocol survives it, at the cost of extra
  /// forwarding chatter during merges.
  bool fifo_links = true;

  /// Fault injection, applied only to fault-eligible messages — client key
  /// requests and their replies (kInsert/kLookup/kDelete and acks), which
  /// the client retry machinery recovers. Protocol-internal transfers
  /// (splits, merges, bulk moves) and scans have no retransmission layer
  /// and are never dropped or duplicated by these knobs.
  double drop_prob = 0.0;
  double duplicate_prob = 0.0;

  /// Make protocol-internal traffic fault-eligible too. When set, the
  /// restructuring and parity messages (splits, merges, bulk moves, parity
  /// updates, reconstruction control) are carried over the network's
  /// reliable link layer — per-link sequence numbers, receiver acks,
  /// timeout-driven retransmission, exactly-once in-order delivery — and
  /// protocol_drop_prob / protocol_duplicate_prob apply to each frame (and
  /// its acks). Off (the default) keeps the legacy contract: protocol
  /// frames are scheduled directly and never dropped.
  bool protocol_faults = false;
  double protocol_drop_prob = 0.0;
  double protocol_duplicate_prob = 0.0;

  /// Reliable-layer retransmission timer: an unacked frame is resent every
  /// ack_timeout_us of virtual time. Must comfortably exceed 2x the max
  /// latency or every frame is spuriously resent once.
  uint32_t ack_timeout_us = 8000;

  /// Retransmissions per frame before the network aborts the run (a frame
  /// to a LIVE site failing this many independent Bernoulli drops means the
  /// configuration is broken, not unlucky; frames to killed sites park
  /// instead of retrying). p=0.2^64 is never.
  uint32_t max_frame_retransmits = 64;

  friend bool operator==(const EventNetworkOptions&,
                         const EventNetworkOptions&) = default;
};

/// Tuning knobs of an LH* file.
struct LhOptions {
  /// Records per bucket before the bucket reports an overflow to the split
  /// coordinator. Real deployments use thousands; tests use small values to
  /// exercise many splits.
  size_t bucket_capacity = 64;

  /// When positive, a bucket whose record count falls below
  /// merge_threshold * bucket_capacity after a delete reports an underflow,
  /// and the coordinator dissolves the most recently created bucket back
  /// into its parent — the file shrinks transparently, the inverse of
  /// splitting ("the number of storage sites ... grows and shrinks with the
  /// storage needs"). 0 disables shrinking.
  double merge_threshold = 0.0;

  /// Mix keys through a 64-bit finalizer before the linear-hash address
  /// computation. LH* addressing (key mod 2^i) assumes uniformly
  /// distributed keys; structured keys — like the scheme's index keys,
  /// whose low bits hold the (chunking, dispersal-site) sub-id — would
  /// otherwise collapse onto a handful of addresses and thrash the split
  /// chain. Disable only for tests that reason about raw key placement.
  bool hash_keys = true;

  /// Worker threads for parallel scan evaluation. With a value > 1, bucket
  /// scans are deferred off the messaging path and evaluated concurrently
  /// on the network's persistent ScanWorkerPool (started lazily on the
  /// first parallel scan, reused for every batch), then replied in
  /// ascending bucket order — results and message/byte accounting are
  /// identical to the serial mode. 0 (the default) and 1 keep the
  /// single-threaded deterministic delivery where each bucket evaluates
  /// inline on message receipt.
  size_t scan_threads = 0;

  /// Intra-bucket parallelism threshold: a deferred scan task whose bucket
  /// holds more than this many records is split into up to scan_threads
  /// contiguous key-range shards evaluated concurrently, with shard hits
  /// spliced back in ascending key order — results stay byte-identical to
  /// the unsharded (and serial) evaluation. 0 shards every bucket with
  /// more than one record; SIZE_MAX disables sharding. Only read when
  /// scan_threads > 1.
  size_t scan_shard_min_records = 1024;

  /// Which network simulation carries the file's messages (see
  /// NetworkMode). kSync keeps the seed behaviour bit-for-bit.
  NetworkMode network_mode = NetworkMode::kSync;

  /// Event-network schedule and fault knobs; read only under
  /// NetworkMode::kEvent.
  EventNetworkOptions event_net = {};

  /// Client request timeout in virtual microseconds (event network only):
  /// a request unanswered past the deadline is retransmitted with the same
  /// request id. The default sits far above max_latency_us so fault-free
  /// runs never retry spuriously; an idle network without a reply
  /// retransmits immediately (the request was provably lost).
  uint64_t request_timeout_us = 10'000'000;

  /// Retransmissions per request before the client gives up (aborts with a
  /// diagnostic). Bounded exponential backoff doubles the timeout each
  /// attempt up to 2^6.
  uint32_t max_request_retries = 16;

  /// Directory for durable encrypted-at-rest bucket logs (src/persist). When
  /// set, every record-map mutation is appended to the owning bucket's log
  /// before it is acknowledged, and a new LhSystem over the same directory
  /// replays the logs back into its buckets (records, levels, extent, and
  /// the ColumnStore mirrors) before serving. Empty keeps every bucket
  /// RAM-only (the pre-persistence behaviour); ignored with a warning when
  /// the build has -DESSDDS_PERSIST=OFF.
  std::string data_dir = {};

  /// Master secret the per-bucket at-rest log keys derive from
  /// (crypto::KeyChain::PersistKey). Empty selects a fixed development
  /// master so an unconfigured shell still round-trips; a real deployment
  /// must supply its own. Recovery needs the same master that wrote the
  /// logs — a mismatch replays as corrupt (flagged, recovered empty).
  Bytes persist_master = {};

  /// Checkpoint compaction floor: a bucket log is rewritten as a single
  /// snapshot frame only once it exceeds this size AND has at least doubled
  /// since its last checkpoint. Small values force frequent compaction
  /// (tests); 0 checkpoints on every doubling.
  size_t log_checkpoint_min_bytes = 64 * 1024;

  /// Fsync every log append and checkpoint rename, extending the at-rest
  /// durability contract from process crashes to OS crashes and power loss.
  /// Off by default — appends then flush only to the OS page cache (fast,
  /// and sufficient for the simulated-site process-crash model).
  bool persist_fsync = false;

  // --- high availability: LH*RS-style parity groups (DESIGN.md §16) ---

  /// Parity group size k: every k consecutive data buckets form a group
  /// whose record state is Reed-Solomon coded (RsCode) onto parity_count
  /// parity buckets, kept in sync by kParityUpdate deltas emitted at every
  /// record-map mutation. 0 (the default) disables parity entirely — no
  /// parity sites, no update traffic, byte-identical to the pre-HA system.
  size_t parity_group_size = 0;

  /// Parity buckets m per group: the group survives any m simultaneous
  /// site losses (records reconstructed bit-for-bit from the survivors).
  /// Read only when parity_group_size > 0. Requires k + m <= 256.
  size_t parity_count = 1;

  /// Client-side failure detection: after this many unanswered
  /// retransmissions of one request the client reports the addressed
  /// bucket to the coordinator (kDeadSite) — and keeps retrying; the
  /// coordinator verifies with a ping probe before declaring the site dead.
  /// Only active when parity is enabled on an event network.
  uint32_t report_dead_after_retries = 2;

  /// Coordinator probe patience: a pinged bucket that stays silent for this
  /// much virtual time is re-pinged; after ping_attempts unanswered pings
  /// it is declared dead and reconstruction starts.
  uint64_t ping_timeout_us = 200'000;

  /// Pings sent (ping_timeout_us apart) before a silent bucket is declared
  /// dead. More attempts make false declaration — which costs one erasure
  /// of parity headroom for nothing — robust against latency tails and
  /// protocol-fault retransmission delays.
  uint32_t ping_attempts = 3;

  /// Virtual-time delay between declaring a site dead and asking the parity
  /// proxy to rebuild it. A positive hold widens the degraded-mode window
  /// (lookups and scans decode-on-the-fly at the proxy) — used by tests and
  /// the recovery bench to measure degraded reads; 0 rebuilds immediately.
  uint64_t recovery_hold_us = 0;

  /// Slow-op structured logging threshold, in microseconds (virtual on the
  /// simulated networks, wall-clock on the socket client). Any client
  /// operation whose submit-to-completion latency meets or exceeds the
  /// threshold emits one structured JSON line (obs::LogEvent "slow_op")
  /// carrying its trace id, so the op can be fed straight to
  /// AdminClient::AssembleTrace / `essdds_admin trace`. 0 (the default)
  /// disables slow-op logging entirely.
  uint64_t slow_op_us = 0;
};

/// The key mixer used when LhOptions::hash_keys is set (splitmix64
/// finalizer: bijective, well-distributed in the low bits LH* consumes).
uint64_t LhKeyHash(uint64_t key);

/// Address-relevant image of a key under the given options.
inline uint64_t LhKeyImage(uint64_t key, const LhOptions& options) {
  return options.hash_keys ? LhKeyHash(key) : key;
}

/// Site-side scan predicate, deployed at every bucket (stands in for query
/// code shipped to the sites). A scan delivers its opaque wire argument
/// once per bucket via Prepare(), which compiles it into an immutable
/// per-scan state; Matches() then runs per record against that state.
///
/// Lifecycle: Prepare() is thread-safe and called with the scan message's
/// argument bytes — once per (scan, bucket) in the serial inline mode, but
/// only once per scan in deferred (thread-pool) mode, where the single
/// returned Prepared instance is shared by every bucket of that scan and
/// its Matches() runs concurrently from several workers. Matches() must
/// therefore be const and thread-safe: no unsynchronized mutable members —
/// per-thread scratch buffers belong in thread_local storage. A Prepared
/// never outlives its scan.
class ScanFilter {
 public:
  class Prepared {
   public:
    virtual ~Prepared() = default;

    /// True when the record is a hit. Called once per record of the bucket;
    /// implementations should avoid per-record allocation.
    virtual bool Matches(uint64_t key, ByteSpan value) const = 0;

    /// Batch evaluation over a columnar bucket slice: appends a
    /// WireRecord{key, payload} to `out` for every hit among records
    /// [begin, end), in ascending index (= ascending key) order. This is
    /// the hot scan path when a bucket carries a column store — one virtual
    /// call per shard instead of one per record, and the payloads stream
    /// out of a contiguous arena. The default walks Matches() per record;
    /// filters with a batch engine (bit-parallel matchers) override it.
    /// Must produce exactly the hits the per-record Matches() would — the
    /// serial/pooled/sharded byte-identity bar depends on it.
    virtual void MatchColumns(const ColumnSlice& slice, size_t begin,
                              size_t end, std::vector<WireRecord>* out) const {
      for (size_t i = begin; i < end; ++i) {
        const ByteSpan payload = slice.payload(i);
        if (Matches(slice.keys[i], payload)) {
          out->push_back(
              WireRecord{slice.keys[i], Bytes(payload.begin(), payload.end())});
        }
      }
    }
  };

  virtual ~ScanFilter() = default;

  /// Compiles `arg` into per-scan state. Returning nullptr (e.g. for a
  /// malformed argument) makes the scan match nothing at this bucket.
  virtual std::unique_ptr<Prepared> Prepare(ByteSpan arg) const = 0;
};

/// Adapts a stateless predicate to the ScanFilter interface, for filters
/// with no per-scan compilation step (tests, simple selections). The
/// predicate receives the scan argument on every call.
std::unique_ptr<ScanFilter> MakeScanFilter(
    std::function<bool(uint64_t key, ByteSpan value, ByteSpan arg)> predicate);

/// State of a data bucket reconstructed from parity + surviving group
/// members, handed from the recovery proxy to the hosting system to install
/// on a spare server (LhRuntime::RebuildBucket).
struct RebuiltBucket {
  uint32_t level = 0;
  /// The bucket died while awaiting its kMoveRecords bulk load; the rebuilt
  /// server starts parked the same way (the transfer redelivers to it).
  bool loading = false;
  /// Parity updates the bucket had emitted; the rebuilt server continues
  /// the per-member sequence from here.
  uint64_t parity_seq = 0;
  /// rank -> record. The rebuilt server adopts these ranks verbatim so the
  /// group's parity rows keep addressing the same record slots.
  std::map<uint64_t, WireRecord> rank_records;
};

/// Services that bucket servers and the coordinator obtain from the hosting
/// LhSystem: logical-bucket-to-site routing, bucket creation during splits,
/// and the registry of installed scan filters. Implemented by LhSystem.
class LhRuntime {
 public:
  virtual ~LhRuntime() = default;

  /// Site serving logical bucket `bucket`; addresses beyond the current
  /// extent fold onto the parent chain (merge forwarding stubs).
  virtual SiteId SiteOfBucket(uint64_t bucket) const = 0;

  /// True when the logical bucket exists.
  virtual bool BucketExists(uint64_t bucket) const = 0;

  /// Site of the split coordinator.
  virtual SiteId CoordinatorSite() const = 0;

  /// Allocates a new bucket server for logical bucket `bucket` at `level`
  /// (coordinator only). Returns its site id.
  virtual SiteId CreateBucket(uint64_t bucket, uint32_t level) = 0;

  /// Looks up an installed scan filter (aborts on unknown id: filters are
  /// installed before use).
  virtual const ScanFilter& FilterById(uint64_t filter_id) const = 0;

  /// The file's options (clients need the key-hashing setting to compute
  /// addresses consistently with the servers).
  virtual const LhOptions& options() const = 0;

  /// Removes the highest-numbered bucket from the routing directory after a
  /// merge (coordinator only). The server object is retired, not destroyed:
  /// in-flight references stay valid, and stale addresses fold onto the
  /// parent chain in SiteOfBucket.
  virtual void RetireLastBucket() = 0;

  /// The persistence log attached to logical bucket `bucket`, or nullptr
  /// when the bucket (or the whole system) runs RAM-only. Split/merge
  /// record transfers use this to write the receiving bucket's bulk-put
  /// durably BEFORE the sender logs its erase/clear — a crash between the
  /// two phases then leaves the moved records in both logs (repaired at
  /// recovery) instead of neither (silent loss).
  virtual persist::BucketLog* LogOfBucket(uint64_t /*bucket*/) {
    return nullptr;
  }

  // --- high availability (parity groups, DESIGN.md §16). Defaults keep
  // runtimes without parity support (single-bucket hosts, tests) compiling;
  // LhSystem overrides all of them when parity_group_size > 0. ---

  /// Parity sites of the group containing data bucket `bucket`, in parity
  /// row order. Empty when parity is disabled.
  virtual std::vector<SiteId> ParitySitesOfBucket(uint64_t /*bucket*/) const {
    return {};
  }

  /// True when `site` has been killed in the simulation (fail-stop). The
  /// recovery proxy uses this to fold not-yet-declared dead group members
  /// into a gather instead of waiting on them forever.
  virtual bool SiteIsDead(SiteId /*site*/) const { return false; }

  /// Declares data bucket `bucket` dead (coordinator only): reroutes its
  /// address onto the group's recovery proxy — the first live parity site —
  /// and starts the proxy's reconstruction gather. Returns the proxy site.
  virtual SiteId MarkBucketDead(uint64_t /*bucket*/) {
    ESSDDS_CHECK(false) << "runtime has no parity support";
    return kInvalidSite;
  }

  /// Installs reconstructed bucket state on a fresh spare server, restores
  /// routing (dead-bucket entry dropped, network redirected so parked
  /// frames redeliver), and re-attaches persistence. Proxy only, after its
  /// decode converged.
  virtual void RebuildBucket(uint64_t /*bucket*/, RebuiltBucket /*state*/) {
    ESSDDS_CHECK(false) << "runtime has no parity support";
  }

  /// True when no frame sent by any site that ever served `bucket` is still
  /// in flight. The proxy's decode waits on this for dead members: a dead
  /// site's already-sent parity updates still deliver (fail-stop with
  /// drained output), and the decode must reflect all of them.
  virtual bool MemberTrafficDrained(uint64_t /*bucket*/) const { return true; }

  /// Notification that a bucket server halted on an unrecoverable append
  /// failure (persistence I/O error). Hosting runtimes that keep post-mortem
  /// telemetry (net::BucketHost) override this to flush it immediately —
  /// a halted bucket is exactly the state an operator will want a complete
  /// metrics file for. Default: no-op.
  virtual void OnBucketHalted(uint64_t /*bucket*/) {}
};

}  // namespace essdds::sdds

#endif  // ESSDDS_SDDS_LH_OPTIONS_H_
