#include "sdds/lh_options.h"

#include <utility>

namespace essdds::sdds {

uint64_t LhKeyHash(uint64_t key) {
  // splitmix64 finalizer.
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {

class PredicateFilter : public ScanFilter {
 public:
  explicit PredicateFilter(
      std::function<bool(uint64_t, ByteSpan, ByteSpan)> predicate)
      : predicate_(std::move(predicate)) {}

  std::unique_ptr<Prepared> Prepare(ByteSpan arg) const override {
    return std::make_unique<PreparedPredicate>(
        &predicate_, Bytes(arg.begin(), arg.end()));
  }

 private:
  class PreparedPredicate : public Prepared {
   public:
    PreparedPredicate(const std::function<bool(uint64_t, ByteSpan, ByteSpan)>*
                          predicate,
                      Bytes arg)
        : predicate_(predicate), arg_(std::move(arg)) {}

    bool Matches(uint64_t key, ByteSpan value) const override {
      return (*predicate_)(key, value, arg_);
    }

   private:
    const std::function<bool(uint64_t, ByteSpan, ByteSpan)>* predicate_;
    Bytes arg_;  // owned: the scan message may not outlive the evaluation
  };

  std::function<bool(uint64_t, ByteSpan, ByteSpan)> predicate_;
};

}  // namespace

std::unique_ptr<ScanFilter> MakeScanFilter(
    std::function<bool(uint64_t, ByteSpan, ByteSpan)> predicate) {
  return std::make_unique<PredicateFilter>(std::move(predicate));
}

}  // namespace essdds::sdds
