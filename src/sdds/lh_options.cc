#include "sdds/lh_options.h"

namespace essdds::sdds {

uint64_t LhKeyHash(uint64_t key) {
  // splitmix64 finalizer.
  uint64_t z = key + 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace essdds::sdds
