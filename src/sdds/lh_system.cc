#include "sdds/lh_system.h"

#include <utility>

namespace essdds::sdds {

LhSystem::LhSystem(LhOptions options)
    : options_(std::move(options)), coordinator_(this) {
  ESSDDS_CHECK(options_.bucket_capacity > 0);
  if (options_.network_mode == NetworkMode::kEvent) {
    auto event_net = std::make_unique<EventNetwork>(options_.event_net);
    event_network_ = event_net.get();
    network_ = std::move(event_net);
  } else {
    network_ = std::make_unique<SimNetwork>();
  }
  network_->set_scan_threads(options_.scan_threads);
  network_->set_scan_shard_min_records(options_.scan_shard_min_records);
  coordinator_site_ = network_->Register(&coordinator_);
  coordinator_.set_site(coordinator_site_);

  if (!options_.data_dir.empty()) {
    if (persist::kPersistEnabled) {
      persist_ = std::make_unique<persist::PersistManager>(
          persist::PersistManager::Options{options_.data_dir,
                                           options_.persist_master,
                                           options_.log_checkpoint_min_bytes,
                                           options_.persist_fsync},
          &network_->metrics());
      std::vector<persist::PersistManager::RecoveredBucket> recovered =
          persist_->Recover();
      if (!recovered.empty()) {
        // Restart over an existing file: re-create every live bucket at its
        // replayed level, install its records (and ColumnStore mirror), and
        // re-derive the coordinator's (i, n) from the extent.
        recovering_ = true;
        for (size_t b = 0; b < recovered.size(); ++b) {
          CreateBucket(b, recovered[b].level);
          servers_[b]->RestoreRecovered(std::move(recovered[b].records));
        }
        recovering_ = false;
        recovered_bucket_count_ = recovered.size();
        coordinator_.RestoreExtent(recovered.size());
        return;
      }
    } else {
      ESSDDS_LOG(kWarning)
          << "LhOptions::data_dir is set but this build has persistence "
             "compiled out (-DESSDDS_PERSIST=OFF); buckets stay RAM-only";
    }
  }
  CreateBucket(0, 0);
}

LhClient* LhSystem::NewClient() {
  clients_.push_back(std::make_unique<LhClient>(this, network_.get()));
  return clients_.back().get();
}

uint64_t LhSystem::InstallFilter(std::unique_ptr<ScanFilter> filter) {
  ESSDDS_CHECK(filter != nullptr);
  filters_.push_back(std::move(filter));
  return filters_.size() - 1;
}

uint64_t LhSystem::InstallFilter(
    std::function<bool(uint64_t key, ByteSpan value, ByteSpan arg)>
        predicate) {
  return InstallFilter(MakeScanFilter(std::move(predicate)));
}

SiteId LhSystem::SiteOfBucket(uint64_t bucket) const {
  // After a merge, stale client images can address buckets beyond the
  // current extent. The address table keeps forwarding stubs from dissolved
  // buckets to their parents: clearing the top set bit is exactly the
  // parent relation of linear hashing.
  while (bucket >= servers_.size()) {
    ESSDDS_CHECK(bucket != 0) << "empty file";
    uint64_t top = uint64_t{1} << 63;
    while ((bucket & top) == 0) top >>= 1;
    bucket &= ~top;
  }
  return servers_[bucket]->site();
}

bool LhSystem::BucketExists(uint64_t bucket) const {
  return bucket < servers_.size();
}

SiteId LhSystem::CoordinatorSite() const { return coordinator_site_; }

SiteId LhSystem::CreateBucket(uint64_t bucket, uint32_t level) {
  // Buckets are created in linear-hash order, so the new bucket's number is
  // always the next free slot.
  ESSDDS_CHECK(bucket == servers_.size())
      << "bucket creation out of order: " << bucket;
  servers_.push_back(
      std::make_unique<LhBucketServer>(this, options_, bucket, level));
  if (persist_ != nullptr) {
    // Recovery adopts the bucket's existing log; normal creation (the root
    // at construction, split targets later) starts a fresh one — truncating
    // any stale file left by a retired bucket whose number is being reused,
    // under a bumped epoch so keystreams never repeat.
    servers_.back()->AttachLog(
        persist_->OpenBucketLog(bucket, level, /*fresh=*/!recovering_));
  }
  const SiteId site = network_->Register(servers_.back().get());
  servers_.back()->set_site(site);
  return site;
}

void LhSystem::RetireLastBucket() {
  ESSDDS_CHECK(servers_.size() > 1) << "cannot retire the root bucket";
  ESSDDS_CHECK(servers_.back()->record_count() == 0)
      << "retiring a non-empty bucket";
  servers_.back()->Retire();
  // The retired server must not touch the log again: the bucket number may
  // be reused by a later split, which replaces the log object (the retired
  // server's pointer would dangle). Its kClear dissolution record is
  // already on disk by this point.
  servers_.back()->AttachLog(nullptr);
  retired_servers_.push_back(std::move(servers_.back()));
  servers_.pop_back();
}

persist::BucketLog* LhSystem::LogOfBucket(uint64_t bucket) {
  return persist_ == nullptr ? nullptr : persist_->log(bucket);
}

const ScanFilter& LhSystem::FilterById(uint64_t filter_id) const {
  ESSDDS_CHECK(filter_id < filters_.size())
      << "unknown scan filter " << filter_id;
  return *filters_[filter_id];
}

const LhBucketServer& LhSystem::bucket(uint64_t b) const {
  ESSDDS_CHECK(b < servers_.size());
  return *servers_[b];
}

LhBucketServer& LhSystem::mutable_bucket(uint64_t b) {
  ESSDDS_CHECK(b < servers_.size());
  return *servers_[b];
}

uint64_t LhSystem::TotalRecords() const {
  uint64_t total = 0;
  for (const auto& s : servers_) total += s->record_count();
  return total;
}

double LhSystem::LoadFactor() const {
  return static_cast<double>(TotalRecords()) /
         (static_cast<double>(bucket_count()) *
          static_cast<double>(options_.bucket_capacity));
}

}  // namespace essdds::sdds
