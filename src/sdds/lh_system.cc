#include "sdds/lh_system.h"

#include <utility>

namespace essdds::sdds {

LhSystem::LhSystem(LhOptions options)
    : options_(std::move(options)), coordinator_(this) {
  ESSDDS_CHECK(options_.bucket_capacity > 0);
  if (options_.network_mode == NetworkMode::kEvent) {
    auto event_net = std::make_unique<EventNetwork>(options_.event_net);
    event_network_ = event_net.get();
    network_ = std::move(event_net);
  } else {
    network_ = std::make_unique<SimNetwork>();
  }
  network_->set_scan_threads(options_.scan_threads);
  network_->set_scan_shard_min_records(options_.scan_shard_min_records);
  coordinator_site_ = network_->Register(&coordinator_);
  coordinator_.set_site(coordinator_site_);

  if (!options_.data_dir.empty()) {
    if (persist::kPersistEnabled) {
      persist_ = std::make_unique<persist::PersistManager>(
          persist::PersistManager::Options{options_.data_dir,
                                           options_.persist_master,
                                           options_.log_checkpoint_min_bytes,
                                           options_.persist_fsync},
          &network_->metrics());
      std::vector<persist::PersistManager::RecoveredBucket> recovered =
          persist_->Recover();
      if (!recovered.empty()) {
        // Restart over an existing file: re-create every live bucket at its
        // replayed level, install its records (and ColumnStore mirror), and
        // re-derive the coordinator's (i, n) from the extent.
        recovering_ = true;
        for (size_t b = 0; b < recovered.size(); ++b) {
          CreateBucket(b, recovered[b].level);
          servers_[b]->RestoreRecovered(std::move(recovered[b].records));
        }
        recovering_ = false;
        recovered_bucket_count_ = recovered.size();
        coordinator_.RestoreExtent(recovered.size());
        // Parity rows are RAM-only: re-encode them from the recovered data
        // buckets (fresh sequential ranks, sequences restarted at the data
        // servers' replayed counts — both sides reset together).
        if (options_.parity_group_size > 0) SeedParityFromData();
        return;
      }
    } else {
      ESSDDS_LOG(kWarning)
          << "LhOptions::data_dir is set but this build has persistence "
             "compiled out (-DESSDDS_PERSIST=OFF); buckets stay RAM-only";
    }
  }
  CreateBucket(0, 0);
}

LhClient* LhSystem::NewClient() {
  clients_.push_back(std::make_unique<LhClient>(this, network_.get()));
  return clients_.back().get();
}

uint64_t LhSystem::InstallFilter(std::unique_ptr<ScanFilter> filter) {
  ESSDDS_CHECK(filter != nullptr);
  filters_.push_back(std::move(filter));
  return filters_.size() - 1;
}

uint64_t LhSystem::InstallFilter(
    std::function<bool(uint64_t key, ByteSpan value, ByteSpan arg)>
        predicate) {
  return InstallFilter(MakeScanFilter(std::move(predicate)));
}

SiteId LhSystem::SiteOfBucket(uint64_t bucket) const {
  // After a merge, stale client images can address buckets beyond the
  // current extent. The address table keeps forwarding stubs from dissolved
  // buckets to their parents: clearing the top set bit is exactly the
  // parent relation of linear hashing.
  while (bucket >= servers_.size()) {
    ESSDDS_CHECK(bucket != 0) << "empty file";
    uint64_t top = uint64_t{1} << 63;
    while ((bucket & top) == 0) top >>= 1;
    bucket &= ~top;
  }
  // A declared-dead bucket's address points at its recovery proxy until
  // the rebuild installs; retries, forwards, and parked-op replays all
  // resolve there.
  auto dead = dead_buckets_.find(bucket);
  if (dead != dead_buckets_.end()) return dead->second;
  return servers_[bucket]->site();
}

bool LhSystem::BucketExists(uint64_t bucket) const {
  return bucket < servers_.size();
}

SiteId LhSystem::CoordinatorSite() const { return coordinator_site_; }

SiteId LhSystem::CreateBucket(uint64_t bucket, uint32_t level) {
  // Buckets are created in linear-hash order, so the new bucket's number is
  // always the next free slot.
  ESSDDS_CHECK(bucket == servers_.size())
      << "bucket creation out of order: " << bucket;
  servers_.push_back(
      std::make_unique<LhBucketServer>(this, options_, bucket, level));
  if (persist_ != nullptr) {
    // Recovery adopts the bucket's existing log; normal creation (the root
    // at construction, split targets later) starts a fresh one — truncating
    // any stale file left by a retired bucket whose number is being reused,
    // under a bumped epoch so keystreams never repeat.
    servers_.back()->AttachLog(
        persist_->OpenBucketLog(bucket, level, /*fresh=*/!recovering_));
  }
  const SiteId site = network_->Register(servers_.back().get());
  servers_.back()->set_site(site);
  site_history_[bucket].push_back(site);
  if (options_.parity_group_size > 0) {
    const uint64_t group = bucket / options_.parity_group_size;
    EnsureParityGroup(group);
    // A number-reusing re-creation (split after a merge-retire) continues
    // the retired bucket's parity update sequence — the group's parity
    // sites track one stream per member slot, not per incarnation.
    auto seq = last_parity_seq_.find(bucket);
    if (seq != last_parity_seq_.end()) {
      servers_.back()->set_parity_seq(seq->second);
    }
    // Split targets are born loading (restart recovery restores them as
    // settled, and the root never loads).
    const bool loading = bucket != 0 && !recovering_;
    for (auto& ps : parity_servers_[group]) {
      ps->InitMember(bucket, level, loading, *network_);
    }
  }
  return site;
}

void LhSystem::EnsureParityGroup(uint64_t group) {
  auto& row = parity_servers_[group];
  if (!row.empty()) return;
  for (int j = 0; j < static_cast<int>(options_.parity_count); ++j) {
    auto ps = std::make_unique<ParityServer>(this, options_, group, j);
    const SiteId site = network_->Register(ps.get());
    ps->set_site(site);
    row.push_back(std::move(ps));
  }
}

void LhSystem::RetireLastBucket() {
  ESSDDS_CHECK(servers_.size() > 1) << "cannot retire the root bucket";
  ESSDDS_CHECK(servers_.back()->record_count() == 0)
      << "retiring a non-empty bucket";
  last_parity_seq_[servers_.back()->bucket_number()] =
      servers_.back()->parity_seq();
  servers_.back()->Retire();
  // The retired server must not touch the log again: the bucket number may
  // be reused by a later split, which replaces the log object (the retired
  // server's pointer would dangle). Its kClear dissolution record is
  // already on disk by this point.
  servers_.back()->AttachLog(nullptr);
  retired_servers_.push_back(std::move(servers_.back()));
  servers_.pop_back();
}

persist::BucketLog* LhSystem::LogOfBucket(uint64_t bucket) {
  return persist_ == nullptr ? nullptr : persist_->log(bucket);
}

const ScanFilter& LhSystem::FilterById(uint64_t filter_id) const {
  ESSDDS_CHECK(filter_id < filters_.size())
      << "unknown scan filter " << filter_id;
  return *filters_[filter_id];
}

std::vector<SiteId> LhSystem::ParitySitesOfBucket(uint64_t bucket) const {
  if (options_.parity_group_size == 0) return {};
  auto it = parity_servers_.find(bucket / options_.parity_group_size);
  if (it == parity_servers_.end()) return {};
  std::vector<SiteId> sites;
  sites.reserve(it->second.size());
  for (const auto& ps : it->second) sites.push_back(ps->site());
  return sites;
}

bool LhSystem::SiteIsDead(SiteId site) const {
  return event_network_ != nullptr && event_network_->site_killed(site);
}

bool LhSystem::MemberTrafficDrained(uint64_t bucket) const {
  if (event_network_ == nullptr) return true;
  auto it = site_history_.find(bucket);
  if (it == site_history_.end()) return true;
  // Every incarnation of the bucket number counts: a rebuilt-then-killed
  // bucket's first corpse may still have frames in flight.
  for (SiteId site : it->second) {
    if (event_network_->HasInFlightFrom(site)) return false;
  }
  return true;
}

SiteId LhSystem::MarkBucketDead(uint64_t bucket) {
  ESSDDS_CHECK(options_.parity_group_size > 0) << "parity is off";
  ESSDDS_CHECK(bucket < servers_.size()) << "no bucket " << bucket;
  auto it = parity_servers_.find(bucket / options_.parity_group_size);
  ESSDDS_CHECK(it != parity_servers_.end());
  // The group's first live parity site becomes the recovery proxy; with
  // m > 1 a proxy that itself dies mid-gather is succeeded by the next.
  ParityServer* proxy = nullptr;
  for (const auto& ps : it->second) {
    if (!SiteIsDead(ps->site())) {
      proxy = ps.get();
      break;
    }
  }
  ESSDDS_CHECK(proxy != nullptr)
      << "group " << bucket / options_.parity_group_size
      << " lost every parity site; bucket " << bucket << " is unrecoverable";
  dead_buckets_[bucket] = proxy->site();
  const SiteId old_site = servers_[bucket]->site();
  if (event_network_ != nullptr) {
    // Declaration is fencing: a declared site is administratively dead even
    // if it was merely slow (otherwise a zombie would keep serving — and
    // diverging from — the bucket the proxy now answers for). Then take
    // over the dead address immediately, not at rebuild time: requests
    // parked in the dead site's letter queue (client retries among them)
    // replay straight into the proxy's degraded service instead of waiting
    // out the whole reconstruction.
    if (!event_network_->site_killed(old_site)) {
      event_network_->KillSite(old_site);
    }
    event_network_->RedirectSite(old_site, proxy->site());
  }
  proxy->BeginRecovery(bucket, *network_);
  return proxy->site();
}

void LhSystem::RebuildBucket(uint64_t bucket, RebuiltBucket state) {
  ESSDDS_CHECK(bucket < servers_.size()) << "no bucket " << bucket;
  LhBucketServer* dead = servers_[bucket].get();
  const SiteId old_site = dead->site();
  // The corpse must never touch the log again: OpenBucketLog below replaces
  // the log object its pointer refers to.
  dead->AttachLog(nullptr);
  auto replacement =
      std::make_unique<LhBucketServer>(this, options_, bucket, state.level);
  if (persist_ != nullptr) {
    replacement->AttachLog(
        persist_->OpenBucketLog(bucket, state.level, /*fresh=*/true));
  }
  const SiteId site = network_->Register(replacement.get());
  replacement->set_site(site);
  const uint32_t level = state.level;
  replacement->RestoreRebuilt(std::move(state));
  if (replacement->log() != nullptr) {
    // One snapshot frame makes the reconstruction durable: a crash after
    // the rebuild replays the decoded content, not the dead site's file.
    replacement->log()->Checkpoint(level, /*retired=*/false,
                                   replacement->records());
  }
  site_history_[bucket].push_back(site);
  // The corpse stays alive (network sites hold raw pointers) but is no
  // longer routed to — same lifecycle as a merge-retired server.
  retired_servers_.push_back(std::move(servers_[bucket]));
  servers_[bucket] = std::move(replacement);
  dead_buckets_.erase(bucket);
  if (event_network_ != nullptr) {
    // Re-point the dead address: parked reliable frames retransmit and
    // dead letters replay, all delivered to the successor.
    event_network_->RedirectSite(old_site, site);
  }
}

std::map<uint64_t, Bytes> LhSystem::EncodeParityRow(uint64_t group,
                                                    int parity_index) const {
  const int k = static_cast<int>(options_.parity_group_size);
  const int m = static_cast<int>(options_.parity_count);
  const gf::GfField& field = gf::GfField::Of(8);
  RsCode code = RsCode::Create(k, m).value();
  std::map<uint64_t, Bytes> row;
  for (int i = 0; i < k; ++i) {
    const uint64_t b = group * options_.parity_group_size +
                       static_cast<uint64_t>(i);
    if (b >= servers_.size()) break;
    const LhBucketServer& s = *servers_[b];
    const uint8_t coeff = code.ParityCoeff(parity_index, i);
    for (const auto& [key, rank] : s.rank_of()) {
      Bytes buf = RankBuffer(key, s.records().at(key));
      for (auto& byte : buf) {
        byte = static_cast<uint8_t>(field.Mul(coeff, byte));
      }
      Bytes& acc = row[rank];
      acc = XorBytes(acc, buf);
    }
  }
  return row;
}

std::vector<ParityServer::MemberSeed> LhSystem::MemberSeedsOf(
    uint64_t group) const {
  const int k = static_cast<int>(options_.parity_group_size);
  std::vector<ParityServer::MemberSeed> seeds;
  for (int i = 0; i < k; ++i) {
    const uint64_t b = group * options_.parity_group_size +
                       static_cast<uint64_t>(i);
    if (b >= servers_.size()) break;
    ParityServer::MemberSeed seed;
    seed.bucket = b;
    seed.level = servers_[b]->level();
    seed.applied = servers_[b]->parity_seq();
    seed.key_rank = servers_[b]->rank_of();
    seeds.push_back(std::move(seed));
  }
  return seeds;
}

void LhSystem::SeedParityFromData() {
  for (auto& [group, row] : parity_servers_) {
    std::vector<ParityServer::MemberSeed> seeds = MemberSeedsOf(group);
    for (auto& ps : row) {
      ps->InstallSeed(EncodeParityRow(group, ps->parity_index()), seeds);
    }
  }
}

void LhSystem::RebuildParityBucket(uint64_t group, int parity_index) {
  auto it = parity_servers_.find(group);
  ESSDDS_CHECK(it != parity_servers_.end()) << "no parity group " << group;
  ESSDDS_CHECK(parity_index >= 0 &&
               static_cast<size_t>(parity_index) < it->second.size());
  auto& slot = it->second[static_cast<size_t>(parity_index)];
  const SiteId old_site = slot->site();
  auto ps = std::make_unique<ParityServer>(this, options_, group,
                                           parity_index);
  const SiteId site = network_->Register(ps.get());
  ps->set_site(site);
  // Re-encode the row from the (all-live) data members. Updates still in
  // flight toward the dead site replay through the redirect and are
  // absorbed by the per-member sequence check: their effects are already
  // inside the seed.
  ps->InstallSeed(EncodeParityRow(group, parity_index), MemberSeedsOf(group));
  retired_parity_.push_back(std::move(slot));
  slot = std::move(ps);
  if (event_network_ != nullptr) {
    event_network_->RedirectSite(old_site, site);
  }
}

const ParityServer& LhSystem::parity_bucket(uint64_t group,
                                            int parity_index) const {
  auto it = parity_servers_.find(group);
  ESSDDS_CHECK(it != parity_servers_.end()) << "no parity group " << group;
  ESSDDS_CHECK(parity_index >= 0 &&
               static_cast<size_t>(parity_index) < it->second.size());
  return *it->second[static_cast<size_t>(parity_index)];
}

const LhBucketServer& LhSystem::bucket(uint64_t b) const {
  ESSDDS_CHECK(b < servers_.size());
  return *servers_[b];
}

LhBucketServer& LhSystem::mutable_bucket(uint64_t b) {
  ESSDDS_CHECK(b < servers_.size());
  return *servers_[b];
}

uint64_t LhSystem::TotalRecords() const {
  uint64_t total = 0;
  for (const auto& s : servers_) total += s->record_count();
  return total;
}

double LhSystem::LoadFactor() const {
  return static_cast<double>(TotalRecords()) /
         (static_cast<double>(bucket_count()) *
          static_cast<double>(options_.bucket_capacity));
}

}  // namespace essdds::sdds
