#include "sdds/lh_client.h"

#include <algorithm>
#include <set>
#include <utility>

namespace essdds::sdds {

LhClient::LhClient(LhRuntime* runtime, SimNetwork* net)
    : runtime_(runtime), net_(net) {
  ESSDDS_CHECK(runtime != nullptr && net != nullptr);
  site_ = net_->Register(this);
}

uint64_t LhClient::AddressFor(uint64_t key) const {
  // LH* client addressing: h_{i'} first, stepped up to h_{i'+1} for buckets
  // the image says have already split.
  const uint64_t key_image = LhKeyImage(key, runtime_->options());
  uint64_t a = key_image & ((uint64_t{1} << image_.level) - 1);
  if (a < image_.split_pointer) {
    a = key_image & ((uint64_t{1} << (image_.level + 1)) - 1);
  }
  return a;
}

void LhClient::OnMessage(Message& msg, SimNetwork& net) {
  (void)net;
  pending_[msg.request_id].push_back(std::move(msg));
}

void LhClient::ApplyIam(const Message& reply) {
  if (!reply.has_iam) return;
  ++iam_count_;
  // LNS96 image adjustment: i' <- j - 1, n' <- a + 1 (wrapping), where j and
  // a are the level and address of the first bucket that had to forward.
  FileImage candidate;
  candidate.level = reply.iam_level >= 1 ? reply.iam_level - 1 : 0;
  candidate.split_pointer = static_cast<uint32_t>(reply.iam_address) + 1;
  if (candidate.split_pointer >= (uint32_t{1} << candidate.level)) {
    candidate.split_pointer = 0;
    ++candidate.level;
  }
  // The image may only grow; a concurrent smarter client could otherwise
  // regress it.
  if (candidate.BucketCount() > image_.BucketCount()) {
    image_ = candidate;
  }
}

Message LhClient::RoundTrip(MsgType type, uint64_t key, Bytes value) {
  Message req;
  req.type = type;
  req.from = site_;
  req.reply_to = site_;
  req.request_id = next_request_id_++;
  req.key = key;
  req.value = std::move(value);
  req.to = runtime_->SiteOfBucket(AddressFor(key));
  const uint64_t id = req.request_id;
  net_->Send(std::move(req));

  auto it = pending_.find(id);
  ESSDDS_CHECK(it != pending_.end() && it->second.size() == 1)
      << "expected exactly one reply for request " << id;
  Message reply = std::move(it->second.front());
  pending_.erase(it);
  ApplyIam(reply);
  return reply;
}

bool LhClient::Insert(uint64_t key, Bytes value) {
  Message reply = RoundTrip(MsgType::kInsert, key, std::move(value));
  ESSDDS_CHECK(reply.type == MsgType::kInsertAck);
  return reply.found;
}

Result<Bytes> LhClient::Lookup(uint64_t key) {
  Message reply = RoundTrip(MsgType::kLookup, key, {});
  ESSDDS_CHECK(reply.type == MsgType::kLookupReply);
  if (!reply.found) {
    return Status::NotFound("no record with key " + std::to_string(key));
  }
  return std::move(reply.value);
}

Status LhClient::Delete(uint64_t key) {
  Message reply = RoundTrip(MsgType::kDelete, key, {});
  ESSDDS_CHECK(reply.type == MsgType::kDeleteAck);
  if (!reply.found) {
    return Status::NotFound("no record with key " + std::to_string(key));
  }
  return Status::OK();
}

LhClient::ScanResult LhClient::Scan(uint64_t filter_id, Bytes filter_arg) {
  const uint64_t id = next_request_id_++;
  const uint64_t extent = image_.BucketCount();
  for (uint64_t a = 0; a < extent; ++a) {
    Message req;
    req.type = MsgType::kScan;
    req.from = site_;
    req.reply_to = site_;
    req.request_id = id;
    req.filter_id = filter_id;
    req.filter_arg = filter_arg;
    req.assumed_level = image_.AssumedLevel(a);
    req.to = runtime_->SiteOfBucket(a);
    net_->Send(std::move(req));
  }
  // In thread-pool scan mode the buckets deferred their evaluations; run
  // the batch now (no-op in serial mode, where replies already arrived).
  net_->DrainDeferredScans();

  ScanResult result;
  auto it = pending_.find(id);
  if (it != pending_.end()) {
    // Collect in ascending bucket order: the serial mode's depth-first
    // arrival order and the parallel mode's drain order then produce
    // byte-identical results.
    std::stable_sort(it->second.begin(), it->second.end(),
                     [](const Message& a, const Message& b) {
                       return a.key < b.key;
                     });
    // A stale-ahead image (possible after merges) can deliver the scan to a
    // folded bucket more than once; keep one reply per bucket.
    std::set<uint64_t> buckets_seen;
    for (Message& reply : it->second) {
      ESSDDS_CHECK(reply.type == MsgType::kScanReply);
      if (!buckets_seen.insert(reply.key).second) continue;
      for (WireRecord& r : reply.records) {
        result.hits.push_back(std::move(r));
      }
    }
    result.buckets_answered = buckets_seen.size();
    pending_.erase(it);
  }
  return result;
}

}  // namespace essdds::sdds
