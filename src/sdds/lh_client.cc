#include "sdds/lh_client.h"

#include <algorithm>
#include <utility>

#include "obs/log.h"

namespace essdds::sdds {

LhClient::LhClient(LhRuntime* runtime, Network* net)
    : runtime_(runtime), net_(net) {
  ESSDDS_CHECK(runtime != nullptr && net != nullptr);
  site_ = net_->Register(this);
  obs::MetricRegistry& m = net_->metrics();
  insert_us_ = &m.histogram("client.insert_us");
  lookup_us_ = &m.histogram("client.lookup_us");
  delete_us_ = &m.histogram("client.delete_us");
  scan_us_ = &m.histogram("client.scan_us");
  retries_counter_ = &m.counter("client.retries");
  stale_counter_ = &m.counter("client.stale_replies");
}

obs::Histogram& LhClient::LatencyHistogramFor(MsgType type) {
  switch (type) {
    case MsgType::kInsert:
      return *insert_us_;
    case MsgType::kLookup:
      return *lookup_us_;
    case MsgType::kDelete:
      return *delete_us_;
    default:
      return *scan_us_;
  }
}

uint64_t LhClient::AddressFor(uint64_t key) const {
  // LH* client addressing: h_{i'} first, stepped up to h_{i'+1} for buckets
  // the image says have already split.
  const uint64_t key_image = LhKeyImage(key, runtime_->options());
  uint64_t a = key_image & ((uint64_t{1} << image_.level) - 1);
  if (a < image_.split_pointer) {
    a = key_image & ((uint64_t{1} << (image_.level + 1)) - 1);
  }
  return a;
}

void LhClient::OnMessage(Message& msg, Network& net) {
  (void)net;
  if (outstanding_.find(msg.request_id) == outstanding_.end()) {
    // A reply for a request that already completed: the late original of a
    // retried request, or a fault-injected duplicate. Idempotent servers
    // make re-execution harmless; the straggler reply is just noise.
    ++stale_reply_count_;
    stale_counter_->Increment();
    net_->TraceHop(obs::HopKind::kStale, msg);
    return;
  }
  pending_[msg.request_id].push_back(std::move(msg));
}

void LhClient::ApplyIam(const Message& reply) {
  if (!reply.has_iam) return;
  ++iam_count_;
  // LNS96 image adjustment: i' <- j - 1, n' <- a + 1 (wrapping), where j and
  // a are the level and address of the first bucket that had to forward.
  FileImage candidate;
  candidate.level = reply.iam_level >= 1 ? reply.iam_level - 1 : 0;
  candidate.split_pointer = static_cast<uint32_t>(reply.iam_address) + 1;
  if (candidate.split_pointer >= (uint32_t{1} << candidate.level)) {
    candidate.split_pointer = 0;
    ++candidate.level;
  }
  // The image may only grow; a concurrent smarter client could otherwise
  // regress it.
  if (candidate.BucketCount() > image_.BucketCount()) {
    image_ = candidate;
  }
}

Message LhClient::RoundTrip(MsgType type, uint64_t key, Bytes value) {
  Message req;
  req.type = type;
  req.from = site_;
  req.reply_to = site_;
  req.request_id = next_request_id_++;
  req.key = key;
  req.value = std::move(value);
  req.trace_id = net_->NextTraceId();
  last_trace_id_ = req.trace_id;
  const uint64_t id = req.request_id;
  outstanding_.insert(id);

  const bool async = net_->asynchronous();
  Message resend;
  if (async) resend = req;  // retransmission copy (payload included)
  const uint64_t address = AddressFor(key);
  // The computed address rides along so a recovery proxy standing in for a
  // dead site can route degraded-mode requests without the client's image.
  req.bucket_to_split = address;
  req.to = runtime_->SiteOfBucket(address);

  // Latency span: first send to accepted reply, in virtual microseconds —
  // retries, forwards, and parked deliveries all land inside it.
  const uint64_t op_start_us = net_->now_us();
  net_->TraceHop(obs::HopKind::kOpStart, req);
  const uint64_t timeout = runtime_->options().request_timeout_us;
  const uint64_t start_us = net_->now_us();
  // Saturating: a deadline must never wrap into the past.
  uint64_t deadline =
      timeout > UINT64_MAX - start_us ? UINT64_MAX : start_us + timeout;
  net_->Send(std::move(req));

  uint32_t attempts = 0;
  for (;;) {
    auto it = pending_.find(id);
    if (it != pending_.end() && !it->second.empty()) {
      Message reply = std::move(it->second.front());
      pending_.erase(it);
      outstanding_.erase(id);
      ApplyIam(reply);
      const uint64_t elapsed_us = net_->now_us() - op_start_us;
      LatencyHistogramFor(type).Record(elapsed_us);
      net_->TraceHop(obs::HopKind::kOpDone, reply);
      const uint64_t slow = runtime_->options().slow_op_us;
      if (slow != 0 && elapsed_us >= slow) {
        // Structured breadcrumb for ops past the budget: the trace id makes
        // the op followable with `essdds_admin trace` / AssembleTrace.
        obs::LogEvent("slow_op")
            .Str("op", MsgTypeToString(type))
            .U64("key", key)
            .U64("elapsed_us", elapsed_us)
            .U64("trace_id", last_trace_id_)
            .U64("attempts", attempts);
      }
      return reply;
    }

    const bool progressed = net_->Pump();
    // The pump that crossed the deadline may be the one that delivered the
    // reply — take it before considering a retry.
    if (pending_.find(id) != pending_.end()) continue;
    if (progressed && net_->now_us() <= deadline) continue;
    if (!progressed) {
      // Idle without a reply: on a synchronous network that is a protocol
      // bug (the reply arrives inside Send); on an event network the
      // request or its reply was provably lost.
      ESSDDS_CHECK(async)
          << "no reply for request " << id << " on a synchronous network";
    }
    // Otherwise: past the deadline with traffic still flowing — retry.

    ++attempts;
    ESSDDS_CHECK(attempts <= runtime_->options().max_request_retries)
        << "request " << id << " (" << MsgTypeToString(type) << " key " << key
        << ") unanswered after " << attempts << " attempts at t="
        << net_->now_us() << "us";
    ++retry_count_;
    net_->NoteRetry();
    retries_counter_->Increment();
    Message again = resend;
    const uint64_t retry_address = AddressFor(key);
    again.bucket_to_split = retry_address;
    again.to = runtime_->SiteOfBucket(retry_address);
    net_->TraceHop(obs::HopKind::kRetry, again);
    // High-availability mode: a bucket that keeps timing out may be hosted
    // on a dead site. Report the RECORD KEY we cannot get served — the
    // coordinator probes every bucket on the key's forwarding chain (this
    // client's address may be stale and the dead hop anywhere on it) and
    // declares only probes that stay unanswered; a merely slow site answers
    // the ping and nothing happens.
    if (runtime_->options().parity_group_size > 0 &&
        attempts >= runtime_->options().report_dead_after_retries) {
      Message report;
      report.type = MsgType::kDeadSite;
      report.from = site_;
      report.to = runtime_->CoordinatorSite();
      report.key = key;
      report.trace_id = again.trace_id;
      net_->Send(std::move(report));
    }
    // Bounded exponential backoff: double the patience each attempt, up to
    // 2^6 timeouts. Both the shift and the deadline addition saturate — a
    // huge configured timeout must pin the deadline at the far future, not
    // wrap uint64_t into the past and turn backoff into a hot retry loop.
    const uint32_t shift = std::min<uint32_t>(attempts, 6);
    uint64_t backoff = timeout;
    if (shift > 0) {
      backoff = timeout > (UINT64_MAX >> shift) ? UINT64_MAX
                                                : timeout << shift;
    }
    const uint64_t now = net_->now_us();
    deadline = backoff > UINT64_MAX - now ? UINT64_MAX : now + backoff;
    net_->Send(std::move(again));
  }
}

bool LhClient::Insert(uint64_t key, Bytes value) {
  Message reply = RoundTrip(MsgType::kInsert, key, std::move(value));
  ESSDDS_CHECK(reply.type == MsgType::kInsertAck);
  return reply.found;
}

Result<Bytes> LhClient::Lookup(uint64_t key) {
  Message reply = RoundTrip(MsgType::kLookup, key, {});
  ESSDDS_CHECK(reply.type == MsgType::kLookupReply);
  if (!reply.found) {
    return Status::NotFound("no record with key " + std::to_string(key));
  }
  return std::move(reply.value);
}

Status LhClient::Delete(uint64_t key) {
  Message reply = RoundTrip(MsgType::kDelete, key, {});
  ESSDDS_CHECK(reply.type == MsgType::kDeleteAck);
  if (!reply.found) {
    return Status::NotFound("no record with key " + std::to_string(key));
  }
  return Status::OK();
}

LhClient::ScanResult LhClient::Scan(uint64_t filter_id, Bytes filter_arg) {
  // Quiescence barrier (event networks; no-op synchronously): complete any
  // in-flight splits/merges so the fan-out sees a stable extent. Without
  // it a split racing the scan can move records from an already-scanned
  // bucket into a not-yet-created one — hits lost with no fault injected.
  net_->PumpUntilIdle();

  const uint64_t id = next_request_id_++;
  const uint64_t trace_id = net_->NextTraceId();
  last_trace_id_ = trace_id;
  outstanding_.insert(id);
  const uint64_t extent = image_.BucketCount();
  const uint64_t op_start_us = net_->now_us();
  for (uint64_t a = 0; a < extent; ++a) {
    Message req;
    req.type = MsgType::kScan;
    req.from = site_;
    req.reply_to = site_;
    req.request_id = id;
    req.trace_id = trace_id;
    req.key = a;  // addressed bucket, for degraded-mode proxy routing
    req.filter_id = filter_id;
    req.filter_arg = filter_arg;
    req.assumed_level = image_.AssumedLevel(a);
    req.to = runtime_->SiteOfBucket(a);
    if (a == 0) net_->TraceHop(obs::HopKind::kOpStart, req);
    net_->Send(std::move(req));
  }
  // Deliver the fan-out (and any forwards to buckets the image missed);
  // scan traffic is never dropped, so idleness means every bucket has
  // either answered or deferred its evaluation.
  net_->PumpUntilIdle();
  // In thread-pool scan mode the buckets deferred their evaluations; run
  // the batch now (no-op in serial mode, where replies already arrived).
  net_->DrainDeferredScans();
  // Event network: the drained replies were scheduled, not delivered.
  net_->PumpUntilIdle();
  outstanding_.erase(id);

  ScanResult result;
  auto it = pending_.find(id);
  if (it != pending_.end()) {
    // Collect in ascending bucket order: the serial mode's depth-first
    // arrival order and the parallel mode's drain order then produce
    // byte-identical results.
    std::stable_sort(it->second.begin(), it->second.end(),
                     [](const Message& a, const Message& b) {
                       return a.key < b.key;
                     });
    // A stale-ahead image (possible after merges) can deliver the scan to a
    // folded bucket more than once; keep one reply per bucket.
    std::set<uint64_t> buckets_seen;
    for (Message& reply : it->second) {
      ESSDDS_CHECK(reply.type == MsgType::kScanReply);
      if (!buckets_seen.insert(reply.key).second) continue;
      for (WireRecord& r : reply.records) {
        result.hits.push_back(std::move(r));
      }
    }
    result.buckets_answered = buckets_seen.size();
    pending_.erase(it);
  }
  const uint64_t scan_elapsed_us = net_->now_us() - op_start_us;
  scan_us_->Record(scan_elapsed_us);
  const uint64_t slow = runtime_->options().slow_op_us;
  if (slow != 0 && scan_elapsed_us >= slow) {
    obs::LogEvent("slow_op")
        .Str("op", "Scan")
        .U64("elapsed_us", scan_elapsed_us)
        .U64("trace_id", trace_id)
        .U64("buckets_answered", result.buckets_answered);
  }
  // The scan has no single accepting reply; close the trace with a
  // summary hop (key = buckets answered).
  Message done;
  done.type = MsgType::kScanReply;
  done.from = site_;
  done.to = site_;
  done.request_id = id;
  done.trace_id = trace_id;
  done.key = result.buckets_answered;
  net_->TraceHop(obs::HopKind::kOpDone, done);
  return result;
}

}  // namespace essdds::sdds
